file(REMOVE_RECURSE
  "CMakeFiles/sharded_inference.dir/sharded_inference.cpp.o"
  "CMakeFiles/sharded_inference.dir/sharded_inference.cpp.o.d"
  "sharded_inference"
  "sharded_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
