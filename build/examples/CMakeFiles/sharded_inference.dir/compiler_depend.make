# Empty compiler generated dependencies file for sharded_inference.
# This may be replaced when dependencies are built.
