file(REMOVE_RECURSE
  "CMakeFiles/raptor_throughput.dir/raptor_throughput.cpp.o"
  "CMakeFiles/raptor_throughput.dir/raptor_throughput.cpp.o.d"
  "raptor_throughput"
  "raptor_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
