# Empty compiler generated dependencies file for raptor_throughput.
# This may be replaced when dependencies are built.
