file(REMOVE_RECURSE
  "CMakeFiles/four_targets.dir/four_targets.cpp.o"
  "CMakeFiles/four_targets.dir/four_targets.cpp.o.d"
  "four_targets"
  "four_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
