# Empty dependencies file for four_targets.
# This may be replaced when dependencies are built.
