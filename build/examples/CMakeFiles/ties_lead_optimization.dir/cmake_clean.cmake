file(REMOVE_RECURSE
  "CMakeFiles/ties_lead_optimization.dir/ties_lead_optimization.cpp.o"
  "CMakeFiles/ties_lead_optimization.dir/ties_lead_optimization.cpp.o.d"
  "ties_lead_optimization"
  "ties_lead_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ties_lead_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
