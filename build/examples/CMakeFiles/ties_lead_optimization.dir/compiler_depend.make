# Empty compiler generated dependencies file for ties_lead_optimization.
# This may be replaced when dependencies are built.
