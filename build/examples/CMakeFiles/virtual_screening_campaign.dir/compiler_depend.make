# Empty compiler generated dependencies file for virtual_screening_campaign.
# This may be replaced when dependencies are built.
