file(REMOVE_RECURSE
  "CMakeFiles/virtual_screening_campaign.dir/virtual_screening_campaign.cpp.o"
  "CMakeFiles/virtual_screening_campaign.dir/virtual_screening_campaign.cpp.o.d"
  "virtual_screening_campaign"
  "virtual_screening_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_screening_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
