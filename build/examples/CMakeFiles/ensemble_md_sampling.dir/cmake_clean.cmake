file(REMOVE_RECURSE
  "CMakeFiles/ensemble_md_sampling.dir/ensemble_md_sampling.cpp.o"
  "CMakeFiles/ensemble_md_sampling.dir/ensemble_md_sampling.cpp.o.d"
  "ensemble_md_sampling"
  "ensemble_md_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_md_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
