# Empty dependencies file for ensemble_md_sampling.
# This may be replaced when dependencies are built.
