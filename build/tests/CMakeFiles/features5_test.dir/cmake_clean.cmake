file(REMOVE_RECURSE
  "CMakeFiles/features5_test.dir/features5_test.cpp.o"
  "CMakeFiles/features5_test.dir/features5_test.cpp.o.d"
  "features5_test"
  "features5_test.pdb"
  "features5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
