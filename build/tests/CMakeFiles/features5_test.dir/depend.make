# Empty dependencies file for features5_test.
# This may be replaced when dependencies are built.
