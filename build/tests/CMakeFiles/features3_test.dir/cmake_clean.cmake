file(REMOVE_RECURSE
  "CMakeFiles/features3_test.dir/features3_test.cpp.o"
  "CMakeFiles/features3_test.dir/features3_test.cpp.o.d"
  "features3_test"
  "features3_test.pdb"
  "features3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
