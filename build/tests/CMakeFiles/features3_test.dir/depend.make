# Empty dependencies file for features3_test.
# This may be replaced when dependencies are built.
