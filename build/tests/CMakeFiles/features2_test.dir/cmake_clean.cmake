file(REMOVE_RECURSE
  "CMakeFiles/features2_test.dir/features2_test.cpp.o"
  "CMakeFiles/features2_test.dir/features2_test.cpp.o.d"
  "features2_test"
  "features2_test.pdb"
  "features2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
