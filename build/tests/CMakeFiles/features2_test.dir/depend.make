# Empty dependencies file for features2_test.
# This may be replaced when dependencies are built.
