# Empty compiler generated dependencies file for dock_test.
# This may be replaced when dependencies are built.
