file(REMOVE_RECURSE
  "CMakeFiles/dock_test.dir/dock_test.cpp.o"
  "CMakeFiles/dock_test.dir/dock_test.cpp.o.d"
  "dock_test"
  "dock_test.pdb"
  "dock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
