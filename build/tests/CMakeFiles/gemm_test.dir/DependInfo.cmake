
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gemm_test.cpp" "tests/CMakeFiles/gemm_test.dir/gemm_test.cpp.o" "gcc" "tests/CMakeFiles/gemm_test.dir/gemm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/core/CMakeFiles/impeccable_core.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/rct/CMakeFiles/impeccable_rct.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/ml/CMakeFiles/impeccable_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/fe/CMakeFiles/impeccable_fe.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/md/CMakeFiles/impeccable_md.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/dock/CMakeFiles/impeccable_dock.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/chem/CMakeFiles/impeccable_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
