# Empty dependencies file for chem_features_test.
# This may be replaced when dependencies are built.
