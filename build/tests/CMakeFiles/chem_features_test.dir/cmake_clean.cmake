file(REMOVE_RECURSE
  "CMakeFiles/chem_features_test.dir/chem_features_test.cpp.o"
  "CMakeFiles/chem_features_test.dir/chem_features_test.cpp.o.d"
  "chem_features_test"
  "chem_features_test.pdb"
  "chem_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
