file(REMOVE_RECURSE
  "CMakeFiles/features4_test.dir/features4_test.cpp.o"
  "CMakeFiles/features4_test.dir/features4_test.cpp.o.d"
  "features4_test"
  "features4_test.pdb"
  "features4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
