# Empty compiler generated dependencies file for features4_test.
# This may be replaced when dependencies are built.
