file(REMOVE_RECURSE
  "CMakeFiles/fe_test.dir/fe_test.cpp.o"
  "CMakeFiles/fe_test.dir/fe_test.cpp.o.d"
  "fe_test"
  "fe_test.pdb"
  "fe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
