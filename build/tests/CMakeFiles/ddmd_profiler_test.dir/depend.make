# Empty dependencies file for ddmd_profiler_test.
# This may be replaced when dependencies are built.
