file(REMOVE_RECURSE
  "CMakeFiles/ddmd_profiler_test.dir/ddmd_profiler_test.cpp.o"
  "CMakeFiles/ddmd_profiler_test.dir/ddmd_profiler_test.cpp.o.d"
  "ddmd_profiler_test"
  "ddmd_profiler_test.pdb"
  "ddmd_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddmd_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
