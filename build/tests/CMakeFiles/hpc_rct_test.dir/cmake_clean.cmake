file(REMOVE_RECURSE
  "CMakeFiles/hpc_rct_test.dir/hpc_rct_test.cpp.o"
  "CMakeFiles/hpc_rct_test.dir/hpc_rct_test.cpp.o.d"
  "hpc_rct_test"
  "hpc_rct_test.pdb"
  "hpc_rct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_rct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
