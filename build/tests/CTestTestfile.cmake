# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/exec_engine_test[1]_include.cmake")
include("/root/repo/build/tests/gemm_test[1]_include.cmake")
include("/root/repo/build/tests/chem_smiles_test[1]_include.cmake")
include("/root/repo/build/tests/chem_features_test[1]_include.cmake")
include("/root/repo/build/tests/dock_test[1]_include.cmake")
include("/root/repo/build/tests/md_test[1]_include.cmake")
include("/root/repo/build/tests/fe_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/hpc_rct_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/ddmd_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/features2_test[1]_include.cmake")
include("/root/repo/build/tests/features3_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/features4_test[1]_include.cmake")
include("/root/repo/build/tests/features5_test[1]_include.cmake")
include("/root/repo/build/tests/analysis2_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
