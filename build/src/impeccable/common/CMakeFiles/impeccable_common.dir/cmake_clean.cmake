file(REMOVE_RECURSE
  "CMakeFiles/impeccable_common.dir/kabsch.cpp.o"
  "CMakeFiles/impeccable_common.dir/kabsch.cpp.o.d"
  "CMakeFiles/impeccable_common.dir/stats.cpp.o"
  "CMakeFiles/impeccable_common.dir/stats.cpp.o.d"
  "CMakeFiles/impeccable_common.dir/thread_pool.cpp.o"
  "CMakeFiles/impeccable_common.dir/thread_pool.cpp.o.d"
  "libimpeccable_common.a"
  "libimpeccable_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
