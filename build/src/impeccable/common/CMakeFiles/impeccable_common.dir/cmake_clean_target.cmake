file(REMOVE_RECURSE
  "libimpeccable_common.a"
)
