# Empty compiler generated dependencies file for impeccable_common.
# This may be replaced when dependencies are built.
