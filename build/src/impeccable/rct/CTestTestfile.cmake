# CMake generated Testfile for 
# Source directory: /root/repo/src/impeccable/rct
# Build directory: /root/repo/build/src/impeccable/rct
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
