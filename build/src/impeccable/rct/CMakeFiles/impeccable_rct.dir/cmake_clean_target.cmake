file(REMOVE_RECURSE
  "libimpeccable_rct.a"
)
