
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/rct/backend.cpp" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/backend.cpp.o" "gcc" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/backend.cpp.o.d"
  "/root/repo/src/impeccable/rct/entk.cpp" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/entk.cpp.o" "gcc" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/entk.cpp.o.d"
  "/root/repo/src/impeccable/rct/profiler.cpp" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/profiler.cpp.o" "gcc" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/profiler.cpp.o.d"
  "/root/repo/src/impeccable/rct/raptor.cpp" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/raptor.cpp.o" "gcc" "src/impeccable/rct/CMakeFiles/impeccable_rct.dir/raptor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
