# Empty dependencies file for impeccable_rct.
# This may be replaced when dependencies are built.
