file(REMOVE_RECURSE
  "CMakeFiles/impeccable_rct.dir/backend.cpp.o"
  "CMakeFiles/impeccable_rct.dir/backend.cpp.o.d"
  "CMakeFiles/impeccable_rct.dir/entk.cpp.o"
  "CMakeFiles/impeccable_rct.dir/entk.cpp.o.d"
  "CMakeFiles/impeccable_rct.dir/profiler.cpp.o"
  "CMakeFiles/impeccable_rct.dir/profiler.cpp.o.d"
  "CMakeFiles/impeccable_rct.dir/raptor.cpp.o"
  "CMakeFiles/impeccable_rct.dir/raptor.cpp.o.d"
  "libimpeccable_rct.a"
  "libimpeccable_rct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_rct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
