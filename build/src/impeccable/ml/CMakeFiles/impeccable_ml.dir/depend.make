# Empty dependencies file for impeccable_ml.
# This may be replaced when dependencies are built.
