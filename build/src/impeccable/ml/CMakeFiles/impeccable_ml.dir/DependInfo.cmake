
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/ml/aae.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/aae.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/aae.cpp.o.d"
  "/root/repo/src/impeccable/ml/gemm.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/gemm.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/gemm.cpp.o.d"
  "/root/repo/src/impeccable/ml/layers.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/layers.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/layers.cpp.o.d"
  "/root/repo/src/impeccable/ml/lof.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/lof.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/lof.cpp.o.d"
  "/root/repo/src/impeccable/ml/loss.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/loss.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/loss.cpp.o.d"
  "/root/repo/src/impeccable/ml/optim.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/optim.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/optim.cpp.o.d"
  "/root/repo/src/impeccable/ml/res.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/res.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/res.cpp.o.d"
  "/root/repo/src/impeccable/ml/shards.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/shards.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/shards.cpp.o.d"
  "/root/repo/src/impeccable/ml/surrogate.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/surrogate.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/surrogate.cpp.o.d"
  "/root/repo/src/impeccable/ml/tensor.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/tensor.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/tensor.cpp.o.d"
  "/root/repo/src/impeccable/ml/tsne.cpp" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/tsne.cpp.o" "gcc" "src/impeccable/ml/CMakeFiles/impeccable_ml.dir/tsne.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/chem/CMakeFiles/impeccable_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
