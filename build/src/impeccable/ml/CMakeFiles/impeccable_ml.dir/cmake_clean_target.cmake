file(REMOVE_RECURSE
  "libimpeccable_ml.a"
)
