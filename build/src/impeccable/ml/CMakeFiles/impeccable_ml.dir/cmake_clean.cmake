file(REMOVE_RECURSE
  "CMakeFiles/impeccable_ml.dir/aae.cpp.o"
  "CMakeFiles/impeccable_ml.dir/aae.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/gemm.cpp.o"
  "CMakeFiles/impeccable_ml.dir/gemm.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/layers.cpp.o"
  "CMakeFiles/impeccable_ml.dir/layers.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/lof.cpp.o"
  "CMakeFiles/impeccable_ml.dir/lof.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/loss.cpp.o"
  "CMakeFiles/impeccable_ml.dir/loss.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/optim.cpp.o"
  "CMakeFiles/impeccable_ml.dir/optim.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/res.cpp.o"
  "CMakeFiles/impeccable_ml.dir/res.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/shards.cpp.o"
  "CMakeFiles/impeccable_ml.dir/shards.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/surrogate.cpp.o"
  "CMakeFiles/impeccable_ml.dir/surrogate.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/tensor.cpp.o"
  "CMakeFiles/impeccable_ml.dir/tensor.cpp.o.d"
  "CMakeFiles/impeccable_ml.dir/tsne.cpp.o"
  "CMakeFiles/impeccable_ml.dir/tsne.cpp.o.d"
  "libimpeccable_ml.a"
  "libimpeccable_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
