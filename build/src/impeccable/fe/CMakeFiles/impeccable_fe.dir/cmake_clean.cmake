file(REMOVE_RECURSE
  "CMakeFiles/impeccable_fe.dir/esmacs.cpp.o"
  "CMakeFiles/impeccable_fe.dir/esmacs.cpp.o.d"
  "CMakeFiles/impeccable_fe.dir/mmpbsa.cpp.o"
  "CMakeFiles/impeccable_fe.dir/mmpbsa.cpp.o.d"
  "CMakeFiles/impeccable_fe.dir/ties.cpp.o"
  "CMakeFiles/impeccable_fe.dir/ties.cpp.o.d"
  "libimpeccable_fe.a"
  "libimpeccable_fe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
