file(REMOVE_RECURSE
  "libimpeccable_fe.a"
)
