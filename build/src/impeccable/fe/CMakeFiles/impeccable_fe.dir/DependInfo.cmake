
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/fe/esmacs.cpp" "src/impeccable/fe/CMakeFiles/impeccable_fe.dir/esmacs.cpp.o" "gcc" "src/impeccable/fe/CMakeFiles/impeccable_fe.dir/esmacs.cpp.o.d"
  "/root/repo/src/impeccable/fe/mmpbsa.cpp" "src/impeccable/fe/CMakeFiles/impeccable_fe.dir/mmpbsa.cpp.o" "gcc" "src/impeccable/fe/CMakeFiles/impeccable_fe.dir/mmpbsa.cpp.o.d"
  "/root/repo/src/impeccable/fe/ties.cpp" "src/impeccable/fe/CMakeFiles/impeccable_fe.dir/ties.cpp.o" "gcc" "src/impeccable/fe/CMakeFiles/impeccable_fe.dir/ties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/md/CMakeFiles/impeccable_md.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/dock/CMakeFiles/impeccable_dock.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/chem/CMakeFiles/impeccable_chem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
