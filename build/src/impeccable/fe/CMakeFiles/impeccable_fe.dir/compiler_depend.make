# Empty compiler generated dependencies file for impeccable_fe.
# This may be replaced when dependencies are built.
