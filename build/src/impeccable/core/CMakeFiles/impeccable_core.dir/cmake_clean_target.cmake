file(REMOVE_RECURSE
  "libimpeccable_core.a"
)
