# Empty dependencies file for impeccable_core.
# This may be replaced when dependencies are built.
