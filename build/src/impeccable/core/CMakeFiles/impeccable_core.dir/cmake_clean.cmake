file(REMOVE_RECURSE
  "CMakeFiles/impeccable_core.dir/campaign.cpp.o"
  "CMakeFiles/impeccable_core.dir/campaign.cpp.o.d"
  "CMakeFiles/impeccable_core.dir/checkpoint.cpp.o"
  "CMakeFiles/impeccable_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/impeccable_core.dir/deepdrivemd.cpp.o"
  "CMakeFiles/impeccable_core.dir/deepdrivemd.cpp.o.d"
  "libimpeccable_core.a"
  "libimpeccable_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
