
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/dock/engine.cpp" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/engine.cpp.o" "gcc" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/engine.cpp.o.d"
  "/root/repo/src/impeccable/dock/grid.cpp" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/grid.cpp.o" "gcc" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/grid.cpp.o.d"
  "/root/repo/src/impeccable/dock/ligand.cpp" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/ligand.cpp.o" "gcc" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/ligand.cpp.o.d"
  "/root/repo/src/impeccable/dock/receptor.cpp" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/receptor.cpp.o" "gcc" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/receptor.cpp.o.d"
  "/root/repo/src/impeccable/dock/score.cpp" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/score.cpp.o" "gcc" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/score.cpp.o.d"
  "/root/repo/src/impeccable/dock/search.cpp" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/search.cpp.o" "gcc" "src/impeccable/dock/CMakeFiles/impeccable_dock.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/chem/CMakeFiles/impeccable_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
