file(REMOVE_RECURSE
  "libimpeccable_dock.a"
)
