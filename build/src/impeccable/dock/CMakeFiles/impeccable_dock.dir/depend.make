# Empty dependencies file for impeccable_dock.
# This may be replaced when dependencies are built.
