file(REMOVE_RECURSE
  "CMakeFiles/impeccable_dock.dir/engine.cpp.o"
  "CMakeFiles/impeccable_dock.dir/engine.cpp.o.d"
  "CMakeFiles/impeccable_dock.dir/grid.cpp.o"
  "CMakeFiles/impeccable_dock.dir/grid.cpp.o.d"
  "CMakeFiles/impeccable_dock.dir/ligand.cpp.o"
  "CMakeFiles/impeccable_dock.dir/ligand.cpp.o.d"
  "CMakeFiles/impeccable_dock.dir/receptor.cpp.o"
  "CMakeFiles/impeccable_dock.dir/receptor.cpp.o.d"
  "CMakeFiles/impeccable_dock.dir/score.cpp.o"
  "CMakeFiles/impeccable_dock.dir/score.cpp.o.d"
  "CMakeFiles/impeccable_dock.dir/search.cpp.o"
  "CMakeFiles/impeccable_dock.dir/search.cpp.o.d"
  "libimpeccable_dock.a"
  "libimpeccable_dock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_dock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
