file(REMOVE_RECURSE
  "CMakeFiles/impeccable_hpc.dir/cluster.cpp.o"
  "CMakeFiles/impeccable_hpc.dir/cluster.cpp.o.d"
  "CMakeFiles/impeccable_hpc.dir/des.cpp.o"
  "CMakeFiles/impeccable_hpc.dir/des.cpp.o.d"
  "CMakeFiles/impeccable_hpc.dir/flops.cpp.o"
  "CMakeFiles/impeccable_hpc.dir/flops.cpp.o.d"
  "CMakeFiles/impeccable_hpc.dir/machine.cpp.o"
  "CMakeFiles/impeccable_hpc.dir/machine.cpp.o.d"
  "libimpeccable_hpc.a"
  "libimpeccable_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
