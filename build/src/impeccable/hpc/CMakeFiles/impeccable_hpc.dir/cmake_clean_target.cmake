file(REMOVE_RECURSE
  "libimpeccable_hpc.a"
)
