# Empty compiler generated dependencies file for impeccable_hpc.
# This may be replaced when dependencies are built.
