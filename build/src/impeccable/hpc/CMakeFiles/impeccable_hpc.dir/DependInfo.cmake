
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/hpc/cluster.cpp" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/cluster.cpp.o" "gcc" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/cluster.cpp.o.d"
  "/root/repo/src/impeccable/hpc/des.cpp" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/des.cpp.o" "gcc" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/des.cpp.o.d"
  "/root/repo/src/impeccable/hpc/flops.cpp" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/flops.cpp.o" "gcc" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/flops.cpp.o.d"
  "/root/repo/src/impeccable/hpc/machine.cpp" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/machine.cpp.o" "gcc" "src/impeccable/hpc/CMakeFiles/impeccable_hpc.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
