# CMake generated Testfile for 
# Source directory: /root/repo/src/impeccable/hpc
# Build directory: /root/repo/build/src/impeccable/hpc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
