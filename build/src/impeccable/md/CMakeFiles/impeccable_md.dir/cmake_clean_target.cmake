file(REMOVE_RECURSE
  "libimpeccable_md.a"
)
