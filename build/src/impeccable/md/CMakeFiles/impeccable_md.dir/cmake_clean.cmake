file(REMOVE_RECURSE
  "CMakeFiles/impeccable_md.dir/analysis.cpp.o"
  "CMakeFiles/impeccable_md.dir/analysis.cpp.o.d"
  "CMakeFiles/impeccable_md.dir/forcefield.cpp.o"
  "CMakeFiles/impeccable_md.dir/forcefield.cpp.o.d"
  "CMakeFiles/impeccable_md.dir/integrator.cpp.o"
  "CMakeFiles/impeccable_md.dir/integrator.cpp.o.d"
  "CMakeFiles/impeccable_md.dir/io.cpp.o"
  "CMakeFiles/impeccable_md.dir/io.cpp.o.d"
  "CMakeFiles/impeccable_md.dir/simulation.cpp.o"
  "CMakeFiles/impeccable_md.dir/simulation.cpp.o.d"
  "CMakeFiles/impeccable_md.dir/system.cpp.o"
  "CMakeFiles/impeccable_md.dir/system.cpp.o.d"
  "CMakeFiles/impeccable_md.dir/topology.cpp.o"
  "CMakeFiles/impeccable_md.dir/topology.cpp.o.d"
  "libimpeccable_md.a"
  "libimpeccable_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
