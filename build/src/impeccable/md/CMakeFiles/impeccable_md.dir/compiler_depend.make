# Empty compiler generated dependencies file for impeccable_md.
# This may be replaced when dependencies are built.
