
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/md/analysis.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/analysis.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/analysis.cpp.o.d"
  "/root/repo/src/impeccable/md/forcefield.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/forcefield.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/forcefield.cpp.o.d"
  "/root/repo/src/impeccable/md/integrator.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/integrator.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/integrator.cpp.o.d"
  "/root/repo/src/impeccable/md/io.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/io.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/io.cpp.o.d"
  "/root/repo/src/impeccable/md/simulation.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/simulation.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/simulation.cpp.o.d"
  "/root/repo/src/impeccable/md/system.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/system.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/system.cpp.o.d"
  "/root/repo/src/impeccable/md/topology.cpp" "src/impeccable/md/CMakeFiles/impeccable_md.dir/topology.cpp.o" "gcc" "src/impeccable/md/CMakeFiles/impeccable_md.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/dock/CMakeFiles/impeccable_dock.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/chem/CMakeFiles/impeccable_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
