file(REMOVE_RECURSE
  "libimpeccable_chem.a"
)
