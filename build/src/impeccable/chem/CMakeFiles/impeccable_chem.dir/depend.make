# Empty dependencies file for impeccable_chem.
# This may be replaced when dependencies are built.
