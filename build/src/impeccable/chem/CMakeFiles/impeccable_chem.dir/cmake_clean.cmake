file(REMOVE_RECURSE
  "CMakeFiles/impeccable_chem.dir/depiction.cpp.o"
  "CMakeFiles/impeccable_chem.dir/depiction.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/descriptors.cpp.o"
  "CMakeFiles/impeccable_chem.dir/descriptors.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/diversity.cpp.o"
  "CMakeFiles/impeccable_chem.dir/diversity.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/fingerprint.cpp.o"
  "CMakeFiles/impeccable_chem.dir/fingerprint.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/layout.cpp.o"
  "CMakeFiles/impeccable_chem.dir/layout.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/library.cpp.o"
  "CMakeFiles/impeccable_chem.dir/library.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/molecule.cpp.o"
  "CMakeFiles/impeccable_chem.dir/molecule.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/protonation.cpp.o"
  "CMakeFiles/impeccable_chem.dir/protonation.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/scaffold.cpp.o"
  "CMakeFiles/impeccable_chem.dir/scaffold.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/smiles.cpp.o"
  "CMakeFiles/impeccable_chem.dir/smiles.cpp.o.d"
  "CMakeFiles/impeccable_chem.dir/substructure.cpp.o"
  "CMakeFiles/impeccable_chem.dir/substructure.cpp.o.d"
  "libimpeccable_chem.a"
  "libimpeccable_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeccable_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
