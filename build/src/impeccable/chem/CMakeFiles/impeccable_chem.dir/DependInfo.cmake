
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impeccable/chem/depiction.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/depiction.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/depiction.cpp.o.d"
  "/root/repo/src/impeccable/chem/descriptors.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/descriptors.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/descriptors.cpp.o.d"
  "/root/repo/src/impeccable/chem/diversity.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/diversity.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/diversity.cpp.o.d"
  "/root/repo/src/impeccable/chem/fingerprint.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/fingerprint.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/fingerprint.cpp.o.d"
  "/root/repo/src/impeccable/chem/layout.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/layout.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/layout.cpp.o.d"
  "/root/repo/src/impeccable/chem/library.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/library.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/library.cpp.o.d"
  "/root/repo/src/impeccable/chem/molecule.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/molecule.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/molecule.cpp.o.d"
  "/root/repo/src/impeccable/chem/protonation.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/protonation.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/protonation.cpp.o.d"
  "/root/repo/src/impeccable/chem/scaffold.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/scaffold.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/scaffold.cpp.o.d"
  "/root/repo/src/impeccable/chem/smiles.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/smiles.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/smiles.cpp.o.d"
  "/root/repo/src/impeccable/chem/substructure.cpp" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/substructure.cpp.o" "gcc" "src/impeccable/chem/CMakeFiles/impeccable_chem.dir/substructure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/impeccable/common/CMakeFiles/impeccable_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
