file(REMOVE_RECURSE
  "../bench/raptor_scaling"
  "../bench/raptor_scaling.pdb"
  "CMakeFiles/raptor_scaling.dir/raptor_scaling.cpp.o"
  "CMakeFiles/raptor_scaling.dir/raptor_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raptor_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
