# Empty dependencies file for raptor_scaling.
# This may be replaced when dependencies are built.
