# Empty dependencies file for ablation_deepdrivemd.
# This may be replaced when dependencies are built.
