file(REMOVE_RECURSE
  "../bench/ablation_deepdrivemd"
  "../bench/ablation_deepdrivemd.pdb"
  "CMakeFiles/ablation_deepdrivemd.dir/ablation_deepdrivemd.cpp.o"
  "CMakeFiles/ablation_deepdrivemd.dir/ablation_deepdrivemd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deepdrivemd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
