file(REMOVE_RECURSE
  "../bench/table2_costs"
  "../bench/table2_costs.pdb"
  "CMakeFiles/table2_costs.dir/table2_costs.cpp.o"
  "CMakeFiles/table2_costs.dir/table2_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
