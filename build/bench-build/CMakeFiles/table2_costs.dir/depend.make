# Empty dependencies file for table2_costs.
# This may be replaced when dependencies are built.
