# Empty dependencies file for fig4_res.
# This may be replaced when dependencies are built.
