file(REMOVE_RECURSE
  "../bench/fig4_res"
  "../bench/fig4_res.pdb"
  "CMakeFiles/fig4_res.dir/fig4_res.cpp.o"
  "CMakeFiles/fig4_res.dir/fig4_res.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_res.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
