file(REMOVE_RECURSE
  "../bench/campaign_at_scale"
  "../bench/campaign_at_scale.pdb"
  "CMakeFiles/campaign_at_scale.dir/campaign_at_scale.cpp.o"
  "CMakeFiles/campaign_at_scale.dir/campaign_at_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_at_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
