# Empty compiler generated dependencies file for campaign_at_scale.
# This may be replaced when dependencies are built.
