file(REMOVE_RECURSE
  "../bench/ablation_localsearch"
  "../bench/ablation_localsearch.pdb"
  "CMakeFiles/ablation_localsearch.dir/ablation_localsearch.cpp.o"
  "CMakeFiles/ablation_localsearch.dir/ablation_localsearch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_localsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
