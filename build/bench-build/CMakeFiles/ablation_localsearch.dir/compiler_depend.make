# Empty compiler generated dependencies file for ablation_localsearch.
# This may be replaced when dependencies are built.
