# Empty compiler generated dependencies file for ablation_activelearning.
# This may be replaced when dependencies are built.
