file(REMOVE_RECURSE
  "../bench/ablation_activelearning"
  "../bench/ablation_activelearning.pdb"
  "CMakeFiles/ablation_activelearning.dir/ablation_activelearning.cpp.o"
  "CMakeFiles/ablation_activelearning.dir/ablation_activelearning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activelearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
