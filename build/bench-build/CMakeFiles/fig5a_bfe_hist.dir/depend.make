# Empty dependencies file for fig5a_bfe_hist.
# This may be replaced when dependencies are built.
