file(REMOVE_RECURSE
  "../bench/fig5a_bfe_hist"
  "../bench/fig5a_bfe_hist.pdb"
  "CMakeFiles/fig5a_bfe_hist.dir/fig5a_bfe_hist.cpp.o"
  "CMakeFiles/fig5a_bfe_hist.dir/fig5a_bfe_hist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_bfe_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
