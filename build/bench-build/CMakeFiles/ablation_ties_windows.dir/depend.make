# Empty dependencies file for ablation_ties_windows.
# This may be replaced when dependencies are built.
