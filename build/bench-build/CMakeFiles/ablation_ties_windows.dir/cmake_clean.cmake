file(REMOVE_RECURSE
  "../bench/ablation_ties_windows"
  "../bench/ablation_ties_windows.pdb"
  "CMakeFiles/ablation_ties_windows.dir/ablation_ties_windows.cpp.o"
  "CMakeFiles/ablation_ties_windows.dir/ablation_ties_windows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ties_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
