file(REMOVE_RECURSE
  "../bench/ablation_diversity"
  "../bench/ablation_diversity.pdb"
  "CMakeFiles/ablation_diversity.dir/ablation_diversity.cpp.o"
  "CMakeFiles/ablation_diversity.dir/ablation_diversity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
