# Empty dependencies file for ablation_diversity.
# This may be replaced when dependencies are built.
