# Empty dependencies file for table3_throughput.
# This may be replaced when dependencies are built.
