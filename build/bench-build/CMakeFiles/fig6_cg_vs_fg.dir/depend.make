# Empty dependencies file for fig6_cg_vs_fg.
# This may be replaced when dependencies are built.
