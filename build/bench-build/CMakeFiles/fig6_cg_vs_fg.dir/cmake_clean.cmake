file(REMOVE_RECURSE
  "../bench/fig6_cg_vs_fg"
  "../bench/fig6_cg_vs_fg.pdb"
  "CMakeFiles/fig6_cg_vs_fg.dir/fig6_cg_vs_fg.cpp.o"
  "CMakeFiles/fig6_cg_vs_fg.dir/fig6_cg_vs_fg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cg_vs_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
