file(REMOVE_RECURSE
  "../bench/fig7_utilization"
  "../bench/fig7_utilization.pdb"
  "CMakeFiles/fig7_utilization.dir/fig7_utilization.cpp.o"
  "CMakeFiles/fig7_utilization.dir/fig7_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
