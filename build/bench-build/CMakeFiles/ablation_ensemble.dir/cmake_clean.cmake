file(REMOVE_RECURSE
  "../bench/ablation_ensemble"
  "../bench/ablation_ensemble.pdb"
  "CMakeFiles/ablation_ensemble.dir/ablation_ensemble.cpp.o"
  "CMakeFiles/ablation_ensemble.dir/ablation_ensemble.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
