file(REMOVE_RECURSE
  "../bench/fig5bc_latent"
  "../bench/fig5bc_latent.pdb"
  "CMakeFiles/fig5bc_latent.dir/fig5bc_latent.cpp.o"
  "CMakeFiles/fig5bc_latent.dir/fig5bc_latent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5bc_latent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
