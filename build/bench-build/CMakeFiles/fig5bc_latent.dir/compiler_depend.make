# Empty compiler generated dependencies file for fig5bc_latent.
# This may be replaced when dependencies are built.
