#pragma once
// Shared workload builder for the Fig. 5/6 benches: generate a library
// slice, dock it against one target, transplant poses into the MD protein
// and run CG-ESMACS, optionally retaining the replica trajectories for S2.

#include <cstdio>
#include <string>
#include <vector>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/md/system.hpp"

namespace fixture {

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace fe = impeccable::fe;

struct CompoundCg {
  std::string id;
  chem::Molecule molecule;
  int rotatable = 0;
  dock::DockResult dock_result;
  md::System lpc;
  fe::EsmacsResult esmacs;
};

struct Workload {
  md::System protein;
  std::vector<CompoundCg> compounds;
};

/// Dock `count` library compounds and run CG-ESMACS on each.
inline Workload run_cg_campaign(std::size_t count, std::uint64_t seed,
                                double esmacs_scale, int replicas,
                                bool keep_trajectories,
                                double temperature = 300.0) {
  Workload out;
  const auto lib = chem::generate_library("OZD", count, 2020 + seed);
  const auto receptor = dock::Receptor::synthesize("PLPro-like", 6909 ^ seed);
  const auto grid = dock::compute_grid(receptor);
  md::ProteinOptions popts;
  popts.residues = 60;
  out.protein = md::build_protein(6909 ^ seed, popts);

  dock::DockOptions dopts;
  dopts.runs = 1;
  dopts.lga.population = 16;
  dopts.lga.generations = 6;
  dopts.lga.ad.max_iterations = 25;

  fe::EsmacsConfig cfg = fe::cg_config(esmacs_scale);
  cfg.replicas = replicas;
  cfg.keep_trajectories = keep_trajectories;
  cfg.simulation.langevin.temperature = temperature;

  out.compounds.resize(count);
  impeccable::common::ThreadPool pool;
  impeccable::common::parallel_for(pool, 0, count, [&](std::size_t i) {
    CompoundCg& c = out.compounds[i];
    c.id = lib.entries[i].id;
    c.molecule = chem::parse_smiles(lib.entries[i].smiles);
    c.rotatable = chem::compute_descriptors(c.molecule).rotatable_bonds;
    c.dock_result = dock::dock(*grid, c.molecule, c.id, dopts);
    c.lpc = md::build_lpc(out.protein, c.molecule, c.dock_result.best_coords);
    c.esmacs = fe::run_esmacs(c.lpc, c.rotatable, cfg, seed ^ (i * 7919));
  });
  return out;
}

}  // namespace fixture
