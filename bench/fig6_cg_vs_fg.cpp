// Fig. 6 reproduction: "Comparison of S3-CG and S3-FG results for the five
// best binders ... S2 selected five outlier conformations for each binder
// and performed FG-ESMACS on them. The provisional results confirm improved
// binding for the selected conformations in all five compounds, as FG
// energies are lower than CG."
//
// Pipeline: CG campaign -> rank by CG dG -> 3D-AAE + LOF pick outlier
// conformations per top binder -> FG-ESMACS seeded from those conformations
// -> per-binder CG vs best-FG comparison. The shape to match: FG < CG for
// (nearly) all top binders.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "esmacs_fixture.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/ml/aae.hpp"
#include "impeccable/ml/lof.hpp"

namespace md = impeccable::md;
namespace ml = impeccable::ml;
namespace fe = impeccable::fe;

int main() {
  const std::size_t pool_size = 24;
  const std::size_t top_n = 5;
  const std::size_t outliers_per_binder = 5;

  auto workload =
      fixture::run_cg_campaign(pool_size, /*seed=*/31, /*esmacs_scale=*/0.5,
                               /*replicas=*/4, /*keep_trajectories=*/true);

  // Rank by CG binding free energy.
  std::vector<std::size_t> order(workload.compounds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return workload.compounds[a].esmacs.binding_free_energy <
           workload.compounds[b].esmacs.binding_free_energy;
  });
  order.resize(top_n);

  // S2: AAE over the top binders' ensembles, LOF outliers per binder.
  struct Ref {
    std::size_t compound, replica, frame;
  };
  std::vector<std::vector<impeccable::common::Vec3>> clouds;
  std::vector<Ref> refs;
  for (std::size_t j : order) {
    const auto& c = workload.compounds[j];
    for (std::size_t r = 0; r < c.esmacs.trajectories.size(); ++r)
      for (std::size_t f = 0; f < c.esmacs.trajectories[r].frames.size(); ++f) {
        clouds.push_back(
            md::protein_point_cloud(c.esmacs.trajectories[r].frames[f], c.lpc));
        refs.push_back({j, r, f});
      }
  }
  ml::AaeOptions aopts;
  aopts.epochs = 10;
  ml::Aae3d aae(static_cast<int>(clouds.front().size()), aopts);
  aae.train(clouds);
  const auto lof = ml::local_outlier_factor(aae.embed_batch(clouds), 10);

  std::printf("Fig. 6: CG vs FG binding free energies for the top-%zu CG "
              "binders (PLPro-like target)\n\n", top_n);
  std::printf("%-14s %-16s %-30s %-12s %-8s\n", "compound", "dG(CG)",
              "dG(FG) per outlier conf", "best FG", "FG<CG?");

  fe::EsmacsConfig fg = fe::fg_config(0.15);
  fg.replicas = 8;  // scaled-down FG ensemble

  int improved = 0;
  impeccable::common::ThreadPool pool;
  for (std::size_t j : order) {
    auto& c = workload.compounds[j];
    // This binder's most outlying conformations.
    std::vector<std::pair<double, std::size_t>> mine;
    for (std::size_t k = 0; k < refs.size(); ++k)
      if (refs[k].compound == j) mine.emplace_back(lof[k], k);
    std::sort(mine.rbegin(), mine.rend());
    mine.resize(std::min(outliers_per_binder, mine.size()));

    std::vector<double> fg_energies;
    for (const auto& [score, k] : mine) {
      md::System conf = c.lpc;
      conf.positions = c.esmacs.trajectories[refs[k].replica]
                           .frames[refs[k].frame]
                           .positions;
      const auto res =
          fe::run_esmacs(conf, c.rotatable, fg, 77 ^ (k * 131), &pool);
      fg_energies.push_back(res.binding_free_energy);
    }

    const double best_fg =
        *std::min_element(fg_energies.begin(), fg_energies.end());
    const double cg = c.esmacs.binding_free_energy;
    if (best_fg < cg) ++improved;

    char fg_list[128] = {0};
    std::size_t off = 0;
    for (double e : fg_energies)
      off += static_cast<std::size_t>(std::snprintf(
          fg_list + off, sizeof fg_list - off, "%.1f ", e));
    std::printf("%-14s %-16.2f %-30s %-12.2f %-8s\n", c.id.c_str(), cg, fg_list,
                best_fg, best_fg < cg ? "yes" : "no");
  }
  std::printf("\nFG improved on CG for %d/%zu binders "
              "(paper: all five; S2's outliers capture favourable "
              "conformations)\n", improved, top_n);
  return 0;
}
