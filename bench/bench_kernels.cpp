// Execution-engine benchmarks: pool submit/parallel_for throughput, blocked
// vs naive GEMM GFLOP/s, batched Dense::forward and parallel per-ligand
// dock() at several pool sizes. These are the numbers recorded in
// BENCH_pr1.json to track the perf trajectory of the execution layer.
//
// Run:  build/bench/bench_kernels [--benchmark_format=json]

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/ml/gemm.hpp"
#include "impeccable/ml/layers.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "impeccable/chem/depiction.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace ml = impeccable::ml;
namespace ic = impeccable::common;
using impeccable::common::Rng;

// ---------------------------------------------------------------- pool

static void BM_PoolSubmitThroughput(benchmark::State& state) {
  ic::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_PoolSubmitThroughput)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

static void BM_ParallelForTinyBodies(benchmark::State& state) {
  ic::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<float> out(1 << 16);
  for (auto _ : state) {
    pool.parallel_for(0, out.size(), [&](std::size_t i) {
      out[i] = static_cast<float>(i) * 0.5f;
    });
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForTinyBodies)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------- GEMM

namespace {

std::vector<float> random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> m(n);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void report_gflops(benchmark::State& state, int M, int N, int K) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * M * N * K * 1e-9,
      benchmark::Counter::kIsRate);
}

}  // namespace

static void BM_GemmNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto A = random_matrix(static_cast<std::size_t>(n) * n, 1);
  const auto B = random_matrix(static_cast<std::size_t>(n) * n, 2);
  std::vector<float> C(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    ml::gemm_naive(ml::Trans::No, ml::Trans::No, n, n, n, 1.0f, A.data(), n,
                   B.data(), n, 0.0f, C.data(), n);
    benchmark::ClobberMemory();
  }
  report_gflops(state, n, n, n);
}
BENCHMARK(BM_GemmNaive)->Arg(128)->Arg(256);

static void BM_GemmBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  std::unique_ptr<ic::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ic::ThreadPool>(threads);
  const auto A = random_matrix(static_cast<std::size_t>(n) * n, 1);
  const auto B = random_matrix(static_cast<std::size_t>(n) * n, 2);
  std::vector<float> C(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    ml::gemm(ml::Trans::No, ml::Trans::No, n, n, n, 1.0f, A.data(), n,
             B.data(), n, 0.0f, C.data(), n, pool.get());
    benchmark::ClobberMemory();
  }
  report_gflops(state, n, n, n);
}
BENCHMARK(BM_GemmBlocked)
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->UseRealTime();

// ---------------------------------------------------------------- Dense

static void BM_DenseForwardBatch(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<ic::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ic::ThreadPool>(threads);
  ml::set_compute_pool(pool.get());
  Rng rng(3);
  ml::Dense dense(512, 128, rng);
  const ml::Tensor x = ml::Tensor::randn({64, 512}, rng, 1.0f);
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(x));
  ml::set_compute_pool(nullptr);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  report_gflops(state, 64, 128, 512);
}
BENCHMARK(BM_DenseForwardBatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

static void BM_SurrogatePredictBatch(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<ic::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ic::ThreadPool>(threads);
  ml::set_compute_pool(pool.get());
  ml::SurrogateModel model;
  std::vector<chem::Image> images(
      16, chem::depict(chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O")));
  for (auto _ : state) benchmark::DoNotOptimize(model.predict_batch(images));
  ml::set_compute_pool(nullptr);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_SurrogatePredictBatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------- dock

static void BM_DockLigand(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<ic::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ic::ThreadPool>(threads);
  const auto receptor = dock::Receptor::synthesize("bench", 1);
  dock::GridOptions gopts;
  gopts.nodes = 25;
  const auto grid = dock::compute_grid(receptor, gopts);
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  dock::DockOptions opts;
  opts.runs = 8;
  opts.lga.population = 30;
  opts.lga.generations = 10;
  opts.pool = pool.get();
  for (auto _ : state)
    benchmark::DoNotOptimize(dock::dock(*grid, mol, "bench-ligand", opts));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          opts.runs);
}
BENCHMARK(BM_DockLigand)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
