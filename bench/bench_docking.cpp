// bench_docking — scorer throughput (evals/sec) and search-trajectory
// fingerprints for the S1 inner loop, the workload behind BENCH_pr2.json.
//
// Two measurements:
//   1. evals/sec of ScoringFunction::evaluate and evaluate_with_gradient on a
//      fixed pose set per ligand, single-thread and pool-wide (one scorer per
//      worker, as dock() uses them).
//   2. Full dock() runs on seeded fixtures, recording best energies and
//      ScoringFunction evaluation counts — identical numbers before and after
//      a scorer change prove the search trajectories are unchanged.
//   3. Batched-vs-scalar sweep: poses/sec through evaluate_batch /
//      evaluate_with_gradient_batch at batch sizes {1, 4, 8, 16} per ligand,
//      with speedup relative to the scalar kernels (the BENCH_pr6.json
//      headline: the SoA lane kernels should be worth 2–4x single-thread at
//      batch >= 8).
//
// Usage: bench_docking [out.json]   (JSON also echoed to stdout)

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score_batch.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
using impeccable::common::Rng;

namespace {

struct Fixture {
  const char* id;
  const char* smiles;
};

constexpr Fixture kLigands[] = {
    {"aspirin", "CC(=O)Oc1ccccc1C(=O)O"},
    {"ibuprofen", "CC(C)Cc1ccc(cc1)C(C)C(=O)O"},
    {"phenetidine", "CCOc1ccc(N)cc1"},
};

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

struct EvalRates {
  double plain = 0.0;     ///< evaluate() calls per second
  double gradient = 0.0;  ///< evaluate_with_gradient() calls per second
};

/// Hammer one scorer over a fixed pose set for ~min_seconds.
EvalRates measure_rates(const dock::AffinityGrid& grid, const dock::Ligand& lig,
                        double min_seconds) {
  const dock::ScoringFunction score(grid, lig);
  Rng rng(0xbe9c);
  std::vector<dock::Pose> poses;
  for (int i = 0; i < 64; ++i)
    poses.push_back(lig.random_pose(grid.pocket_center, 3.0, rng));

  EvalRates out;
  {
    volatile double sink = 0.0;
    // Warm up (first call sizes the scratch arena).
    sink = sink + score.evaluate(poses[0]);
    std::uint64_t n = 0;
    const double t0 = now_sec();
    double t1 = t0;
    while (t1 - t0 < min_seconds) {
      for (const auto& p : poses) sink = sink + score.evaluate(p);
      n += poses.size();
      t1 = now_sec();
    }
    out.plain = static_cast<double>(n) / (t1 - t0);
  }
  {
    volatile double sink = 0.0;
    dock::PoseGradient g;
    sink = sink + score.evaluate_with_gradient(poses[0], g);
    std::uint64_t n = 0;
    const double t0 = now_sec();
    double t1 = t0;
    while (t1 - t0 < min_seconds) {
      for (const auto& p : poses)
        sink = sink + score.evaluate_with_gradient(p, g);
      n += poses.size();
      t1 = now_sec();
    }
    out.gradient = static_cast<double>(n) / (t1 - t0);
  }
  return out;
}

/// Poses/sec through the batched SoA kernels at one batch size, over the
/// same 64-pose working set measure_rates uses for the scalar kernels.
EvalRates measure_batch_rates(const dock::AffinityGrid& grid,
                              const dock::Ligand& lig, int batch,
                              double min_seconds) {
  const dock::ScoringFunction score(grid, lig);
  Rng rng(0xbe9c);
  std::vector<dock::Pose> poses;
  for (int i = 0; i < 64; ++i)
    poses.push_back(lig.random_pose(grid.pocket_center, 3.0, rng));

  dock::BatchScratch scratch;
  double energies[dock::kMaxBatchPoses];
  std::vector<dock::PoseGradient> grads(static_cast<std::size_t>(batch));

  auto fill = [&](std::size_t at) {
    dock::PoseBatch pb;
    for (int l = 0; l < batch; ++l)
      pb.push(poses[at + static_cast<std::size_t>(l)]);
    return pb;
  };

  EvalRates out;
  {
    volatile double sink = 0.0;
    const dock::PoseBatch warm = fill(0);
    score.evaluate_batch(warm, scratch, energies);
    sink = sink + energies[0];
    std::uint64_t n = 0;
    const double t0 = now_sec();
    double t1 = t0;
    while (t1 - t0 < min_seconds) {
      for (std::size_t at = 0; at + static_cast<std::size_t>(batch) <= poses.size();
           at += static_cast<std::size_t>(batch)) {
        const dock::PoseBatch pb = fill(at);
        score.evaluate_batch(pb, scratch, energies);
        sink = sink + energies[0];
        n += static_cast<std::uint64_t>(batch);
      }
      t1 = now_sec();
    }
    out.plain = static_cast<double>(n) / (t1 - t0);
  }
  {
    volatile double sink = 0.0;
    const dock::PoseBatch warm = fill(0);
    score.evaluate_with_gradient_batch(warm, scratch, energies, grads.data());
    sink = sink + energies[0];
    std::uint64_t n = 0;
    const double t0 = now_sec();
    double t1 = t0;
    while (t1 - t0 < min_seconds) {
      for (std::size_t at = 0; at + static_cast<std::size_t>(batch) <= poses.size();
           at += static_cast<std::size_t>(batch)) {
        const dock::PoseBatch pb = fill(at);
        score.evaluate_with_gradient_batch(pb, scratch, energies, grads.data());
        sink = sink + energies[0];
        n += static_cast<std::uint64_t>(batch);
      }
      t1 = now_sec();
    }
    out.gradient = static_cast<double>(n) / (t1 - t0);
  }
  return out;
}

/// Aggregate evals/sec with one scorer per pool worker (dock()'s pattern).
double measure_pool_rate(const dock::AffinityGrid& grid, const dock::Ligand& lig,
                         std::size_t workers, double min_seconds) {
  impeccable::common::ThreadPool pool(workers);
  std::vector<std::uint64_t> counts(workers, 0);
  const double t0 = now_sec();
  pool.parallel_for(0, workers, [&](std::size_t w) {
    const dock::ScoringFunction score(grid, lig);
    Rng rng(0xbe9c + w);
    std::vector<dock::Pose> poses;
    for (int i = 0; i < 64; ++i)
      poses.push_back(lig.random_pose(grid.pocket_center, 3.0, rng));
    volatile double sink = 0.0;
    while (now_sec() - t0 < min_seconds)
      for (const auto& p : poses) sink = sink + score.evaluate(p);
    counts[w] = score.evaluations();
  }, 1);
  const double elapsed = now_sec() - t0;
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return static_cast<double>(total) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const auto receptor = dock::Receptor::synthesize("BENCH", 42);
  dock::GridOptions gopts;
  gopts.nodes = 33;
  const auto grid = dock::compute_grid(receptor, gopts);

  const double min_seconds = 0.4;
  const std::size_t workers = std::max(1u, std::thread::hardware_concurrency());

  std::ostringstream json;
  json.precision(17);
  json << "{\n  \"workload\": \"bench_docking\",\n  \"grid_nodes\": "
       << gopts.nodes << ",\n  \"pool_workers\": " << workers
       << ",\n  \"ligands\": [\n";

  bool first = true;
  for (const Fixture& fx : kLigands) {
    const auto mol = chem::parse_smiles(fx.smiles);
    const dock::Ligand lig(mol, 3);
    const EvalRates rates = measure_rates(*grid, lig, min_seconds);
    const double pool_rate = measure_pool_rate(*grid, lig, workers, min_seconds);

    // Search-trajectory fingerprint: seeded dock() best energy + eval count.
    dock::DockOptions dopts;
    dopts.runs = 2;
    dopts.lga.population = 20;
    dopts.lga.generations = 8;
    const auto res = dock::dock(*grid, mol, fx.id, dopts);

    if (!first) json << ",\n";
    first = false;
    json << "    {\"id\": \"" << fx.id << "\", \"atoms\": " << lig.atom_count()
         << ", \"torsions\": " << lig.torsion_count()
         << ", \"nb_pairs\": " << lig.nonbonded_pairs().size()
         << ",\n     \"evals_per_sec\": " << rates.plain
         << ", \"grad_evals_per_sec\": " << rates.gradient
         << ", \"pool_evals_per_sec\": " << pool_rate
         << ",\n     \"dock_best_score\": " << res.best_score
         << ", \"dock_evaluations\": " << res.evaluations
         << ",\n     \"batch_sweep\": [";
    bool first_b = true;
    for (int batch : {1, 4, 8, 16}) {
      const EvalRates br = measure_batch_rates(*grid, lig, batch, min_seconds);
      if (!first_b) json << ",";
      first_b = false;
      json << "\n       {\"batch\": " << batch
           << ", \"poses_per_sec\": " << br.plain
           << ", \"grad_poses_per_sec\": " << br.gradient
           << ",\n        \"speedup\": " << br.plain / rates.plain
           << ", \"grad_speedup\": " << br.gradient / rates.gradient << "}";
    }
    json << "\n     ]}";
  }
  json << "\n  ]\n}\n";

  std::cout << json.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << json.str();
    std::cerr << "wrote " << argv[1] << "\n";
  }
  return 0;
}
