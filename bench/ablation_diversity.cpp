// Ablation: diversity-based S3-CG seeding (Sec. 7.1.2 — "we chose 10,000
// compounds for each target by picking out the structurally most diverse
// compounds ... allowing for maximum possible coverage of the chemical
// space").
//
// From one docked pool, promote a fixed CG budget three ways:
//   * top-score  — best docking scores only,
//   * random     — uniform sample,
//   * MaxMin     — the paper's structural-diversity pick.
// Reported per strategy: distinct Murcko scaffolds promoted (chemical-space
// coverage), mean pairwise Tanimoto (redundancy), and the best CG binding
// free energy found (hit quality is not sacrificed).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>

#include "esmacs_fixture.hpp"
#include "impeccable/chem/diversity.hpp"
#include "impeccable/chem/fingerprint.hpp"
#include "impeccable/chem/scaffold.hpp"
#include "impeccable/common/rng.hpp"

namespace chem = impeccable::chem;
using impeccable::common::Rng;

int main() {
  const std::size_t pool = 40;
  const std::size_t budget = 8;

  // Docked pool with CG energies for every compound (so all three
  // strategies are judged on identical ground truth).
  const auto workload =
      fixture::run_cg_campaign(pool, /*seed=*/77, /*esmacs_scale=*/0.4,
                               /*replicas=*/3, /*keep_trajectories=*/false);

  std::vector<chem::BitSet> fps;
  for (const auto& c : workload.compounds)
    fps.push_back(chem::morgan_fingerprint(c.molecule));

  auto evaluate = [&](const char* name, const std::vector<std::size_t>& pick) {
    std::set<std::string> scaffolds;
    double best_cg = 1e18;
    double tanimoto_sum = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < pick.size(); ++i) {
      const auto& c = workload.compounds[pick[i]];
      scaffolds.insert(chem::scaffold_smiles(c.molecule));
      best_cg = std::min(best_cg, c.esmacs.binding_free_energy);
      for (std::size_t j = i + 1; j < pick.size(); ++j) {
        tanimoto_sum += chem::tanimoto(fps[pick[i]], fps[pick[j]]);
        ++pairs;
      }
    }
    std::printf("%-12s %-12zu %-18.3f %-14.2f\n", name, scaffolds.size(),
                pairs ? tanimoto_sum / pairs : 0.0, best_cg);
  };

  std::printf("S3-CG seeding ablation: %zu docked compounds, budget %zu\n\n",
              pool, budget);
  std::printf("%-12s %-12s %-18s %-14s\n", "strategy", "scaffolds",
              "mean tanimoto", "best dG(CG)");

  {  // top docking scores
    std::vector<std::size_t> order(pool);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return workload.compounds[a].dock_result.best_score <
             workload.compounds[b].dock_result.best_score;
    });
    order.resize(budget);
    evaluate("top-score", order);
  }
  {  // random
    Rng rng(3);
    std::vector<std::size_t> order(pool);
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);
    order.resize(budget);
    evaluate("random", order);
  }
  {  // MaxMin diversity (the paper's choice)
    evaluate("MaxMin", chem::maxmin_pick(fps, budget, 9));
  }

  std::printf("\nexpected shape: MaxMin promotes the most scaffolds at the "
              "lowest redundancy while staying competitive on the best hit — "
              "the rationale for diversity seeding in Sec. 7.1.2.\n");
  return 0;
}
