// Fig. 5A reproduction: "Summary histogram of the distribution of binding
// free energies estimated using CG-ESMACS" for the PLPro-like target.
//
// The paper runs 10,000 compounds and reports values "typically between -60
// and +20 kcal/mol"; we run a scaled-down slice and print the histogram over
// the same axis. Shape to match: a broad unimodal distribution with a
// favourable (negative) tail of strong binders.

#include <cstdio>

#include "esmacs_fixture.hpp"
#include "impeccable/common/stats.hpp"

int main() {
  const std::size_t compounds = 96;
  const auto workload =
      fixture::run_cg_campaign(compounds, /*seed=*/11, /*esmacs_scale=*/0.4,
                               /*replicas=*/4, /*keep_trajectories=*/false);

  std::vector<double> energies;
  for (const auto& c : workload.compounds)
    energies.push_back(c.esmacs.binding_free_energy);

  std::printf("Fig. 5A: CG-ESMACS binding free energy distribution "
              "(%zu compounds, 4 replicas each)\n\n", compounds);
  impeccable::common::Histogram hist(-80.0, 20.0, 20);
  hist.add_all(energies);
  std::printf("%s\n", hist.to_text().c_str());

  std::printf("mean %.1f  sd %.1f  min %.1f  max %.1f kcal/mol "
              "(paper range: about -60 to +20)\n",
              impeccable::common::mean(energies),
              impeccable::common::stddev(energies),
              impeccable::common::min_of(energies),
              impeccable::common::max_of(energies));

  // Dock score vs CG energy: the stages must agree on who binds.
  std::vector<double> dock_scores;
  for (const auto& c : workload.compounds)
    dock_scores.push_back(c.dock_result.best_score);
  std::printf("spearman(dock score, CG dG) = %.3f (both lower = better)\n",
              impeccable::common::spearman(dock_scores, energies));
  return 0;
}
