// Table 3 reproduction: "Throughput and performance measured as peak flop
// per second ... per Summit node" — for ML1, S1, S3-CG, S3-FG at the paper's
// GPU counts (1536 / 6000 / 6000 / 6000).
//
// Two parts:
//  1. The scaled table: aggregate Tflop/s = GPUs x per-GPU rate; throughput
//     (ligands/s) = aggregate rate / flops-per-ligand — per-ligand flops
//     come from our kernel models at paper protocol, rates are calibrated
//     from the paper's measurements (see bench/paper_protocol.hpp).
//  2. Host measurements: each kernel is actually run here and timed, and its
//     model flop count divided by wall time gives this host's Gflop/s — the
//     reproducible "measured over a short time interval" analogue.

#include <chrono>
#include <cstdio>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"
#include "impeccable/md/integrator.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "paper_protocol.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace ml = impeccable::ml;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  // ---- part 1: the scaled Table 3 ----------------------------------------
  struct Row {
    const char* name;
    int gpus;
    double rate_per_gpu;           // Tflop/s (calibrated from paper Table 3)
    double gpu_seconds_per_ligand; // from the duration models
    double paper_tflops;
    const char* paper_throughput;
  };
  const Row rows[] = {
      {"ML1", 1536, paper::kMl1RatePerGpu,
       paper::ml1_model().gpu_seconds_per_ligand, 753.9, "319674 ligands/s"},
      {"S1", 6000, paper::kS1RatePerGpu,
       paper::s1_model().gpu_seconds_per_ligand, 112.5, "14252 ligands/s"},
      {"S3-CG", 6000, paper::kS3CgRatePerGpu,
       paper::s3cg_model().gpu_seconds_per_ligand, 277.9, "2000 ligand/s"},
      {"S3-FG", 6000, paper::kS3FgRatePerGpu,
       paper::s3fg_model().gpu_seconds_per_ligand, 732.4, "200 ligand/s"},
  };

  std::printf("Table 3: throughput and flop rate per component (Summit model)\n\n");
  std::printf("%-8s %-8s %-10s %-20s %-12s %-18s\n", "Comp.", "#GPUs",
              "Tflop/s", "Throughput", "paper TF/s", "paper throughput");
  for (const auto& r : rows) {
    const double tflops = r.gpus * r.rate_per_gpu;
    // Steady-state throughput: GPUs / GPU-time per ligand.
    const double ligands_per_s = r.gpus / r.gpu_seconds_per_ligand;
    std::printf("%-8s %-8d %-10.1f %-9.1f ligands/s  %-12.1f %-18s\n", r.name,
                r.gpus, tflops, ligands_per_s, r.paper_tflops,
                r.paper_throughput);
  }
  std::printf("\n(paper's S3 throughput rows are peak-burst values — the "
              "caption says 'measured over short but time interval'; ours "
              "are steady-state, consistent with Table 2's per-ligand "
              "node-hours.)\n");

  // ---- part 2: host kernel measurements ----------------------------------
  std::printf("\nhost kernel rates (model flops / measured wall time):\n");
  std::printf("%-22s %-14s %-12s\n", "kernel", "work units", "Gflop/s");

  {  // ML1 inference.
    ml::SurrogateModel surrogate;
    std::vector<chem::Image> images;
    const auto lib = chem::generate_library("B", 64, 3);
    for (const auto& e : lib.entries)
      images.push_back(chem::depict(chem::parse_smiles(e.smiles)));
    const auto t0 = std::chrono::steady_clock::now();
    surrogate.predict_batch(images);
    const double dt = seconds_since(t0);
    const double flops = static_cast<double>(surrogate.flops_per_image()) *
                         static_cast<double>(images.size());
    std::printf("%-22s %-14s %-12.2f\n", "ML1 inference", "64 images",
                flops / dt / 1e9);
  }
  {  // S1 docking evaluations.
    const auto receptor = dock::Receptor::synthesize("b", 5);
    const auto grid = dock::compute_grid(receptor);
    const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
    const dock::Ligand lig(mol);
    const dock::ScoringFunction score(*grid, lig);
    impeccable::common::Rng rng(1);
    const auto pose = lig.random_pose(grid->pocket_center, 3.0, rng);
    const int n = 20000;
    const auto t0 = std::chrono::steady_clock::now();
    double acc = 0;
    for (int i = 0; i < n; ++i) acc += score.evaluate(pose);
    const double dt = seconds_since(t0);
    const double flops =
        static_cast<double>(dock::flops_per_evaluation(
            lig.atom_count(), static_cast<int>(lig.nonbonded_pairs().size()))) * n;
    std::printf("%-22s %-14s %-12.2f   (checksum %.1f)\n", "S1 pose evaluation",
                "20000 evals", flops / dt / 1e9, acc / n);
  }
  {  // S3 MD steps (CG-sized and FG-sized systems share the kernel).
    md::ProteinOptions popts;
    popts.residues = 120;
    const auto protein = md::build_protein(7, popts);
    const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1");
    const dock::Ligand lig(mol);
    const auto lpc = md::build_lpc(protein, mol, lig.reference_coords());
    const md::ForceField ff(lpc.topology);
    md::LangevinIntegrator integ(ff, {}, 3);
    auto pos = lpc.positions;
    std::vector<impeccable::common::Vec3> vel;
    integ.thermalize(vel);
    integ.run(pos, vel, 10);  // warm up neighbour structures
    const int n = 2000;
    const auto t0 = std::chrono::steady_clock::now();
    integ.run(pos, vel, n);
    const double dt = seconds_since(t0);
    const double flops = static_cast<double>(md::flops_per_md_step(
                             lpc.topology.bead_count(), ff.last_pair_count())) * n;
    std::printf("%-22s %-14s %-12.2f\n", "S3 MD step", "2000 steps",
                flops / dt / 1e9);
  }
  return 0;
}
