// Ablation: the ML1 active-learning loop (Sec. 5.1.2 / 8 — "Individual
// workflow components deliver 100x to 1000x improvement over traditional
// methods"; the surrogate expands effective screening by orders of
// magnitude).
//
// Protocol: a library with exhaustively docked ground truth. Two strategies
// spend the SAME docking budget over 3 iterations:
//   * random  — each iteration docks a fresh random batch;
//   * ML1     — iteration 0 docks a random batch, then the surrogate is
//               retrained on everything docked so far and each next batch is
//               its top-ranked untested slice (plus an exploration sample).
// Metric: after each iteration, the fraction of the TRUE top-5% binders that
// have been docked (hit discovery), plus the effective-screening multiplier.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/ml/surrogate.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace ml = impeccable::ml;
using impeccable::common::Rng;

int main() {
  const std::size_t library_size = 600;
  const std::size_t batch = 60;  // docking budget per iteration
  const int iterations = 3;

  const auto lib = chem::generate_library("OZD", library_size, 909);
  const auto receptor = dock::Receptor::synthesize("T", 1818);
  const auto grid = dock::compute_grid(receptor);

  dock::DockOptions dopts;
  dopts.runs = 1;
  dopts.lga.population = 16;
  dopts.lga.generations = 6;
  dopts.lga.ad.max_iterations = 25;

  // Ground truth (the oracle both strategies query batch by batch).
  std::vector<chem::Molecule> mols;
  std::vector<chem::Image> images;
  std::vector<double> truth(library_size);
  for (const auto& e : lib.entries) {
    mols.push_back(chem::parse_smiles(e.smiles));
    images.push_back(chem::depict(mols.back()));
  }
  impeccable::common::ThreadPool pool;
  impeccable::common::parallel_for(pool, 0, library_size, [&](std::size_t i) {
    truth[i] = dock::dock(*grid, mols[i], lib.entries[i].id, dopts).best_score;
  });

  // True top-5% set.
  std::vector<std::size_t> order(library_size);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return truth[a] < truth[b]; });
  std::set<std::size_t> top5(order.begin(),
                             order.begin() + static_cast<long>(library_size / 20));

  auto hits_in = [&](const std::set<std::size_t>& docked) {
    std::size_t h = 0;
    for (std::size_t i : docked)
      if (top5.count(i)) ++h;
    return static_cast<double>(h) / static_cast<double>(top5.size());
  };

  std::printf("Active-learning ablation: %zu-compound library, %zu docks per "
              "iteration, true top-5%% = %zu compounds\n\n",
              library_size, batch, top5.size());
  std::printf("%-6s %-28s %-28s\n", "iter", "random: top-5% found",
              "ML1-guided: top-5% found");

  // --- random strategy ---
  Rng rrng(5);
  std::vector<std::size_t> shuffled(library_size);
  std::iota(shuffled.begin(), shuffled.end(), std::size_t{0});
  rrng.shuffle(shuffled);
  std::set<std::size_t> random_docked;

  // --- ML1 strategy state ---
  Rng arng(5);
  std::set<std::size_t> ml_docked;
  std::vector<chem::Image> train_images;
  std::vector<double> train_scores;

  for (int it = 0; it < iterations; ++it) {
    // random batch.
    for (std::size_t k = 0; k < batch; ++k)
      random_docked.insert(shuffled[it * batch + k]);

    // ML1 batch.
    std::vector<std::size_t> chosen;
    if (it == 0) {
      std::vector<std::size_t> all(library_size);
      std::iota(all.begin(), all.end(), std::size_t{0});
      arng.shuffle(all);
      chosen.assign(all.begin(), all.begin() + static_cast<long>(batch));
    } else {
      ml::SurrogateOptions sopts;
      sopts.epochs = 8;
      ml::SurrogateModel surrogate(sopts);
      const double best = *std::min_element(train_scores.begin(), train_scores.end());
      const double worst = *std::max_element(train_scores.begin(), train_scores.end());
      std::vector<float> labels;
      for (double s : train_scores)
        labels.push_back(ml::score_to_label(s, best, worst));
      surrogate.train(train_images, labels);
      const auto pred = surrogate.predict_batch(images);

      std::vector<std::size_t> ranked(library_size);
      std::iota(ranked.begin(), ranked.end(), std::size_t{0});
      std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
        return pred[a] > pred[b];
      });
      const std::size_t explore = batch / 6;  // ~17% exploration
      for (std::size_t r : ranked) {
        if (chosen.size() + explore >= batch) break;
        if (!ml_docked.count(r)) chosen.push_back(r);
      }
      while (chosen.size() < batch) {
        const std::size_t r = arng.index(library_size);
        if (!ml_docked.count(r) &&
            std::find(chosen.begin(), chosen.end(), r) == chosen.end())
          chosen.push_back(r);
      }
    }
    for (std::size_t i : chosen) {
      ml_docked.insert(i);
      train_images.push_back(images[i]);
      train_scores.push_back(truth[i]);  // oracle = the precomputed dock
    }

    std::printf("%-6d %-28.2f %-28.2f\n", it, hits_in(random_docked),
                hits_in(ml_docked));
  }

  const double coverage_mult =
      static_cast<double>(library_size) / static_cast<double>(iterations * batch);
  std::printf("\nafter %d iterations both strategies docked %zu/%zu compounds;"
              " ML1 additionally *ranked* the whole library each iteration —\n"
              "an effective screening multiplier of %.1fx at this scale "
              "(the paper reports 2-3 orders of magnitude at 4.2e9-ligand "
              "scale, Sec. 5.1.2).\n",
              iterations, ml_docked.size(), library_size, coverage_mult);
  return 0;
}
