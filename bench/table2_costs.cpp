// Table 2 reproduction: "Normalized computational costs on Summit" —
// nodes per ligand, hours per ligand, node-hours per ligand for
// Docking (S1), BFE-CG (S3-CG), Ad. Sampling (S2), BFE-FG (S3-FG) and
// BFE-TI (TIES; "not integrated" in the paper's campaign either).
//
// Derivation: protocol shapes (replicas x nanoseconds x run counts) from the
// paper's methods, engine-speed calibrations documented in
// bench/paper_protocol.hpp. The headline property is the six-to-seven
// orders-of-magnitude cost spread that makes the N-deep filtering pipeline
// worthwhile (Sec. 3.2/4).

#include <cmath>
#include <cstdio>

#include "paper_protocol.hpp"

int main() {
  const paper::MethodModel rows[] = {
      paper::s1_model(),
      paper::s3cg_model(),
      paper::s2_model(),
      paper::s3fg_model(),
      paper::ties_model(),
  };

  std::printf("Table 2: normalized computational costs on the Summit model\n");
  std::printf("(protocol shapes from the paper; engine speeds calibrated in "
              "bench/paper_protocol.hpp)\n\n");
  std::printf("%-26s %-12s %-14s %-16s %-16s\n", "Method", "Nodes/lig",
              "Hours/lig", "Node-h/lig", "paper Node-h");

  double min_cost = 1e300, max_cost = 0.0;
  for (const auto& r : rows) {
    const double node_hours = r.hours_per_ligand * r.nodes_per_ligand;
    min_cost = std::min(min_cost, node_hours);
    max_cost = std::max(max_cost, node_hours);
    std::printf("%-26s %-12.4f %-14.5f %-16.5g %-16.4g\n", r.name,
                r.nodes_per_ligand, r.hours_per_ligand, node_hours,
                r.paper_node_hours);
  }

  std::printf("\ndynamic range: %.1f orders of magnitude "
              "(paper: 6-7 orders, Sec. 4)\n",
              std::log10(max_cost / min_cost));
  return 0;
}
