#pragma once
// Paper-scale protocol and performance models shared by the Table 2 / 3
// benches.
//
// Two ingredients:
//  (a) protocol shapes — replica counts, simulated nanoseconds, docking run
//      counts — straight from the paper's methods sections;
//  (b) engine-speed calibrations — documented rates of the production
//      engines on Summit-class hardware (AutoDock-GPU docks/s/GPU, OpenMM
//      ns/day/GPU, NAMD ns/day/node, TensorRT images/s/GPU). These encode
//      hardware we cannot measure here and are the only non-reproduced
//      numbers; everything downstream (node-hours, throughputs, flop rates)
//      is derived.
//
// Per-work-unit flop counts come from OUR kernel models and are used for the
// host-measured rates in the Table 3 bench.

#include <cstdint>

#include "impeccable/dock/engine.hpp"
#include "impeccable/md/simulation.hpp"

namespace paper {

// ---- engine-speed calibrations (Summit-class) ------------------------------
inline constexpr double kAutodockDocksPerGpuSecond = 2.4;   // ~0.42 s/dock
inline constexpr double kOpenmmNsPerDayPerGpu = 250.0;      // CG-sized system
inline constexpr double kNamdNsPerDayPerNode = 29.0;        // TIES on CPU
inline constexpr double kTensorRtImagesPerGpuSecond = 208.0;

// ---- method execution models ----------------------------------------------

struct MethodModel {
  const char* name;
  double nodes_per_ligand;   ///< concurrent footprint (Table 2 column 1)
  double hours_per_ligand;   ///< wall duration of that footprint
  double gpu_seconds_per_ligand;  ///< aggregate GPU time (throughput model)
  double paper_node_hours;   ///< the paper's Table 2 value for comparison
};

/// S1: one GPU per dock; 1/6 of a Summit node.
inline MethodModel s1_model() {
  const double seconds = 1.0 / kAutodockDocksPerGpuSecond;
  return {"Docking (S1)", 1.0 / 6.0, seconds / 3600.0, seconds, 1e-4};
}

/// S3-CG: 6 replicas x 5 ns (1 equil + 4 prod), all 6 on one node's GPUs.
inline MethodModel s3cg_model() {
  const double hours = 5.0 / kOpenmmNsPerDayPerGpu * 24.0;
  return {"BFE-CG (S3-CG)", 1.0, hours, 6.0 * hours * 3600.0, 0.5};
}

/// S2: ensemble MD + 3D-AAE DDP training; 2 nodes for ~2 h per ligand batch
/// share (MD 6 x 2 ns + training amortized).
inline MethodModel s2_model() {
  const double md_hours = 2.0 * 6.0 / kOpenmmNsPerDayPerGpu * 24.0 / 6.0;
  const double train_hours = 1.4;  // 100 epochs x 1e5 samples on 12 GPUs
  const double hours = md_hours + train_hours;
  return {"Ad. Sampling (S2)", 2.0, hours, 12.0 * hours * 3600.0, 4.0};
}

/// S3-FG: 24 replicas x 12 ns (2 equil + 10 prod) across 4 nodes (24 GPUs).
inline MethodModel s3fg_model() {
  const double hours = 12.0 / kOpenmmNsPerDayPerGpu * 24.0;
  return {"BFE-FG (S3-FG)", 4.0, hours, 24.0 * hours * 3600.0, 5.0};
}

/// TIES: 13 lambda windows x 5 replicas x ~12 ns NAMD on CPU nodes; the 65
/// concurrent simulations occupy 64 nodes for the full window duration.
inline MethodModel ties_model() {
  const double hours = 12.0 / kNamdNsPerDayPerNode * 24.0;
  return {"BFE-TI (not integrated)", 64.0, hours, 0.0, 640.0};
}

/// ML1 inference: TensorRT FP16 ResNet-50, one image per ligand.
inline MethodModel ml1_model() {
  const double seconds = 1.0 / kTensorRtImagesPerGpuSecond;
  return {"ML1", 1.0 / 6.0, seconds / 3600.0, seconds, 0.0};
}

// ---- per-work-unit flop models (ours) --------------------------------------

/// S1: one LGA pose evaluation of a 32-atom ligand.
inline double s1_flops_per_ligand() {
  const std::uint64_t per_eval = impeccable::dock::flops_per_evaluation(32, 160);
  return 100.0 * 2.5e4 * static_cast<double>(per_eval);
}

/// ML1: ResNet-50-scale forward is ~8 Gflop; our surrogate is the
/// scaled-down stand-in whose model flops are used for host measurements.
inline double ml1_flops_per_ligand() { return 8.0e9; }

// ---- calibration: paper Table 3 per-GPU effective rates --------------------
// ML1 753.9 Tflop/s / 1536 GPUs; S1 112.5 / 6000; S3-CG 277.9 / 6000;
// S3-FG 732.4 / 6000.

inline constexpr double kMl1RatePerGpu = 753.9 / 1536.0;   // 0.491 Tflop/s
inline constexpr double kS1RatePerGpu = 112.5 / 6000.0;    // 0.019
inline constexpr double kS3CgRatePerGpu = 277.9 / 6000.0;  // 0.046
inline constexpr double kS3FgRatePerGpu = 732.4 / 6000.0;  // 0.122

}  // namespace paper
