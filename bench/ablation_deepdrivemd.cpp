// Ablation: DeepDriveMD adaptive sampling vs plain ensemble MD on a
// protein-ligand complex (Sec. 5.1.4: S2 "builds an adaptive sampling
// framework to support the exploration of protein-ligand bound states that
// are not often accessible", using "the acceleration of 'rare' events").
//
// Workload: a docked LPC. Ligand repositioning/partial unbinding is the rare
// event. Same MD budget, two restart policies per round:
//   * plain    — every simulation continues from its own last frame;
//   * adaptive — next-round starts are the current round's 3D-AAE
//                latent-space LOF outliers (ligand-aware point clouds).
// Metric: ligand pose coverage — mean pairwise raw RMSD of the ligand beads
// in the receptor frame — after each round.

#include <cstdio>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/core/deepdrivemd.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/md/system.hpp"

namespace core = impeccable::core;
namespace md = impeccable::md;
namespace dock = impeccable::dock;
namespace chem = impeccable::chem;

int main() {
  // One docked LPC.
  const auto receptor = dock::Receptor::synthesize("T", 515);
  const auto grid = dock::compute_grid(receptor);
  const auto mol = chem::parse_smiles("CCOc1ccc(cc1)C(=O)Nc1ccccn1");
  dock::DockOptions dopts;
  dopts.runs = 2;
  const auto pose = dock::dock(*grid, mol, "L", dopts);
  md::ProteinOptions popts;
  popts.residues = 50;
  const auto protein = md::build_protein(515, popts);
  const auto lpc = md::build_lpc(protein, mol, pose.best_coords);

  core::DeepDriveMdOptions opts;
  opts.rounds = 6;
  opts.simulations_per_round = 6;
  opts.simulation.equilibration_steps = 40;
  opts.simulation.production_steps = 300;
  opts.simulation.report_interval = 40;
  opts.simulation.langevin.temperature = 380.0;
  opts.aae.epochs = 15;
  opts.ligand_aware = true;

  // Average both policies over several independent repeats — single runs of
  // a stochastic sampler are dominated by lucky/unlucky thermal kicks.
  impeccable::common::ThreadPool pool;
  const int repeats = 4;
  std::vector<double> plain_cover(static_cast<std::size_t>(opts.rounds), 0.0);
  std::vector<double> adapt_cover(plain_cover), plain_front(plain_cover),
      adapt_front(plain_cover);
  unsigned long long steps = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    auto ropts = opts;
    ropts.seed = opts.seed + 1000 * static_cast<std::uint64_t>(rep);
    const auto adaptive = core::run_deepdrivemd(lpc, ropts, true, &pool);
    const auto plain = core::run_deepdrivemd(lpc, ropts, false, &pool);
    steps = static_cast<unsigned long long>(adaptive.md_steps);
    for (int r = 0; r < opts.rounds; ++r) {
      plain_cover[static_cast<std::size_t>(r)] +=
          plain.rounds[static_cast<std::size_t>(r)].coverage / repeats;
      adapt_cover[static_cast<std::size_t>(r)] +=
          adaptive.rounds[static_cast<std::size_t>(r)].coverage / repeats;
      plain_front[static_cast<std::size_t>(r)] +=
          plain.rounds[static_cast<std::size_t>(r)].frontier / repeats;
      adapt_front[static_cast<std::size_t>(r)] +=
          adaptive.rounds[static_cast<std::size_t>(r)].frontier / repeats;
    }
  }

  std::printf("DeepDriveMD ablation on an LPC: %d rounds x %d simulations, "
              "%d repeats (equal MD budget: %llu steps per policy run)\n\n",
              opts.rounds, opts.simulations_per_round, repeats, steps);
  std::printf("%-7s %-16s %-16s %-18s %-18s\n", "round", "plain cover",
              "adaptive cover", "plain frontier", "adaptive frontier");
  for (int r = 0; r < opts.rounds; ++r)
    std::printf("%-7d %-16.3f %-16.3f %-18.3f %-18.3f\n", r,
                plain_cover[static_cast<std::size_t>(r)],
                adapt_cover[static_cast<std::size_t>(r)],
                plain_front[static_cast<std::size_t>(r)],
                adapt_front[static_cast<std::size_t>(r)]);

  const double gain =
      adapt_front.back() / std::max(1e-12, plain_front.back());
  const double cgain =
      adapt_cover.back() / std::max(1e-12, plain_cover.back());
  std::printf("\nfinal adaptive/plain: coverage %.2fx, rare-event frontier "
              "%.2fx\n\nnote: on this coarse-grained substrate the landscape "
              "is smooth (no kinetic traps), so plain diffusion explores as "
              "well as outlier restarts — parity is the expected outcome "
              "here. The paper's orders-of-magnitude gains come from rugged "
              "all-atom landscapes where trajectories get stuck. What this "
              "bench verifies is the loop's machinery: the 3D-AAE latent "
              "tracks the ligand pose and LOF restarts are not harmful; that "
              "the selected outlier conformations are *energetically* "
              "productive is shown by bench/fig6_cg_vs_fg (FG < CG for 5/5 "
              "binders).\n", cgain, gain);
  return 0;
}
