// google-benchmark microbenchmarks of the hot kernels behind every stage:
// docking pose evaluation (with and without gradients), MD steps, conv2d
// forward, fingerprints, SMILES parsing, cell-list construction, Chamfer
// loss and LOF. These are the per-work-unit costs that the Table 2/3
// cost models scale up.

#include <benchmark/benchmark.h>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/fingerprint.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"
#include "impeccable/md/integrator.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/chem/scaffold.hpp"
#include "impeccable/chem/substructure.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/ml/lof.hpp"
#include "impeccable/ml/shards.hpp"
#include "impeccable/ml/loss.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "impeccable/ml/tensor.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace ml = impeccable::ml;
using impeccable::common::Rng;

namespace {

const dock::AffinityGrid& shared_grid() {
  static const auto grid = [] {
    return dock::compute_grid(dock::Receptor::synthesize("bench", 1));
  }();
  return *grid;
}

}  // namespace

static void BM_DockEvaluate(benchmark::State& state) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(shared_grid(), lig);
  Rng rng(1);
  const auto pose = lig.random_pose(shared_grid().pocket_center, 3.0, rng);
  for (auto _ : state) benchmark::DoNotOptimize(score.evaluate(pose));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DockEvaluate);

static void BM_DockEvaluateWithGradient(benchmark::State& state) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(shared_grid(), lig);
  Rng rng(1);
  const auto pose = lig.random_pose(shared_grid().pocket_center, 3.0, rng);
  dock::PoseGradient grad;
  for (auto _ : state)
    benchmark::DoNotOptimize(score.evaluate_with_gradient(pose, grad));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DockEvaluateWithGradient);

static void BM_MdStep(benchmark::State& state) {
  md::ProteinOptions popts;
  popts.residues = static_cast<int>(state.range(0));
  const auto protein = md::build_protein(3, popts);
  const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1");
  const dock::Ligand lig(mol);
  const auto lpc = md::build_lpc(protein, mol, lig.reference_coords());
  const md::ForceField ff(lpc.topology);
  md::LangevinIntegrator integ(ff, {}, 1);
  auto pos = lpc.positions;
  std::vector<impeccable::common::Vec3> vel;
  integ.thermalize(vel);
  for (auto _ : state) integ.run(pos, vel, 1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MdStep)->Arg(60)->Arg(120)->Arg(240);

static void BM_SurrogateInference(benchmark::State& state) {
  ml::SurrogateModel model;
  const auto img = chem::depict(chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O"));
  for (auto _ : state) benchmark::DoNotOptimize(model.predict(img));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SurrogateInference);

static void BM_SmilesParse(benchmark::State& state) {
  const std::string s = "CC(C)Cc1ccc(cc1)C(C)C(=O)O";
  for (auto _ : state) benchmark::DoNotOptimize(chem::parse_smiles(s));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SmilesParse);

static void BM_MorganFingerprint(benchmark::State& state) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  for (auto _ : state) benchmark::DoNotOptimize(chem::morgan_fingerprint(mol));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MorganFingerprint);

static void BM_Depiction(benchmark::State& state) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  for (auto _ : state) benchmark::DoNotOptimize(chem::depict(mol));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Depiction);

static void BM_CellListBuild(benchmark::State& state) {
  Rng rng(5);
  std::vector<impeccable::common::Vec3> pos;
  for (int i = 0; i < state.range(0); ++i)
    pos.push_back({rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)});
  md::CellList cl;
  for (auto _ : state) {
    cl.build(pos, 10.0);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CellListBuild)->Arg(256)->Arg(1024);

static void BM_ChamferLoss(benchmark::State& state) {
  Rng rng(6);
  ml::Tensor a({4, 60, 3}), b({4, 60, 3});
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(-3, 3));
    b[i] = static_cast<float>(rng.uniform(-3, 3));
  }
  for (auto _ : state) benchmark::DoNotOptimize(ml::chamfer_loss(a, b));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChamferLoss);

static void BM_Lof(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < state.range(0); ++i)
    pts.push_back({rng.gauss(), rng.gauss(), rng.gauss(), rng.gauss()});
  for (auto _ : state)
    benchmark::DoNotOptimize(ml::local_outlier_factor(pts, 10));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Lof)->Arg(200);

static void BM_LibraryGenerate(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(chem::generate_compound(99, i++));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LibraryGenerate);

static void BM_MurckoScaffold(benchmark::State& state) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)Oc1ccncc1");
  for (auto _ : state) benchmark::DoNotOptimize(chem::murcko_scaffold(mol));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MurckoScaffold);

static void BM_SubstructureMatch(benchmark::State& state) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  const auto query = chem::parse_smiles("C(=O)O");
  for (auto _ : state)
    benchmark::DoNotOptimize(chem::has_substructure(mol, query));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubstructureMatch);

static void BM_BlockAverageError(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> series;
  for (int i = 0; i < 1024; ++i) series.push_back(rng.gauss());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        impeccable::common::block_average_error(series));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockAverageError);

static void BM_ShardEncodeDecode(benchmark::State& state) {
  std::vector<ml::ShardRecord> records;
  const auto lib = chem::generate_library("K", 8, 13);
  for (const auto& e : lib.entries)
    records.push_back({e.id, chem::depict(chem::parse_smiles(e.smiles))});
  for (auto _ : state)
    benchmark::DoNotOptimize(ml::decode_shard(ml::encode_shard(records)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ShardEncodeDecode);
