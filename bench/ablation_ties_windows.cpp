// Ablation: TIES λ-window schedule. The TI integral converges with the
// number of λ windows (the production protocol uses 13); too few windows
// bias the trapezoid integral where <dH/dλ> is curved (near λ=0, where the
// soft core switches on). This sweep shows the estimate stabilizing as the
// schedule densifies — the convergence check any TI study runs.

#include <cstdio>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/ties.hpp"
#include "impeccable/md/system.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace fe = impeccable::fe;

int main() {
  const auto receptor = dock::Receptor::synthesize("T", 808);
  const auto grid = dock::compute_grid(receptor);
  const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1C(=O)O");
  dock::DockOptions dopts;
  dopts.runs = 2;
  const auto pose = dock::dock(*grid, mol, "L", dopts);
  md::ProteinOptions popts;
  popts.residues = 50;
  const auto protein = md::build_protein(808, popts);
  const auto lpc = md::build_lpc(protein, mol, pose.best_coords);

  impeccable::common::ThreadPool pool;

  std::printf("TIES lambda-window convergence (one LPC, 4 replicas/window)\n\n");
  std::printf("%-10s %-14s %-12s %-14s\n", "windows", "dG (kcal/mol)", "sem",
              "MD steps");
  for (int windows : {3, 5, 9, 13}) {
    fe::TiesConfig cfg;
    cfg.lambdas.clear();
    for (int w = 0; w < windows; ++w)
      cfg.lambdas.push_back(static_cast<double>(w) / (windows - 1));
    cfg.replicas_per_window = 4;
    cfg.simulation.equilibration_steps = 60;
    cfg.simulation.production_steps = 240;
    cfg.simulation.report_interval = 20;
    const auto res = fe::run_ties(lpc, cfg, 99, &pool);
    std::printf("%-10d %-14.2f %-12.2f %-14llu\n", windows, res.delta_g,
                res.std_error, static_cast<unsigned long long>(res.md_steps));
  }
  std::printf("\nexpected shape: the estimate stabilizes once the schedule "
              "resolves the curvature of <dH/dlambda>; the paper's production "
              "protocol uses 13 windows.\n");
  return 0;
}
