// bench_obs — cost of the obs instrumentation layer, the numbers behind
// BENCH_pr3.json.
//
// Three measurements over the same deterministic FP work kernel:
//   1. baseline    — plain loop, no instrumentation in the code at all.
//   2. uninstalled — every item wrapped in an obs::Span with NO global
//                    recorder installed (the shipped configuration when
//                    tracing is off). The acceptance bar: < 2% over baseline.
//   3. installed   — a live Recorder, measuring the real per-span cost
//                    (two clock reads + a buffer push) plus counter and
//                    histogram hot-path costs.
// Plus one end-to-end check: the quickstart workload (dock + CG-ESMACS)
// with a recorder capturing every span vs with none installed — also < 2%.
//
// Overhead percentages are the median of paired per-repetition ratios
// (variants of one rep run back-to-back, so load drift cancels); absolute
// ns-costs use the best (minimum) repetition.
//
// Usage: bench_obs [out.json]   (JSON also echoed to stdout)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/obs/metrics.hpp"
#include "impeccable/obs/recorder.hpp"

namespace chem = impeccable::chem;
namespace common = impeccable::common;
namespace dock = impeccable::dock;
namespace fe = impeccable::fe;
namespace md = impeccable::md;
namespace obs = impeccable::obs;

namespace {

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// ~0.5 µs of deterministic FP churn: the stand-in for one unit of real
/// work. This is deliberately far FINER than anything the codebase actually
/// wraps in a span (the smallest instrumented unit is a pool job or a full
/// ligand dock, microseconds to milliseconds), so the measured overhead
/// fraction is an upper bound. Returns a checksum so the optimizer cannot
/// delete it. noinline so all three variants run the exact same kernel code
/// — otherwise the comparison measures cross-iteration inlining artifacts,
/// not instrumentation.
[[gnu::noinline]] double work_item(std::uint64_t seed) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  double acc = 0.0;
  for (int i = 0; i < 256; ++i) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    const double v = static_cast<double>(x >> 11) * 0x1.0p-53;
    acc += v * v - 0.5 * v;
  }
  return acc;
}

struct Timed {
  double seconds = 0.0;
  double checksum = 0.0;
};

/// One timing of `items` calls to fn(i); folds into `best` (minimum) and
/// returns this repetition's time.
template <typename F>
double measure_into(Timed& best, std::size_t items, F&& fn) {
  const double t0 = now_sec();
  double acc = 0.0;
  for (std::size_t i = 0; i < items; ++i) acc += fn(i);
  const double dt = now_sec() - t0;
  if (best.seconds == 0.0 || dt < best.seconds) best = {dt, acc};
  return dt;
}

/// Median of per-repetition ratios b[i]/a[i]. The two variants of one rep
/// run back-to-back, so machine-load drift is common-mode and cancels in
/// the ratio; the median then rejects the odd contaminated rep — far more
/// robust on a shared box than a ratio of two independent minima.
double median_ratio(std::vector<double> a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] / a[i];
  std::sort(a.begin(), a.end());
  const std::size_t n = a.size();
  return n % 2 ? a[n / 2] : 0.5 * (a[n / 2 - 1] + a[n / 2]);
}

/// The exact instrumentation pattern dock() uses around one unit of work.
double instrumented_item(std::size_t i) {
  obs::Span span(obs::cat::kDock, "item");
  double acc = work_item(i);
  if (span.active()) span.arg("i", static_cast<double>(i));
  return acc;
}

/// The quickstart workload (dock one ligand, CG-ESMACS the complex) at
/// reduced size. Its dock/fe/pool layers carry the same span/counter
/// instrumentation as production — whether anything records depends on
/// whether a global recorder is installed when this runs.
double quickstart_workload(common::ThreadPool& pool) {
  const auto receptor = dock::Receptor::synthesize("bench-obs", /*seed=*/42);
  const auto grid = dock::compute_grid(receptor);
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  dock::DockOptions dopts;
  dopts.runs = 2;
  dopts.pool = &pool;
  const auto result = dock::dock(*grid, mol, "ibuprofen", dopts);
  md::ProteinOptions popts;
  popts.residues = 30;
  const auto protein = md::build_protein(/*seed=*/42, popts);
  const auto lpc = md::build_lpc(protein, mol, result.best_coords);
  fe::EsmacsConfig cfg = fe::cg_config(0.15);
  cfg.replicas = 2;
  const auto es = fe::run_esmacs(lpc, /*rot_bonds=*/4, cfg, /*seed=*/7, &pool);
  return result.best_score + es.binding_free_energy;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kItems = 100'000;
  constexpr int kReps = 21;

  // The three span variants, interleaved per repetition so machine-load
  // drift on a shared box hits every variant equally:
  //   base   — the kernel alone;
  //   uninst — instrumented, obs::global() == nullptr (the default config);
  //   inst   — instrumented with a live recorder actually recording.
  obs::Recorder recorder;
  Timed base, uninst, inst;
  std::vector<double> base_reps, uninst_reps;
  for (int r = 0; r < kReps + 1; ++r) {
    Timed warm;  // rep 0 warms caches/branch predictors and is discarded
    // Alternate pair order each rep so a slow drift (thermal throttling,
    // neighbor load ramping) does not systematically tax one variant.
    double tb, tu;
    if (r % 2) {
      tu = measure_into(r ? uninst : warm, kItems, instrumented_item);
      tb = measure_into(r ? base : warm, kItems, work_item);
    } else {
      tb = measure_into(r ? base : warm, kItems, work_item);
      tu = measure_into(r ? uninst : warm, kItems, instrumented_item);
    }
    if (r) {
      base_reps.push_back(tb);
      uninst_reps.push_back(tu);
    }
    obs::ScopedRecorder scoped(&recorder);
    measure_into(r ? inst : warm, kItems, instrumented_item);
  }
  const std::size_t recorded_spans = recorder.take().spans.size();

  // Metrics hot paths on held handles (the pattern the engine code uses).
  obs::Counter& ctr = recorder.metrics().counter("bench.items");
  Timed ctr_t;
  obs::Histogram& hist = recorder.metrics().histogram("bench.seconds");
  Timed hist_t;
  for (int r = 0; r < kReps; ++r) {
    measure_into(ctr_t, kItems, [&](std::size_t) {
      ctr.add(1);
      return 0.0;
    });
    measure_into(hist_t, kItems, [&](std::size_t i) {
      hist.observe(1e-6 * static_cast<double>(i + 1));
      return 0.0;
    });
  }

  // End-to-end: the quickstart workload with no recorder installed vs with
  // a live recorder capturing every span. The acceptance bar is < 2% here
  // too.
  common::ThreadPool pool;
  obs::Recorder qrec;
  Timed q_noop, q_rec;
  std::vector<double> qn_reps, qr_reps;
  constexpr int kQReps = 31;
  for (int r = 0; r < kQReps + 1; ++r) {
    Timed warm;
    const auto run_noop = [&] {
      return measure_into(r ? q_noop : warm, 1,
                          [&](std::size_t) { return quickstart_workload(pool); });
    };
    const auto run_rec = [&] {
      obs::ScopedRecorder scoped(&qrec);
      return measure_into(r ? q_rec : warm, 1,
                          [&](std::size_t) { return quickstart_workload(pool); });
    };
    double tn, tr;
    if (r % 2) {
      tr = run_rec();
      tn = run_noop();
    } else {
      tn = run_noop();
      tr = run_rec();
    }
    if (r) {
      qn_reps.push_back(tn);
      qr_reps.push_back(tr);
    }
  }
  const std::size_t q_spans = qrec.take().spans.size();

  const double overhead_pct =
      100.0 * (median_ratio(base_reps, uninst_reps) - 1.0);
  const double q_overhead_pct = 100.0 * (median_ratio(qn_reps, qr_reps) - 1.0);
  const double span_ns =
      1e9 * (inst.seconds - base.seconds) / static_cast<double>(kItems);
  const double ctr_ns = 1e9 * ctr_t.seconds / static_cast<double>(kItems);
  const double hist_ns = 1e9 * hist_t.seconds / static_cast<double>(kItems);
  const bool pass = overhead_pct < 2.0 && q_overhead_pct < 2.0;

  std::ostringstream out;
  {
    obs::json::Writer w(out);
    w.begin_object();
    w.kv("benchmark", "bench_obs (span/metrics instrumentation overhead)");
    w.key("workload").begin_object();
    w.kv("items", static_cast<std::uint64_t>(kItems));
    w.kv("reps", static_cast<std::uint64_t>(kReps));
    w.kv("work_item", "256 rounds of splitmix-style integer mix + FP fma");
    w.end_object();
    w.key("results").begin_object();
    w.kv("baseline_seconds", base.seconds);
    w.kv("uninstalled_seconds", uninst.seconds);
    w.kv("installed_seconds", inst.seconds);
    w.kv("uninstalled_overhead_pct", overhead_pct);
    w.kv("installed_span_ns", span_ns);
    w.kv("counter_add_ns", ctr_ns);
    w.kv("histogram_observe_ns", hist_ns);
    w.kv("recorded_spans", static_cast<std::uint64_t>(recorded_spans));
    w.end_object();
    w.key("quickstart_workload").begin_object();
    w.kv("description",
         "dock + CG-ESMACS (the quickstart path), recorder installed vs not");
    w.kv("noop_seconds", q_noop.seconds);
    w.kv("recording_seconds", q_rec.seconds);
    w.kv("recording_overhead_pct", q_overhead_pct);
    w.kv("recorded_spans_per_run",
         static_cast<std::uint64_t>(q_spans / (kQReps + 1)));
    w.kv("checksums_match", q_noop.checksum == q_rec.checksum);
    w.end_object();
    w.key("checksums").begin_object();
    w.kv("baseline", base.checksum);
    w.kv("uninstalled", uninst.checksum);
    w.kv("installed", inst.checksum);
    w.end_object();
    w.kv("acceptance",
         "uninstalled overhead < 2% of baseline AND quickstart-workload "
         "recording overhead < 2% of no-op");
    w.kv("pass", pass);
    w.end_object();
  }

  std::cout << out.str() << "\n";
  if (argc > 1) {
    std::ofstream f(argv[1], std::ios::trunc);
    f << out.str() << "\n";
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  }
  return pass ? 0 : 1;
}
