// RAPTOR scaling study (Sec. 6.1.2 / Sec. 8): "near linear scaling up to
// several thousand nodes, while maintaining high utilization", and the
// throughput claims "sustain ... up to 50M docking hits per hour on ~1000
// nodes" / "40M docking hits per hour ... on 4000 nodes on Frontera".
//
// Fixed per-worker load; nodes swept 64 -> 4096 on the Summit model
// (6 GPU workers per node); heavy-tailed docking durations with mean 0.43 s
// (the regime that yields ~50M docks/hour at 1000 nodes).

#include <cstdio>

#include "impeccable/rct/raptor.hpp"

namespace rct = impeccable::rct;

int main() {
  const double mean_dock_seconds = 0.43;
  const std::size_t docks_per_worker = 400;

  std::printf("RAPTOR scaling on the Summit model "
              "(mean dock %.2f s, heavy-tailed; %zu docks/worker)\n\n",
              mean_dock_seconds, docks_per_worker);
  std::printf("%-8s %-9s %-10s %-14s %-16s %-12s %-10s\n", "nodes", "workers",
              "masters", "makespan(s)", "docks/hour", "utilization",
              "speedup");

  double base_throughput = 0.0;
  int base_nodes = 0;
  for (int nodes : {64, 128, 256, 512, 1024, 2048, 4096}) {
    rct::RaptorOptions opts;
    opts.workers = nodes * 6;
    // One master per ~512 workers (the paper's multi-master sharding).
    opts.masters = std::max(1, opts.workers / 512);
    opts.bulk_size = 32;

    const auto durations = rct::docking_durations(
        docks_per_worker * static_cast<std::size_t>(opts.workers),
        mean_dock_seconds, 97);
    const auto stats = rct::run_raptor(opts, durations);

    if (base_nodes == 0) {
      base_nodes = nodes;
      base_throughput = stats.throughput_per_hour;
    }
    const double ideal = static_cast<double>(nodes) / base_nodes;
    const double speedup = stats.throughput_per_hour / base_throughput;
    std::printf("%-8d %-9d %-10d %-14.1f %-16.3e %-12.3f %.2f/%.0fx\n", nodes,
                opts.workers, opts.masters, stats.makespan,
                stats.throughput_per_hour, stats.worker_utilization, speedup,
                ideal);
  }

  std::printf("\npaper reference points: ~5e7 docks/hour sustained on ~1000 "
              "nodes; 4e7/hour on 4000 (CPU) nodes.\n");
  return 0;
}
