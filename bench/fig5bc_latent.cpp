// Fig. 5B/5C reproduction:
//  5B — "Summary of RMSD determined from CG-ESMACS LPC ensembles show a
//        rather tight distribution with a few LPCs that exhibit greater
//        fluctuations": per-frame protein RMSD histogram.
//  5C — "Latent space representation from the 3D-AAE model depicting the
//        outliers from RMSD distributions": train the 3D-AAE on the Cα point
//        clouds, embed, t-SNE to 2D, and quantify that high-RMSD frames are
//        separated in latent space (the plot's visual claim made numeric).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "esmacs_fixture.hpp"
#include "impeccable/common/kabsch.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/ml/aae.hpp"
#include "impeccable/ml/lof.hpp"
#include "impeccable/ml/tsne.hpp"

namespace md = impeccable::md;
namespace ml = impeccable::ml;
namespace stats = impeccable::common;

int main() {
  // A handful of compounds with retained CG ensembles.
  const auto workload =
      fixture::run_cg_campaign(8, /*seed=*/23, /*esmacs_scale=*/2.0,
                               /*replicas=*/5, /*keep_trajectories=*/true,
                               /*temperature=*/360.0);

  // ---- 5B: RMSD distribution over every replica frame --------------------
  // RMSD is taken against the shared starting conformation (the paper
  // paints "the RMSD of each structure to the starting conformation"), so it
  // is an absolute conformational coordinate comparable across replicas.
  std::vector<std::vector<impeccable::common::Vec3>> clouds;
  std::vector<double> rmsds;
  for (const auto& c : workload.compounds) {
    const auto sel = c.lpc.topology.selection(md::BeadKind::Protein);
    std::vector<impeccable::common::Vec3> ref;
    for (int i : sel) ref.push_back(c.lpc.positions[static_cast<std::size_t>(i)]);
    for (const auto& traj : c.esmacs.trajectories) {
      for (std::size_t f = 0; f < traj.frames.size(); ++f) {
        clouds.push_back(md::protein_point_cloud(traj.frames[f], c.lpc));
        std::vector<impeccable::common::Vec3> cur;
        for (int i : sel)
          cur.push_back(traj.frames[f].positions[static_cast<std::size_t>(i)]);
        rmsds.push_back(impeccable::common::rmsd_superposed(ref, cur));
      }
    }
  }

  std::printf("Fig. 5B: protein RMSD distribution over %zu ensemble frames\n\n",
              rmsds.size());
  stats::Histogram hist(0.0, stats::max_of(rmsds) * 1.05 + 0.1, 15);
  hist.add_all(rmsds);
  std::printf("%s\n", hist.to_text().c_str());
  const double p90 = stats::percentile(rmsds, 90);
  std::printf("median %.2f A, p90 %.2f A — tight body with a fluctuating "
              "tail (paper flags > 1.9 A as outliers at all-atom scale)\n\n",
              stats::percentile(rmsds, 50), p90);

  // ---- 5C: 3D-AAE latent space + t-SNE ------------------------------------
  ml::AaeOptions aopts;
  aopts.epochs = 12;
  ml::Aae3d aae(static_cast<int>(clouds.front().size()), aopts);
  const auto report = aae.train(clouds);
  std::printf("Fig. 5C: 3D-AAE trained on %zu clouds; chamfer %.4f -> %.4f "
              "(val %.4f)\n",
              clouds.size(), report.epochs.front().reconstruction,
              report.epochs.back().reconstruction,
              report.epochs.back().validation);

  const auto latent = aae.embed_batch(clouds);
  const auto lof = ml::local_outlier_factor(latent, 10);

  // Numeric version of the figure:
  // (a) the LOF outlier set S2 would promote to S3-FG, with its RMSD level;
  const auto outliers = ml::top_outliers(lof, rmsds.size() / 10);
  double rmsd_out = 0, rmsd_all = stats::mean(rmsds);
  for (std::size_t i : outliers) rmsd_out += rmsds[i];
  rmsd_out /= static_cast<double>(outliers.size());
  std::printf("mean RMSD: all frames %.2f A, top-10%% LOF outliers %.2f A\n",
              rmsd_all, rmsd_out);

  // (b) in the 2D t-SNE, the high-RMSD decile is farther from the embedding
  // centroid than the body (the grey-vs-coloured separation of the figure).
  ml::TsneOptions topts;
  topts.iterations = 250;
  topts.perplexity = 20;
  const auto y = ml::tsne(latent, topts);
  const double rmsd_cut = stats::percentile(rmsds, 90);
  double r_body = 0, r_tail = 0;
  int n_body = 0, n_tail = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = std::hypot(y[i][0], y[i][1]);
    if (rmsds[i] >= rmsd_cut) {
      r_tail += r;
      ++n_tail;
    } else {
      r_body += r;
      ++n_body;
    }
  }
  std::printf("t-SNE radius: body %.2f, high-RMSD tail %.2f "
              "(tail sits at the latent-space periphery)\n",
              r_body / std::max(1, n_body), r_tail / std::max(1, n_tail));
  return 0;
}
