// Ablation (Sec. 5.1.1): AutoDock-GPU's gradient local search. The paper:
// "ADADELTA has proven to increase significantly the docking quality in
// terms of RMSDs and scores" over the legacy Solis-Wets method.
//
// Same ligands, same evaluation-budget class, four search configurations:
// pure random sampling, plain GA (no local search), Lamarckian GA +
// Solis-Wets, Lamarckian GA + ADADELTA. Reported: mean best score, mean
// RMSD to the best pose found by any method (pose quality), evaluations.

#include <cstdio>
#include <vector>

#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/kabsch.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
using impeccable::common::Rng;

int main() {
  const std::size_t ligand_count = 24;
  const auto lib = chem::generate_library("OZD", ligand_count, 555);
  const auto receptor = dock::Receptor::synthesize("T", 777);
  const auto grid = dock::compute_grid(receptor);

  struct Config {
    const char* name;
    dock::LocalSearchMethod ls;
    double ls_rate;
  };
  const Config configs[] = {
      {"GA only", dock::LocalSearchMethod::None, 0.0},
      {"LGA + Solis-Wets", dock::LocalSearchMethod::SolisWets, 0.25},
      {"LGA + ADADELTA", dock::LocalSearchMethod::Adadelta, 0.25},
  };

  struct Outcome {
    std::vector<double> scores;
    std::vector<std::vector<impeccable::common::Vec3>> poses;
    std::vector<double> evals;
  };
  std::vector<Outcome> outcomes(4);  // 3 configs + random baseline

  std::vector<chem::Molecule> mols;
  for (const auto& e : lib.entries) mols.push_back(chem::parse_smiles(e.smiles));

  for (std::size_t i = 0; i < ligand_count; ++i) {
    const dock::Ligand lig(mols[i]);
    const dock::ScoringFunction score(*grid, lig);

    for (int c = 0; c < 3; ++c) {
      dock::LgaOptions lopts;
      lopts.population = 24;
      lopts.generations = 12;
      lopts.local_search = configs[c].ls;
      lopts.local_search_rate = configs[c].ls_rate;
      Rng rng(1000 + i);
      const auto res = dock::run_lga(score, rng, lopts);
      outcomes[static_cast<std::size_t>(c)].scores.push_back(res.best_energy);
      outcomes[static_cast<std::size_t>(c)].poses.push_back(res.best_coords);
      outcomes[static_cast<std::size_t>(c)].evals.push_back(
          static_cast<double>(res.evaluations));
    }
    {  // Random-sampling baseline at the ADADELTA budget.
      Rng rng(2000 + i);
      const std::size_t budget =
          static_cast<std::size_t>(outcomes[2].evals.back());
      double best = 1e18;
      dock::Pose best_pose = lig.identity_pose(grid->pocket_center);
      for (std::size_t k = 0; k < budget; ++k) {
        const auto p = lig.random_pose(grid->pocket_center, 4.0, rng);
        const double e = score.evaluate(p);
        if (e < best) {
          best = e;
          best_pose = p;
        }
      }
      std::vector<impeccable::common::Vec3> coords;
      lig.build_coords(best_pose, coords);
      outcomes[3].scores.push_back(best);
      outcomes[3].poses.push_back(coords);
      outcomes[3].evals.push_back(static_cast<double>(budget));
    }
  }

  // Pose quality: RMSD to the best-scoring pose found by ANY method.
  std::vector<std::vector<double>> rmsd_to_best(4);
  for (std::size_t i = 0; i < ligand_count; ++i) {
    int best_method = 0;
    for (int c = 1; c < 4; ++c)
      if (outcomes[static_cast<std::size_t>(c)].scores[i] <
          outcomes[static_cast<std::size_t>(best_method)].scores[i])
        best_method = c;
    const auto& ref = outcomes[static_cast<std::size_t>(best_method)].poses[i];
    for (int c = 0; c < 4; ++c)
      rmsd_to_best[static_cast<std::size_t>(c)].push_back(
          impeccable::common::rmsd_raw(
              ref, outcomes[static_cast<std::size_t>(c)].poses[i]));
  }

  std::printf("AutoDock local-search ablation (%zu ligands, one receptor)\n\n",
              ligand_count);
  std::printf("%-20s %-18s %-18s %-14s\n", "method", "mean best score",
              "mean RMSD to best", "mean evals");
  const char* names[] = {"GA only", "LGA + Solis-Wets", "LGA + ADADELTA",
                         "random sampling"};
  for (int c : {3, 0, 1, 2}) {
    const auto& o = outcomes[static_cast<std::size_t>(c)];
    std::printf("%-20s %-18.2f %-18.2f %-14.0f\n", names[c],
                impeccable::common::mean(o.scores),
                impeccable::common::mean(rmsd_to_best[static_cast<std::size_t>(c)]),
                impeccable::common::mean(o.evals));
  }
  std::printf("\nexpected ordering (paper): ADADELTA <= Solis-Wets < GA-only "
              "< random on score; gradients improve pose quality.\n");
  return 0;
}
