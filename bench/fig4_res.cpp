// Fig. 4 reproduction: the Regression Enrichment Surface of the ML1
// surrogate on a docking campaign.
//
// Workload: a synthetic "OZD" library is docked exhaustively against one
// receptor (ground truth), the image-CNN surrogate is trained on a random
// training split, predicts the whole library, and the RES grid is printed —
// the paper's reading is "with a budget of delta = 1e-3·u compounds we
// capture ~50% of the true top 1e-4 and ~40% of the top 1e-3". Our library
// is smaller (1e3 vs 6.5e6), so fractions start at 1e-2; the shape to match
// is: coverage far above the random baseline (= screen fraction) in the top
// rows and monotone in the screening budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/ml/res.hpp"
#include "impeccable/ml/surrogate.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace ml = impeccable::ml;
using impeccable::common::Rng;

int main() {
  const std::size_t library_size = 1000;
  const auto t0 = std::chrono::steady_clock::now();

  const auto lib = chem::generate_library("OZD", library_size, 2020);
  const auto receptor = dock::Receptor::synthesize("PLPro-like", 6909);
  const auto grid = dock::compute_grid(receptor);

  // Ground truth: dock everything (cheap but real LGA settings).
  dock::DockOptions dopts;
  dopts.runs = 1;
  dopts.lga.population = 16;
  dopts.lga.generations = 6;
  dopts.lga.ad.max_iterations = 25;

  std::vector<chem::Molecule> mols;
  std::vector<chem::Image> images;
  std::vector<double> truth(library_size);
  for (const auto& e : lib.entries) {
    mols.push_back(chem::parse_smiles(e.smiles));
    images.push_back(chem::depict(mols.back()));
  }
  impeccable::common::ThreadPool pool;
  impeccable::common::parallel_for(pool, 0, library_size, [&](std::size_t i) {
    const auto res = dock::dock(*grid, mols[i], lib.entries[i].id, dopts);
    truth[i] = -res.best_score;  // higher = better binder
  });

  // Train/test: the surrogate sees a random half of the docked scores.
  Rng rng(17);
  std::vector<std::size_t> order(library_size);
  for (std::size_t i = 0; i < library_size; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t train_n = library_size / 2;

  std::vector<chem::Image> train_images;
  std::vector<float> train_labels;
  double best = 1e18, worst = -1e18;
  for (std::size_t k = 0; k < train_n; ++k) {
    best = std::min(best, -truth[order[k]]);
    worst = std::max(worst, -truth[order[k]]);
  }
  for (std::size_t k = 0; k < train_n; ++k) {
    train_images.push_back(images[order[k]]);
    train_labels.push_back(ml::score_to_label(-truth[order[k]], best, worst));
  }

  ml::SurrogateOptions sopts;
  sopts.epochs = 10;
  ml::SurrogateModel surrogate(sopts);
  const auto report = surrogate.train(train_images, train_labels);

  const auto pred_f = surrogate.predict_batch(images);
  std::vector<double> pred(pred_f.begin(), pred_f.end());

  std::printf("Fig. 4: RES profile for the docking surrogate\n");
  std::printf("library %zu, trained on %zu docked compounds, "
              "final train/val loss %.4f/%.4f\n\n",
              library_size, train_n, report.epochs.back().train_loss,
              report.epochs.back().validation_loss);
  std::printf("rank correlation (surrogate vs docking): spearman %.3f\n\n",
              impeccable::common::spearman(pred, truth));

  const ml::EnrichmentSurface res(pred, truth);
  const auto res_grid = res.grid(/*points_per_decade=*/2, /*min_fraction=*/1e-2);
  std::printf("coverage of the true top-y fraction (rows) when screening the\n"
              "predicted top-x fraction (columns); random baseline = x:\n\n%s\n",
              ml::to_text(res_grid).c_str());

  // The paper's headline reading, scaled to our library: screening the top
  // 10%% captures a large share of the true top 1-3%%.
  std::printf("paper-style readings:\n");
  for (double top : {0.01, 0.03}) {
    const double cov = res.coverage(0.10, top);
    std::printf("  screen 10%% of the library -> %.0f%% of the true top %.0f%% "
                "(random would give 10%%)\n",
                100 * cov, 100 * top);
  }
  std::printf("\nwall time %.1f s\n",
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count());
  return 0;
}
