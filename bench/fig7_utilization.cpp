// Fig. 7 reproduction: "A time-series of node utilization ... the integrated
// execution of three GPU-intensive workflows (S3-CG)-(S2)-(S3-FG)", with the
// property that the overheads (light vertical areas between stages) are
// invariant to scale.
//
// The integrated workflow runs as an EnTK pipeline on the discrete-event
// Summit model: S3-CG = one whole-node ensemble task per LPC (duration
// varies per LPC — "each LPC has a different rate of convergence"), S2 = a
// few multi-node training tasks, S3-FG = 4-node tasks for the selected
// outlier conformations. We print the utilization series and then repeat the
// run at 4x scale to show the stage-transition overhead does not grow.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "impeccable/common/rng.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"

namespace rct = impeccable::rct;
namespace hpc = impeccable::hpc;
using impeccable::common::Rng;

namespace {

struct RunResult {
  std::vector<hpc::UtilizationSample> series;
  double makespan = 0.0;
  double busy_node_seconds = 0.0;
  double overhead_seconds = 0.0;  ///< stage-transition gaps
};

RunResult run_integrated(int nodes, int cg_tasks, int fg_tasks,
                         std::uint64_t seed) {
  rct::SimBackend backend(hpc::summit(nodes));
  rct::AppManagerOptions mopts;
  mopts.stage_transition_overhead = 30.0;  // constant EnTK overhead, seconds
  rct::AppManager mgr(backend, mopts);

  Rng rng(seed);
  rct::Pipeline p("integrated");

  rct::Stage cg;
  cg.name = "S3-CG";
  for (int i = 0; i < cg_tasks; ++i) {
    rct::TaskDescription t;
    t.name = "cg-" + std::to_string(i);
    t.whole_nodes = 1;
    // Adaptive convergence: per-LPC duration varies ~2x around 30 min.
    t.duration = 1800.0 * rng.uniform(0.7, 1.5);
    cg.tasks.push_back(std::move(t));
  }
  p.add_stage(std::move(cg));

  rct::Stage s2;
  s2.name = "S2";
  for (int i = 0; i < std::max(1, cg_tasks / 16); ++i) {
    rct::TaskDescription t;
    t.name = "aae-" + std::to_string(i);
    t.whole_nodes = 2;  // six-GPU DDP training x 2 nodes
    t.duration = 2400.0 * rng.uniform(0.9, 1.2);
    s2.tasks.push_back(std::move(t));
  }
  p.add_stage(std::move(s2));

  rct::Stage fg;
  fg.name = "S3-FG";
  for (int i = 0; i < fg_tasks; ++i) {
    rct::TaskDescription t;
    t.name = "fg-" + std::to_string(i);
    t.whole_nodes = 4;
    t.duration = 4000.0 * rng.uniform(0.8, 1.3);
    fg.tasks.push_back(std::move(t));
  }
  p.add_stage(std::move(fg));

  mgr.run({std::move(p)});

  RunResult out;
  out.series = backend.cluster().utilization();
  out.makespan = backend.now();
  // Integrate busy node-seconds and idle (overhead) windows where
  // utilization is exactly zero between active phases.
  for (std::size_t i = 0; i + 1 < out.series.size(); ++i) {
    const double dt = out.series[i + 1].time - out.series[i].time;
    out.busy_node_seconds += dt * out.series[i].gpu_busy_fraction * nodes;
    if (out.series[i].gpu_busy_fraction == 0.0 && out.series[i].time > 0.0)
      out.overhead_seconds += dt;
  }
  return out;
}

void print_series(const RunResult& run, int buckets) {
  std::printf("  %-10s %-12s %s\n", "time(s)", "util", "");
  for (int b = 0; b < buckets; ++b) {
    const double t0 = run.makespan * b / buckets;
    const double t1 = run.makespan * (b + 1) / buckets;
    // Time-weighted utilization inside the bucket.
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < run.series.size(); ++i) {
      const double s = std::max(t0, run.series[i].time);
      const double e = std::min(t1, run.series[i + 1].time);
      if (e > s) acc += (e - s) * run.series[i].gpu_busy_fraction;
    }
    const double u = acc / (t1 - t0);
    std::printf("  %-10.0f %-12.3f ", t0, u);
    const int bar = static_cast<int>(u * 50);
    for (int k = 0; k < bar; ++k) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Fig. 7: node-utilization time series of the integrated "
              "(S3-CG)-(S2)-(S3-FG) workflow (Summit model)\n\n");

  std::printf("scale 1: 64 nodes, 48 CG / 10 FG tasks\n");
  const auto small = run_integrated(64, 48, 10, 1);
  print_series(small, 24);

  std::printf("\nscale 4: 256 nodes, 192 CG / 40 FG tasks\n");
  const auto big = run_integrated(256, 192, 40, 2);
  print_series(big, 24);

  std::printf("\noverhead invariance (idle stage-transition time):\n");
  std::printf("  scale 1: %.0f s of %.0f s makespan (%.1f%%)\n",
              small.overhead_seconds, small.makespan,
              100 * small.overhead_seconds / small.makespan);
  std::printf("  scale 4: %.0f s of %.0f s makespan (%.1f%%)\n",
              big.overhead_seconds, big.makespan,
              100 * big.overhead_seconds / big.makespan);
  std::printf("  absolute overhead is constant across scale "
              "(paper: 'overheads ... are invariant to scale')\n");
  return 0;
}
