// Out-of-core library at scale (Sec. 6.1.1): stream a 1e8-ligand on-disk
// LigandStore through the production ML1 path — windowed mmap featurization
// (parse -> depict), SurrogateModel::predict_batch, and external-memory
// streaming top-k — inside a simulated campaign (ScaleModel replay on the
// discrete-event backend), and demonstrate that peak RSS stays bounded (the
// acceptance gate is <= 2 GB) no matter how large the library is. The paper
// screens "about 126M ligands" per ML1 pass on Summit; this harness runs the
// same per-ligand code on one node by keeping the library on disk and the
// working set at O(window + top_k).
//
// A second phase re-runs a 50k-ligand campaign end to end under both library
// backends (InMemorySource vs MmapSource) and checks the science
// fingerprints are bitwise identical — the refactor's core guarantee, at a
// scale the unit suite cannot afford.
//
//   $ ./bench/library_scale [ligands] [fp_library] [out.json]
//     ligands     store size streamed through ML1   (default 100000000)
//     fp_library  fingerprint-equality library size (default 50000)
//     out.json    report path                       (default BENCH_pr9.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "impeccable/chem/ligand_source.hpp"
#include "impeccable/core/campaign.hpp"
#include "impeccable/core/stages/graph_builder.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"

namespace chem = impeccable::chem;
namespace core = impeccable::core;
namespace fe = impeccable::fe;
namespace hpc = impeccable::hpc;
namespace ml = impeccable::ml;
namespace obs = impeccable::obs;
namespace rct = impeccable::rct;
namespace stages = impeccable::core::stages;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Peak resident set (VmHWM) in bytes, from /proc/self/status. Monotonic:
/// must be sampled right after the streaming phase, before any deliberately
/// in-memory work (the fingerprint phase materializes a 50k-image library).
std::size_t peak_rss_bytes() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
  }
  return 0;
}

/// Build (or reuse) a `count`-record store by tiling a pool of real
/// generated SMILES under distinct ids. Tiling keeps store construction
/// I/O-bound — the streaming phase still parses and depicts every record
/// individually, so the ML1 path sees `count` full featurizations.
chem::LigandStore build_store(const std::string& dir, std::size_t count) {
  {
    chem::LigandStore existing = chem::LigandStore::open(dir);
    if (existing.size() == count && existing.stats().shards_skipped == 0) {
      std::printf("store: reusing %zu ligands at %s\n", count, dir.c_str());
      return existing;
    }
  }
  std::filesystem::remove_all(dir);

  const std::size_t pool_size = std::min<std::size_t>(count, 200'000);
  const chem::CompoundLibrary pool =
      chem::generate_library("SCL", pool_size, 4242);

  const auto t0 = std::chrono::steady_clock::now();
  chem::StoreWriterOptions wopts;
  wopts.records_per_shard = 4'000'000;
  chem::LigandStoreWriter writer(dir, wopts);
  char id[32];
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(id, sizeof id, "SCL-%09zu", i);
    writer.append(id, pool.entries[i % pool_size].smiles);
  }
  writer.finish();
  const double dt = seconds_since(t0);

  std::size_t bytes = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    bytes += e.file_size();
  std::printf("store: wrote %zu ligands, %.2f GB in %.1f s (%.3g records/s)\n",
              count, bytes / 1e9, dt, count / dt);
  return chem::LigandStore::open(dir);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t ligands =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000'000ULL;
  const std::size_t fp_library =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000ULL;
  const std::string json_path = argc > 3 ? argv[3] : "BENCH_pr9.json";

  // ---- Phase 1: stream the full store through the real ML1 path. --------
  // A slim featurization (8x8 single-channel depictions, 2-filter CNN)
  // keeps the single-core run tractable; the code path — mmap window ->
  // parse -> depict -> predict_batch -> StreamingTopK -> madvise release —
  // is exactly the production one, and RSS behavior is what is under test.
  const auto store_dir =
      std::filesystem::temp_directory_path() / "impeccable_library_scale";
  chem::SourceOptions sopts;
  sopts.depiction.width = 8;
  sopts.depiction.height = 8;
  sopts.depiction.channels = 1;
  sopts.depiction.layout_iterations = 16;  // coarse layout for an 8x8 raster
  const chem::MmapSource source(build_store(store_dir.string(), ligands),
                                sopts);

  ml::SurrogateOptions mopts;
  mopts.width = 8;
  mopts.height = 8;
  mopts.channels = 1;
  mopts.base_filters = 2;
  mopts.predict_chunk = 256;
  const ml::SurrogateModel model(mopts);

  stages::ScaleModel scale;
  scale.ml1_ligands = static_cast<double>(ligands);
  scale.ml1_shards = 8;
  scale.ml1_gpu_seconds_per_ligand = 1e-5;
  scale.s1_docks = 1000;
  scale.s1_chunk = 500;
  scale.s1_gpu_seconds_per_ligand = 1e-3;
  scale.cg_ligands = 4;
  scale.cg_seconds = 600.0;
  scale.s2_tasks = 2;
  scale.s2_seconds = 600.0;
  scale.fg_conformations = 2;
  scale.fg_seconds = 600.0;

  stages::ScaleModel::Replay replay;
  replay.source = &source;
  replay.model = &model;
  replay.window = 8192;
  replay.top_k = 1000;
  scale.replay = &replay;

  rct::SimBackend backend(hpc::summit(4));
  rct::AppManager mgr(backend, {});
  core::CampaignConfig cfg;
  cfg.iterations = 1;

  auto state = std::make_shared<stages::CampaignState>();
  state->config = &cfg;
  state->backend = &backend;
  core::CampaignReport report;
  report.iterations.resize(1);
  state->report = &report;
  state->scale = &scale;

  rct::StageGraph graph;
  stages::add_campaign_graph(graph, state, 1, false);

  std::printf("streaming %zu ligands through ML1 "
              "(featurize -> predict -> top-%zu, window %zu)...\n",
              ligands, replay.top_k, replay.window);
  const auto t0 = std::chrono::steady_clock::now();
  mgr.run_graph(std::move(graph));
  const double stream_s = seconds_since(t0);
  const std::size_t peak_rss = peak_rss_bytes();  // before the fp phase!

  std::printf("  scored %zu ligands in %.1f s (%.3g ligands/s)\n",
              replay.ligands_scored, stream_s,
              replay.ligands_scored / stream_s);
  std::printf("  peak RSS %.3f GB (gate: <= 2 GB)  top-k size %zu, best "
              "score %.4f @ ordinal %zu\n",
              peak_rss / 1e9, replay.selected.size(),
              replay.selected.empty() ? 0.0 : replay.selected.front().score,
              replay.selected.empty()
                  ? std::size_t{0}
                  : static_cast<std::size_t>(replay.selected.front().index));

  const bool rss_ok = peak_rss <= 2'000'000'000ULL;
  const bool scored_ok = replay.ligands_scored >= ligands;

  // ---- Phase 2: fingerprint equality at 50k. ----------------------------
  core::CampaignConfig fpc;
  fpc.library_size = fp_library;
  fpc.iterations = 2;
  fpc.bootstrap_docks = 24;
  fpc.dock_top_fraction = 0.002;  // 100-dock slice: S1 stays a side show
  fpc.cg_compounds = 4;
  fpc.top_binders = 2;
  fpc.outliers_per_binder = 2;
  fpc.dock.runs = 1;
  fpc.dock.lga.population = 16;
  fpc.dock.lga.generations = 6;
  fpc.esmacs_cg = fe::cg_config(0.3);
  fpc.esmacs_cg.replicas = 3;
  fpc.esmacs_fg = fe::fg_config(0.1);
  fpc.esmacs_fg.replicas = 4;
  fpc.surrogate.epochs = 2;
  fpc.aae.epochs = 2;
  fpc.seed = 29;

  std::printf("\nfingerprint gate: %zu-ligand campaign, 2 iterations, "
              "both backends...\n", fp_library);
  const auto t1 = std::chrono::steady_clock::now();
  core::Campaign in_mem(core::Target::make("3CL-like", 42, 40, 21), fpc);
  const std::string fp_a = in_mem.run().science_fingerprint();
  const double in_mem_s = seconds_since(t1);

  const auto fp_store_dir =
      std::filesystem::temp_directory_path() / "impeccable_library_scale_fp";
  std::filesystem::remove_all(fp_store_dir);
  fpc.library_backend = core::ExecConfig::LibraryBackend::kMmapStore;
  fpc.library_store_dir = fp_store_dir.string();
  const auto t2 = std::chrono::steady_clock::now();
  core::Campaign out_of_core(core::Target::make("3CL-like", 42, 40, 21), fpc);
  const std::string fp_b = out_of_core.run().science_fingerprint();
  const double mmap_s = seconds_since(t2);
  std::filesystem::remove_all(fp_store_dir);

  const bool fp_ok = fp_a == fp_b;
  std::printf("  in-memory %.1f s, mmap store %.1f s, fingerprints %s\n",
              in_mem_s, mmap_s, fp_ok ? "IDENTICAL" : "DIVERGED");

  {
    std::ofstream f(json_path, std::ios::trunc);
    obs::json::Writer w(f);
    w.begin_object();
    w.kv("bench", "library_scale");
    w.key("streaming");
    w.begin_object();
    w.kv("ligands", static_cast<std::uint64_t>(replay.ligands_scored));
    w.kv("seconds", stream_s);
    w.kv("ligands_per_second", replay.ligands_scored / stream_s);
    w.kv("window", static_cast<std::uint64_t>(replay.window));
    w.kv("top_k", static_cast<std::uint64_t>(replay.top_k));
    w.kv("peak_rss_bytes", static_cast<std::uint64_t>(peak_rss));
    w.kv("peak_rss_under_2gb", rss_ok);
    w.end_object();
    w.key("fingerprint_gate");
    w.begin_object();
    w.kv("library_size", static_cast<std::uint64_t>(fp_library));
    w.kv("iterations", 2);
    w.kv("in_memory_seconds", in_mem_s);
    w.kv("mmap_store_seconds", mmap_s);
    w.kv("identical", fp_ok);
    w.end_object();
    w.end_object();
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!rss_ok || !scored_ok || !fp_ok) {
    std::fprintf(stderr, "library_scale: ACCEPTANCE FAILURE (rss_ok=%d "
                 "scored_ok=%d fp_ok=%d)\n", rss_ok, scored_ok, fp_ok);
    return 1;
  }
  return 0;
}
