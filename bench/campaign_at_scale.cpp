// Campaign-at-scale planner (Sec. 8): simulate one full IMPECCABLE iteration
// at leadership scale in virtual time — ML1 inference over a billion-ligand
// library, S1 docking of the promoted slice, S3-CG on the diverse pick, S2
// training, and S3-FG on the outlier conformations — as EnTK pipelines on
// the discrete-event Summit model with durations from the calibrated method
// models. Cross-checks the paper's headline numbers: ~1e11 ligands screened,
// tens of millions of docks per day, and node-hour totals consistent with
// the reported 2.5M node-hour campaign.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/profiler.hpp"
#include "paper_protocol.hpp"

namespace rct = impeccable::rct;
namespace hpc = impeccable::hpc;

int main() {
  const int nodes = 1024;  // the partition the campaign iteration runs on
  const double ml1_ligands = 1.26e8;  // paper Sec. 6.1.1: "about 126M ligands"
  const std::size_t s1_docks = 1'000'000;   // top slice promoted to docking
  const std::size_t cg_ligands = 10'000;    // Sec. 7.1.2
  const std::size_t fg_conformations = 25;  // Sec. 7.1.4: 5 binders x 5 confs

  // Durations from the calibrated per-method models. Multi-task stages pack
  // many ligands per task so the DES stays tractable: each task models a
  // work *chunk* with the aggregate duration of its ligands.
  const auto ml1 = paper::ml1_model();
  const auto s1 = paper::s1_model();
  const auto cg = paper::s3cg_model();
  const auto s2 = paper::s2_model();
  const auto fg = paper::s3fg_model();

  rct::SimBackend backend(hpc::summit(nodes));
  rct::ProfiledBackend profiled(backend);
  rct::AppManager mgr(profiled, {.stage_transition_overhead = 60.0});

  rct::Pipeline campaign("iteration");

  {  // ML1: inference sharded over every GPU of the partition.
    rct::Stage st;
    st.name = "ML1";
    const int shards = nodes * 6;
    const double ligands_per_shard = ml1_ligands / shards;
    for (int k = 0; k < shards; ++k) {
      rct::TaskDescription t;
      t.name = "ml1";
      t.gpus = 1;
      t.duration = ligands_per_shard * ml1.gpu_seconds_per_ligand;
      st.tasks.push_back(std::move(t));
    }
    campaign.add_stage(std::move(st));
  }
  {  // S1: docking chunks of 1000 ligands per GPU task.
    rct::Stage st;
    st.name = "S1";
    const std::size_t chunk = 1000;
    for (std::size_t at = 0; at < s1_docks; at += chunk) {
      rct::TaskDescription t;
      t.name = "dock";
      t.gpus = 1;
      t.duration = static_cast<double>(chunk) * s1.gpu_seconds_per_ligand;
      st.tasks.push_back(std::move(t));
    }
    campaign.add_stage(std::move(st));
  }
  {  // S3-CG: one whole-node ensemble task per ligand.
    rct::Stage st;
    st.name = "S3-CG";
    for (std::size_t k = 0; k < cg_ligands; ++k) {
      rct::TaskDescription t;
      t.name = "cg";
      t.whole_nodes = 1;
      t.duration = cg.hours_per_ligand * 3600.0;
      st.tasks.push_back(std::move(t));
    }
    campaign.add_stage(std::move(st));
  }
  {  // S2: a handful of 2-node DDP training jobs.
    rct::Stage st;
    st.name = "S2";
    for (int k = 0; k < 8; ++k) {
      rct::TaskDescription t;
      t.name = "aae";
      t.whole_nodes = 2;
      t.duration = s2.hours_per_ligand * 3600.0;
      st.tasks.push_back(std::move(t));
    }
    campaign.add_stage(std::move(st));
  }
  {  // S3-FG: 4-node ensembles for the selected conformations.
    rct::Stage st;
    st.name = "S3-FG";
    for (std::size_t k = 0; k < fg_conformations; ++k) {
      rct::TaskDescription t;
      t.name = "fg";
      t.whole_nodes = 4;
      t.duration = fg.hours_per_ligand * 3600.0;
      st.tasks.push_back(std::move(t));
    }
    campaign.add_stage(std::move(st));
  }

  mgr.run({std::move(campaign)});
  const auto prof = profiled.profile();

  const double makespan_h = prof.makespan() / 3600.0;
  const double node_hours = nodes * makespan_h;
  std::printf("one IMPECCABLE iteration on a %d-node Summit partition "
              "(virtual time):\n\n", nodes);
  std::printf("  ML1 inference      %10.3g ligands\n", ml1_ligands);
  std::printf("  S1 docking         %10zu ligands\n", s1_docks);
  std::printf("  S3-CG ensembles    %10zu ligands\n", cg_ligands);
  std::printf("  S3-FG ensembles    %10zu conformations\n", fg_conformations);
  std::printf("\n  tasks executed     %10zu\n", prof.tasks.size());
  std::printf("  makespan           %10.1f hours\n", makespan_h);
  std::printf("  node-hours         %10.3g\n", node_hours);
  std::printf("  peak concurrency   %10d tasks\n", prof.peak_concurrency());
  std::printf("  idle fraction      %10.1f%%\n", 100 * prof.idle_fraction());

  // Full per-task profile (summary + records) as JSON, for offline analysis.
  const auto prof_path = (std::filesystem::temp_directory_path() /
                          "campaign_at_scale_profile.json").string();
  {
    std::ofstream f(prof_path, std::ios::trunc);
    prof.to_json(f);
  }
  std::printf("  profile JSON       %s\n", prof_path.c_str());

  std::printf("\npaper cross-checks: ~40-50M docks/hour sustained (here: "
              "%.3g docks/hour during S1); the production campaign consumed "
              "2.5M node-hours over 3 months across its platforms — one "
              "iteration at %.3g node-hours implies O(10^2-10^3) iterations/"
              "targets, the right order for a dozen targets with repeated "
              "refinement.\n",
              s1_docks /
                  ((s1.gpu_seconds_per_ligand * s1_docks / (nodes * 6)) / 3600.0),
              node_hours);
  return 0;
}
