// Campaign-at-scale planner (Sec. 8): simulate full IMPECCABLE iterations at
// leadership scale in virtual time — ML1 inference over the 126M-ligand
// library, S1 docking of the promoted slice, S3-CG on the diverse pick, S2
// training, and S3-FG on the outlier conformations — driven by the SAME
// core/stages/ modules as the real campaign, in virtual-workload mode
// (ScaleModel), on the discrete-event Summit model with durations from the
// calibrated method models.
//
// Runs the multi-iteration campaign twice — strict sequential iterations vs
// cross-iteration pipelining (iteration i+1's ML1/S1 overlapping iteration
// i's CG/S2/FG tail) — and reports the makespan reduction. Cross-checks the
// paper's headline numbers: tens of millions of docks per day and node-hour
// totals consistent with the reported 2.5M node-hour campaign.
//
// A second study co-schedules four heterogeneous virtual targets through one
// MultiCampaign with S1 docking routed through the RAPTOR overlay
// (RaptorBackend over the DES machine), FIFO vs critical-path-priority ready
// order, and reports the priority schedule's makespan reduction plus the
// overlay utilization under each discipline (BENCH_pr8.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "impeccable/core/multi_campaign.hpp"
#include "impeccable/core/stages/graph_builder.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/profiler.hpp"
#include "impeccable/rct/raptor_backend.hpp"
#include "paper_protocol.hpp"

namespace core = impeccable::core;
namespace hpc = impeccable::hpc;
namespace obs = impeccable::obs;
namespace rct = impeccable::rct;
namespace stages = impeccable::core::stages;

namespace {

struct ScaleRun {
  double makespan_s = 0.0;
  std::size_t tasks = 0;
  int peak_concurrency = 0;
  double idle_fraction = 0.0;
};

ScaleRun run_campaign(int nodes, int iterations, const stages::ScaleModel& model,
                      bool pipelined) {
  rct::SimBackend backend(hpc::summit(nodes));
  rct::ProfiledBackend profiled(backend);
  rct::AppManager mgr(profiled, {.stage_transition_overhead = 60.0});

  core::CampaignConfig cfg;
  cfg.iterations = iterations;
  cfg.pipeline_iterations = pipelined;

  auto state = std::make_shared<stages::CampaignState>();
  state->config = &cfg;
  state->backend = &profiled;
  core::CampaignReport report;
  report.iterations.resize(static_cast<std::size_t>(iterations));
  state->report = &report;
  state->scale = &model;  // virtual-workload mode: no payloads, no library

  rct::StageGraph graph;
  stages::add_campaign_graph(graph, state, iterations, pipelined);
  mgr.run_graph(std::move(graph));

  const auto prof = profiled.profile();
  ScaleRun out;
  out.makespan_s = prof.makespan();
  out.tasks = prof.tasks.size();
  out.peak_concurrency = prof.peak_concurrency();
  out.idle_fraction = prof.idle_fraction();
  return out;
}

struct MultiRun {
  double makespan_s = 0.0;
  std::size_t tasks = 0;
  std::size_t retries = 0;
  rct::RaptorStats raptor;
};

// Four heterogeneous targets sharing one graph, one DES machine, and one
// RAPTOR overlay for the dock-chunk traffic. The FIFO baseline launches
// same-instant ready waves in insertion order (dock backfill ahead of
// whole-node ensemble requests); the priority schedule lets CG/S2/FG waves
// preempt, which is where the makespan reduction comes from.
MultiRun run_multi_target(int nodes, int iterations,
                          const std::vector<stages::ScaleModel>& targets,
                          bool priority) {
  rct::SimBackend sim(hpc::summit(nodes));
  rct::RaptorBackendOptions ropts;
  ropts.overlay.masters = 4;
  ropts.overlay.workers = nodes * 6;  // one overlay worker per GPU
  ropts.overlay.bulk_size = 8;
  rct::RaptorBackend raptor(sim, ropts);

  core::ExecConfig exec;
  // Strict sequential science per target: iteration i+1's surrogate waits
  // for iteration i's full refinement chain. Co-scheduling across targets
  // is then the only source of overlap — exactly the regime where launch
  // order decides whether ensemble chains (which gate each target's next
  // dock stream) cut ahead of other targets' bulk dock traffic.
  exec.pipeline_iterations = false;
  exec.stage_transition_overhead = 60.0;
  core::MultiCampaignOptions mopts;
  mopts.ready_order = priority ? rct::AppManagerOptions::ReadyOrder::kPriority
                               : rct::AppManagerOptions::ReadyOrder::kFifo;
  mopts.critical_path_priority = priority;
  core::MultiCampaign multi(exec, mopts);
  for (std::size_t i = 0; i < targets.size(); ++i)
    multi.add_virtual_target("target-" + std::to_string(i), iterations,
                             targets[i]);
  const auto out = multi.run(raptor);

  MultiRun r;
  r.makespan_s = out.graph.makespan;
  r.tasks = out.graph.completed();
  r.retries = out.graph.retries;
  r.raptor = raptor.stats();
  if (std::getenv("IMPECCABLE_BENCH_DEBUG")) {
    auto rows = out.graph.nodes;
    std::sort(rows.begin(), rows.end(),
              [](const rct::NodeReport& a, const rct::NodeReport& b) {
                return a.begin < b.begin;
              });
    std::fprintf(stderr, "--- %s ---\n", priority ? "priority" : "fifo");
    for (const auto& n : rows)
      std::fprintf(stderr, "%-14s %-12s prio=%10.0f ready=%8.0f begin=%8.0f end=%8.0f wait=%7.0f\n",
                   n.pipeline.c_str(), n.name.c_str(), n.priority, n.ready,
                   n.begin, n.end, n.ready_wait());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = 256;      // the partition the campaign runs on
  const int iterations = 3;

  // Workload shape per iteration, durations from the calibrated per-method
  // models. Multi-task stages pack many ligands per task so the DES stays
  // tractable: each task models a work *chunk* with the aggregate duration
  // of its ligands.
  const auto ml1 = paper::ml1_model();
  const auto s1 = paper::s1_model();
  const auto cg = paper::s3cg_model();
  const auto s2 = paper::s2_model();
  const auto fg = paper::s3fg_model();

  stages::ScaleModel model;
  model.ml1_ligands = 1.26e8;  // Sec. 6.1.1: "about 126M ligands"
  model.ml1_shards = nodes * 6;
  model.ml1_gpu_seconds_per_ligand = ml1.gpu_seconds_per_ligand;
  model.s1_docks = 200'000;  // top slice promoted to docking
  model.s1_chunk = 1000;
  model.s1_gpu_seconds_per_ligand = s1.gpu_seconds_per_ligand;
  model.cg_ligands = 2000;  // Sec. 7.1.2 scale, one whole-node ensemble each
  model.cg_whole_nodes = 1;
  model.cg_seconds = cg.hours_per_ligand * 3600.0;
  model.s2_tasks = 8;  // 2-node DDP training jobs
  model.s2_whole_nodes = 2;
  model.s2_seconds = s2.hours_per_ligand * 3600.0;
  model.fg_conformations = 25;  // Sec. 7.1.4: 5 binders x 5 confs
  model.fg_whole_nodes = 4;
  model.fg_seconds = fg.hours_per_ligand * 3600.0;

  const ScaleRun seq = run_campaign(nodes, iterations, model, false);
  const ScaleRun pip = run_campaign(nodes, iterations, model, true);
  const double reduction = 1.0 - pip.makespan_s / seq.makespan_s;

  std::printf("%d IMPECCABLE iterations on a %d-node Summit partition "
              "(virtual time, real stage modules):\n\n",
              iterations, nodes);
  std::printf("  ML1 inference      %10.3g ligands/iter\n", model.ml1_ligands);
  std::printf("  S1 docking         %10zu ligands/iter\n", model.s1_docks);
  std::printf("  S3-CG ensembles    %10zu ligands/iter\n", model.cg_ligands);
  std::printf("  S3-FG ensembles    %10zu conformations/iter\n",
              model.fg_conformations);
  std::printf("\n                        sequential     pipelined\n");
  std::printf("  tasks executed     %10zu    %10zu\n", seq.tasks, pip.tasks);
  std::printf("  makespan           %8.1f h    %8.1f h\n",
              seq.makespan_s / 3600.0, pip.makespan_s / 3600.0);
  std::printf("  node-hours         %10.3g    %10.3g\n",
              nodes * seq.makespan_s / 3600.0, nodes * pip.makespan_s / 3600.0);
  std::printf("  peak concurrency   %10d    %10d tasks\n",
              seq.peak_concurrency, pip.peak_concurrency);
  std::printf("  idle fraction      %9.1f%%    %9.1f%%\n",
              100 * seq.idle_fraction, 100 * pip.idle_fraction);
  std::printf("\n  cross-iteration pipelining cuts the campaign makespan by "
              "%.1f%%\n", 100 * reduction);

  std::printf("\npaper cross-checks: ~40-50M docks/hour sustained (here: "
              "%.3g docks/hour during S1); the production campaign consumed "
              "2.5M node-hours over 3 months across its platforms — %.3g "
              "node-hours for %d iterations on %d nodes is the right order "
              "for a dozen targets with repeated refinement.\n",
              static_cast<double>(model.s1_docks) /
                  ((s1.gpu_seconds_per_ligand *
                    static_cast<double>(model.s1_docks) / (nodes * 6)) /
                   3600.0),
              nodes * seq.makespan_s / 3600.0, iterations, nodes);

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_pr4.json";
  {
    std::ofstream f(json_path, std::ios::trunc);
    obs::json::Writer w(f);
    w.begin_object();
    w.kv("bench", "campaign_at_scale");
    w.kv("nodes", nodes);
    w.kv("iterations", iterations);
    w.kv("ml1_ligands_per_iteration", model.ml1_ligands);
    w.kv("s1_docks_per_iteration", static_cast<std::uint64_t>(model.s1_docks));
    w.kv("cg_ligands_per_iteration",
         static_cast<std::uint64_t>(model.cg_ligands));
    w.kv("fg_conformations_per_iteration",
         static_cast<std::uint64_t>(model.fg_conformations));
    w.key("sequential");
    w.begin_object();
    w.kv("makespan_seconds", seq.makespan_s);
    w.kv("tasks", static_cast<std::uint64_t>(seq.tasks));
    w.kv("peak_concurrency", seq.peak_concurrency);
    w.kv("idle_fraction", seq.idle_fraction);
    w.end_object();
    w.key("pipelined");
    w.begin_object();
    w.kv("makespan_seconds", pip.makespan_s);
    w.kv("tasks", static_cast<std::uint64_t>(pip.tasks));
    w.kv("peak_concurrency", pip.peak_concurrency);
    w.kv("idle_fraction", pip.idle_fraction);
    w.end_object();
    w.kv("makespan_reduction", reduction);
    w.end_object();
  }
  std::printf("  results JSON       %s\n", json_path.c_str());

  // ---- multi-target study: 4 heterogeneous targets, FIFO vs priority ----
  // Sec. 6.1.2 operating mode: several targets share one EnTK session and
  // one RAPTOR overlay. Heterogeneous per-target workloads (a rich lead
  // series docking millions, a stale one winding down) make the scheduling
  // discipline matter: FIFO lets per-GPU dock backfill starve the
  // whole-node CG/S2/FG ensemble waves that gate each campaign's tail.
  // Per-target shares model campaign reality: one rich lead series still
  // docking millions, two mid-stream targets, one winding down. Ensemble
  // waves are node-light (the paper's CG/S2/FG counts are small next to
  // the dock stream) but form a long serial chain per iteration — and in
  // sequential science mode that chain gates the target's next dock
  // stream, so starving it behind other targets' bulk docking compounds
  // across iterations.
  const int multi_nodes = 32;
  const int multi_iterations = 3;
  const double dock_s = s1.gpu_seconds_per_ligand;
  auto make_target = [&](double share) {
    stages::ScaleModel m;
    m.ml1_ligands = 2e7 * share;
    m.ml1_shards = multi_nodes * 6;
    m.ml1_gpu_seconds_per_ligand = ml1.gpu_seconds_per_ligand;
    m.s1_docks = static_cast<std::size_t>(4'500'000 * share);
    m.s1_chunk = 250;
    m.s1_gpu_seconds_per_ligand = dock_s;
    m.cg_ligands = std::max<std::size_t>(1, static_cast<std::size_t>(3 * share));
    m.cg_whole_nodes = 1;
    m.cg_seconds = cg.hours_per_ligand * 3600.0;
    m.s2_tasks = std::max(1, static_cast<int>(2 * share));
    m.s2_whole_nodes = 2;
    m.s2_seconds = s2.hours_per_ligand * 3600.0;
    m.fg_conformations = std::max<std::size_t>(1, static_cast<std::size_t>(2 * share));
    m.fg_whole_nodes = 2;
    m.fg_seconds = fg.hours_per_ligand * 3600.0;
    return m;
  };
  const std::vector<stages::ScaleModel> targets = {
      make_target(1.0), make_target(0.65), make_target(0.4),
      make_target(0.2)};

  const MultiRun fifo =
      run_multi_target(multi_nodes, multi_iterations, targets, false);
  const MultiRun prio =
      run_multi_target(multi_nodes, multi_iterations, targets, true);
  const double multi_reduction = 1.0 - prio.makespan_s / fifo.makespan_s;

  std::printf("\nfour heterogeneous targets, one shared graph + RAPTOR "
              "overlay, %d-node partition, %d sequential-science "
              "iterations:\n\n",
              multi_nodes, multi_iterations);
  std::printf("                            FIFO      priority\n");
  std::printf("  tasks executed     %10zu    %10zu\n", fifo.tasks, prio.tasks);
  std::printf("  makespan           %8.1f h    %8.1f h\n",
              fifo.makespan_s / 3600.0, prio.makespan_s / 3600.0);
  std::printf("  overlay docks      %10zu    %10zu\n", fifo.raptor.tasks,
              prio.raptor.tasks);
  std::printf("  overlay util       %9.1f%%    %9.1f%%\n",
              100 * fifo.raptor.worker_utilization,
              100 * prio.raptor.worker_utilization);
  std::printf("\n  critical-path priority cuts the co-scheduled campaign "
              "makespan by %.1f%%\n", 100 * multi_reduction);

  const std::string multi_json = argc > 2 ? argv[2] : "BENCH_pr8.json";
  {
    std::ofstream f(multi_json, std::ios::trunc);
    obs::json::Writer w(f);
    w.begin_object();
    w.kv("bench", "campaign_at_scale_multi_target");
    w.kv("nodes", multi_nodes);
    w.kv("iterations", multi_iterations);
    w.kv("targets", static_cast<std::uint64_t>(targets.size()));
    auto dump = [&w](const char* key, const MultiRun& r) {
      w.key(key);
      w.begin_object();
      w.kv("makespan_seconds", r.makespan_s);
      w.kv("tasks", static_cast<std::uint64_t>(r.tasks));
      w.kv("retries", static_cast<std::uint64_t>(r.retries));
      w.kv("raptor_tasks", static_cast<std::uint64_t>(r.raptor.tasks));
      w.kv("raptor_worker_utilization", r.raptor.worker_utilization);
      w.kv("raptor_load_imbalance", r.raptor.load_imbalance);
      w.end_object();
    };
    dump("fifo", fifo);
    dump("priority", prio);
    w.kv("makespan_reduction", multi_reduction);
    w.end_object();
  }
  std::printf("  results JSON       %s\n", multi_json.c_str());
  return 0;
}
