// Campaign-at-scale planner (Sec. 8): simulate full IMPECCABLE iterations at
// leadership scale in virtual time — ML1 inference over the 126M-ligand
// library, S1 docking of the promoted slice, S3-CG on the diverse pick, S2
// training, and S3-FG on the outlier conformations — driven by the SAME
// core/stages/ modules as the real campaign, in virtual-workload mode
// (ScaleModel), on the discrete-event Summit model with durations from the
// calibrated method models.
//
// Runs the multi-iteration campaign twice — strict sequential iterations vs
// cross-iteration pipelining (iteration i+1's ML1/S1 overlapping iteration
// i's CG/S2/FG tail) — and reports the makespan reduction. Cross-checks the
// paper's headline numbers: tens of millions of docks per day and node-hour
// totals consistent with the reported 2.5M node-hour campaign.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "impeccable/core/stages/graph_builder.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/profiler.hpp"
#include "paper_protocol.hpp"

namespace core = impeccable::core;
namespace hpc = impeccable::hpc;
namespace obs = impeccable::obs;
namespace rct = impeccable::rct;
namespace stages = impeccable::core::stages;

namespace {

struct ScaleRun {
  double makespan_s = 0.0;
  std::size_t tasks = 0;
  int peak_concurrency = 0;
  double idle_fraction = 0.0;
};

ScaleRun run_campaign(int nodes, int iterations, const stages::ScaleModel& model,
                      bool pipelined) {
  rct::SimBackend backend(hpc::summit(nodes));
  rct::ProfiledBackend profiled(backend);
  rct::AppManager mgr(profiled, {.stage_transition_overhead = 60.0});

  core::CampaignConfig cfg;
  cfg.iterations = iterations;
  cfg.pipeline_iterations = pipelined;

  auto state = std::make_shared<stages::CampaignState>();
  state->config = &cfg;
  state->backend = &profiled;
  core::CampaignReport report;
  report.iterations.resize(static_cast<std::size_t>(iterations));
  state->report = &report;
  state->scale = &model;  // virtual-workload mode: no payloads, no library

  rct::StageGraph graph;
  stages::add_campaign_graph(graph, state, iterations, pipelined);
  mgr.run_graph(std::move(graph));

  const auto prof = profiled.profile();
  ScaleRun out;
  out.makespan_s = prof.makespan();
  out.tasks = prof.tasks.size();
  out.peak_concurrency = prof.peak_concurrency();
  out.idle_fraction = prof.idle_fraction();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = 256;      // the partition the campaign runs on
  const int iterations = 3;

  // Workload shape per iteration, durations from the calibrated per-method
  // models. Multi-task stages pack many ligands per task so the DES stays
  // tractable: each task models a work *chunk* with the aggregate duration
  // of its ligands.
  const auto ml1 = paper::ml1_model();
  const auto s1 = paper::s1_model();
  const auto cg = paper::s3cg_model();
  const auto s2 = paper::s2_model();
  const auto fg = paper::s3fg_model();

  stages::ScaleModel model;
  model.ml1_ligands = 1.26e8;  // Sec. 6.1.1: "about 126M ligands"
  model.ml1_shards = nodes * 6;
  model.ml1_gpu_seconds_per_ligand = ml1.gpu_seconds_per_ligand;
  model.s1_docks = 200'000;  // top slice promoted to docking
  model.s1_chunk = 1000;
  model.s1_gpu_seconds_per_ligand = s1.gpu_seconds_per_ligand;
  model.cg_ligands = 2000;  // Sec. 7.1.2 scale, one whole-node ensemble each
  model.cg_whole_nodes = 1;
  model.cg_seconds = cg.hours_per_ligand * 3600.0;
  model.s2_tasks = 8;  // 2-node DDP training jobs
  model.s2_whole_nodes = 2;
  model.s2_seconds = s2.hours_per_ligand * 3600.0;
  model.fg_conformations = 25;  // Sec. 7.1.4: 5 binders x 5 confs
  model.fg_whole_nodes = 4;
  model.fg_seconds = fg.hours_per_ligand * 3600.0;

  const ScaleRun seq = run_campaign(nodes, iterations, model, false);
  const ScaleRun pip = run_campaign(nodes, iterations, model, true);
  const double reduction = 1.0 - pip.makespan_s / seq.makespan_s;

  std::printf("%d IMPECCABLE iterations on a %d-node Summit partition "
              "(virtual time, real stage modules):\n\n",
              iterations, nodes);
  std::printf("  ML1 inference      %10.3g ligands/iter\n", model.ml1_ligands);
  std::printf("  S1 docking         %10zu ligands/iter\n", model.s1_docks);
  std::printf("  S3-CG ensembles    %10zu ligands/iter\n", model.cg_ligands);
  std::printf("  S3-FG ensembles    %10zu conformations/iter\n",
              model.fg_conformations);
  std::printf("\n                        sequential     pipelined\n");
  std::printf("  tasks executed     %10zu    %10zu\n", seq.tasks, pip.tasks);
  std::printf("  makespan           %8.1f h    %8.1f h\n",
              seq.makespan_s / 3600.0, pip.makespan_s / 3600.0);
  std::printf("  node-hours         %10.3g    %10.3g\n",
              nodes * seq.makespan_s / 3600.0, nodes * pip.makespan_s / 3600.0);
  std::printf("  peak concurrency   %10d    %10d tasks\n",
              seq.peak_concurrency, pip.peak_concurrency);
  std::printf("  idle fraction      %9.1f%%    %9.1f%%\n",
              100 * seq.idle_fraction, 100 * pip.idle_fraction);
  std::printf("\n  cross-iteration pipelining cuts the campaign makespan by "
              "%.1f%%\n", 100 * reduction);

  std::printf("\npaper cross-checks: ~40-50M docks/hour sustained (here: "
              "%.3g docks/hour during S1); the production campaign consumed "
              "2.5M node-hours over 3 months across its platforms — %.3g "
              "node-hours for %d iterations on %d nodes is the right order "
              "for a dozen targets with repeated refinement.\n",
              static_cast<double>(model.s1_docks) /
                  ((s1.gpu_seconds_per_ligand *
                    static_cast<double>(model.s1_docks) / (nodes * 6)) /
                   3600.0),
              nodes * seq.makespan_s / 3600.0, iterations, nodes);

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_pr4.json";
  {
    std::ofstream f(json_path, std::ios::trunc);
    obs::json::Writer w(f);
    w.begin_object();
    w.kv("bench", "campaign_at_scale");
    w.kv("nodes", nodes);
    w.kv("iterations", iterations);
    w.kv("ml1_ligands_per_iteration", model.ml1_ligands);
    w.kv("s1_docks_per_iteration", static_cast<std::uint64_t>(model.s1_docks));
    w.kv("cg_ligands_per_iteration",
         static_cast<std::uint64_t>(model.cg_ligands));
    w.kv("fg_conformations_per_iteration",
         static_cast<std::uint64_t>(model.fg_conformations));
    w.key("sequential");
    w.begin_object();
    w.kv("makespan_seconds", seq.makespan_s);
    w.kv("tasks", static_cast<std::uint64_t>(seq.tasks));
    w.kv("peak_concurrency", seq.peak_concurrency);
    w.kv("idle_fraction", seq.idle_fraction);
    w.end_object();
    w.key("pipelined");
    w.begin_object();
    w.kv("makespan_seconds", pip.makespan_s);
    w.kv("tasks", static_cast<std::uint64_t>(pip.tasks));
    w.kv("peak_concurrency", pip.peak_concurrency);
    w.kv("idle_fraction", pip.idle_fraction);
    w.end_object();
    w.kv("makespan_reduction", reduction);
    w.end_object();
  }
  std::printf("  results JSON       %s\n", json_path.c_str());
  return 0;
}
