// Ablation (Sec. 5.1.3): why ensembles? "MMPBSA based free energies have
// huge variability in results rendering them non-reproducible" with single
// trajectories; ESMACS's replica ensembles make the estimate reproducible,
// and "the number of replicas performed is adjusted to find a sweet spot".
//
// Protocol: one docked LPC; for each replica count R in {1, 2, 6, 12, 24},
// run the full ESMACS estimate 6 independent times (different seeds) and
// report the spread (SD) of the 6 estimates — the reproducibility metric —
// plus the mean reported standard error. Expect SD ~ 1/sqrt(R).

#include <cmath>
#include <cstdio>
#include <vector>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/md/system.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace fe = impeccable::fe;

int main() {
  // One representative LPC.
  const auto receptor = dock::Receptor::synthesize("T", 4242);
  const auto grid = dock::compute_grid(receptor);
  const auto mol = chem::parse_smiles("CCOc1ccc(cc1)C(=O)Nc1ccccn1");
  dock::DockOptions dopts;
  dopts.runs = 2;
  const auto pose = dock::dock(*grid, mol, "L", dopts);
  md::ProteinOptions popts;
  popts.residues = 60;
  const auto protein = md::build_protein(4242, popts);
  const auto lpc = md::build_lpc(protein, mol, pose.best_coords);
  const int rotatable = chem::compute_descriptors(mol).rotatable_bonds;

  const int repeats = 6;
  impeccable::common::ThreadPool pool;

  std::printf("ESMACS ensemble-size ablation (one LPC, %d independent "
              "estimates per replica count)\n\n", repeats);
  std::printf("%-10s %-14s %-22s %-20s\n", "replicas", "mean dG",
              "SD across estimates", "mean reported SEM");

  double sd1 = 0.0, sd_last = 0.0;
  int last_r = 0;
  for (int replicas : {1, 2, 6, 12, 24}) {
    fe::EsmacsConfig cfg = fe::cg_config(0.4);
    cfg.replicas = replicas;

    std::vector<double> estimates, sems;
    for (int rep = 0; rep < repeats; ++rep) {
      const auto res = fe::run_esmacs(lpc, rotatable, cfg,
                                      0x5eedULL + 1000 * rep, &pool);
      estimates.push_back(res.binding_free_energy);
      sems.push_back(res.std_error);
    }
    const double sd = impeccable::common::stddev(estimates);
    if (replicas == 1) sd1 = sd;
    sd_last = sd;
    last_r = replicas;
    std::printf("%-10d %-14.2f %-22.3f %-20.3f\n", replicas,
                impeccable::common::mean(estimates), sd,
                impeccable::common::mean(sems));
  }

  std::printf("\nreproducibility gain 1 -> %d replicas: %.1fx tighter "
              "(sqrt(%d) = %.1f expected)\n",
              last_r, sd1 / std::max(1e-9, sd_last), last_r,
              std::sqrt(static_cast<double>(last_r)));
  return 0;
}
