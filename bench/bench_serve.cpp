// bench_serve — screening-as-a-service latency/throughput curves, the
// workload behind BENCH_pr7.json.
//
// Three measurements against serve::InferenceServer:
//   1. Closed-loop capacity probe: N waiting clients over an all-unique
//      stream (cache off) fixes the server's peak model-bound throughput
//      and the client-count scaling curve.
//   2. Cache headline: the same closed-loop harness on a 90%-repeat-ligand
//      stream, cache off vs. warmed cache on. The acceptance target is
//      >= 5x throughput from serving repeats out of the sharded cache.
//   3. Open-loop sweep: fixed-schedule arrivals at increasing multiples of
//      the probed capacity under kShed admission. Latency is measured from
//      the scheduled send time (no coordinated omission), so the curve
//      shows the saturation knee — and that p99 of *served* requests stays
//      bounded under overload because the watermark sheds the excess.
//
// Usage: bench_serve [out.json]   (JSON also echoed to stdout)

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "impeccable/ml/surrogate.hpp"
#include "impeccable/serve/loadgen.hpp"
#include "impeccable/serve/server.hpp"

namespace ml = impeccable::ml;
namespace serve = impeccable::serve;

namespace {

constexpr const char* kTarget = "3clpro";

std::unique_ptr<ml::SurrogateModel> make_model() {
  ml::SurrogateOptions opts;
  opts.seed = 0xbe7c;  // deterministic weights; serving never trains
  return std::make_unique<ml::SurrogateModel>(opts);
}

void report_json(std::ostream& os, const serve::LoadReport& r) {
  os << "{\"issued\": " << r.issued << ", \"completed\": " << r.completed
     << ", \"shed\": " << r.shed << ", \"offered_rps\": " << r.offered_rps
     << ", \"achieved_rps\": " << r.achieved_rps
     << ",\n       \"p50_us\": " << r.p50_us << ", \"p95_us\": " << r.p95_us
     << ", \"p99_us\": " << r.p99_us << ", \"mean_us\": " << r.mean_us
     << ", \"max_us\": " << r.max_us << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const int hw = std::max(2u, std::thread::hardware_concurrency());

  // All-unique stream for capacity probing; 90%-repeat stream for the cache.
  serve::WorkloadOptions unique_opts;
  unique_opts.unique_ligands = 96;
  unique_opts.stream_length = 8192;
  unique_opts.repeat_fraction = 0.0;
  const serve::Workload unique_load = serve::make_workload(unique_opts);

  serve::WorkloadOptions repeat_opts = unique_opts;
  repeat_opts.repeat_fraction = 0.9;
  repeat_opts.hot_set = 16;
  const serve::Workload repeat_load = serve::make_workload(repeat_opts);

  std::ostringstream json;
  json.precision(17);
  json << "{\n  \"workload\": \"bench_serve\",\n  \"hw_threads\": " << hw
       << ",\n  \"unique_ligands\": " << unique_opts.unique_ligands
       << ",\n  \"flops_per_image\": " << make_model()->flops_per_image();

  // ---- 1. closed-loop client scaling (cache off, all-unique) ------------
  json << ",\n  \"closed_loop\": [";
  double peak_rps = 0.0;
  bool first = true;
  std::vector<int> client_counts{1, 2, hw, 2 * hw};
  std::sort(client_counts.begin(), client_counts.end());
  client_counts.erase(std::unique(client_counts.begin(), client_counts.end()),
                      client_counts.end());
  for (const int clients : client_counts) {
    serve::ServeOptions sopts;
    sopts.cache.capacity = 0;
    serve::InferenceServer server(sopts);
    server.register_target(kTarget, make_model());
    serve::ClosedLoopOptions copts;
    copts.clients = clients;
    copts.requests_per_client = 400 / clients + 20;
    const serve::LoadReport r =
        serve::run_closed_loop(server, kTarget, unique_load, copts);
    peak_rps = std::max(peak_rps, r.achieved_rps);
    if (!first) json << ",";
    first = false;
    json << "\n    {\"clients\": " << clients << ", \"report\": ";
    report_json(json, r);
    json << "}";
  }
  json << "\n  ]";

  // ---- 2. cache-hit headline (90%-repeat stream) ------------------------
  const auto run_repeat = [&](std::size_t cache_capacity) {
    serve::ServeOptions sopts;
    sopts.cache.capacity = cache_capacity;
    serve::InferenceServer server(sopts);
    server.register_target(kTarget, make_model());
    if (cache_capacity > 0) {
      // Warm the cache with one pass over the pool: steady-state serving,
      // not cold-start, is what the repeat workload measures.
      for (const serve::Request& req : repeat_load.unique)
        server.score(kTarget, req);
    }
    serve::ClosedLoopOptions copts;
    copts.clients = hw;
    copts.requests_per_client = 1600 / hw + 25;
    const serve::LoadReport r =
        serve::run_closed_loop(server, kTarget, repeat_load, copts);
    return std::make_pair(r, server.stats(kTarget));
  };
  const auto [cold, cold_stats] = run_repeat(0);
  const auto [warm, warm_stats] = run_repeat(4096);
  const double speedup = warm.achieved_rps / std::max(1e-9, cold.achieved_rps);
  json << ",\n  \"cache\": {\n    \"repeat_fraction\": "
       << repeat_opts.repeat_fraction << ",\n    \"hot_set\": "
       << repeat_opts.hot_set << ",\n    \"off\": ";
  report_json(json, cold);
  json << ",\n    \"on\": ";
  report_json(json, warm);
  json << ",\n    \"on_hits\": " << warm_stats.cache.hits
       << ", \"on_misses\": " << warm_stats.cache.misses
       << ", \"on_model_images\": " << warm_stats.model_images
       << ", \"off_model_images\": " << cold_stats.model_images
       << ",\n    \"throughput_speedup\": " << speedup << "\n  }";

  // ---- 3. open-loop offered-load sweep under kShed ----------------------
  json << ",\n  \"open_loop\": [";
  double knee_rps = 0.0;
  first = true;
  for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.5, 2.5}) {
    const double rate = std::max(50.0, mult * peak_rps);
    serve::ServeOptions sopts;
    sopts.cache.capacity = 0;
    sopts.admission = serve::AdmissionPolicy::kShed;
    sopts.queue_capacity = 128;
    serve::InferenceServer server(sopts);
    server.register_target(kTarget, make_model());
    serve::OpenLoopOptions oopts;
    oopts.offered_rps = rate;
    // ~1.5 s of offered load per point, bounded for the slow/fast extremes.
    oopts.requests = std::clamp<std::size_t>(
        static_cast<std::size_t>(rate * 1.5), 64, 4096);
    const serve::LoadReport r =
        serve::run_open_loop(server, kTarget, unique_load, oopts);
    // Saturation knee: the first offered rate the server cannot keep up
    // with (achieved < 90% of offered once shedding starts).
    if (knee_rps == 0.0 && r.achieved_rps < 0.9 * r.offered_rps)
      knee_rps = r.offered_rps;
    if (!first) json << ",";
    first = false;
    json << "\n    {\"load_multiplier\": " << mult << ", \"report\": ";
    report_json(json, r);
    json << "}";
  }
  json << "\n  ],\n  \"peak_closed_loop_rps\": " << peak_rps
       << ",\n  \"saturation_knee_rps\": " << knee_rps << "\n}\n";

  std::cout << json.str();
  if (argc > 1) {
    std::ofstream f(argv[1]);
    f << json.str();
    std::cerr << "wrote " << argv[1] << "\n";
  }
  return 0;
}
