// Quickstart: the shortest path through the public API.
//
// Synthesizes a receptor ("target"), compiles its affinity grid, docks one
// ligand with the Lamarckian GA, transplants the best pose into the
// coarse-grained MD protein, and estimates the binding free energy with a
// small ESMACS ensemble. The whole run is traced through obs::Recorder and
// exported as quickstart_trace.json — drop it on https://ui.perfetto.dev
// (or chrome://tracing) to see the dock/fe/pool spans on a timeline.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <filesystem>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/md/io.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/obs/recorder.hpp"
#include "impeccable/obs/trace_export.hpp"

namespace chem = impeccable::chem;
namespace common = impeccable::common;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace fe = impeccable::fe;
namespace obs = impeccable::obs;

int main() {
  // 0. Observability: one recorder for the whole run. Every instrumented
  // layer below records spans into it; without this install each span is a
  // single untaken branch.
  obs::Recorder recorder;
  obs::ScopedRecorder scoped(&recorder);
  common::ThreadPool pool;
  // 1. A target: procedural receptor + precompiled affinity maps.
  const auto receptor = dock::Receptor::synthesize("demo-target", /*seed=*/42);
  const auto grid = dock::compute_grid(receptor);
  std::printf("receptor '%s': %zu pocket atoms\n", receptor.name().c_str(),
              receptor.atoms().size());

  // 2. A ligand from SMILES.
  const char* smiles = "CC(C)Cc1ccc(cc1)C(C)C(=O)O";  // ibuprofen
  const auto mol = chem::parse_smiles(smiles);
  const auto desc = chem::compute_descriptors(mol);
  std::printf("ligand %s  (MW %.1f, %d rotatable bonds)\n", smiles,
              desc.molecular_weight, desc.rotatable_bonds);

  // 3. Dock: 4 independent LGA runs, pose clustering, best score.
  dock::DockOptions dopts;
  dopts.runs = 4;
  dopts.pool = &pool;
  const auto result = dock::dock(*grid, mol, "ibuprofen", dopts);
  std::printf("docking: best score %.2f kcal/mol, %zu pose clusters, %llu "
              "evaluations\n",
              result.best_score, result.clusters.size(),
              static_cast<unsigned long long>(result.evaluations));
  for (std::size_t c = 0; c < result.clusters.size(); ++c)
    std::printf("  cluster %zu: %.2f kcal/mol (%d/%d runs)\n", c,
                result.clusters[c].best_energy, result.clusters[c].members,
                dopts.runs);

  // 4. Binding free energy: build the LPC and run coarse-grained ESMACS.
  md::ProteinOptions popts;
  popts.residues = 60;
  const auto protein = md::build_protein(/*seed=*/42, popts);
  const auto lpc = md::build_lpc(protein, mol, result.best_coords);

  fe::EsmacsConfig cfg = fe::cg_config(0.5);
  cfg.keep_trajectories = true;
  const auto esmacs =
      fe::run_esmacs(lpc, desc.rotatable_bonds, cfg, /*seed=*/7, &pool);
  std::printf("CG-ESMACS (%d replicas): dG = %.2f +- %.2f kcal/mol "
              "(95%% CI [%.2f, %.2f]; within-replica %.2f)\n",
              cfg.replicas, esmacs.binding_free_energy, esmacs.std_error,
              esmacs.ci95.lo, esmacs.ci95.hi, esmacs.within_replica_error);

  // 5. Artifacts for a molecular viewer: the docked complex and one replica.
  const auto dir = std::filesystem::temp_directory_path();
  const auto pdb = (dir / "impeccable_complex.pdb").string();
  const auto xyz = (dir / "impeccable_replica0.xyz").string();
  md::write_pdb(lpc, lpc.positions, pdb);
  md::write_xyz(esmacs.trajectories.front(), xyz);
  std::printf("wrote %s and %s\n", pdb.c_str(), xyz.c_str());

  // 6. The trace: every span of the run as Chrome trace_event JSON.
  const auto trace_path = (dir / "quickstart_trace.json").string();
  obs::write_chrome_trace(recorder.take(), trace_path);
  std::printf("wrote %s (open in https://ui.perfetto.dev)\n",
              trace_path.c_str());
  return 0;
}
