// ML1 deployment pipeline (Sec. 6.1.1): shard a compound library's
// depictions into compressed files on disk, then run distributed inference —
// rank-partitioned shards, a prefetching loader thread per rank feeding the
// surrogate through a bounded queue, resilience to corrupt shards, and a
// rank-0 gather of (ligand, score) pairs.
//
//   $ ./examples/sharded_inference

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/ml/shards.hpp"

namespace chem = impeccable::chem;
namespace ml = impeccable::ml;

int main() {
  const std::size_t compounds = 400;
  const std::size_t per_shard = 50;

  // Build the dataset: depictions of a synthetic library.
  const auto lib = chem::generate_library("ULT", compounds, 911);
  std::vector<ml::ShardRecord> records;
  std::size_t raw_bytes = 0;
  for (const auto& e : lib.entries) {
    records.push_back({e.id, chem::depict(chem::parse_smiles(e.smiles))});
    raw_bytes += records.back().image.data.size();  // uint8-quantized size
  }

  const auto dir = std::filesystem::temp_directory_path() / "impeccable_shards";
  std::filesystem::remove_all(dir);
  const auto paths = ml::write_shards(records, per_shard, dir.string());

  std::size_t disk_bytes = 0;
  for (const auto& p : paths) disk_bytes += std::filesystem::file_size(p);
  std::printf("dataset: %zu ligands -> %zu shards, compression %.1fx "
              "(paper reports 14.2x with gzip)\n",
              compounds, paths.size(),
              static_cast<double>(raw_bytes) / disk_bytes);

  // Corrupt one shard to demonstrate resilience.
  {
    std::ofstream f(paths[2], std::ios::binary | std::ios::trunc);
    f << "bit rot";
  }

  const auto t0 = std::chrono::steady_clock::now();
  ml::InferenceOptions iopts;
  iopts.ranks = 4;
  const auto out = ml::run_sharded_inference(paths, {}, iopts);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::printf("inference: %zu ligands scored on %d ranks in %.2f s "
              "(%.0f ligands/s); %zu shard(s) skipped after IO errors\n",
              out.scores.size(), iopts.ranks, dt, out.scores.size() / dt,
              out.shards_failed);

  std::printf("\ntop-5 predicted binders:\n");
  auto ranked = out.scores;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i)
    std::printf("  %s  score %.3f\n", ranked[i].first.c_str(), ranked[i].second);

  std::filesystem::remove_all(dir);
  return 0;
}
