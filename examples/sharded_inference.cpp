// ML1 deployment pipeline (Sec. 6.1.1): generate a compound library
// straight into the on-disk LigandStore (the out-of-core SMILES format),
// depict it through a lazy MmapSource, shard the depictions into compressed
// files, then run distributed inference — rank-partitioned shards, a
// prefetching loader thread per rank feeding the surrogate through a
// bounded queue, resilience to corrupt shards, and a rank-0 gather of
// (ligand, score) pairs.
//
//   $ ./examples/sharded_inference

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "impeccable/chem/ligand_source.hpp"
#include "impeccable/ml/shards.hpp"

namespace chem = impeccable::chem;
namespace ml = impeccable::ml;

int main() {
  const std::size_t compounds = 400;
  const std::size_t per_shard = 50;

  // Spill the generated library to a LigandStore and read it back through
  // the mmap'd source — the campaign engine's out-of-core data path.
  const auto store_dir =
      std::filesystem::temp_directory_path() / "impeccable_example_store";
  std::filesystem::remove_all(store_dir);
  chem::spill_generated_library("ULT", compounds, 911, store_dir.string());
  auto store = chem::LigandStore::open(store_dir.string());
  std::printf("store: %zu ligands in %zu shard(s), %zu skipped\n",
              store.size(), store.stats().shards_ok,
              store.stats().shards_skipped);
  const chem::MmapSource source(std::move(store));

  std::vector<ml::ShardRecord> records;
  std::size_t raw_bytes = 0;
  for (std::size_t i = 0; i < source.size(); ++i) {
    records.push_back({source.id(i), source.image(i)});
    raw_bytes += records.back().image.data.size();  // uint8-quantized size
  }

  const auto dir = std::filesystem::temp_directory_path() / "impeccable_shards";
  std::filesystem::remove_all(dir);
  const auto paths = ml::write_shards(records, per_shard, dir.string());

  std::size_t disk_bytes = 0;
  for (const auto& p : paths) disk_bytes += std::filesystem::file_size(p);
  std::printf("dataset: %zu ligands -> %zu shards, compression %.1fx "
              "(paper reports 14.2x with gzip)\n",
              compounds, paths.size(),
              static_cast<double>(raw_bytes) / disk_bytes);

  // Corrupt one shard to demonstrate resilience.
  {
    std::ofstream f(paths[2], std::ios::binary | std::ios::trunc);
    f << "bit rot";
  }

  const auto t0 = std::chrono::steady_clock::now();
  ml::InferenceOptions iopts;
  iopts.ranks = 4;
  const auto out = ml::run_sharded_inference(paths, {}, iopts);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::printf("inference: %zu ligands scored on %d ranks in %.2f s "
              "(%.0f ligands/s); %zu shard(s) skipped after IO errors\n",
              out.scores.size(), iopts.ranks, dt, out.scores.size() / dt,
              out.shards_failed);

  std::printf("\ntop-5 predicted binders:\n");
  auto ranked = out.scores;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i)
    std::printf("  %s  score %.3f\n", ranked[i].first.c_str(), ranked[i].second);

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(store_dir);
  return 0;
}
