// TIES lead optimization demo: thermodynamic integration over the
// protein-ligand coupling parameter for two candidate leads, ranking them by
// the alchemical binding free energy (the paper's most accurate — and most
// expensive — method, Tab. 2's "BFE-TI" row).
//
//   $ ./examples/ties_lead_optimization

#include <cstdio>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/ties.hpp"
#include "impeccable/md/system.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace fe = impeccable::fe;

int main() {
  const auto receptor = dock::Receptor::synthesize("target", 314);
  const auto grid = dock::compute_grid(receptor);
  md::ProteinOptions popts;
  popts.residues = 50;
  const auto protein = md::build_protein(314, popts);

  const char* leads[] = {"CCOc1ccc(N)cc1C(=O)O", "CC(C)c1ccccc1O"};

  fe::TiesConfig cfg;
  cfg.lambdas = {0.0, 0.25, 0.5, 0.75, 1.0};
  cfg.replicas_per_window = 4;
  cfg.simulation.equilibration_steps = 80;
  cfg.simulation.production_steps = 300;
  cfg.simulation.report_interval = 20;

  for (const char* smiles : leads) {
    const auto mol = chem::parse_smiles(smiles);
    dock::DockOptions dopts;
    dopts.runs = 2;
    const auto pose = dock::dock(*grid, mol, smiles, dopts);
    const auto lpc = md::build_lpc(protein, mol, pose.best_coords);

    const auto ties = fe::run_ties(lpc, cfg, 17);
    std::printf("lead %s  (dock %.2f kcal/mol)\n", smiles, pose.best_score);
    std::printf("  %-8s %-14s %-10s\n", "lambda", "<dH/dlambda>", "sem");
    for (const auto& w : ties.windows)
      std::printf("  %-8.2f %-14.3f %-10.3f\n", w.lambda, w.mean_dhdl,
                  w.std_error);
    std::printf("  TI integral: dG = %.2f +- %.2f kcal/mol "
                "(%llu MD steps)\n\n",
                ties.delta_g, ties.std_error,
                static_cast<unsigned long long>(ties.md_steps));
  }
  return 0;
}
