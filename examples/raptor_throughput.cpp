// RAPTOR master/worker overlay demo: sustained docking throughput on a
// simulated Summit partition, showing bulk dispatch, load balancing over a
// heavy-tailed workload, and the effect of adding masters.
//
//   $ ./examples/raptor_throughput

#include <cstdio>
#include <iostream>

#include "impeccable/rct/raptor.hpp"

namespace rct = impeccable::rct;

int main() {
  // 128 Summit nodes = 768 GPU workers; ~0.5 s per dock.
  const int nodes = 128;
  const auto durations = rct::docking_durations(200000, 0.5, 1);

  std::printf("workload: %zu docking requests (log-normal + heavy tail), "
              "%d nodes x 6 GPUs\n\n", durations.size(), nodes);
  std::printf("%-9s %-10s %-14s %-18s %-12s %-10s\n", "masters", "bulk",
              "makespan(s)", "docks/hour", "utilization", "imbalance");

  rct::RaptorStats best{};
  for (int masters : {1, 4, 16}) {
    for (int bulk : {16, 128}) {
      rct::RaptorOptions opts;
      opts.masters = masters;
      opts.workers = nodes * 6;
      opts.bulk_size = bulk;
      const auto stats = rct::run_raptor(opts, durations);
      std::printf("%-9d %-10d %-14.1f %-18.3e %-12.3f %-10.3f\n", masters,
                  bulk, stats.makespan, stats.throughput_per_hour,
                  stats.worker_utilization, stats.load_imbalance);
      if (stats.throughput_per_hour > best.throughput_per_hour) best = stats;
    }
  }
  std::printf("\nbest configuration (JSON):\n");
  best.to_json(std::cout);
  std::printf("\n\nNote: one master saturates on dispatch service time; "
              "sharding workers over several masters restores near-linear "
              "throughput (Sec. 6.1.2 of the paper).\n");
  return 0;
}
