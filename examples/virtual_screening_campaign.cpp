// Full IMPECCABLE campaign at demo scale: the iterative
// ML1 -> S1 -> S3-CG -> S2 -> S3-FG loop over a synthetic compound library
// against one target, with the ML surrogate retrained from each iteration's
// docking results.
//
// With --pipelined, iteration i+1's ML1/S1 overlap iteration i's CG/S2/FG
// tail (cross-iteration pipelining); the science is bitwise identical.
//
//   $ ./examples/virtual_screening_campaign [--pipelined]

#include <cstdio>
#include <cstring>
#include <iostream>

#include "impeccable/core/campaign.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;

int main(int argc, char** argv) {
  // Science (what to screen, how hard) and execution (how to drive the run)
  // are separate configs; Campaign composes them.
  core::ScienceConfig sci;
  sci.library_size = 120;
  sci.iterations = 2;
  sci.bootstrap_docks = 24;
  sci.dock_top_fraction = 0.20;
  sci.cg_compounds = 6;
  sci.top_binders = 2;
  sci.outliers_per_binder = 2;
  sci.dock.runs = 2;
  sci.dock.lga.population = 24;
  sci.dock.lga.generations = 10;
  sci.esmacs_cg = fe::cg_config(0.4);
  sci.esmacs_cg.replicas = 4;
  sci.esmacs_fg = fe::fg_config(0.15);
  sci.esmacs_fg.replicas = 6;
  sci.surrogate.epochs = 5;
  sci.aae.epochs = 5;

  core::ExecConfig exec;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--pipelined") == 0) exec.pipeline_iterations = true;

  std::printf("IMPECCABLE campaign: library %zu, %d iterations%s\n\n",
              sci.library_size, sci.iterations,
              exec.pipeline_iterations ? " (cross-iteration pipelining)" : "");

  core::Target target = core::Target::make("PLPro-like", /*seed=*/6209, 50, 23);
  core::Campaign campaign(std::move(target), sci, exec);
  const auto report = campaign.run();

  // One JSON object per iteration (the obs::json path every tool consumes).
  for (const auto& it : report.iterations) {
    it.to_json(std::cout);
    std::printf("\n");
  }

  std::printf("\nexecution profile (JSON summary):\n");
  report.profile.to_json(std::cout);
  std::printf("\n");

  std::printf("\ntop CG binders:\n");
  const auto ranking = report.cg_ranking();
  for (std::size_t i = 0; i < ranking.size() && i < 5; ++i) {
    const auto* rec = ranking[i];
    std::printf("  %zu. %s  dock %.2f  dG(CG) %.2f +- %.2f", i + 1,
                rec->id.c_str(), rec->dock_score, rec->cg_energy,
                rec->cg_error);
    if (!rec->fg_energies.empty()) {
      double best_fg = rec->fg_energies[0];
      for (double e : rec->fg_energies) best_fg = std::min(best_fg, e);
      std::printf("  dG(FG, best conf) %.2f", best_fg);
    }
    std::printf("\n      %s\n", rec->smiles.c_str());
  }

  std::printf("\nflop tally:\n");
  for (const auto& [component, flops] : report.flops->snapshot())
    std::printf("  %-6s %12.3e flops\n", component.c_str(),
                static_cast<double>(flops));
  return 0;
}
