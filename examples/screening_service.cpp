// Screening as a service: stand up an in-process serve::InferenceServer
// with two protease targets, drive it with closed- and open-loop synthetic
// clients, and show what the micro-batcher, the sharded score cache, and
// admission control each buy.
//
//   $ ./examples/screening_service

#include <cstdio>
#include <memory>

#include "impeccable/ml/surrogate.hpp"
#include "impeccable/obs/metrics.hpp"
#include "impeccable/serve/loadgen.hpp"
#include "impeccable/serve/server.hpp"

namespace ml = impeccable::ml;
namespace obs = impeccable::obs;
namespace serve = impeccable::serve;

namespace {

std::unique_ptr<ml::SurrogateModel> load_target_model(std::uint64_t seed) {
  // A deployment would load_weights() a pre-trained file here; deterministic
  // fresh weights keep the example self-contained.
  ml::SurrogateOptions opts;
  opts.seed = seed;
  return std::make_unique<ml::SurrogateModel>(opts);
}

void print_report(const char* label, const serve::LoadReport& r) {
  std::printf(
      "%-28s %6zu ok %5zu shed  %8.0f req/s  p50 %7.0f us  p99 %7.0f us\n",
      label, r.completed, r.shed, r.achieved_rps, r.p50_us, r.p99_us);
}

}  // namespace

int main() {
  serve::ServeOptions opts;
  opts.max_batch = 64;
  opts.deadline_us = 2000.0;     // light load pays at most ~one deadline
  opts.cache.capacity = 4096;    // sharded LRU in front of the model
  serve::InferenceServer server(opts);
  server.register_target("3clpro", load_target_model(0x3c1));
  server.register_target("plpro", load_target_model(0x91a));

  // A docking campaign re-visits leads constantly: 90% of requests hit a
  // small hot set of ligands.
  serve::WorkloadOptions wopts;
  wopts.unique_ligands = 64;
  wopts.stream_length = 4096;
  wopts.repeat_fraction = 0.9;
  wopts.hot_set = 16;
  const serve::Workload workload = serve::make_workload(wopts);

  std::printf("serving %zu targets, %zu unique ligands, 90%% repeat traffic\n\n",
              server.targets().size(), workload.unique.size());

  // Closed loop: four clients in lock-step against each target.
  serve::ClosedLoopOptions copts;
  copts.clients = 4;
  copts.requests_per_client = 250;
  print_report("closed loop / 3clpro",
               serve::run_closed_loop(server, "3clpro", workload, copts));
  print_report("closed loop / plpro",
               serve::run_closed_loop(server, "plpro", workload, copts));

  // Open loop: a fixed arrival schedule. The warmed cache absorbs most of
  // it; micro-batches amortize the rest.
  serve::OpenLoopOptions oopts;
  oopts.offered_rps = 2000.0;
  oopts.requests = 2000;
  print_report("open loop / 3clpro @2k rps",
               serve::run_open_loop(server, "3clpro", workload, oopts));

  const serve::TargetStats s = server.stats("3clpro");
  std::printf(
      "\n3clpro internals: %llu batches, %llu model images for %llu requests\n"
      "  cache: %llu hits / %llu misses (%zu resident, %zu shards)\n"
      "  adaptive flush threshold %d (ewma %.0f us/image)\n",
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.model_images),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses), s.cache.size,
      s.cache.shards, s.flush_threshold, s.ewma_image_us);

  // Counters export to any metrics registry (same JSON path the campaign
  // engine uses).
  obs::MetricsRegistry metrics;
  server.publish_metrics(metrics);
  std::printf("\npublished serve.* gauges: serve.plpro.completed = %.0f, "
              "serve.3clpro.cache_hits = %.0f\n",
              metrics.gauge("serve.plpro.completed").value(),
              metrics.gauge("serve.3clpro.cache_hits").value());
  return 0;
}
