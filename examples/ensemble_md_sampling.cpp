// DeepDriveMD-style adaptive sampling (stage S2) as a standalone tool:
// run a coarse-grained ESMACS ensemble of one protein-ligand complex, train
// the 3D-AAE on the Cα point clouds of every frame, detect outlier
// conformations with LOF on the latent manifold, and print the 2D t-SNE of
// the latent space so the Fig. 5C-style structure is visible in a terminal.
//
//   $ ./examples/ensemble_md_sampling

#include <algorithm>
#include <cstdio>
#include <vector>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/kabsch.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/ml/aae.hpp"
#include "impeccable/ml/lof.hpp"
#include "impeccable/ml/tsne.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace fe = impeccable::fe;
namespace ml = impeccable::ml;

int main() {
  // Build one docked LPC.
  const auto receptor = dock::Receptor::synthesize("target", 99);
  const auto grid = dock::compute_grid(receptor);
  const auto mol = chem::parse_smiles("CCOc1ccc(cc1)C(=O)Nc1ccccn1");
  dock::DockOptions dopts;
  dopts.runs = 2;
  const auto pose = dock::dock(*grid, mol, "L1", dopts);

  md::ProteinOptions popts;
  popts.residues = 60;
  const auto protein = md::build_protein(99, popts);
  const auto lpc = md::build_lpc(protein, mol, pose.best_coords);

  // CG ensemble with retained trajectories.
  fe::EsmacsConfig cfg = fe::cg_config(0.6);
  cfg.keep_trajectories = true;
  const int rotatable = chem::compute_descriptors(mol).rotatable_bonds;
  const auto esmacs = fe::run_esmacs(lpc, rotatable, cfg, 31);
  std::printf("CG ensemble: %d replicas, dG = %.2f +- %.2f kcal/mol\n",
              cfg.replicas, esmacs.binding_free_energy, esmacs.std_error);

  // Collect point clouds + per-frame RMSD.
  std::vector<std::vector<impeccable::common::Vec3>> clouds;
  std::vector<double> rmsds;
  for (const auto& traj : esmacs.trajectories) {
    const auto series =
        md::rmsd_series(traj, lpc.topology.selection(md::BeadKind::Protein));
    for (std::size_t f = 0; f < traj.frames.size(); ++f) {
      clouds.push_back(md::protein_point_cloud(traj.frames[f], lpc));
      rmsds.push_back(series[f]);
    }
  }
  std::printf("dataset: %zu conformations of %zu C-alpha beads\n",
              clouds.size(), clouds.front().size());

  // 3D-AAE training + latent embedding.
  ml::AaeOptions aopts;
  aopts.epochs = 10;
  ml::Aae3d aae(static_cast<int>(clouds.front().size()), aopts);
  const auto report = aae.train(clouds);
  std::printf("AAE: chamfer %.4f -> %.4f (validation %.4f)\n",
              report.epochs.front().reconstruction,
              report.epochs.back().reconstruction,
              report.epochs.back().validation);

  const auto latent = aae.embed_batch(clouds);
  const auto lof = ml::local_outlier_factor(latent, 10);
  const auto outliers = ml::top_outliers(lof, 5);
  std::printf("top-5 LOF outlier conformations (candidates for S3-FG):\n");
  for (std::size_t i : outliers)
    std::printf("  frame %3zu  LOF %.3f  RMSD %.2f A\n", i, lof[i], rmsds[i]);

  // ASCII t-SNE of the latent space, outliers marked '#', high-RMSD 'o'.
  ml::TsneOptions topts;
  topts.perplexity = 15.0;
  topts.iterations = 200;
  const auto embedded = ml::tsne(latent, topts);
  const int W = 64, H = 24;
  std::vector<std::string> canvas(H, std::string(W, ' '));
  double xmin = 1e18, xmax = -1e18, ymin = 1e18, ymax = -1e18;
  for (const auto& p : embedded) {
    xmin = std::min(xmin, p[0]); xmax = std::max(xmax, p[0]);
    ymin = std::min(ymin, p[1]); ymax = std::max(ymax, p[1]);
  }
  const double median_rmsd = [&] {
    auto r = rmsds;
    std::nth_element(r.begin(), r.begin() + r.size() / 2, r.end());
    return r[r.size() / 2];
  }();
  for (std::size_t i = 0; i < embedded.size(); ++i) {
    const int x = static_cast<int>((embedded[i][0] - xmin) / (xmax - xmin + 1e-12) * (W - 1));
    const int y = static_cast<int>((embedded[i][1] - ymin) / (ymax - ymin + 1e-12) * (H - 1));
    char mark = '.';
    if (rmsds[i] > 1.5 * median_rmsd) mark = 'o';
    if (std::find(outliers.begin(), outliers.end(), i) != outliers.end()) mark = '#';
    canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = mark;
  }
  std::printf("\nt-SNE of the 3D-AAE latent space "
              "('.' inlier, 'o' high-RMSD, '#' LOF outlier):\n");
  for (const auto& row : canvas) std::printf("  |%s|\n", row.c_str());
  return 0;
}
