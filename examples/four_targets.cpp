// Multi-target campaign: the paper screens "the four main target SARS-CoV-2
// proteins, namely 3CLPro, PLPro, ADRP and NSP15" (Sec. 7.1.1), each with
// multiple crystal structures — concurrently, through ONE shared EnTK
// infrastructure (Sec. 6.1.2), not one campaign per target. This example
// runs all four through a single MultiCampaign on one backend: the shared
// priority scheduler interleaves the targets' stage waves, a HitRatePolicy
// re-weights targets by realized hit rate after each docking merge, and each
// target's science stays bitwise identical to what its own standalone run
// would produce.
//
//   $ ./examples/four_targets

#include <cstdio>

#include "impeccable/core/multi_campaign.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;

int main() {
  struct TargetSpec {
    const char* name;
    std::uint64_t seed;
  };
  const TargetSpec specs[] = {
      {"3CLPro", 301}, {"PLPro", 609}, {"ADRP", 1102}, {"NSP15", 1504}};

  // The science slice: what is screened and how hard — per target.
  core::ScienceConfig science;
  science.library_size = 80;
  science.iterations = 1;
  science.bootstrap_docks = 20;
  science.cg_compounds = 4;
  science.top_binders = 2;
  science.outliers_per_binder = 1;
  science.dock.runs = 1;
  science.dock.lga.population = 16;
  science.dock.lga.generations = 8;
  science.esmacs_cg = fe::cg_config(0.3);
  science.esmacs_cg.replicas = 3;
  science.esmacs_fg = fe::fg_config(0.08);
  science.esmacs_fg.replicas = 4;
  science.aae.epochs = 3;

  // The execution slice: how the shared run is driven — one for all four.
  core::ExecConfig exec;
  exec.threads = 0;  // LocalBackend default: hardware concurrency

  core::HitRatePolicy policy;  // rich targets outbid stale ones
  core::MultiCampaignOptions opts;
  opts.policy = &policy;
  core::MultiCampaign campaign(exec, opts);
  for (const auto& spec : specs) {
    core::ScienceConfig sci = science;
    sci.library_seed = spec.seed;  // per-target bootstrap sample
    campaign.add_target(
        core::Target::make(spec.name, spec.seed, 40, 21, /*crystals=*/2),
        sci);
  }

  std::printf("four-target campaign: %zu-compound library per target, "
              "2 crystal structures each, one shared backend\n\n",
              science.library_size);
  const auto out = campaign.run();

  std::printf("%-8s %-8s %-8s %-12s %-34s\n", "target", "docked", "CG",
              "best dG(CG)", "best compound");
  for (std::size_t i = 0; i < out.reports.size(); ++i) {
    const auto& report = out.reports[i];
    const auto ranking = report.cg_ranking();
    const auto& it = report.iterations.front();
    if (!ranking.empty()) {
      std::printf("%-8s %-8zu %-8zu %-12.2f %s\n", out.targets[i].c_str(),
                  it.docked, it.cg_runs, ranking.front()->cg_energy,
                  ranking.front()->smiles.c_str());
    }
  }
  std::printf("\nshared graph: %zu stage nodes, %zu tasks, %zu retries\n",
              out.graph.nodes.size(), out.graph.completed(),
              out.graph.retries);
  std::printf("(all rows ran through one stage graph under priority "
              "scheduling; the production run screened over a dozen targets "
              "and 4.2e9 ligands, Sec. 8.)\n");
  return 0;
}
