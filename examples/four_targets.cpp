// Multi-target campaign: the paper screens "the four main target SARS-CoV-2
// proteins, namely 3CLPro, PLPro, ADRP and NSP15" (Sec. 7.1.1), each with
// multiple crystal structures. This example runs a small campaign per target
// and prints a per-target hit table — the shape of the NVBL production
// campaign at demo scale.
//
//   $ ./examples/four_targets

#include <cstdio>

#include "impeccable/core/campaign.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;

int main() {
  struct TargetSpec {
    const char* name;
    std::uint64_t seed;
  };
  const TargetSpec specs[] = {
      {"3CLPro", 301}, {"PLPro", 609}, {"ADRP", 1102}, {"NSP15", 1504}};

  core::CampaignConfig cfg;
  cfg.library_size = 80;
  cfg.iterations = 1;
  cfg.bootstrap_docks = 20;
  cfg.cg_compounds = 4;
  cfg.top_binders = 2;
  cfg.outliers_per_binder = 1;
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 16;
  cfg.dock.lga.generations = 8;
  cfg.esmacs_cg = fe::cg_config(0.3);
  cfg.esmacs_cg.replicas = 3;
  cfg.esmacs_fg = fe::fg_config(0.08);
  cfg.esmacs_fg.replicas = 4;
  cfg.aae.epochs = 3;

  std::printf("four-target campaign: %zu-compound library per target, "
              "2 crystal structures each\n\n", cfg.library_size);
  std::printf("%-8s %-8s %-8s %-12s %-34s\n", "target", "docked", "CG",
              "best dG(CG)", "best compound");

  for (const auto& spec : specs) {
    core::Target target =
        core::Target::make(spec.name, spec.seed, 40, 21, /*crystals=*/2);
    cfg.seed = spec.seed;  // per-target bootstrap sample
    core::Campaign campaign(std::move(target), cfg);
    const auto report = campaign.run();
    const auto ranking = report.cg_ranking();
    const auto& it = report.iterations.front();
    if (!ranking.empty()) {
      std::printf("%-8s %-8zu %-8zu %-12.2f %s\n", spec.name, it.docked,
                  it.cg_runs, ranking.front()->cg_energy,
                  ranking.front()->smiles.c_str());
    }
  }
  std::printf("\n(each row is an independent IMPECCABLE campaign; the "
              "production run screened over a dozen targets and 4.2e9 "
              "ligands, Sec. 8.)\n");
  return 0;
}
