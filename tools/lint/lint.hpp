#pragma once
// imp_lint — project-rule lint for the IMPECCABLE tree.
//
// clang-tidy/cppcheck are unavailable offline, and the rules we need are
// project-specific anyway (determinism discipline, obs-routed output, the
// dock scorer's allocation-free guarantee), so this is a self-contained
// token-level scanner: comments, string/char literals, and preprocessor
// directives are recognized and stripped, identifier tokens are matched
// whole (no substring false positives on `runtime()` vs `time()`), and each
// rule is scoped to the directory classes where it is an invariant.
//
// Rule catalogue (ids are what suppression comments name):
//   no-nondet-source    src/ only. Wall-clock, environment, and hardware
//                       entropy are banned: std::random_device,
//                       system_clock, time()/clock() calls, getenv,
//                       localtime/gmtime/mktime/gettimeofday, and
//                       <ctime>/<time.h> includes. Library randomness comes
//                       from seeded common::Rng streams; wall time for
//                       tracing goes through obs:: (steady_clock is allowed
//                       — it is monotonic and never feeds science).
//   no-std-rand         everywhere. rand/srand/rand_r/drand48: a hidden
//                       global stream that breaks seed ownership.
//   no-iostream-in-lib  src/ only. std::cout/std::cerr/std::clog: library
//                       output goes through obs:: (tracing/metrics) or
//                       caller-supplied streams. Abort-path diagnostics use
//                       std::fprintf(stderr, ...) which stays signal-safe
//                       and unbuffered-by-intent.
//   no-naked-alloc      dock/ steady-state scorer files (score*, grid.*;
//                       score* covers score_batch.* — the batched kernels
//                       carry the same guarantee) and the chem/ out-of-core
//                       store files (store.*, ligand_source.* — their read
//                       path serves string_views out of mmap'd shards, and
//                       a raw malloc/new[] there is exactly the per-ligand
//                       heap state the format exists to avoid).
//                       malloc/calloc/realloc and array new[] would
//                       silently undo PR 2's allocation-free evaluate()
//                       guarantee; storage belongs in ScorerScratch or in
//                       containers sized at setup.
//   pragma-once         every .hpp/.h anywhere must contain #pragma once.
//   no-unordered-in-stages
//                       core/stages/ only. unordered_map/unordered_set
//                       iteration order is libstdc++-version- and
//                       seed-dependent; a merge() that folds one into
//                       ordered campaign state is a science_fingerprint()
//                       hazard. Use std::map/std::vector or sort first —
//                       the rule bans the tokens outright so reviewers see
//                       an explicit suppression where one is truly safe.
//   no-detached-thread  serve/ only. thread.detach() in a long-lived
//                       service leaks a worker the server cannot join at
//                       shutdown — it may still touch a destructed model,
//                       cache, or queue. Every serve/ thread is owned by a
//                       joinable handle whose shutdown path joins it.
//                       (serve/ is under src/, so it also inherits
//                       no-nondet-source and no-iostream-in-lib.)
//
// Suppressions:
//   // lint:allow(rule-id)            this line (or a /*...*/ starting on it)
//   // lint:allow-next-line(rule-id)  the following line
//   // lint:allow-file(rule-id)       whole file
// Multiple ids separate with commas: lint:allow(no-std-rand,pragma-once).

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace impeccable::lint {

/// One finding. `file` is the path as reported (relative to the scanned
/// root for tree walks, verbatim for direct lint_source calls).
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Directory-class flags derived from a repo-relative path; rules consult
/// these instead of re-parsing paths.
struct FileClass {
  bool in_src = false;          ///< under src/ (library code)
  bool is_header = false;       ///< .hpp or .h
  bool in_dock_scorer = false;  ///< dock/score*, dock/grid.* (incl. score_batch.*)
  bool in_chem_store = false;   ///< chem/store*, chem/ligand_source*
  bool in_stages = false;       ///< under core/stages/
  bool in_serve = false;        ///< under src/impeccable/serve/
};

/// Classify a repo-relative path ("src/impeccable/dock/score.cpp").
FileClass classify(std::string_view rel_path);

/// Lint one in-memory translation unit. `display_path` is used verbatim in
/// diagnostics; `cls` controls which rules apply.
std::vector<Diagnostic> lint_source(std::string_view text,
                                    const FileClass& cls,
                                    std::string_view display_path);

/// Lint one on-disk file (reads it, classifies by `rel_path`).
std::vector<Diagnostic> lint_file(const std::filesystem::path& path,
                                  std::string_view rel_path);

/// Walk src/, tests/, bench/, examples/, and tools/ under `root` and lint
/// every .cpp/.hpp/.h/.cc. Diagnostics come back sorted by (file, line).
std::vector<Diagnostic> lint_tree(const std::filesystem::path& root);

/// Render "file:line: [rule] message" lines; returns diagnostics.size().
std::size_t print(const std::vector<Diagnostic>& diags, std::string& out);

}  // namespace impeccable::lint
