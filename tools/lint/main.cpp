// imp_lint driver: `imp_lint <repo-root>` walks src/, tests/, bench/,
// examples/, tools/ and exits 1 if any project rule fires. Registered as the
// `lint`-labelled ctest so the tree stays clean by construction.

#include <cstdio>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: imp_lint <repo-root>\n");
    return 2;
  }
  const auto diags = impeccable::lint::lint_tree(argv[1]);
  std::string rendered;
  impeccable::lint::print(diags, rendered);
  if (!diags.empty()) {
    std::fputs(rendered.c_str(), stderr);
    std::fprintf(stderr, "imp_lint: %zu finding(s)\n", diags.size());
    return 1;
  }
  std::fprintf(stderr, "imp_lint: clean\n");
  return 0;
}
