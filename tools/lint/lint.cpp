#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace impeccable::lint {

namespace {

// ---------------------------------------------------------------------------
// Scanner: splits a C++ source into identifier/punctuation tokens with line
// numbers, plus preprocessor directives and suppression annotations. String
// and character literals (including raw strings) and comment bodies never
// produce tokens, so rule matching cannot fire inside them.

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct Directive {
  std::string text;  ///< directive line with continuations joined, '#' kept
  int line = 0;
};

struct Scan {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  /// line -> rule ids allowed on that line (from lint:allow /
  /// lint:allow-next-line on the previous line).
  std::map<int, std::set<std::string>> line_allows;
  std::set<std::string> file_allows;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse "lint:allow(...)" forms out of one comment's text.
void parse_suppressions(std::string_view comment, int line, Scan& scan) {
  std::size_t pos = 0;
  while ((pos = comment.find("lint:allow", pos)) != std::string_view::npos) {
    std::size_t tail = pos + std::string_view("lint:allow").size();
    int target_line = line;
    bool file_wide = false;
    if (comment.substr(tail, 10) == "-next-line") {
      target_line = line + 1;
      tail += 10;
    } else if (comment.substr(tail, 5) == "-file") {
      file_wide = true;
      tail += 5;
    }
    if (tail >= comment.size() || comment[tail] != '(') {
      pos = tail;
      continue;
    }
    std::size_t close = comment.find(')', tail);
    if (close == std::string_view::npos) break;
    std::string_view list = comment.substr(tail + 1, close - tail - 1);
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t comma = list.find(',', start);
      std::string_view id = list.substr(
          start, comma == std::string_view::npos ? list.size() - start
                                                 : comma - start);
      while (!id.empty() && id.front() == ' ') id.remove_prefix(1);
      while (!id.empty() && id.back() == ' ') id.remove_suffix(1);
      if (!id.empty()) {
        if (file_wide)
          scan.file_allows.insert(std::string(id));
        else
          scan.line_allows[target_line].insert(std::string(id));
      }
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    pos = close;
  }
}

Scan scan_source(std::string_view text) {
  Scan scan;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: consume the logical line (with continuations).
    if (c == '#' && at_line_start) {
      Directive d;
      d.line = line;
      while (i < n) {
        if (text[i] == '\\' && peek(1) == '\n') {
          d.text += ' ';
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        // A trailing // comment on a directive line still carries
        // suppressions; cut it from the directive text.
        if (text[i] == '/' && peek(1) == '/') break;
        d.text += text[i];
        ++i;
      }
      scan.directives.push_back(std::move(d));
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = n;
      parse_suppressions(text.substr(i, end - i), line, scan);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      parse_suppressions(text.substr(i, std::min(j + 2, n) - i), start_line,
                         scan);
      i = std::min(j + 2, n);
      continue;
    }

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, j);
      if (end == std::string_view::npos) end = n;
      for (std::size_t k = i; k < std::min(end + closer.size(), n); ++k)
        if (text[k] == '\n') ++line;
      i = std::min(end + closer.size(), n);
      continue;
    }

    // String / char literals with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;  // unterminated; keep lines honest
        ++j;
      }
      i = std::min(j + 1, n);
      continue;
    }

    // Identifier (or keyword — rules treat keywords as identifiers).
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      scan.tokens.push_back(
          {std::string(text.substr(i, j - i)), line, /*is_ident=*/true});
      i = j;
      continue;
    }

    // Punctuation: join :: and -> so "prev token" checks see one token.
    if (c == ':' && peek(1) == ':') {
      scan.tokens.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      scan.tokens.push_back({"->", line, false});
      i += 2;
      continue;
    }
    scan.tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Rules.

struct Sink {
  const Scan& scan;
  const std::string path;
  std::vector<Diagnostic>& out;

  void report(int line, std::string_view rule, std::string message) {
    if (scan.file_allows.count(std::string(rule))) return;
    if (auto it = scan.line_allows.find(line); it != scan.line_allows.end())
      if (it->second.count(std::string(rule))) return;
    out.push_back({path, line, std::string(rule), std::move(message)});
  }
};

bool is_member_access(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

bool next_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view text) {
  return i + 1 < toks.size() && toks[i + 1].text == text;
}

void rule_nondet_source(const Scan& scan, Sink& sink) {
  static const std::set<std::string, std::less<>> banned = {
      "random_device", "system_clock", "getenv",  "secure_getenv",
      "gettimeofday",  "localtime",    "gmtime",  "mktime",
      "localtime_r",   "gmtime_r",     "time_t",
  };
  for (std::size_t i = 0; i < scan.tokens.size(); ++i) {
    const Token& t = scan.tokens[i];
    if (!t.is_ident || is_member_access(scan.tokens, i)) continue;
    if (banned.count(t.text)) {
      sink.report(t.line, "no-nondet-source",
                  "'" + t.text +
                      "' is a nondeterminism source; draw from a seeded "
                      "common::Rng or use obs:: timing instead");
    } else if ((t.text == "time" || t.text == "clock") &&
               next_is(scan.tokens, i, "(")) {
      sink.report(t.line, "no-nondet-source",
                  "call to '" + t.text +
                      "()' reads the wall clock; science must not depend on "
                      "it (obs:: owns timing)");
    }
  }
  for (const Directive& d : scan.directives) {
    if (d.text.find("include") == std::string::npos) continue;
    for (const char* hdr : {"<ctime>", "<time.h>", "<sys/time.h>"}) {
      if (d.text.find(hdr) != std::string::npos)
        sink.report(d.line, "no-nondet-source",
                    std::string("include of ") + hdr +
                        " in library code (wall-clock API)");
    }
  }
}

void rule_std_rand(const Scan& scan, Sink& sink) {
  static const std::set<std::string, std::less<>> banned = {
      "rand", "srand", "rand_r", "drand48", "srand48", "random", "srandom"};
  for (std::size_t i = 0; i < scan.tokens.size(); ++i) {
    const Token& t = scan.tokens[i];
    if (!t.is_ident || !banned.count(t.text)) continue;
    if (is_member_access(scan.tokens, i)) continue;
    // Require a call or address-of-function shape so a local named `random`
    // used as a value does not fire; `std::rand` qualified alone still does.
    const bool qualified = i > 0 && scan.tokens[i - 1].text == "::";
    if (!qualified && !next_is(scan.tokens, i, "(")) continue;
    sink.report(t.line, "no-std-rand",
                "'" + t.text +
                    "' is a hidden global RNG stream; every draw must come "
                    "from an owned, seeded common::Rng");
  }
}

void rule_iostream_in_lib(const Scan& scan, Sink& sink) {
  for (std::size_t i = 0; i < scan.tokens.size(); ++i) {
    const Token& t = scan.tokens[i];
    if (!t.is_ident) continue;
    if (t.text != "cout" && t.text != "cerr" && t.text != "clog") continue;
    // Only the qualified stream objects (std::cout / ::cout) are findings;
    // plain `cout` is a legitimate identifier (e.g. conv output channels).
    if (i == 0 || scan.tokens[i - 1].text != "::") continue;
    sink.report(t.line, "no-iostream-in-lib",
                "library code must not write to std::" + t.text +
                    "; route structured output through obs:: or a "
                    "caller-supplied stream");
  }
}

void rule_naked_alloc(const Scan& scan, Sink& sink) {
  static const std::set<std::string, std::less<>> fns = {"malloc", "calloc",
                                                         "realloc"};
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.is_ident) continue;
    if (fns.count(t.text) && next_is(toks, i, "(") &&
        !is_member_access(toks, i)) {
      sink.report(t.line, "no-naked-alloc",
                  "'" + t.text +
                      "' in a steady-state scorer file; storage belongs in "
                      "ScorerScratch or setup-time containers");
      continue;
    }
    if (t.text == "new") {
      // Array-new detection: skip the type name (identifiers, ::, <...>)
      // and flag if the first structural token after it is '['.
      int angle_depth = 0;
      for (std::size_t j = i + 1; j < toks.size() && j < i + 24; ++j) {
        const std::string& s = toks[j].text;
        if (s == "<") ++angle_depth;
        if (s == ">") --angle_depth;
        if (angle_depth > 0 || toks[j].is_ident || s == "::" || s == "<" ||
            s == ">" || s == "*" || s == "&")
          continue;
        if (s == "[")
          sink.report(t.line, "no-naked-alloc",
                      "array new[] in a steady-state scorer file; the "
                      "allocation-free evaluate() guarantee forbids naked "
                      "heap arrays here");
        break;
      }
    }
  }
}

void rule_pragma_once(const Scan& scan, Sink& sink) {
  for (const Directive& d : scan.directives) {
    if (d.text.find("pragma") != std::string::npos &&
        d.text.find("once") != std::string::npos)
      return;
  }
  sink.report(1, "pragma-once", "header is missing '#pragma once'");
}

void rule_unordered_in_stages(const Scan& scan, Sink& sink) {
  static const std::set<std::string, std::less<>> banned = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (std::size_t i = 0; i < scan.tokens.size(); ++i) {
    const Token& t = scan.tokens[i];
    if (!t.is_ident || !banned.count(t.text)) continue;
    sink.report(t.line, "no-unordered-in-stages",
                "'" + t.text +
                    "' in core/stages/: hash-order iteration feeding "
                    "campaign state is a science_fingerprint() hazard; use "
                    "std::map / sorted std::vector, or suppress with an "
                    "ordering argument in review");
  }
  for (const Directive& d : scan.directives) {
    if (d.text.find("include") == std::string::npos) continue;
    if (d.text.find("<unordered_map>") != std::string::npos ||
        d.text.find("<unordered_set>") != std::string::npos)
      sink.report(d.line, "no-unordered-in-stages",
                  "unordered container include in core/stages/");
  }
}

void rule_detached_thread(const Scan& scan, Sink& sink) {
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.is_ident || t.text != "detach") continue;
    // Member-call shape only: `x.detach()` / `p->detach()`. A free function
    // or a declaration named detach is not a finding.
    if (!is_member_access(toks, i) || !next_is(toks, i, "(")) continue;
    sink.report(t.line, "no-detached-thread",
                "detach() in serve/: a detached worker outlives shutdown and "
                "may touch a destructed model/cache/queue; keep the handle "
                "joinable and join it on the shutdown path");
  }
}

}  // namespace

FileClass classify(std::string_view rel_path) {
  std::string p(rel_path);
  std::replace(p.begin(), p.end(), '\\', '/');
  FileClass cls;
  cls.in_src = p.rfind("src/", 0) == 0;
  cls.is_header = p.size() >= 4 && (p.ends_with(".hpp") || p.ends_with(".h"));
  if (cls.in_src && p.find("/dock/") != std::string::npos) {
    const std::string base = p.substr(p.rfind('/') + 1);
    cls.in_dock_scorer = base.rfind("score", 0) == 0 ||
                         base.rfind("grid.", 0) == 0;
  }
  // The out-of-core library files carry the same no-naked-alloc guarantee
  // as the dock scorer: the mmap read path must not grow per-ligand heap
  // state. (Being under src/, they inherit no-iostream-in-lib and
  // no-nondet-source like every library file.)
  if (cls.in_src && p.find("/chem/") != std::string::npos) {
    const std::string base = p.substr(p.rfind('/') + 1);
    cls.in_chem_store = base.rfind("store", 0) == 0 ||
                        base.rfind("ligand_source", 0) == 0;
  }
  // core/multi_campaign holds the same kind of state-merging code as the
  // stage modules (per-target reports, policy progress scans), so it gets
  // the same hash-order-iteration ban.
  cls.in_stages = p.find("core/stages/") != std::string::npos ||
                  p.find("core/multi_campaign") != std::string::npos;
  cls.in_serve = cls.in_src && p.find("/serve/") != std::string::npos;
  return cls;
}

std::vector<Diagnostic> lint_source(std::string_view text,
                                    const FileClass& cls,
                                    std::string_view display_path) {
  const Scan scan = scan_source(text);
  std::vector<Diagnostic> out;
  Sink sink{scan, std::string(display_path), out};
  if (cls.in_src) {
    rule_nondet_source(scan, sink);
    rule_iostream_in_lib(scan, sink);
  }
  rule_std_rand(scan, sink);
  if (cls.in_dock_scorer || cls.in_chem_store) rule_naked_alloc(scan, sink);
  if (cls.is_header) rule_pragma_once(scan, sink);
  if (cls.in_stages) rule_unordered_in_stages(scan, sink);
  if (cls.in_serve) rule_detached_thread(scan, sink);
  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Diagnostic> lint_file(const std::filesystem::path& path,
                                  std::string_view rel_path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    return {{std::string(rel_path), 0, "io", "could not read file"}};
  return lint_source(buf.str(), classify(rel_path), rel_path);
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root) {
  std::vector<Diagnostic> out;
  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    const std::filesystem::path dir = root / top;
    if (!std::filesystem::is_directory(dir)) continue;
    std::vector<std::filesystem::path> files;
    for (const auto& e :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h")
        files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
      const std::string rel =
          std::filesystem::relative(f, root).generic_string();
      auto diags = lint_file(f, rel);
      out.insert(out.end(), diags.begin(), diags.end());
    }
  }
  return out;
}

std::size_t print(const std::vector<Diagnostic>& diags, std::string& out) {
  for (const auto& d : diags) {
    out += d.file;
    out += ':';
    out += std::to_string(d.line);
    out += ": [";
    out += d.rule;
    out += "] ";
    out += d.message;
    out += '\n';
  }
  return diags.size();
}

}  // namespace impeccable::lint
