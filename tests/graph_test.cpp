// StageGraph engine tests: dependency semantics (diamonds, cross-pipeline
// edges), lazy task construction, serialized post_exec adaptivity, retry
// propagation, transition-overhead timing, and LocalBackend concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "impeccable/hpc/machine.hpp"
#include "impeccable/obs/recorder.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/profiler.hpp"

namespace hpc = impeccable::hpc;
namespace obs = impeccable::obs;
namespace rct = impeccable::rct;

namespace {

rct::TaskDescription sim_task(const std::string& name, double duration,
                              int gpus = 1) {
  rct::TaskDescription t;
  t.name = name;
  t.gpus = gpus;
  t.duration = duration;
  return t;
}

rct::StageNode node_of(const std::string& name,
                       std::vector<rct::TaskDescription> tasks,
                       std::function<void(rct::StageGraph&)> post = nullptr) {
  rct::StageNode n;
  n.name = name;
  n.pipeline = "test";
  n.tasks = std::move(tasks);
  n.post_exec = std::move(post);
  return n;
}

}  // namespace

TEST(StageGraph, RejectsForwardDependencies) {
  rct::StageGraph g;
  const auto a = g.add(node_of("a", {sim_task("a", 1)}));
  EXPECT_THROW(g.add(node_of("b", {}), {a + 1}), std::invalid_argument);
  EXPECT_THROW(g.add(node_of("c", {}), {rct::kNoNode}), std::invalid_argument);
  EXPECT_EQ(g.size(), 1u);
}

TEST(StageGraph, DiamondDependenciesJoinBeforeTheSink) {
  // a -> {b, c} -> d: b and c overlap; d starts only after both merged.
  rct::SimBackend backend(hpc::test_machine(4));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});

  std::vector<std::string> merge_order;
  rct::StageGraph g;
  auto track = [&](const char* tag) {
    return [&merge_order, tag](rct::StageGraph&) { merge_order.push_back(tag); };
  };
  const auto a = g.add(node_of("a", {sim_task("a", 1)}, track("a")));
  const auto b = g.add(node_of("b", {sim_task("b", 10)}, track("b")), {a});
  const auto c = g.add(node_of("c", {sim_task("c", 2)}, track("c")), {a});
  g.add(node_of("d", {sim_task("d", 1)}, track("d")), {b, c});

  const auto results = mgr.run_graph(std::move(g));
  ASSERT_EQ(results.size(), 4u);
  double b_start = 0, c_start = 0, bc_end = 0, d_start = 1e18;
  for (const auto& r : results) {
    if (r.name == "b") b_start = r.start_time;
    if (r.name == "c") c_start = r.start_time;
    if (r.name == "b" || r.name == "c") bc_end = std::max(bc_end, r.end_time);
    if (r.name == "d") d_start = r.start_time;
  }
  // The two middle branches start together (both ready when `a` merged)...
  EXPECT_NEAR(b_start, c_start, 1e-9);
  // ...and the sink waits for the slower one.
  EXPECT_GE(d_start, bc_end - 1e-9);
  ASSERT_EQ(merge_order.size(), 4u);
  EXPECT_EQ(merge_order.front(), "a");
  EXPECT_EQ(merge_order.back(), "d");
}

TEST(StageGraph, LazyBuildRunsAfterDependenciesMerged) {
  // The dependent node's task list is derived from upstream post_exec
  // output — the graph equivalent of adaptive stage construction.
  rct::SimBackend backend(hpc::test_machine(2));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});

  int produced = 0;
  rct::StageGraph g;
  const auto src = g.add(node_of("src", {sim_task("seed", 1)},
                                 [&](rct::StageGraph&) { produced = 3; }));
  rct::StageNode consumer;
  consumer.name = "consumer";
  consumer.pipeline = "test";
  consumer.build = [&] {
    std::vector<rct::TaskDescription> tasks;
    for (int i = 0; i < produced; ++i)
      tasks.push_back(sim_task("job" + std::to_string(i), 1));
    return tasks;
  };
  g.add(std::move(consumer), {src});

  const auto results = mgr.run_graph(std::move(g));
  EXPECT_EQ(results.size(), 4u);  // seed + 3 built jobs
}

TEST(StageGraph, PostExecAppendsNodesDuringExecution) {
  rct::SimBackend backend(hpc::test_machine(1));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});

  int rounds = 0;
  std::function<void(rct::StageGraph&)> extend = [&](rct::StageGraph& g) {
    if (++rounds < 4) {
      // Chain after the node just finished (== current last node).
      const rct::NodeId prev = g.size() - 1;
      g.add(node_of("r" + std::to_string(rounds),
                    {sim_task("r" + std::to_string(rounds), 1)}, extend),
            {prev});
    }
  };
  rct::StageGraph g;
  g.add(node_of("r0", {sim_task("r0", 1)}, extend));
  const auto results = mgr.run_graph(std::move(g));
  EXPECT_EQ(rounds, 4);
  EXPECT_EQ(results.size(), 4u);
}

TEST(StageGraph, EmptyNodesCompleteAndUnblockDependents) {
  rct::SimBackend backend(hpc::test_machine(1));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});
  bool merged = false;
  rct::StageGraph g;
  const auto a = g.add(node_of("empty", {}));
  g.add(node_of("after", {sim_task("t", 1)},
                [&](rct::StageGraph&) { merged = true; }),
        {a});
  const auto results = mgr.run_graph(std::move(g));
  EXPECT_TRUE(merged);
  EXPECT_EQ(results.size(), 1u);  // the empty node records no results
}

TEST(StageGraph, FailedTasksRetryThenPropagate) {
  rct::SimBackend backend(hpc::test_machine(1));
  rct::AppManager mgr(backend, {.max_retries = 2});

  int attempts = 0;
  bool downstream_ran = false;
  rct::TaskDescription flaky;
  flaky.name = "flaky";
  flaky.gpus = 1;
  flaky.duration = 1.0;
  flaky.payload = [&] {
    if (++attempts < 3) throw std::runtime_error("transient");
  };
  rct::StageGraph g;
  const auto a = g.add(node_of("flaky-stage", {flaky}));
  g.add(node_of("after", {sim_task("after", 1)},
                [&](rct::StageGraph&) { downstream_ran = true; }),
        {a});
  const auto results = mgr.run_graph(std::move(g));

  EXPECT_EQ(attempts, 3);  // two retries, third attempt succeeds
  EXPECT_EQ(mgr.tasks_retried(), 2u);
  EXPECT_EQ(mgr.tasks_failed(), 0u);
  EXPECT_TRUE(downstream_ran);
  EXPECT_EQ(results.size(), 2u);

  // Retries exhausted: the failure is recorded and the graph still drains.
  rct::TaskDescription doomed;
  doomed.name = "doomed";
  doomed.gpus = 1;
  doomed.duration = 1.0;
  doomed.payload = [] { throw std::runtime_error("permanent"); };
  rct::AppManager mgr2(backend, {.max_retries = 1});
  rct::StageGraph g2;
  const auto d = g2.add(node_of("doomed-stage", {doomed}));
  bool after_failure = false;
  g2.add(node_of("after", {sim_task("after", 1)},
                 [&](rct::StageGraph&) { after_failure = true; }),
         {d});
  mgr2.run_graph(std::move(g2));
  EXPECT_EQ(mgr2.tasks_retried(), 1u);
  EXPECT_EQ(mgr2.tasks_failed(), 1u);
  EXPECT_TRUE(after_failure);
}

TEST(StageGraph, TransitionOverheadOnlyOnDependentNodes) {
  rct::SimBackend backend(hpc::test_machine(2));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 5.0});
  rct::StageGraph g;
  const auto a = g.add(node_of("root", {sim_task("root", 1)}));
  g.add(node_of("child", {sim_task("child", 1)}), {a});
  const auto results = mgr.run_graph(std::move(g));
  double root_start = 1e18, root_end = 0, child_start = 1e18;
  for (const auto& r : results) {
    if (r.name == "root") root_start = r.start_time, root_end = r.end_time;
    if (r.name == "child") child_start = r.start_time;
  }
  EXPECT_LT(root_start, 1.0);  // roots start immediately
  EXPECT_GE(child_start, root_end + 5.0 - 1e-9);
}

TEST(StageGraph, CrossPipelineEdgeThrottlesTheFastPipeline) {
  // Two chains; the second chain's head depends on the first chain's head —
  // the shape of the campaign's cross-iteration feedback edge.
  rct::SimBackend backend(hpc::test_machine(4));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});
  rct::StageGraph g;
  const auto a0 = g.add(node_of("a0", {sim_task("a0", 10)}));
  g.add(node_of("a1", {sim_task("a1", 1)}), {a0});
  const auto b0 = g.add(node_of("b0", {sim_task("b0", 1)}), {a0});
  g.add(node_of("b1", {sim_task("b1", 1)}), {b0});
  const auto results = mgr.run_graph(std::move(g));
  double a0_end = 0, b0_start = 1e18;
  for (const auto& r : results) {
    if (r.name == "a0") a0_end = r.end_time;
    if (r.name == "b0") b0_start = r.start_time;
  }
  EXPECT_GE(b0_start, a0_end - 1e-9);
}

TEST(StageGraph, EmitsStageSpansPerNode) {
  obs::Recorder rec;
  rct::SimBackend sim(hpc::test_machine(2));
  rct::ProfiledBackend backend(sim, &rec);
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});
  rct::StageGraph g;
  const auto a = g.add(node_of("alpha", {sim_task("t1", 1)}));
  g.add(node_of("beta", {sim_task("t2", 1), sim_task("t3", 1)}), {a});
  mgr.run_graph(std::move(g));

  const auto trace = rec.take();
  int stage_spans = 0;
  for (const auto& s : trace.spans) {
    if (std::string(s.category) != obs::cat::kStage) continue;
    ++stage_spans;
    EXPECT_TRUE(s.name == "alpha" || s.name == "beta");
    bool has_pipeline = false, has_tasks = false;
    for (const auto& arg : s.args) {
      if (arg.key == "pipeline") has_pipeline = arg.str == "test";
      if (arg.key == "tasks") has_tasks = true;
    }
    EXPECT_TRUE(has_pipeline);
    EXPECT_TRUE(has_tasks);
  }
  EXPECT_EQ(stage_spans, 2);
}

TEST(StageGraph, LocalBackendRunsIndependentNodesConcurrently) {
  rct::LocalBackend backend(4);
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});

  std::atomic<int> merges{0};
  std::mutex mu;
  std::vector<int> order;
  rct::StageGraph g;
  for (int n = 0; n < 8; ++n) {
    rct::StageNode node;
    node.name = "n" + std::to_string(n);
    node.pipeline = "concurrent";
    for (int i = 0; i < 4; ++i) {
      rct::TaskDescription t;
      t.name = node.name + "-t" + std::to_string(i);
      t.payload = [] {};
      node.tasks.push_back(std::move(t));
    }
    node.post_exec = [&, n](rct::StageGraph&) {
      // Serialized post_exec: no two merges interleave, so unsynchronized
      // reads/writes of `order` are safe by construction (TSan-verified).
      merges.fetch_add(1);
      std::lock_guard lock(mu);
      order.push_back(n);
    };
    g.add(std::move(node));
  }
  const auto results = mgr.run_graph(std::move(g));
  EXPECT_EQ(results.size(), 32u);
  EXPECT_EQ(merges.load(), 8);
  EXPECT_EQ(order.size(), 8u);
}

TEST(StageGraph, PstRunIsTheLinearChainSpecialCase) {
  // AppManager::run() over Pipelines must behave exactly like the old PST
  // engine: stage order, adaptivity, and retries all preserved on top of
  // run_graph().
  rct::SimBackend backend(hpc::test_machine(2));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 1.0});
  int rounds = 0;
  std::function<void(rct::Pipeline&)> extend = [&](rct::Pipeline& pipe) {
    if (++rounds < 3)
      pipe.add_stage({"adaptive", {sim_task("r" + std::to_string(rounds), 1)},
                      extend});
  };
  rct::Pipeline p("pst");
  p.add_stage({"seed", {sim_task("r0", 1)}, extend});
  const auto results = mgr.run({std::move(p)});
  EXPECT_EQ(rounds, 3);
  ASSERT_EQ(results.size(), 3u);
  // Later stages pay the transition overhead each.
  double prev_end = 0.0;
  for (const auto& r : results) {
    if (prev_end > 0.0) {
      EXPECT_GE(r.start_time, prev_end + 1.0 - 1e-9);
    }
    prev_end = r.end_time;
  }
}

TEST(StageGraph, DeterministicOnSimBackendAcrossRuns) {
  auto run_once = [] {
    rct::SimBackend backend(hpc::test_machine(2));
    rct::AppManager mgr(backend, {.stage_transition_overhead = 0.5});
    rct::StageGraph g;
    const auto a = g.add(node_of("a", {sim_task("a", 2)}));
    const auto b = g.add(node_of("b", {sim_task("b", 3)}), {a});
    const auto c = g.add(node_of("c", {sim_task("c", 5)}), {a});
    g.add(node_of("d", {sim_task("d", 1)}), {b, c});
    const auto results = mgr.run_graph(std::move(g));
    std::vector<std::pair<std::string, double>> out;
    for (const auto& r : results) out.emplace_back(r.name, r.end_time);
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(StageGraph, PriorityOrderLaunchesCriticalBranchFirst) {
  // Diamond a -> {b, c} -> d on a one-node machine where each branch takes
  // the whole GPU set: b and c become ready in the same instant, and the
  // drain order decides who runs first. Under kFifo insertion order wins;
  // under kPriority the higher-priority branch preempts it.
  auto run_mode = [](rct::AppManagerOptions::ReadyOrder order) {
    rct::SimBackend backend(hpc::test_machine(1));
    rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0,
                                  .ready_order = order});
    rct::StageGraph g;
    const auto a = g.add(node_of("a", {sim_task("a", 1)}));
    const auto b = g.add(node_of("b", {sim_task("b", 4, /*gpus=*/6)}), {a});
    const auto c = g.add(node_of("c", {sim_task("c", 2, /*gpus=*/6)}), {a});
    g.add(node_of("d", {sim_task("d", 1)}), {b, c});
    g.set_priority(b, 1.0);
    g.set_priority(c, 5.0);
    EXPECT_EQ(g.priority(b), 1.0);
    double b_start = 0, c_start = 0;
    const auto report = mgr.run_graph(std::move(g));
    for (const auto& r : report) {
      if (r.name == "b") b_start = r.start_time;
      if (r.name == "c") c_start = r.start_time;
    }
    return std::make_pair(b_start, c_start);
  };

  const auto [fifo_b, fifo_c] = run_mode(rct::AppManagerOptions::ReadyOrder::kFifo);
  EXPECT_LT(fifo_b, fifo_c);  // historical order: b was inserted first
  const auto [prio_b, prio_c] =
      run_mode(rct::AppManagerOptions::ReadyOrder::kPriority);
  EXPECT_LT(prio_c, prio_b);  // priority inverts the same-instant wave
}

TEST(StageGraph, AllZeroPrioritiesDegenerateToFifo) {
  // kPriority with default (zero) node priorities must reproduce kFifo
  // timings exactly — the stable sort keeps arrival order within a level.
  auto run_mode = [](rct::AppManagerOptions::ReadyOrder order) {
    rct::SimBackend backend(hpc::test_machine(1));
    rct::AppManager mgr(backend, {.stage_transition_overhead = 0.5,
                                  .ready_order = order});
    rct::StageGraph g;
    const auto a = g.add(node_of("a", {sim_task("a", 2)}));
    const auto b = g.add(node_of("b", {sim_task("b", 3, 6)}), {a});
    const auto c = g.add(node_of("c", {sim_task("c", 5, 6)}), {a});
    g.add(node_of("d", {sim_task("d", 1)}), {b, c});
    std::vector<std::pair<std::string, double>> out;
    const auto report = mgr.run_graph(std::move(g));
    for (const auto& r : report) out.emplace_back(r.name, r.end_time);
    return out;
  };
  EXPECT_EQ(run_mode(rct::AppManagerOptions::ReadyOrder::kFifo),
            run_mode(rct::AppManagerOptions::ReadyOrder::kPriority));
}
