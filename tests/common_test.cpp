// Tests for impeccable::common — RNG determinism and distributions,
// descriptive statistics, thread pool semantics, Kabsch superposition.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <set>
#include <vector>

#include "impeccable/common/kabsch.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/common/vec3.hpp"

namespace ic = impeccable::common;

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameStream) {
  ic::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  ic::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  ic::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsUnbiasedAcrossSmallRange) {
  ic::Rng rng(123);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) {
    EXPECT_GT(c, n / 7 - 700);
    EXPECT_LT(c, n / 7 + 700);
  }
}

TEST(Rng, GaussMomentsMatchStandardNormal) {
  ic::Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.gauss());
  EXPECT_NEAR(ic::mean(xs), 0.0, 0.02);
  EXPECT_NEAR(ic::stddev(xs), 1.0, 0.02);
}

TEST(Rng, SpawnGivesIndependentStream) {
  ic::Rng parent(5);
  ic::Rng child = parent.spawn();
  // Child and a fresh same-seed parent must not replicate each other.
  ic::Rng parent2(5);
  parent2.spawn();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (child.next() == parent2.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  ic::Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanVarianceKnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(ic::mean(xs), 5.0);
  EXPECT_NEAR(ic::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, EmptyAndSingletonAreSafe) {
  const std::vector<double> none;
  const std::vector<double> one{3.0};
  EXPECT_EQ(ic::mean(none), 0.0);
  EXPECT_EQ(ic::variance(one), 0.0);
  EXPECT_EQ(ic::std_error(one), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ic::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(ic::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(ic::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(ic::percentile(xs, 25), 2.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(ic::pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(ic::pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_EQ(ic::pearson(a, b), 0.0);
}

TEST(Stats, SpearmanIsRankBased) {
  // Monotone but non-linear relation: Spearman 1, Pearson < 1.
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{1, 8, 27, 64, 125};
  EXPECT_NEAR(ic::spearman(a, b), 1.0, 1e-12);
  EXPECT_LT(ic::pearson(a, b), 1.0);
}

TEST(Stats, RanksAverageTies) {
  const std::vector<double> xs{10, 20, 20, 30};
  const auto r = ic::ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, BootstrapTracksAnalyticStdError) {
  ic::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gauss(10.0, 2.0));
  const double analytic = ic::std_error(xs);
  const double boot = ic::bootstrap_std_error(xs, 500, 17);
  EXPECT_NEAR(boot, analytic, analytic * 0.25);
}

TEST(Stats, BootstrapCiCoversMean) {
  ic::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.gauss(-5.0, 1.0));
  const auto ci = ic::bootstrap_ci95(xs, 400, 21);
  EXPECT_LT(ci.lo, -5.0 + 0.5);
  EXPECT_GT(ci.hi, -5.0 - 0.5);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(Stats, HistogramClampsOutliersAndCountsAll) {
  ic::Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Stats, HistogramBinCenters) {
  ic::Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Stats, HistogramRejectsBadArguments) {
  EXPECT_THROW(ic::Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(ic::Histogram(5.0, 5.0, 3), std::invalid_argument);
}

TEST(Stats, RunningStatsMatchesBatch) {
  ic::Rng rng(8);
  std::vector<double> xs;
  ic::RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gauss(3.0, 4.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), ic::mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), ic::variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), ic::min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), ic::max_of(xs));
}

// ---------------------------------------------------------------- Vec3

TEST(Vec3, BasicAlgebra) {
  const ic::Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, ic::Vec3(5, 7, 9));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), ic::Vec3(-3, 6, -3));
  EXPECT_DOUBLE_EQ(ic::Vec3(3, 4, 0).norm(), 5.0);
}

TEST(Vec3, RotateAboutAxisQuarterTurn) {
  const ic::Vec3 v{1, 0, 0};
  const ic::Vec3 r = ic::rotate_about_axis(v, {0, 0, 1}, std::numbers::pi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Vec3, NormalizedZeroVectorIsUnitX) {
  EXPECT_EQ(ic::Vec3{}.normalized(), ic::Vec3(1, 0, 0));
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ExecutesAllSubmittedJobs) {
  ic::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ic::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ic::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrains) {
  ic::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ic::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ic::parallel_for(pool, 0, 257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ic::ThreadPool pool(2);
  ic::parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}

// ---------------------------------------------------------------- Kabsch

TEST(Kabsch, IdenticalSetsHaveZeroRmsd) {
  const std::vector<ic::Vec3> pts{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  EXPECT_NEAR(ic::rmsd_superposed(pts, pts), 0.0, 1e-10);
}

TEST(Kabsch, RecoverRigidTransform) {
  ic::Rng rng(13);
  std::vector<ic::Vec3> a;
  for (int i = 0; i < 20; ++i)
    a.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)});
  // Rotate + translate to build b; superposition must recover RMSD ~ 0.
  const ic::Vec3 axis = ic::Vec3{1, 2, 3}.normalized();
  std::vector<ic::Vec3> b;
  for (const auto& p : a)
    b.push_back(ic::rotate_about_axis(p, axis, 1.1) + ic::Vec3{10, -3, 2});
  EXPECT_NEAR(ic::rmsd_superposed(a, b), 0.0, 1e-8);
  // Raw RMSD must be large by comparison.
  EXPECT_GT(ic::rmsd_raw(a, b), 1.0);
}

TEST(Kabsch, ApplyMapsBOntoA) {
  ic::Rng rng(29);
  std::vector<ic::Vec3> a;
  for (int i = 0; i < 12; ++i)
    a.push_back({rng.gauss(), rng.gauss(), rng.gauss()});
  std::vector<ic::Vec3> b;
  const ic::Vec3 axis = ic::Vec3{-1, 0.5, 2}.normalized();
  for (const auto& p : a)
    b.push_back(ic::rotate_about_axis(p, axis, -0.7) + ic::Vec3{1, 2, 3});
  const auto sup = ic::superpose(a, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(ic::distance(ic::apply(sup, b[i]), a[i]), 0.0, 1e-8);
}

TEST(Kabsch, NoisyTransformRmsdMatchesNoise) {
  ic::Rng rng(31);
  std::vector<ic::Vec3> a, b;
  const double sigma = 0.1;
  for (int i = 0; i < 500; ++i) {
    const ic::Vec3 p{rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
    a.push_back(p);
    b.push_back(p + ic::Vec3{rng.gauss(0, sigma), rng.gauss(0, sigma),
                             rng.gauss(0, sigma)});
  }
  const double r = ic::rmsd_superposed(a, b);
  // Expect roughly sqrt(3)*sigma.
  EXPECT_NEAR(r, std::sqrt(3.0) * sigma, 0.05);
}

TEST(Kabsch, MismatchedSizesThrow) {
  const std::vector<ic::Vec3> a{{0, 0, 0}};
  const std::vector<ic::Vec3> b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_THROW(ic::rmsd_superposed(a, b), std::invalid_argument);
  EXPECT_THROW((void)ic::rmsd_raw(a, b), std::invalid_argument);
}
