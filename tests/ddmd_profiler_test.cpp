// Tests for the DeepDriveMD adaptive-sampling driver and the RP-style
// execution profiler.

#include <gtest/gtest.h>

#include "impeccable/core/deepdrivemd.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/profiler.hpp"

namespace core = impeccable::core;
namespace md = impeccable::md;
namespace rct = impeccable::rct;
namespace hpc = impeccable::hpc;

namespace {

md::System ddmd_system() {
  md::ProteinOptions popts;
  popts.residues = 30;
  return md::build_protein(21, popts);
}

core::DeepDriveMdOptions fast_opts() {
  core::DeepDriveMdOptions o;
  o.rounds = 3;
  o.simulations_per_round = 3;
  o.simulation.equilibration_steps = 20;
  o.simulation.production_steps = 120;
  o.simulation.report_interval = 30;
  o.aae.epochs = 3;
  o.aae.batch_size = 8;
  return o;
}

}  // namespace

// ---------------------------------------------------------------- DeepDriveMD

TEST(DeepDriveMd, RunsAllRoundsAndCollectsFrames) {
  const auto sys = ddmd_system();
  const auto res = core::run_deepdrivemd(sys, fast_opts());
  ASSERT_EQ(res.rounds.size(), 3u);
  for (const auto& r : res.rounds) {
    EXPECT_EQ(r.frames_collected, 3u * 4u);  // 3 sims x 4 frames
    EXPECT_GT(r.aae_reconstruction, 0.0f);
  }
  EXPECT_EQ(res.conformations.size(), 3u * 3u * 4u);
  EXPECT_EQ(res.conformation_round.size(), res.conformations.size());
  EXPECT_GT(res.md_steps, 0u);
}

TEST(DeepDriveMd, CoverageGrowsAcrossRounds) {
  const auto sys = ddmd_system();
  const auto res = core::run_deepdrivemd(sys, fast_opts());
  // Coverage (mean pairwise RMSD over everything seen) must not shrink.
  EXPECT_GE(res.rounds.back().coverage, res.rounds.front().coverage * 0.9);
  EXPECT_GT(res.rounds.back().coverage, 0.0);
}

TEST(DeepDriveMd, AdaptiveCoversAtLeastAsMuchAsPlain) {
  const auto sys = ddmd_system();
  auto opts = fast_opts();
  opts.rounds = 3;
  const auto adaptive = core::run_deepdrivemd(sys, opts, /*adaptive=*/true);
  const auto plain = core::run_deepdrivemd(sys, opts, /*adaptive=*/false);
  // Restarting from latent outliers must not reduce the explored volume
  // (the paper claims large acceleration; at test scale we assert the
  // weaker, stable property).
  EXPECT_GE(adaptive.rounds.back().coverage,
            plain.rounds.back().coverage * 0.8);
}

TEST(DeepDriveMd, DeterministicPerSeed) {
  const auto sys = ddmd_system();
  const auto a = core::run_deepdrivemd(sys, fast_opts());
  const auto b = core::run_deepdrivemd(sys, fast_opts());
  ASSERT_EQ(a.conformations.size(), b.conformations.size());
  EXPECT_DOUBLE_EQ(a.rounds.back().coverage, b.rounds.back().coverage);
}

TEST(DeepDriveMd, CoverageHelperDegenerateInputs) {
  const auto sys = ddmd_system();
  EXPECT_EQ(core::conformational_coverage(sys, {}, 1), 0.0);
  EXPECT_EQ(core::conformational_coverage(sys, {sys.positions}, 1), 0.0);
}

// ---------------------------------------------------------------- profiler

TEST(Profiler, RecordsSubmitStartEnd) {
  rct::SimBackend inner(hpc::test_machine(1));
  rct::ProfiledBackend backend(inner);

  for (int i = 0; i < 8; ++i) {  // 8 tasks on 6 GPUs -> 2 must queue
    rct::TaskDescription t;
    t.name = "t" + std::to_string(i);
    t.gpus = 1;
    t.duration = 5.0;
    backend.submit(t, [](const rct::TaskResult&) {});
  }
  backend.drain();

  const auto prof = backend.profile();
  ASSERT_EQ(prof.tasks.size(), 8u);
  for (const auto& r : prof.tasks) {
    EXPECT_GE(r.start_time, r.submit_time);
    EXPECT_GT(r.end_time, r.start_time);
    EXPECT_TRUE(r.ok);
  }
  // Two tasks waited for a slot.
  int waited = 0;
  for (const auto& r : prof.tasks)
    if (r.queue_wait() > 1.0) ++waited;
  EXPECT_EQ(waited, 2);
  EXPECT_EQ(prof.peak_concurrency(), 6);
  EXPECT_NEAR(prof.makespan(), 10.1, 0.2);
}

TEST(Profiler, ConcurrencyTimelineAndIdleFraction) {
  rct::SimBackend inner(hpc::test_machine(2));
  rct::ProfiledBackend backend(inner);
  rct::AppManager mgr(backend, {.stage_transition_overhead = 10.0});

  rct::Pipeline p("two-stage");
  rct::TaskDescription a;
  a.name = "a";
  a.gpus = 1;
  a.duration = 10.0;
  rct::TaskDescription b = a;
  b.name = "b";
  p.add_stage({"s1", {a}, nullptr});
  p.add_stage({"s2", {b}, nullptr});
  mgr.run({std::move(p)});

  const auto prof = backend.profile();
  ASSERT_EQ(prof.tasks.size(), 2u);
  // The 10 s stage gap shows up as idle time.
  EXPECT_GT(prof.idle_fraction(), 0.2);
  const auto timeline = prof.concurrency_timeline(30);
  EXPECT_EQ(timeline.size(), 30u);
  const int peak = *std::max_element(timeline.begin(), timeline.end());
  EXPECT_EQ(peak, 1);
  // Some middle bucket must be empty (the transition).
  EXPECT_TRUE(std::find(timeline.begin() + 5, timeline.end() - 5, 0) !=
              timeline.end() - 5);
}

TEST(Profiler, WorksOnLocalBackend) {
  rct::LocalBackend inner(2);
  rct::ProfiledBackend backend(inner);
  rct::TaskDescription t;
  t.name = "work";
  t.payload = [] {
    volatile double acc = 0;
    for (int i = 0; i < 100000; ++i) acc = acc + i;
  };
  backend.submit(t, [](const rct::TaskResult&) {});
  backend.drain();
  const auto prof = backend.profile();
  ASSERT_EQ(prof.tasks.size(), 1u);
  EXPECT_GE(prof.tasks[0].runtime(), 0.0);
  EXPECT_GE(prof.mean_queue_wait(), 0.0);
}

TEST(Profiler, EmptyProfileIsSafe) {
  rct::SimBackend inner(hpc::test_machine(1));
  rct::ProfiledBackend backend(inner);
  const auto prof = backend.profile();
  EXPECT_EQ(prof.makespan(), 0.0);
  EXPECT_EQ(prof.peak_concurrency(), 0);
  EXPECT_EQ(prof.idle_fraction(), 0.0);
  EXPECT_TRUE(prof.concurrency_timeline(5) ==
              std::vector<int>({0, 0, 0, 0, 0}));
}
