// Execution engine v2 tests: work-stealing pool semantics (nesting, stealing,
// exceptions, lifecycle) and the end-to-end determinism contract — dock() and
// NN training must produce identical results at pool sizes 1 and 8.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/ml/gemm.hpp"
#include "impeccable/ml/layers.hpp"
#include "impeccable/ml/optim.hpp"

namespace ic = impeccable::common;
namespace ml = impeccable::ml;
namespace dock = impeccable::dock;
namespace chem = impeccable::chem;

// ---------------------------------------------------------------- pool

TEST(ExecEngine, NestedParallelForCompletes) {
  ic::ThreadPool pool(4);
  const std::size_t outer = 8, inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.parallel_for(0, outer, [&](std::size_t i) {
    // Nested parallel_for from inside a pool task: the calling task drains
    // the inner dispenser itself, so this cannot deadlock even with every
    // worker blocked in an outer iteration.
    pool.parallel_for(0, inner, [&](std::size_t j) {
      hits[i * inner + j].fetch_add(1);
    }, 4);
  }, 1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecEngine, ParallelForPropagatesLowestIndexException) {
  ic::ThreadPool pool(8);
  // Several iterations throw; the contract is that the exception from the
  // lowest failing index wins, every time, whatever the stealing order.
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int> executed{0};
    try {
      pool.parallel_for(0, 200, [&](std::size_t i) {
        executed.fetch_add(1);
        if (i >= 57 && i % 13 == 5) // fails at 57, 70, 83, ...
          throw std::runtime_error("fail@" + std::to_string(i));
      }, 4);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@57");
    }
    // No cross-chunk cancellation: every chunk runs up to (and including) its
    // first failing iteration, deterministically. With grain 4 the failing
    // indices 57, 70, ..., 187 abandon 15 trailing in-chunk iterations.
    EXPECT_EQ(executed.load(), 185);
  }
}

TEST(ExecEngine, SubmitAfterShutdownThrows) {
  ic::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ExecEngine, SubmittedTaskExceptionsReachTheFuture) {
  ic::ThreadPool pool(4);
  // Flood the pool so some of these tasks get stolen off other workers'
  // deques; the exception must still travel through the matching future.
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([i]() -> int {
      if (i % 7 == 3) throw std::invalid_argument("bad " + std::to_string(i));
      return i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    if (i % 7 == 3) {
      EXPECT_THROW(futs[static_cast<std::size_t>(i)].get(), std::invalid_argument);
    } else {
      EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i);
    }
  }
}

TEST(ExecEngine, WaitIdleUnderConcurrentSubmitters) {
  ic::ThreadPool pool(4);
  std::atomic<int> done{0};
  const int submitters = 4, jobs_each = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&] {
      for (int j = 0; j < jobs_each; ++j)
        pool.submit([&] { done.fetch_add(1); });
    });
  }
  for (auto& t : threads) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), submitters * jobs_each);
}

TEST(ExecEngine, ParallelForHonoursGrainChunks) {
  ic::ThreadPool pool(4);
  const std::size_t n = 103, grain = 8;
  std::vector<std::thread::id> owner(n);
  pool.parallel_for(0, n, [&](std::size_t i) {
    owner[i] = std::this_thread::get_id();
  }, grain);
  // A grain-sized chunk is handed out as one unit: every index inside a
  // chunk must have run on the same thread.
  for (std::size_t c = 0; c < n; c += grain) {
    const std::size_t hi = std::min(n, c + grain);
    for (std::size_t i = c + 1; i < hi; ++i) EXPECT_EQ(owner[i], owner[c]);
  }
}

TEST(ExecEngine, ParallelForCoversRangeForManyGrains) {
  ic::ThreadPool pool(3);
  for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(0, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1);
    }, grain);
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

// ---------------------------------------------------------------- dock

TEST(ExecEngine, DockIsIdenticalAtPoolSizes1And8) {
  const auto receptor = dock::Receptor::synthesize("T1", 20);
  dock::GridOptions gopts;
  gopts.nodes = 25;
  const auto grid = dock::compute_grid(receptor, gopts);
  const auto mol = chem::parse_smiles("CCOc1ccccc1");

  dock::DockOptions opts;
  opts.runs = 6;
  opts.lga.population = 20;
  opts.lga.generations = 8;

  const auto serial = dock::dock(*grid, mol, "L1", opts);

  ic::ThreadPool pool(8);
  opts.pool = &pool;
  const auto parallel = dock::dock(*grid, mol, "L1", opts);

  EXPECT_EQ(serial.best_score, parallel.best_score);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.best_pose.translation.x, parallel.best_pose.translation.x);
  EXPECT_EQ(serial.best_pose.translation.y, parallel.best_pose.translation.y);
  EXPECT_EQ(serial.best_pose.translation.z, parallel.best_pose.translation.z);
  ASSERT_EQ(serial.clusters.size(), parallel.clusters.size());
  for (std::size_t c = 0; c < serial.clusters.size(); ++c) {
    EXPECT_EQ(serial.clusters[c].best_energy, parallel.clusters[c].best_energy);
    EXPECT_EQ(serial.clusters[c].members, parallel.clusters[c].members);
  }
  ASSERT_EQ(serial.best_coords.size(), parallel.best_coords.size());
  for (std::size_t a = 0; a < serial.best_coords.size(); ++a) {
    EXPECT_EQ(serial.best_coords[a].x, parallel.best_coords[a].x);
    EXPECT_EQ(serial.best_coords[a].y, parallel.best_coords[a].y);
    EXPECT_EQ(serial.best_coords[a].z, parallel.best_coords[a].z);
  }
}

// ---------------------------------------------------------------- training

namespace {

/// Train a small conv+dense net for a few SGD steps and return every
/// parameter value, using whatever compute pool is installed.
std::vector<float> train_small_net() {
  ic::Rng rng(77);
  ml::Sequential net;
  net.add(std::make_unique<ml::Conv3x3>(2, 4, rng));
  net.add(std::make_unique<ml::ReLU>());
  net.add(std::make_unique<ml::Flatten>());
  net.add(std::make_unique<ml::Dense>(4 * 6 * 6, 8, rng));
  net.add(std::make_unique<ml::ReLU>());
  net.add(std::make_unique<ml::Dense>(8, 1, rng));

  const ml::Tensor x = ml::Tensor::randn({4, 2, 6, 6}, rng, 1.0f);
  ml::Tensor target({4, 1});
  for (int i = 0; i < 4; ++i) target.at(i, 0) = static_cast<float>(i % 2);

  ml::Sgd sgd(net.params(), 0.05f);
  for (int step = 0; step < 5; ++step) {
    const ml::Tensor y = net.forward(x);
    ml::Tensor g(y.shape());
    for (std::size_t i = 0; i < y.size(); ++i)
      g[i] = 2.0f * (y[i] - target[i]) / static_cast<float>(y.size());
    net.backward(g);
    sgd.step();
  }

  std::vector<float> flat;
  for (const auto& p : net.params())
    flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
  return flat;
}

}  // namespace

TEST(ExecEngine, TrainingIsBitwiseIdenticalAcrossComputePoolSizes) {
  ml::set_compute_pool(nullptr);
  const auto serial = train_small_net();

  ic::ThreadPool pool(8);
  ml::set_compute_pool(&pool);
  const auto parallel = train_small_net();
  ml::set_compute_pool(nullptr);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Bitwise, not approximate: the GEMM accumulation order is fixed.
    EXPECT_EQ(std::memcmp(&serial[i], &parallel[i], sizeof(float)), 0)
        << "param " << i << ": " << serial[i] << " vs " << parallel[i];
  }
}
