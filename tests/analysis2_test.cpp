// Tests for the analysis additions: equilibration detection and the
// within-replica ESMACS error channel.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/md/system.hpp"

namespace md = impeccable::md;
namespace fe = impeccable::fe;
namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
using impeccable::common::Rng;

TEST(Equilibration, SkipsInitialTransient) {
  // Exponential relaxation to a plateau plus noise: the detected production
  // start must skip a solid part of the transient.
  Rng rng(2);
  std::vector<double> series;
  for (int t = 0; t < 512; ++t)
    series.push_back(10.0 * std::exp(-t / 40.0) + rng.gauss(0, 0.3));
  const std::size_t t0 = md::detect_equilibration(series);
  EXPECT_GE(t0, 32u);   // most of the decay (3 time constants ~ 120) skipped
  EXPECT_LT(t0, 256u);  // but not the whole series
}

TEST(Equilibration, StationarySeriesKeepsMostData) {
  Rng rng(3);
  std::vector<double> series;
  for (int t = 0; t < 512; ++t) series.push_back(rng.gauss(0, 1));
  const std::size_t t0 = md::detect_equilibration(series);
  EXPECT_LT(t0, 128u);  // little reason to discard i.i.d. data
}

TEST(Equilibration, ShortSeriesAreSafe) {
  EXPECT_EQ(md::detect_equilibration({}), 0u);
  EXPECT_EQ(md::detect_equilibration({1, 2, 3}), 0u);
}

TEST(EsmacsErrors, WithinReplicaErrorIsReported) {
  const auto receptor = dock::Receptor::synthesize("E", 71);
  dock::GridOptions gopts;
  gopts.nodes = 21;
  const auto grid = dock::compute_grid(receptor, gopts);
  const auto mol = chem::parse_smiles("CCOc1ccccc1");
  dock::DockOptions dopts;
  dopts.runs = 1;
  dopts.lga.population = 16;
  dopts.lga.generations = 6;
  const auto pose = dock::dock(*grid, mol, "L", dopts);
  md::ProteinOptions popts;
  popts.residues = 40;
  const auto protein = md::build_protein(71, popts);
  const auto lpc = md::build_lpc(protein, mol, pose.best_coords);

  fe::EsmacsConfig cfg = fe::cg_config(0.5);
  cfg.replicas = 3;
  const auto res = fe::run_esmacs(
      lpc, chem::compute_descriptors(mol).rotatable_bonds, cfg, 5);
  EXPECT_GT(res.within_replica_error, 0.0);
  EXPECT_TRUE(std::isfinite(res.within_replica_error));
  // Between-replica and within-replica errors are the same scale here
  // (well-equilibrated small system): both should be O(0.1-10) kcal/mol.
  EXPECT_LT(res.within_replica_error, 50.0);
}
