// Out-of-core ligand library tests: the LigandStore shard format (round
// trip, dedup, corruption resilience), the LigandSource backends (bitwise
// featurization and campaign-fingerprint equality between InMemorySource
// and MmapSource), the external-memory streaming top-k determinism
// contract, and the enrichment-denominator regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "impeccable/chem/ligand_source.hpp"
#include "impeccable/chem/store.hpp"
#include "impeccable/core/campaign.hpp"
#include "impeccable/core/checkpoint.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/ml/streaming.hpp"

namespace chem = impeccable::chem;
namespace core = impeccable::core;
namespace fe = impeccable::fe;
namespace ml = impeccable::ml;

namespace {

std::filesystem::path tmp_dir(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

/// A slim two-iteration campaign config (mirrors core_test's tiny_config).
core::CampaignConfig slim_config() {
  core::CampaignConfig cfg;
  cfg.library_size = 60;
  cfg.iterations = 2;
  cfg.bootstrap_docks = 12;
  cfg.dock_top_fraction = 0.2;
  cfg.cg_compounds = 3;
  cfg.top_binders = 2;
  cfg.outliers_per_binder = 2;
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 16;
  cfg.dock.lga.generations = 6;
  cfg.esmacs_cg = fe::cg_config(0.3);
  cfg.esmacs_cg.replicas = 3;
  cfg.esmacs_fg = fe::fg_config(0.1);
  cfg.esmacs_fg.replicas = 4;
  cfg.surrogate.epochs = 3;
  cfg.aae.epochs = 3;
  cfg.seed = 23;
  cfg.featurize_window = 17;  // deliberately not a divisor of 60
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Store format

TEST(LigandStore, WriterReaderRoundTrip) {
  const auto dir = tmp_dir("imp_store_roundtrip");
  std::filesystem::remove_all(dir);
  {
    chem::StoreWriterOptions opts;
    opts.records_per_shard = 7;  // force multiple shards
    chem::LigandStoreWriter w(dir.string(), opts);
    for (int i = 0; i < 20; ++i)
      w.append("LIG-" + std::to_string(i), "C" + std::string(i % 5 + 1, 'C'));
    w.finish();
    EXPECT_EQ(w.stats().records, 20u);
  }
  auto store = chem::LigandStore::open(dir.string());
  ASSERT_EQ(store.size(), 20u);
  EXPECT_EQ(store.stats().shards_ok, 3u);  // 7 + 7 + 6
  EXPECT_EQ(store.stats().shards_skipped, 0u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(store.id(i), "LIG-" + std::to_string(i));
    EXPECT_EQ(store.smiles(i), "C" + std::string(i % 5 + 1, 'C'));
  }
  // (shard, offset) addressing round-trips through locate/index_of.
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(store.index_of(store.locate(i)), i);
  EXPECT_EQ(store.index_of({99, 0}), store.size());  // unknown shard
  std::filesystem::remove_all(dir);
}

TEST(LigandStore, EmptyDirectoryYieldsEmptyStore) {
  const auto dir = tmp_dir("imp_store_empty");
  std::filesystem::remove_all(dir);
  auto store = chem::LigandStore::open(dir.string());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.stats().shards_ok, 0u);
}

TEST(LigandStore, WriterDedupDropsDuplicateDigests) {
  const auto dir = tmp_dir("imp_store_dedup");
  std::filesystem::remove_all(dir);
  chem::StoreWriterOptions opts;
  opts.dedup = true;
  chem::LigandStoreWriter w(dir.string(), opts);
  EXPECT_TRUE(w.append("A", "CCO"));
  EXPECT_TRUE(w.append("B", "CCCN"));
  EXPECT_FALSE(w.append("C", "CCO"));  // same canonical digest
  EXPECT_TRUE(w.append("D", "CCCCO"));
  w.finish();
  EXPECT_EQ(w.stats().records, 3u);
  EXPECT_EQ(w.stats().duplicates_dropped, 1u);
  auto store = chem::LigandStore::open(dir.string());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.id(2), "D");
  std::filesystem::remove_all(dir);
}

// Corruption resilience: damaged shards are skipped and counted (the
// ml/shards semantics), never fatal, and intact shards keep serving.
TEST(LigandStore, CorruptShardsAreSkippedAndCounted) {
  const auto dir = tmp_dir("imp_store_corrupt");
  std::filesystem::remove_all(dir);
  {
    chem::StoreWriterOptions opts;
    opts.records_per_shard = 5;
    chem::LigandStoreWriter w(dir.string(), opts);
    for (int i = 0; i < 20; ++i)
      w.append("LIG-" + std::to_string(i), "CCCC");
    w.finish();
  }

  // Truncated shard: chop the last shard mid-index.
  {
    const auto path = dir / "shard-00003.imls";
    const auto bytes = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, bytes - 9);
  }
  // Torn header: shard shorter than the fixed header.
  {
    std::ofstream f(dir / "shard-00001.imls",
                    std::ios::binary | std::ios::trunc);
    f << "torn";
  }
  // Bad checksum: flip one payload byte of an otherwise intact shard.
  {
    std::fstream f(dir / "shard-00002.imls",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(70);
    f.put('\xff');
  }

  auto store = chem::LigandStore::open(dir.string());
  EXPECT_EQ(store.stats().shards_ok, 1u);
  EXPECT_EQ(store.stats().shards_skipped, 3u);
  ASSERT_EQ(store.size(), 5u);  // shard 0 survived
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(store.id(i), "LIG-" + std::to_string(i));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Sources

TEST(LigandSource, MmapMatchesInMemoryBitwise) {
  const auto dir = tmp_dir("imp_source_equal");
  std::filesystem::remove_all(dir);
  const std::size_t n = 40;
  chem::SourceOptions sopts;
  sopts.protonate_ph = 7.4;  // exercise the prep step in both backends

  chem::spill_generated_library("EQL", n, 77, dir.string());
  const chem::MmapSource lazy(chem::LigandStore::open(dir.string()), sopts);
  const chem::InMemorySource eager(chem::generate_library("EQL", n, 77),
                                   sopts);

  ASSERT_EQ(lazy.size(), n);
  ASSERT_EQ(eager.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(lazy.id(i), eager.id(i));
    EXPECT_EQ(lazy.smiles(i), eager.smiles(i));
    const chem::Image a = lazy.image(i);
    const chem::Image b = eager.image(i);
    ASSERT_EQ(a.data.size(), b.data.size());
    // Bitwise: the identical featurization pipeline must produce identical
    // floats, not merely close ones.
    EXPECT_TRUE(std::equal(a.data.begin(), a.data.end(), b.data.begin()))
        << "depiction diverged at ligand " << i;
  }
  // Window + release path serves the same bytes as per-ligand access.
  std::vector<chem::Image> window;
  lazy.images(10, 25, window);
  lazy.release(10, 25);
  ASSERT_EQ(window.size(), 15u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const chem::Image b = eager.image(10 + i);
    EXPECT_TRUE(std::equal(window[i].data.begin(), window[i].data.end(),
                           b.data.begin()));
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Streaming selection

TEST(StreamingTopK, MatchesFullSortWithDeterministicTies) {
  impeccable::common::Rng rng(404);
  std::vector<float> scores(5000);
  // Coarse quantization forces plenty of exact ties.
  for (auto& s : scores)
    s = static_cast<float>(rng.index(32)) / 32.0f;

  std::vector<ml::TopCandidate> all(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    all[i] = {scores[i], i};
  std::sort(all.begin(), all.end(), ml::candidate_better);

  const std::size_t k = 137;
  ml::StreamingTopK topk(k);
  for (std::size_t i = 0; i < scores.size(); ++i) topk.offer(scores[i], i);
  const auto got = topk.take_sorted();
  ASSERT_EQ(got.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(got[i].index, all[i].index);
    EXPECT_EQ(got[i].score, all[i].score);
  }

  // Partitioned accumulation + merge gives the exact same selection, no
  // matter how the stream was split.
  std::vector<std::vector<ml::TopCandidate>> parts;
  for (std::size_t lo = 0; lo < scores.size(); lo += 911) {
    ml::StreamingTopK part(k);
    for (std::size_t i = lo; i < std::min(scores.size(), lo + 911); ++i)
      part.offer(scores[i], i);
    parts.push_back(part.take_sorted());
  }
  const auto merged = ml::StreamingTopK::merge_sorted(std::move(parts), k);
  ASSERT_EQ(merged.size(), k);
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(merged[i].index, got[i].index);
}

TEST(ScoreSpill, FileBackedMatchesInMemory) {
  const auto path = tmp_dir("imp_spill_test.f32");
  std::filesystem::remove_all(path);
  const std::size_t n = 1000;
  auto mem = ml::ScoreSpill::in_memory(n);
  auto file = ml::ScoreSpill::file_backed(n, path.string());
  EXPECT_TRUE(file.file_backed_storage());

  impeccable::common::Rng rng(7);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform());
  // Windowed writes covering the range out of order.
  mem.write(500, v.data() + 500, 500);
  mem.write(0, v.data(), 500);
  file.write(500, v.data() + 500, 500);
  file.write(0, v.data(), 500);

  for (std::size_t i = 0; i < n; i += 97)
    EXPECT_EQ(mem.at(i), file.at(i));
  std::vector<float> a(n), b(n);
  mem.read(0, a.data(), n);
  file.read(0, b.data(), n);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, v);

  // select_top_k over either backend gives the same exact selection.
  const auto ta = ml::select_top_k(mem, 25, 64);
  const auto tb = ml::select_top_k(file, 25, 64);
  ASSERT_EQ(ta.size(), 25u);
  for (std::size_t i = 0; i < ta.size(); ++i)
    EXPECT_EQ(ta[i].index, tb[i].index);
  // The spill file is owned: destruction unlinks it (checked after scope).
}

TEST(ScoreStreaming, WindowSizeNeverChangesScores) {
  const std::size_t n = 30;
  chem::SourceOptions sopts;
  const chem::InMemorySource source(chem::generate_library("WND", n, 3), sopts);
  ml::SurrogateOptions mopts;
  mopts.epochs = 1;
  const ml::SurrogateModel model(mopts);

  auto spill_a = ml::ScoreSpill::in_memory(n);
  auto spill_b = ml::ScoreSpill::in_memory(n);
  ml::score_ligands(source, model, 0, n, 7, &spill_a);
  ml::score_ligands(source, model, 0, n, n, &spill_b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(spill_a.at(i), spill_b.at(i)) << "window-dependent score " << i;
}

// ---------------------------------------------------------------------------
// Campaign integration

TEST(LibraryBackend, ScienceFingerprintIdenticalAcrossBackends) {
  const auto dir = tmp_dir("imp_backend_fp_store");
  std::filesystem::remove_all(dir);

  auto in_mem_cfg = slim_config();
  auto mmap_cfg = slim_config();
  mmap_cfg.library_backend = core::ExecConfig::LibraryBackend::kMmapStore;
  mmap_cfg.library_store_dir = dir.string();

  core::Campaign a(core::Target::make("3CL-like", 42, 40, 21), in_mem_cfg);
  const auto report_a = a.run();
  core::Campaign b(core::Target::make("3CL-like", 42, 40, 21), mmap_cfg);
  const auto report_b = b.run();

  // The tentpole guarantee: the out-of-core path is a pure execution
  // concern — byte-identical science.
  EXPECT_EQ(report_a.science_fingerprint(), report_b.science_fingerprint());
  std::filesystem::remove_all(dir);
}

TEST(LibraryBackend, EnrichmentDenominatorIsLibrarySizeEveryIteration) {
  // Regression for the fg_esmacs fallback that substituted `docked` for an
  // unstamped library_screened: the denominator of effective ligands per
  // second is the full library on every iteration, warm-up included.
  auto cfg = slim_config();
  cfg.iterations = 2;
  core::Campaign c(core::Target::make("Den", 9, 30, 15), cfg);
  const auto report = c.run();
  ASSERT_EQ(report.iterations.size(), 2u);
  for (const auto& it : report.iterations) {
    EXPECT_EQ(it.library_screened, cfg.library_size);
    EXPECT_GT(it.docked, 0u);
    EXPECT_LT(it.docked, it.library_screened);
  }
}

TEST(LibraryBackend, CheckpointResumeThroughMmapStore) {
  const auto dir = tmp_dir("imp_backend_resume_store");
  const auto ckpt = tmp_dir("imp_backend_resume.csv");
  std::filesystem::remove_all(dir);
  std::filesystem::remove(ckpt);

  auto leg = slim_config();
  leg.iterations = 1;
  leg.library_backend = core::ExecConfig::LibraryBackend::kMmapStore;
  leg.library_store_dir = dir.string();

  core::Campaign first(core::Target::make("RSM", 5, 30, 15), leg);
  const auto rep1 = first.run();
  core::write_checkpoint(rep1, ckpt.string());
  std::size_t docked1 = 0;
  for (const auto& [id, rec] : rep1.compounds)
    if (rec.docked) ++docked1;
  ASSERT_GT(docked1, 0u);

  // Same seed -> identical bootstrap picks -> nothing re-docks; the
  // restored records came back through the id->ordinal map built in one
  // store scan.
  auto leg2 = leg;
  leg2.resume_checkpoint = ckpt.string();
  core::Campaign second(core::Target::make("RSM", 5, 30, 15), leg2);
  const auto rep2 = second.run();
  EXPECT_EQ(rep2.iterations[0].docked, 0u);
  std::size_t restored = 0;
  for (const auto& [id, rec] : rep2.compounds)
    if (rec.docked) ++restored;
  EXPECT_EQ(restored, docked1);

  std::filesystem::remove(ckpt);
  std::filesystem::remove_all(dir);
}
