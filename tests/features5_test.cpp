// Tests for the fifth extension wave: protonation rules, AAE serialization,
// campaign profiling, and the profile CSV export.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "impeccable/chem/protonation.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/vec3.hpp"
#include "impeccable/ml/aae.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/profiler.hpp"

namespace chem = impeccable::chem;
namespace ml = impeccable::ml;
namespace rct = impeccable::rct;
namespace hpc = impeccable::hpc;
using impeccable::common::Vec3;

// ---------------------------------------------------------------- protonation

TEST(Protonation, CarboxylDeprotonatesAtPhysiologicalPh) {
  const auto mol = chem::parse_smiles("CC(=O)O");
  const auto prep = chem::protonate_for_ph(mol, 7.4);
  int anions = 0;
  for (int i = 0; i < prep.atom_count(); ++i)
    if (prep.atom(i).formal_charge == -1) ++anions;
  EXPECT_EQ(anions, 1);
  // Below the pKa it stays neutral.
  const auto acid = chem::protonate_for_ph(mol, 2.0);
  for (int i = 0; i < acid.atom_count(); ++i)
    EXPECT_EQ(acid.atom(i).formal_charge, 0);
}

TEST(Protonation, AliphaticAmineProtonates) {
  const auto mol = chem::parse_smiles("CCN");
  const auto prep = chem::protonate_for_ph(mol, 7.4);
  int cations = 0, n_idx = -1;
  for (int i = 0; i < prep.atom_count(); ++i)
    if (prep.atom(i).formal_charge == 1) {
      ++cations;
      n_idx = i;
    }
  ASSERT_EQ(cations, 1);
  EXPECT_EQ(prep.hydrogen_count(n_idx), 3);  // NH2 -> NH3+
  // Above the amine pKa it stays neutral.
  const auto basic = chem::protonate_for_ph(mol, 12.0);
  for (int i = 0; i < basic.atom_count(); ++i)
    EXPECT_EQ(basic.atom(i).formal_charge, 0);
}

TEST(Protonation, AmidesAnilinesAndAromaticsAreUntouched) {
  for (const char* s : {"CC(=O)N", "Nc1ccccc1", "c1ccncc1", "CC#N"}) {
    const auto prep = chem::protonate_for_ph(chem::parse_smiles(s), 7.4);
    for (int i = 0; i < prep.atom_count(); ++i)
      EXPECT_EQ(prep.atom(i).formal_charge, 0) << s;
  }
}

TEST(Protonation, IonizableSiteCensus) {
  // Glycine-like: one acid + one base.
  const auto mol = chem::parse_smiles("NCC(=O)O");
  const auto [acids, bases] = chem::ionizable_sites(mol);
  EXPECT_EQ(acids, 1);
  EXPECT_EQ(bases, 1);
  // Zwitterion after preparation.
  const auto prep = chem::protonate_for_ph(mol, 7.4);
  int net = 0;
  for (int i = 0; i < prep.atom_count(); ++i) net += prep.atom(i).formal_charge;
  EXPECT_EQ(net, 0);
}

TEST(Protonation, PreservesGraphShape) {
  const auto mol = chem::parse_smiles("NCCCC(=O)O");
  const auto prep = chem::protonate_for_ph(mol, 7.4);
  EXPECT_EQ(prep.atom_count(), mol.atom_count());
  EXPECT_EQ(prep.bond_count(), mol.bond_count());
}

// ---------------------------------------------------------------- AAE weights

TEST(AaeWeights, SaveLoadReproducesEmbeddings) {
  std::vector<std::vector<Vec3>> clouds;
  impeccable::common::Rng rng(3);
  for (int c = 0; c < 12; ++c) {
    std::vector<Vec3> cloud;
    for (int p = 0; p < 8; ++p)
      cloud.push_back({rng.gauss(), rng.gauss(), rng.gauss()});
    clouds.push_back(std::move(cloud));
  }
  ml::AaeOptions opts;
  opts.epochs = 2;
  opts.batch_size = 6;
  ml::Aae3d trained(8, opts);
  trained.train(clouds);

  const auto prefix =
      (std::filesystem::temp_directory_path() / "imp_aae").string();
  trained.save_weights(prefix);

  ml::AaeOptions opts2 = opts;
  opts2.seed = 4242;
  ml::Aae3d fresh(8, opts2);
  fresh.load_weights(prefix);
  const auto a = trained.embed(clouds[0]);
  const auto b = fresh.embed(clouds[0]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  for (const char* suffix : {".enc", ".dec", ".critic"})
    std::filesystem::remove(prefix + suffix);
}

// ---------------------------------------------------------------- profile CSV

TEST(ProfileCsv, WritesOneRowPerTask) {
  rct::SimBackend inner(hpc::test_machine(1));
  rct::ProfiledBackend backend(inner);
  for (int i = 0; i < 3; ++i) {
    rct::TaskDescription t;
    t.name = "t" + std::to_string(i);
    t.gpus = 1;
    t.duration = 2.0;
    backend.submit(t, [](const rct::TaskResult&) {});
  }
  backend.drain();

  const auto path = std::filesystem::temp_directory_path() / "imp_profile.csv";
  backend.profile().write_csv(path.string());
  std::ifstream f(path);
  std::string line;
  int rows = 0;
  std::getline(f, line);
  EXPECT_EQ(line,
            "name,submit,start,end,queue_wait,runtime,ok,cpus,gpus,"
            "whole_nodes,error");
  while (std::getline(f, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 3);
  std::filesystem::remove(path);
}
