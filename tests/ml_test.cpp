// ML substrate tests: tensor ops, layer gradients vs finite differences,
// optimizers, losses, the ML1 surrogate, RES, LOF, t-SNE and the 3D-AAE.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/ml/aae.hpp"
#include "impeccable/ml/layers.hpp"
#include "impeccable/ml/lof.hpp"
#include "impeccable/ml/loss.hpp"
#include "impeccable/ml/optim.hpp"
#include "impeccable/ml/res.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "impeccable/ml/tsne.hpp"

namespace ml = impeccable::ml;
namespace chem = impeccable::chem;
using impeccable::common::Rng;
using impeccable::common::Vec3;

namespace {

/// Numerically check dL/dx for a layer with L = sum(w ⊙ y).
void check_input_gradient(ml::Layer& layer, const ml::Tensor& x, double tol) {
  Rng rng(99);
  ml::Tensor y = layer.forward(x);
  ml::Tensor w(y.shape());
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<float>(rng.uniform(-1, 1));

  const ml::Tensor gx = layer.backward(w);

  auto loss_at = [&](const ml::Tensor& xin) {
    const ml::Tensor out = layer.forward(xin);
    double acc = 0;
    for (std::size_t i = 0; i < out.size(); ++i) acc += out[i] * w[i];
    return acc;
  };

  const float h = 1e-3f;
  for (int probe = 0; probe < 12; ++probe) {
    const std::size_t i = rng.index(x.size());
    ml::Tensor x1 = x, x2 = x;
    x1[i] -= h;
    x2[i] += h;
    const double fd = (loss_at(x2) - loss_at(x1)) / (2 * h);
    EXPECT_NEAR(gx[i], fd, tol) << "element " << i;
  }
  // Restore the cache for callers that keep using the layer.
  layer.forward(x);
}

/// Numerically check parameter gradients for the same loss.
void check_param_gradients(ml::Layer& layer, const ml::Tensor& x, double tol) {
  Rng rng(7);
  ml::Tensor y = layer.forward(x);
  ml::Tensor w(y.shape());
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<float>(rng.uniform(-1, 1));
  layer.zero_grad();
  layer.backward(w);

  auto loss_now = [&]() {
    const ml::Tensor out = layer.forward(x);
    double acc = 0;
    for (std::size_t i = 0; i < out.size(); ++i) acc += out[i] * w[i];
    return acc;
  };

  for (auto p : layer.params()) {
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t i = rng.index(p.value->size());
      const float h = 1e-3f;
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + h;
      const double up = loss_now();
      (*p.value)[i] = orig - h;
      const double dn = loss_now();
      (*p.value)[i] = orig;
      EXPECT_NEAR((*p.grad)[i], (up - dn) / (2 * h), tol);
    }
  }
}

ml::Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  ml::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

}  // namespace

// ---------------------------------------------------------------- tensor

TEST(Tensor, ShapesAndAccess) {
  ml::Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_EQ(t.shape_string(), "(2, 3)");
}

TEST(Tensor, ReshapePreservesData) {
  ml::Tensor t({2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  const ml::Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.at(2, 3), 11.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(ml::Tensor({0, 3}), std::invalid_argument);
  EXPECT_THROW(ml::Tensor({2, -1}), std::invalid_argument);
}

// ---------------------------------------------------------------- layers

TEST(Layers, DenseGradients) {
  Rng rng(1);
  ml::Dense dense(5, 4, rng);
  const auto x = random_tensor({3, 5}, 11);
  check_input_gradient(dense, x, 2e-2);
  check_param_gradients(dense, x, 2e-2);
}

TEST(Layers, Conv3x3Gradients) {
  Rng rng(2);
  ml::Conv3x3 conv(2, 3, rng);
  const auto x = random_tensor({2, 2, 5, 5}, 12);
  check_input_gradient(conv, x, 5e-2);
  check_param_gradients(conv, x, 5e-2);
}

TEST(Layers, ReluForwardBackward) {
  ml::ReLU relu;
  ml::Tensor x({1, 4});
  x[0] = -1;
  x[1] = 2;
  x[2] = 0;
  x[3] = 3;
  const auto y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  ml::Tensor g({1, 4});
  g.fill(1.0f);
  const auto gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 1.0f);
}

TEST(Layers, SigmoidRangeAndGradient) {
  ml::Sigmoid sig;
  const auto x = random_tensor({2, 3}, 13);
  const auto y = sig.forward(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
  check_input_gradient(sig, x, 1e-2);
}

TEST(Layers, MaxPoolSelectsMaxAndRoutesGradient) {
  ml::MaxPool2 pool;
  ml::Tensor x({1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 5;
  x.at(0, 0, 1, 0) = 2;
  x.at(0, 0, 1, 1) = 3;
  const auto y = pool.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0], 5.0f);
  ml::Tensor g({1, 1, 1, 1});
  g[0] = 7.0f;
  const auto gx = pool.backward(g);
  EXPECT_EQ(gx.at(0, 0, 0, 1), 7.0f);
  EXPECT_EQ(gx.at(0, 0, 0, 0), 0.0f);
}

TEST(Layers, ResidualBlockGradients) {
  Rng rng(3);
  ml::ResidualBlock block(2, rng);
  const auto x = random_tensor({1, 2, 4, 4}, 14);
  check_input_gradient(block, x, 8e-2);
}

TEST(Layers, FlattenRoundTrips) {
  ml::Flatten flat;
  const auto x = random_tensor({2, 3, 4, 5}, 15);
  const auto y = flat.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 60}));
  const auto back = flat.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(Layers, PointNetEncoderGradients) {
  Rng rng(4);
  ml::PointNetEncoder enc(6, 3, 8, rng);
  const auto x = random_tensor({2, 6, 3}, 16);
  check_input_gradient(enc, x, 5e-2);
}

TEST(Layers, PointNetIsPermutationInvariant) {
  Rng rng(5);
  ml::PointNetEncoder enc(5, 4, 16, rng);
  auto x = random_tensor({1, 5, 3}, 17);
  const auto z1 = enc.forward(x);
  // Swap two points.
  ml::Tensor xp = x;
  for (int d = 0; d < 3; ++d)
    std::swap(xp[static_cast<std::size_t>(0 * 3 + d)],
              xp[static_cast<std::size_t>(3 * 3 + d)]);
  const auto z2 = enc.forward(xp);
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-6);
}

// ---------------------------------------------------------------- losses

TEST(Loss, MseValueAndGradient) {
  ml::Tensor p({1, 2}), t({1, 2});
  p[0] = 1;
  p[1] = 3;
  t[0] = 0;
  t[1] = 5;
  const auto l = ml::mse_loss(p, t);
  EXPECT_NEAR(l.value, (1 + 4) / 2.0, 1e-6);
  EXPECT_NEAR(l.grad[0], 2 * 1 / 2.0, 1e-6);
  EXPECT_NEAR(l.grad[1], 2 * -2 / 2.0, 1e-6);
}

TEST(Loss, BcePenalizesConfidentWrong) {
  ml::Tensor t({1, 1});
  t[0] = 1.0f;
  ml::Tensor good({1, 1}), bad({1, 1});
  good[0] = 0.9f;
  bad[0] = 0.1f;
  EXPECT_LT(ml::bce_loss(good, t).value, ml::bce_loss(bad, t).value);
}

TEST(Loss, ChamferZeroForIdenticalClouds) {
  const auto x = random_tensor({2, 4, 3}, 18);
  const auto l = ml::chamfer_loss(x, x);
  EXPECT_NEAR(l.value, 0.0, 1e-9);
  for (std::size_t i = 0; i < l.grad.size(); ++i) EXPECT_NEAR(l.grad[i], 0.0, 1e-9);
}

TEST(Loss, ChamferGradientMatchesFiniteDifference) {
  auto pred = random_tensor({1, 5, 3}, 19);
  const auto target = random_tensor({1, 5, 3}, 20);
  const auto l = ml::chamfer_loss(pred, target);
  Rng rng(21);
  for (int probe = 0; probe < 8; ++probe) {
    const std::size_t i = rng.index(pred.size());
    const float h = 1e-4f;
    ml::Tensor p1 = pred, p2 = pred;
    p1[i] -= h;
    p2[i] += h;
    const double fd = (ml::chamfer_loss(p2, target).value -
                       ml::chamfer_loss(p1, target).value) / (2 * h);
    EXPECT_NEAR(l.grad[i], fd, 5e-3);
  }
}

// ---------------------------------------------------------------- optimizers

TEST(Optim, AllOptimizersMinimizeQuadratic) {
  // Minimize f(w) = |w - target|^2 with each optimizer via a Dense-free
  // parameter tensor.
  auto run = [](auto make_opt, int iters = 800) {
    ml::Tensor w({4}), g({4});
    ml::Tensor target({4});
    for (int i = 0; i < 4; ++i) target[static_cast<std::size_t>(i)] = 1.0f + i;
    std::vector<ml::Param> params{{&w, &g}};
    auto opt = make_opt(params);
    for (int it = 0; it < iters; ++it) {
      for (std::size_t i = 0; i < 4; ++i) g[i] = 2 * (w[i] - target[i]);
      opt->step();
    }
    double err = 0;
    for (std::size_t i = 0; i < 4; ++i) err += std::abs(w[i] - target[i]);
    return err;
  };
  EXPECT_LT(run([](auto p) { return std::make_unique<ml::Sgd>(p, 0.05f); }), 0.05);
  EXPECT_LT(run([](auto p) { return std::make_unique<ml::Adam>(p, 0.05f); }), 0.05);
  EXPECT_LT(run([](auto p) { return std::make_unique<ml::RmsProp>(p, 0.05f); }), 0.05);
  // ADADELTA accelerates from a tiny initial step (eps-driven); it needs a
  // longer horizon on this toy quadratic.
  EXPECT_LT(run([](auto p) { return std::make_unique<ml::Adadelta>(p); }, 8000), 0.5);
}

TEST(Optim, WeightClippingBounds) {
  ml::Tensor w({3}), g({3});
  w[0] = 5.0f;
  w[1] = -3.0f;
  w[2] = 0.01f;
  std::vector<ml::Param> params{{&w, &g}};
  ml::clip_weights(params, 0.1f);
  EXPECT_FLOAT_EQ(w[0], 0.1f);
  EXPECT_FLOAT_EQ(w[1], -0.1f);
  EXPECT_FLOAT_EQ(w[2], 0.01f);
}

// ---------------------------------------------------------------- surrogate

TEST(Surrogate, ScoreToLabelMapsRange) {
  EXPECT_FLOAT_EQ(ml::score_to_label(-10.0, -10.0, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(ml::score_to_label(0.0, -10.0, 0.0), 0.0f);
  EXPECT_FLOAT_EQ(ml::score_to_label(-5.0, -10.0, 0.0), 0.5f);
  // Degenerate range.
  EXPECT_FLOAT_EQ(ml::score_to_label(-5.0, -5.0, -5.0), 0.5f);
}

TEST(Surrogate, LearnsSeparableImageProperty) {
  // Synthetic task: label = 1 for aromatic-rich molecules, 0 for aliphatic
  // chains. A working CNN must separate these from the depiction alone.
  std::vector<chem::Image> images;
  std::vector<float> labels;
  const char* aromatic[] = {"c1ccccc1", "c1ccncc1", "Cc1ccccc1", "c1ccc2ccccc2c1",
                            "Oc1ccccc1", "Nc1ccccc1", "c1ccsc1", "c1ccoc1"};
  const char* aliphatic[] = {"CCCCCC", "CCCCO", "CCNCC", "CCCCCCCC", "CC(C)CC",
                             "OCCCCO", "CCOCC", "CCCC(C)C"};
  for (int rep = 0; rep < 4; ++rep) {
    for (const char* s : aromatic) {
      chem::DepictionOptions d;
      d.layout_seed = 7 + rep;  // augmentation via layout jitter
      images.push_back(chem::depict(chem::parse_smiles(s), d));
      labels.push_back(1.0f);
    }
    for (const char* s : aliphatic) {
      chem::DepictionOptions d;
      d.layout_seed = 7 + rep;
      images.push_back(chem::depict(chem::parse_smiles(s), d));
      labels.push_back(0.0f);
    }
  }
  ml::SurrogateOptions opts;
  opts.epochs = 12;
  opts.seed = 3;
  ml::SurrogateModel model(opts);
  const auto report = model.train(images, labels);
  ASSERT_EQ(report.epochs.size(), 12u);
  EXPECT_LT(report.epochs.back().train_loss, report.epochs.front().train_loss);

  // Held-out molecules.
  const float arom = model.predict(chem::depict(chem::parse_smiles("Clc1ccccc1")));
  const float alip = model.predict(chem::depict(chem::parse_smiles("CCCCCCC")));
  EXPECT_GT(arom, alip);
}

TEST(Surrogate, FlopModelPositiveAndMonotone) {
  ml::SurrogateOptions small, big;
  big.base_filters = 16;
  EXPECT_GT(ml::SurrogateModel(big).flops_per_image(),
            ml::SurrogateModel(small).flops_per_image());
}

TEST(Surrogate, PredictBatchInvariantToChunkSize) {
  // predict_batch must return identical scores whatever the inference chunk
  // size (the batched forward is per-sample independent).
  const char* smiles[] = {"c1ccccc1", "CCCCCC", "Oc1ccccc1", "CCNCC",
                          "Cc1ccccc1", "CCCCO", "c1ccncc1", "CC(C)CC",
                          "CCOCC", "Nc1ccccc1"};
  std::vector<chem::Image> images;
  for (const char* s : smiles)
    images.push_back(chem::depict(chem::parse_smiles(s)));

  std::vector<std::vector<float>> results;
  for (int chunk : {1, 3, 7, 10, 64}) {
    ml::SurrogateOptions opts;
    opts.seed = 77;
    opts.predict_chunk = chunk;
    ml::SurrogateModel model(opts);  // same seed -> same weights
    results.push_back(model.predict_batch(images));
    ASSERT_EQ(results.back().size(), images.size()) << "chunk=" << chunk;
  }
  for (std::size_t r = 1; r < results.size(); ++r)
    for (std::size_t i = 0; i < images.size(); ++i)
      EXPECT_EQ(results[r][i], results[0][i]) << "result set " << r << " image " << i;
}

// ---------------------------------------------------------------- RES

TEST(Res, PerfectPredictorHasFullCoverage) {
  std::vector<double> truth;
  for (int i = 0; i < 1000; ++i) truth.push_back(i);
  const ml::EnrichmentSurface res(truth, truth);
  EXPECT_DOUBLE_EQ(res.coverage(0.01, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(res.coverage(0.1, 0.01), 1.0);
}

TEST(Res, RandomPredictorCoverageNearScreenFraction) {
  Rng rng(5);
  std::vector<double> truth, pred;
  for (int i = 0; i < 5000; ++i) {
    truth.push_back(i);
    pred.push_back(rng.uniform());
  }
  const ml::EnrichmentSurface res(pred, truth);
  // Random screen of fraction x captures ~x of any top set.
  EXPECT_NEAR(res.coverage(0.2, 0.05), 0.2, 0.08);
}

TEST(Res, CoverageMonotoneInScreenBudget) {
  Rng rng(6);
  std::vector<double> truth, pred;
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.uniform();
    truth.push_back(t);
    pred.push_back(t + rng.gauss(0, 0.2));  // noisy but informative
  }
  const ml::EnrichmentSurface res(pred, truth);
  const double c1 = res.coverage(0.01, 0.01);
  const double c2 = res.coverage(0.05, 0.01);
  const double c3 = res.coverage(0.25, 0.01);
  EXPECT_LE(c1, c2 + 1e-12);
  EXPECT_LE(c2, c3 + 1e-12);
  // Informative predictor beats random.
  EXPECT_GT(c2, 0.05);
}

TEST(Res, GridShapeAndText) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const ml::EnrichmentSurface res(v, v);
  const auto grid = res.grid(1, 0.1);
  EXPECT_EQ(grid.screen_fractions.size(), 2u);  // 0.1, 1.0
  EXPECT_EQ(grid.coverage.size(), grid.top_fractions.size());
  EXPECT_FALSE(ml::to_text(grid).empty());
}

// ---------------------------------------------------------------- LOF

TEST(Lof, PlantedOutlierScoresHighest) {
  Rng rng(7);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 60; ++i)
    pts.push_back({rng.gauss(0, 1), rng.gauss(0, 1)});
  pts.push_back({12.0, -9.0});  // outlier
  const auto lof = ml::local_outlier_factor(pts, 8);
  const auto top = ml::top_outliers(lof, 1);
  EXPECT_EQ(top[0], pts.size() - 1);
  EXPECT_GT(lof.back(), 1.5);
}

TEST(Lof, UniformClusterScoresNearOne) {
  Rng rng(8);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 80; ++i)
    pts.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
  const auto lof = ml::local_outlier_factor(pts, 10);
  double m = 0;
  for (double v : lof) m += v;
  m /= static_cast<double>(lof.size());
  EXPECT_NEAR(m, 1.0, 0.25);
}

TEST(Lof, SmallInputsAreSafe) {
  EXPECT_TRUE(ml::local_outlier_factor({}, 5).empty());
  const auto one = ml::local_outlier_factor({{1.0, 2.0}}, 5);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

// ---------------------------------------------------------------- t-SNE

TEST(Tsne, PreservesClusterSeparation) {
  Rng rng(9);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 30; ++i)
    pts.push_back({rng.gauss(0, 0.3), rng.gauss(0, 0.3), rng.gauss(0, 0.3)});
  for (int i = 0; i < 30; ++i)
    pts.push_back({rng.gauss(10, 0.3), rng.gauss(10, 0.3), rng.gauss(10, 0.3)});
  ml::TsneOptions opts;
  opts.iterations = 250;
  opts.perplexity = 10;
  const auto y = ml::tsne(pts, opts);
  ASSERT_EQ(y.size(), 60u);

  // Mean intra-cluster distance must be far below inter-cluster distance.
  auto dist = [&](std::size_t a, std::size_t b) {
    return std::hypot(y[a][0] - y[b][0], y[a][1] - y[b][1]);
  };
  double intra = 0, inter = 0;
  int ni = 0, nx = 0;
  for (std::size_t a = 0; a < 60; ++a)
    for (std::size_t b = a + 1; b < 60; ++b) {
      if ((a < 30) == (b < 30)) {
        intra += dist(a, b);
        ++ni;
      } else {
        inter += dist(a, b);
        ++nx;
      }
    }
  intra /= ni;
  inter /= nx;
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(Tsne, HandlesDegenerateInputs) {
  EXPECT_TRUE(ml::tsne({}).empty());
  const auto one = ml::tsne({{1.0, 2.0}});
  ASSERT_EQ(one.size(), 1u);
}

// ---------------------------------------------------------------- AAE

namespace {

/// Synthetic conformation clouds: a base shape plus per-sample deformation.
std::vector<std::vector<Vec3>> synthetic_clouds(int n, int points,
                                                std::uint64_t seed,
                                                double deform = 0.5) {
  Rng rng(seed);
  std::vector<Vec3> base;
  for (int p = 0; p < points; ++p) {
    const double t = static_cast<double>(p) / points * 6.28;
    base.push_back({3 * std::cos(t), 3 * std::sin(t), 0.3 * p});
  }
  std::vector<std::vector<Vec3>> out;
  for (int i = 0; i < n; ++i) {
    auto c = base;
    const double amp = rng.uniform(0, deform);
    for (int p = 0; p < points; ++p) {
      c[static_cast<std::size_t>(p)].z += amp * std::sin(0.5 * p);
      c[static_cast<std::size_t>(p)].x += rng.gauss(0, 0.05);
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

TEST(Aae, TrainingReducesReconstruction) {
  const auto clouds = synthetic_clouds(48, 12, 31);
  ml::AaeOptions opts;
  opts.epochs = 10;
  opts.batch_size = 8;
  opts.seed = 5;
  ml::Aae3d aae(12, opts);
  const auto report = aae.train(clouds);
  ASSERT_EQ(report.epochs.size(), 10u);
  EXPECT_LT(report.epochs.back().reconstruction,
            report.epochs.front().reconstruction);
  EXPECT_LT(report.epochs.back().validation,
            report.epochs.front().validation * 1.5);
}

TEST(Aae, EmbeddingHasLatentDimension) {
  const auto clouds = synthetic_clouds(16, 10, 32);
  ml::AaeOptions opts;
  opts.epochs = 2;
  opts.latent_dim = 8;
  opts.batch_size = 8;
  ml::Aae3d aae(10, opts);
  aae.train(clouds);
  const auto z = aae.embed(clouds[0]);
  EXPECT_EQ(z.size(), 8u);
  const auto zb = aae.embed_batch(clouds);
  EXPECT_EQ(zb.size(), clouds.size());
}

TEST(Aae, LatentSeparatesDistinctShapes) {
  // Two shape families; after training, within-family latent distances
  // should be smaller than cross-family ones.
  auto a = synthetic_clouds(24, 10, 33, 0.1);
  auto b = synthetic_clouds(24, 10, 34, 0.1);
  for (auto& c : b)
    for (auto& p : c) p.z += 4.0;  // systematically different family

  std::vector<std::vector<Vec3>> all = a;
  all.insert(all.end(), b.begin(), b.end());
  ml::AaeOptions opts;
  opts.epochs = 12;
  opts.batch_size = 8;
  opts.seed = 6;
  ml::Aae3d aae(10, opts);
  aae.train(all);
  const auto z = aae.embed_batch(all);

  auto d = [&](std::size_t i, std::size_t j) {
    double acc = 0;
    for (std::size_t k = 0; k < z[i].size(); ++k)
      acc += (z[i][k] - z[j][k]) * (z[i][k] - z[j][k]);
    return std::sqrt(acc);
  };
  double intra = 0, inter = 0;
  int ni = 0, nx = 0;
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if ((i < a.size()) == (j < a.size())) {
        intra += d(i, j);
        ++ni;
      } else {
        inter += d(i, j);
        ++nx;
      }
    }
  EXPECT_GT(inter / nx, intra / ni);
}

TEST(Aae, RejectsMismatchedCloudSize) {
  ml::Aae3d aae(10, {});
  std::vector<std::vector<Vec3>> bad{std::vector<Vec3>(7)};
  EXPECT_THROW(aae.train(bad), std::invalid_argument);
}

TEST(Aae, FlopModelScalesWithPoints) {
  ml::Aae3d small(10, {}), big(100, {});
  EXPECT_GT(big.flops_per_sample(), small.flops_per_sample());
}
