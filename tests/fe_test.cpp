// Free-energy protocol tests: MMPBSA-lite estimator, ESMACS ensemble
// statistics (including the CG/FG contrast and the adaptive variant), and
// the TIES thermodynamic-integration protocol.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/fe/ties.hpp"
#include "impeccable/md/analysis.hpp"

namespace fe = impeccable::fe;
namespace md = impeccable::md;
namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
using impeccable::common::Vec3;

namespace {

struct LpcFixture {
  md::System system;
  int rotatable = 0;
};

/// Build a small docked LPC: dock a ligand into a synthetic receptor grid,
/// then transplant the best pose into the matching MD protein.
LpcFixture make_lpc(const char* smiles, std::uint64_t seed) {
  const auto receptor = dock::Receptor::synthesize("R", seed);
  dock::GridOptions gopts;
  gopts.nodes = 21;
  const auto grid = dock::compute_grid(receptor, gopts);
  const auto mol = chem::parse_smiles(smiles);
  dock::DockOptions dopts;
  dopts.runs = 1;
  dopts.lga.population = 20;
  dopts.lga.generations = 8;
  const auto dres = dock::dock(*grid, mol, "L", dopts);

  md::ProteinOptions popts;
  popts.residues = 50;
  const auto protein = md::build_protein(seed, popts);

  LpcFixture fx;
  fx.system = md::build_lpc(protein, mol, dres.best_coords);
  fx.rotatable = chem::compute_descriptors(mol).rotatable_bonds;
  return fx;
}

fe::EsmacsConfig fast_config(int replicas) {
  fe::EsmacsConfig c = fe::cg_config(0.5);
  c.replicas = replicas;
  c.simulation.minimize_iterations = 60;
  return c;
}

}  // namespace

// ---------------------------------------------------------------- MMPBSA

TEST(Mmpbsa, BoundPoseBeatsPulledApartPose) {
  auto fx = make_lpc("CCOc1ccccc1", 31);
  md::Frame bound;
  bound.positions = fx.system.positions;

  // Pull the ligand 40 Å out of the pocket.
  md::Frame apart = bound;
  const auto lig = fx.system.topology.selection(md::BeadKind::Ligand);
  for (int i : lig) apart.positions[static_cast<std::size_t>(i)].z += 40.0;

  const double g_bound = fe::frame_binding_energy(fx.system, bound, fx.rotatable);
  const double g_apart = fe::frame_binding_energy(fx.system, apart, fx.rotatable);
  EXPECT_LT(g_bound, g_apart);
  // Fully separated: only the entropy penalty remains.
  EXPECT_NEAR(g_apart, 0.4 * fx.rotatable, 0.5);
}

TEST(Mmpbsa, EntropyPenaltyScalesWithTorsions) {
  auto fx = make_lpc("c1ccccc1", 32);  // rigid ligand
  md::Frame f;
  f.positions = fx.system.positions;
  const double g0 = fe::frame_binding_energy(fx.system, f, 0);
  const double g5 = fe::frame_binding_energy(fx.system, f, 5);
  EXPECT_NEAR(g5 - g0, 5 * 0.4, 1e-9);
}

TEST(Mmpbsa, ReplicaAverageIsMeanOfFrames) {
  auto fx = make_lpc("CCO", 33);
  md::SimulationOptions so;
  so.production_steps = 60;
  so.report_interval = 20;
  const auto sim = md::run_replica(fx.system, so, 4);
  double acc = 0.0;
  for (const auto& f : sim.trajectory.frames)
    acc += fe::frame_binding_energy(fx.system, f, fx.rotatable);
  acc /= static_cast<double>(sim.trajectory.size());
  EXPECT_NEAR(fe::replica_binding_energy(fx.system, sim.trajectory, fx.rotatable),
              acc, 1e-9);
}

// ---------------------------------------------------------------- ESMACS

TEST(Esmacs, PresetsMatchPaperRatios) {
  const auto cg = fe::cg_config();
  const auto fg = fe::fg_config();
  EXPECT_EQ(cg.replicas, 6);
  EXPECT_EQ(fg.replicas, 24);
  EXPECT_EQ(fg.simulation.equilibration_steps, 2 * cg.simulation.equilibration_steps);
  EXPECT_EQ(fg.simulation.production_steps * 2, 5 * cg.simulation.production_steps);
  // Cost ratio ~ order of magnitude (Sec. 3.2).
  const double cg_cost = static_cast<double>(cg.replicas) *
                         (cg.simulation.equilibration_steps + cg.simulation.production_steps);
  const double fg_cost = static_cast<double>(fg.replicas) *
                         (fg.simulation.equilibration_steps + fg.simulation.production_steps);
  EXPECT_NEAR(fg_cost / cg_cost, 10.0, 3.0);
}

TEST(Esmacs, ProducesReplicaStatistics) {
  auto fx = make_lpc("CCOc1ccccc1", 34);
  const auto res = fe::run_esmacs(fx.system, fx.rotatable, fast_config(4), 77);
  EXPECT_EQ(res.replica_means.size(), 4u);
  EXPECT_GT(res.std_error, 0.0);
  EXPECT_LE(res.ci95.lo, res.binding_free_energy);
  EXPECT_GE(res.ci95.hi, res.binding_free_energy);
  EXPECT_GT(res.md_steps, 0u);
  EXPECT_TRUE(res.trajectories.empty());
}

TEST(Esmacs, DeterministicPerSeed) {
  auto fx = make_lpc("CCN", 35);
  const auto a = fe::run_esmacs(fx.system, fx.rotatable, fast_config(3), 9);
  const auto b = fe::run_esmacs(fx.system, fx.rotatable, fast_config(3), 9);
  EXPECT_DOUBLE_EQ(a.binding_free_energy, b.binding_free_energy);
  const auto c = fe::run_esmacs(fx.system, fx.rotatable, fast_config(3), 10);
  EXPECT_NE(a.binding_free_energy, c.binding_free_energy);
}

TEST(Esmacs, ThreadPoolGivesSameReplicaSet) {
  auto fx = make_lpc("CCCO", 36);
  impeccable::common::ThreadPool pool(2);
  const auto serial = fe::run_esmacs(fx.system, fx.rotatable, fast_config(3), 5);
  const auto parallel = fe::run_esmacs(fx.system, fx.rotatable, fast_config(3), 5, &pool);
  ASSERT_EQ(serial.replica_means.size(), parallel.replica_means.size());
  for (std::size_t i = 0; i < serial.replica_means.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.replica_means[i], parallel.replica_means[i]);
}

TEST(Esmacs, KeepTrajectoriesRetainsEnsemble) {
  auto fx = make_lpc("CCO", 37);
  auto cfg = fast_config(3);
  cfg.keep_trajectories = true;
  const auto res = fe::run_esmacs(fx.system, fx.rotatable, cfg, 6);
  ASSERT_EQ(res.trajectories.size(), 3u);
  for (const auto& t : res.trajectories) EXPECT_GT(t.size(), 0u);
}

TEST(Esmacs, MoreReplicasTightenTheErrorBar) {
  auto fx = make_lpc("CCOc1ccccc1", 38);
  const auto few = fe::run_esmacs(fx.system, fx.rotatable, fast_config(3), 3);
  const auto many = fe::run_esmacs(fx.system, fx.rotatable, fast_config(12), 3);
  // SEM ~ sigma/sqrt(n): 12 replicas should not be worse than 3 (allowing
  // stochastic slack).
  EXPECT_LT(many.std_error, few.std_error * 1.5 + 0.2);
}

TEST(Esmacs, AdaptiveStopsWithinBounds) {
  auto fx = make_lpc("CCOC", 39);
  fe::AdaptiveOptions adapt;
  adapt.min_replicas = 3;
  adapt.max_replicas = 8;
  adapt.batch = 2;
  adapt.target_sem = 0.8;
  const auto res = fe::run_esmacs_adaptive(fx.system, fx.rotatable,
                                           fast_config(0), adapt, 12);
  EXPECT_GE(static_cast<int>(res.replica_means.size()), adapt.min_replicas);
  EXPECT_LE(static_cast<int>(res.replica_means.size()), adapt.max_replicas);
  // Either converged or exhausted the budget.
  if (static_cast<int>(res.replica_means.size()) < adapt.max_replicas) {
    EXPECT_LE(res.std_error, adapt.target_sem);
  }
}

TEST(Esmacs, AdaptiveTightTargetUsesMoreReplicasThanLooseTarget) {
  auto fx = make_lpc("CCOc1ccccc1C", 40);
  fe::AdaptiveOptions loose;
  loose.min_replicas = 3;
  loose.max_replicas = 12;
  loose.target_sem = 100.0;  // trivially satisfied
  fe::AdaptiveOptions tight = loose;
  tight.target_sem = 1e-6;   // unreachable -> run to max
  const auto a = fe::run_esmacs_adaptive(fx.system, fx.rotatable, fast_config(0), loose, 2);
  const auto b = fe::run_esmacs_adaptive(fx.system, fx.rotatable, fast_config(0), tight, 2);
  EXPECT_EQ(a.replica_means.size(), 3u);
  EXPECT_EQ(b.replica_means.size(), 12u);
}

// ---------------------------------------------------------------- TIES

TEST(Ties, WindowsCoverLambdaSchedule) {
  auto fx = make_lpc("CCO", 41);
  fe::TiesConfig cfg;
  cfg.lambdas = {0.0, 0.5, 1.0};
  cfg.replicas_per_window = 2;
  cfg.simulation.production_steps = 60;
  cfg.simulation.equilibration_steps = 30;
  cfg.simulation.report_interval = 20;
  const auto res = fe::run_ties(fx.system, cfg, 4);
  ASSERT_EQ(res.windows.size(), 3u);
  EXPECT_DOUBLE_EQ(res.windows[0].lambda, 0.0);
  EXPECT_DOUBLE_EQ(res.windows[2].lambda, 1.0);
  EXPECT_GT(res.md_steps, 0u);
}

TEST(Ties, CouplingIsFavourableForDockedPose) {
  auto fx = make_lpc("CCOc1ccccc1", 42);
  fe::TiesConfig cfg;
  cfg.lambdas = {0.0, 0.25, 0.5, 0.75, 1.0};
  cfg.replicas_per_window = 3;
  cfg.simulation.production_steps = 100;
  cfg.simulation.equilibration_steps = 40;
  cfg.simulation.report_interval = 20;
  const auto res = fe::run_ties(fx.system, cfg, 5);
  // Switching interactions on for a docked pose must be favourable.
  EXPECT_LT(res.delta_g, 0.0);
  // At λ=1 the mean dH/dλ is the physical interaction energy: negative.
  EXPECT_LT(res.windows.back().mean_dhdl, 0.0);
}

TEST(Ties, RejectsDegenerateSchedule) {
  auto fx = make_lpc("CCO", 43);
  fe::TiesConfig cfg;
  cfg.lambdas = {1.0};
  EXPECT_THROW(fe::run_ties(fx.system, cfg, 1), std::invalid_argument);
}

TEST(Ties, ErrorPropagationIsFinitePositive) {
  auto fx = make_lpc("CCC", 44);
  fe::TiesConfig cfg;
  cfg.lambdas = {0.0, 1.0};
  cfg.replicas_per_window = 3;
  cfg.simulation.production_steps = 60;
  cfg.simulation.equilibration_steps = 20;
  cfg.simulation.report_interval = 20;
  const auto res = fe::run_ties(fx.system, cfg, 6);
  EXPECT_TRUE(std::isfinite(res.delta_g));
  EXPECT_GT(res.std_error, 0.0);
}
