// Final coverage sweep over small API surfaces not exercised elsewhere.

#include <gtest/gtest.h>

#include "impeccable/chem/diversity.hpp"
#include "impeccable/chem/fingerprint.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/ml/shards.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"

namespace chem = impeccable::chem;
namespace ml = impeccable::ml;
namespace rct = impeccable::rct;
namespace hpc = impeccable::hpc;
namespace stats = impeccable::common;

TEST(MiscShards, RejectsZeroPerShard) {
  EXPECT_THROW(ml::write_shards({}, 0, "/tmp/imp_zero"), std::invalid_argument);
}

TEST(MiscShards, EmptyShardListYieldsEmptyOutput) {
  const auto out = ml::run_sharded_inference({}, {}, {.ranks = 2});
  EXPECT_TRUE(out.scores.empty());
  EXPECT_EQ(out.shards_processed, 0u);
  EXPECT_EQ(out.shards_failed, 0u);
}

TEST(MiscDiversity, MaxMinIsDeterministicPerSeed) {
  std::vector<chem::BitSet> fps;
  for (const char* s : {"CCO", "CCCO", "c1ccccc1", "c1ccncc1", "CC(=O)O"})
    fps.push_back(chem::morgan_fingerprint(chem::parse_smiles(s)));
  EXPECT_EQ(chem::maxmin_pick(fps, 3, 7), chem::maxmin_pick(fps, 3, 7));
}

TEST(MiscStats, SpearmanAndPearsonRejectMismatch) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2};
  EXPECT_THROW((void)stats::pearson(a, b), std::invalid_argument);
  EXPECT_THROW((void)stats::spearman(a, b), std::invalid_argument);
}

TEST(MiscStats, HistogramTextHasOneLinePerBin) {
  stats::Histogram h(0, 10, 4);
  h.add(1);
  h.add(9);
  const auto text = h.to_text();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(MiscMachine, SpecsExposeTotals) {
  const auto s = hpc::summit(10);
  EXPECT_EQ(s.total_gpus(), 60);
  EXPECT_EQ(s.total_cores(), 420);
  const auto f = hpc::frontera(3);
  EXPECT_EQ(f.total_gpus(), 0);
  EXPECT_EQ(f.total_cores(), 168);
}

TEST(MiscEntk, MakespanAndEmptyPipelines) {
  rct::SimBackend backend(hpc::test_machine(1));
  rct::AppManager mgr(backend);
  // Zero pipelines and an all-empty pipeline both complete trivially.
  EXPECT_TRUE(mgr.run({}).empty());
  rct::Pipeline p("empty");
  p.add_stage({"nothing", {}, nullptr});
  const auto results = mgr.run({std::move(p)});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(mgr.tasks_failed(), 0u);
}

TEST(MiscEntk, TaskStateNames) {
  EXPECT_STREQ(rct::to_string(rct::TaskState::New), "NEW");
  EXPECT_STREQ(rct::to_string(rct::TaskState::Done), "DONE");
  EXPECT_STREQ(rct::to_string(rct::TaskState::Failed), "FAILED");
}

TEST(MiscSmiles, CanonicalSmilesOfGeneratedLibraryIsStable) {
  // write(parse(write(mol))) == write(mol) — idempotence over a sample.
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto mol = chem::generate_compound(4242, i);
    const auto once = chem::write_smiles(mol);
    EXPECT_EQ(chem::canonical_smiles(once), once);
  }
}
