// Serving layer: sharded score cache, micro-batching inference server,
// admission control, and the synthetic load generators. The whole file runs
// under the tsan-serve preset (LABELS serve), so every test doubles as a
// race detector for the concurrent predict path.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/fingerprint.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "impeccable/serve/loadgen.hpp"
#include "impeccable/serve/score_cache.hpp"
#include "impeccable/serve/server.hpp"

namespace impeccable {
namespace {

// Ten molecules with pairwise-distinct depictions. (Distinct SMILES is not
// enough: depiction maps N and O to the same channel, so e.g. phenol and
// aniline featurize byte-identically — and then sharing a cache entry is
// correct, since the CNN cannot tell them apart either.)
std::vector<chem::Image> test_images(std::size_t n) {
  const char* smiles[] = {"c1ccccc1", "CCCCCC", "Oc1ccccc1", "CCNCC",
                          "Cc1ccccc1", "CCCCO",  "c1ccncc1",  "CC(C)CC",
                          "CCCCCCCC",  "CC(C)CO"};
  std::vector<chem::Image> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(chem::depict(chem::parse_smiles(smiles[i % 10])));
  return out;
}

std::unique_ptr<ml::SurrogateModel> small_model(std::uint64_t seed = 77) {
  ml::SurrogateOptions opts;
  opts.seed = seed;  // deterministic weights; untrained is fine for serving
  return std::make_unique<ml::SurrogateModel>(opts);
}

serve::Request make_request(const chem::Image& image) {
  serve::Request req;
  req.image = image;
  req.key = serve::key_of(image);
  return req;
}

// ---------------------------------------------------------------- keys

TEST(CacheKey, ImageDigestIsContentIdentity) {
  const auto images = test_images(2);
  EXPECT_EQ(serve::key_of(images[0]), serve::key_of(images[0]));
  EXPECT_NE(serve::key_of(images[0]), serve::key_of(images[1]));

  chem::Image tweaked = images[0];
  tweaked.data[tweaked.data.size() / 2] += 1e-6f;
  EXPECT_NE(serve::key_of(images[0]), serve::key_of(tweaked));

  // Featurization identity, not molecule identity: N and O land in the same
  // depiction channel, so phenol and aniline share a key — and may share a
  // cache entry, because their CNN inputs (hence scores) are identical.
  EXPECT_EQ(serve::key_of(chem::depict(chem::parse_smiles("Oc1ccccc1"))),
            serve::key_of(chem::depict(chem::parse_smiles("Nc1ccccc1"))));
}

TEST(CacheKey, FingerprintDigestIsContentIdentity) {
  const auto a = chem::morgan_fingerprint(chem::parse_smiles("c1ccccc1"));
  const auto b = chem::morgan_fingerprint(chem::parse_smiles("CCCCCC"));
  EXPECT_EQ(serve::key_of(a), serve::key_of(a));
  EXPECT_NE(serve::key_of(a), serve::key_of(b));
}

// ---------------------------------------------------------------- cache

TEST(ScoreCache, LookupAfterInsertHitsAndCounts) {
  serve::ShardedScoreCache cache({4, 64});
  ASSERT_TRUE(cache.enabled());
  const serve::CacheKey k{1, 2};
  EXPECT_FALSE(cache.lookup(k).has_value());
  cache.insert(k, 0.25f);
  const auto hit = cache.lookup(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.25f);

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.shards, 4u);
}

TEST(ScoreCache, ZeroCapacityDisablesCleanly) {
  serve::ShardedScoreCache cache({8, 0});
  EXPECT_FALSE(cache.enabled());
  cache.insert({1, 1}, 0.5f);  // dropped, not stored
  EXPECT_FALSE(cache.lookup({1, 1}).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().shards, 0u);
}

TEST(ScoreCache, EvictsLeastRecentlyUsedUnderCapacityPressure) {
  // Single shard so the LRU order is globally observable.
  serve::ShardedScoreCache cache({1, 3});
  ASSERT_EQ(cache.shard_capacity(), 3u);
  cache.insert({0, 0}, 0.0f);
  cache.insert({0, 1}, 1.0f);
  cache.insert({0, 2}, 2.0f);
  // Touch {0,0} so {0,1} becomes the LRU victim.
  ASSERT_TRUE(cache.lookup({0, 0}).has_value());
  cache.insert({0, 3}, 3.0f);

  EXPECT_TRUE(cache.lookup({0, 0}).has_value());
  EXPECT_FALSE(cache.lookup({0, 1}).has_value()) << "LRU entry must go first";
  EXPECT_TRUE(cache.lookup({0, 2}).has_value());
  EXPECT_TRUE(cache.lookup({0, 3}).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size, 3u);
}

TEST(ScoreCache, ReinsertRefreshesRecencyWithoutChangingScore) {
  serve::ShardedScoreCache cache({1, 2});
  cache.insert({0, 0}, 0.0f);
  cache.insert({0, 1}, 1.0f);
  cache.insert({0, 0}, 9.0f);  // refresh: score stays, recency moves
  cache.insert({0, 2}, 2.0f);  // evicts {0,1}, not the refreshed {0,0}

  const auto kept = cache.lookup({0, 0});
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(*kept, 0.0f) << "cached scores are immutable on reinsert";
  EXPECT_FALSE(cache.lookup({0, 1}).has_value());
}

TEST(ScoreCache, ShardsEvictIndependently) {
  // Keys route by hi % shards: hi selects the shard directly.
  serve::ShardedScoreCache cache({2, 4});  // 2 entries per shard
  ASSERT_EQ(cache.shard_capacity(), 2u);
  ASSERT_NE(cache.shard_of({0, 0}), cache.shard_of({1, 0}));

  cache.insert({0, 0}, 0.0f);
  cache.insert({0, 1}, 0.1f);
  // Overflow shard 1 only; shard 0 residents must be untouched.
  for (std::uint64_t lo = 0; lo < 5; ++lo) cache.insert({1, lo}, 1.0f);

  EXPECT_TRUE(cache.lookup({0, 0}).has_value());
  EXPECT_TRUE(cache.lookup({0, 1}).has_value());
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(ScoreCache, ConcurrentMixedTrafficKeepsCountersConsistent) {
  serve::ShardedScoreCache cache({8, 256});
  constexpr int kThreads = 8, kOps = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const serve::CacheKey k{static_cast<std::uint64_t>(i % 32),
                                static_cast<std::uint64_t>(t % 2)};
        if (const auto hit = cache.lookup(k)) {
          EXPECT_EQ(*hit, static_cast<float>(k.hi));
        } else {
          cache.insert(k, static_cast<float>(k.hi));
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_LE(s.size, 64u);  // 32 keys x 2 lo values
}

// ---------------------------------------------------------------- predict race

TEST(SurrogateConcurrency, ParallelPredictBatchIsRaceFreeAndDeterministic) {
  // The serving layer's core assumption (and the tsan-serve preset's main
  // quarry): concurrent predict_batch calls on one const model neither race
  // nor perturb each other's outputs.
  const auto model = small_model();
  const auto images = test_images(12);
  const std::vector<float> expected = model->predict_batch(images);

  constexpr int kThreads = 8;
  std::vector<std::vector<float>> results(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back(
        [&, t] { results[t] = model->predict_batch(images); });
  for (auto& th : pool) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(results[t][i], expected[i]) << "thread " << t << " image " << i;
  }
}

// ---------------------------------------------------------------- server

TEST(InferenceServer, ServedScoresBitwiseMatchDirectPredictBatch) {
  const auto images = test_images(10);
  const std::vector<float> direct = small_model()->predict_batch(images);

  for (const std::size_t cache_capacity : {std::size_t{0}, std::size_t{512}}) {
    serve::ServeOptions opts;
    opts.cache.capacity = cache_capacity;
    serve::InferenceServer server(opts);
    server.register_target("3clpro", small_model());

    // Two passes: the second is all cache hits when the cache is on.
    for (int pass = 0; pass < 2; ++pass)
      for (std::size_t i = 0; i < images.size(); ++i)
        EXPECT_EQ(server.score("3clpro", make_request(images[i])), direct[i])
            << "cache=" << cache_capacity << " pass=" << pass << " image=" << i;

    const auto s = server.stats("3clpro");
    EXPECT_EQ(s.completed, 2 * images.size());
    if (cache_capacity > 0) {
      EXPECT_EQ(s.cache.hits, images.size()) << "second pass must hit";
      EXPECT_EQ(s.model_images, images.size());
    } else {
      EXPECT_EQ(s.model_images, 2 * images.size());
    }
  }
}

TEST(InferenceServer, CoalescesQueuedRequestsIntoBatches) {
  serve::ServeOptions opts;
  opts.deadline_us = 50000.0;  // generous: queued work flushes together
  opts.cache.capacity = 0;     // misses must come from batching, not caching
  serve::InferenceServer server(opts);
  server.register_target("t", small_model());

  const auto images = test_images(10);
  server.pause();  // build up a queue so one flush sees all of them
  std::vector<std::future<serve::Response>> futs;
  for (int rep = 0; rep < 3; ++rep)
    for (const auto& img : images)
      futs.push_back(server.submit("t", make_request(img)));
  server.resume();
  for (auto& f : futs) EXPECT_EQ(f.get().status, serve::Status::kOk);

  const auto s = server.stats("t");
  EXPECT_EQ(s.completed, futs.size());
  EXPECT_EQ(s.batches, 1u) << "30 queued requests < max_batch: one flush";
  // Even with the cache disabled, in-batch dedupe runs each of the 10
  // distinct images once per flush.
  EXPECT_EQ(s.model_images, images.size());
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(InferenceServer, DeduplicatesIdenticalKeysWithinOneBatch) {
  serve::ServeOptions opts;
  opts.cache.capacity = 512;
  serve::InferenceServer server(opts);
  server.register_target("t", small_model());

  const auto images = test_images(1);
  server.pause();
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(server.submit("t", make_request(images[0])));
  server.resume();

  float first = 0.0f;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk);
    if (i == 0)
      first = r.score;
    else
      EXPECT_EQ(r.score, first);
  }
  // However the 8 duplicates split into batches, the model runs them once.
  EXPECT_EQ(server.stats("t").model_images, 1u);
}

TEST(InferenceServer, ShedPolicyFailsFastAboveWatermark) {
  serve::ServeOptions opts;
  opts.queue_capacity = 4;
  opts.admission = serve::AdmissionPolicy::kShed;
  serve::InferenceServer server(opts);
  server.register_target("t", small_model());

  const auto images = test_images(1);
  server.pause();  // nothing drains: the watermark is deterministic
  std::vector<std::future<serve::Response>> accepted;
  for (std::size_t i = 0; i < opts.queue_capacity; ++i)
    accepted.push_back(server.submit("t", make_request(images[0])));

  // Queue is at capacity: overload must resolve immediately as kShed.
  auto overload = server.submit("t", make_request(images[0]));
  EXPECT_EQ(overload.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "shed must not block";
  EXPECT_EQ(overload.get().status, serve::Status::kShed);

  server.resume();
  for (auto& f : accepted) EXPECT_EQ(f.get().status, serve::Status::kOk);
  const auto s = server.stats("t");
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.completed, opts.queue_capacity);
}

TEST(InferenceServer, BlockPolicyAppliesBackpressureThenAdmits) {
  serve::ServeOptions opts;
  opts.queue_capacity = 2;
  opts.admission = serve::AdmissionPolicy::kBlock;
  serve::InferenceServer server(opts);
  server.register_target("t", small_model());

  const auto images = test_images(1);
  server.pause();
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < opts.queue_capacity; ++i)
    futs.push_back(server.submit("t", make_request(images[0])));

  // The next submit must block until the worker drains space.
  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    futs.push_back(server.submit("t", make_request(images[0])));
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load()) << "submit must block while queue is full";

  server.resume();
  blocked.join();
  EXPECT_TRUE(admitted.load());
  for (auto& f : futs) EXPECT_EQ(f.get().status, serve::Status::kOk);
  EXPECT_EQ(server.stats("t").shed, 0u);
}

TEST(InferenceServer, RegistryRoutesPerTargetAndRejectsBadIds) {
  serve::InferenceServer server;
  server.register_target("3clpro", small_model(1));
  server.register_target("plpro", small_model(2));  // different weights
  EXPECT_THROW(server.register_target("3clpro", small_model(3)),
               std::invalid_argument);
  EXPECT_THROW(server.register_target("null", nullptr), std::invalid_argument);
  EXPECT_EQ(server.targets(), (std::vector<std::string>{"3clpro", "plpro"}));

  const auto images = test_images(4);
  for (const auto& img : images) {
    const serve::Request req = make_request(img);
    EXPECT_NE(server.score("3clpro", req), server.score("plpro", req))
        << "targets must score with their own model";
  }
  EXPECT_THROW(server.submit("unknown", make_request(images[0])),
               std::out_of_range);
  EXPECT_THROW(server.stats("unknown"), std::out_of_range);
  EXPECT_EQ(server.stats("3clpro").completed, images.size());
  EXPECT_EQ(server.stats("plpro").completed, images.size());
}

TEST(InferenceServer, AdaptiveFlushThresholdStaysWithinConfiguredBand) {
  serve::ServeOptions opts;
  opts.min_batch = 2;
  opts.max_batch = 16;
  opts.deadline_us = 500.0;  // tight budget forces adaptation downward
  serve::InferenceServer server(opts);
  server.register_target("t", small_model());

  const auto images = test_images(8);
  for (int rep = 0; rep < 6; ++rep)
    for (const auto& img : images) server.score("t", make_request(img));

  const auto s = server.stats("t");
  EXPECT_GE(s.flush_threshold, opts.min_batch);
  EXPECT_LE(s.flush_threshold, opts.max_batch);
  EXPECT_GT(s.ewma_image_us, 0.0);
}

TEST(InferenceServer, ShutdownShedsQueuedWorkAndRefusesNewWork) {
  serve::InferenceServer server;
  server.register_target("t", small_model());
  const auto images = test_images(1);

  server.pause();
  auto queued = server.submit("t", make_request(images[0]));
  server.shutdown();
  EXPECT_EQ(queued.get().status, serve::Status::kShed);
  EXPECT_EQ(server.submit("t", make_request(images[0])).get().status,
            serve::Status::kShed);
  server.shutdown();  // idempotent
}

TEST(InferenceServer, ConcurrentSubmittersAcrossTargetsComplete) {
  serve::ServeOptions opts;
  opts.deadline_us = 200.0;
  serve::InferenceServer server(opts);
  server.register_target("a", small_model(1));
  server.register_target("b", small_model(2));

  const auto images = test_images(6);
  constexpr int kThreads = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const std::string target = (t % 2 == 0) ? "a" : "b";
      for (int i = 0; i < 20; ++i) {
        const auto r =
            server.submit(target, make_request(images[i % images.size()]))
                .get();
        if (r.status == serve::Status::kOk) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(ok.load(), kThreads * 20);
  EXPECT_EQ(server.stats("a").completed + server.stats("b").completed,
            static_cast<std::uint64_t>(kThreads * 20));
}

// ---------------------------------------------------------------- loadgen

TEST(LoadGen, WorkloadIsDeterministicAndHonorsRepeatFraction) {
  serve::WorkloadOptions opts;
  opts.unique_ligands = 32;
  opts.stream_length = 2000;
  opts.repeat_fraction = 0.9;
  opts.hot_set = 4;

  const auto a = serve::make_workload(opts);
  const auto b = serve::make_workload(opts);
  ASSERT_EQ(a.unique.size(), 32u);
  ASSERT_EQ(a.stream.size(), 2000u);
  EXPECT_EQ(a.stream, b.stream) << "same seed, same stream";
  for (std::size_t i = 0; i < a.unique.size(); ++i)
    EXPECT_EQ(a.unique[i].key, b.unique[i].key);

  std::size_t hot_hits = 0;
  for (const std::size_t idx : a.stream)
    if (idx < opts.hot_set) ++hot_hits;
  // 90% explicit repeats + uniform draws that land in the hot set by chance.
  EXPECT_GT(hot_hits, a.stream.size() * 8 / 10);

  serve::WorkloadOptions other = opts;
  other.seed ^= 0xff;
  EXPECT_NE(serve::make_workload(other).stream, a.stream);
}

TEST(LoadGen, ClosedLoopReportsCompletionsAndLatencies) {
  serve::InferenceServer server;
  server.register_target("t", small_model());

  serve::WorkloadOptions wopts;
  wopts.unique_ligands = 8;
  wopts.stream_length = 64;
  wopts.repeat_fraction = 0.5;
  const auto workload = serve::make_workload(wopts);

  serve::ClosedLoopOptions copts;
  copts.clients = 3;
  copts.requests_per_client = 16;
  const auto report = serve::run_closed_loop(server, "t", workload, copts);

  EXPECT_EQ(report.issued, 48u);
  EXPECT_EQ(report.completed, 48u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_GT(report.achieved_rps, 0.0);
  EXPECT_GT(report.p50_us, 0.0);
  EXPECT_LE(report.p50_us, report.p99_us);
  EXPECT_LE(report.p99_us, report.max_us * 1.2);  // bucket resolution slack
}

TEST(LoadGen, OpenLoopShedsUnderOverloadWithShedPolicy) {
  serve::ServeOptions opts;
  opts.queue_capacity = 4;
  opts.admission = serve::AdmissionPolicy::kShed;
  serve::InferenceServer server(opts);
  server.register_target("t", small_model());

  serve::WorkloadOptions wopts;
  wopts.unique_ligands = 8;
  wopts.stream_length = 64;
  const auto workload = serve::make_workload(wopts);

  server.pause();  // guaranteed overload: nothing drains while dispatching
  serve::OpenLoopOptions oopts;
  oopts.offered_rps = 5000.0;
  oopts.requests = 32;
  std::thread resumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.resume();
  });
  const auto report = serve::run_open_loop(server, "t", workload, oopts);
  resumer.join();

  EXPECT_EQ(report.issued, 32u);
  EXPECT_EQ(report.completed + report.shed, 32u);
  EXPECT_GT(report.shed, 0u) << "paused shed-mode server must reject overflow";
  EXPECT_GT(report.completed, 0u) << "watermark-admitted requests complete";
}

}  // namespace
}  // namespace impeccable
