// SMILES parser/writer tests: known drugs, formulas, implicit hydrogens,
// ring perception, canonical round-trips (including a parameterized sweep
// over the generated library), and error handling.

#include <gtest/gtest.h>

#include <string>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/molecule.hpp"
#include "impeccable/chem/smiles.hpp"

namespace chem = impeccable::chem;

// ---------------------------------------------------------------- parsing

TEST(Smiles, MethaneHasFourHydrogens) {
  const auto mol = chem::parse_smiles("C");
  ASSERT_EQ(mol.atom_count(), 1);
  EXPECT_EQ(mol.hydrogen_count(0), 4);
  EXPECT_EQ(mol.formula(), "CH4");
}

TEST(Smiles, EthanolFormula) {
  const auto mol = chem::parse_smiles("CCO");
  EXPECT_EQ(mol.formula(), "C2H6O");
  EXPECT_EQ(mol.bond_count(), 2);
}

TEST(Smiles, BenzeneRingPerception) {
  const auto mol = chem::parse_smiles("c1ccccc1");
  EXPECT_EQ(mol.atom_count(), 6);
  EXPECT_EQ(mol.bond_count(), 6);
  EXPECT_EQ(mol.ring_count(), 1);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(mol.atom(i).aromatic);
    EXPECT_TRUE(mol.atom_in_ring(i));
    EXPECT_EQ(mol.hydrogen_count(i), 1);
  }
  EXPECT_EQ(mol.formula(), "C6H6");
}

TEST(Smiles, PyridineNitrogenHasNoHydrogen) {
  const auto mol = chem::parse_smiles("c1ccncc1");
  int n_idx = -1;
  for (int i = 0; i < mol.atom_count(); ++i)
    if (mol.atom(i).element == chem::Element::N) n_idx = i;
  ASSERT_GE(n_idx, 0);
  EXPECT_EQ(mol.hydrogen_count(n_idx), 0);
  EXPECT_EQ(mol.formula(), "C5H5N");
}

TEST(Smiles, PyrroleNitrogenKeepsExplicitH) {
  const auto mol = chem::parse_smiles("c1cc[nH]c1");
  int n_idx = -1;
  for (int i = 0; i < mol.atom_count(); ++i)
    if (mol.atom(i).element == chem::Element::N) n_idx = i;
  ASSERT_GE(n_idx, 0);
  EXPECT_EQ(mol.hydrogen_count(n_idx), 1);
  EXPECT_EQ(mol.formula(), "C4H5N");
}

TEST(Smiles, AspirinFormula) {
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  EXPECT_EQ(mol.formula(), "C9H8O4");
  EXPECT_EQ(mol.ring_count(), 1);
}

TEST(Smiles, CaffeineFormula) {
  const auto mol = chem::parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C");
  EXPECT_EQ(mol.formula(), "C8H10N4O2");
  EXPECT_EQ(mol.ring_count(), 2);
}

TEST(Smiles, IbuprofenFormula) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  EXPECT_EQ(mol.formula(), "C13H18O2");
}

TEST(Smiles, TripleBondNitrile) {
  const auto mol = chem::parse_smiles("CC#N");
  EXPECT_EQ(mol.formula(), "C2H3N");
  EXPECT_EQ(mol.bond(mol.bond_between(1, 2)).order, 3);
}

TEST(Smiles, ChargedAtoms) {
  const auto cation = chem::parse_smiles("C[NH3+]");
  int n = -1;
  for (int i = 0; i < cation.atom_count(); ++i)
    if (cation.atom(i).element == chem::Element::N) n = i;
  ASSERT_GE(n, 0);
  EXPECT_EQ(cation.atom(n).formal_charge, 1);
  EXPECT_EQ(cation.hydrogen_count(n), 3);

  const auto anion = chem::parse_smiles("CC(=O)[O-]");
  int om = -1;
  for (int i = 0; i < anion.atom_count(); ++i)
    if (anion.atom(i).formal_charge == -1) om = i;
  ASSERT_GE(om, 0);
  EXPECT_EQ(anion.hydrogen_count(om), 0);
}

TEST(Smiles, TwoLetterElements) {
  const auto mol = chem::parse_smiles("ClCBr");
  EXPECT_EQ(mol.atom(0).element, chem::Element::Cl);
  EXPECT_EQ(mol.atom(2).element, chem::Element::Br);
  EXPECT_EQ(mol.formula(), "CH2BrCl");
}

TEST(Smiles, PercentRingClosure) {
  // Same molecule via %12 and via digit closure.
  const auto a = chem::parse_smiles("C%12CCCCC%12");
  const auto b = chem::parse_smiles("C1CCCCC1");
  EXPECT_EQ(chem::write_smiles(a), chem::write_smiles(b));
}

TEST(Smiles, BranchNesting) {
  const auto mol = chem::parse_smiles("CC(C(C)(C)C)O");
  EXPECT_EQ(mol.formula(), "C6H14O");
  EXPECT_EQ(mol.degree(2), 4);
}

TEST(Smiles, StereoMarkersIgnored) {
  const auto a = chem::parse_smiles("C/C=C/C");
  const auto b = chem::parse_smiles("CC=CC");
  EXPECT_EQ(chem::write_smiles(a), chem::write_smiles(b));
}

TEST(Smiles, SpiroFusedRings) {
  const auto mol = chem::parse_smiles("C1CCC2(CC1)CCCCC2");
  EXPECT_EQ(mol.ring_count(), 2);
  EXPECT_TRUE(mol.connected());
}

TEST(Smiles, NaphthaleneFusedAromatics) {
  const auto mol = chem::parse_smiles("c1ccc2ccccc2c1");
  EXPECT_EQ(mol.atom_count(), 10);
  EXPECT_EQ(mol.ring_count(), 2);
  EXPECT_EQ(mol.formula(), "C10H8");
}

// ---------------------------------------------------------------- errors

TEST(SmilesErrors, RejectsEmpty) {
  EXPECT_THROW(chem::parse_smiles(""), chem::SmilesError);
}

TEST(SmilesErrors, RejectsUnbalancedParens) {
  EXPECT_THROW(chem::parse_smiles("CC(C"), chem::SmilesError);
  EXPECT_THROW(chem::parse_smiles("CC)C"), chem::SmilesError);
}

TEST(SmilesErrors, RejectsUnclosedRing) {
  EXPECT_THROW(chem::parse_smiles("C1CCC"), chem::SmilesError);
}

TEST(SmilesErrors, RejectsUnknownAtom) {
  EXPECT_THROW(chem::parse_smiles("CXC"), chem::SmilesError);
  EXPECT_THROW(chem::parse_smiles("[Zz]"), chem::SmilesError);
}

TEST(SmilesErrors, RejectsDisconnectedFragments) {
  EXPECT_THROW(chem::parse_smiles("CC.CC"), chem::SmilesError);
}

TEST(SmilesErrors, RejectsLeadingBond) {
  EXPECT_THROW(chem::parse_smiles("1CC1"), chem::SmilesError);
}

TEST(SmilesErrors, ReportsPosition) {
  try {
    chem::parse_smiles("CCQ");
    FAIL() << "expected SmilesError";
  } catch (const chem::SmilesError& e) {
    EXPECT_EQ(e.position, 2u);
  }
}

// ---------------------------------------------------------------- writer

TEST(SmilesWriter, RoundTripPreservesFormula) {
  for (const char* s :
       {"CCO", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O", "Cn1cnc2c1c(=O)n(C)c(=O)n2C",
        "CC(C)Cc1ccc(cc1)C(C)C(=O)O", "C1CCC2(CC1)CCCCC2", "c1ccc2ccccc2c1",
        "C[NH3+]", "CC(=O)[O-]", "FC(F)(F)c1ccccc1", "CC#N", "O=S(=O)(N)c1ccccc1"}) {
    const auto mol = chem::parse_smiles(s);
    const std::string out = chem::write_smiles(mol);
    const auto re = chem::parse_smiles(out);
    EXPECT_EQ(mol.formula(), re.formula()) << s << " -> " << out;
    EXPECT_EQ(mol.atom_count(), re.atom_count()) << s << " -> " << out;
    EXPECT_EQ(mol.bond_count(), re.bond_count()) << s << " -> " << out;
  }
}

TEST(SmilesWriter, CanonicalIsIdempotent) {
  for (const char* s :
       {"CCO", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O", "c1ccc2ccccc2c1"}) {
    const std::string once = chem::canonical_smiles(s);
    const std::string twice = chem::canonical_smiles(once);
    EXPECT_EQ(once, twice) << s;
  }
}

TEST(SmilesWriter, EquivalentInputsCanonicalizeIdentically) {
  // Same molecule written from different starting atoms/directions.
  EXPECT_EQ(chem::canonical_smiles("OCC"), chem::canonical_smiles("CCO"));
  EXPECT_EQ(chem::canonical_smiles("c1ccccc1C"), chem::canonical_smiles("Cc1ccccc1"));
  EXPECT_EQ(chem::canonical_smiles("C(C)(C)C"), chem::canonical_smiles("CC(C)C"));
}

TEST(SmilesWriter, BiphenylSingleLinkSurvives) {
  const auto mol = chem::parse_smiles("c1ccccc1-c1ccccc1");
  const auto re = chem::parse_smiles(chem::write_smiles(mol));
  EXPECT_EQ(re.formula(), "C12H10");
  // The inter-ring bond must stay single (non-aromatic).
  int cross = 0;
  for (int bi = 0; bi < re.bond_count(); ++bi)
    if (!re.bond(bi).aromatic) ++cross;
  EXPECT_EQ(cross, 1);
}

// ---------------------------------------------------- generated library sweep

class LibraryRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LibraryRoundTrip, GeneratedCompoundsRoundTrip) {
  const std::uint64_t seed = GetParam();
  for (std::uint64_t i = 0; i < 25; ++i) {
    const auto mol = chem::generate_compound(seed, i);
    ASSERT_TRUE(mol.connected());
    const std::string smi = chem::write_smiles(mol);
    const auto re = chem::parse_smiles(smi);
    EXPECT_EQ(mol.formula(), re.formula()) << smi;
    EXPECT_EQ(chem::write_smiles(re), smi) << "not canonical: " << smi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LibraryRoundTrip,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull, 99999ull));
