// Integration tests for the IMPECCABLE campaign: the full five-stage
// iterative loop on a small target and library.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/core/campaign.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;

namespace {

core::CampaignConfig tiny_config() {
  core::CampaignConfig cfg;
  cfg.library_size = 60;
  cfg.iterations = 2;
  cfg.bootstrap_docks = 16;
  cfg.dock_top_fraction = 0.25;
  cfg.cg_compounds = 4;
  cfg.top_binders = 2;
  cfg.outliers_per_binder = 2;
  // Slim down every engine for test speed.
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 16;
  cfg.dock.lga.generations = 6;
  cfg.esmacs_cg = fe::cg_config(0.3);
  cfg.esmacs_cg.replicas = 3;
  cfg.esmacs_fg = fe::fg_config(0.1);
  cfg.esmacs_fg.replicas = 4;
  cfg.surrogate.epochs = 3;
  cfg.aae.epochs = 3;
  cfg.seed = 11;
  return cfg;
}

const core::CampaignReport& tiny_report() {
  static const core::CampaignReport report = [] {
    core::Target target = core::Target::make("PLPro-like", 42, 40, 21);
    core::Campaign campaign(std::move(target), tiny_config());
    return campaign.run();
  }();
  return report;
}

}  // namespace

TEST(Campaign, RunsAllIterations) {
  const auto& report = tiny_report();
  ASSERT_EQ(report.iterations.size(), 2u);
  for (const auto& it : report.iterations) {
    EXPECT_GT(it.docked, 0u);
    EXPECT_GT(it.cg_runs, 0u);
    EXPECT_GT(it.fg_runs, 0u);
    EXPECT_GT(it.wall_seconds, 0.0);
  }
}

TEST(Campaign, EveryIterationScreensWholeLibrary) {
  const auto& report = tiny_report();
  // The enrichment denominator is the full library on every iteration —
  // including the warm-up one, whose untrained surrogate still covers the
  // whole library before bootstrap sampling picks the dock set. (A former
  // fallback silently substituted `docked` when ML1 had not stamped it,
  // which inflated effective_ligands_per_second's meaning on iteration 0.)
  EXPECT_EQ(report.iterations[0].library_screened, 60u);
  EXPECT_GT(report.iterations[0].docked, 0u);
  EXPECT_EQ(report.iterations[1].library_screened, 60u);
  EXPECT_LT(report.iterations[1].docked, 60u);
}

TEST(Campaign, EffectiveThroughputExceedsRawAfterMl1) {
  const auto& report = tiny_report();
  const auto& it1 = report.iterations[1];
  // Scientific performance: the library coverage per unit time exceeds the
  // docked-compound count per unit time by the ML1 leverage factor.
  EXPECT_GT(it1.effective_ligands_per_second * it1.wall_seconds,
            static_cast<double>(it1.docked));
}

TEST(Campaign, RecordsArePopulatedConsistently) {
  const auto& report = tiny_report();
  std::size_t docked = 0, cg = 0, fg_energies = 0;
  for (const auto& [id, rec] : report.compounds) {
    EXPECT_FALSE(rec.smiles.empty());
    if (rec.docked) {
      ++docked;
      EXPECT_TRUE(std::isfinite(rec.dock_score));
    }
    if (rec.cg_done) {
      ++cg;
      EXPECT_TRUE(rec.docked);  // CG only runs on docked compounds
      EXPECT_TRUE(std::isfinite(rec.cg_energy));
    }
    fg_energies += rec.fg_energies.size();
  }
  EXPECT_GT(docked, 0u);
  EXPECT_GT(cg, 0u);
  // 2 iterations x top_binders x outliers_per_binder (bounded above).
  EXPECT_GT(fg_energies, 0u);
  EXPECT_LE(fg_energies, 2u * 2u * 2u);
}

TEST(Campaign, CgRankingIsSorted) {
  const auto& report = tiny_report();
  const auto ranking = report.cg_ranking();
  ASSERT_GT(ranking.size(), 1u);
  for (std::size_t i = 1; i < ranking.size(); ++i)
    EXPECT_LE(ranking[i - 1]->cg_energy, ranking[i]->cg_energy);
}

TEST(Campaign, FlopsAccumulatePerComponent) {
  const auto& report = tiny_report();
  EXPECT_GT(report.flops->total("S1"), 0u);
  EXPECT_GT(report.flops->total("S3-CG"), 0u);
  EXPECT_GT(report.flops->total("S3-FG"), 0u);
  EXPECT_GT(report.flops->total("S2"), 0u);
  EXPECT_GT(report.flops->total("ML1"), 0u);  // iteration 1 trained
}

TEST(Campaign, FgEnergiesAttachToTopBinders) {
  const auto& report = tiny_report();
  // Every compound with FG energies must be among the better CG binders.
  const auto ranking = report.cg_ranking();
  std::size_t with_fg = 0;
  for (std::size_t i = 0; i < ranking.size(); ++i)
    if (!ranking[i]->fg_energies.empty()) ++with_fg;
  EXPECT_GT(with_fg, 0u);
}

TEST(Target, MakeIsDeterministic) {
  const auto a = core::Target::make("T", 7, 30, 15);
  const auto b = core::Target::make("T", 7, 30, 15);
  EXPECT_EQ(a.receptor.atoms().size(), b.receptor.atoms().size());
  EXPECT_EQ(a.protein.positions.size(), b.protein.positions.size());
  for (std::size_t i = 0; i < a.protein.positions.size(); ++i)
    EXPECT_EQ(a.protein.positions[i], b.protein.positions[i]);
}

TEST(Campaign, AutoBudgetSizesDockingFromRes) {
  core::CampaignConfig cfg = tiny_config();
  cfg.auto_dock_budget = true;
  cfg.auto_budget_top = 0.05;
  cfg.auto_budget_coverage = 0.5;
  cfg.bootstrap_docks = 24;  // >= 20 docked validation points for the RES
  core::Target target = core::Target::make("auto", 43, 40, 21);
  core::Campaign campaign(std::move(target), cfg);
  const auto report = campaign.run();
  ASSERT_EQ(report.iterations.size(), 2u);
  // The second iteration's budget came from the RES: bounded by the clamp
  // [4, library/2] and by construction different from the bootstrap.
  EXPECT_GE(report.iterations[1].docked, 1u);
  EXPECT_LE(report.iterations[1].docked, cfg.library_size / 2);
}
