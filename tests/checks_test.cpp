// Tests for the IMPECCABLE_CHECKS runtime layer: IMP_CHECK/IMP_DCHECK death
// behavior, bounds-checked Tensor/GridField accessors, and the RNG
// stream-ownership auditor (cross-thread draws die with both contexts;
// explicit handoffs are accepted). This TU is compiled with
// IMPECCABLE_CHECKS=1 (see tests/CMakeLists.txt), which is exactly the
// supported mix: the gate changes code, never layout.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "impeccable/common/checks.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/dock/grid.hpp"
#include "impeccable/ml/tensor.hpp"

using impeccable::common::Rng;

namespace {

TEST(ImpCheck, PassingCheckIsSilent) {
  IMP_CHECK(1 + 1 == 2);
  IMP_CHECK(true, "never printed %d", 7);
  IMP_DCHECK(2 * 2 == 4);
}

TEST(ImpCheckDeathTest, FailureReportsExpressionAndContext) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(IMP_CHECK(1 == 2), "IMP_CHECK failed: 1 == 2");
  EXPECT_DEATH(IMP_CHECK(false, "iteration %d of %d", 3, 8),
               "iteration 3 of 8");
}

TEST(ImpCheckDeathTest, DcheckActiveInThisTu) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(IMP_DCHECK(false, "dcheck context"), "dcheck context");
}

TEST(ImpCheck, ThreadIdsAreSmallAndStable) {
  namespace checks = impeccable::common::checks;
  const std::uint64_t a = checks::this_thread_id();
  EXPECT_EQ(a, checks::this_thread_id());
  std::uint64_t b = 0;
  std::thread t([&] { b = checks::this_thread_id(); });
  t.join();
  EXPECT_NE(a, b);
  EXPECT_GT(b, 0u);
}

// --- Bounds-checked accessors ----------------------------------------------

TEST(BoundsDeathTest, TensorAt2D) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  impeccable::ml::Tensor t({2, 3});
  t.at(1, 2) = 5.0f;  // in bounds
  EXPECT_EQ(t.at(1, 2), 5.0f);
  EXPECT_DEATH(t.at(2, 0), "out of bounds");
  EXPECT_DEATH(t.at(0, -1), "out of bounds");
  EXPECT_DEATH(t.at(0, 0, 0, 0), "4D at\\(\\) on rank-2");
}

TEST(BoundsDeathTest, TensorFlatIndex) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  impeccable::ml::Tensor t({2, 2});
  t[3] = 1.0f;
  EXPECT_DEATH(t[4], "flat index 4, size 4");
}

TEST(BoundsDeathTest, GridFieldAt) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  impeccable::dock::GridField f({0.0, 0.0, 0.0}, 1.0, 4, 4, 4);
  f.at(3, 3, 3) = 2.0;  // in bounds
  EXPECT_EQ(f.at(3, 3, 3), 2.0);
  EXPECT_DEATH(f.at(4, 0, 0), "out of bounds for 4x4x4");
  EXPECT_DEATH(f.at(0, -1, 0), "out of bounds");
}

// --- RNG stream-ownership auditor ------------------------------------------

TEST(RngAudit, SingleThreadOwnsQuietly) {
  Rng r(42);
  std::uint64_t acc = 0;
  for (int i = 0; i < 1000; ++i) acc ^= r.next();
  EXPECT_NE(acc, 0u);
  EXPECT_NE(r.audit().owner(), 0u);
}

TEST(RngAudit, AuditDoesNotPerturbTheStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngAudit, SpawnedStreamsFirstDrawnInWorkersAreOwned) {
  // The library's canonical pattern (dock(), ESMACS replicas): spawn
  // serially on the coordinator, first draw happens in the worker.
  Rng base(123);
  std::vector<Rng> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(base.spawn());
  std::vector<std::uint64_t> drawn(streams.size(), 0);
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < streams.size(); ++i)
    workers.emplace_back([&, i] { drawn[i] = streams[i].next(); });
  for (auto& w : workers) w.join();
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_NE(drawn[i], 0u);
    EXPECT_NE(streams[i].audit().owner(), 0u);
  }
}

TEST(RngAuditDeathTest, CrossThreadDrawWithoutHandoffDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Rng r(1);
        r.next();  // this thread acquires the stream
        std::thread thief([&] { r.next(); });
        thief.join();
      },
      "RNG-ownership audit: thread .* drew from a stream owned by thread");
}

TEST(RngAudit, ExplicitHandoffIsAccepted) {
  Rng r(9);
  const std::uint64_t first = r.next();
  EXPECT_NE(first, 0u);
  r.audit_handoff();
  std::uint64_t second = 0;
  std::thread worker([&] {
    second = r.next();
    r.audit_handoff();  // hand it back before the join
  });
  worker.join();
  EXPECT_NE(second, 0u);
  // Ownership was handed back: the original thread may draw again.
  (void)r.next();

  // The audited sequence matches an undisturbed stream draw-for-draw.
  Rng ref(9);
  EXPECT_EQ(first, ref.next());
  EXPECT_EQ(second, ref.next());
}

TEST(RngAuditDeathTest, HandoffByNonOwnerDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Rng r(2);
        r.next();
        std::thread thief([&] { r.audit_handoff(); });
        thief.join();
      },
      "handoff\\(\\) by thread .* but the stream is owned");
}

TEST(RngAudit, CopyIsAFreshUnownedStream) {
  Rng r(5);
  r.next();
  Rng copy = r;  // copies generator state, not ownership
  EXPECT_EQ(copy.audit().owner(), 0u);
  std::uint64_t v = 0;
  std::thread worker([&] { v = copy.next(); });
  worker.join();
  EXPECT_NE(v, 0u);
  (void)r.next();  // original stream still owned by this thread
}

TEST(RngAudit, ReseedReleasesOwnership) {
  Rng r(3);
  r.next();
  r.reseed(11);  // owner may reseed; ownership transfers to the next drawer
  std::uint64_t v = 0;
  std::thread worker([&] { v = r.next(); });
  worker.join();
  Rng ref(11);
  EXPECT_EQ(v, ref.next());
}

TEST(RngAuditDeathTest, ReseedByNonOwnerDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Rng r(4);
        r.next();
        std::thread thief([&] { r.reseed(99); });
        thief.join();
      },
      "handoff\\(\\) by thread .* but the stream is owned");
}

}  // namespace
