// Tests for the third extension wave: structure/trajectory file I/O,
// block-average error analysis, and RAPTOR worker fault tolerance.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "impeccable/common/rng.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/md/io.hpp"
#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/rct/raptor.hpp"

namespace md = impeccable::md;
namespace rct = impeccable::rct;
namespace stats = impeccable::common;
using impeccable::common::Rng;

namespace {

std::filesystem::path tmp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

}  // namespace

// ---------------------------------------------------------------- io

TEST(Io, PdbHasOneRecordPerBead) {
  md::ProteinOptions popts;
  popts.residues = 12;
  const auto sys = md::build_protein(3, popts);
  const auto path = tmp_file("imp_test.pdb");
  md::write_pdb(sys, sys.positions, path.string());

  std::ifstream f(path);
  std::string line;
  int atoms = 0;
  bool end_seen = false;
  while (std::getline(f, line)) {
    if (line.rfind("ATOM", 0) == 0 || line.rfind("HETATM", 0) == 0) ++atoms;
    if (line.rfind("END", 0) == 0) end_seen = true;
  }
  EXPECT_EQ(atoms, 12);
  EXPECT_TRUE(end_seen);
  std::filesystem::remove(path);
}

TEST(Io, PdbRejectsMismatchedPositions) {
  md::ProteinOptions popts;
  popts.residues = 5;
  const auto sys = md::build_protein(3, popts);
  std::vector<impeccable::common::Vec3> wrong(3);
  EXPECT_THROW(md::write_pdb(sys, wrong, tmp_file("x.pdb").string()),
               std::invalid_argument);
}

TEST(Io, XyzRoundTripsTrajectory) {
  md::ProteinOptions popts;
  popts.residues = 10;
  const auto sys = md::build_protein(5, popts);
  md::SimulationOptions so;
  so.equilibration_steps = 10;
  so.production_steps = 60;
  so.report_interval = 20;
  const auto res = md::run_replica(sys, so, 2);

  const auto path = tmp_file("imp_test.xyz");
  md::write_xyz(res.trajectory, path.string());
  const auto back = md::read_xyz(path.string());
  ASSERT_EQ(back.size(), res.trajectory.size());
  for (std::size_t fidx = 0; fidx < back.size(); ++fidx) {
    ASSERT_EQ(back.frames[fidx].positions.size(),
              res.trajectory.frames[fidx].positions.size());
    for (std::size_t i = 0; i < back.frames[fidx].positions.size(); ++i)
      EXPECT_NEAR(impeccable::common::distance(
                      back.frames[fidx].positions[i],
                      res.trajectory.frames[fidx].positions[i]),
                  0.0, 1e-5);
  }
  std::filesystem::remove(path);
}

TEST(Io, XyzRejectsGarbage) {
  const auto path = tmp_file("imp_bad.xyz");
  {
    std::ofstream f(path);
    f << "not a count\ncomment\n";
  }
  EXPECT_THROW(md::read_xyz(path.string()), std::runtime_error);
  {
    std::ofstream f(path);
    f << "3\ncomment\nC 1 2 3\n";  // truncated frame
  }
  EXPECT_THROW(md::read_xyz(path.string()), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(md::read_xyz("/nonexistent/file.xyz"), std::runtime_error);
}

// ------------------------------------------------------------ block averaging

TEST(BlockAverage, MatchesPlainSemForIidData) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(rng.gauss(0, 1));
  const double plain = stats::std_error(xs);
  const double block = stats::block_average_error(xs);
  EXPECT_GE(block, plain * 0.9);
  EXPECT_LE(block, plain * 1.8);
}

TEST(BlockAverage, ExceedsPlainSemForCorrelatedData) {
  // AR(1) with strong autocorrelation: the naive SEM badly underestimates.
  Rng rng(7);
  std::vector<double> xs;
  double x = 0.0;
  const double phi = 0.95;
  for (int i = 0; i < 4096; ++i) {
    x = phi * x + rng.gauss(0, 1);
    xs.push_back(x);
  }
  const double plain = stats::std_error(xs);
  const double block = stats::block_average_error(xs);
  EXPECT_GT(block, 2.0 * plain);
}

TEST(BlockAverage, SmallInputsAreSafe) {
  EXPECT_EQ(stats::block_average_error({}), 0.0);
  const std::vector<double> one{1.0};
  EXPECT_EQ(stats::block_average_error(one), 0.0);
  const std::vector<double> two{1.0, 2.0};
  EXPECT_GT(stats::block_average_error(two), 0.0);
}

// ------------------------------------------------------------ raptor failures

TEST(RaptorFailures, AllTasksCompleteDespiteWorkerDeaths) {
  const auto durations = rct::docking_durations(4000, 0.2, 8);
  rct::RaptorOptions opts;
  opts.workers = 16;
  opts.bulk_size = 16;
  opts.worker_failure_rate = 0.02;
  const auto stats = rct::run_raptor(opts, durations);
  EXPECT_EQ(stats.tasks, durations.size());
  EXPECT_GT(stats.workers_failed, 0);
  EXPECT_GE(stats.bulks_requeued,
            static_cast<std::size_t>(stats.workers_failed));
  EXPECT_LT(stats.workers_failed, 16);  // some workers survive
}

TEST(RaptorFailures, ThroughputDegradesGracefully) {
  const auto durations = rct::docking_durations(4000, 0.2, 9);
  rct::RaptorOptions healthy;
  healthy.workers = 16;
  healthy.bulk_size = 16;
  rct::RaptorOptions flaky = healthy;
  flaky.worker_failure_rate = 0.01;
  const auto a = rct::run_raptor(healthy, durations);
  const auto b = rct::run_raptor(flaky, durations);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_LE(b.throughput_per_hour, a.throughput_per_hour);
  // Losing a few workers must not collapse throughput.
  EXPECT_GT(b.throughput_per_hour, 0.3 * a.throughput_per_hour);
}

TEST(RaptorFailures, ZeroRateReproducesBaseline) {
  const auto durations = rct::docking_durations(1000, 0.2, 10);
  rct::RaptorOptions opts;
  opts.workers = 8;
  const auto a = rct::run_raptor(opts, durations);
  opts.worker_failure_rate = 0.0;
  const auto b = rct::run_raptor(opts, durations);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.workers_failed, 0);
  EXPECT_EQ(a.bulks_requeued, 0u);
}
