// Batched scorer tests (score_batch.hpp):
//  - lane equivalence: evaluate_batch / evaluate_with_gradient_batch must
//    reproduce the scalar evaluate / evaluate_with_gradient bit for bit at
//    every batch size 1..kMaxBatchPoses, including partial batches and poses
//    far outside the grid box (wall-penalty lanes next to in-box lanes);
//  - evaluation accounting: the work-unit counter advances once per pose,
//    never once per batch;
//  - a counting global allocator proves steady-state batched evaluation
//    performs no heap allocation, including when batch sizes alternate;
//  - LGA trajectory identity: run_lga with batching disabled and enabled
//    returns bitwise-identical best poses, energies, and evaluation counts
//    from the same seed (batching is a pure throughput knob);
//  - batch observability: dock.batch.poses / dock.batch.fill are recorded
//    when a recorder is installed.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"
#include "impeccable/dock/score_batch.hpp"
#include "impeccable/dock/search.hpp"
#include "impeccable/obs/recorder.hpp"

namespace dock = impeccable::dock;
namespace chem = impeccable::chem;
namespace obs = impeccable::obs;
using impeccable::common::Rng;
using impeccable::common::Vec3;

// ----------------------------------------------------- counting allocator

namespace {
std::atomic<std::uint64_t> g_allocations{0};

// Opaque to the inliner (see dock_scorer_test.cpp for why).
[[gnu::noinline]] void counted_free(void* p) noexcept { std::free(p); }
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

namespace {

std::shared_ptr<const dock::AffinityGrid> test_grid(std::uint64_t seed = 1) {
  const auto receptor = dock::Receptor::synthesize("BATCH", seed);
  dock::GridOptions gopts;
  gopts.nodes = 25;
  return dock::compute_grid(receptor, gopts);
}

/// Poses for one equivalence round: mostly near the pocket, every third far
/// outside the box so wall-penalty lanes sit next to in-box lanes.
std::vector<dock::Pose> make_poses(const dock::Ligand& lig,
                                   const dock::AffinityGrid& grid, int count,
                                   Rng& rng) {
  std::vector<dock::Pose> poses;
  poses.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    dock::Pose p = lig.random_pose(grid.pocket_center, 3.0, rng);
    if (i % 3 == 2)
      p.translation += Vec3{rng.uniform(25, 70), rng.uniform(-70, -25),
                            rng.uniform(25, 70)};
    poses.push_back(std::move(p));
  }
  return poses;
}

void expect_pose_eq(const dock::Pose& a, const dock::Pose& b) {
  EXPECT_EQ(a.translation.x, b.translation.x);
  EXPECT_EQ(a.translation.y, b.translation.y);
  EXPECT_EQ(a.translation.z, b.translation.z);
  EXPECT_EQ(a.qw, b.qw);
  EXPECT_EQ(a.qx, b.qx);
  EXPECT_EQ(a.qy, b.qy);
  EXPECT_EQ(a.qz, b.qz);
  ASSERT_EQ(a.torsions.size(), b.torsions.size());
  for (std::size_t t = 0; t < a.torsions.size(); ++t)
    EXPECT_EQ(a.torsions[t], b.torsions[t]);
}

}  // namespace

// ---------------------------------------------------------- lane equivalence

TEST(BatchEquivalence, EnergiesMatchScalarAtEveryBatchSize) {
  const auto grid = test_grid(17);
  const char* smiles[] = {
      "CCO",                          // rigid, tiny
      "CC(=O)Oc1ccccc1C(=O)O",        // aspirin, torsions
      "CC(C)Cc1ccc(cc1)C(C)C(=O)O",   // ibuprofen, more torsions
  };

  Rng rng(211);
  for (const char* smi : smiles) {
    const auto mol = chem::parse_smiles(smi);
    const dock::Ligand lig(mol, 5);
    const dock::ScoringFunction score(*grid, lig);
    dock::ScorerScratch scratch;
    dock::BatchScratch bscratch;

    for (int count = 1; count <= dock::kMaxBatchPoses; ++count) {
      const auto poses = make_poses(lig, *grid, count, rng);
      dock::PoseBatch batch;
      for (const auto& p : poses) batch.push(p);

      double energies[dock::kMaxBatchPoses];
      score.evaluate_batch(batch, bscratch, energies);
      for (int l = 0; l < count; ++l) {
        const double scalar =
            score.evaluate(poses[static_cast<std::size_t>(l)], scratch);
        EXPECT_EQ(energies[l], scalar)
            << smi << " batch=" << count << " lane=" << l;
      }
    }
  }
}

TEST(BatchEquivalence, GradientsMatchScalarAtEveryBatchSize) {
  const auto grid = test_grid(19);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 5);
  const dock::ScoringFunction score(*grid, lig);
  dock::ScorerScratch scratch;
  dock::BatchScratch bscratch;

  Rng rng(223);
  for (int count = 1; count <= dock::kMaxBatchPoses; ++count) {
    const auto poses = make_poses(lig, *grid, count, rng);
    dock::PoseBatch batch;
    for (const auto& p : poses) batch.push(p);

    double energies[dock::kMaxBatchPoses];
    std::vector<dock::PoseGradient> grads(static_cast<std::size_t>(count));
    score.evaluate_with_gradient_batch(batch, bscratch, energies,
                                       grads.data());
    for (int l = 0; l < count; ++l) {
      const std::size_t sl = static_cast<std::size_t>(l);
      dock::PoseGradient ref;
      const double scalar =
          score.evaluate_with_gradient(poses[sl], scratch, ref);
      EXPECT_EQ(energies[l], scalar) << "batch=" << count << " lane=" << l;
      EXPECT_EQ(grads[sl].translation.x, ref.translation.x);
      EXPECT_EQ(grads[sl].translation.y, ref.translation.y);
      EXPECT_EQ(grads[sl].translation.z, ref.translation.z);
      EXPECT_EQ(grads[sl].torque.x, ref.torque.x);
      EXPECT_EQ(grads[sl].torque.y, ref.torque.y);
      EXPECT_EQ(grads[sl].torque.z, ref.torque.z);
      ASSERT_EQ(grads[sl].torsions.size(), ref.torsions.size());
      for (std::size_t t = 0; t < ref.torsions.size(); ++t)
        EXPECT_EQ(grads[sl].torsions[t], ref.torsions[t])
            << "batch=" << count << " lane=" << l << " torsion=" << t;
    }
  }
}

TEST(BatchEquivalence, BatchedGridSamplersMatchScalarSamplers) {
  const auto grid = test_grid(23);
  const dock::GridField& aff = grid->map(dock::ProbeType::Aromatic);
  const dock::GridField& ele = grid->electrostatic;

  Rng rng(227);
  for (int lanes : {4, 8, 16}) {
    std::vector<double> xs(static_cast<std::size_t>(lanes)),
        ys(static_cast<std::size_t>(lanes)), zs(static_cast<std::size_t>(lanes));
    std::vector<Vec3> pts(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      const double span = (l % 3 == 0) ? 80.0 : 12.0;
      const Vec3 p = grid->pocket_center + Vec3{rng.uniform(-span, span),
                                                rng.uniform(-span, span),
                                                rng.uniform(-span, span)};
      pts[static_cast<std::size_t>(l)] = p;
      xs[static_cast<std::size_t>(l)] = p.x;
      ys[static_cast<std::size_t>(l)] = p.y;
      zs[static_cast<std::size_t>(l)] = p.z;
    }

    std::vector<double> sv(static_cast<std::size_t>(lanes)),
        ov(static_cast<std::size_t>(lanes));
    aff.sample_pair_values_batch(xs.data(), ys.data(), zs.data(), lanes, ele,
                                 sv.data(), ov.data());

    std::vector<double> gsv(static_cast<std::size_t>(lanes)),
        gsx(static_cast<std::size_t>(lanes)), gsy(static_cast<std::size_t>(lanes)),
        gsz(static_cast<std::size_t>(lanes)), gov(static_cast<std::size_t>(lanes)),
        gox(static_cast<std::size_t>(lanes)), goy(static_cast<std::size_t>(lanes)),
        goz(static_cast<std::size_t>(lanes));
    aff.sample_pair_batch(xs.data(), ys.data(), zs.data(), lanes, ele,
                          gsv.data(), gsx.data(), gsy.data(), gsz.data(),
                          gov.data(), gox.data(), goy.data(), goz.data());

    for (int l = 0; l < lanes; ++l) {
      const std::size_t sl = static_cast<std::size_t>(l);
      double va, ve;
      aff.sample_pair_values(pts[sl], ele, va, ve);
      EXPECT_EQ(sv[sl], va) << "lanes=" << lanes << " l=" << l;
      EXPECT_EQ(ov[sl], ve) << "lanes=" << lanes << " l=" << l;

      dock::FieldSample fa, fe;
      aff.sample_pair(pts[sl], ele, fa, fe);
      EXPECT_EQ(gsv[sl], fa.value);
      EXPECT_EQ(gsx[sl], fa.gradient.x);
      EXPECT_EQ(gsy[sl], fa.gradient.y);
      EXPECT_EQ(gsz[sl], fa.gradient.z);
      EXPECT_EQ(gov[sl], fe.value);
      EXPECT_EQ(gox[sl], fe.gradient.x);
      EXPECT_EQ(goy[sl], fe.gradient.y);
      EXPECT_EQ(goz[sl], fe.gradient.z);
    }
  }
}

// ------------------------------------------------------ evaluation counting

TEST(BatchAccounting, EvaluationsAdvancePerPoseNotPerBatch) {
  const auto grid = test_grid(29);
  const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);
  dock::BatchScratch bscratch;

  Rng rng(233);
  std::uint64_t expected = score.evaluations();
  EXPECT_EQ(expected, 0u);
  for (int count : {1, 3, 8, 16}) {
    const auto poses = make_poses(lig, *grid, count, rng);
    dock::PoseBatch batch;
    for (const auto& p : poses) batch.push(p);

    double energies[dock::kMaxBatchPoses];
    score.evaluate_batch(batch, bscratch, energies);
    expected += static_cast<std::uint64_t>(count);
    EXPECT_EQ(score.evaluations(), expected) << "count=" << count;

    std::vector<dock::PoseGradient> grads(static_cast<std::size_t>(count));
    score.evaluate_with_gradient_batch(batch, bscratch, energies, grads.data());
    expected += static_cast<std::uint64_t>(count);
    EXPECT_EQ(score.evaluations(), expected) << "count=" << count;
  }

  // An empty batch is a no-op: no evaluations, no writes.
  dock::PoseBatch empty;
  double sentinel = 42.0;
  score.evaluate_batch(empty, bscratch, &sentinel);
  EXPECT_EQ(score.evaluations(), expected);
  EXPECT_EQ(sentinel, 42.0);
}

// ------------------------------------------------------------- allocation

TEST(BatchAllocation, SteadyStateBatchedEvaluationIsAllocationFree) {
  const auto grid = test_grid(31);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);
  dock::BatchScratch bscratch;

  Rng rng(239);
  const auto poses = make_poses(lig, *grid, dock::kMaxBatchPoses, rng);
  std::vector<dock::PoseGradient> grads(poses.size());

  // Batches of every size over the same pose storage; sizes deliberately
  // alternate so plane sizing for one count must not realloc for another.
  auto batch_of = [&](int count) {
    dock::PoseBatch b;
    for (int l = 0; l < count; ++l)
      b.push(poses[static_cast<std::size_t>(l)]);
    return b;
  };

  double energies[dock::kMaxBatchPoses];
  // Warm-up: sizes the planes and every gradient's torsion vector.
  for (int count : {16, 1, 5, 8}) {
    const dock::PoseBatch b = batch_of(count);
    score.evaluate_batch(b, bscratch, energies);
    score.evaluate_with_gradient_batch(b, bscratch, energies, grads.data());
  }

  const std::uint64_t before = g_allocations.load();
  double sink = 0.0;
  for (int it = 0; it < 100; ++it) {
    for (int count : {8, 16, 3, 1, 12}) {
      const dock::PoseBatch b = batch_of(count);
      score.evaluate_batch(b, bscratch, energies);
      sink += energies[0];
      score.evaluate_with_gradient_batch(b, bscratch, energies, grads.data());
      sink += energies[count - 1];
    }
  }
  EXPECT_EQ(g_allocations.load(), before) << "sink=" << sink;
}

// ------------------------------------------------------ trajectory identity

TEST(BatchLga, TrajectoryBitwiseIdenticalWithAndWithoutBatching) {
  const auto grid = test_grid(37);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score_a(*grid, lig);
  const dock::ScoringFunction score_b(*grid, lig);

  dock::LgaOptions base;
  base.population = 14;   // not a multiple of any batch size: remainders hit
  base.generations = 6;
  base.local_search = dock::LocalSearchMethod::Adadelta;
  base.ad.max_iterations = 10;

  for (int batch : {2, 5, 8, 16}) {
    dock::LgaOptions scalar_opts = base;
    scalar_opts.score_batch = 0;
    dock::LgaOptions batch_opts = base;
    batch_opts.score_batch = batch;

    Rng rng_a(4242), rng_b(4242);
    const std::uint64_t a0 = score_a.evaluations();
    const std::uint64_t b0 = score_b.evaluations();
    const dock::LgaResult a = dock::run_lga(score_a, rng_a, scalar_opts);
    const dock::LgaResult b = dock::run_lga(score_b, rng_b, batch_opts);

    EXPECT_EQ(a.best_energy, b.best_energy) << "batch=" << batch;
    expect_pose_eq(a.best_pose, b.best_pose);
    EXPECT_EQ(a.evaluations, b.evaluations) << "batch=" << batch;
    EXPECT_EQ(score_a.evaluations() - a0, score_b.evaluations() - b0);
    ASSERT_EQ(a.best_coords.size(), b.best_coords.size());
    for (std::size_t i = 0; i < a.best_coords.size(); ++i) {
      EXPECT_EQ(a.best_coords[i].x, b.best_coords[i].x);
      EXPECT_EQ(a.best_coords[i].y, b.best_coords[i].y);
      EXPECT_EQ(a.best_coords[i].z, b.best_coords[i].z);
    }
  }
}

TEST(BatchLga, SolisWetsTrajectoryAlsoIdentical) {
  // Solis–Wets stays inline (it draws RNG); only plain evaluations batch.
  const auto grid = test_grid(41);
  const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);

  dock::LgaOptions base;
  base.population = 11;
  base.generations = 4;
  base.local_search = dock::LocalSearchMethod::SolisWets;
  base.sw.max_iterations = 15;

  dock::LgaOptions scalar_opts = base;
  scalar_opts.score_batch = 0;
  dock::LgaOptions batch_opts = base;
  batch_opts.score_batch = 8;

  Rng rng_a(777), rng_b(777);
  const dock::LgaResult a = dock::run_lga(score, rng_a, scalar_opts);
  const dock::LgaResult b = dock::run_lga(score, rng_b, batch_opts);
  EXPECT_EQ(a.best_energy, b.best_energy);
  expect_pose_eq(a.best_pose, b.best_pose);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// ----------------------------------------------------------- observability

TEST(BatchObservability, BatchMetricsRecordedWhenRecorderInstalled) {
  const auto grid = test_grid(43);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);

  obs::Recorder rec;
  obs::ScopedRecorder install(&rec);

  dock::LgaOptions opts;
  opts.population = 12;
  opts.generations = 3;
  opts.score_batch = 8;
  opts.ad.max_iterations = 5;
  Rng rng(999);
  dock::run_lga(score, rng, opts);

  const std::uint64_t poses = rec.metrics().counter("dock.batch.poses").value();
  EXPECT_GT(poses, 0u);
  const auto fills = rec.metrics().histogram("dock.batch.fill").snapshot();
  EXPECT_GT(fills.count, 0u);
  EXPECT_GE(fills.min, 1.0);
  EXPECT_LE(fills.max, static_cast<double>(dock::kMaxBatchPoses));

  // The batch spans flowed into the trace.
  const obs::Trace trace = rec.take();
  bool saw_batch_span = false;
  for (const auto& s : trace.spans)
    if (s.name == "lga.batch" || s.name == "lga.ls_batch") saw_batch_span = true;
  EXPECT_TRUE(saw_batch_span);
}
