// HPC substrate + RCT infrastructure tests: DES determinism, cluster
// placement/queueing/utilization, flop accounting, both execution backends,
// EnTK pipelines with adaptivity, and the RAPTOR overlay.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "impeccable/hpc/cluster.hpp"
#include "impeccable/hpc/des.hpp"
#include "impeccable/hpc/flops.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/raptor.hpp"

namespace hpc = impeccable::hpc;
namespace rct = impeccable::rct;

// ---------------------------------------------------------------- Simulator

TEST(Des, EventsRunInTimeOrder) {
  hpc::Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Des, TiesBreakByInsertionOrder) {
  hpc::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, CallbacksCanScheduleMore) {
  hpc::Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Des, RejectsPastEvents) {
  hpc::Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Des, RunUntilStopsAtBoundary) {
  hpc::Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

// ---------------------------------------------------------------- Cluster

TEST(Cluster, PlacesWithinCapacityAndQueuesBeyond) {
  hpc::Simulator sim;
  hpc::ClusterSim cluster(sim, hpc::test_machine(1));  // 6 GPUs
  int started = 0;
  std::vector<hpc::Placement> placements;
  for (int i = 0; i < 8; ++i) {
    cluster.submit({1, 1, 0}, [&](const hpc::Placement& p) {
      ++started;
      placements.push_back(p);
    });
  }
  sim.run();
  EXPECT_EQ(started, 6);  // only 6 GPUs
  EXPECT_EQ(cluster.queued(), 2u);
  // Releasing lets the queue drain.
  cluster.release({1, 1, 0}, placements[0]);
  cluster.release({1, 1, 0}, placements[1]);
  sim.run();
  EXPECT_EQ(started, 8);
  EXPECT_EQ(cluster.queued(), 0u);
}

TEST(Cluster, WholeNodeAllocation) {
  hpc::Simulator sim;
  hpc::ClusterSim cluster(sim, hpc::test_machine(4));
  hpc::Placement got;
  cluster.submit({0, 0, 3}, [&](const hpc::Placement& p) { got = p; });
  sim.run();
  EXPECT_EQ(got.node_count, 3);
  EXPECT_EQ(got.gpus, 18);
  EXPECT_EQ(cluster.busy_gpus(), 18);
  cluster.release({0, 0, 3}, got);
  EXPECT_EQ(cluster.busy_gpus(), 0);
}

TEST(Cluster, RejectsOversizedRequests) {
  hpc::Simulator sim;
  hpc::ClusterSim cluster(sim, hpc::test_machine(2));
  EXPECT_THROW(cluster.submit({1, 7, 0}, [](const hpc::Placement&) {}),
               std::invalid_argument);
  EXPECT_THROW(cluster.submit({0, 0, 3}, [](const hpc::Placement&) {}),
               std::invalid_argument);
}

TEST(Cluster, UtilizationTimeSeriesTracksLoad) {
  hpc::Simulator sim;
  hpc::ClusterSim cluster(sim, hpc::test_machine(1));
  // Occupy all 6 GPUs from t=0 to t=10.
  std::vector<hpc::Placement> ps(6);
  for (int i = 0; i < 6; ++i) {
    cluster.submit({1, 1, 0}, [&, i](const hpc::Placement& p) {
      ps[static_cast<std::size_t>(i)] = p;
      sim.schedule_at(10.0, [&, i] { cluster.release({1, 1, 0}, ps[static_cast<std::size_t>(i)]); });
    });
  }
  sim.run();
  EXPECT_NEAR(cluster.mean_gpu_utilization(0.0, 10.0), 1.0, 1e-9);
  EXPECT_NEAR(cluster.mean_gpu_utilization(10.0, 20.0), 0.0, 1e-9);
  EXPECT_NEAR(cluster.mean_gpu_utilization(0.0, 20.0), 0.5, 1e-9);
}

// ---------------------------------------------------------------- Flops

TEST(Flops, TallyAndRates) {
  hpc::FlopCounter fc;
  fc.add("S1", 1000);
  fc.add("S1", 500);
  fc.add("ML1", 2000);
  EXPECT_EQ(fc.total("S1"), 1500u);
  EXPECT_EQ(fc.total("none"), 0u);
  EXPECT_EQ(fc.grand_total(), 3500u);
  EXPECT_DOUBLE_EQ(hpc::FlopCounter::tflops(2e12, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(hpc::FlopCounter::tflops(1e12, 0.0), 0.0);
  fc.reset();
  EXPECT_EQ(fc.grand_total(), 0u);
}

// ---------------------------------------------------------------- SimBackend

TEST(SimBackend, ExecutesTasksInVirtualTime) {
  rct::SimBackend backend(hpc::test_machine(1));
  std::vector<rct::TaskResult> results;
  for (int i = 0; i < 3; ++i) {
    rct::TaskDescription t;
    t.name = "t" + std::to_string(i);
    t.gpus = 1;
    t.duration = 10.0;
    backend.submit(t, [&](const rct::TaskResult& r) { results.push_back(r); });
  }
  backend.drain();
  ASSERT_EQ(results.size(), 3u);
  // All three fit concurrently on 6 GPUs: end ~ overhead + 10.
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok);
    EXPECT_NEAR(r.end_time, 10.05, 1e-9);
  }
}

TEST(SimBackend, SerializesWhenResourcesAreScarce) {
  hpc::MachineSpec one = hpc::test_machine(1);
  one.gpus_per_node = 1;
  rct::SimBackend backend(one);
  std::vector<double> ends;
  for (int i = 0; i < 3; ++i) {
    rct::TaskDescription t;
    t.gpus = 1;
    t.duration = 5.0;
    backend.submit(t, [&](const rct::TaskResult& r) { ends.push_back(r.end_time); });
  }
  backend.drain();
  ASSERT_EQ(ends.size(), 3u);
  std::sort(ends.begin(), ends.end());
  EXPECT_GT(ends[1], ends[0] + 4.9);
  EXPECT_GT(ends[2], ends[1] + 4.9);
}

TEST(SimBackend, RunsPayloadAndReportsFailure) {
  rct::SimBackend backend(hpc::test_machine(1));
  bool ran = false;
  rct::TaskDescription ok;
  ok.payload = [&] { ran = true; };
  rct::TaskDescription bad;
  bad.payload = [] { throw std::runtime_error("sim boom"); };
  rct::TaskResult rok, rbad;
  backend.submit(ok, [&](const rct::TaskResult& r) { rok = r; });
  backend.submit(bad, [&](const rct::TaskResult& r) { rbad = r; });
  backend.drain();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(rok.ok);
  EXPECT_FALSE(rbad.ok);
  EXPECT_EQ(rbad.error, "sim boom");
}

// ---------------------------------------------------------------- LocalBackend

TEST(LocalBackend, ExecutesPayloadsConcurrently) {
  rct::LocalBackend backend(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    rct::TaskDescription t;
    t.payload = [&] { count.fetch_add(1); };
    backend.submit(t, [](const rct::TaskResult&) {});
  }
  backend.drain();
  EXPECT_EQ(count.load(), 20);
}

TEST(LocalBackend, ReportsExceptionsAsFailures) {
  rct::LocalBackend backend(2);
  rct::TaskResult seen;
  rct::TaskDescription t;
  t.name = "boom";
  t.payload = [] { throw std::runtime_error("local boom"); };
  backend.submit(t, [&](const rct::TaskResult& r) { seen = r; });
  backend.drain();
  EXPECT_FALSE(seen.ok);
  EXPECT_EQ(seen.error, "local boom");
  EXPECT_EQ(seen.name, "boom");
}

// ---------------------------------------------------------------- EnTK

namespace {

rct::TaskDescription sim_task(const std::string& name, double duration,
                              int gpus = 1) {
  rct::TaskDescription t;
  t.name = name;
  t.gpus = gpus;
  t.duration = duration;
  return t;
}

}  // namespace

TEST(Entk, StagesRunSequentiallyTasksConcurrently) {
  rct::SimBackend backend(hpc::test_machine(2));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 1.0});

  rct::Pipeline p("p");
  rct::Stage s1{"s1", {sim_task("a", 10), sim_task("b", 10)}, nullptr};
  rct::Stage s2{"s2", {sim_task("c", 5)}, nullptr};
  p.add_stage(s1);
  p.add_stage(s2);

  const auto results = mgr.run({std::move(p)});
  ASSERT_EQ(results.size(), 3u);
  double end_a = 0, start_c = 1e18;
  for (const auto& r : results) {
    if (r.name == "a" || r.name == "b") end_a = std::max(end_a, r.end_time);
    if (r.name == "c") start_c = r.start_time;
  }
  // Stage 2 starts only after stage 1 + transition overhead.
  EXPECT_GE(start_c, end_a + 1.0 - 1e-9);
}

TEST(Entk, PipelinesProgressIndependently) {
  rct::SimBackend backend(hpc::test_machine(4));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});

  rct::Pipeline fast("fast");
  fast.add_stage({"f1", {sim_task("f", 1)}, nullptr});
  fast.add_stage({"f2", {sim_task("g", 1)}, nullptr});
  rct::Pipeline slow("slow");
  slow.add_stage({"s1", {sim_task("s", 50)}, nullptr});

  const auto results = mgr.run({std::move(fast), std::move(slow)});
  double g_end = 0, s_end = 0;
  for (const auto& r : results) {
    if (r.name == "g") g_end = r.end_time;
    if (r.name == "s") s_end = r.end_time;
  }
  // The fast pipeline's second stage finishes long before the slow one —
  // "each pipeline can progress at its own pace".
  EXPECT_LT(g_end, s_end);
}

TEST(Entk, PostExecAdaptivityAppendsStages) {
  rct::SimBackend backend(hpc::test_machine(1));
  rct::AppManager mgr(backend, {.stage_transition_overhead = 0.0});

  int rounds = 0;
  std::function<void(rct::Pipeline&)> extend = [&](rct::Pipeline& pipe) {
    if (++rounds < 3) {
      rct::Stage next{"adaptive" + std::to_string(rounds),
                      {sim_task("r" + std::to_string(rounds), 1)},
                      extend};
      pipe.add_stage(std::move(next));
    }
  };

  rct::Pipeline p("adaptive");
  p.add_stage({"seed", {sim_task("r0", 1)}, extend});
  const auto results = mgr.run({std::move(p)});
  EXPECT_EQ(rounds, 3);
  EXPECT_EQ(results.size(), 3u);  // r0, r1, r2
}

TEST(Entk, HeterogeneousTasksMixInOneStage) {
  rct::SimBackend backend(hpc::test_machine(4));
  rct::AppManager mgr(backend);
  rct::Pipeline p("hetero");
  rct::TaskDescription gpu = sim_task("gpu", 5, 1);
  rct::TaskDescription cpu;
  cpu.name = "cpu";
  cpu.cpus = 8;
  cpu.duration = 5;
  rct::TaskDescription mpi;
  mpi.name = "mpi";
  mpi.whole_nodes = 2;
  mpi.duration = 5;
  p.add_stage({"mix", {gpu, cpu, mpi}, nullptr});
  const auto results = mgr.run({std::move(p)});
  EXPECT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.ok);
  EXPECT_EQ(mgr.tasks_failed(), 0u);
}

TEST(Entk, WorksOnLocalBackendWithRealPayloads) {
  rct::LocalBackend backend(3);
  rct::AppManager mgr(backend);
  std::atomic<int> stage1{0}, stage2{0};
  rct::Pipeline p("local");
  rct::Stage s1{"s1", {}, nullptr};
  for (int i = 0; i < 6; ++i) {
    rct::TaskDescription t;
    t.name = "w" + std::to_string(i);
    t.payload = [&] { stage1.fetch_add(1); };
    s1.tasks.push_back(std::move(t));
  }
  rct::Stage s2{"s2", {}, nullptr};
  rct::TaskDescription t2;
  t2.name = "check";
  t2.payload = [&] { stage2.store(stage1.load()); };
  s2.tasks.push_back(std::move(t2));
  p.add_stage(std::move(s1));
  p.add_stage(std::move(s2));
  mgr.run({std::move(p)});
  // Stage barrier: the check task observed all six stage-1 tasks done.
  EXPECT_EQ(stage2.load(), 6);
}

// ---------------------------------------------------------------- RAPTOR

TEST(Raptor, CompletesAllTasks) {
  const auto durations = rct::docking_durations(500, 0.4, 1);
  rct::RaptorOptions opts;
  opts.workers = 12;
  const auto stats = rct::run_raptor(opts, durations);
  EXPECT_EQ(stats.tasks, 500u);
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.throughput_per_hour, 0.0);
}

TEST(Raptor, UtilizationHighUnderLoad) {
  // Many bulks per worker (the production regime: millions of docks per
  // allocation) — demand-driven refill balances the heavy-tailed durations.
  const auto durations = rct::docking_durations(20000, 0.1, 2);
  rct::RaptorOptions opts;
  opts.workers = 24;
  const auto stats = rct::run_raptor(opts, durations);
  EXPECT_GT(stats.worker_utilization, 0.85);
  EXPECT_LT(stats.load_imbalance, 1.2);
}

TEST(Raptor, FewBulksPerWorkerDegradesBalance) {
  // The converse: bulk granularity dominates when each worker only sees one
  // or two bulks — documents why bulk size must stay small vs. tasks/worker.
  const auto durations = rct::docking_durations(2000, 0.1, 2);
  rct::RaptorOptions coarse;
  coarse.workers = 24;
  coarse.bulk_size = 64;
  rct::RaptorOptions fine = coarse;
  fine.bulk_size = 8;
  const auto a = rct::run_raptor(coarse, durations);
  const auto b = rct::run_raptor(fine, durations);
  EXPECT_GT(b.worker_utilization, a.worker_utilization);
}

TEST(Raptor, ThroughputScalesNearLinearly) {
  // Same per-worker load at two scales; throughput should roughly double.
  rct::RaptorOptions small;
  small.workers = 12;
  small.masters = 1;
  rct::RaptorOptions big = small;
  big.workers = 24;
  big.masters = 2;
  const auto d_small = rct::docking_durations(1200, 0.4, 3);
  const auto d_big = rct::docking_durations(2400, 0.4, 3);
  const auto s = rct::run_raptor(small, d_small);
  const auto b = rct::run_raptor(big, d_big);
  const double ratio = b.throughput_per_hour / s.throughput_per_hour;
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

TEST(Raptor, SingleMasterSaturatesManyWorkers) {
  // With a slow master and many workers, adding a second master must help.
  rct::RaptorOptions one;
  one.workers = 256;
  one.masters = 1;
  one.bulk_size = 4;
  one.bulk_overhead = 5e-3;
  rct::RaptorOptions two = one;
  two.masters = 8;
  const auto durations = rct::docking_durations(20000, 0.05, 4);
  const auto a = rct::run_raptor(one, durations);
  const auto b = rct::run_raptor(two, durations);
  EXPECT_GT(b.throughput_per_hour, a.throughput_per_hour * 1.5);
}

TEST(Raptor, RejectsBadConfig) {
  EXPECT_THROW(rct::run_raptor({.masters = 0}, {1.0}), std::invalid_argument);
  rct::RaptorOptions bad;
  bad.masters = 4;
  bad.workers = 2;
  EXPECT_THROW(rct::run_raptor(bad, {1.0}), std::invalid_argument);
}

TEST(Raptor, DurationsAreHeavyTailed) {
  const auto d = rct::docking_durations(20000, 1.0, 5);
  double mean = 0, mx = 0;
  for (double x : d) {
    mean += x;
    mx = std::max(mx, x);
  }
  mean /= static_cast<double>(d.size());
  EXPECT_NEAR(mean, 1.0, 0.3);
  EXPECT_GT(mx, 4.0 * mean);  // the long tail exists
}
