// MD substrate tests: force-field correctness (forces vs finite differences,
// cell list vs brute force), integrator statistics, minimizers, system
// builders and trajectory analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/md/forcefield.hpp"
#include "impeccable/md/integrator.hpp"
#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"

namespace md = impeccable::md;
namespace chem = impeccable::chem;
using impeccable::common::Rng;
using impeccable::common::Vec3;

namespace {

/// A small hand-built system: 4 beads, chain bonds, one angle.
md::System tiny_system() {
  md::System sys;
  for (int i = 0; i < 4; ++i) {
    md::Bead b;
    b.kind = i < 3 ? md::BeadKind::Protein : md::BeadKind::Ligand;
    b.charge = (i % 2 == 0) ? 0.3 : -0.3;
    b.hydrophobic = i == 1;
    sys.topology.beads.push_back(b);
    sys.positions.push_back({3.8 * i, 0.4 * i * i, 0.1 * i});
  }
  sys.protein_beads = 3;
  sys.ligand_beads = 1;
  for (int i = 0; i + 1 < 3; ++i)
    sys.topology.bonds.push_back({i, i + 1, 3.8, 40.0});
  sys.topology.angles.push_back({0, 1, 2, 2.0, 8.0});
  return sys;
}

md::System small_lpc(std::uint64_t seed = 3) {
  md::ProteinOptions popts;
  popts.residues = 40;
  const auto protein = md::build_protein(seed, popts);
  const auto mol = chem::parse_smiles("CCOc1ccccc1");
  // Place the ligand at the pocket center via its embedded coords.
  const impeccable::dock::Ligand lig(mol);
  return md::build_lpc(protein, mol, lig.reference_coords());
}

}  // namespace

// ---------------------------------------------------------------- topology

TEST(Topology, SelectionsAndExclusions) {
  const auto sys = tiny_system();
  EXPECT_EQ(sys.topology.selection(md::BeadKind::Protein).size(), 3u);
  EXPECT_EQ(sys.topology.selection(md::BeadKind::Ligand).size(), 1u);
  EXPECT_TRUE(sys.topology.bonded(0, 1));
  EXPECT_TRUE(sys.topology.bonded(1, 0));
  EXPECT_FALSE(sys.topology.bonded(0, 3));
  EXPECT_EQ(sys.topology.exclusions().size(), 2u);
}

// ---------------------------------------------------------------- force field

TEST(ForceField, ForcesMatchFiniteDifferences) {
  const auto sys = tiny_system();
  const md::ForceField ff(sys.topology);
  std::vector<Vec3> forces;
  ff.evaluate(sys.positions, &forces);

  const double h = 1e-6;
  for (std::size_t i = 0; i < sys.positions.size(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      auto p1 = sys.positions, p2 = sys.positions;
      (&p1[i].x)[axis] -= h;
      (&p2[i].x)[axis] += h;
      const double fd = -(ff.evaluate(p2, nullptr).total() -
                          ff.evaluate(p1, nullptr).total()) / (2 * h);
      EXPECT_NEAR((&forces[i].x)[axis], fd, 1e-4)
          << "bead " << i << " axis " << axis;
    }
  }
}

TEST(ForceField, ForcesMatchFiniteDifferencesOnLpc) {
  const auto sys = small_lpc();
  const md::ForceField ff(sys.topology);
  // First relax slightly so we are not in the capped-force regime where the
  // analytic force is intentionally clamped.
  auto pos = sys.positions;
  md::minimize_steepest(ff, pos, 50);
  std::vector<Vec3> forces;
  ff.evaluate(pos, &forces);

  const double h = 1e-6;
  Rng rng(5);
  for (int probe = 0; probe < 12; ++probe) {
    const std::size_t i = rng.index(pos.size());
    const int axis = static_cast<int>(rng.index(3));
    auto p1 = pos, p2 = pos;
    (&p1[i].x)[axis] -= h;
    (&p2[i].x)[axis] += h;
    const double fd = -(ff.evaluate(p2, nullptr).total() -
                        ff.evaluate(p1, nullptr).total()) / (2 * h);
    const double an = (&forces[i].x)[axis];
    if (std::abs(an) < ff.options().max_force * 0.95) {
      EXPECT_NEAR(an, fd, std::max(2e-3, std::abs(fd) * 2e-4))
          << "bead " << i << " axis " << axis;
    }
  }
}

TEST(ForceField, CellListMatchesBruteForcePairs) {
  // Random beads; compare pair sets from the cell list vs O(N^2).
  Rng rng(17);
  std::vector<Vec3> pos;
  for (int i = 0; i < 120; ++i)
    pos.push_back({rng.uniform(-15, 15), rng.uniform(-12, 18), rng.uniform(-9, 9)});
  const double cutoff = 6.0;

  md::CellList cl;
  cl.build(pos, cutoff);
  std::set<std::pair<int, int>> from_cells;
  cl.for_each_pair(pos, cutoff, [&](int i, int j) {
    EXPECT_LT(i, j);
    EXPECT_TRUE(from_cells.emplace(i, j).second) << "duplicate pair";
  });
  cl.for_each_pair(pos, cutoff, [&](int i, int j) { from_cells.emplace(i, j); });

  std::set<std::pair<int, int>> brute;
  for (int i = 0; i < 120; ++i)
    for (int j = i + 1; j < 120; ++j)
      if (impeccable::common::distance2(pos[static_cast<std::size_t>(i)],
                                        pos[static_cast<std::size_t>(j)]) <=
          cutoff * cutoff)
        brute.emplace(i, j);
  EXPECT_EQ(from_cells, brute);
}

TEST(ForceField, InteractionEnergyOnlyCountsCrossPairs) {
  const auto sys = tiny_system();
  const md::ForceField ff(sys.topology);
  const auto e = ff.evaluate(sys.positions, nullptr);
  const double direct = ff.interaction_energy(sys.positions);
  EXPECT_NEAR(e.interaction, direct, 1e-9);
  // A protein-only system has zero interaction energy.
  auto prot_only = tiny_system();
  prot_only.topology.beads[3].kind = md::BeadKind::Protein;
  const md::ForceField ff2(prot_only.topology);
  EXPECT_EQ(ff2.evaluate(prot_only.positions, nullptr).interaction, 0.0);
}

TEST(ForceField, BondEnergyZeroAtRestLength) {
  md::System sys;
  sys.topology.beads.resize(2);
  sys.topology.bonds.push_back({0, 1, 2.5, 40.0});
  sys.positions = {{0, 0, 0}, {2.5, 0, 0}};
  const md::ForceField ff(sys.topology);
  EXPECT_NEAR(ff.evaluate(sys.positions, nullptr).bond, 0.0, 1e-12);
  sys.positions[1].x = 3.0;
  EXPECT_NEAR(ff.evaluate(sys.positions, nullptr).bond, 40.0 * 0.25, 1e-9);
}

// ---------------------------------------------------------------- minimizers

TEST(Minimize, SteepestDescentLowersEnergy) {
  auto sys = small_lpc(7);
  const md::ForceField ff(sys.topology);
  auto pos = sys.positions;
  const auto res = md::minimize_steepest(ff, pos, 100);
  EXPECT_LE(res.final_energy, res.initial_energy);
  EXPECT_GT(res.iterations, 0);
}

TEST(Minimize, FireLowersEnergyAtLeastAsMuch) {
  auto sys = small_lpc(8);
  const md::ForceField ff(sys.topology);
  auto p1 = sys.positions, p2 = sys.positions;
  const auto sd = md::minimize_steepest(ff, p1, 150);
  const auto fire = md::minimize_fire(ff, p2, 300);
  EXPECT_LE(fire.final_energy, sd.initial_energy);
  EXPECT_LE(fire.final_energy, sd.final_energy + 5.0);
}

// ---------------------------------------------------------------- integrator

TEST(Langevin, TemperatureEquilibratesNearTarget) {
  auto sys = small_lpc(9);
  const md::ForceField ff(sys.topology);
  auto pos = sys.positions;
  md::minimize_steepest(ff, pos, 100);

  md::LangevinOptions lo;
  lo.temperature = 300.0;
  lo.dt = 0.01;
  md::LangevinIntegrator integ(ff, lo, 42);
  std::vector<Vec3> vel;
  integ.thermalize(vel);
  integ.run(pos, vel, 300);

  impeccable::common::RunningStats temp;
  for (int i = 0; i < 30; ++i) {
    integ.run(pos, vel, 10);
    temp.add(integ.kinetic_temperature(vel));
  }
  EXPECT_NEAR(temp.mean(), 300.0, 60.0);
}

TEST(Langevin, DeterministicPerSeed) {
  auto sys = small_lpc(10);
  const md::ForceField ff(sys.topology);
  auto run = [&](std::uint64_t seed) {
    auto pos = sys.positions;
    md::LangevinIntegrator integ(ff, {}, seed);
    std::vector<Vec3> vel;
    integ.thermalize(vel);
    integ.run(pos, vel, 50);
    return pos;
  };
  const auto a = run(5), b = run(5), c = run(6);
  double same = 0, diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same += impeccable::common::distance(a[i], b[i]);
    diff += impeccable::common::distance(a[i], c[i]);
  }
  EXPECT_EQ(same, 0.0);
  EXPECT_GT(diff, 1e-3);
}

TEST(Langevin, ThermalizeMatchesMaxwellBoltzmann) {
  auto sys = small_lpc(11);
  const md::ForceField ff(sys.topology);
  md::LangevinOptions lo;
  lo.temperature = 250.0;
  md::LangevinIntegrator integ(ff, lo, 77);
  impeccable::common::RunningStats temps;
  std::vector<Vec3> vel;
  for (int i = 0; i < 40; ++i) {
    integ.thermalize(vel);
    temps.add(integ.kinetic_temperature(vel));
  }
  EXPECT_NEAR(temps.mean(), 250.0, 25.0);
}

// ---------------------------------------------------------------- builders

TEST(Builders, ProteinChainIsConnectedAndPocketIsEmpty) {
  md::ProteinOptions opts;
  opts.residues = 80;
  const auto sys = md::build_protein(4, opts);
  EXPECT_EQ(sys.topology.bead_count(), 80);
  EXPECT_EQ(sys.protein_beads, 80);
  // Chain bonds exist between consecutive residues.
  for (int i = 0; i + 1 < 80; ++i) EXPECT_TRUE(sys.topology.bonded(i, i + 1));
  // No bead intrudes into the pocket core.
  for (const auto& p : sys.positions) EXPECT_GT(p.norm(), opts.pocket_radius - 1.0);
}

TEST(Builders, ProteinIsStableUnderDynamics) {
  md::ProteinOptions opts;
  opts.residues = 60;
  const auto sys = md::build_protein(5, opts);
  md::SimulationOptions so;
  so.production_steps = 300;
  so.equilibration_steps = 100;
  so.report_interval = 30;
  const auto res = md::run_replica(sys, so, 11);
  const auto rmsd = md::rmsd_series(res.trajectory,
                                    sys.topology.selection(md::BeadKind::Protein));
  // The elastic network must keep the fold together: bounded RMSD.
  for (double r : rmsd) EXPECT_LT(r, 6.0);
}

TEST(Builders, LpcCombinesProteinAndLigand) {
  const auto sys = small_lpc(12);
  EXPECT_EQ(sys.protein_beads, 40);
  EXPECT_GT(sys.ligand_beads, 5);
  EXPECT_EQ(sys.topology.bead_count(), sys.protein_beads + sys.ligand_beads);
  EXPECT_EQ(sys.positions.size(),
            static_cast<std::size_t>(sys.topology.bead_count()));
  // Ligand beads are typed Ligand.
  const auto lig = sys.topology.selection(md::BeadKind::Ligand);
  EXPECT_EQ(static_cast<int>(lig.size()), sys.ligand_beads);
}

TEST(Builders, LpcRejectsSizeMismatch) {
  const auto protein = md::build_protein(2, {.residues = 20});
  const auto mol = chem::parse_smiles("CCO");
  std::vector<Vec3> coords(2);  // wrong size
  EXPECT_THROW(md::build_lpc(protein, mol, coords), std::invalid_argument);
}

// ---------------------------------------------------------------- simulation

TEST(Simulation, ProducesRequestedFrames) {
  const auto sys = small_lpc(13);
  md::SimulationOptions so;
  so.production_steps = 200;
  so.report_interval = 25;
  const auto res = md::run_replica(sys, so, 3);
  EXPECT_EQ(res.trajectory.size(), 8u);
  EXPECT_EQ(res.md_steps, static_cast<std::uint64_t>(so.equilibration_steps +
                                                     so.production_steps));
  EXPECT_LE(res.minimization.final_energy, res.minimization.initial_energy);
}

TEST(Simulation, DeterministicPerSeed) {
  const auto sys = small_lpc(14);
  md::SimulationOptions so;
  so.production_steps = 100;
  so.report_interval = 20;
  const auto a = md::run_replica(sys, so, 21);
  const auto b = md::run_replica(sys, so, 21);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  EXPECT_DOUBLE_EQ(a.trajectory.frames.back().energy.total(),
                   b.trajectory.frames.back().energy.total());
}

// ---------------------------------------------------------------- analysis

TEST(Analysis, RmsdSeriesStartsAtZero) {
  const auto sys = small_lpc(15);
  md::SimulationOptions so;
  so.production_steps = 100;
  so.report_interval = 20;
  const auto res = md::run_replica(sys, so, 5);
  const auto rmsd = md::rmsd_series(res.trajectory,
                                    sys.topology.selection(md::BeadKind::Protein));
  ASSERT_FALSE(rmsd.empty());
  // First stored frame is its own reference.
  EXPECT_NEAR(rmsd.front(), 0.0, 1e-9);
  for (double r : rmsd) EXPECT_GE(r, 0.0);
}

TEST(Analysis, ContactsDetectBoundLigand) {
  const auto sys = small_lpc(16);
  md::SimulationOptions so;
  so.production_steps = 60;
  so.report_interval = 20;
  const auto res = md::run_replica(sys, so, 6);
  const auto contacts = md::contact_series(res.trajectory, sys, 8.0);
  ASSERT_FALSE(contacts.empty());
  for (double c : contacts) EXPECT_GT(c, 0.0);
}

TEST(Analysis, PointCloudIsCenteredProteinOnly) {
  const auto sys = small_lpc(17);
  md::SimulationOptions so;
  so.production_steps = 40;
  so.report_interval = 40;
  const auto res = md::run_replica(sys, so, 7);
  const auto cloud = md::protein_point_cloud(res.trajectory.frames.front(), sys);
  EXPECT_EQ(static_cast<int>(cloud.size()), sys.protein_beads);
  Vec3 c;
  for (const auto& p : cloud) c += p;
  EXPECT_NEAR(c.norm() / static_cast<double>(cloud.size()), 0.0, 1e-9);
}

TEST(Analysis, FlopModelPositive) {
  EXPECT_GT(md::flops_per_md_step(100, 2000), md::flops_per_md_step(10, 50));
}
