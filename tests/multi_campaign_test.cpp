// Multi-target campaign engine tests: per-target science fingerprints are
// invariant to co-scheduling (number of targets sharing the backend, ready
// order, target policy, backend kind); the ScienceConfig/ExecConfig split
// composes the same campaign; the RaptorBackend adapter bulks routed tasks,
// fans results back out per member, and keeps AppManager retry semantics;
// RaptorStats derived metrics stay finite on empty workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "impeccable/core/campaign.hpp"
#include "impeccable/core/multi_campaign.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/raptor_backend.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;
namespace hpc = impeccable::hpc;
namespace rct = impeccable::rct;
namespace stages = impeccable::core::stages;

namespace {

core::ScienceConfig small_science(std::uint64_t library_seed) {
  core::ScienceConfig sci;
  sci.library_size = 30;
  sci.library_seed = library_seed;
  sci.iterations = 2;
  sci.bootstrap_docks = 10;
  sci.dock_top_fraction = 0.3;
  sci.cg_compounds = 2;
  sci.top_binders = 2;
  sci.outliers_per_binder = 1;
  sci.dock.runs = 1;
  sci.dock.lga.population = 10;
  sci.dock.lga.generations = 4;
  sci.esmacs_cg = fe::cg_config(0.25);
  sci.esmacs_cg.replicas = 2;
  sci.esmacs_fg = fe::fg_config(0.1);
  sci.esmacs_fg.replicas = 2;
  sci.surrogate.epochs = 2;
  sci.aae.epochs = 2;
  return sci;
}

core::ExecConfig small_exec() {
  core::ExecConfig exec;
  exec.seed = 17;
  exec.threads = 2;
  return exec;
}

core::Target target_a() { return core::Target::make("3CLPro-like", 99, 30, 17); }
core::Target target_b() { return core::Target::make("PLPro-like", 1234, 34, 19); }
core::Target target_c() { return core::Target::make("ADRP-like", 555, 28, 17); }

std::string standalone_fingerprint(core::Target target,
                                   const core::ScienceConfig& sci) {
  rct::SimBackend sim(hpc::test_machine(4));
  core::Campaign campaign(std::move(target), sci, small_exec());
  return campaign.run(sim).science_fingerprint();
}

rct::TaskDescription dock_task(const std::string& name, double duration) {
  rct::TaskDescription t;
  t.name = name;
  t.gpus = 1;
  t.duration = duration;
  return t;
}

}  // namespace

TEST(MultiCampaign, CoSchedulingPreservesEachTargetsScience) {
  // Each target's fingerprint on a shared priority-scheduled backend must be
  // bitwise identical to its own single-target run.
  const auto sci_a = small_science(2020);
  const auto sci_b = small_science(4040);
  const std::string solo_a = standalone_fingerprint(target_a(), sci_a);
  const std::string solo_b = standalone_fingerprint(target_b(), sci_b);

  core::HitRatePolicy policy(500.0);
  core::MultiCampaignOptions opts;  // kPriority + critical path by default
  opts.policy = &policy;
  core::MultiCampaign multi(small_exec(), opts);
  multi.add_target(target_a(), sci_a);
  multi.add_target(target_b(), sci_b);
  ASSERT_EQ(multi.target_count(), 2u);

  rct::SimBackend sim(hpc::test_machine(4));
  const auto out = multi.run(sim);
  ASSERT_EQ(out.reports.size(), 2u);
  EXPECT_EQ(out.targets[0], "3CLPro-like");
  EXPECT_EQ(out.targets[1], "PLPro-like");
  EXPECT_EQ(out.reports[0].science_fingerprint(), solo_a);
  EXPECT_EQ(out.reports[1].science_fingerprint(), solo_b);
  // The shared graph ran every node of both campaigns: 5 stages x 2
  // iterations x 2 targets.
  EXPECT_EQ(out.graph.nodes.size(), 20u);
  EXPECT_EQ(out.graph.failed(), 0u);
}

TEST(MultiCampaign, FingerprintInvariantToPolicyOrderAndCohort) {
  // Same target A, three very different schedules: FIFO two-target cohort,
  // priority three-target cohort with a policy, and its own solo run. All
  // three fingerprints identical — scheduling is science-neutral.
  const auto sci = small_science(2020);
  const std::string solo = standalone_fingerprint(target_a(), sci);

  core::MultiCampaignOptions fifo;
  fifo.ready_order = rct::AppManagerOptions::ReadyOrder::kFifo;
  fifo.critical_path_priority = false;
  core::MultiCampaign two(small_exec(), fifo);
  two.add_target(target_a(), sci);
  two.add_target(target_b(), small_science(4040));
  rct::SimBackend sim2(hpc::test_machine(4));
  EXPECT_EQ(two.run(sim2).reports[0].science_fingerprint(), solo);

  core::HitRatePolicy policy(900.0);
  core::MultiCampaignOptions prio;
  prio.policy = &policy;
  core::MultiCampaign three(small_exec(), prio);
  three.add_target(target_c(), small_science(8080));
  three.add_target(target_a(), sci);
  three.add_target(target_b(), small_science(4040));
  rct::SimBackend sim3(hpc::test_machine(4));
  EXPECT_EQ(three.run(sim3).reports[1].science_fingerprint(), solo);
}

TEST(MultiCampaign, LocalBackendMatchesSimBackend) {
  // The shared run is deterministic on real threads too (this is the test
  // the tsan-multi lane leans on).
  const auto sci_a = small_science(2020);
  const auto sci_b = small_science(4040);

  core::MultiCampaign on_sim(small_exec());
  on_sim.add_target(target_a(), sci_a);
  on_sim.add_target(target_b(), sci_b);
  rct::SimBackend sim(hpc::test_machine(4));
  const auto sim_out = on_sim.run(sim);

  core::MultiCampaign on_local(small_exec());
  on_local.add_target(target_a(), sci_a);
  on_local.add_target(target_b(), sci_b);
  const auto local_out = on_local.run();  // LocalBackend, exec.threads = 2

  ASSERT_EQ(sim_out.reports.size(), local_out.reports.size());
  for (std::size_t i = 0; i < sim_out.reports.size(); ++i)
    EXPECT_EQ(sim_out.reports[i].science_fingerprint(),
              local_out.reports[i].science_fingerprint());
}

TEST(MultiCampaign, ConfigSplitComposesTheSameCampaign) {
  // A flat CampaignConfig and its (science, exec) slices recomposed through
  // the new constructor drive identical campaigns.
  core::CampaignConfig flat;
  static_cast<core::ScienceConfig&>(flat) = small_science(2020);
  static_cast<core::ExecConfig&>(flat) = small_exec();

  rct::SimBackend sim1(hpc::test_machine(4));
  core::Campaign by_flat(target_a(), flat);
  const std::string flat_fp = by_flat.run(sim1).science_fingerprint();

  rct::SimBackend sim2(hpc::test_machine(4));
  core::Campaign by_slices(target_a(), flat.science(), flat.exec());
  EXPECT_EQ(by_slices.run(sim2).science_fingerprint(), flat_fp);

  // The aggregate exposes both views over the same storage.
  core::CampaignConfig recomposed(small_science(7), small_exec());
  EXPECT_EQ(recomposed.library_seed, 7u);
  EXPECT_EQ(recomposed.science().library_seed, 7u);
  EXPECT_EQ(recomposed.exec().seed, 17u);
}

TEST(MultiCampaign, VirtualTargetsRunThroughOneGraph) {
  // Heterogeneous ScaleModel targets co-scheduled on the DES machine; the
  // priority schedule must not be slower than FIFO on the same workload.
  auto make = [](double cg_seconds, std::size_t docks) {
    stages::ScaleModel m;
    m.ml1_ligands = 4000;
    m.ml1_shards = 2;
    m.ml1_gpu_seconds_per_ligand = 1e-3;
    m.s1_docks = docks;
    m.s1_chunk = 500;
    m.s1_gpu_seconds_per_ligand = 0.02;
    m.cg_ligands = 6;
    m.cg_whole_nodes = 1;
    m.cg_seconds = cg_seconds;
    m.s2_tasks = 2;
    m.s2_whole_nodes = 1;
    m.s2_seconds = 60.0;
    m.fg_conformations = 4;
    m.fg_whole_nodes = 2;
    m.fg_seconds = 120.0;
    return m;
  };

  auto run_mode = [&](rct::AppManagerOptions::ReadyOrder order, bool cp) {
    core::ExecConfig exec = small_exec();
    exec.pipeline_iterations = true;
    core::MultiCampaignOptions opts;
    opts.ready_order = order;
    opts.critical_path_priority = cp;
    core::MultiCampaign multi(exec, opts);
    multi.add_virtual_target("heavy-cg", 2, make(900.0, 2000));
    multi.add_virtual_target("dock-bound", 2, make(300.0, 8000));
    rct::SimBackend sim(hpc::test_machine(2));
    return multi.run(sim);
  };

  const auto fifo = run_mode(rct::AppManagerOptions::ReadyOrder::kFifo, false);
  const auto prio = run_mode(rct::AppManagerOptions::ReadyOrder::kPriority, true);
  EXPECT_EQ(fifo.graph.failed(), 0u);
  EXPECT_EQ(prio.graph.failed(), 0u);
  EXPECT_EQ(fifo.graph.completed(), prio.graph.completed());
  EXPECT_GT(fifo.graph.makespan, 0.0);
  EXPECT_GT(prio.graph.makespan, 0.0);
  // Priority nodes carry their ScaleModel-derived tails in the report.
  double max_priority = 0.0;
  for (const auto& n : prio.graph.nodes)
    max_priority = std::max(max_priority, n.priority);
  EXPECT_GT(max_priority, 0.0);
  for (const auto& n : fifo.graph.nodes) EXPECT_EQ(n.priority, 0.0);
}

TEST(RaptorBackend, BulksRoutedTasksAndFansOutResults) {
  rct::SimBackend sim(hpc::test_machine(2));
  rct::RaptorBackendOptions ropts;
  ropts.overlay.masters = 1;
  ropts.overlay.workers = 3;
  ropts.overlay.bulk_size = 4;
  rct::RaptorBackend raptor(sim, ropts);

  std::vector<rct::TaskResult> results;
  for (int i = 0; i < 10; ++i)
    raptor.submit(dock_task("dock-" + std::to_string(i), 0.5),
                  [&results](const rct::TaskResult& r) { results.push_back(r); });
  // Unrouted names pass straight through.
  bool ml_done = false;
  raptor.submit(dock_task("ml1-train", 1.0),
                [&ml_done](const rct::TaskResult& r) { ml_done = r.ok; });
  raptor.drain();

  ASSERT_EQ(results.size(), 10u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_GT(r.end_time, 0.0);
  }
  EXPECT_TRUE(ml_done);

  const rct::RaptorStats stats = raptor.stats();
  EXPECT_EQ(stats.tasks, 10u);  // the ml1 task never touched the overlay
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.worker_utilization, 0.0);
  EXPECT_LE(stats.worker_utilization, 1.0 + 1e-9);
  ASSERT_EQ(stats.worker_busy.size(), 3u);
}

TEST(RaptorBackend, MemberFailureFailsOnlyThatMember) {
  rct::SimBackend sim(hpc::test_machine(1));
  rct::RaptorBackendOptions ropts;
  ropts.overlay.bulk_size = 8;  // all three members share one bulk
  rct::RaptorBackend raptor(sim, ropts);

  std::vector<rct::TaskResult> results;
  auto record = [&results](const rct::TaskResult& r) { results.push_back(r); };
  auto failing = dock_task("dock-bad", 0.2);
  failing.payload = [] { throw std::runtime_error("pose rejected"); };
  raptor.submit(dock_task("dock-a", 0.2), record);
  raptor.submit(std::move(failing), record);
  raptor.submit(dock_task("dock-b", 0.2), record);
  raptor.drain();

  ASSERT_EQ(results.size(), 3u);
  std::size_t failed = 0;
  for (const auto& r : results) {
    if (r.name == "dock-bad") {
      EXPECT_FALSE(r.ok);
      EXPECT_NE(r.error.find("pose rejected"), std::string::npos);
      ++failed;
    } else {
      EXPECT_TRUE(r.ok) << r.error;
    }
  }
  EXPECT_EQ(failed, 1u);
}

TEST(RaptorBackend, RetriedMembersReenterBulking) {
  // A member that fails once is resubmitted by AppManager and must succeed
  // through the overlay on the second attempt.
  rct::SimBackend sim(hpc::test_machine(1));
  rct::RaptorBackendOptions ropts;
  ropts.overlay.bulk_size = 4;
  rct::RaptorBackend raptor(sim, ropts);
  rct::AppManager mgr(raptor, {.max_retries = 1});

  auto flaky_calls = std::make_shared<std::atomic<int>>(0);
  rct::StageGraph g;
  rct::StageNode n;
  n.name = "s1";
  n.pipeline = "iteration-0";
  for (int i = 0; i < 3; ++i) n.tasks.push_back(dock_task("dock-" + std::to_string(i), 0.3));
  rct::TaskDescription flaky = dock_task("dock-flaky", 0.3);
  flaky.payload = [flaky_calls] {
    if (flaky_calls->fetch_add(1) == 0) throw std::runtime_error("transient");
  };
  n.tasks.push_back(std::move(flaky));
  g.add(std::move(n));

  const auto report = mgr.run_graph(std::move(g));
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.failed(), 0u);
  EXPECT_EQ(report.completed(), 4u);
  EXPECT_EQ(flaky_calls->load(), 2);
  EXPECT_EQ(raptor.stats().tasks, 4u);  // retry attempt re-bulked; failed
                                        // first attempt is not counted done
}

TEST(RaptorBackend, WorkerFailuresRequeueBulks) {
  rct::SimBackend sim(hpc::test_machine(2));
  rct::RaptorBackendOptions ropts;
  ropts.overlay.workers = 4;
  ropts.overlay.bulk_size = 2;
  ropts.overlay.worker_failure_rate = 0.5;
  ropts.overlay.failure_seed = 7;
  rct::RaptorBackend raptor(sim, ropts);

  std::size_t done = 0;
  for (int i = 0; i < 16; ++i)
    raptor.submit(dock_task("dock-" + std::to_string(i), 0.4),
                  [&done](const rct::TaskResult& r) { done += r.ok ? 1 : 0; });
  raptor.drain();

  EXPECT_EQ(done, 16u);  // requeues lose time, never tasks
  const auto stats = raptor.stats();
  EXPECT_EQ(stats.tasks, 16u);
  EXPECT_GT(stats.bulks_requeued, 0u);
  EXPECT_GT(stats.workers_failed, 0);
}

TEST(RaptorStats, EmptyWorkloadYieldsCleanZeros) {
  // Regression: derived metrics divided by makespan / worker mean and went
  // NaN on empty workloads.
  const rct::RaptorStats stats = rct::run_raptor({}, {});
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.makespan, 0.0);
  EXPECT_EQ(stats.throughput_per_hour, 0.0);
  EXPECT_EQ(stats.worker_utilization, 0.0);
  EXPECT_EQ(stats.load_imbalance, 0.0);
  EXPECT_FALSE(std::isnan(stats.throughput_per_hour));

  rct::RaptorStats zero;
  zero.worker_busy = {0.0, 0.0};
  zero.finalize_derived();  // all-idle overlay: mean busy is zero
  EXPECT_EQ(zero.worker_utilization, 0.0);
  EXPECT_EQ(zero.load_imbalance, 0.0);

  rct::RaptorStats no_workers;
  no_workers.tasks = 5;
  no_workers.makespan = 2.0;
  no_workers.finalize_derived();  // empty worker set
  EXPECT_GT(no_workers.throughput_per_hour, 0.0);
  EXPECT_EQ(no_workers.worker_utilization, 0.0);
}

TEST(GraphRunReport, RecordsNodeTimingsAndBacksDeprecatedAccessors) {
  rct::SimBackend sim(hpc::test_machine(2));
  rct::AppManager mgr(sim, {.stage_transition_overhead = 0.5});

  rct::StageGraph g;
  auto node = [](const std::string& name, double dur) {
    rct::StageNode n;
    n.name = name;
    n.pipeline = "p";
    n.tasks.push_back(dock_task(name + "-t", dur));
    return n;
  };
  const auto a = g.add(node("a", 1.0));
  g.set_priority(a, 3.0);
  g.add(node("b", 2.0), {a});
  EXPECT_THROW(g.set_priority(99, 1.0), std::out_of_range);

  const auto report = mgr.run_graph(std::move(g));
  ASSERT_EQ(report.nodes.size(), 2u);
  EXPECT_EQ(report.nodes[0].name, "a");
  EXPECT_EQ(report.nodes[0].priority, 3.0);
  EXPECT_EQ(report.nodes[0].tasks, 1u);
  EXPECT_GE(report.nodes[0].ready_wait(), 0.0);
  // b became ready when a's post_exec ran, then waited out the transition
  // overhead before launching.
  EXPECT_NEAR(report.nodes[1].ready, report.nodes[0].end, 1e-9);
  EXPECT_NEAR(report.nodes[1].ready_wait(), 0.5, 1e-9);
  // 1s + 2s of work, the 0.5s transition, and the SimBackend's 0.05s
  // per-task launch overhead twice.
  EXPECT_NEAR(report.makespan, 3.6, 1e-9);
  EXPECT_NEAR(report.makespan, report.back().end_time, 1e-12);
  EXPECT_EQ(report.completed(), 2u);
  EXPECT_EQ(report.failed(), 0u);

  // Histogram covers every node once.
  std::size_t binned = 0;
  for (const auto& [edge, count] : report.ready_wait_histogram()) binned += count;
  EXPECT_EQ(binned, report.nodes.size());

  // Deprecated accessors mirror the report.
  EXPECT_EQ(mgr.tasks_completed(), report.completed());
  EXPECT_EQ(mgr.tasks_failed(), 0u);
  EXPECT_EQ(mgr.tasks_retried(), 0u);
  EXPECT_NEAR(mgr.makespan(), report.makespan, 1e-12);

  // The report iterates like the old result vector.
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(report.front().name, "a-t");
  EXPECT_EQ(report.back().name, "b-t");
  for (const auto& r : report) EXPECT_TRUE(r.ok);
}
