// Blocked GEMM tests: exhaustive small-shape equivalence against the naive
// reference (all transpose combinations, non-multiple-of-tile shapes,
// alpha/beta variants), bitwise pool-size invariance, and a Dense layer
// gradient-check regression over the GEMM-backed forward/backward.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "impeccable/common/rng.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/ml/gemm.hpp"
#include "impeccable/ml/layers.hpp"

namespace ic = impeccable::common;
namespace ml = impeccable::ml;

namespace {

std::vector<float> random_matrix(std::size_t n, ic::Rng& rng) {
  std::vector<float> m(n);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void expect_gemm_matches_naive(ml::Trans ta, ml::Trans tb, int M, int N, int K,
                               float alpha, float beta, ic::Rng& rng,
                               ic::ThreadPool* pool,
                               const ml::GemmTiling& tiling) {
  const auto A = random_matrix(static_cast<std::size_t>(M) * K, rng);
  const auto B = random_matrix(static_cast<std::size_t>(K) * N, rng);
  const auto C0 = random_matrix(static_cast<std::size_t>(M) * N, rng);
  const int lda = ta == ml::Trans::No ? K : M;
  const int ldb = tb == ml::Trans::No ? N : K;

  auto ref = C0;
  ml::gemm_naive(ta, tb, M, N, K, alpha, A.data(), lda, B.data(), ldb, beta,
                 ref.data(), N);
  auto got = C0;
  ml::gemm(ta, tb, M, N, K, alpha, A.data(), lda, B.data(), ldb, beta,
           got.data(), N, pool, tiling);

  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], got[i], 1e-4f)
        << "M=" << M << " N=" << N << " K=" << K << " ta=" << (ta == ml::Trans::Yes)
        << " tb=" << (tb == ml::Trans::Yes) << " alpha=" << alpha
        << " beta=" << beta << " at " << i;
}

}  // namespace

TEST(Gemm, ExhaustiveSmallShapesMatchNaive) {
  ic::Rng rng(1234);
  // Tiny tiles force every remainder path (partial register blocks, partial
  // K panels, partial row panels) even at these small sizes.
  ml::GemmTiling tiling;
  tiling.kc = 3;
  tiling.mc = 2;
  const int dims[] = {1, 2, 3, 4, 5, 8, 13, 17};
  for (int M : dims)
    for (int N : dims)
      for (int K : dims)
        for (auto ta : {ml::Trans::No, ml::Trans::Yes})
          for (auto tb : {ml::Trans::No, ml::Trans::Yes})
            expect_gemm_matches_naive(ta, tb, M, N, K, 1.0f, 0.0f, rng, nullptr,
                                      tiling);
}

TEST(Gemm, AlphaBetaVariantsMatchNaive) {
  ic::Rng rng(99);
  ml::GemmTiling tiling;  // default tiling, shapes not multiples of any tile
  for (float alpha : {1.0f, 0.5f, -2.0f})
    for (float beta : {0.0f, 1.0f, 0.25f})
      for (auto ta : {ml::Trans::No, ml::Trans::Yes})
        for (auto tb : {ml::Trans::No, ml::Trans::Yes})
          expect_gemm_matches_naive(ta, tb, 37, 19, 23, alpha, beta, rng,
                                    nullptr, tiling);
}

TEST(Gemm, ZeroDimensionsAreHandled) {
  ic::Rng rng(5);
  // K == 0 degenerates to beta-scaling; M == 0 / N == 0 are no-ops.
  expect_gemm_matches_naive(ml::Trans::No, ml::Trans::No, 4, 3, 0, 1.0f, 0.5f,
                            rng, nullptr, {});
  std::vector<float> c{1.0f, 2.0f};
  ml::gemm(ml::Trans::No, ml::Trans::No, 0, 2, 3, 1.0f, nullptr, 3, nullptr, 2,
           0.0f, c.data(), 2);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
}

TEST(Gemm, ResultIsBitwiseInvariantAcrossPoolSizes) {
  ic::Rng rng(31);
  const int M = 67, N = 29, K = 41;  // several mc=32 row panels + remainder
  const auto A = random_matrix(static_cast<std::size_t>(M) * K, rng);
  const auto B = random_matrix(static_cast<std::size_t>(K) * N, rng);

  std::vector<float> serial(static_cast<std::size_t>(M) * N, 0.0f);
  ml::gemm(ml::Trans::No, ml::Trans::No, M, N, K, 1.0f, A.data(), K, B.data(),
           N, 0.0f, serial.data(), N);

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ic::ThreadPool pool(threads);
    std::vector<float> par(static_cast<std::size_t>(M) * N, 0.0f);
    ml::gemm(ml::Trans::No, ml::Trans::No, M, N, K, 1.0f, A.data(), K,
             B.data(), N, 0.0f, par.data(), N, &pool);
    ASSERT_EQ(std::memcmp(serial.data(), par.data(),
                          serial.size() * sizeof(float)), 0)
        << "pool size " << threads;
  }
}

// ---------------------------------------------------------------- Dense

TEST(Gemm, DenseForwardMatchesManualLoops) {
  ic::Rng rng(7);
  ml::Dense dense(13, 5, rng);
  const ml::Tensor x = ml::Tensor::randn({9, 13}, rng, 1.0f);
  const ml::Tensor y = dense.forward(x);
  for (int i = 0; i < 9; ++i) {
    for (int o = 0; o < 5; ++o) {
      float acc = dense.bias[static_cast<std::size_t>(o)];
      for (int k = 0; k < 13; ++k) acc += dense.weight.at(o, k) * x.at(i, k);
      EXPECT_NEAR(y.at(i, o), acc, 1e-5f);
    }
  }
}

TEST(Gemm, DenseGradientCheck) {
  ic::Rng rng(11);
  ml::Dense dense(6, 4, rng);
  const ml::Tensor x = ml::Tensor::randn({3, 6}, rng, 1.0f);

  // Scalar loss L = sum(y); dL/dy = 1 everywhere.
  auto loss = [&](const ml::Tensor& inp) {
    ml::Dense probe(6, 4, rng);  // same-shape scratch, weights overwritten
    probe.weight = dense.weight;
    probe.bias = dense.bias;
    const ml::Tensor y = probe.forward(inp);
    float s = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i];
    return s;
  };

  ml::Tensor y = dense.forward(x);
  ml::Tensor ones(y.shape());
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0f;
  dense.zero_grad();
  const ml::Tensor gx = dense.backward(ones);

  const float h = 1e-2f;
  // Input gradient vs central finite differences.
  for (std::size_t i = 0; i < x.size(); ++i) {
    ml::Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const float fd = (loss(xp) - loss(xm)) / (2 * h);
    EXPECT_NEAR(gx[i], fd, 2e-2f) << "input " << i;
  }
  // Weight gradient: dL/dW[o][k] = sum_i x[i][k].
  for (int o = 0; o < 4; ++o) {
    for (int k = 0; k < 6; ++k) {
      float expect = 0.0f;
      for (int i = 0; i < 3; ++i) expect += x.at(i, k);
      EXPECT_NEAR(dense.weight_grad.at(o, k), expect, 1e-4f);
    }
  }
  // Bias gradient: dL/db[o] = batch size.
  for (int o = 0; o < 4; ++o)
    EXPECT_NEAR(dense.bias_grad[static_cast<std::size_t>(o)], 3.0f, 1e-5f);
}
