// Tests for campaign checkpointing, resume, and the CSV interchange.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "impeccable/core/campaign.hpp"
#include "impeccable/core/checkpoint.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;

namespace {

core::CampaignConfig mini_config(int iterations) {
  core::CampaignConfig cfg;
  cfg.library_size = 40;
  cfg.iterations = iterations;
  cfg.bootstrap_docks = 10;
  cfg.dock_top_fraction = 0.3;
  cfg.cg_compounds = 2;
  cfg.top_binders = 1;
  cfg.outliers_per_binder = 1;
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 12;
  cfg.dock.lga.generations = 4;
  cfg.esmacs_cg = fe::cg_config(0.2);
  cfg.esmacs_cg.replicas = 2;
  cfg.esmacs_fg = fe::fg_config(0.05);
  cfg.esmacs_fg.replicas = 2;
  cfg.surrogate.epochs = 2;
  cfg.aae.epochs = 2;
  cfg.seed = 77;
  return cfg;
}

std::filesystem::path tmp(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

}  // namespace

TEST(Checkpoint, RoundTripsRecords) {
  core::CampaignReport report;
  core::CompoundRecord a;
  a.id = "X-1";
  a.smiles = "CCO";
  a.surrogate_score = 0.7;
  a.docked = true;
  a.dock_score = -42.5;
  a.cg_done = true;
  a.cg_energy = -30.25;
  a.cg_error = 0.5;
  a.fg_energies = {-35.0, -33.5};
  core::CompoundRecord b;
  b.id = "X-2";
  b.smiles = "c1ccccc1";
  report.compounds = {{a.id, a}, {b.id, b}};

  const auto path = tmp("imp_ckpt.csv");
  core::write_checkpoint(report, path.string());
  const auto back = core::read_checkpoint(path.string());

  ASSERT_EQ(back.size(), 2u);
  const auto& ra = back.at("X-1");
  EXPECT_EQ(ra.smiles, "CCO");
  EXPECT_TRUE(ra.docked);
  EXPECT_DOUBLE_EQ(ra.dock_score, -42.5);
  EXPECT_TRUE(ra.cg_done);
  EXPECT_DOUBLE_EQ(ra.cg_energy, -30.25);
  ASSERT_EQ(ra.fg_energies.size(), 2u);
  EXPECT_DOUBLE_EQ(ra.fg_energies[1], -33.5);
  const auto& rb = back.at("X-2");
  EXPECT_FALSE(rb.docked);
  EXPECT_TRUE(rb.fg_energies.empty());
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsMalformedFiles) {
  const auto path = tmp("imp_bad_ckpt.csv");
  {
    std::ofstream f(path);
    f << "wrong,header\n";
  }
  EXPECT_THROW(core::read_checkpoint(path.string()), std::runtime_error);
  {
    std::ofstream f(path);
    f << "id,smiles,surrogate_score,docked,dock_score,cg_done,cg_energy,"
         "cg_error,fg_energies\n";
    f << "X-1,CCO,notanumber,1,2,0,0,0,\n";
  }
  EXPECT_THROW(core::read_checkpoint(path.string()), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(core::read_checkpoint("/nonexistent.csv"), std::runtime_error);
}

TEST(Checkpoint, ResumeSkipsFinishedDockingWork) {
  const auto path = tmp("imp_resume.csv");

  // First leg: one iteration.
  core::Target t1 = core::Target::make("R", 5, 30, 15);
  core::Campaign first(std::move(t1), mini_config(1));
  const auto rep1 = first.run();
  core::write_checkpoint(rep1, path.string());
  std::size_t docked1 = 0;
  for (const auto& [id, rec] : rep1.compounds)
    if (rec.docked) ++docked1;
  ASSERT_GT(docked1, 0u);

  // Second leg resumes: with the same seed, the bootstrap set is identical,
  // so no compound is re-docked.
  auto cfg = mini_config(1);
  cfg.resume_checkpoint = path.string();
  core::Target t2 = core::Target::make("R", 5, 30, 15);
  core::Campaign second(std::move(t2), cfg);
  const auto rep2 = second.run();
  EXPECT_EQ(rep2.iterations[0].docked, 0u);

  // Restored records are present with their scores.
  std::size_t restored = 0;
  for (const auto& [id, rec] : rep2.compounds)
    if (rec.docked) ++restored;
  EXPECT_EQ(restored, docked1);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ScoresCsvFormat) {
  const auto path = tmp("imp_scores.csv");
  core::write_scores_csv({{"A", -1.5}, {"B", -2.5}}, {{"A", "CCO"}},
                         path.string());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "id,smiles,score");
  std::getline(f, line);
  EXPECT_EQ(line, "A,CCO,-1.5");
  std::getline(f, line);
  EXPECT_EQ(line, "B,,-2.5");
  std::filesystem::remove(path);
}
