// Campaign-on-stage-graph tests: science determinism across thread counts,
// backends, and scheduling modes (sequential vs cross-iteration pipelined);
// virtual-time makespan reduction from pipelining; kill-and-resume via the
// periodic checkpoint.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "impeccable/core/campaign.hpp"
#include "impeccable/core/checkpoint.hpp"
#include "impeccable/hpc/machine.hpp"
#include "impeccable/rct/backend.hpp"

namespace core = impeccable::core;
namespace fe = impeccable::fe;
namespace hpc = impeccable::hpc;
namespace rct = impeccable::rct;

namespace {

core::CampaignConfig graph_config() {
  core::CampaignConfig cfg;
  cfg.library_size = 40;
  cfg.iterations = 2;
  cfg.bootstrap_docks = 12;
  cfg.dock_top_fraction = 0.3;
  cfg.cg_compounds = 3;
  cfg.top_binders = 2;
  cfg.outliers_per_binder = 2;
  // Slim down every engine for test speed.
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 12;
  cfg.dock.lga.generations = 5;
  cfg.esmacs_cg = fe::cg_config(0.25);
  cfg.esmacs_cg.replicas = 3;
  cfg.esmacs_fg = fe::fg_config(0.1);
  cfg.esmacs_fg.replicas = 3;
  cfg.surrogate.epochs = 2;
  cfg.aae.epochs = 2;
  cfg.seed = 17;
  cfg.threads = 2;
  return cfg;
}

core::Target graph_target() {
  return core::Target::make("MPro-like", 99, 36, 19);
}

std::string run_fingerprint(const core::CampaignConfig& cfg) {
  core::Campaign campaign(graph_target(), cfg);
  return campaign.run().science_fingerprint();
}

}  // namespace

TEST(CampaignGraph, ProducesSameScienceAsAlways) {
  // Sanity on the refactored loop: both iterations ran, feedback reached
  // ML1, and downstream stages saw work.
  core::Campaign campaign(graph_target(), graph_config());
  const auto report = campaign.run();
  ASSERT_EQ(report.iterations.size(), 2u);
  EXPECT_EQ(report.iterations[0].docked, 12u);
  EXPECT_EQ(report.iterations[1].library_screened, 40u);
  EXPECT_GT(report.iterations[1].docked, 0u);
  for (const auto& it : report.iterations) {
    EXPECT_GT(it.cg_runs, 0u);
    EXPECT_GT(it.fg_runs, 0u);
  }
  EXPECT_GT(report.flops->total("ML1"), 0u);
  EXPECT_GT(report.flops->total("S3-FG"), 0u);
  EXPECT_FALSE(report.science_fingerprint().empty());
}

TEST(CampaignGraph, FingerprintInvariantToThreadCount) {
  core::CampaignConfig one = graph_config();
  one.threads = 1;
  core::CampaignConfig many = graph_config();
  many.threads = 4;
  EXPECT_EQ(run_fingerprint(one), run_fingerprint(many));
}

TEST(CampaignGraph, PipelinedModeIsBitwiseIdenticalToSequential) {
  core::CampaignConfig seq = graph_config();
  seq.iterations = 3;
  core::CampaignConfig pip = seq;
  pip.pipeline_iterations = true;
  pip.threads = 4;  // maximize overlap; science must not notice
  EXPECT_EQ(run_fingerprint(seq), run_fingerprint(pip));
}

TEST(CampaignGraph, SimBackendMatchesLocalBackend) {
  // The same stage modules drive both backends; virtual time vs wall time
  // must not leak into the science.
  const core::CampaignConfig cfg = graph_config();
  core::Campaign local_campaign(graph_target(), cfg);
  const std::string local_fp = local_campaign.run().science_fingerprint();

  rct::SimBackend sim(hpc::test_machine(4));
  core::Campaign sim_campaign(graph_target(), cfg);
  const std::string sim_fp = sim_campaign.run(sim).science_fingerprint();
  EXPECT_EQ(local_fp, sim_fp);
}

TEST(CampaignGraph, PipeliningReducesVirtualMakespan) {
  core::CampaignConfig cfg = graph_config();
  cfg.iterations = 3;

  auto makespan = [&](bool pipelined) {
    core::CampaignConfig c = cfg;
    c.pipeline_iterations = pipelined;
    rct::SimBackend sim(hpc::test_machine(8));
    core::Campaign campaign(graph_target(), c);
    const auto report = campaign.run(sim);
    return report.profile.makespan();
  };

  const double sequential = makespan(false);
  const double pipelined = makespan(true);
  EXPECT_GT(sequential, 0.0);
  // Iteration i+1's ML1+S1 overlap iteration i's CG/S2/FG tail.
  EXPECT_LT(pipelined, sequential);
}

TEST(CampaignGraph, CheckpointEveryIterationSurvivesKillAndResume) {
  const std::string ckpt1 = "campaign_graph_ckpt1.csv";
  const std::string ckpt2 = "campaign_graph_ckpt2.csv";

  // Leg 1: a campaign killed after its first iteration — modeled by running
  // one iteration with periodic checkpointing on.
  core::CampaignConfig leg1 = graph_config();
  leg1.iterations = 1;
  leg1.checkpoint_path = ckpt1;
  core::Campaign first(graph_target(), leg1);
  const auto report1 = first.run();
  const auto saved = core::read_checkpoint(ckpt1);
  std::size_t saved_docked = 0;
  for (const auto& [id, rec] : saved) saved_docked += rec.docked ? 1 : 0;
  EXPECT_EQ(saved_docked, report1.iterations[0].docked);
  ASSERT_EQ(saved_docked, 12u);

  // Leg 2: resume mid-campaign. Same seed => the bootstrap permutation is
  // identical, so the first 12 picks are exactly the already-docked set and
  // only the 12 fresh ones dock again.
  core::CampaignConfig leg2 = graph_config();
  leg2.iterations = 1;
  leg2.bootstrap_docks = 24;
  leg2.resume_checkpoint = ckpt1;
  leg2.checkpoint_path = ckpt2;
  core::Campaign second(graph_target(), leg2);
  const auto report2 = second.run();

  EXPECT_EQ(report2.iterations[0].docked, 12u);  // no redone work
  std::size_t total_docked = 0;
  for (const auto& [id, rec] : report2.compounds)
    total_docked += rec.docked ? 1 : 0;
  EXPECT_EQ(total_docked, 24u);  // restored + fresh
  // Every leg-1 compound survived the roundtrip with its score intact.
  for (const auto& [id, rec] : saved) {
    if (!rec.docked) continue;
    const auto& after = report2.compounds.at(id);
    EXPECT_TRUE(after.docked);
    EXPECT_DOUBLE_EQ(after.dock_score, rec.dock_score);
  }
  // The leg-2 checkpoint accumulated both legs.
  const auto saved2 = core::read_checkpoint(ckpt2);
  std::size_t saved2_docked = 0;
  for (const auto& [id, rec] : saved2) saved2_docked += rec.docked ? 1 : 0;
  EXPECT_EQ(saved2_docked, 24u);

  std::remove(ckpt1.c_str());
  std::remove(ckpt2.c_str());
}

TEST(CampaignGraph, RetryConfigFlowsThroughToTheEngine) {
  // max_retries/stage_transition_overhead now come from the config; a
  // campaign on a walltime-limited pilot retries the killed tasks and
  // still completes all science.
  core::CampaignConfig cfg = graph_config();
  cfg.iterations = 1;
  cfg.max_retries = 4;
  cfg.stage_transition_overhead = 0.1;
  // Every task fits inside one pilot window, so a task killed mid-window
  // always succeeds when retried at the boundary.
  cfg.sim_durations = {.ml1 = 5.0, .dock = 1.0, .cg = 8.0, .s2 = 5.0, .fg = 8.0};

  rct::SimBackendOptions sopts;
  sopts.pilot_walltime = 10.0;  // several pilots per campaign
  rct::SimBackend sim(hpc::test_machine(4), sopts);
  core::Campaign campaign(graph_target(), cfg);
  const auto report = campaign.run(sim);
  EXPECT_GT(sim.pilot_generation(), 1);
  EXPECT_EQ(report.iterations[0].docked, 12u);
  EXPECT_GT(report.iterations[0].fg_runs, 0u);
}
