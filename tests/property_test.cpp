// Property-based sweeps (TEST_P) over the core invariants:
//  * docking pose gradients match finite differences for arbitrary ligands,
//  * pose transforms are exact inverses,
//  * the MD integrator conserves energy in the NVE limit (friction -> 0),
//  * soft-core coupling keeps dH/dlambda finite even on clashing geometries,
//  * canonical SMILES is invariant under graph relabeling,
//  * Tanimoto is a similarity (symmetric, bounded, reflexive),
//  * RES coverage is monotone in the screening budget at any noise level,
//  * cell-list pair enumeration equals brute force at any density.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "impeccable/chem/fingerprint.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"
#include "impeccable/dock/search.hpp"
#include "impeccable/md/forcefield.hpp"
#include "impeccable/md/integrator.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/ml/res.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace md = impeccable::md;
namespace ml = impeccable::ml;
using impeccable::common::Rng;
using impeccable::common::Vec3;

// ------------------------------------------------ dock gradients, per ligand

class DockGradientProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DockGradientProperty, AnalyticMatchesFiniteDifference) {
  static const auto grid = [] {
    dock::GridOptions gopts;
    gopts.nodes = 21;
    return dock::compute_grid(dock::Receptor::synthesize("P", 8), gopts);
  }();
  const auto mol = chem::parse_smiles(GetParam());
  const dock::Ligand lig(mol, 5);
  const dock::ScoringFunction score(*grid, lig);
  Rng rng(std::hash<std::string>{}(GetParam()));

  for (int trial = 0; trial < 3; ++trial) {
    // Relax into a low-energy region first: the trilinear grid is only C0
    // across cell faces, so finite differences are meaningful only where the
    // field is smooth (clash regions have ~1e3 kcal/mol node-to-node jumps).
    const auto start = lig.random_pose(grid->pocket_center, 2.5, rng);
    const auto relaxed = dock::adadelta(score, start);
    if (relaxed.energy > 0.0) continue;
    const auto& pose = relaxed.pose;
    dock::PoseGradient g;
    score.evaluate_with_gradient(pose, g);
    const double h = 1e-5;

    for (int axis = 0; axis < 3; ++axis) {
      auto p1 = pose, p2 = pose;
      (&p1.translation.x)[axis] -= h;
      (&p2.translation.x)[axis] += h;
      const double fd = (score.evaluate(p2) - score.evaluate(p1)) / (2 * h);
      EXPECT_NEAR((&g.translation.x)[axis], fd,
                  std::max(2e-3, std::abs(fd) * 2e-3));
    }
    for (std::size_t t = 0; t < pose.torsions.size(); ++t) {
      auto p1 = pose, p2 = pose;
      p1.torsions[t] -= h;
      p2.torsions[t] += h;
      const double fd = (score.evaluate(p2) - score.evaluate(p1)) / (2 * h);
      EXPECT_NEAR(g.torsions[t], fd, std::max(2e-3, std::abs(fd) * 2e-3));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ligands, DockGradientProperty,
                         ::testing::Values("CCO", "CC(C)CC(=O)O",
                                           "c1ccc(cc1)CCN",
                                           "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
                                           "O=S(=O)(N)c1ccc(Cl)cc1",
                                           "CCOC(=O)c1cncc(Br)c1"));

// ------------------------------------------------ pose transform inverses

class PoseInverseProperty : public ::testing::TestWithParam<double> {};

TEST_P(PoseInverseProperty, RotateThenUnrotateIsIdentity) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  const dock::Ligand lig(mol);
  Rng rng(31);
  const double mag = GetParam();
  for (int trial = 0; trial < 5; ++trial) {
    auto pose = lig.random_pose({1, 2, 3}, 2.0, rng);
    std::vector<Vec3> before;
    lig.build_coords(pose, before);
    const Vec3 omega = Vec3{rng.gauss(), rng.gauss(), rng.gauss()}.normalized() * mag;
    pose.rotate_by(omega);
    pose.rotate_by(-omega);
    std::vector<Vec3> after;
    lig.build_coords(pose, after);
    for (std::size_t i = 0; i < before.size(); ++i)
      EXPECT_NEAR(impeccable::common::distance(before[i], after[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, PoseInverseProperty,
                         ::testing::Values(0.01, 0.5, 1.5, 3.0));

// ------------------------------------------------ NVE energy conservation

class NveProperty : public ::testing::TestWithParam<double> {};

TEST_P(NveProperty, EnergyDriftIsBounded) {
  // friction -> 0 turns BAOAB into velocity Verlet; total energy (kinetic +
  // potential) must be conserved to integrator accuracy.
  md::ProteinOptions popts;
  popts.residues = 30;
  auto sys = md::build_protein(3, popts);
  const md::ForceField ff(sys.topology);
  auto pos = sys.positions;
  md::minimize_steepest(ff, pos, 200);

  md::LangevinOptions lo;
  lo.dt = GetParam();
  lo.friction = 0.0;  // NVE limit: the O-step becomes the identity
  lo.temperature = 200.0;
  md::LangevinIntegrator integ(ff, lo, 5);
  std::vector<Vec3> vel;
  integ.thermalize(vel);

  auto total_energy = [&] {
    double ke = 0;
    for (std::size_t i = 0; i < vel.size(); ++i)
      ke += 0.5 * sys.topology.beads[i].mass * vel[i].norm2();
    return ke + ff.evaluate(pos, nullptr).total();
  };

  integ.run(pos, vel, 10);  // settle
  const double e0 = total_energy();
  integ.run(pos, vel, 500);
  const double e1 = total_energy();
  // Drift tolerance scales with dt^2 (Verlet is second order).
  const double tol = std::max(0.5, 4000.0 * lo.dt * lo.dt);
  EXPECT_NEAR(e1, e0, tol) << "dt = " << lo.dt;
}

INSTANTIATE_TEST_SUITE_P(TimeSteps, NveProperty,
                         ::testing::Values(0.002, 0.005, 0.01));

// ------------------------------------------------ soft-core finiteness

class SoftCoreProperty : public ::testing::TestWithParam<double> {};

TEST_P(SoftCoreProperty, DhDlambdaFiniteOnClashes) {
  // A ligand bead placed directly on top of a protein bead: with linear
  // coupling dH/dlambda would blow up at small lambda; soft-core keeps it
  // bounded at every lambda.
  md::System sys;
  md::Bead p;
  p.kind = md::BeadKind::Protein;
  sys.topology.beads.push_back(p);
  md::Bead l;
  l.kind = md::BeadKind::Ligand;
  sys.topology.beads.push_back(l);
  sys.positions = {{0, 0, 0}, {0.05, 0, 0}};  // deep clash

  md::ForceFieldOptions opts;
  opts.interaction_scale = GetParam();
  const md::ForceField ff(sys.topology, opts);
  const auto e = ff.evaluate(sys.positions, nullptr);
  EXPECT_TRUE(std::isfinite(e.dh_dlambda));
  // Below the physical endpoint, the soft core bounds the derivative; at
  // lambda = 1 it reduces to the plain LJ (clashes are huge there, but the
  // Hamiltonian also never samples them at lambda = 1).
  if (GetParam() < 0.95) {
    EXPECT_LT(std::abs(e.dh_dlambda), 1e4) << "lambda = " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SoftCoreProperty,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

// ------------------------------------------------ SMILES relabel invariance

class SmilesRelabelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmilesRelabelProperty, CanonicalFormIgnoresAtomOrder) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto mol = chem::generate_compound(seed, i);

    // Rebuild the molecule with a random atom permutation.
    std::vector<int> perm(static_cast<std::size_t>(mol.atom_count()));
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    chem::Molecule shuffled;
    std::vector<int> where(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k) {
      where[static_cast<std::size_t>(perm[k])] = static_cast<int>(k);
      shuffled.add_atom(mol.atom(perm[k]));
    }
    for (int b = 0; b < mol.bond_count(); ++b) {
      const auto& bond = mol.bond(b);
      shuffled.add_bond(where[static_cast<std::size_t>(bond.a)],
                        where[static_cast<std::size_t>(bond.b)], bond.order,
                        bond.aromatic);
    }
    shuffled.finalize();
    EXPECT_EQ(chem::write_smiles(mol), chem::write_smiles(shuffled))
        << "seed " << seed << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmilesRelabelProperty,
                         ::testing::Values(3ull, 77ull, 2024ull, 555555ull));

// ------------------------------------------------ Tanimoto similarity axioms

class TanimotoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TanimotoProperty, SimilarityAxioms) {
  const std::uint64_t seed = GetParam();
  std::vector<chem::BitSet> fps;
  for (std::uint64_t i = 0; i < 8; ++i)
    fps.push_back(chem::morgan_fingerprint(chem::generate_compound(seed, i)));
  for (std::size_t a = 0; a < fps.size(); ++a) {
    EXPECT_DOUBLE_EQ(chem::tanimoto(fps[a], fps[a]), 1.0);
    for (std::size_t b = a + 1; b < fps.size(); ++b) {
      const double s = chem::tanimoto(fps[a], fps[b]);
      EXPECT_DOUBLE_EQ(s, chem::tanimoto(fps[b], fps[a]));
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TanimotoProperty,
                         ::testing::Values(1ull, 9ull, 123ull));

// ------------------------------------------------ RES monotonicity

class ResMonotonicityProperty : public ::testing::TestWithParam<double> {};

TEST_P(ResMonotonicityProperty, CoverageMonotoneInBudget) {
  const double noise = GetParam();
  Rng rng(42);
  std::vector<double> truth, pred;
  for (int i = 0; i < 3000; ++i) {
    const double t = rng.uniform();
    truth.push_back(t);
    pred.push_back(t + rng.gauss(0, noise));
  }
  const ml::EnrichmentSurface res(pred, truth);
  for (double top : {0.01, 0.05, 0.2}) {
    double prev = -1.0;
    for (double screen : {0.01, 0.03, 0.1, 0.3, 1.0}) {
      const double c = res.coverage(screen, top);
      EXPECT_GE(c, prev - 1e-12) << "noise " << noise << " top " << top;
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
    // Full screening always covers everything.
    EXPECT_DOUBLE_EQ(res.coverage(1.0, top), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, ResMonotonicityProperty,
                         ::testing::Values(0.0, 0.1, 0.5, 5.0));

// ------------------------------------------------ cell list completeness

struct CellListCase {
  int points;
  double box;
  double cutoff;
};

class CellListProperty : public ::testing::TestWithParam<CellListCase> {};

TEST_P(CellListProperty, MatchesBruteForce) {
  const auto [n, box, cutoff] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  std::vector<Vec3> pos;
  for (int i = 0; i < n; ++i)
    pos.push_back({rng.uniform(-box, box), rng.uniform(-box, box),
                   rng.uniform(-box, box)});
  md::CellList cl;
  cl.build(pos, cutoff);
  std::set<std::pair<int, int>> got;
  cl.for_each_pair(pos, cutoff, [&](int i, int j) {
    EXPECT_TRUE(got.emplace(i, j).second);
  });
  std::set<std::pair<int, int>> want;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (impeccable::common::distance2(pos[static_cast<std::size_t>(i)],
                                        pos[static_cast<std::size_t>(j)]) <=
          cutoff * cutoff)
        want.emplace(i, j);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Densities, CellListProperty,
                         ::testing::Values(CellListCase{50, 5.0, 3.0},
                                           CellListCase{200, 20.0, 6.0},
                                           CellListCase{300, 8.0, 10.0},
                                           CellListCase{40, 50.0, 4.0}));
