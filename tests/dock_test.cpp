// Docking substrate tests: grid interpolation and gradients (vs finite
// differences), ligand kinematics, pose-space gradients, local searches and
// the full LGA engine.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/kabsch.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"
#include "impeccable/dock/search.hpp"

namespace dock = impeccable::dock;
namespace chem = impeccable::chem;
using impeccable::common::Rng;
using impeccable::common::Vec3;

namespace {

std::shared_ptr<const dock::AffinityGrid> test_grid(std::uint64_t seed = 1) {
  const auto receptor = dock::Receptor::synthesize("T1", seed);
  dock::GridOptions gopts;
  gopts.nodes = 25;  // smaller grid keeps tests fast
  return dock::compute_grid(receptor, gopts);
}

}  // namespace

// ---------------------------------------------------------------- GridField

TEST(GridField, ExactAtNodes) {
  dock::GridField f({0, 0, 0}, 1.0, 4, 4, 4);
  f.at(1, 2, 3) = 5.5;
  // The z coordinate sits on the box boundary, where the interpolation
  // domain is clamped by 1e-9 — hence the loose tolerance.
  const auto s = f.sample({1.0, 2.0, 3.0});
  EXPECT_NEAR(s.value, 5.5, 1e-6);
  f.at(2, 1, 1) = -3.25;
  EXPECT_NEAR(f.sample({2.0, 1.0, 1.0}).value, -3.25, 1e-12);
}

TEST(GridField, LinearFieldInterpolatesExactly) {
  // f(x,y,z) = 2x + 3y - z is reproduced exactly by trilinear interpolation,
  // including its gradient.
  dock::GridField f({-1, -1, -1}, 0.5, 9, 9, 9);
  for (int z = 0; z < 9; ++z)
    for (int y = 0; y < 9; ++y)
      for (int x = 0; x < 9; ++x) {
        const Vec3 p = f.node(x, y, z);
        f.at(x, y, z) = 2 * p.x + 3 * p.y - p.z;
      }
  const auto s = f.sample({0.3, -0.7, 0.9});
  EXPECT_NEAR(s.value, 2 * 0.3 + 3 * -0.7 - 0.9, 1e-10);
  EXPECT_NEAR(s.gradient.x, 2.0, 1e-10);
  EXPECT_NEAR(s.gradient.y, 3.0, 1e-10);
  EXPECT_NEAR(s.gradient.z, -1.0, 1e-10);
}

TEST(GridField, GradientMatchesFiniteDifference) {
  dock::GridField f({0, 0, 0}, 0.5, 8, 8, 8);
  Rng rng(3);
  for (int z = 0; z < 8; ++z)
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x) f.at(x, y, z) = rng.uniform(-2, 2);
  const Vec3 p{1.3, 2.1, 0.8};
  const auto s = f.sample(p);
  const double h = 1e-6;
  const double gx = (f.sample(p + Vec3{h, 0, 0}).value - f.sample(p - Vec3{h, 0, 0}).value) / (2 * h);
  const double gy = (f.sample(p + Vec3{0, h, 0}).value - f.sample(p - Vec3{0, h, 0}).value) / (2 * h);
  const double gz = (f.sample(p + Vec3{0, 0, h}).value - f.sample(p - Vec3{0, 0, h}).value) / (2 * h);
  EXPECT_NEAR(s.gradient.x, gx, 1e-5);
  EXPECT_NEAR(s.gradient.y, gy, 1e-5);
  EXPECT_NEAR(s.gradient.z, gz, 1e-5);
}

TEST(GridField, OutOfBoxPenaltyGrowsAndPushesInward) {
  dock::GridField f({0, 0, 0}, 1.0, 4, 4, 4);
  const auto near = f.sample({-0.5, 1.5, 1.5});
  const auto far = f.sample({-2.0, 1.5, 1.5});
  EXPECT_GT(near.value, 0.0);
  EXPECT_GT(far.value, near.value);
  // Gradient must point outward in energy (negative x direction increases E),
  // i.e. dE/dx < 0 so descending moves +x (inward).
  EXPECT_LT(far.gradient.x, 0.0);
}

TEST(GridField, RejectsDegenerate) {
  EXPECT_THROW(dock::GridField({0, 0, 0}, 1.0, 1, 4, 4), std::invalid_argument);
  EXPECT_THROW(dock::GridField({0, 0, 0}, 0.0, 4, 4, 4), std::invalid_argument);
}

// ---------------------------------------------------------------- Receptor

TEST(Receptor, DeterministicSynthesis) {
  const auto a = dock::Receptor::synthesize("X", 5);
  const auto b = dock::Receptor::synthesize("X", 5);
  ASSERT_EQ(a.atoms().size(), b.atoms().size());
  for (std::size_t i = 0; i < a.atoms().size(); ++i)
    EXPECT_EQ(a.atoms()[i].position, b.atoms()[i].position);
}

TEST(Receptor, DifferentSeedsDiffer) {
  const auto a = dock::Receptor::synthesize("X", 5);
  const auto b = dock::Receptor::synthesize("X", 6);
  double diff = 0;
  const std::size_t n = std::min(a.atoms().size(), b.atoms().size());
  for (std::size_t i = 0; i < n; ++i)
    diff += impeccable::common::distance(a.atoms()[i].position, b.atoms()[i].position);
  EXPECT_GT(diff, 1.0);
}

TEST(Receptor, PocketCavityIsFavorable) {
  // The pocket center must be a low-energy region for a carbon probe
  // relative to a point inside the receptor wall.
  const auto grid = test_grid(11);
  const auto center = grid->map(dock::ProbeType::Carbon).sample(grid->pocket_center);
  EXPECT_LT(center.value, 10.0);  // not clashing
}

// ---------------------------------------------------------------- Ligand

TEST(Ligand, TorsionCountMatchesRotatableBonds) {
  const auto mol = chem::parse_smiles("CCCCO");  // propyl chain: 2 rotatable
  const dock::Ligand lig(mol);
  EXPECT_EQ(lig.torsion_count(), 2);
  const auto rigid = chem::parse_smiles("c1ccccc1");
  EXPECT_EQ(dock::Ligand(rigid).torsion_count(), 0);
}

TEST(Ligand, IdentityPoseReproducesReference) {
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol);
  std::vector<Vec3> coords;
  lig.build_coords(lig.identity_pose({0, 0, 0}), coords);
  for (std::size_t i = 0; i < coords.size(); ++i)
    EXPECT_NEAR(impeccable::common::distance(coords[i], lig.reference_coords()[i]),
                0.0, 1e-12);
}

TEST(Ligand, TranslationMovesAllAtoms) {
  const auto mol = chem::parse_smiles("CCO");
  const dock::Ligand lig(mol);
  std::vector<Vec3> a, b;
  lig.build_coords(lig.identity_pose({0, 0, 0}), a);
  lig.build_coords(lig.identity_pose({3, -2, 1}), b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i].x - a[i].x, 3.0, 1e-12);
    EXPECT_NEAR(b[i].y - a[i].y, -2.0, 1e-12);
    EXPECT_NEAR(b[i].z - a[i].z, 1.0, 1e-12);
  }
}

TEST(Ligand, TorsionPreservesBondLengths) {
  const auto mol = chem::parse_smiles("CCCCCC");
  const dock::Ligand lig(mol);
  auto pose = lig.identity_pose({0, 0, 0});
  for (auto& t : pose.torsions) t = 1.0;
  std::vector<Vec3> coords;
  lig.build_coords(pose, coords);
  std::vector<Vec3> ref;
  lig.build_coords(lig.identity_pose({0, 0, 0}), ref);
  for (int bi = 0; bi < mol.bond_count(); ++bi) {
    const auto& b = mol.bond(bi);
    EXPECT_NEAR(impeccable::common::distance(coords[static_cast<std::size_t>(b.a)],
                                             coords[static_cast<std::size_t>(b.b)]),
                impeccable::common::distance(ref[static_cast<std::size_t>(b.a)],
                                             ref[static_cast<std::size_t>(b.b)]),
                1e-9);
  }
}

TEST(Ligand, RotationIsRigid) {
  const auto mol = chem::parse_smiles("CC(C)CC");
  const dock::Ligand lig(mol);
  auto pose = lig.identity_pose({1, 2, 3});
  pose.rotate_by({0.4, -0.2, 0.7});
  std::vector<Vec3> coords, ref;
  lig.build_coords(pose, coords);
  lig.build_coords(lig.identity_pose({0, 0, 0}), ref);
  EXPECT_NEAR(impeccable::common::rmsd_superposed(ref, coords), 0.0, 1e-9);
}

TEST(Ligand, PartialChargesSumToFormalCharge) {
  for (const char* s : {"CCO", "CC(=O)[O-]", "C[NH3+]", "c1ccncc1"}) {
    const auto mol = chem::parse_smiles(s);
    const auto q = dock::partial_charges(mol);
    double total = 0, expected = 0;
    for (double x : q) total += x;
    for (int i = 0; i < mol.atom_count(); ++i) expected += mol.atom(i).formal_charge;
    EXPECT_NEAR(total, expected, 1e-9) << s;
  }
}

TEST(Ligand, OxygenMoreNegativeThanCarbon) {
  const auto mol = chem::parse_smiles("CCO");
  const auto q = dock::partial_charges(mol);
  EXPECT_LT(q[2], q[0]);  // O more negative than terminal C
}

TEST(Ligand, RandomPoseWithinRadius) {
  const auto mol = chem::parse_smiles("CCO");
  const dock::Ligand lig(mol);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto p = lig.random_pose({1, 1, 1}, 3.0, rng);
    EXPECT_LE(impeccable::common::distance(p.translation, {1, 1, 1}), 3.0 + 1e-9);
    const double qn = std::sqrt(p.qw * p.qw + p.qx * p.qx + p.qy * p.qy + p.qz * p.qz);
    EXPECT_NEAR(qn, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------- gradients

TEST(Score, PoseGradientMatchesFiniteDifference) {
  const auto grid = test_grid(2);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);

  Rng rng(77);
  dock::Pose pose = lig.random_pose(grid->pocket_center, 2.0, rng);

  dock::PoseGradient g;
  score.evaluate_with_gradient(pose, g);

  const double h = 1e-5;
  // Translation genes.
  for (int axis = 0; axis < 3; ++axis) {
    dock::Pose p1 = pose, p2 = pose;
    Vec3 dv;
    (&dv.x)[axis] = h;
    p1.translation -= dv;
    p2.translation += dv;
    const double fd = (score.evaluate(p2) - score.evaluate(p1)) / (2 * h);
    const double an = (&g.translation.x)[axis];
    EXPECT_NEAR(an, fd, std::max(1e-3, std::abs(fd) * 1e-3)) << "axis " << axis;
  }
  // Rotation genes (torque).
  for (int axis = 0; axis < 3; ++axis) {
    Vec3 omega;
    (&omega.x)[axis] = h;
    dock::Pose p1 = pose, p2 = pose;
    p2.rotate_by(omega);
    p1.rotate_by(-omega);
    const double fd = (score.evaluate(p2) - score.evaluate(p1)) / (2 * h);
    const double an = (&g.torque.x)[axis];
    EXPECT_NEAR(an, fd, std::max(1e-3, std::abs(fd) * 1e-3)) << "rot axis " << axis;
  }
  // Torsion genes.
  for (std::size_t t = 0; t < pose.torsions.size(); ++t) {
    dock::Pose p1 = pose, p2 = pose;
    p1.torsions[t] -= h;
    p2.torsions[t] += h;
    const double fd = (score.evaluate(p2) - score.evaluate(p1)) / (2 * h);
    EXPECT_NEAR(g.torsions[t], fd, std::max(1e-3, std::abs(fd) * 1e-3)) << "torsion " << t;
  }
}

TEST(Score, CountsEvaluations) {
  const auto grid = test_grid(2);
  const auto mol = chem::parse_smiles("CCO");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);
  const auto pose = lig.identity_pose(grid->pocket_center);
  score.evaluate(pose);
  score.evaluate(pose);
  dock::PoseGradient g;
  score.evaluate_with_gradient(pose, g);
  EXPECT_EQ(score.evaluations(), 3u);
}

// ---------------------------------------------------------------- searches

TEST(Search, SolisWetsNeverWorsens) {
  const auto grid = test_grid(5);
  const auto mol = chem::parse_smiles("CCOc1ccccc1");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);
  Rng rng(9);
  const auto start = lig.random_pose(grid->pocket_center, 3.0, rng);
  const double e0 = score.evaluate(start);
  const auto res = dock::solis_wets(score, start, rng);
  EXPECT_LE(res.energy, e0);
}

TEST(Search, AdadeltaNeverWorsens) {
  const auto grid = test_grid(5);
  const auto mol = chem::parse_smiles("CCOc1ccccc1");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);
  Rng rng(10);
  const auto start = lig.random_pose(grid->pocket_center, 3.0, rng);
  const double e0 = score.evaluate(start);
  const auto res = dock::adadelta(score, start);
  EXPECT_LE(res.energy, e0);
}

TEST(Search, LocalSearchImprovesTypicalStarts) {
  const auto grid = test_grid(6);
  const auto mol = chem::parse_smiles("CC(C)c1ccc(O)cc1");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);
  Rng rng(11);
  int improved = 0;
  for (int i = 0; i < 10; ++i) {
    const auto start = lig.random_pose(grid->pocket_center, 3.0, rng);
    const double e0 = score.evaluate(start);
    if (dock::adadelta(score, start).energy < e0 - 1e-6) ++improved;
  }
  EXPECT_GE(improved, 7);
}

TEST(Search, LgaFindsNegativeEnergyPose) {
  const auto grid = test_grid(7);
  const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);
  Rng rng(13);
  dock::LgaOptions opts;
  opts.population = 30;
  opts.generations = 15;
  const auto res = dock::run_lga(score, rng, opts);
  EXPECT_LT(res.best_energy, 0.0);
  EXPECT_GT(res.evaluations, 100u);
  EXPECT_EQ(res.best_coords.size(), static_cast<std::size_t>(lig.atom_count()));
}

TEST(Search, LgaBeatsRandomSampling) {
  const auto grid = test_grid(8);
  const auto mol = chem::parse_smiles("CCOc1ccccc1C(=O)N");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);

  Rng rng(17);
  dock::LgaOptions opts;
  opts.population = 30;
  opts.generations = 15;
  const auto lga = dock::run_lga(score, rng, opts);

  // Random sampling with a similar evaluation budget.
  Rng rng2(18);
  double best_random = 1e18;
  for (std::uint64_t i = 0; i < lga.evaluations; ++i) {
    const auto p = lig.random_pose(grid->pocket_center, 4.0, rng2);
    best_random = std::min(best_random, score.evaluate(p));
  }
  EXPECT_LT(lga.best_energy, best_random);
}

// ---------------------------------------------------------------- engine

TEST(Engine, DockIsDeterministic) {
  const auto grid = test_grid(20);
  const auto mol = chem::parse_smiles("CCOc1ccccc1");
  dock::DockOptions opts;
  opts.runs = 2;
  opts.lga.population = 20;
  opts.lga.generations = 8;
  const auto a = dock::dock(*grid, mol, "L1", opts);
  const auto b = dock::dock(*grid, mol, "L1", opts);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Engine, ClustersAreSortedAndCountRuns) {
  const auto grid = test_grid(21);
  const auto mol = chem::parse_smiles("CC(C)CO");
  dock::DockOptions opts;
  opts.runs = 4;
  opts.lga.population = 20;
  opts.lga.generations = 8;
  const auto res = dock::dock(*grid, mol, "L2", opts);
  int members = 0;
  for (std::size_t i = 0; i < res.clusters.size(); ++i) {
    members += res.clusters[i].members;
    if (i > 0) {
      EXPECT_GE(res.clusters[i].best_energy, res.clusters[i - 1].best_energy);
    }
  }
  EXPECT_EQ(members, 4);
  EXPECT_EQ(res.best_score, res.clusters.front().best_energy);
}

TEST(Engine, DifferentLigandsDifferentScores) {
  const auto grid = test_grid(22);
  dock::DockOptions opts;
  opts.runs = 2;
  opts.lga.population = 20;
  opts.lga.generations = 8;
  const auto a = dock::dock(*grid, chem::parse_smiles("CCO"), "small", opts);
  const auto b = dock::dock(*grid, chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O"),
                            "large", opts);
  EXPECT_NE(a.best_score, b.best_score);
  // Larger ligands bury more surface: typically better (lower) score.
  EXPECT_LT(b.best_score, a.best_score);
}

TEST(Engine, FlopModelScalesWithSize) {
  EXPECT_GT(dock::flops_per_evaluation(40, 300), dock::flops_per_evaluation(10, 20));
  EXPECT_GT(dock::flops_per_evaluation(10, 20), 0u);
}
