// Observability subsystem: span recording, metrics, exporters, and the
// end-to-end acceptance check that one traced campaign iteration produces a
// parseable Chrome trace covering every instrumented layer.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "impeccable/common/thread_pool.hpp"
#include "impeccable/core/campaign.hpp"
#include "impeccable/hpc/cluster.hpp"
#include "impeccable/obs/csv.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/obs/metrics.hpp"
#include "impeccable/obs/recorder.hpp"
#include "impeccable/obs/trace_export.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/profiler.hpp"
#include "impeccable/rct/raptor.hpp"

namespace impeccable {
namespace {

// ------------------------------------------------------- mini JSON parser
// Just enough JSON to parse back what obs::json emits: objects, arrays,
// strings with escapes, numbers, literals. Throws on malformed input, which
// is exactly what the export tests want to detect.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (at_ != s_.size()) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  void skip_ws() {
    while (at_ < s_.size() && (s_[at_] == ' ' || s_[at_] == '\t' ||
                               s_[at_] == '\n' || s_[at_] == '\r'))
      ++at_;
  }
  char peek() {
    if (at_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[at_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++at_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  void literal(std::string_view lit) {
    if (s_.substr(at_, lit.size()) != lit)
      throw std::runtime_error("bad literal");
    at_ += lit.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[at_++];
      if (c == '\\') {
        char e = s_[at_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            const std::string hex(s_.substr(at_, 4));
            at_ += 4;
            out += static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      } else {
        out += c;
      }
    }
    ++at_;
    return out;
  }

  JsonValue number() {
    const std::size_t begin = at_;
    while (at_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[at_])) ||
            s_[at_] == '-' || s_[at_] == '+' || s_[at_] == '.' ||
            s_[at_] == 'e' || s_[at_] == 'E'))
      ++at_;
    if (at_ == begin) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(std::string(s_.substr(begin, at_ - begin)));
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++at_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++at_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view s_;
  std::size_t at_ = 0;
};

std::filesystem::path tmp(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// ------------------------------------------------------------- JSON writer

TEST(ObsJson, EscapesAndNests) {
  std::ostringstream os;
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("plain", "abc");
  w.kv("quoted", "a\"b\\c\nd");
  w.kv("int", std::int64_t{-3});
  w.kv("flag", true);
  w.key("list").begin_array().value(1.5).value(2).end_array();
  w.end_object();

  const JsonValue v = JsonParser(os.str()).parse();
  EXPECT_EQ(v.at("plain").string, "abc");
  EXPECT_EQ(v.at("quoted").string, "a\"b\\c\nd");
  EXPECT_EQ(v.at("int").number, -3.0);
  EXPECT_TRUE(v.at("flag").boolean);
  ASSERT_EQ(v.at("list").array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("list").array[0].number, 1.5);
}

TEST(ObsJson, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::json::Writer w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.end_array();
  const JsonValue v = JsonParser(os.str()).parse();
  EXPECT_EQ(v.array[0].kind, JsonValue::Kind::Null);
  EXPECT_EQ(v.array[1].kind, JsonValue::Kind::Null);
}

TEST(ObsCsv, QuotesOnlyWhenNeeded) {
  std::ostringstream os;
  obs::CsvWriter csv(os);
  csv.cell("plain").cell("with,comma").cell("with\"quote").cell(1.5);
  csv.end_row();
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\",1.5\n");
}

// ---------------------------------------------------------------- metrics

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::HistogramSpec spec;
  spec.lower = 1.0;
  spec.upper = 100.0;
  spec.buckets = 2;  // [1, 10) and [10, 100)
  obs::Histogram h(spec);

  EXPECT_EQ(h.bucket_index(0.5), -1);   // underflow
  EXPECT_EQ(h.bucket_index(1.0), 0);    // at lower edge
  EXPECT_EQ(h.bucket_index(9.99), 0);
  EXPECT_EQ(h.bucket_index(10.0), 1);   // at interior edge
  EXPECT_EQ(h.bucket_index(99.0), 1);
  EXPECT_EQ(h.bucket_index(100.0), 2);  // overflow
  EXPECT_EQ(h.bucket_index(1e9), 2);

  EXPECT_DOUBLE_EQ(h.bucket_bound(0), 1.0);
  EXPECT_NEAR(h.bucket_bound(1), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.bucket_bound(2), 100.0);

  for (double v : {0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 200.0}) h.observe(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.underflow, 1u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.overflow, 2u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 200.0);
  EXPECT_DOUBLE_EQ(snap.sum, 366.5);
}

// Regression (PR 5 UBSan/edge-case pass): zero and negative observations
// must never reach the log map, NaN must not poison the aggregates, and a
// degenerate spec (zero/negative lower, non-finite upper) must fall back to
// the default layout instead of emitting inf/NaN bucket edges into JSON.
TEST(ObsMetrics, HistogramZeroNegativeNanEdgeCases) {
  obs::Histogram h;  // default spec: [1e-6, 1e3)

  EXPECT_EQ(h.bucket_index(0.0), -1);
  EXPECT_EQ(h.bucket_index(-0.0), -1);
  EXPECT_EQ(h.bucket_index(-5.0), -1);
  EXPECT_EQ(h.bucket_index(std::numeric_limits<double>::quiet_NaN()), -1);
  EXPECT_EQ(h.bucket_index(std::numeric_limits<double>::infinity()),
            h.spec().buckets);

  h.observe(0.0);
  h.observe(-3.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());  // dropped entirely
  h.observe(2.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.underflow, 2u);
  EXPECT_EQ(snap.count, 3u);  // NaN not counted
  EXPECT_DOUBLE_EQ(snap.sum, -1.0);
  EXPECT_DOUBLE_EQ(snap.min, -3.0);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);

  // Degenerate specs fall back to the default layout.
  for (obs::HistogramSpec bad :
       {obs::HistogramSpec{0.0, 10.0, 4}, obs::HistogramSpec{-1.0, 10.0, 4},
        obs::HistogramSpec{1.0, std::numeric_limits<double>::infinity(), 4},
        obs::HistogramSpec{1.0, 10.0, 0}}) {
    obs::Histogram hb(bad);
    EXPECT_DOUBLE_EQ(hb.spec().lower, obs::HistogramSpec{}.lower);
    EXPECT_DOUBLE_EQ(hb.spec().upper, obs::HistogramSpec{}.upper);
    // Every finite bucket edge stays finite, so JSON snapshots stay valid.
    for (int i = 0; i <= hb.spec().buckets; ++i)
      EXPECT_TRUE(std::isfinite(hb.bucket_bound(i))) << i;
  }
}

TEST(ObsMetrics, QuantileEmptyAndSingleValue) {
  obs::Histogram h({1.0, 100.0, 2});
  EXPECT_TRUE(std::isnan(h.quantile(0.5))) << "no data, no quantile";

  h.observe(7.0);
  // One sample: every quantile clips to the only observed value.
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 7.0);
}

TEST(ObsMetrics, QuantileInterpolatesWithinBuckets) {
  // Two decade buckets [1, 10) and [10, 100), four samples in each.
  obs::Histogram h({1.0, 100.0, 2});
  for (double v : {2.0, 3.0, 4.0, 5.0, 20.0, 30.0, 40.0, 50.0}) h.observe(v);

  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);  // p0 = observed min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0)  // p100 = observed max (clipped)
      << "upper bucket edge must clip to the observed max";
  // rank 2 of 4 in [1, 10): halfway through the bucket span.
  EXPECT_NEAR(h.quantile(0.25), 5.5, 1e-9);
  // rank 4 lands exactly on the first bucket's upper edge.
  EXPECT_NEAR(h.quantile(0.5), 10.0, 1e-9);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(ObsMetrics, QuantileCoversUnderflowAndOverflow) {
  obs::Histogram h({1.0, 100.0, 2});
  h.observe(0.5);  // underflow
  h.observe(200.0);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
  // The underflow "bucket" spans [min, lower): rank 0.5 of 1 is its middle.
  EXPECT_NEAR(h.quantile(0.25), 0.75, 1e-9);
}

TEST(ObsMetrics, QuantileIsMonotoneInQ) {
  obs::Histogram h;  // default log-spaced spec
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-3);
  double prev = h.quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    // Log-spaced buckets bound relative error: the estimate must stay
    // within one bucket ratio of the true order statistic.
    const double truth = q == 0.0 ? 1e-3 : q;
    EXPECT_GT(v, truth * 0.7) << "q=" << q;
    EXPECT_LT(v, truth * 1.5) << "q=" << q;
    prev = v;
  }
}

TEST(ObsMetrics, SnapshotIsDeterministic) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("middle").set(0.25);
  reg.histogram("h").observe(0.5);

  std::ostringstream a, b;
  reg.to_json(a);
  reg.to_json(b);
  EXPECT_EQ(a.str(), b.str());

  const JsonValue v = JsonParser(a.str()).parse();
  // Counters are exact integers, keys sorted.
  EXPECT_EQ(v.at("counters").at("a.first").number, 1.0);
  EXPECT_EQ(v.at("counters").at("z.last").number, 3.0);
  EXPECT_EQ(v.at("counters").object.begin()->first, "a.first");
  EXPECT_DOUBLE_EQ(v.at("gauges").at("middle").number, 0.25);
  EXPECT_EQ(v.at("histograms").at("h").at("count").number, 1.0);
}

// ------------------------------------------------------------------ spans

TEST(ObsRecorder, NestingAssignsParents) {
  obs::Recorder rec;
  double clock = 0.0;
  rec.set_clock([&clock] { return clock; });

  obs::SpanId outer_id = 0, inner_id = 0;
  {
    obs::Span outer(obs::cat::kStage, "outer", &rec);
    outer_id = outer.id();
    clock = 1.0;
    EXPECT_EQ(rec.current_span(), outer_id);
    {
      obs::Span inner(obs::cat::kDock, "inner", &rec);
      inner_id = inner.id();
      clock = 2.0;
    }
    clock = 3.0;
  }

  const obs::Trace trace = rec.take();
  ASSERT_EQ(trace.spans.size(), 2u);
  // Sorted by start time: outer first.
  EXPECT_EQ(trace.spans[0].name, "outer");
  EXPECT_EQ(trace.spans[0].id, outer_id);
  EXPECT_EQ(trace.spans[0].parent, 0u);
  EXPECT_DOUBLE_EQ(trace.spans[0].start, 0.0);
  EXPECT_DOUBLE_EQ(trace.spans[0].end, 3.0);
  EXPECT_EQ(trace.spans[1].id, inner_id);
  EXPECT_EQ(trace.spans[1].parent, outer_id);
  EXPECT_DOUBLE_EQ(trace.spans[1].duration(), 1.0);

  // take() cleared the buffers.
  EXPECT_TRUE(rec.take().spans.empty());
}

TEST(ObsRecorder, ExplicitParentCrossesThreads) {
  obs::Recorder rec;
  common::ThreadPool pool(2);

  obs::Span outer(obs::cat::kFe, "fan-out", &rec);
  const obs::SpanId parent = outer.id();
  pool.parallel_for(0, 8, [&](std::size_t i) {
    obs::Span child(obs::cat::kFe, "child-" + std::to_string(i), &rec, parent);
  });
  outer.end();

  const obs::Trace trace = rec.take();
  ASSERT_EQ(trace.spans.size(), 9u);
  int children = 0;
  for (const auto& s : trace.spans)
    if (s.parent == parent) ++children;
  EXPECT_EQ(children, 8);
}

TEST(ObsRecorder, ConcurrentRecordingIsComplete) {
  // Many threads record spans and bump metrics simultaneously — the count
  // must come out exact. Run under the tsan preset to prove data-race
  // freedom of the per-thread buffers and the registry fast path.
  obs::Recorder rec;
  constexpr int kThreads = 4, kSpansEach = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      auto& counter = rec.metrics().counter("spans");
      auto& hist = rec.metrics().histogram("latency");
      for (int i = 0; i < kSpansEach; ++i) {
        obs::Span span(obs::cat::kPool, "w" + std::to_string(t), &rec);
        counter.add(1);
        hist.observe(1e-3 * (i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();

  const obs::Trace trace = rec.take();
  EXPECT_EQ(trace.spans.size(),
            static_cast<std::size_t>(kThreads * kSpansEach));
  EXPECT_EQ(trace.thread_lanes, static_cast<std::uint32_t>(kThreads));
  EXPECT_EQ(rec.metrics().counter("spans").value(),
            static_cast<std::uint64_t>(kThreads * kSpansEach));
  EXPECT_EQ(rec.metrics().histogram("latency").snapshot().count,
            static_cast<std::uint64_t>(kThreads * kSpansEach));
}

TEST(ObsRecorder, NoGlobalRecorderMeansInactiveSpans) {
  ASSERT_EQ(obs::global(), nullptr);
  obs::Span span(obs::cat::kDock, "ignored");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.arg("k", 1.0);  // must be a no-op, not a crash
}

TEST(ObsRecorder, ScopedInstallAndRestore) {
  obs::Recorder rec;
  {
    obs::ScopedRecorder scoped(&rec);
    EXPECT_EQ(obs::global(), &rec);
    obs::Span span(obs::cat::kMl, "global-span");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(obs::global(), nullptr);
  EXPECT_EQ(rec.take().spans.size(), 1u);
}

// ------------------------------------------------------ backends + profiler

TEST(ObsBackend, SimBackendSpansUseVirtualTime) {
  rct::SimBackend inner(hpc::test_machine(1));
  rct::ProfiledBackend backend(inner);
  for (int i = 0; i < 3; ++i) {
    rct::TaskDescription t;
    t.name = "t" + std::to_string(i);
    t.gpus = 1;
    t.duration = 2.0;
    backend.submit(t, [](const rct::TaskResult&) {});
  }
  backend.drain();

  const obs::Trace trace = backend.trace_recorder().snapshot();
  ASSERT_EQ(trace.spans.size(), 3u);
  for (const auto& s : trace.spans) {
    EXPECT_STREQ(s.category, obs::cat::kTask);
    // Virtual seconds: ~2.05 per task (duration + overhead), nothing near
    // wall time.
    EXPECT_NEAR(s.duration(), 2.05, 1e-6);
  }

  const auto profile = backend.profile();
  ASSERT_EQ(profile.tasks.size(), 3u);
  for (const auto& r : profile.tasks) {
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.gpus, 1);
    EXPECT_GE(r.queue_wait(), 0.0);
  }
}

TEST(ObsBackend, WalltimeKillIsVisibleInProfile) {
  rct::SimBackendOptions opts;
  opts.pilot_walltime = 5.0;
  rct::SimBackend inner(hpc::test_machine(1), opts);
  rct::ProfiledBackend backend(inner);

  rct::TaskDescription t;
  t.name = "doomed";
  t.whole_nodes = 1;  // no explicit GPUs: the whole-node proxy applies
  t.duration = 8.0;   // longer than the pilot
  bool failed = false;
  backend.submit(t, [&](const rct::TaskResult& r) { failed = !r.ok; });
  backend.drain();
  EXPECT_TRUE(failed);

  const auto profile = backend.profile();
  ASSERT_EQ(profile.tasks.size(), 1u);
  const auto& rec = profile.tasks[0];
  EXPECT_FALSE(rec.ok);
  EXPECT_EQ(rec.error, "pilot walltime");
  EXPECT_EQ(rec.whole_nodes, 1);
  EXPECT_EQ(rec.gpus, 6);  // whole-node proxy (6 GPUs/node)
  EXPECT_DOUBLE_EQ(rec.end_time, 5.0);  // killed at the boundary

  // The failure survives the CSV export too.
  const auto path = tmp("imp_obs_kill.csv");
  profile.write_csv(path.string());
  std::ifstream f(path);
  std::string header, row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_NE(row.find("pilot walltime"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsBackend, BorrowedRecorderSeesTaskAndStageSpans) {
  obs::Recorder rec;
  rct::SimBackend inner(hpc::test_machine(1));
  rct::ProfiledBackend backend(inner, &rec);

  rct::Pipeline pipe("p");
  rct::Stage stage;
  stage.name = "S-test";
  for (int i = 0; i < 2; ++i) {
    rct::TaskDescription t;
    t.name = "task-" + std::to_string(i);
    t.cpus = 1;
    t.duration = 1.0;
    stage.tasks.push_back(std::move(t));
  }
  pipe.add_stage(std::move(stage));
  rct::AppManager manager(backend);
  manager.run({std::move(pipe)});

  const obs::Trace trace = rec.take();
  int tasks = 0, stages = 0;
  for (const auto& s : trace.spans) {
    if (std::string_view(s.category) == obs::cat::kTask) ++tasks;
    if (std::string_view(s.category) == obs::cat::kStage) {
      ++stages;
      EXPECT_EQ(s.name, "S-test");
    }
  }
  EXPECT_EQ(tasks, 2);
  EXPECT_EQ(stages, 1);
}

TEST(ObsPool, WorkerCountersAndGauges) {
  common::ThreadPool pool(2);
  pool.parallel_for(0, 64, [](std::size_t) {}, 1);
  pool.wait_idle();

  std::uint64_t executed = 0;
  for (const auto& w : pool.worker_counters()) executed += w.executed;
  EXPECT_GT(executed, 0u);

  obs::MetricsRegistry reg;
  pool.publish_metrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.workers").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.executed").value(),
                   static_cast<double>(executed));
  // Republishing overwrites instead of double-counting.
  pool.publish_metrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.executed").value(),
                   static_cast<double>(executed));
}

// -------------------------------------------------------------- exporters

TEST(ObsExport, ChromeTraceRoundTrips) {
  obs::Recorder rec;
  double clock = 0.0;
  rec.set_clock([&clock] { return clock; });
  {
    obs::Span a(obs::cat::kStage, "alpha", &rec);
    a.arg("count", 3.0);
    a.arg("label", "x,\"y\"");
    clock = 0.5;
  }
  std::ostringstream os;
  obs::write_chrome_trace(rec.take(), os);

  const JsonValue doc = JsonParser(os.str()).parse();
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& e = events[0];
  EXPECT_EQ(e.at("name").string, "alpha");
  EXPECT_EQ(e.at("cat").string, "stage");
  EXPECT_EQ(e.at("ph").string, "X");
  EXPECT_DOUBLE_EQ(e.at("ts").number, 0.0);
  EXPECT_DOUBLE_EQ(e.at("dur").number, 0.5e6);  // microseconds
  EXPECT_DOUBLE_EQ(e.at("args").at("count").number, 3.0);
  EXPECT_EQ(e.at("args").at("label").string, "x,\"y\"");
}

TEST(ObsExport, StatsToJsonParses) {
  rct::RaptorStats stats = rct::run_raptor(
      rct::RaptorOptions{}, rct::docking_durations(100, 1.0, 7));
  std::ostringstream os;
  stats.to_json(os);
  const JsonValue v = JsonParser(os.str()).parse();
  EXPECT_EQ(v.at("tasks").number, 100.0);
  EXPECT_GT(v.at("throughput_per_hour").number, 0.0);

  core::IterationMetrics metrics;
  metrics.iteration = 1;
  metrics.docked = 17;
  std::ostringstream os2;
  metrics.to_json(os2);
  const JsonValue m = JsonParser(os2.str()).parse();
  EXPECT_EQ(m.at("iteration").number, 1.0);
  EXPECT_EQ(m.at("docked").number, 17.0);
}

// ------------------------------------------------- end-to-end acceptance

TEST(ObsCampaign, TracedCampaignCoversEveryLayer) {
  core::CampaignConfig cfg;
  cfg.library_size = 30;
  cfg.iterations = 2;
  cfg.bootstrap_docks = 10;  // >= 8 docked, so iteration 1 trains ML1
  cfg.dock_top_fraction = 0.3;
  cfg.cg_compounds = 2;
  cfg.top_binders = 1;
  cfg.outliers_per_binder = 1;
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 12;
  cfg.dock.lga.generations = 4;
  cfg.esmacs_cg = fe::cg_config(0.2);
  cfg.esmacs_cg.replicas = 2;
  cfg.esmacs_fg = fe::fg_config(0.05);
  cfg.esmacs_fg.replicas = 2;
  cfg.surrogate.epochs = 2;
  cfg.aae.epochs = 2;
  cfg.threads = 2;
  cfg.seed = 99;

  obs::Recorder recorder;
  cfg.recorder = &recorder;
  core::Target target = core::Target::make("obs-target", 31, 40, 21);
  core::Campaign campaign(std::move(target), cfg);
  const auto report = campaign.run();
  ASSERT_EQ(report.iterations.size(), 2u);

  // Export the Chrome trace and parse it back.
  const obs::Trace trace = recorder.take();
  const auto path = tmp("imp_obs_campaign_trace.json");
  obs::write_chrome_trace(trace, path.string());
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  const JsonValue doc = JsonParser(buf.str()).parse();
  std::filesystem::remove(path);

  const auto& events = doc.at("traceEvents").array;
  EXPECT_GT(events.size(), 20u);
  std::set<std::string> cats;
  std::set<std::string> stage_names;
  for (const auto& e : events) {
    cats.insert(e.at("cat").string);
    if (e.at("cat").string == "stage") stage_names.insert(e.at("name").string);
    EXPECT_GE(e.at("dur").number, 0.0);
  }
  // The acceptance criterion: all five instrumented layers show up.
  for (const char* cat : {"stage", "task", "dock", "ml", "fe", "pool"})
    EXPECT_TRUE(cats.count(cat)) << "missing category " << cat;
  // Campaign stage boundaries by name.
  for (const char* st : {"ML1", "S1", "S3-CG", "S2", "S3-FG"})
    EXPECT_TRUE(stage_names.count(st)) << "missing stage span " << st;

  // Metrics flowed too: dock counters match the report, GEMM flops counted
  // during ML1 training, pool gauges published.
  std::size_t docked = 0;
  for (const auto& m : report.iterations) docked += m.docked;
  EXPECT_EQ(recorder.metrics().counter("dock.ligands").value(), docked);
  EXPECT_GT(recorder.metrics().counter("dock.evaluations").value(), 0u);
  EXPECT_GT(recorder.metrics().counter("ml.gemm.flops").value(), 0u);
  EXPECT_EQ(recorder.metrics().histogram("dock.ligand_seconds").snapshot().count,
            docked);
  EXPECT_GT(recorder.metrics().gauge("pool.executed").value(), 0.0);

  // The metrics snapshot is valid JSON as well.
  std::ostringstream ms;
  recorder.metrics().to_json(ms);
  EXPECT_NO_THROW(JsonParser(ms.str()).parse());

  // Campaign profile came from the same trace.
  EXPECT_FALSE(report.profile.tasks.empty());
}

}  // namespace
}  // namespace impeccable
