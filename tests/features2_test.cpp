// Tests for the second extension wave: position restraints / restrained
// equilibration, the RES budget advisor, and Murcko scaffolds.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/library.hpp"
#include "impeccable/chem/scaffold.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/kabsch.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/md/integrator.hpp"
#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/ml/res.hpp"

namespace chem = impeccable::chem;
namespace md = impeccable::md;
namespace ml = impeccable::ml;
using impeccable::common::Rng;
using impeccable::common::Vec3;

// ---------------------------------------------------------------- restraints

TEST(Restraints, EnergyAndForcesMatchFiniteDifference) {
  md::System sys;
  sys.topology.beads.resize(3);
  sys.positions = {{0, 0, 0}, {4, 0, 0}, {0, 4, 0}};

  md::ForceFieldOptions opts;
  opts.restraint_k = 3.0;
  opts.restraint_ref = {{0.5, 0, 0}, {4, 0.5, 0}, {0, 4, 0.5}};
  const md::ForceField ff(sys.topology, opts);

  std::vector<Vec3> forces;
  const auto e = ff.evaluate(sys.positions, &forces);
  EXPECT_NEAR(e.restraint, 3.0 * (0.25 + 0.25 + 0.25), 1e-9);

  const double h = 1e-6;
  for (int i = 0; i < 3; ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      auto p1 = sys.positions, p2 = sys.positions;
      (&p1[static_cast<std::size_t>(i)].x)[axis] -= h;
      (&p2[static_cast<std::size_t>(i)].x)[axis] += h;
      const double fd =
          -(ff.evaluate(p2, nullptr).total() - ff.evaluate(p1, nullptr).total()) /
          (2 * h);
      EXPECT_NEAR((&forces[static_cast<std::size_t>(i)].x)[axis], fd, 1e-4);
    }
  }
}

TEST(Restraints, SelectionRestrainsOnlyListedBeads) {
  md::System sys;
  sys.topology.beads.resize(2);
  sys.positions = {{1, 0, 0}, {5, 0, 0}};
  md::ForceFieldOptions opts;
  opts.restraint_k = 2.0;
  opts.restraint_ref = {{0, 0, 0}, {0, 0, 0}};
  opts.restrained = {0};
  const md::ForceField ff(sys.topology, opts);
  EXPECT_NEAR(ff.evaluate(sys.positions, nullptr).restraint, 2.0 * 1.0, 1e-9);
}

TEST(Restraints, MismatchedReferenceThrows) {
  md::System sys;
  sys.topology.beads.resize(2);
  sys.positions = {{0, 0, 0}, {1, 0, 0}};
  md::ForceFieldOptions opts;
  opts.restraint_k = 1.0;
  opts.restraint_ref = {{0, 0, 0}};  // wrong size
  const md::ForceField ff(sys.topology, opts);
  EXPECT_THROW(ff.evaluate(sys.positions, nullptr), std::invalid_argument);
}

TEST(Restraints, RestrainedEquilibrationKeepsProteinCloser) {
  md::ProteinOptions popts;
  popts.residues = 40;
  const auto sys = md::build_protein(9, popts);

  auto run = [&](double k) {
    md::SimulationOptions so;
    so.equilibration_steps = 400;
    so.production_steps = 40;
    so.report_interval = 40;
    so.langevin.temperature = 380.0;
    so.equilibration_restraint_k = k;
    const auto res = md::run_replica(sys, so, 11);
    // Drift of the first production frame from the start.
    const auto sel = sys.topology.selection(md::BeadKind::Protein);
    std::vector<Vec3> ref, cur;
    for (int i : sel) {
      ref.push_back(sys.positions[static_cast<std::size_t>(i)]);
      cur.push_back(res.trajectory.frames.front()
                        .positions[static_cast<std::size_t>(i)]);
    }
    return impeccable::common::rmsd_superposed(ref, cur);
  };

  const double free_drift = run(0.0);
  const double restrained_drift = run(10.0);
  EXPECT_LT(restrained_drift, free_drift);
}

// ---------------------------------------------------------------- RES budget

TEST(ResBudget, PerfectPredictorNeedsExactlyTheTopSlice) {
  std::vector<double> v(1000);
  for (int i = 0; i < 1000; ++i) v[static_cast<std::size_t>(i)] = i;
  const ml::EnrichmentSurface res(v, v);
  // To cover 100% of the top 1% a perfect predictor screens exactly 1%.
  EXPECT_NEAR(res.budget_for(0.01, 1.0), 0.01, 1e-9);
  EXPECT_NEAR(res.budget_for(0.10, 0.5), 0.05, 1e-9);
}

TEST(ResBudget, NoisierPredictorNeedsBiggerBudget) {
  Rng rng(4);
  std::vector<double> truth, good, bad;
  for (int i = 0; i < 4000; ++i) {
    const double t = rng.uniform();
    truth.push_back(t);
    good.push_back(t + rng.gauss(0, 0.05));
    bad.push_back(t + rng.gauss(0, 0.8));
  }
  const ml::EnrichmentSurface res_good(good, truth);
  const ml::EnrichmentSurface res_bad(bad, truth);
  EXPECT_LT(res_good.budget_for(0.02, 0.8), res_bad.budget_for(0.02, 0.8));
}

TEST(ResBudget, BudgetIsConsistentWithCoverage) {
  Rng rng(5);
  std::vector<double> truth, pred;
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.uniform();
    truth.push_back(t);
    pred.push_back(t + rng.gauss(0, 0.3));
  }
  const ml::EnrichmentSurface res(pred, truth);
  const double budget = res.budget_for(0.05, 0.6);
  EXPECT_GE(res.coverage(budget, 0.05), 0.6 - 1e-9);
}

// ---------------------------------------------------------------- scaffolds

TEST(Scaffold, BenzeneIsItsOwnScaffold) {
  const auto mol = chem::parse_smiles("c1ccccc1");
  EXPECT_EQ(chem::scaffold_smiles(mol), chem::canonical_smiles("c1ccccc1"));
}

TEST(Scaffold, SideChainsAreStripped) {
  // Toluene, phenol and chlorobenzene share the benzene scaffold.
  const auto a = chem::scaffold_smiles(chem::parse_smiles("Cc1ccccc1"));
  const auto b = chem::scaffold_smiles(chem::parse_smiles("Oc1ccccc1"));
  const auto c = chem::scaffold_smiles(chem::parse_smiles("Clc1ccccc1"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a, chem::canonical_smiles("c1ccccc1"));
}

TEST(Scaffold, LinkersBetweenRingsAreKept) {
  // Diphenylmethane: two rings + the CH2 linker survive.
  const auto scaffold =
      chem::murcko_scaffold(chem::parse_smiles("c1ccccc1Cc1ccccc1"));
  EXPECT_EQ(scaffold.atom_count(), 13);
  EXPECT_EQ(scaffold.ring_count(), 2);
}

TEST(Scaffold, AcyclicMoleculeGivesEmptyScaffold) {
  const auto mol = chem::parse_smiles("CCOCC(=O)NCC");
  EXPECT_EQ(chem::murcko_scaffold(mol).atom_count(), 0);
  EXPECT_EQ(chem::scaffold_smiles(mol), "");
}

TEST(Scaffold, PendantRingSubstituentFallsOff) {
  // Ibuprofen: everything except the phenyl ring is acyclic side chain.
  const auto s =
      chem::scaffold_smiles(chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O"));
  EXPECT_EQ(s, chem::canonical_smiles("c1ccccc1"));
}

TEST(Scaffold, CensusCountsChemotypes) {
  chem::CompoundLibrary lib;
  lib.name = "T";
  lib.entries = {{"a", "Cc1ccccc1"},
                 {"b", "Oc1ccccc1"},
                 {"c", "C1CCCCC1"},
                 {"d", "CCCC"}};
  const auto census = chem::scaffold_census(lib);
  EXPECT_EQ(census.at(chem::canonical_smiles("c1ccccc1")), 2);
  EXPECT_EQ(census.at(chem::canonical_smiles("C1CCCCC1")), 1);
  EXPECT_EQ(census.at(""), 1);
  EXPECT_EQ(census.size(), 3u);
}

TEST(Scaffold, GeneratedLibraryHasDiverseScaffolds) {
  const auto lib = chem::generate_library("S", 40, 31);
  const auto census = chem::scaffold_census(lib);
  // The fragment generator should produce a healthy spread of chemotypes.
  EXPECT_GE(census.size(), 10u);
}
