// Tests for the fourth extension wave: weight serialization, substructure
// matching, and pilot-walltime preemption.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/chem/substructure.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"

namespace chem = impeccable::chem;
namespace ml = impeccable::ml;
namespace rct = impeccable::rct;
namespace hpc = impeccable::hpc;

namespace {
std::filesystem::path tmp(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}
}  // namespace

// ---------------------------------------------------------------- weights

TEST(Weights, SaveLoadReproducesPredictions) {
  std::vector<chem::Image> images;
  std::vector<float> labels;
  const auto lib = chem::generate_library("W", 24, 5);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    images.push_back(chem::depict(chem::parse_smiles(lib.entries[i].smiles)));
    labels.push_back(i % 2 ? 1.0f : 0.0f);
  }
  ml::SurrogateOptions opts;
  opts.epochs = 2;
  ml::SurrogateModel trained(opts);
  trained.train(images, labels);

  const auto path = tmp("imp_weights.bin");
  trained.save_weights(path.string());

  // A fresh model with a different seed differs before loading...
  ml::SurrogateOptions opts2 = opts;
  opts2.seed = 999;
  ml::SurrogateModel fresh(opts2);
  const float before = fresh.predict(images[0]);
  // ...and is identical after.
  fresh.load_weights(path.string());
  for (int k = 0; k < 5; ++k)
    EXPECT_FLOAT_EQ(fresh.predict(images[static_cast<std::size_t>(k)]),
                    trained.predict(images[static_cast<std::size_t>(k)]));
  EXPECT_NE(before, fresh.predict(images[0]));
  std::filesystem::remove(path);
}

TEST(Weights, LoadRejectsArchitectureMismatch) {
  ml::SurrogateOptions small;
  small.base_filters = 4;
  small.epochs = 1;
  ml::SurrogateModel a(small);
  const auto path = tmp("imp_weights_mismatch.bin");
  a.save_weights(path.string());

  ml::SurrogateOptions big = small;
  big.base_filters = 8;
  ml::SurrogateModel b(big);
  EXPECT_THROW(b.load_weights(path.string()), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(b.load_weights("/nonexistent/w.bin"), std::runtime_error);
}

TEST(Weights, LoadRejectsGarbageFile) {
  const auto path = tmp("imp_weights_bad.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "garbage";
  }
  ml::SurrogateModel m;
  EXPECT_THROW(m.load_weights(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- substructure

TEST(Substructure, FindsBenzeneInAromatics) {
  const auto toluene = chem::parse_smiles("Cc1ccccc1");
  EXPECT_TRUE(chem::has_substructure(toluene, "c1ccccc1"));
  const auto cyclohexane = chem::parse_smiles("C1CCCCC1");
  EXPECT_FALSE(chem::has_substructure(cyclohexane, "c1ccccc1"));
}

TEST(Substructure, CarboxylicAcidMotif) {
  EXPECT_TRUE(chem::has_substructure(
      chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O"), "C(=O)O"));
  EXPECT_FALSE(chem::has_substructure(chem::parse_smiles("CCOCC"), "C(=O)O"));
}

TEST(Substructure, BondOrderMatters) {
  const auto ethene = chem::parse_smiles("C=C");
  const auto ethane = chem::parse_smiles("CC");
  EXPECT_TRUE(chem::has_substructure(ethene, "C=C"));
  EXPECT_FALSE(chem::has_substructure(ethane, "C=C"));
  EXPECT_FALSE(chem::has_substructure(ethene, "CC"));  // single-bond query
}

TEST(Substructure, CountsMultipleOccurrences) {
  // Terephthalic-acid-like: two carboxyls on a ring.
  const auto mol = chem::parse_smiles("OC(=O)c1ccc(cc1)C(=O)O");
  // Each C(=O)O matches; O ordering yields one mapping per group.
  EXPECT_EQ(chem::count_substructures(mol, chem::parse_smiles("C(=O)O")), 2u);
}

TEST(Substructure, QueryLargerThanMoleculeNeverMatches) {
  const auto small = chem::parse_smiles("CC");
  EXPECT_FALSE(chem::has_substructure(small, "CCCC"));
  EXPECT_TRUE(chem::find_substructures(small, chem::parse_smiles("CCC")).empty());
}

TEST(Substructure, MatchMapsAreConsistent) {
  const auto mol = chem::parse_smiles("CCOc1ccccc1");
  const auto query = chem::parse_smiles("COc1ccccc1");
  const auto matches = chem::find_substructures(mol, query, 4);
  ASSERT_FALSE(matches.empty());
  for (const auto& map : matches) {
    ASSERT_EQ(map.size(), static_cast<std::size_t>(query.atom_count()));
    for (int qa = 0; qa < query.atom_count(); ++qa)
      EXPECT_EQ(mol.atom(map[static_cast<std::size_t>(qa)]).element,
                query.atom(qa).element);
  }
}

TEST(Substructure, RingQueryRequiresRing) {
  // Pyridine in a fused system.
  const auto mol = chem::parse_smiles("c1ccc2ncccc2c1");  // quinoline
  EXPECT_TRUE(chem::has_substructure(mol, "c1ccncc1"));
  EXPECT_FALSE(chem::has_substructure(chem::parse_smiles("c1ccccc1"), "c1ccncc1"));
}

// ---------------------------------------------------------------- walltime

TEST(PilotWalltime, LongTaskDiesAtBoundaryAndRetrySucceedsAfterSplit) {
  rct::SimBackendOptions sopts;
  sopts.pilot_walltime = 10.0;
  sopts.task_overhead = 0.0;
  rct::SimBackend backend(hpc::test_machine(1), sopts);

  rct::TaskDescription t;
  t.name = "long";
  t.gpus = 1;
  t.duration = 25.0;  // spans three allocations
  std::vector<rct::TaskResult> results;
  backend.submit(t, [&](const rct::TaskResult& r) { results.push_back(r); });
  backend.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error, "pilot walltime");
  EXPECT_NEAR(results[0].end_time, 10.0, 1e-9);
  EXPECT_GE(backend.pilot_generation(), 2);
}

TEST(PilotWalltime, ShortTasksSurviveAcrossGenerations) {
  rct::SimBackendOptions sopts;
  sopts.pilot_walltime = 20.0;
  sopts.task_overhead = 0.0;
  rct::SimBackend backend(hpc::test_machine(1), sopts);

  // 12 tasks x 5 s on 6 GPUs: two waves fit in the first pilot; later
  // submissions land in the second.
  int ok = 0, killed = 0;
  for (int i = 0; i < 30; ++i) {
    rct::TaskDescription t;
    t.gpus = 1;
    t.duration = 5.0;
    backend.submit(t, [&](const rct::TaskResult& r) {
      if (r.ok) ++ok;
      else ++killed;
    });
  }
  backend.drain();
  EXPECT_EQ(ok + killed, 30);
  EXPECT_GT(ok, 20);  // most tasks fit within boundaries
}

TEST(PilotWalltime, AppManagerRetriesAcrossPilots) {
  // A task whose duration fits a pilot but that starts mid-allocation gets
  // killed once and then succeeds in the next pilot via EnTK retry.
  rct::SimBackendOptions sopts;
  sopts.pilot_walltime = 10.0;
  sopts.task_overhead = 0.0;
  rct::SimBackend backend(hpc::test_machine(1), sopts);
  rct::AppManagerOptions mopts;
  mopts.max_retries = 3;
  mopts.stage_transition_overhead = 0.0;
  rct::AppManager mgr(backend, mopts);

  rct::Pipeline p("walltime");
  rct::TaskDescription blocker;  // occupies the pilot for 6 s first
  blocker.name = "blocker";
  blocker.gpus = 6;
  blocker.whole_nodes = 1;
  blocker.duration = 6.0;
  rct::TaskDescription work;  // 8 s: dies at t=10, succeeds on retry
  work.name = "work";
  work.gpus = 1;
  work.duration = 8.0;
  p.add_stage({"s1", {blocker}, nullptr});
  p.add_stage({"s2", {work}, nullptr});

  const auto results = mgr.run({std::move(p)});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
  EXPECT_EQ(mgr.tasks_retried(), 1u);
}
