// Tests for tools/lint: every rule fires on a crafted bad snippet, scoping
// and suppressions work, and the real tree is clean (the same property the
// `lint.tree` ctest enforces, checked here through the library API so a
// regression points at the rule, not just the tool's exit code).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace lint = impeccable::lint;

namespace {

std::vector<lint::Diagnostic> lint_as(std::string_view path,
                                      std::string_view code) {
  return lint::lint_source(code, lint::classify(path), path);
}

TEST(LintClassify, PathClasses) {
  auto src = lint::classify("src/impeccable/ml/tensor.hpp");
  EXPECT_TRUE(src.in_src);
  EXPECT_TRUE(src.is_header);
  EXPECT_FALSE(src.in_dock_scorer);
  EXPECT_FALSE(src.in_stages);

  EXPECT_TRUE(lint::classify("src/impeccable/dock/score.cpp").in_dock_scorer);
  EXPECT_TRUE(lint::classify("src/impeccable/dock/grid.hpp").in_dock_scorer);
  EXPECT_TRUE(
      lint::classify("src/impeccable/dock/score_batch.cpp").in_dock_scorer);
  EXPECT_TRUE(
      lint::classify("src/impeccable/dock/score_batch.hpp").in_dock_scorer);
  EXPECT_FALSE(
      lint::classify("src/impeccable/dock/engine.cpp").in_dock_scorer);
  EXPECT_TRUE(
      lint::classify("src/impeccable/core/stages/ml1_stage.cpp").in_stages);
  EXPECT_FALSE(lint::classify("tests/lint_test.cpp").in_src);

  auto serve = lint::classify("src/impeccable/serve/server.cpp");
  EXPECT_TRUE(serve.in_serve);
  EXPECT_TRUE(serve.in_src) << "serve/ must inherit the src/-wide rules";
  // A serve/ directory outside src/ (e.g. tests fixtures) is not the class.
  EXPECT_FALSE(lint::classify("tests/serve/fake.cpp").in_serve);
}

TEST(LintRules, NondetSourceFires) {
  const char* bad = R"(
#include <ctime>
void f() {
  std::random_device rd;
  auto t = time(nullptr);
  auto c = clock();
  auto* e = getenv("HOME");
  auto n = std::chrono::system_clock::now();
  (void)rd; (void)t; (void)c; (void)e; (void)n;
}
)";
  auto diags = lint_as("src/impeccable/x/y.cpp", bad);
  int nondet = 0;
  for (const auto& d : diags)
    if (d.rule == "no-nondet-source") ++nondet;
  EXPECT_GE(nondet, 5) << "include, random_device, time(), clock(), getenv, "
                          "system_clock should all fire";
}

TEST(LintRules, NondetSourceScopedToSrc) {
  const char* bad = "void f() { auto t = time(nullptr); (void)t; }\n";
  EXPECT_FALSE(lint_as("src/impeccable/x/y.cpp", bad).empty());
  EXPECT_TRUE(lint_as("tests/some_test.cpp", bad).empty());
  EXPECT_TRUE(lint_as("examples/quickstart.cpp", bad).empty());
}

TEST(LintRules, NondetSourceNoMemberFalsePositives) {
  // Members and methods *named* time/clock are fine — only the global
  // wall-clock calls are banned.
  const char* ok = R"(
struct Event { double time = 0.0; };
void f(Event& ev, Recorder& r) {
  double a = ev.time;
  double b = r.start_time();
  double c = span->time();
  (void)a; (void)b; (void)c;
}
)";
  EXPECT_TRUE(lint_as("src/impeccable/hpc/des.cpp", ok).empty());
}

TEST(LintRules, StdRandFiresEverywhere) {
  const char* bad = "int f() { srand(7); return rand(); }\n";
  for (const char* path : {"src/impeccable/x.cpp", "tests/t.cpp",
                           "bench/b.cpp", "examples/e.cpp"}) {
    auto diags = lint_as(path, bad);
    ASSERT_FALSE(diags.empty()) << path;
    EXPECT_EQ(diags[0].rule, "no-std-rand");
  }
  // A local variable named `random` (no call, unqualified) is not a finding.
  EXPECT_TRUE(
      lint_as("src/impeccable/x.cpp", "int g(int random) { return random; }\n")
          .empty());
}

TEST(LintRules, IostreamInLibFires) {
  const char* bad = "#include <iostream>\nvoid f() { std::cout << 1; }\n";
  auto diags = lint_as("src/impeccable/x.cpp", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-iostream-in-lib");
  EXPECT_EQ(diags[0].line, 2);
  // Examples and tests may print.
  EXPECT_TRUE(lint_as("examples/e.cpp", bad).empty());
  // A plain identifier named cout (conv output channels) is not a finding.
  EXPECT_TRUE(
      lint_as("src/impeccable/ml/x.cpp", "int f(int cout) { return cout; }\n")
          .empty());
}

TEST(LintRules, NakedAllocFiresInScorerFiles) {
  const char* bad = R"(
void f(int n) {
  double* a = new double[n];
  void* m = malloc(16);
  auto* v = new std::vector<double>(n);
  delete[] a; free(m); delete v;
}
)";
  auto diags = lint_as("src/impeccable/dock/score.cpp", bad);
  int alloc = 0;
  for (const auto& d : diags)
    if (d.rule == "no-naked-alloc") ++alloc;
  EXPECT_EQ(alloc, 2) << "new[] and malloc fire; scalar new does not";
  // Same code elsewhere in dock/ is out of the rule's scope.
  EXPECT_TRUE(lint_as("src/impeccable/dock/engine.cpp", bad).empty());
}

TEST(LintRules, NakedAllocCoversChemStoreFiles) {
  // The out-of-core library files carry the scorer's allocation guarantee:
  // the mmap read path must not grow per-ligand heap state.
  EXPECT_TRUE(lint::classify("src/impeccable/chem/store.cpp").in_chem_store);
  EXPECT_TRUE(lint::classify("src/impeccable/chem/store.hpp").in_chem_store);
  EXPECT_TRUE(lint::classify("src/impeccable/chem/ligand_source.cpp")
                  .in_chem_store);
  EXPECT_FALSE(
      lint::classify("src/impeccable/chem/library.cpp").in_chem_store);
  EXPECT_FALSE(lint::classify("tests/store_fake.cpp").in_chem_store);

  const char* bad = "void f() { void* m = malloc(8); free(m); }\n";
  auto diags = lint_as("src/impeccable/chem/store.cpp", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-naked-alloc");
  // And they inherit the src/-wide rules (iostream ban) like any library
  // file.
  auto io = lint_as("src/impeccable/chem/ligand_source.cpp",
                    "void g() { std::cout << 1; }\n");
  ASSERT_EQ(io.size(), 1u);
  EXPECT_EQ(io[0].rule, "no-iostream-in-lib");
  // Other chem/ files stay out of the allocation rule's scope.
  EXPECT_TRUE(lint_as("src/impeccable/chem/library.cpp", bad).empty());
}

TEST(LintRules, PragmaOnce) {
  auto diags = lint_as("src/impeccable/x.hpp", "struct A {};\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "pragma-once");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_TRUE(
      lint_as("src/impeccable/x.hpp", "#pragma once\nstruct A {};\n").empty());
  // .cpp files are exempt.
  EXPECT_TRUE(lint_as("src/impeccable/x.cpp", "struct A {};\n").empty());
}

TEST(LintRules, UnorderedInStages) {
  const char* bad =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n";
  auto diags = lint_as("src/impeccable/core/stages/s.cpp", bad);
  ASSERT_GE(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "no-unordered-in-stages");
  // The multi-campaign engine merges per-target state the same way the
  // stage modules do, so it inherits the rule.
  auto multi = lint_as("src/impeccable/core/multi_campaign.cpp", bad);
  ASSERT_GE(multi.size(), 2u);
  EXPECT_EQ(multi[0].rule, "no-unordered-in-stages");
  // Outside core/stages/ the containers are allowed (md's exclusion set).
  EXPECT_TRUE(lint_as("src/impeccable/md/forcefield.hpp",
                      "#pragma once\n" + std::string(bad))
                  .empty());
}

TEST(LintRules, ServeInheritsSrcRules) {
  // The serving layer is library code: wall-clock sources and iostream
  // writes are findings exactly as anywhere else under src/.
  EXPECT_FALSE(lint_as("src/impeccable/serve/server.cpp",
                       "void f() { auto t = time(nullptr); (void)t; }\n")
                   .empty());
  EXPECT_FALSE(lint_as("src/impeccable/serve/loadgen.cpp",
                       "#include <iostream>\nvoid f() { std::cout << 1; }\n")
                   .empty());
}

TEST(LintRules, DetachedThreadFiresOnlyInServe) {
  const char* bad = "void f(std::thread& t) { t.detach(); }\n";
  auto diags = lint_as("src/impeccable/serve/server.cpp", bad);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-detached-thread");
  // Other modules (and non-src serve/ paths) are out of scope.
  EXPECT_TRUE(lint_as("src/impeccable/common/thread_pool.cpp", bad).empty());
  EXPECT_TRUE(lint_as("tests/serve_test.cpp", bad).empty());
  // Only the member-call shape fires: a function named detach is fine.
  EXPECT_TRUE(lint_as("src/impeccable/serve/x.cpp",
                      "void detach(); void g() { detach(); }\n")
                  .empty());
  // Suppressible like every rule.
  EXPECT_TRUE(lint_as("src/impeccable/serve/x.cpp",
                      "void f(std::thread& t) { t.detach(); }  "
                      "// lint:allow(no-detached-thread)\n")
                  .empty());
}

TEST(LintScanner, LiteralsAndCommentsDoNotFire) {
  const char* ok = R"(
// rand() in a comment, and time() too
/* std::cout << rand(); */
const char* s = "time(nullptr) rand() std::cout";
const char* r = R"x(getenv("PATH") clock())x";
char c = '"';
int after = rand;  // identifier use without call or qualifier
)";
  EXPECT_TRUE(lint_as("src/impeccable/x.cpp", ok).empty());
}

TEST(LintSuppress, SameLine) {
  auto diags = lint_as("src/impeccable/x.cpp",
                       "int a = rand();  // lint:allow(no-std-rand)\n");
  EXPECT_TRUE(diags.empty());
  // A suppression for a different rule does not hide the finding.
  diags = lint_as("src/impeccable/x.cpp",
                  "int a = rand();  // lint:allow(pragma-once)\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-std-rand");
}

TEST(LintSuppress, NextLineAndFile) {
  EXPECT_TRUE(lint_as("src/impeccable/x.cpp",
                      "// lint:allow-next-line(no-std-rand)\n"
                      "int a = rand();\n")
                  .empty());
  EXPECT_TRUE(lint_as("src/impeccable/x.cpp",
                      "// lint:allow-file(no-std-rand)\n"
                      "int a = rand();\n"
                      "int b = rand();\n")
                  .empty());
  // allow-next-line covers only the following line.
  auto diags = lint_as("src/impeccable/x.cpp",
                       "// lint:allow-next-line(no-std-rand)\n"
                       "int a = rand();\n"
                       "int b = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintSuppress, CommaSeparatedList) {
  EXPECT_TRUE(lint_as("src/impeccable/x.hpp",
                      "// lint:allow-file(no-std-rand, pragma-once)\n"
                      "int a = rand();\n")
                  .empty());
}

TEST(LintTree, RealTreeIsClean) {
  const auto diags = lint::lint_tree(IMPECCABLE_SOURCE_DIR);
  std::string rendered;
  lint::print(diags, rendered);
  EXPECT_TRUE(diags.empty()) << rendered;
}

TEST(LintPrint, Format) {
  std::vector<lint::Diagnostic> d = {
      {"src/a.cpp", 7, "no-std-rand", "boom"}};
  std::string out;
  EXPECT_EQ(lint::print(d, out), 1u);
  EXPECT_EQ(out, "src/a.cpp:7: [no-std-rand] boom\n");
}

}  // namespace
