// Edge-case sweeps across modules: SMILES corner syntax, docking box walls,
// grid/cluster boundaries, DES counters, and small-input robustness.

#include <gtest/gtest.h>

#include <cmath>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/kabsch.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"
#include "impeccable/dock/search.hpp"
#include "impeccable/hpc/des.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/rct/raptor.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace hpc = impeccable::hpc;
namespace rct = impeccable::rct;
using impeccable::common::Rng;
using impeccable::common::Vec3;

// ---------------------------------------------------------------- SMILES

TEST(SmilesEdge, MultiCharges) {
  const auto dication = chem::parse_smiles("[NH2+]CC[NH2+]");
  int total = 0;
  for (int i = 0; i < dication.atom_count(); ++i)
    total += dication.atom(i).formal_charge;
  EXPECT_EQ(total, 2);

  const auto two = chem::parse_smiles("[N+2]");
  EXPECT_EQ(two.atom(0).formal_charge, 2);
  const auto double_plus = chem::parse_smiles("[N++]");
  EXPECT_EQ(double_plus.atom(0).formal_charge, 2);
  const auto minus2 = chem::parse_smiles("[O-2]");
  EXPECT_EQ(minus2.atom(0).formal_charge, -2);
}

TEST(SmilesEdge, ExplicitAromaticBondSymbol) {
  const auto a = chem::parse_smiles("c1ccccc1");
  const auto b = chem::parse_smiles("c:1:c:c:c:c:c:1");
  EXPECT_EQ(chem::write_smiles(a), chem::write_smiles(b));
}

TEST(SmilesEdge, IsotopesAreAcceptedAndIgnored) {
  const auto a = chem::parse_smiles("[13CH4]");
  EXPECT_EQ(a.formula(), "CH4");
  const auto b = chem::parse_smiles("[2H]");  // deuterium -> plain H atom
  EXPECT_EQ(b.atom(0).element, chem::Element::H);
}

TEST(SmilesEdge, RingBondOrderAtEitherEnd) {
  // Cyclohexene written with '=' on the opening or closing digit.
  const auto open = chem::parse_smiles("C=1CCCCC1");
  const auto close = chem::parse_smiles("C1CCCCC=1");
  EXPECT_EQ(chem::write_smiles(open), chem::write_smiles(close));
  int doubles = 0;
  for (int b = 0; b < open.bond_count(); ++b)
    if (open.bond(b).order == 2) ++doubles;
  EXPECT_EQ(doubles, 1);
}

TEST(SmilesEdge, FusedAromaticWithPyrroleNitrogen) {
  // Indole: the [nH] must survive the round trip inside a fused system.
  const auto mol = chem::parse_smiles("c1ccc2[nH]ccc2c1");
  const auto re = chem::parse_smiles(chem::write_smiles(mol));
  EXPECT_EQ(mol.formula(), re.formula());
  int nh = 0;
  for (int i = 0; i < re.atom_count(); ++i)
    if (re.atom(i).element == chem::Element::N && re.hydrogen_count(i) == 1)
      ++nh;
  EXPECT_EQ(nh, 1);
}

// ---------------------------------------------------------------- docking box

TEST(DockingBox, SearchPullsEscapedPosesBackInside) {
  const auto receptor = dock::Receptor::synthesize("wall", 3);
  dock::GridOptions gopts;
  gopts.nodes = 21;
  const auto grid = dock::compute_grid(receptor, gopts);
  const auto mol = chem::parse_smiles("CCO");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);

  // Start far outside the box: the quadratic wall dominates and ADADELTA
  // must pull the pose back towards the box.
  dock::Pose outside = lig.identity_pose(grid->pocket_center +
                                         Vec3{30.0, 0.0, 0.0});
  const double e_out = score.evaluate(outside);
  EXPECT_GT(e_out, 1e4);  // deep in the wall

  dock::AdadeltaOptions aopts;
  aopts.max_iterations = 300;
  const auto relaxed = dock::adadelta(score, outside, aopts);
  EXPECT_LT(relaxed.energy, e_out * 0.1);
  const double dist = impeccable::common::distance(relaxed.pose.translation,
                                                   grid->pocket_center);
  EXPECT_LT(dist, 30.0);  // moved inward
}

TEST(DockingBox, WallEnergyGrowsQuadratically) {
  const auto receptor = dock::Receptor::synthesize("wall2", 4);
  dock::GridOptions gopts;
  gopts.nodes = 21;
  const auto grid = dock::compute_grid(receptor, gopts);
  const auto& field = grid->map(dock::ProbeType::Carbon);
  const Vec3 center = grid->pocket_center;
  const double half = 5.0;  // box half-width: (21-1) nodes x 0.5 A / 2
  const double e1 = field.sample(center + Vec3{half + 2.0, 0, 0}).value;
  const double e2 = field.sample(center + Vec3{half + 4.0, 0, 0}).value;
  // Doubling the overshoot roughly quadruples the wall term.
  EXPECT_GT(e2, 2.5 * e1);
}

// ---------------------------------------------------------------- DES / RAPTOR

TEST(DesEdge, ProcessedCounterAndRunUntilResume) {
  hpc::Simulator sim;
  int hits = 0;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_at(i, [&] { ++hits; });
  sim.run_until(2.5);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.processed(), 2u);
  sim.run();
  EXPECT_EQ(hits, 5);
  EXPECT_EQ(sim.processed(), 5u);
}

TEST(RaptorEdge, SingleWorkerSingleMaster) {
  const std::vector<double> durations(50, 0.1);
  rct::RaptorOptions opts;
  opts.workers = 1;
  opts.masters = 1;
  opts.bulk_size = 8;
  const auto stats = rct::run_raptor(opts, durations);
  EXPECT_EQ(stats.tasks, 50u);
  // Serial execution: makespan >= total work.
  EXPECT_GE(stats.makespan, 5.0 - 1e-9);
  EXPECT_NEAR(stats.load_imbalance, 1.0, 1e-9);
}

TEST(RaptorEdge, EmptyWorkloadIsSafe) {
  rct::RaptorOptions opts;
  opts.workers = 4;
  const auto stats = rct::run_raptor(opts, {});
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.makespan, 0.0);
}

// ---------------------------------------------------------------- analysis

TEST(AnalysisEdge, RmsdSeriesRejectsEmptySelection) {
  impeccable::md::Trajectory traj;
  traj.frames.emplace_back();
  traj.frames.back().positions = {{0, 0, 0}};
  EXPECT_THROW(impeccable::md::rmsd_series(traj, {}), std::invalid_argument);
}

TEST(AnalysisEdge, SuperposeSinglePoint) {
  const std::vector<Vec3> a{{1, 2, 3}};
  const std::vector<Vec3> b{{-4, 0, 9}};
  // One point: translation alone aligns exactly.
  EXPECT_NEAR(impeccable::common::rmsd_superposed(a, b), 0.0, 1e-12);
}
