// Tests for the extension features: EnTK task retries, conformer-ensemble
// and multi-crystal-structure docking, the multi-structure campaign path,
// and the sharded ML1 inference pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/core/campaign.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/ml/shards.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/entk.hpp"

namespace chem = impeccable::chem;
namespace dock = impeccable::dock;
namespace ml = impeccable::ml;
namespace rct = impeccable::rct;
namespace core = impeccable::core;

// ---------------------------------------------------------------- retries

TEST(EntkRetries, FlakyTaskEventuallySucceeds) {
  rct::LocalBackend backend(2);
  rct::AppManagerOptions opts;
  opts.max_retries = 3;
  rct::AppManager mgr(backend, opts);

  std::atomic<int> attempts{0};
  rct::Pipeline p("flaky");
  rct::TaskDescription t;
  t.name = "flaky";
  t.payload = [&] {
    if (attempts.fetch_add(1) < 2) throw std::runtime_error("transient");
  };
  p.add_stage({"s", {t}, nullptr});
  const auto results = mgr.run({std::move(p)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(mgr.tasks_retried(), 2u);
  EXPECT_EQ(mgr.tasks_failed(), 0u);
}

TEST(EntkRetries, PermanentFailureIsRecordedAfterBudget) {
  rct::LocalBackend backend(2);
  rct::AppManagerOptions opts;
  opts.max_retries = 2;
  rct::AppManager mgr(backend, opts);

  std::atomic<int> attempts{0};
  rct::Pipeline p("dead");
  rct::TaskDescription t;
  t.name = "dead";
  t.payload = [&] {
    attempts.fetch_add(1);
    throw std::runtime_error("permanent");
  };
  p.add_stage({"s", {t}, nullptr});
  const auto results = mgr.run({std::move(p)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(attempts.load(), 3);  // 1 + 2 retries
  EXPECT_EQ(mgr.tasks_failed(), 1u);
}

TEST(EntkRetries, NoRetriesByDefault) {
  rct::LocalBackend backend(1);
  rct::AppManager mgr(backend);
  std::atomic<int> attempts{0};
  rct::Pipeline p("d");
  rct::TaskDescription t;
  t.payload = [&] {
    attempts.fetch_add(1);
    throw std::runtime_error("x");
  };
  p.add_stage({"s", {t}, nullptr});
  mgr.run({std::move(p)});
  EXPECT_EQ(attempts.load(), 1);
}

// ---------------------------------------------------- conformer ensembles

namespace {

std::shared_ptr<const dock::AffinityGrid> small_grid(std::uint64_t seed) {
  dock::GridOptions gopts;
  gopts.nodes = 21;
  return dock::compute_grid(dock::Receptor::synthesize("G", seed), gopts);
}

dock::DockOptions fast_dock() {
  dock::DockOptions d;
  d.runs = 1;
  d.lga.population = 16;
  d.lga.generations = 6;
  return d;
}

}  // namespace

TEST(ConformerEnsemble, BestOfConformersIsAtLeastSingle) {
  const auto grid = small_grid(3);
  const auto mol = chem::parse_smiles("CCOc1ccccc1CC(=O)N");
  std::vector<double> per_conformer;
  const auto multi = dock::dock_conformer_ensemble(*grid, mol, "L", 4,
                                                   fast_dock(), &per_conformer);
  ASSERT_EQ(per_conformer.size(), 4u);
  const auto single = dock::dock(*grid, mol, "L", fast_dock());
  EXPECT_LE(multi.best_score, single.best_score + 1e-9);
  // The returned best equals the per-conformer minimum.
  EXPECT_DOUBLE_EQ(multi.best_score,
                   *std::min_element(per_conformer.begin(), per_conformer.end()));
}

TEST(ConformerEnsemble, EvaluationsAccumulate) {
  const auto grid = small_grid(4);
  const auto mol = chem::parse_smiles("CCCCO");
  const auto one = dock::dock_conformer_ensemble(*grid, mol, "L", 1, fast_dock());
  const auto three = dock::dock_conformer_ensemble(*grid, mol, "L", 3, fast_dock());
  EXPECT_GT(three.evaluations, 2 * one.evaluations);
}

TEST(MultiStructure, PicksBestAcrossGrids) {
  std::vector<std::shared_ptr<const dock::AffinityGrid>> grids{
      small_grid(10), small_grid(11), small_grid(12)};
  const auto mol = chem::parse_smiles("CC(C)c1ccc(O)cc1");
  int best_structure = -1;
  const auto res = dock::dock_multi_structure(grids, mol, "L", fast_dock(),
                                              &best_structure);
  ASSERT_GE(best_structure, 0);
  ASSERT_LT(best_structure, 3);
  // Re-dock against the winning grid alone reproduces the same score.
  dock::DockOptions sopts = fast_dock();
  sopts.seed = fast_dock().seed ^ (0x9e37 * (static_cast<std::size_t>(best_structure) + 1));
  const auto direct = dock::dock(*grids[static_cast<std::size_t>(best_structure)],
                                 mol, "L", sopts);
  EXPECT_DOUBLE_EQ(res.best_score, direct.best_score);
}

TEST(MultiStructure, RejectsEmptyGridList) {
  const auto mol = chem::parse_smiles("CCO");
  EXPECT_THROW(dock::dock_multi_structure({}, mol, "L"), std::invalid_argument);
}

TEST(MultiStructure, TargetEnsembleBuildsVariants) {
  const auto t = core::Target::make("T", 5, 30, 15, /*crystal_structures=*/3);
  EXPECT_EQ(t.grids.size(), 3u);
  EXPECT_EQ(t.grid.get(), t.grids.front().get());
  // The variants differ (different pocket maps).
  const auto a = t.grids[0]->map(dock::ProbeType::Carbon).sample(t.grids[0]->pocket_center);
  const auto b = t.grids[1]->map(dock::ProbeType::Carbon).sample(t.grids[1]->pocket_center);
  EXPECT_NE(a.value, b.value);
}

// ---------------------------------------------------------------- shards

namespace {

std::vector<ml::ShardRecord> make_records(std::size_t n) {
  const auto lib = chem::generate_library("SHD", n, 77);
  std::vector<ml::ShardRecord> records;
  for (const auto& e : lib.entries)
    records.push_back({e.id, chem::depict(chem::parse_smiles(e.smiles))});
  return records;
}

}  // namespace

TEST(Shards, RleRoundTrip) {
  const std::vector<std::uint8_t> raw{0, 0, 0, 5, 5, 1, 0, 0, 0, 0};
  EXPECT_EQ(ml::rle_decompress(ml::rle_compress(raw)), raw);
  EXPECT_TRUE(ml::rle_decompress(ml::rle_compress({})).empty());
  // Long runs split at 255.
  std::vector<std::uint8_t> zeros(1000, 0);
  EXPECT_EQ(ml::rle_decompress(ml::rle_compress(zeros)), zeros);
}

TEST(Shards, CompressionRatioOnDepictions) {
  const auto records = make_records(16);
  std::size_t raw = 0;
  for (const auto& r : records) raw += r.image.data.size();
  const auto blob = ml::encode_shard(records);
  // The paper reports ~14.2x with gzip; sparse depictions should give >3x
  // even with plain RLE.
  EXPECT_GT(static_cast<double>(raw) / blob.size(), 3.0);
}

TEST(Shards, EncodeDecodeRoundTrip) {
  const auto records = make_records(6);
  const auto decoded = ml::decode_shard(ml::encode_shard(records));
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].id, records[i].id);
    ASSERT_EQ(decoded[i].image.data.size(), records[i].image.data.size());
    for (std::size_t k = 0; k < records[i].image.data.size(); ++k)
      EXPECT_NEAR(decoded[i].image.data[k], records[i].image.data[k], 1.0 / 254);
  }
}

TEST(Shards, DecodeRejectsGarbage) {
  EXPECT_THROW(ml::decode_shard({1, 2, 3}), std::runtime_error);
  std::vector<std::uint8_t> noise(64, 0xab);
  EXPECT_THROW(ml::decode_shard(noise), std::runtime_error);
}

TEST(Shards, PipelineMatchesDirectInference) {
  const auto records = make_records(24);
  const auto dir = std::filesystem::temp_directory_path() / "imp_shards_a";
  std::filesystem::remove_all(dir);
  const auto paths = ml::write_shards(records, 7, dir.string());
  EXPECT_EQ(paths.size(), 4u);  // ceil(24/7)

  ml::SurrogateOptions mopts;
  const auto out = ml::run_sharded_inference(paths, mopts, {.ranks = 3});
  EXPECT_EQ(out.scores.size(), records.size());
  EXPECT_EQ(out.shards_processed, 4u);
  EXPECT_EQ(out.shards_failed, 0u);

  // Compare against direct single-model inference (quantization-tolerant).
  ml::SurrogateModel model(mopts);
  for (const auto& [id, score] : out.scores) {
    const auto it = std::find_if(records.begin(), records.end(),
                                 [&](const ml::ShardRecord& r) { return r.id == id; });
    ASSERT_NE(it, records.end());
    EXPECT_NEAR(score, model.predict(it->image), 0.05) << id;
  }
  std::filesystem::remove_all(dir);
}

TEST(Shards, CorruptShardIsSkippedNotFatal) {
  const auto records = make_records(20);
  const auto dir = std::filesystem::temp_directory_path() / "imp_shards_b";
  std::filesystem::remove_all(dir);
  auto paths = ml::write_shards(records, 5, dir.string());
  ASSERT_EQ(paths.size(), 4u);
  {  // Corrupt the second shard.
    std::ofstream f(paths[1], std::ios::binary | std::ios::trunc);
    f << "not a shard";
  }
  const auto out = ml::run_sharded_inference(paths, {}, {.ranks = 2});
  EXPECT_EQ(out.shards_failed, 1u);
  EXPECT_EQ(out.shards_processed, 3u);
  EXPECT_EQ(out.scores.size(), 15u);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- multi-structure campaign

TEST(CampaignMultiStructure, RunsWithCrystalEnsembleAndConformers) {
  core::CampaignConfig cfg;
  cfg.library_size = 30;
  cfg.iterations = 1;
  cfg.bootstrap_docks = 8;
  cfg.cg_compounds = 2;
  cfg.top_binders = 1;
  cfg.outliers_per_binder = 1;
  cfg.conformers_per_ligand = 2;  // exercised when grids.size() == 1
  cfg.dock.runs = 1;
  cfg.dock.lga.population = 12;
  cfg.dock.lga.generations = 4;
  cfg.esmacs_cg = impeccable::fe::cg_config(0.2);
  cfg.esmacs_cg.replicas = 2;
  cfg.esmacs_fg = impeccable::fe::fg_config(0.05);
  cfg.esmacs_fg.replicas = 2;
  cfg.aae.epochs = 2;

  core::Target target = core::Target::make("multi", 9, 30, 15,
                                           /*crystal_structures=*/2);
  core::Campaign campaign(std::move(target), cfg);
  const auto report = campaign.run();
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_EQ(report.iterations[0].docked, 8u);
  EXPECT_GT(report.iterations[0].fg_runs, 0u);
}
