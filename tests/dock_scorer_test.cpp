// Scorer kernel tests for the allocation-free docking hot path:
//  - a counting global allocator proves steady-state evaluate() /
//    evaluate_with_gradient() never touch the heap;
//  - a golden regression suite checks the fused sample_pair / pair-table
//    kernel against a reference implementation of the pre-fusion scorer
//    (two independent trilinear stencils, per-pose sqrt LJ parameters),
//    including poses far outside the grid box (wall penalty paths);
//  - finite-difference checks at the LJ clamp boundaries (r = 0.8 floor and
//    u = 100 cap) verify force and energy agree exactly where the energy is
//    clamped.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "impeccable/chem/smiles.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/score.hpp"

namespace dock = impeccable::dock;
namespace chem = impeccable::chem;
using impeccable::common::Rng;
using impeccable::common::Vec3;

// ----------------------------------------------------- counting allocator

namespace {
std::atomic<std::uint64_t> g_allocations{0};

// Opaque to the inliner: GCC's -Wmismatched-new-delete otherwise pairs the
// std::free inside our replaced operator delete with a caller's `new` and
// reports a (spurious) mismatch at every inlined delete site.
[[gnu::noinline]] void counted_free(void* p) noexcept { std::free(p); }
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

namespace {

std::shared_ptr<const dock::AffinityGrid> test_grid(std::uint64_t seed = 1) {
  const auto receptor = dock::Receptor::synthesize("SCORER", seed);
  dock::GridOptions gopts;
  gopts.nodes = 25;
  return dock::compute_grid(receptor, gopts);
}

// ------------------------------------------- reference (pre-fusion) scorer
//
// Kept verbatim from the original ScoringFunction: two independent
// GridField::sample calls per atom and per-pose sqrt-based LJ parameters.
// The production fused kernel must reproduce it to ≤ 1e-12 relative.

double reference_energy_and_forces(const dock::AffinityGrid& grid,
                                   const dock::Ligand& lig,
                                   const std::vector<Vec3>& coords,
                                   std::vector<Vec3>* grads) {
  double energy = 0.0;
  if (grads) grads->assign(coords.size(), Vec3{});

  const auto& atoms = lig.atoms();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const dock::FieldSample aff = grid.map(atoms[i].probe).sample(coords[i]);
    const dock::FieldSample ele = grid.electrostatic.sample(coords[i]);
    energy += aff.value + atoms[i].charge * ele.value;
    if (grads) (*grads)[i] += aff.gradient + ele.gradient * atoms[i].charge;
  }

  for (const auto& [i, j] : lig.nonbonded_pairs()) {
    const Vec3 d = coords[static_cast<std::size_t>(j)] -
                   coords[static_cast<std::size_t>(i)];
    const double r = std::max(0.8, d.norm());
    const double rij = 0.9 * (atoms[static_cast<std::size_t>(i)].vdw_radius +
                              atoms[static_cast<std::size_t>(j)].vdw_radius);
    const double eps = std::sqrt(atoms[static_cast<std::size_t>(i)].well_depth *
                                 atoms[static_cast<std::size_t>(j)].well_depth);
    const double rr = rij / r;
    const double rr6 = rr * rr * rr * rr * rr * rr;
    const double u = eps * (rr6 * rr6 - 2.0 * rr6);
    energy += std::min(u, 100.0);
    if (grads && u < 100.0 && d.norm() > 0.8) {
      const double du_dr = eps * 12.0 * (rr6 - rr6 * rr6) / r;
      const Vec3 dir = d / r;
      (*grads)[static_cast<std::size_t>(j)] += dir * du_dr;
      (*grads)[static_cast<std::size_t>(i)] -= dir * du_dr;
    }
  }
  return energy;
}

double reference_evaluate(const dock::AffinityGrid& grid, const dock::Ligand& lig,
                          const dock::Pose& pose, dock::PoseGradient* grad) {
  std::vector<Vec3> coords;
  lig.build_coords(pose, coords);
  if (!grad) return reference_energy_and_forces(grid, lig, coords, nullptr);

  std::vector<Vec3> g;
  const double energy = reference_energy_and_forces(grid, lig, coords, &g);
  grad->translation = Vec3{};
  grad->torque = Vec3{};
  grad->torsions.assign(static_cast<std::size_t>(lig.torsion_count()), 0.0);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    grad->translation += g[i];
    grad->torque += (coords[i] - pose.translation).cross(g[i]);
  }
  const auto& torsions = lig.torsions();
  for (std::size_t t = 0; t < torsions.size(); ++t) {
    const Vec3 pa = coords[static_cast<std::size_t>(torsions[t].axis_a)];
    const Vec3 pb = coords[static_cast<std::size_t>(torsions[t].axis_b)];
    const Vec3 axis = (pb - pa).normalized();
    Vec3 acc;
    for (int idx : torsions[t].moving)
      acc += (coords[static_cast<std::size_t>(idx)] - pb)
                 .cross(g[static_cast<std::size_t>(idx)]);
    grad->torsions[t] = axis.dot(acc);
  }
  return energy;
}

void expect_close(double a, double b, const char* what) {
  const double tol = 1e-12 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
  EXPECT_NEAR(a, b, tol) << what;
}

}  // namespace

// ------------------------------------------------------------- allocation

TEST(ScorerAllocation, SteadyStateEvaluateIsAllocationFree) {
  const auto grid = test_grid(3);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);

  Rng rng(41);
  dock::Pose pose = lig.random_pose(grid->pocket_center, 2.0, rng);
  dock::Pose outside = pose;
  outside.translation += Vec3{40.0, -35.0, 25.0};  // wall-penalty path

  dock::ScorerScratch scratch;
  dock::PoseGradient grad;
  // Warm-up sizes the arena and the gradient torsion vector.
  score.evaluate(pose, scratch);
  score.evaluate(outside, scratch);
  score.evaluate_with_gradient(pose, scratch, grad);
  score.evaluate_with_gradient(outside, scratch, grad);

  const std::uint64_t before = g_allocations.load();
  double sink = 0.0;
  for (int it = 0; it < 200; ++it) {
    sink += score.evaluate(pose, scratch);
    sink += score.evaluate(outside, scratch);
    sink += score.evaluate_with_gradient(pose, scratch, grad);
    sink += score.evaluate_with_gradient(outside, scratch, grad);
  }
  EXPECT_EQ(g_allocations.load(), before) << "sink=" << sink;
}

TEST(ScorerAllocation, ScratchScoreCoordsIsAllocationFree) {
  // The pointer overload resizes the caller's forces vector (may allocate on
  // first use); the ScorerScratch overload must not allocate once warmed.
  const auto grid = test_grid(5);
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const dock::Ligand lig(mol, 3);
  const dock::ScoringFunction score(*grid, lig);

  Rng rng(47);
  std::vector<Vec3> coords;
  lig.build_coords(lig.random_pose(grid->pocket_center, 2.0, rng), coords);

  dock::ScorerScratch scratch;
  std::vector<Vec3> forces;
  const double via_ptr = score.score_coords(coords, &forces);
  const double via_scratch = score.score_coords(coords, scratch);  // warm-up
  EXPECT_EQ(via_scratch, via_ptr);
  ASSERT_EQ(scratch.forces.size(), forces.size());
  for (std::size_t i = 0; i < forces.size(); ++i) {
    EXPECT_EQ(scratch.forces[i].x, forces[i].x);
    EXPECT_EQ(scratch.forces[i].y, forces[i].y);
    EXPECT_EQ(scratch.forces[i].z, forces[i].z);
  }

  const std::uint64_t before = g_allocations.load();
  double sink = 0.0;
  for (int it = 0; it < 200; ++it) sink += score.score_coords(coords, scratch);
  EXPECT_EQ(g_allocations.load(), before) << "sink=" << sink;
}

TEST(ScorerAllocation, FallbackArenaSignaturesAreAllocationFreeToo) {
  const auto grid = test_grid(3);
  const auto mol = chem::parse_smiles("CCOc1ccc(N)cc1");
  const dock::Ligand lig(mol);
  const dock::ScoringFunction score(*grid, lig);

  Rng rng(43);
  const dock::Pose pose = lig.random_pose(grid->pocket_center, 2.0, rng);
  dock::PoseGradient grad;
  score.evaluate(pose);
  score.evaluate_with_gradient(pose, grad);

  const std::uint64_t before = g_allocations.load();
  double sink = 0.0;
  for (int it = 0; it < 200; ++it) {
    sink += score.evaluate(pose);
    sink += score.evaluate_with_gradient(pose, grad);
  }
  EXPECT_EQ(g_allocations.load(), before) << "sink=" << sink;
}

// ------------------------------------------------------- golden regression

TEST(ScorerGolden, FusedKernelMatchesReferenceScorer) {
  const auto grid = test_grid(7);
  const char* smiles[] = {
      "CCO",
      "CC(=O)Oc1ccccc1C(=O)O",
      "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
      "CCOc1ccc(N)cc1",
      "c1ccc2c(c1)cccc2O",
  };

  Rng rng(101);
  for (const char* smi : smiles) {
    const auto mol = chem::parse_smiles(smi);
    const dock::Ligand lig(mol, 5);
    const dock::ScoringFunction score(*grid, lig);
    dock::ScorerScratch scratch;

    for (int m = 0; m < 24; ++m) {
      dock::Pose pose = lig.random_pose(grid->pocket_center, 3.0, rng);
      // Every fourth pose is pushed far outside the box so the wall-penalty
      // value *and* gradient paths are exercised.
      if (m % 4 == 3)
        pose.translation += Vec3{rng.uniform(20, 60), rng.uniform(-60, -20),
                                 rng.uniform(20, 60)};

      const double ref_e = reference_evaluate(*grid, lig, pose, nullptr);
      expect_close(score.evaluate(pose, scratch), ref_e, smi);

      dock::PoseGradient ref_g, new_g;
      const double ref_ge = reference_evaluate(*grid, lig, pose, &ref_g);
      const double new_ge = score.evaluate_with_gradient(pose, scratch, new_g);
      expect_close(new_ge, ref_ge, smi);
      expect_close(new_g.translation.x, ref_g.translation.x, smi);
      expect_close(new_g.translation.y, ref_g.translation.y, smi);
      expect_close(new_g.translation.z, ref_g.translation.z, smi);
      expect_close(new_g.torque.x, ref_g.torque.x, smi);
      expect_close(new_g.torque.y, ref_g.torque.y, smi);
      expect_close(new_g.torque.z, ref_g.torque.z, smi);
      ASSERT_EQ(new_g.torsions.size(), ref_g.torsions.size());
      for (std::size_t t = 0; t < new_g.torsions.size(); ++t)
        expect_close(new_g.torsions[t], ref_g.torsions[t], smi);
    }
  }
}

TEST(ScorerGolden, SamplePairMatchesTwoIndependentSamples) {
  const auto grid = test_grid(9);
  const dock::GridField& aff = grid->map(dock::ProbeType::Donor);
  const dock::GridField& ele = grid->electrostatic;

  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    // Mix of inside, boundary-straddling, and far-outside points.
    const double span = (i % 3 == 0) ? 80.0 : 12.0;
    const Vec3 p = grid->pocket_center + Vec3{rng.uniform(-span, span),
                                              rng.uniform(-span, span),
                                              rng.uniform(-span, span)};
    const dock::FieldSample sa = aff.sample(p);
    const dock::FieldSample se = ele.sample(p);
    dock::FieldSample fa, fe;
    aff.sample_pair(p, ele, fa, fe);
    EXPECT_EQ(fa.value, sa.value);
    EXPECT_EQ(fa.gradient, sa.gradient);
    EXPECT_EQ(fe.value, se.value);
    EXPECT_EQ(fe.gradient, se.gradient);

    double va, ve;
    aff.sample_pair_values(p, ele, va, ve);
    EXPECT_EQ(va, sa.value);
    EXPECT_EQ(ve, se.value);
  }
}

// --------------------------------------------------- LJ clamp boundaries

namespace {

/// Central-difference force on atom `a` from score_coords energies.
Vec3 fd_force(const dock::ScoringFunction& score, std::vector<Vec3> coords,
              std::size_t a, double h = 1e-6) {
  Vec3 out;
  for (int axis = 0; axis < 3; ++axis) {
    Vec3& p = coords[a];
    double* comp = axis == 0 ? &p.x : axis == 1 ? &p.y : &p.z;
    const double saved = *comp;
    *comp = saved + h;
    const double ep = score.score_coords(coords);
    *comp = saved - h;
    const double em = score.score_coords(coords);
    *comp = saved;
    (axis == 0 ? out.x : axis == 1 ? out.y : out.z) = (ep - em) / (2 * h);
  }
  return out;
}

}  // namespace

TEST(ScorerClamp, GradientConsistentAcrossDistanceFloor) {
  // n-pentane has exactly one nonbonded pair: the two terminal carbons.
  const auto grid = test_grid(11);
  const auto mol = chem::parse_smiles("CCCCC");
  const dock::Ligand lig(mol);
  ASSERT_EQ(lig.nonbonded_pairs().size(), 1u);
  const auto [pi, pj] = lig.nonbonded_pairs()[0];
  const dock::ScoringFunction score(*grid, lig);

  // Place the pair straddling the r = 0.8 floor, well inside the grid box so
  // the grid term is smooth. Energy is clamped for r < 0.8, so analytic and
  // finite-difference forces must agree on BOTH sides of the kink.
  std::vector<Vec3> base;
  lig.build_coords(lig.identity_pose(grid->pocket_center), base);
  for (double r : {0.8 - 1e-2, 0.8 + 1e-2}) {
    std::vector<Vec3> coords = base;
    coords[static_cast<std::size_t>(pj)] =
        coords[static_cast<std::size_t>(pi)] + Vec3{r, 0.0, 0.0};
    std::vector<Vec3> forces;
    score.score_coords(coords, &forces);
    const Vec3 fd = fd_force(score, coords, static_cast<std::size_t>(pj));
    EXPECT_NEAR(forces[static_cast<std::size_t>(pj)].x, fd.x, 1e-4) << "r=" << r;
    EXPECT_NEAR(forces[static_cast<std::size_t>(pj)].y, fd.y, 1e-4) << "r=" << r;
    EXPECT_NEAR(forces[static_cast<std::size_t>(pj)].z, fd.z, 1e-4) << "r=" << r;
  }

  // Inside the clamped region the pair contributes no force at all: the LJ
  // part of the force must be identically zero (grid term still acts).
  std::vector<Vec3> coords = base;
  coords[static_cast<std::size_t>(pj)] =
      coords[static_cast<std::size_t>(pi)] + Vec3{0.5, 0.0, 0.0};
  std::vector<Vec3> forces;
  const double e_clamped = score.score_coords(coords, &forces);
  // Shrinking the pair distance further must not change the LJ energy.
  coords[static_cast<std::size_t>(pj)] =
      coords[static_cast<std::size_t>(pi)] + Vec3{0.4, 0.0, 0.0};
  std::vector<Vec3> forces2;
  const double e_clamped2 = score.score_coords(coords, &forces2);
  // Both configurations clamp to r = 0.8: LJ contributions identical, any
  // difference comes from the (smooth, small) grid term displacement.
  EXPECT_NEAR(e_clamped, e_clamped2, 1.0);
}

TEST(ScorerClamp, GradientConsistentAcrossEnergyCap) {
  const auto grid = test_grid(11);
  const auto mol = chem::parse_smiles("CCCCC");
  const dock::Ligand lig(mol);
  const auto [pi, pj] = lig.nonbonded_pairs()[0];
  const auto& par = lig.pair_table()[0];
  const dock::ScoringFunction score(*grid, lig);

  // Bisect the pair distance where the LJ energy u(r) crosses the 100 cap
  // (u is monotone decreasing in r on (0.8, rij)).
  auto u_of = [&](double r) {
    const double rr = par.rij / r;
    const double rr6 = rr * rr * rr * rr * rr * rr;
    return par.eps * (rr6 * rr6 - 2.0 * rr6);
  };
  double lo = 0.8, hi = par.rij;
  ASSERT_GT(u_of(lo), 100.0);
  ASSERT_LT(u_of(hi), 100.0);
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    (u_of(mid) > 100.0 ? lo : hi) = mid;
  }
  const double r_cap = 0.5 * (lo + hi);
  ASSERT_GT(r_cap, 0.8);

  std::vector<Vec3> base;
  lig.build_coords(lig.identity_pose(grid->pocket_center), base);
  for (double r : {r_cap - 1e-2, r_cap + 1e-2}) {
    std::vector<Vec3> coords = base;
    coords[static_cast<std::size_t>(pj)] =
        coords[static_cast<std::size_t>(pi)] + Vec3{r, 0.0, 0.0};
    std::vector<Vec3> forces;
    score.score_coords(coords, &forces);
    const Vec3 fd = fd_force(score, coords, static_cast<std::size_t>(pj));
    // u ~ 100 kcal/mol here and du/dr is steep; scale the tolerance.
    const double tol = std::max(1e-3, 1e-5 * std::abs(fd.x));
    EXPECT_NEAR(forces[static_cast<std::size_t>(pj)].x, fd.x, tol) << "r=" << r;
    EXPECT_NEAR(forces[static_cast<std::size_t>(pj)].y, fd.y, 1e-4) << "r=" << r;
    EXPECT_NEAR(forces[static_cast<std::size_t>(pj)].z, fd.z, 1e-4) << "r=" << r;
  }
}
