// Tests for descriptors, fingerprints, diversity selection, 2D/3D coordinate
// generation, depiction and the library generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/diversity.hpp"
#include "impeccable/chem/fingerprint.hpp"
#include "impeccable/chem/layout.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/vec3.hpp"

namespace chem = impeccable::chem;

// ---------------------------------------------------------------- descriptors

TEST(Descriptors, AspirinValues) {
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const auto d = chem::compute_descriptors(mol);
  EXPECT_NEAR(d.molecular_weight, 180.16, 0.1);
  EXPECT_EQ(d.heavy_atoms, 13);
  EXPECT_EQ(d.hbond_donors, 1);   // the carboxylic OH
  EXPECT_EQ(d.hbond_acceptors, 4);
  EXPECT_EQ(d.ring_count, 1);
  EXPECT_EQ(d.formal_charge, 0);
}

TEST(Descriptors, RotatableBondsExcludeRingsAndTerminal) {
  // Butane: one central rotatable bond (C1-C2 and C2-C3? terminal rule).
  const auto butane = chem::parse_smiles("CCCC");
  EXPECT_EQ(chem::compute_descriptors(butane).rotatable_bonds, 1);
  // Cyclohexane: none.
  const auto cyclo = chem::parse_smiles("C1CCCCC1");
  EXPECT_EQ(chem::compute_descriptors(cyclo).rotatable_bonds, 0);
  // Ethylbenzene: ring-CH2 bond rotatable, CH2-CH3 terminal.
  const auto eb = chem::parse_smiles("CCc1ccccc1");
  EXPECT_EQ(chem::compute_descriptors(eb).rotatable_bonds, 1);
}

TEST(Descriptors, LogpOrdersHydrophobicity) {
  const auto hexane = chem::compute_descriptors(chem::parse_smiles("CCCCCC"));
  const auto glycerol = chem::compute_descriptors(chem::parse_smiles("OCC(O)CO"));
  EXPECT_GT(hexane.logp, glycerol.logp);
}

TEST(Descriptors, TpsaTracksPolarAtoms) {
  const auto benzene = chem::compute_descriptors(chem::parse_smiles("c1ccccc1"));
  const auto urea = chem::compute_descriptors(chem::parse_smiles("NC(=O)N"));
  EXPECT_EQ(benzene.tpsa, 0.0);
  EXPECT_GT(urea.tpsa, 50.0);
}

TEST(Descriptors, LipinskiViolationCounting) {
  chem::Descriptors d;
  d.molecular_weight = 600;
  d.logp = 6;
  d.hbond_donors = 6;
  d.hbond_acceptors = 11;
  EXPECT_EQ(chem::lipinski_violations(d), 4);
  chem::Descriptors ok;
  EXPECT_EQ(chem::lipinski_violations(ok), 0);
}

// ---------------------------------------------------------------- fingerprints

TEST(Fingerprint, IdenticalMoleculesIdenticalFingerprint) {
  const auto a = chem::morgan_fingerprint(chem::parse_smiles("CCO"));
  const auto b = chem::morgan_fingerprint(chem::parse_smiles("OCC"));
  EXPECT_DOUBLE_EQ(chem::tanimoto(a, b), 1.0);
}

TEST(Fingerprint, SimilarBeatsDissimilar) {
  const auto ethanol = chem::morgan_fingerprint(chem::parse_smiles("CCO"));
  const auto propanol = chem::morgan_fingerprint(chem::parse_smiles("CCCO"));
  const auto benzene = chem::morgan_fingerprint(chem::parse_smiles("c1ccccc1"));
  EXPECT_GT(chem::tanimoto(ethanol, propanol), chem::tanimoto(ethanol, benzene));
}

TEST(Fingerprint, SelfSimilarityIsOne) {
  const auto fp = chem::path_fingerprint(chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O"));
  EXPECT_DOUBLE_EQ(chem::tanimoto(fp, fp), 1.0);
  EXPECT_GT(fp.popcount(), 10);
}

TEST(Fingerprint, BitSetOps) {
  chem::BitSet a(128), b(128);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(100);
  EXPECT_EQ(a.popcount(), 2);
  EXPECT_EQ(chem::BitSet::intersection_count(a, b), 1);
  EXPECT_EQ(chem::BitSet::union_count(a, b), 3);
  EXPECT_NEAR(chem::tanimoto(a, b), 1.0 / 3.0, 1e-12);
}

TEST(Fingerprint, EmptyFingerprintsAreSimilar) {
  chem::BitSet a(64), b(64);
  EXPECT_DOUBLE_EQ(chem::tanimoto(a, b), 1.0);
}

// ---------------------------------------------------------------- diversity

TEST(Diversity, MaxMinPicksRequestedCount) {
  std::vector<chem::BitSet> fps;
  for (const char* s : {"CCO", "CCCO", "c1ccccc1", "c1ccncc1", "CC(=O)O", "CCCCCCCC"})
    fps.push_back(chem::morgan_fingerprint(chem::parse_smiles(s)));
  const auto picked = chem::maxmin_pick(fps, 4, 5);
  EXPECT_EQ(picked.size(), 4u);
  std::set<std::size_t> uniq(picked.begin(), picked.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(Diversity, MaxMinPrefersDiverseOverSimilar) {
  // Three near-duplicates + one very different molecule: picking 2 must
  // include the outlier.
  std::vector<chem::BitSet> fps;
  for (const char* s : {"CCCCCCO", "CCCCCO", "CCCCO", "c1ccc2ccccc2c1"})
    fps.push_back(chem::morgan_fingerprint(chem::parse_smiles(s)));
  const auto picked = chem::maxmin_pick(fps, 2, 9);
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 3u) != picked.end());
}

TEST(Diversity, MaxMinHandlesOverAsk) {
  std::vector<chem::BitSet> fps{chem::morgan_fingerprint(chem::parse_smiles("CCO"))};
  EXPECT_EQ(chem::maxmin_pick(fps, 10, 1).size(), 1u);
  EXPECT_TRUE(chem::maxmin_pick({}, 3, 1).empty());
}

TEST(Diversity, ButinaClustersDuplicatesTogether) {
  std::vector<chem::BitSet> fps;
  for (const char* s : {"CCO", "OCC", "c1ccccc1", "c1ccccc1"})
    fps.push_back(chem::morgan_fingerprint(chem::parse_smiles(s)));
  const auto labels = chem::butina_cluster(fps, 0.9);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

// ---------------------------------------------------------------- coordinates

TEST(Layout2d, BondLengthsNearUniform) {
  const auto mol = chem::parse_smiles("c1ccccc1CCN");
  const auto pos = chem::layout_2d(mol, 3);
  ASSERT_EQ(pos.size(), static_cast<std::size_t>(mol.atom_count()));
  // All bonded distances should be within a sane band after relaxation.
  for (int bi = 0; bi < mol.bond_count(); ++bi) {
    const auto& a = pos[static_cast<std::size_t>(mol.bond(bi).a)];
    const auto& b = pos[static_cast<std::size_t>(mol.bond(bi).b)];
    const double d = std::hypot(a.x - b.x, a.y - b.y);
    EXPECT_GT(d, 0.2);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Layout2d, Deterministic) {
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const auto a = chem::layout_2d(mol, 11);
  const auto b = chem::layout_2d(mol, 11);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(Embed3d, BondLengthsNearIdeal) {
  const auto mol = chem::parse_smiles("CCO");
  const auto pos = chem::embed_3d(mol, 5);
  for (int bi = 0; bi < mol.bond_count(); ++bi) {
    const double ideal = chem::ideal_bond_length(mol, bi);
    const double actual = impeccable::common::distance(
        pos[static_cast<std::size_t>(mol.bond(bi).a)],
        pos[static_cast<std::size_t>(mol.bond(bi).b)]);
    EXPECT_NEAR(actual, ideal, 0.4) << "bond " << bi;
  }
}

TEST(Embed3d, NoAtomClashes) {
  const auto mol = chem::parse_smiles("CC(C)Cc1ccc(cc1)C(C)C(=O)O");
  const auto pos = chem::embed_3d(mol, 5);
  for (int i = 0; i < mol.atom_count(); ++i)
    for (int j = i + 1; j < mol.atom_count(); ++j)
      EXPECT_GT(impeccable::common::distance(pos[static_cast<std::size_t>(i)],
                                             pos[static_cast<std::size_t>(j)]),
                0.7)
          << i << "," << j;
}

TEST(Embed3d, CenteredAtOrigin) {
  const auto mol = chem::parse_smiles("c1ccccc1");
  const auto pos = chem::embed_3d(mol, 2);
  impeccable::common::Vec3 c;
  for (const auto& p : pos) c += p;
  c /= static_cast<double>(pos.size());
  EXPECT_NEAR(c.norm(), 0.0, 1e-9);
}

// ---------------------------------------------------------------- depiction

TEST(Depiction, ShapeAndRange) {
  const auto mol = chem::parse_smiles("CC(=O)Oc1ccccc1C(=O)O");
  const auto img = chem::depict(mol);
  EXPECT_EQ(img.channels, 4);
  EXPECT_EQ(img.width, 32);
  EXPECT_EQ(img.height, 32);
  EXPECT_EQ(img.data.size(), 4u * 32u * 32u);
  float sum = 0.0f;
  for (float v : img.data) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    sum += v;
  }
  EXPECT_GT(sum, 1.0f);  // something was drawn
}

TEST(Depiction, PolarChannelLightsUpForPolarMolecule) {
  const auto polar = chem::depict(chem::parse_smiles("NC(=O)N"));
  const auto apolar = chem::depict(chem::parse_smiles("CCCCCC"));
  auto channel_sum = [](const chem::Image& im, int c) {
    float s = 0;
    for (int y = 0; y < im.height; ++y)
      for (int x = 0; x < im.width; ++x) s += im.at(c, y, x);
    return s;
  };
  EXPECT_GT(channel_sum(polar, 2), channel_sum(apolar, 2) + 1.0f);
}

TEST(Depiction, DifferentMoleculesDifferentImages) {
  const auto a = chem::depict(chem::parse_smiles("CCO"));
  const auto b = chem::depict(chem::parse_smiles("c1ccc2ccccc2c1"));
  double diff = 0;
  for (std::size_t i = 0; i < a.data.size(); ++i)
    diff += std::abs(a.data[i] - b.data[i]);
  EXPECT_GT(diff, 5.0);
}

// ---------------------------------------------------------------- library

TEST(Library, DeterministicByIndex) {
  const auto a = chem::generate_compound(77, 5);
  const auto b = chem::generate_compound(77, 5);
  EXPECT_EQ(chem::write_smiles(a), chem::write_smiles(b));
}

TEST(Library, DifferentIndicesUsuallyDiffer) {
  int distinct = 0;
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < 30; ++i)
    if (seen.insert(chem::write_smiles(chem::generate_compound(7, i))).second)
      ++distinct;
  EXPECT_GE(distinct, 25);
}

TEST(Library, CompoundsAreDrugLike) {
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto mol = chem::generate_compound(2024, i);
    const auto d = chem::compute_descriptors(mol);
    EXPECT_GE(d.heavy_atoms, 10);
    EXPECT_LE(d.heavy_atoms, 40);
    EXPECT_LE(chem::lipinski_violations(d), 1);
    EXPECT_TRUE(mol.connected());
  }
}

TEST(Library, GenerateLibraryIdsAndSize) {
  const auto lib = chem::generate_library("OZD", 10, 9);
  EXPECT_EQ(lib.size(), 10u);
  EXPECT_EQ(lib.entries[0].id, "OZD-000000");
  EXPECT_EQ(lib.entries[9].id, "OZD-000009");
  for (const auto& e : lib.entries) EXPECT_FALSE(e.smiles.empty());
}

TEST(Library, OverlappingLibrariesShareExpectedFraction) {
  const auto [a, b] =
      chem::generate_overlapping_libraries("OZD", "ORD", 40, 0.25, 31337);
  ASSERT_EQ(a.size(), 40u);
  ASSERT_EQ(b.size(), 40u);
  std::set<std::string> sa;
  for (const auto& e : a.entries) sa.insert(e.smiles);
  int shared = 0;
  std::set<std::string> sb;
  for (const auto& e : b.entries)
    if (sb.insert(e.smiles).second && sa.count(e.smiles)) ++shared;
  // 10 compounds come from the shared pool; collisions can add a couple.
  EXPECT_GE(shared, 9);
  EXPECT_LE(shared, 16);
}
