#!/usr/bin/env bash
# One-command verification gate: configure + build both presets, run the full
# suite on the default build and the concurrency-sensitive subsets (obs +
# graph labels) under ThreadSanitizer.
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case $opt in
    j) JOBS=$OPTARG ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

echo "== configure + build (default preset) =="
cmake --preset default
cmake --build --preset default -j "$JOBS"

echo "== full test suite (default preset) =="
ctest --preset default -j "$JOBS"

echo "== configure + build (tsan preset) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: obs-labeled tests =="
ctest --preset tsan-obs -j "$JOBS"

echo "== tsan: graph-labeled tests =="
ctest --preset tsan-graph -j "$JOBS"

echo "== all checks passed =="
