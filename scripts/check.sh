#!/usr/bin/env bash
# One-command verification gate across the whole check matrix:
#   1. default preset (warnings promoted to errors): build + full suite +
#      the `lint`-labelled project-rule lint over the tree + the `library`
#      label (out-of-core LigandStore format, corruption resilience, and
#      the InMemory/Mmap fingerprint-equality gate) as its own lane so a
#      store regression is named in the output, not buried in the suite;
#   2. asan preset (Address+LeakSanitizer with IMPECCABLE_CHECKS on — the
#      RNG-ownership auditor and IMP_DCHECK bounds checks run live): full
#      suite + the `library` label again (the mmap read path and spill
#      files are exactly where a lifetime bug would hide);
#   3. ubsan preset (-fsanitize=undefined, errors fatal): full suite;
#   4. tsan preset: the concurrency-sensitive subsets (obs + graph + serve
#      + multi labels — serve covers the inference server's worker/submitter
#      paths and the concurrent SurrogateModel::predict_batch contract;
#      multi covers shared-backend multi-target campaign runs);
#   5. native preset (-march=native Release): the `dock`-labelled suite —
#      the batched SIMD scorer's bitwise-equivalence gate must hold under
#      the widest vectorization the host supports, not just the portable
#      default codegen.
#
# Usage: scripts/check.sh [-j N] [-q]
#   -q  quick: default-preset build, tests, and lint only (skip sanitizers
#       and the native lane)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
while getopts "j:q" opt; do
  case $opt in
    j) JOBS=$OPTARG ;;
    q) QUICK=1 ;;
    *) echo "usage: $0 [-j N] [-q]" >&2; exit 2 ;;
  esac
done

echo "== configure + build (default preset, -Werror) =="
cmake --preset default -DIMPECCABLE_WERROR=ON
cmake --build --preset default -j "$JOBS"

echo "== full test suite (default preset) =="
ctest --preset default -j "$JOBS"

echo "== project lint (lint label) =="
ctest --preset lint -j "$JOBS"

echo "== out-of-core library gate (library label) =="
ctest --preset library -j "$JOBS"

if [ "$QUICK" -eq 1 ]; then
  echo "== quick checks passed (sanitizer lanes skipped) =="
  exit 0
fi

echo "== configure + build (asan preset: ASan+LSan, IMPECCABLE_CHECKS) =="
cmake --preset asan -DIMPECCABLE_WERROR=ON
cmake --build --preset asan -j "$JOBS"

echo "== asan: full test suite =="
ctest --preset asan -j "$JOBS"

echo "== asan: out-of-core library gate (library label) =="
ctest --preset asan-library -j "$JOBS"

echo "== configure + build (ubsan preset, -fno-sanitize-recover) =="
cmake --preset ubsan -DIMPECCABLE_WERROR=ON
cmake --build --preset ubsan -j "$JOBS"

echo "== ubsan: full test suite =="
ctest --preset ubsan -j "$JOBS"

echo "== configure + build (tsan preset) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: obs-labeled tests =="
ctest --preset tsan-obs -j "$JOBS"

echo "== tsan: graph-labeled tests =="
ctest --preset tsan-graph -j "$JOBS"

echo "== tsan: serve-labeled tests =="
ctest --preset tsan-serve -j "$JOBS"

echo "== tsan: multi-labeled tests (shared-backend multi-target campaigns) =="
ctest --preset tsan-multi -j "$JOBS"

echo "== configure + build (native preset: -march=native Release) =="
cmake --preset native -DIMPECCABLE_WERROR=ON
cmake --build --preset native -j "$JOBS"

echo "== native: dock-labeled tests (batched-vs-scalar equivalence) =="
ctest --preset native-dock -j "$JOBS"

echo "== all checks passed =="
