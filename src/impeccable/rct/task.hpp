#pragma once
// Task model shared by the RCT execution backends.
//
// A "task" is the paper's unit of execution: "a stand-alone process that has
// well-defined input, output, termination criteria, and dedicated resources"
// (Sec. 5.2.1). Tasks carry a resource request (CPUs/GPUs/whole nodes), a
// virtual duration for the discrete-event backend, and an optional real
// payload for the thread-pool backend.

#include <functional>
#include <string>

namespace impeccable::rct {

enum class TaskState { New, Scheduled, Executing, Done, Failed };

const char* to_string(TaskState s);

struct TaskDescription {
  std::string name;
  int cpus = 1;
  int gpus = 0;
  /// > 0: claim this many whole nodes (multi-node MPI task).
  int whole_nodes = 0;
  /// Virtual execution time in seconds (SimBackend).
  double duration = 1.0;
  /// Scheduling priority (higher first). Ties keep submission order, so the
  /// default 0 everywhere degenerates to exact FIFO behavior.
  double priority = 0.0;
  /// Real work to run when the task executes (optional; both backends call
  /// it — the simulation charges `duration`, the local backend measures).
  std::function<void()> payload;
};

struct TaskResult {
  std::string name;
  bool ok = true;
  std::string error;
  double start_time = 0.0;  ///< backend clock
  double end_time = 0.0;
};

}  // namespace impeccable::rct
