#pragma once
// RAPTOR — the RAdical-Pilot Task OveRlay (Sec. 6.1.2, Fig. 3).
//
// A master/worker overlay built for very high-throughput, very short tasks
// (docking calls): masters dispatch function requests to workers in *bulks*
// (limiting communication frequency), balance load by least-loaded worker
// selection over round-robin candidates, and shard the worker set across
// several masters so no single master becomes a bottleneck. The simulation
// reproduces the scaling study: near-linear scaling to thousands of nodes
// with sustained tens-of-millions docks/hour.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "impeccable/hpc/des.hpp"

namespace impeccable::rct {

struct RaptorOptions {
  int masters = 1;
  int workers = 6;           ///< total workers (one GPU each on Summit)
  int bulk_size = 64;        ///< requests per dispatch message
  /// Master-side service time per dispatched bulk (serialization, IPC).
  double bulk_overhead = 2e-3;
  /// Master-side service time per request inside a bulk.
  double per_request_overhead = 2e-5;
  /// In-flight bulks per worker (prefetch depth hiding dispatch latency).
  int prefetch = 2;
  /// Probability that a worker dies while executing a bulk (node failures,
  /// OOM-killed executors). The master requeues the lost bulk onto its live
  /// workers — tasks are never lost, throughput degrades gracefully.
  double worker_failure_rate = 0.0;
  std::uint64_t failure_seed = 0xfa11;
};

struct RaptorStats {
  std::size_t tasks = 0;
  double makespan = 0.0;            ///< virtual seconds
  double throughput_per_hour = 0.0; ///< tasks per hour
  double worker_utilization = 0.0;  ///< busy time / (workers * makespan)
  double load_imbalance = 0.0;      ///< max worker busy / mean worker busy
  std::vector<double> worker_busy;  ///< per-worker busy seconds
  int workers_failed = 0;
  std::size_t bulks_requeued = 0;

  /// One JSON object (obs::json writer — deterministic doubles).
  void to_json(std::ostream& os) const;

  /// Recompute the derived metrics (throughput_per_hour, worker_utilization,
  /// load_imbalance) from tasks / makespan / worker_busy. A zero makespan,
  /// an empty worker set, or an all-idle overlay yields clean zeros instead
  /// of NaN/Inf — an empty workload must produce an all-zero report.
  void finalize_derived();
};

/// Execute `durations` (seconds per request) through the overlay on a fresh
/// simulator; requests are assigned to masters round-robin up front (the
/// paper iterates compound lists round-robin) and dispatched on demand.
RaptorStats run_raptor(const RaptorOptions& opts,
                       const std::vector<double>& durations);

/// Generate a heavy-tailed docking-duration workload: log-normal body with
/// an occasional long-tail ligand ("the duration of the docking computation
/// varies significantly ... the long tail poses a challenge").
std::vector<double> docking_durations(std::size_t count, double mean_seconds,
                                      std::uint64_t seed);

}  // namespace impeccable::rct
