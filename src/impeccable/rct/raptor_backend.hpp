#pragma once
// RaptorBackend — the RAPTOR master/worker overlay as an ExecutionBackend
// decorator (Sec. 6.1.2, Fig. 3).
//
// run_raptor() simulates the overlay standalone; this adapter puts the same
// master/bulk mechanics on the live task path so graph scheduling and bulk
// dispatch interact. Tasks whose name matches a routed prefix (per-ligand
// "dock-*" requests, S1's "dock-chunk-*" shards) are coalesced into bulks:
// one bulk becomes one aggregated task on the inner backend — duration the
// sum of its members, priority their maximum, one worker-sized resource
// request — and its completion fans back out into per-member TaskResults,
// so AppManager retry/merge logic never sees the overlay. Master-side
// dispatch costs (bulk_overhead + per_request_overhead · size) serialize on
// a modeled master shard, and the prefetch window (workers × prefetch)
// bounds in-flight bulks exactly like the standalone overlay. Everything
// not routed passes straight through.
//
// A per-member failure (payload threw) fails only that member; an inner
// task failure (e.g. a pilot-walltime kill) fails every member of the bulk
// — either way the members resurface individually and re-enter bulking when
// AppManager resubmits them. The optional worker-failure model requeues the
// whole bulk after charging half its work, mirroring run_raptor.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "impeccable/common/rng.hpp"
#include "impeccable/rct/backend.hpp"
#include "impeccable/rct/raptor.hpp"

namespace impeccable::rct {

struct RaptorBackendOptions {
  /// Overlay geometry and costs — masters, workers, bulk_size, per-bulk and
  /// per-request master overheads, prefetch depth, failure model — reused
  /// wholesale from the standalone overlay.
  RaptorOptions overlay;
  /// Tasks whose name starts with one of these prefixes route through the
  /// overlay; everything else passes straight to the inner backend. The
  /// default captures both the real S1 path ("dock-<ligand>") and the
  /// ScaleModel path ("dock-chunk-<i>").
  std::vector<std::string> route_prefixes{"dock"};
  /// Resource request of one bulk on the inner backend (one overlay worker
  /// = one GPU-holding executor in the paper's Summit deployment).
  int bulk_cpus = 1;
  int bulk_gpus = 1;
};

/// ExecutionBackend decorator that maps routed tasks into RAPTOR bulks.
class RaptorBackend : public ExecutionBackend {
 public:
  explicit RaptorBackend(ExecutionBackend& inner,
                         const RaptorBackendOptions& opts = {});

  void submit(TaskDescription task, CompletionCallback on_complete) override;
  void after(double delay, std::function<void()> fn) override;
  void drain() override;
  double now() override;
  common::ThreadPool* compute_pool() override;
  /// Attaches to both layers: the inner backend emits the per-bulk
  /// cat::kTask spans, this adapter emits cat::kRaptor bulk spans and the
  /// raptor.{requests,bulks,requeues} counters.
  void set_recorder(obs::Recorder* rec) override;

  /// Overlay statistics over everything routed so far. makespan is the
  /// first-dispatch → last-completion window; derived metrics go through
  /// RaptorStats::finalize_derived (zero-safe on an empty overlay).
  RaptorStats stats() const;

  ExecutionBackend& inner() { return inner_; }
  const RaptorBackendOptions& options() const { return opts_; }

 private:
  struct Request {
    TaskDescription task;
    CompletionCallback done;
    bool ok = true;
    std::string error;
  };
  struct Bulk {
    std::uint64_t id = 0;
    std::vector<Request> members;
    double work = 0.0;        ///< sum of member durations
    double priority = 0.0;    ///< max member priority
    int lane = 0;             ///< modeled worker shard (stats bucket)
    double dispatched = 0.0;  ///< backend time the master released it
  };

  bool routed(const std::string& name) const;
  /// Drain the coalescing buffer into bulks (trailing partial included) and
  /// launch each one. Runs as a zero-delay event so every same-instant
  /// submission lands in the same flush.
  void flush();
  /// Admit the bulk into the prefetch window, or hold it until a completion
  /// frees a slot.
  void launch(std::shared_ptr<Bulk> bulk);
  /// Serialize the master service time and submit the aggregate inner task.
  void dispatch(std::shared_ptr<Bulk> bulk);
  void submit_bulk(const std::shared_ptr<Bulk>& bulk);
  void on_bulk_done(std::shared_ptr<Bulk> bulk, const TaskResult& result);

  ExecutionBackend& inner_;
  RaptorBackendOptions opts_;

  mutable std::mutex mu_;
  std::vector<Request> buffer_;
  bool flush_scheduled_ = false;
  std::deque<std::shared_ptr<Bulk>> held_;  ///< beyond the prefetch window
  std::vector<double> master_busy_until_;
  std::vector<double> lane_busy_;  ///< per modeled worker busy seconds
  int in_flight_ = 0;
  std::uint64_t bulk_counter_ = 0;
  std::size_t requests_done_ = 0;
  std::size_t bulks_done_ = 0;
  double first_dispatch_ = -1.0;
  double last_completion_ = 0.0;
  int workers_failed_ = 0;
  std::size_t bulks_requeued_ = 0;
  common::Rng failure_rng_;
};

}  // namespace impeccable::rct
