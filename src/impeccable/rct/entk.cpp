#include "impeccable/rct/entk.hpp"

#include <algorithm>

namespace impeccable::rct {

AppManager::AppManager(ExecutionBackend& backend, const AppManagerOptions& opts)
    : backend_(backend), opts_(opts) {}

std::vector<TaskResult> AppManager::run(std::vector<Pipeline> pipelines) {
  results_.clear();
  retries_ = 0;
  makespan_ = 0.0;

  std::vector<std::shared_ptr<PipelineRun>> runs;
  runs.reserve(pipelines.size());
  for (auto& p : pipelines)
    runs.push_back(std::make_shared<PipelineRun>(std::move(p)));

  for (const auto& run : runs) advance(run);
  backend_.drain();

  std::lock_guard lock(mutex_);
  return results_;
}

void AppManager::advance(const std::shared_ptr<PipelineRun>& run) {
  Stage* head = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (run->pipeline.stages_.empty()) return;  // pipeline finished
    head = &run->pipeline.stages_.front();
    run->outstanding = head->tasks.size();
    run->stage_begin = backend_.now();
    run->stage_tasks = head->tasks.size();
  }

  if (head->tasks.empty()) {
    // Empty stage: run post_exec and move on immediately.
    on_task_done(run, TaskResult{});
    return;
  }

  for (auto& task : head->tasks) submit_task(run, task, 0);
}

void AppManager::submit_task(const std::shared_ptr<PipelineRun>& run,
                             const TaskDescription& task, int attempt) {
  backend_.submit(task, [this, run, task, attempt](const TaskResult& result) {
    if (!result.ok && attempt < opts_.max_retries) {
      {
        std::lock_guard lock(mutex_);
        ++retries_;
      }
      submit_task(run, task, attempt + 1);
      return;
    }
    on_task_done(run, result);
  });
}

void AppManager::on_task_done(const std::shared_ptr<PipelineRun>& run,
                              const TaskResult& result) {
  bool stage_complete = false;
  {
    std::lock_guard lock(mutex_);
    if (!result.name.empty() || result.end_time > 0.0)
      results_.push_back(result);
    makespan_ = std::max(makespan_, result.end_time);
    if (run->outstanding > 0) --run->outstanding;
    stage_complete = run->outstanding == 0;
  }
  if (!stage_complete) return;

  // The whole stage finished: fire post_exec (outside the lock — it may
  // append stages), pop the stage, then advance after the fixed overhead.
  Stage done_stage;
  double stage_begin = 0.0;
  std::size_t stage_tasks = 0;
  {
    std::lock_guard lock(mutex_);
    done_stage = std::move(run->pipeline.stages_.front());
    run->pipeline.stages_.pop_front();
    stage_begin = run->stage_begin;
    stage_tasks = run->stage_tasks;
  }
  if (obs::Recorder* rec = backend_.recorder()) {
    obs::SpanRecord span;
    span.category = obs::cat::kStage;
    span.name = done_stage.name.empty() ? run->pipeline.name()
                                        : done_stage.name;
    span.start = stage_begin;
    span.end = backend_.now();
    span.arg("pipeline", run->pipeline.name());
    span.arg("tasks", static_cast<double>(stage_tasks));
    rec->emit(std::move(span));
  }
  if (done_stage.post_exec) done_stage.post_exec(run->pipeline);

  bool has_more;
  {
    std::lock_guard lock(mutex_);
    has_more = !run->pipeline.stages_.empty();
  }
  if (has_more)
    backend_.after(opts_.stage_transition_overhead, [this, run] { advance(run); });
}

std::size_t AppManager::tasks_failed() const {
  return static_cast<std::size_t>(
      std::count_if(results_.begin(), results_.end(),
                    [](const TaskResult& r) { return !r.ok; }));
}

}  // namespace impeccable::rct
