#include "impeccable/rct/entk.hpp"

#include <algorithm>
#include <stdexcept>

namespace impeccable::rct {

// ------------------------------------------------------------------ graph

NodeId StageGraph::add(StageNode node, std::vector<NodeId> deps) {
  const NodeId id = nodes_.size();
  for (NodeId d : deps)
    if (d >= id)
      throw std::invalid_argument(
          "StageGraph::add: dependency on a node not yet in the graph");
  nodes_.push_back(Entry{std::move(node), std::move(deps)});
  return id;
}

// ------------------------------------------------------------- AppManager

AppManager::AppManager(ExecutionBackend& backend, const AppManagerOptions& opts)
    : backend_(backend), opts_(opts) {}

void AppManager::chain_head(StageGraph& graph,
                            const std::shared_ptr<Pipeline>& pipe, NodeId dep) {
  if (pipe->stages_.empty()) return;
  Stage head = std::move(pipe->stages_.front());
  pipe->stages_.pop_front();

  StageNode node;
  node.name = std::move(head.name);
  node.pipeline = pipe->name();
  node.tasks = std::move(head.tasks);
  // The node needs its own id inside its post_exec (to chain the successor
  // after itself); the id only exists after add(), so route it through a
  // shared slot.
  auto self = std::make_shared<NodeId>(kNoNode);
  auto post = std::move(head.post_exec);
  node.post_exec = [this, pipe, self, post = std::move(post)](StageGraph& g) {
    if (post) post(*pipe);
    chain_head(g, pipe, *self);
  };
  *self = graph.add(std::move(node),
                    dep == kNoNode ? std::vector<NodeId>{}
                                   : std::vector<NodeId>{dep});
}

std::vector<TaskResult> AppManager::run(std::vector<Pipeline> pipelines) {
  StageGraph graph;
  for (auto& p : pipelines)
    chain_head(graph, std::make_shared<Pipeline>(std::move(p)), kNoNode);
  return run_graph(std::move(graph));
}

std::vector<TaskResult> AppManager::run_graph(StageGraph graph) {
  retries_ = 0;
  makespan_ = 0.0;
  auto g = std::make_shared<GraphRun>(std::move(graph));
  std::vector<NodeId> ready;
  {
    std::lock_guard lock(mutex_);
    results_.clear();
    ready = integrate_locked(*g);
  }
  for (NodeId id : ready) schedule(g, id);
  backend_.drain();

  std::lock_guard lock(mutex_);
  return results_;
}

std::vector<NodeId> AppManager::integrate_locked(GraphRun& g) {
  std::vector<NodeId> ready;
  for (NodeId id = g.states.size(); id < g.graph.nodes_.size(); ++id) {
    g.states.emplace_back();
    g.dependents.emplace_back();
    NodeState& st = g.states.back();
    for (NodeId dep : g.graph.nodes_[id].deps) {
      if (g.states[dep].done) continue;
      ++st.waiting;
      g.dependents[dep].push_back(id);
    }
    if (st.waiting == 0) ready.push_back(id);
  }
  return ready;
}

void AppManager::schedule(const std::shared_ptr<GraphRun>& g, NodeId id) {
  // Dependency-free roots start immediately (the PST first stage);
  // everything downstream pays the fixed stage-transition overhead.
  if (g->graph.nodes_[id].deps.empty()) {
    start_node(g, id);
  } else {
    backend_.after(opts_.stage_transition_overhead,
                   [this, g, id] { start_node(g, id); });
  }
}

void AppManager::start_node(const std::shared_ptr<GraphRun>& g, NodeId id) {
  StageGraph::Entry& entry = g->graph.nodes_[id];
  if (entry.node.build) {
    auto built = entry.node.build();
    for (auto& t : built) entry.node.tasks.push_back(std::move(t));
  }
  {
    std::lock_guard lock(mutex_);
    NodeState& st = g->states[id];
    st.begin = backend_.now();
    st.task_count = entry.node.tasks.size();
    st.outstanding = entry.node.tasks.size();
  }
  if (entry.node.tasks.empty()) {
    complete_node(g, id);
    return;
  }
  for (const auto& task : entry.node.tasks) submit_task(g, id, task, 0);
}

void AppManager::submit_task(const std::shared_ptr<GraphRun>& g, NodeId id,
                             const TaskDescription& task, int attempt) {
  backend_.submit(task,
                  [this, g, id, task, attempt](const TaskResult& result) {
                    if (!result.ok && attempt < opts_.max_retries) {
                      {
                        std::lock_guard lock(mutex_);
                        ++retries_;
                      }
                      submit_task(g, id, task, attempt + 1);
                      return;
                    }
                    on_task_done(g, id, result);
                  });
}

void AppManager::on_task_done(const std::shared_ptr<GraphRun>& g, NodeId id,
                              const TaskResult& result) {
  bool node_complete = false;
  {
    std::lock_guard lock(mutex_);
    if (!result.name.empty() || result.end_time > 0.0)
      results_.push_back(result);
    makespan_ = std::max(makespan_, result.end_time);
    NodeState& st = g->states[id];
    if (st.outstanding > 0) --st.outstanding;
    node_complete = st.outstanding == 0;
  }
  if (node_complete) complete_node(g, id);
}

void AppManager::complete_node(const std::shared_ptr<GraphRun>& g, NodeId id) {
  StageGraph::Entry& entry = g->graph.nodes_[id];
  double begin = 0.0;
  std::size_t task_count = 0;
  {
    std::lock_guard lock(mutex_);
    begin = g->states[id].begin;
    task_count = g->states[id].task_count;
  }
  if (obs::Recorder* rec = backend_.recorder()) {
    obs::SpanRecord span;
    span.category = obs::cat::kStage;
    span.name =
        entry.node.name.empty() ? entry.node.pipeline : entry.node.name;
    span.start = begin;
    span.end = backend_.now();
    span.arg("pipeline", entry.node.pipeline);
    span.arg("tasks", static_cast<double>(task_count));
    rec->emit(std::move(span));
  }

  std::vector<NodeId> ready;
  {
    // Serialize every post_exec: merge steps across the whole graph run one
    // at a time, so shared campaign state needs no further locking.
    std::lock_guard post(post_mutex_);
    if (entry.node.post_exec) entry.node.post_exec(g->graph);
    std::lock_guard lock(mutex_);
    g->states[id].done = true;
    for (NodeId dep : g->dependents[id]) {
      NodeState& st = g->states[dep];
      if (st.waiting > 0 && --st.waiting == 0) ready.push_back(dep);
    }
    const auto added = integrate_locked(*g);
    ready.insert(ready.end(), added.begin(), added.end());
  }
  for (NodeId next : ready) schedule(g, next);
}

std::size_t AppManager::tasks_failed() const {
  return static_cast<std::size_t>(
      std::count_if(results_.begin(), results_.end(),
                    [](const TaskResult& r) { return !r.ok; }));
}

}  // namespace impeccable::rct
