#include "impeccable/rct/entk.hpp"

#include <algorithm>
#include <stdexcept>

namespace impeccable::rct {

// ------------------------------------------------------------------ graph

NodeId StageGraph::add(StageNode node, std::vector<NodeId> deps) {
  const NodeId id = nodes_.size();
  for (NodeId d : deps)
    if (d >= id)
      throw std::invalid_argument(
          "StageGraph::add: dependency on a node not yet in the graph");
  nodes_.push_back(Entry{std::move(node), std::move(deps)});
  return id;
}

void StageGraph::set_priority(NodeId id, double priority) {
  if (id >= nodes_.size())
    throw std::out_of_range("StageGraph::set_priority: no such node");
  nodes_[id].node.priority = priority;
}

double StageGraph::priority(NodeId id) const {
  if (id >= nodes_.size())
    throw std::out_of_range("StageGraph::priority: no such node");
  return nodes_[id].node.priority;
}

// ------------------------------------------------------------- AppManager

AppManager::AppManager(ExecutionBackend& backend, const AppManagerOptions& opts)
    : backend_(backend), opts_(opts) {}

void AppManager::chain_head(StageGraph& graph,
                            const std::shared_ptr<Pipeline>& pipe, NodeId dep) {
  if (pipe->stages_.empty()) return;
  Stage head = std::move(pipe->stages_.front());
  pipe->stages_.pop_front();

  StageNode node;
  node.name = std::move(head.name);
  node.pipeline = pipe->name();
  node.tasks = std::move(head.tasks);
  // The node needs its own id inside its post_exec (to chain the successor
  // after itself); the id only exists after add(), so route it through a
  // shared slot.
  auto self = std::make_shared<NodeId>(kNoNode);
  auto post = std::move(head.post_exec);
  node.post_exec = [this, pipe, self, post = std::move(post)](StageGraph& g) {
    if (post) post(*pipe);
    chain_head(g, pipe, *self);
  };
  *self = graph.add(std::move(node),
                    dep == kNoNode ? std::vector<NodeId>{}
                                   : std::vector<NodeId>{dep});
}

GraphRunReport AppManager::run(std::vector<Pipeline> pipelines) {
  StageGraph graph;
  for (auto& p : pipelines)
    chain_head(graph, std::make_shared<Pipeline>(std::move(p)), kNoNode);
  return run_graph(std::move(graph));
}

GraphRunReport AppManager::run_graph(StageGraph graph) {
  retries_ = 0;
  makespan_ = 0.0;
  auto g = std::make_shared<GraphRun>(std::move(graph));
  std::vector<NodeId> ready;
  {
    std::lock_guard lock(mutex_);
    results_.clear();
    ready = integrate_locked(*g);
  }
  for (NodeId id : ready) schedule(g, id);
  backend_.drain();

  GraphRunReport report;
  {
    std::lock_guard lock(mutex_);
    report.results = std::move(results_);
    results_.clear();
    report.retries = retries_;
    report.makespan = makespan_;
    report.nodes.reserve(g->states.size());
    for (NodeId id = 0; id < g->states.size(); ++id) {
      const NodeState& st = g->states[id];
      const StageNode& node = g->graph.nodes_[id].node;
      NodeReport nr;
      nr.name = node.name;
      nr.pipeline = node.pipeline;
      nr.priority = st.priority;
      nr.ready = st.ready;
      nr.begin = st.begin;
      nr.end = st.end;
      nr.tasks = st.task_count;
      report.nodes.push_back(std::move(nr));
    }
  }
  last_ = std::move(report);
  return last_;
}

std::vector<NodeId> AppManager::integrate_locked(GraphRun& g) {
  std::vector<NodeId> ready;
  for (NodeId id = g.states.size(); id < g.graph.nodes_.size(); ++id) {
    g.states.emplace_back();
    g.dependents.emplace_back();
    NodeState& st = g.states.back();
    for (NodeId dep : g.graph.nodes_[id].deps) {
      if (g.states[dep].done) continue;
      ++st.waiting;
      g.dependents[dep].push_back(id);
    }
    if (st.waiting == 0) ready.push_back(id);
  }
  return ready;
}

void AppManager::schedule(const std::shared_ptr<GraphRun>& g, NodeId id) {
  {
    std::lock_guard lock(mutex_);
    g->states[id].ready = backend_.now();
  }
  // Dependency-free roots enter the launch queue immediately (the PST first
  // stage); everything downstream pays the fixed stage-transition overhead.
  if (g->graph.nodes_[id].deps.empty()) {
    enqueue_ready(g, id);
  } else {
    backend_.after(opts_.stage_transition_overhead,
                   [this, g, id] { enqueue_ready(g, id); });
  }
}

void AppManager::enqueue_ready(const std::shared_ptr<GraphRun>& g, NodeId id) {
  bool need_drain = false;
  {
    std::lock_guard lock(mutex_);
    g->launch_queue.push_back(ReadyEntry{id, g->ready_seq++});
    need_drain = !g->drain_pending;
    g->drain_pending = true;
  }
  // One zero-delay drain event services every same-instant arrival, so the
  // launch order is decided over the whole ready wave.
  if (need_drain) backend_.after(0.0, [this, g] { drain_ready(g); });
}

void AppManager::drain_ready(const std::shared_ptr<GraphRun>& g) {
  struct Launch {
    ReadyEntry entry;
    double priority = 0.0;
  };
  std::vector<Launch> batch;
  {
    // post_mutex_ first (the complete_node order): node priorities may be
    // rewritten by post_exec callbacks, which run under post_mutex_.
    std::lock_guard post(post_mutex_);
    std::lock_guard lock(mutex_);
    g->drain_pending = false;
    batch.reserve(g->launch_queue.size());
    for (const ReadyEntry& e : g->launch_queue)
      batch.push_back(Launch{e, g->graph.nodes_[e.id].node.priority});
    g->launch_queue.clear();
  }
  if (opts_.ready_order == AppManagerOptions::ReadyOrder::kPriority)
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Launch& a, const Launch& b) {
                       return a.priority > b.priority;
                     });
  const bool stamp =
      opts_.ready_order == AppManagerOptions::ReadyOrder::kPriority;
  for (const Launch& l : batch) start_node(g, l.entry.id, l.priority, stamp);
}

void AppManager::start_node(const std::shared_ptr<GraphRun>& g, NodeId id,
                            double node_priority, bool stamp_tasks) {
  StageGraph::Entry& entry = g->graph.nodes_[id];
  if (entry.node.build) {
    auto built = entry.node.build();
    for (auto& t : built) entry.node.tasks.push_back(std::move(t));
  }
  {
    std::lock_guard lock(mutex_);
    NodeState& st = g->states[id];
    st.begin = backend_.now();
    st.priority = node_priority;
    st.task_count = entry.node.tasks.size();
    st.outstanding = entry.node.tasks.size();
  }
  if (entry.node.tasks.empty()) {
    complete_node(g, id);
    return;
  }
  // The node's priority is always recorded (above, for the report), but it
  // reaches the backend queues only under ReadyOrder::kPriority — FIFO mode
  // must keep the historical all-zero SlotRequest priorities bit-exact.
  if (stamp_tasks && node_priority != 0.0) {
    for (TaskDescription task : entry.node.tasks) {
      task.priority += node_priority;
      submit_task(g, id, task, 0);
    }
  } else {
    for (const auto& task : entry.node.tasks) submit_task(g, id, task, 0);
  }
}

void AppManager::submit_task(const std::shared_ptr<GraphRun>& g, NodeId id,
                             const TaskDescription& task, int attempt) {
  backend_.submit(task,
                  [this, g, id, task, attempt](const TaskResult& result) {
                    if (!result.ok && attempt < opts_.max_retries) {
                      {
                        std::lock_guard lock(mutex_);
                        ++retries_;
                      }
                      submit_task(g, id, task, attempt + 1);
                      return;
                    }
                    on_task_done(g, id, result);
                  });
}

void AppManager::on_task_done(const std::shared_ptr<GraphRun>& g, NodeId id,
                              const TaskResult& result) {
  bool node_complete = false;
  {
    std::lock_guard lock(mutex_);
    if (!result.name.empty() || result.end_time > 0.0)
      results_.push_back(result);
    makespan_ = std::max(makespan_, result.end_time);
    NodeState& st = g->states[id];
    if (st.outstanding > 0) --st.outstanding;
    node_complete = st.outstanding == 0;
  }
  if (node_complete) complete_node(g, id);
}

void AppManager::complete_node(const std::shared_ptr<GraphRun>& g, NodeId id) {
  StageGraph::Entry& entry = g->graph.nodes_[id];
  double begin = 0.0;
  std::size_t task_count = 0;
  {
    std::lock_guard lock(mutex_);
    begin = g->states[id].begin;
    task_count = g->states[id].task_count;
  }
  if (obs::Recorder* rec = backend_.recorder()) {
    obs::SpanRecord span;
    span.category = obs::cat::kStage;
    span.name =
        entry.node.name.empty() ? entry.node.pipeline : entry.node.name;
    span.start = begin;
    span.end = backend_.now();
    span.arg("pipeline", entry.node.pipeline);
    span.arg("tasks", static_cast<double>(task_count));
    rec->emit(std::move(span));
  }

  std::vector<NodeId> ready;
  {
    // Serialize every post_exec: merge steps across the whole graph run one
    // at a time, so shared campaign state needs no further locking.
    std::lock_guard post(post_mutex_);
    if (entry.node.post_exec) entry.node.post_exec(g->graph);
    std::lock_guard lock(mutex_);
    g->states[id].done = true;
    g->states[id].end = backend_.now();
    for (NodeId dep : g->dependents[id]) {
      NodeState& st = g->states[dep];
      if (st.waiting > 0 && --st.waiting == 0) ready.push_back(dep);
    }
    const auto added = integrate_locked(*g);
    ready.insert(ready.end(), added.begin(), added.end());
  }
  for (NodeId next : ready) schedule(g, next);
}

// --------------------------------------------------------- GraphRunReport

std::size_t GraphRunReport::failed() const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(),
                    [](const TaskResult& r) { return !r.ok; }));
}

std::vector<double> GraphRunReport::ready_waits() const {
  std::vector<double> waits;
  waits.reserve(nodes.size());
  for (const NodeReport& n : nodes) waits.push_back(n.ready_wait());
  return waits;
}

std::vector<std::pair<double, std::size_t>>
GraphRunReport::ready_wait_histogram() const {
  // Eight log-spaced buckets from 10ms to 100ks; the first also absorbs
  // zero/negative waits, the last absorbs everything beyond.
  std::vector<std::pair<double, std::size_t>> buckets;
  double edge = 1e-2;
  for (int i = 0; i < 8; ++i, edge *= 10.0) buckets.emplace_back(edge, 0);
  for (const NodeReport& n : nodes) {
    const double w = n.ready_wait();
    std::size_t b = 0;
    while (b + 1 < buckets.size() && w >= buckets[b].first) ++b;
    ++buckets[b].second;
  }
  return buckets;
}

}  // namespace impeccable::rct
