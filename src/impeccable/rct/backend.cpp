#include "impeccable/rct/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace impeccable::rct {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::New: return "NEW";
    case TaskState::Scheduled: return "SCHEDULED";
    case TaskState::Executing: return "EXECUTING";
    case TaskState::Done: return "DONE";
    case TaskState::Failed: return "FAILED";
  }
  return "?";
}

// ---------------------------------------------------- ExecutionBackend (obs)

void ExecutionBackend::record_task(const TaskResult& result,
                                   double submit_time, int cpus, int gpus,
                                   int whole_nodes) {
  if (!recorder_) return;
  obs::SpanRecord rec;
  rec.category = obs::cat::kTask;
  rec.name = result.name;
  rec.start = result.start_time;
  rec.end = result.end_time;
  rec.arg("submit", submit_time);
  rec.arg("cpus", static_cast<double>(cpus));
  rec.arg("gpus", static_cast<double>(gpus));
  rec.arg("whole_nodes", static_cast<double>(whole_nodes));
  rec.arg("ok", result.ok ? 1.0 : 0.0);
  if (!result.error.empty()) rec.arg("error", result.error);
  recorder_->emit(std::move(rec));
}

// ---------------------------------------------------------------- SimBackend

SimBackend::SimBackend(const hpc::MachineSpec& machine,
                       const SimBackendOptions& opts)
    : cluster_(sim_, machine), opts_(opts) {}

void SimBackend::submit(TaskDescription task, CompletionCallback on_complete) {
  hpc::SlotRequest req{task.cpus, task.gpus, task.whole_nodes, task.priority};
  const double submitted = sim_.now();
  auto shared = std::make_shared<TaskDescription>(std::move(task));
  auto cb = std::make_shared<CompletionCallback>(std::move(on_complete));
  cluster_.submit(req, [this, req, submitted, shared,
                        cb](const hpc::Placement& where) {
    auto run = std::make_shared<Running>();
    run->request = req;
    run->placement = where;
    run->callback = cb;
    run->submit_time = submitted;
    run->result.name = shared->name;
    run->result.start_time = sim_.now();
    if (shared->payload) {
      try {
        shared->payload();
      } catch (const std::exception& e) {
        run->result.ok = false;
        run->result.error = e.what();
      }
    }
    running_.push_back(run);
    ensure_walltime_event();

    const double runtime = opts_.task_overhead + shared->duration;
    sim_.schedule_in(runtime, [this, run] {
      if (run->finished) return;  // killed by a walltime boundary
      run->finished = true;
      run->result.end_time = sim_.now();
      cluster_.release(run->request, run->placement);
      std::erase(running_, run);
      record_task(run->result, run->submit_time, run->request.cpus,
                  run->request.gpus, run->request.whole_nodes);
      (*run->callback)(run->result);
    });
  });
}

void SimBackend::ensure_walltime_event() {
  if (opts_.pilot_walltime <= 0.0 || walltime_scheduled_) return;
  // The next allocation boundary strictly after now.
  const double boundary =
      (std::floor(sim_.now() / opts_.pilot_walltime) + 1.0) * opts_.pilot_walltime;
  next_walltime_ = boundary;
  walltime_scheduled_ = true;
  sim_.schedule_at(boundary, [this] {
    walltime_scheduled_ = false;
    ++pilot_generation_;
    // Kill everything still running: the allocation expired.
    auto victims = running_;
    running_.clear();
    for (const auto& run : victims) {
      if (run->finished) continue;
      run->finished = true;
      run->result.ok = false;
      run->result.error = "pilot walltime";
      run->result.end_time = sim_.now();
      cluster_.release(run->request, run->placement);
      record_task(run->result, run->submit_time, run->request.cpus,
                  run->request.gpus, run->request.whole_nodes);
      (*run->callback)(run->result);
    }
    // Tasks (re)submitted by the callbacks re-arm the next boundary via
    // ensure_walltime_event().
  });
}

void SimBackend::after(double delay, std::function<void()> fn) {
  sim_.schedule_in(delay, std::move(fn));
}

void SimBackend::drain() { sim_.run(); }

// -------------------------------------------------------------- LocalBackend

LocalBackend::LocalBackend(std::size_t threads)
    : pool_(threads), epoch_(std::chrono::steady_clock::now()) {}

double LocalBackend::now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void LocalBackend::submit(TaskDescription task, CompletionCallback on_complete) {
  const double submitted = now();
  auto shared = std::make_shared<TaskDescription>(std::move(task));
  auto cb = std::make_shared<CompletionCallback>(std::move(on_complete));
  pool_.submit([this, submitted, shared, cb] {
    TaskResult result;
    result.name = shared->name;
    result.start_time = now();
    if (shared->payload) {
      try {
        shared->payload();
      } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
      }
    }
    result.end_time = now();
    record_task(result, submitted, shared->cpus, shared->gpus,
                shared->whole_nodes);
    (*cb)(result);
  });
}

void LocalBackend::after(double delay, std::function<void()> fn) {
  // Delays model scheduler overheads; locally they are negligible — run the
  // continuation as a pool job immediately.
  (void)delay;
  pool_.submit(std::move(fn));
}

void LocalBackend::drain() { pool_.wait_idle(); }

}  // namespace impeccable::rct
