#pragma once
// Execution backends — the RADICAL-Pilot role: acquire resources once, then
// schedule many heterogeneous tasks onto them without touching the batch
// system (Sec. 5.2.2).
//
//  * SimBackend   — discrete-event simulation on a ClusterSim; deterministic
//                   virtual time; powers the scale benches (Fig. 7, Tab. 2/3).
//  * LocalBackend — a ThreadPool on the host; real payload execution; powers
//                   the examples and the integrated campaign.

#include <chrono>
#include <functional>
#include <memory>

#include "impeccable/common/thread_pool.hpp"
#include "impeccable/hpc/cluster.hpp"
#include "impeccable/obs/recorder.hpp"
#include "impeccable/rct/task.hpp"

namespace impeccable::rct {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  using CompletionCallback = std::function<void(const TaskResult&)>;

  /// Submit one task; `on_complete` fires when it finishes (possibly on a
  /// worker thread for LocalBackend, inside the event loop for SimBackend).
  virtual void submit(TaskDescription task, CompletionCallback on_complete) = 0;

  /// Run `fn` after `delay` seconds of backend time (0 = as soon as
  /// possible). Used for stage-transition overheads.
  virtual void after(double delay, std::function<void()> fn) = 0;

  /// Block (or run the event loop) until all submitted work has finished,
  /// including work submitted from completion callbacks.
  virtual void drain() = 0;

  /// Current backend clock in seconds.
  virtual double now() = 0;

  /// Pool payloads may use for intra-task parallelism (GEMM row panels,
  /// LGA runs, MD replicas). Null for backends with no real compute
  /// resources, e.g. SimBackend.
  virtual common::ThreadPool* compute_pool() { return nullptr; }

  /// Attach a span recorder: the backend emits one cat::kTask span per task
  /// (name, submit/start/end on this backend's clock, resources, failure)
  /// and higher layers (AppManager stage spans) record through it too.
  /// Null (the default) disables task tracing. Not owned; the recorder must
  /// outlive recorded activity. The span clock is the recorder's clock —
  /// wire it to now() (ProfiledBackend does this) so SimBackend traces are
  /// in virtual time and LocalBackend traces in wall time, one schema.
  virtual void set_recorder(obs::Recorder* rec) { recorder_ = rec; }
  obs::Recorder* recorder() const { return recorder_; }

 protected:
  /// Emit the cat::kTask span for one finished task (no-op without a
  /// recorder). `submit_time` is when submit() was called on this clock.
  void record_task(const TaskResult& result, double submit_time, int cpus,
                   int gpus, int whole_nodes);

  obs::Recorder* recorder_ = nullptr;
};

struct SimBackendOptions {
  /// Fixed per-task launch overhead (scheduler + launch method), seconds.
  double task_overhead = 0.05;
  /// Pilot walltime: the batch allocation expires every `pilot_walltime`
  /// seconds of virtual time, killing whatever is still running (reported as
  /// ok=false, error="pilot walltime"); the next pilot starts immediately
  /// with the same resources. 0 = unlimited. Combine with AppManager
  /// max_retries to model campaigns spanning many allocations.
  double pilot_walltime = 0.0;
};

/// Discrete-event backend over a simulated cluster.
class SimBackend : public ExecutionBackend {
 public:
  explicit SimBackend(const hpc::MachineSpec& machine,
                      const SimBackendOptions& opts = {});

  void submit(TaskDescription task, CompletionCallback on_complete) override;
  void after(double delay, std::function<void()> fn) override;
  void drain() override;
  double now() override { return sim_.now(); }

  hpc::ClusterSim& cluster() { return cluster_; }
  hpc::Simulator& simulator() { return sim_; }
  /// Pilot allocations consumed so far (>= 1 once anything ran).
  int pilot_generation() const { return pilot_generation_; }

 private:
  struct Running {
    hpc::SlotRequest request;
    hpc::Placement placement;
    TaskResult result;
    std::shared_ptr<CompletionCallback> callback;
    double submit_time = 0.0;  ///< virtual time of the submit() call
    bool finished = false;     ///< set by completion or walltime kill
  };

  void ensure_walltime_event();

  hpc::Simulator sim_;
  hpc::ClusterSim cluster_;
  SimBackendOptions opts_;
  std::vector<std::shared_ptr<Running>> running_;
  double next_walltime_ = 0.0;
  bool walltime_scheduled_ = false;
  int pilot_generation_ = 1;
};

/// Thread-pool backend executing real payloads.
class LocalBackend : public ExecutionBackend {
 public:
  explicit LocalBackend(std::size_t threads = 0);

  void submit(TaskDescription task, CompletionCallback on_complete) override;
  void after(double delay, std::function<void()> fn) override;
  void drain() override;
  double now() override;

  common::ThreadPool& pool() { return pool_; }
  common::ThreadPool* compute_pool() override { return &pool_; }

 private:
  common::ThreadPool pool_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace impeccable::rct
