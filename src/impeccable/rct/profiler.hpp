#pragma once
// Execution profiling — the RADICAL-analytics role: per-task timestamps
// (submit / start / end), queue-wait statistics, a concurrency timeline and
// utilization/overhead summaries. The paper's Fig. 7 and its overhead-
// invariance claim are exactly the kind of analysis these records support.
//
// ProfiledBackend decorates any ExecutionBackend; the campaign and the
// benches can wrap their backend and read the session profile afterwards.

#include <mutex>
#include <string>
#include <vector>

#include "impeccable/rct/backend.hpp"

namespace impeccable::rct {

struct TaskRecord {
  std::string name;
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  bool ok = true;
  int cpus = 0;
  int gpus = 0;

  double queue_wait() const { return start_time - submit_time; }
  double runtime() const { return end_time - start_time; }
};

struct SessionProfile {
  std::vector<TaskRecord> tasks;

  /// Dump one row per task (name, submit, start, end, wait, runtime, ok)
  /// for external plotting — the RADICAL-analytics export.
  void write_csv(const std::string& path) const;

  double makespan() const;
  double mean_queue_wait() const;
  double total_task_runtime() const;
  /// Peak number of concurrently executing tasks.
  int peak_concurrency() const;
  /// Concurrency sampled at `buckets` uniform instants across the makespan.
  std::vector<int> concurrency_timeline(int buckets) const;
  /// Fraction of the makespan during which nothing executed (the "light
  /// vertical areas" of Fig. 7).
  double idle_fraction() const;
};

/// Decorator recording a TaskRecord per submitted task.
class ProfiledBackend : public ExecutionBackend {
 public:
  explicit ProfiledBackend(ExecutionBackend& inner) : inner_(inner) {}

  void submit(TaskDescription task, CompletionCallback on_complete) override;
  void after(double delay, std::function<void()> fn) override {
    inner_.after(delay, std::move(fn));
  }
  void drain() override { inner_.drain(); }
  double now() override { return inner_.now(); }
  common::ThreadPool* compute_pool() override { return inner_.compute_pool(); }

  /// Snapshot of everything recorded so far.
  SessionProfile profile() const;

 private:
  ExecutionBackend& inner_;
  mutable std::mutex mutex_;
  std::vector<TaskRecord> records_;
};

}  // namespace impeccable::rct
