#pragma once
// Execution profiling — the RADICAL-analytics role: per-task timestamps
// (submit / start / end), queue-wait statistics, a concurrency timeline and
// utilization/overhead summaries. The paper's Fig. 7 and its overhead-
// invariance claim are exactly the kind of analysis these records support.
//
// Since the obs:: redesign this is a VIEW over span traces, not a separate
// recording channel: backends emit one obs::cat::kTask span per task and
// SessionProfile::from_trace() reconstructs the per-task records from a
// flushed obs::Trace. ProfiledBackend survives as a thin decorator that owns
// (or borrows) an obs::Recorder, wires its clock to the inner backend's
// now(), and attaches it — existing call sites keep compiling unchanged.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "impeccable/obs/recorder.hpp"
#include "impeccable/rct/backend.hpp"

namespace impeccable::rct {

struct TaskRecord {
  std::string name;
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  bool ok = true;
  int cpus = 0;
  int gpus = 0;
  int whole_nodes = 0;    ///< whole-node request (exclusive MD-style tasks)
  std::string error;      ///< failure reason, e.g. "pilot walltime"

  double queue_wait() const { return start_time - submit_time; }
  double runtime() const { return end_time - start_time; }
};

struct SessionProfile {
  std::vector<TaskRecord> tasks;

  /// Rebuild per-task records from the cat::kTask spans of a flushed trace.
  /// Whole-node tasks that requested no explicit GPUs report the node's GPU
  /// complement (6/node, Summit) so utilization math keeps working.
  static SessionProfile from_trace(const obs::Trace& trace);

  /// Dump one row per task (name, submit, start, end, wait, runtime, ok,
  /// resources, error) for external plotting — the RADICAL-analytics export.
  void write_csv(const std::string& path) const;

  /// Machine-readable summary + per-task rows as one JSON object.
  void to_json(std::ostream& os) const;

  double makespan() const;
  double mean_queue_wait() const;
  double total_task_runtime() const;
  /// Peak number of concurrently executing tasks.
  int peak_concurrency() const;
  /// Concurrency sampled at `buckets` uniform instants across the makespan.
  std::vector<int> concurrency_timeline(int buckets) const;
  /// Fraction of the makespan during which nothing executed (the "light
  /// vertical areas" of Fig. 7).
  double idle_fraction() const;
};

/// Decorator attaching an obs::Recorder to any backend. Deprecated as a
/// recording mechanism — backends record through obs directly; this remains
/// for call sites that want a one-liner `profile()` without owning a
/// Recorder themselves.
class ProfiledBackend : public ExecutionBackend {
 public:
  /// Wraps `inner`, wiring `recorder`'s clock to inner.now() and attaching
  /// it so the inner backend emits task spans into it. A null `recorder`
  /// means this decorator owns a private one.
  explicit ProfiledBackend(ExecutionBackend& inner,
                           obs::Recorder* recorder = nullptr);
  ~ProfiledBackend() override;

  void submit(TaskDescription task, CompletionCallback on_complete) override {
    inner_.submit(std::move(task), std::move(on_complete));
  }
  void after(double delay, std::function<void()> fn) override {
    inner_.after(delay, std::move(fn));
  }
  void drain() override { inner_.drain(); }
  double now() override { return inner_.now(); }
  common::ThreadPool* compute_pool() override { return inner_.compute_pool(); }

  /// The recorder task spans land in (owned or borrowed).
  obs::Recorder& trace_recorder() { return *rec_; }

  /// Snapshot of everything recorded so far.
  SessionProfile profile() const;

 private:
  ExecutionBackend& inner_;
  std::unique_ptr<obs::Recorder> owned_;  ///< null when borrowing
  obs::Recorder* rec_ = nullptr;
};

}  // namespace impeccable::rct
