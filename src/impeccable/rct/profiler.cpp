#include "impeccable/rct/profiler.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "impeccable/obs/csv.hpp"
#include "impeccable/obs/json.hpp"

namespace impeccable::rct {

namespace {

double num_arg(const obs::SpanRecord& span, std::string_view key, double dflt) {
  for (const auto& a : span.args)
    if (a.is_num && a.key == key) return a.num;
  return dflt;
}

std::string str_arg(const obs::SpanRecord& span, std::string_view key) {
  for (const auto& a : span.args)
    if (!a.is_num && a.key == key) return a.str;
  return {};
}

}  // namespace

ProfiledBackend::ProfiledBackend(ExecutionBackend& inner,
                                 obs::Recorder* recorder)
    : inner_(inner),
      owned_(recorder ? nullptr : std::make_unique<obs::Recorder>()),
      rec_(recorder ? recorder : owned_.get()) {
  rec_->set_clock([&inner] { return inner.now(); });
  inner_.set_recorder(rec_);
  recorder_ = rec_;  // layers driving the decorator (AppManager) see it too
}

ProfiledBackend::~ProfiledBackend() {
  recorder_ = nullptr;
  inner_.set_recorder(nullptr);
  // The clock closure captures inner_; drop it before the capture can
  // dangle (only matters for borrowed recorders that outlive us).
  rec_->set_clock({});
}

SessionProfile ProfiledBackend::profile() const {
  return SessionProfile::from_trace(rec_->snapshot());
}

SessionProfile SessionProfile::from_trace(const obs::Trace& trace) {
  SessionProfile out;
  for (const auto& span : trace.spans) {
    if (std::string_view(span.category) != obs::cat::kTask) continue;
    TaskRecord rec;
    rec.name = span.name;
    rec.submit_time = num_arg(span, "submit", span.start);
    rec.start_time = span.start;
    rec.end_time = span.end;
    rec.ok = num_arg(span, "ok", 1.0) != 0.0;
    rec.cpus = static_cast<int>(num_arg(span, "cpus", 0.0));
    rec.whole_nodes = static_cast<int>(num_arg(span, "whole_nodes", 0.0));
    const int gpus = static_cast<int>(num_arg(span, "gpus", 0.0));
    // Whole-node proxy: exclusive-node tasks own the node's GPUs (6/node,
    // Summit) even when the request listed none.
    rec.gpus = gpus > 0 ? gpus : rec.whole_nodes * 6;
    rec.error = str_arg(span, "error");
    out.tasks.push_back(std::move(rec));
  }
  return out;
}

void SessionProfile::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("SessionProfile::write_csv: cannot open " + path);
  obs::CsvWriter csv(f);
  csv.cell("name").cell("submit").cell("start").cell("end").cell("queue_wait")
      .cell("runtime").cell("ok").cell("cpus").cell("gpus").cell("whole_nodes")
      .cell("error");
  csv.end_row();
  for (const auto& r : tasks) {
    csv.cell(r.name).cell(r.submit_time).cell(r.start_time).cell(r.end_time)
        .cell(r.queue_wait()).cell(r.runtime()).cell(r.ok ? 1 : 0)
        .cell(r.cpus).cell(r.gpus).cell(r.whole_nodes).cell(r.error);
    csv.end_row();
  }
}

void SessionProfile::to_json(std::ostream& os) const {
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("tasks", static_cast<std::uint64_t>(tasks.size()));
  w.kv("makespan", makespan());
  w.kv("mean_queue_wait", mean_queue_wait());
  w.kv("total_task_runtime", total_task_runtime());
  w.kv("peak_concurrency", peak_concurrency());
  w.kv("idle_fraction", idle_fraction());
  w.key("records");
  w.begin_array();
  for (const auto& r : tasks) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("submit", r.submit_time);
    w.kv("start", r.start_time);
    w.kv("end", r.end_time);
    w.kv("ok", r.ok);
    w.kv("cpus", r.cpus);
    w.kv("gpus", r.gpus);
    w.kv("whole_nodes", r.whole_nodes);
    if (!r.error.empty()) w.kv("error", r.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

double SessionProfile::makespan() const {
  double t = 0.0;
  for (const auto& r : tasks) t = std::max(t, r.end_time);
  return t;
}

double SessionProfile::mean_queue_wait() const {
  if (tasks.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : tasks) acc += r.queue_wait();
  return acc / static_cast<double>(tasks.size());
}

double SessionProfile::total_task_runtime() const {
  double acc = 0.0;
  for (const auto& r : tasks) acc += r.runtime();
  return acc;
}

int SessionProfile::peak_concurrency() const {
  // Sweep over start/end events.
  std::vector<std::pair<double, int>> events;
  events.reserve(tasks.size() * 2);
  for (const auto& r : tasks) {
    events.emplace_back(r.start_time, +1);
    events.emplace_back(r.end_time, -1);
  }
  std::sort(events.begin(), events.end());
  int cur = 0, peak = 0;
  for (const auto& [t, d] : events) {
    cur += d;
    peak = std::max(peak, cur);
  }
  return peak;
}

std::vector<int> SessionProfile::concurrency_timeline(int buckets) const {
  std::vector<int> out(static_cast<std::size_t>(std::max(0, buckets)), 0);
  const double span = makespan();
  if (span <= 0.0 || buckets <= 0) return out;
  for (int b = 0; b < buckets; ++b) {
    const double t = span * (b + 0.5) / buckets;
    int running = 0;
    for (const auto& r : tasks)
      if (r.start_time <= t && t < r.end_time) ++running;
    out[static_cast<std::size_t>(b)] = running;
  }
  return out;
}

double SessionProfile::idle_fraction() const {
  const double span = makespan();
  if (span <= 0.0 || tasks.empty()) return 0.0;
  // Merge execution intervals and measure the uncovered part of [0, span].
  std::vector<std::pair<double, double>> iv;
  iv.reserve(tasks.size());
  for (const auto& r : tasks) iv.emplace_back(r.start_time, r.end_time);
  std::sort(iv.begin(), iv.end());
  double covered = 0.0, cur_lo = iv.front().first, cur_hi = iv.front().second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > cur_hi) {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    } else {
      cur_hi = std::max(cur_hi, iv[i].second);
    }
  }
  covered += cur_hi - cur_lo;
  return 1.0 - covered / span;
}

}  // namespace impeccable::rct
