#include "impeccable/rct/profiler.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace impeccable::rct {

void ProfiledBackend::submit(TaskDescription task, CompletionCallback on_complete) {
  const double submitted = inner_.now();
  const std::string name = task.name;
  const int cpus = task.cpus;
  const int gpus = task.gpus > 0 ? task.gpus
                                 : task.whole_nodes * 6;  // whole-node proxy
  inner_.submit(std::move(task),
                [this, submitted, name, cpus, gpus,
                 cb = std::move(on_complete)](const TaskResult& result) {
                  {
                    std::lock_guard lock(mutex_);
                    TaskRecord rec;
                    rec.name = name;
                    rec.submit_time = submitted;
                    rec.start_time = result.start_time;
                    rec.end_time = result.end_time;
                    rec.ok = result.ok;
                    rec.cpus = cpus;
                    rec.gpus = gpus;
                    records_.push_back(std::move(rec));
                  }
                  cb(result);
                });
}

SessionProfile ProfiledBackend::profile() const {
  std::lock_guard lock(mutex_);
  return SessionProfile{records_};
}

void SessionProfile::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("SessionProfile::write_csv: cannot open " + path);
  f << "name,submit,start,end,queue_wait,runtime,ok,cpus,gpus\n";
  for (const auto& r : tasks)
    f << r.name << ',' << r.submit_time << ',' << r.start_time << ','
      << r.end_time << ',' << r.queue_wait() << ',' << r.runtime() << ','
      << (r.ok ? 1 : 0) << ',' << r.cpus << ',' << r.gpus << "\n";
}

double SessionProfile::makespan() const {
  double t = 0.0;
  for (const auto& r : tasks) t = std::max(t, r.end_time);
  return t;
}

double SessionProfile::mean_queue_wait() const {
  if (tasks.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : tasks) acc += r.queue_wait();
  return acc / static_cast<double>(tasks.size());
}

double SessionProfile::total_task_runtime() const {
  double acc = 0.0;
  for (const auto& r : tasks) acc += r.runtime();
  return acc;
}

int SessionProfile::peak_concurrency() const {
  // Sweep over start/end events.
  std::vector<std::pair<double, int>> events;
  events.reserve(tasks.size() * 2);
  for (const auto& r : tasks) {
    events.emplace_back(r.start_time, +1);
    events.emplace_back(r.end_time, -1);
  }
  std::sort(events.begin(), events.end());
  int cur = 0, peak = 0;
  for (const auto& [t, d] : events) {
    cur += d;
    peak = std::max(peak, cur);
  }
  return peak;
}

std::vector<int> SessionProfile::concurrency_timeline(int buckets) const {
  std::vector<int> out(static_cast<std::size_t>(std::max(0, buckets)), 0);
  const double span = makespan();
  if (span <= 0.0 || buckets <= 0) return out;
  for (int b = 0; b < buckets; ++b) {
    const double t = span * (b + 0.5) / buckets;
    int running = 0;
    for (const auto& r : tasks)
      if (r.start_time <= t && t < r.end_time) ++running;
    out[static_cast<std::size_t>(b)] = running;
  }
  return out;
}

double SessionProfile::idle_fraction() const {
  const double span = makespan();
  if (span <= 0.0 || tasks.empty()) return 0.0;
  // Merge execution intervals and measure the uncovered part of [0, span].
  std::vector<std::pair<double, double>> iv;
  iv.reserve(tasks.size());
  for (const auto& r : tasks) iv.emplace_back(r.start_time, r.end_time);
  std::sort(iv.begin(), iv.end());
  double covered = 0.0, cur_lo = iv.front().first, cur_hi = iv.front().second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > cur_hi) {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    } else {
      cur_hi = std::max(cur_hi, iv[i].second);
    }
  }
  covered += cur_hi - cur_lo;
  return 1.0 - covered / span;
}

}  // namespace impeccable::rct
