#include "impeccable/rct/raptor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include <ostream>

#include "impeccable/common/rng.hpp"
#include "impeccable/obs/json.hpp"

namespace impeccable::rct {

void RaptorStats::to_json(std::ostream& os) const {
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("tasks", static_cast<std::uint64_t>(tasks));
  w.kv("makespan", makespan);
  w.kv("throughput_per_hour", throughput_per_hour);
  w.kv("worker_utilization", worker_utilization);
  w.kv("load_imbalance", load_imbalance);
  w.kv("workers", static_cast<std::uint64_t>(worker_busy.size()));
  w.kv("workers_failed", workers_failed);
  w.kv("bulks_requeued", static_cast<std::uint64_t>(bulks_requeued));
  w.end_object();
}

void RaptorStats::finalize_derived() {
  throughput_per_hour =
      makespan > 0 ? static_cast<double>(tasks) / makespan * 3600.0 : 0.0;
  double total_busy = 0.0, max_busy = 0.0;
  for (double b : worker_busy) {
    total_busy += b;
    max_busy = std::max(max_busy, b);
  }
  const double denom = makespan * static_cast<double>(worker_busy.size());
  worker_utilization = denom > 0 ? total_busy / denom : 0.0;
  const double mean_busy =
      worker_busy.empty() ? 0.0
                          : total_busy / static_cast<double>(worker_busy.size());
  load_imbalance = mean_busy > 0 ? max_busy / mean_busy : 0.0;
}

namespace {

/// One master with its shard of workers and requests.
struct Master {
  std::vector<double> requests;   ///< durations, consumed from `next`
  std::size_t next = 0;
  double busy_until = 0.0;        ///< master service availability
  std::vector<int> workers;       ///< worker ids this master serves
};

struct Worker {
  double busy = 0.0;        ///< accumulated busy seconds
  double busy_until = 0.0;  ///< serializes bulk execution on this worker
  int in_flight_bulks = 0;
  bool alive = true;
};

struct Overlay {
  hpc::Simulator sim;
  RaptorOptions opts;
  common::Rng failure_rng{0};
  std::vector<Master> masters;
  std::vector<Worker> workers;
  double last_completion = 0.0;
  std::size_t completed = 0;
  int workers_failed = 0;
  std::size_t bulks_requeued = 0;

  /// A live worker of master `m` other than `except` (or -1).
  int pick_live_worker(int master_id, int except) {
    const Master& m = masters[static_cast<std::size_t>(master_id)];
    int best = -1;
    for (int w : m.workers) {
      if (w == except || !workers[static_cast<std::size_t>(w)].alive) continue;
      if (best == -1 || workers[static_cast<std::size_t>(w)].busy_until <
                            workers[static_cast<std::size_t>(best)].busy_until)
        best = w;  // least-loaded live worker
    }
    return best;
  }

  void dispatch(int master_id, int worker_id) {
    Master& m = masters[static_cast<std::size_t>(master_id)];
    if (m.next >= m.requests.size()) return;
    if (!workers[static_cast<std::size_t>(worker_id)].alive) return;

    const std::size_t count =
        std::min<std::size_t>(opts.bulk_size, m.requests.size() - m.next);
    std::vector<double> bulk(m.requests.begin() + static_cast<long>(m.next),
                             m.requests.begin() + static_cast<long>(m.next + count));
    m.next += count;

    double bulk_work = 0.0;
    for (double d : bulk) bulk_work += d;

    // Master serializes dispatches: service starts when the master frees up.
    const double service = opts.bulk_overhead +
                           opts.per_request_overhead * static_cast<double>(count);
    m.busy_until = std::max(m.busy_until, sim.now()) + service;
    const double arrive = m.busy_until;

    ++workers[static_cast<std::size_t>(worker_id)].in_flight_bulks;

    sim.schedule_at(arrive, [this, master_id, worker_id, bulk_work,
                             bulk = std::move(bulk)]() mutable {
      Worker& wk = workers[static_cast<std::size_t>(worker_id)];
      if (!wk.alive) {
        // Arrived at a dead worker: requeue immediately.
        --wk.in_flight_bulks;
        requeue(master_id, worker_id, bulk);
        return;
      }
      // The worker executes the bulk's requests back to back, after any
      // bulk already running on it.
      const double begin = std::max(sim.now(), wk.busy_until);
      // Failure model: the worker may die during this bulk.
      const bool dies = opts.worker_failure_rate > 0.0 &&
                        failure_rng.bernoulli(opts.worker_failure_rate);
      if (dies) {
        // Dies halfway through: the whole bulk must be re-executed elsewhere
        // (docking results of a dead executor are lost).
        const double died_at = begin + 0.5 * bulk_work;
        wk.busy_until = died_at;
        wk.busy += 0.5 * bulk_work;
        sim.schedule_at(died_at, [this, master_id, worker_id,
                                  bulk = std::move(bulk)]() mutable {
          Worker& w2 = workers[static_cast<std::size_t>(worker_id)];
          if (w2.alive) {
            w2.alive = false;
            ++workers_failed;
          }
          --w2.in_flight_bulks;
          requeue(master_id, worker_id, bulk);
        });
        return;
      }
      const double end = begin + bulk_work;
      wk.busy_until = end;
      wk.busy += bulk_work;
      const std::size_t count = bulk.size();
      sim.schedule_at(end, [this, master_id, worker_id, count] {
        Worker& wk2 = workers[static_cast<std::size_t>(worker_id)];
        --wk2.in_flight_bulks;
        last_completion = sim.now();
        completed += count;
        // Refill: keep `prefetch` bulks in flight per worker.
        while (wk2.alive && wk2.in_flight_bulks < opts.prefetch &&
               masters[static_cast<std::size_t>(master_id)].next <
                   masters[static_cast<std::size_t>(master_id)].requests.size()) {
          dispatch(master_id, worker_id);
        }
      });
    });
  }

  /// Put a lost bulk back into the master's queue and kick a live worker.
  void requeue(int master_id, int dead_worker, const std::vector<double>& bulk) {
    Master& m = masters[static_cast<std::size_t>(master_id)];
    ++bulks_requeued;
    m.requests.insert(m.requests.end(), bulk.begin(), bulk.end());
    const int target = pick_live_worker(master_id, dead_worker);
    if (target >= 0) dispatch(master_id, target);
    // If no live worker remains under this master, its residual requests
    // stall — mirroring a real pilot losing all its executors.
  }
};

}  // namespace

RaptorStats run_raptor(const RaptorOptions& opts,
                       const std::vector<double>& durations) {
  if (opts.masters < 1 || opts.workers < 1)
    throw std::invalid_argument("run_raptor: need at least one master/worker");
  if (opts.workers < opts.masters)
    throw std::invalid_argument("run_raptor: fewer workers than masters");

  Overlay ov;
  ov.opts = opts;
  ov.failure_rng.reseed(opts.failure_seed);
  ov.masters.resize(static_cast<std::size_t>(opts.masters));
  ov.workers.resize(static_cast<std::size_t>(opts.workers));

  // Shard workers and requests across masters round-robin.
  for (int w = 0; w < opts.workers; ++w)
    ov.masters[static_cast<std::size_t>(w % opts.masters)].workers.push_back(w);
  for (std::size_t i = 0; i < durations.size(); ++i)
    ov.masters[i % static_cast<std::size_t>(opts.masters)].requests.push_back(
        durations[i]);

  // Initial fill: each master primes its workers with `prefetch` bulks.
  for (int m = 0; m < opts.masters; ++m) {
    for (int round = 0; round < opts.prefetch; ++round)
      for (int w : ov.masters[static_cast<std::size_t>(m)].workers)
        ov.dispatch(m, w);
  }

  ov.sim.run();

  RaptorStats stats;
  stats.tasks = ov.completed;
  stats.makespan = ov.last_completion;
  for (const auto& w : ov.workers) stats.worker_busy.push_back(w.busy);
  stats.workers_failed = ov.workers_failed;
  stats.bulks_requeued = ov.bulks_requeued;
  stats.finalize_derived();
  return stats;
}

std::vector<double> docking_durations(std::size_t count, double mean_seconds,
                                      std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> out;
  out.reserve(count);
  // Log-normal with sigma=0.6 around the mean, plus a 2% long tail of
  // 5-15x ligands (highly flexible compounds).
  const double sigma = 0.6;
  const double mu = std::log(mean_seconds) - 0.5 * sigma * sigma;
  for (std::size_t i = 0; i < count; ++i) {
    double d = std::exp(rng.gauss(mu, sigma));
    if (rng.bernoulli(0.02)) d *= rng.uniform(5.0, 15.0);
    out.push_back(d);
  }
  return out;
}

}  // namespace impeccable::rct
