#pragma once
// EnTK — the Ensemble Toolkit PST (Pipeline, Stage, Task) programming model
// (Sec. 5.2.1), generalized to an explicit stage graph.
//
// Tasks without mutual ordering share a stage; stages execute sequentially
// within a pipeline; pipelines run concurrently, each progressing at its own
// pace. A stage's post_exec callback runs when the stage completes and may
// append further stages to its pipeline — the adaptivity hook that drives
// the iterative (S3-CG)-(S2)-(S3-FG) loop and "selects parameters at
// runtime" for cost/accuracy trade-offs.
//
// The StageGraph drops the strict PST sequence: stages declare explicit
// dependencies on other stages — within one pipeline, across pipelines, or
// across campaign iterations — and AppManager::run_graph() executes every
// stage as soon as its dependencies have completed (and their post_execs
// ran). The classic PST pipeline is the linear-chain special case:
// AppManager::run() translates each Pipeline into a chain of graph nodes,
// preserving retries, the fixed stage-transition overhead, adaptive
// post_exec appends, and the per-stage obs spans.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "impeccable/rct/backend.hpp"

namespace impeccable::rct {

class Pipeline;
class StageGraph;

struct Stage {
  std::string name;
  std::vector<TaskDescription> tasks;
  /// Runs after every task of the stage finished; may mutate the pipeline
  /// (append stages) — EnTK's adaptive post-execution hook.
  std::function<void(Pipeline&)> post_exec;
};

class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void add_stage(Stage stage) { stages_.push_back(std::move(stage)); }
  std::size_t remaining_stages() const { return stages_.size(); }

 private:
  friend class AppManager;
  std::string name_;
  std::deque<Stage> stages_;
};

/// Index of a stage node inside a StageGraph.
using NodeId = std::size_t;
inline constexpr NodeId kNoNode = ~NodeId{0};

/// One stage of a StageGraph. Tasks may be given up front (`tasks`) or
/// constructed lazily (`build`) once every dependency has completed — the
/// graph equivalent of building the next stage inside a post_exec, needed
/// when a stage's task list depends on upstream results.
struct StageNode {
  std::string name;
  /// Grouping label for the obs stage span ("pipeline" arg); also the span
  /// name when `name` is empty, mirroring PST pipelines.
  std::string pipeline;
  std::vector<TaskDescription> tasks;
  /// Lazy task construction: invoked when the node becomes ready, right
  /// before submission; the returned tasks are appended to `tasks`.
  std::function<std::vector<TaskDescription>()> build;
  /// Runs once all tasks of this node finished; may add() further nodes to
  /// the graph (adaptivity). The engine serializes post_exec callbacks —
  /// they never run concurrently, so shared-state merges need no locking.
  std::function<void(StageGraph&)> post_exec;
  /// Scheduling priority (higher first). Under AppManagerOptions::ReadyOrder
  /// ::kPriority, ready nodes launch in priority order and the node priority
  /// is added onto every task's own priority, so backend queues prefer
  /// critical-path work. Ignored (pure FIFO) under ::kFifo.
  double priority = 0.0;
};

/// A dependency graph of stages. Edges point from a node to stages it
/// depends on; dependencies must reference already-added nodes (no forward
/// edges), which structurally rules out cycles.
class StageGraph {
 public:
  /// Add a node depending on `deps` (all of which must already be in the
  /// graph). Returns the new node's id. Safe to call from a post_exec
  /// callback during execution (callbacks are serialized by the engine).
  NodeId add(StageNode node, std::vector<NodeId> deps = {});

  /// Re-weight a node's scheduling priority. Safe to call from a post_exec
  /// callback during execution (the engine reads priorities under the same
  /// serialization lock) — the hook TargetPolicy uses to steal resources for
  /// targets with rich hit rates. Takes effect for nodes not yet launched.
  void set_priority(NodeId id, double priority);
  double priority(NodeId id) const;

  std::size_t size() const { return nodes_.size(); }

 private:
  friend class AppManager;
  struct Entry {
    StageNode node;
    std::vector<NodeId> deps;
  };
  // deque: node references stay valid while post_exec appends concurrently
  // with other nodes executing.
  std::deque<Entry> nodes_;
};

struct AppManagerOptions {
  /// Fixed inter-stage transition overhead in backend seconds. Invariant to
  /// the number of tasks — the Fig. 7 "overheads ... invariant to scale"
  /// property falls out of this being a constant. Applied before any stage
  /// with at least one dependency; dependency-free roots start immediately.
  double stage_transition_overhead = 0.5;
  /// Failed tasks are resubmitted up to this many times before the failure
  /// is recorded (the paper's "careful exception handling to make the setup
  /// resilient against sporadic ... errors", Sec. 6.1.1).
  int max_retries = 0;
  /// How ready nodes leave the launch queue. kFifo is the historical
  /// arrival-order behavior; kPriority launches same-instant ready nodes in
  /// descending StageNode::priority order (arrival order within a level) and
  /// stamps the node priority onto each task so backend queues agree —
  /// critical-path waves (CG ensembles gating the pipelined makespan)
  /// preempt bulk dock waves.
  enum class ReadyOrder { kFifo, kPriority };
  ReadyOrder ready_order = ReadyOrder::kFifo;
};

/// Per-node timing of one graph run.
struct NodeReport {
  std::string name;
  std::string pipeline;
  double priority = 0.0;
  double ready = 0.0;  ///< all dependencies (and their post_execs) completed
  double begin = 0.0;  ///< tasks built and submitted
  double end = 0.0;    ///< last task finished and post_exec ran
  std::size_t tasks = 0;
  /// Time spent between becoming ready and launching: the stage-transition
  /// overhead plus any wait in the priority launch queue.
  double ready_wait() const { return begin - ready; }
};

/// Everything one run/run_graph call produced. Replaces the old accessor
/// soup (tasks_completed()/tasks_failed()/... silently reflected only the
/// last run); the report is a value you can keep. It iterates like the plain
/// result vector the API used to return, so existing call sites that only
/// ranged/sized the results keep compiling.
struct GraphRunReport {
  std::vector<TaskResult> results;  ///< every task result, completion order
  std::vector<NodeReport> nodes;    ///< per graph node, id order
  std::size_t retries = 0;
  double makespan = 0.0;  ///< latest task end_time on the backend clock

  std::size_t completed() const { return results.size(); }
  std::size_t failed() const;
  /// Per-node ready-queue waits (NodeReport::ready_wait), node-id order.
  std::vector<double> ready_waits() const;
  /// Log-spaced histogram of ready-queue waits: (upper_edge_seconds, count)
  /// pairs; the first bucket also absorbs zero/negative waits.
  std::vector<std::pair<double, std::size_t>> ready_wait_histogram() const;

  // Result-vector compatibility surface.
  using const_iterator = std::vector<TaskResult>::const_iterator;
  const_iterator begin() const { return results.begin(); }
  const_iterator end() const { return results.end(); }
  std::size_t size() const { return results.size(); }
  bool empty() const { return results.empty(); }
  const TaskResult& operator[](std::size_t i) const { return results[i]; }
  const TaskResult& front() const { return results.front(); }
  const TaskResult& back() const { return results.back(); }
};

/// Executes PST pipelines or an explicit stage graph on a backend (the EnTK
/// AppManager).
class AppManager {
 public:
  explicit AppManager(ExecutionBackend& backend,
                      const AppManagerOptions& opts = {});

  /// Run all pipelines to completion (blocking). Implemented as the
  /// linear-chain special case of run_graph(): each stage becomes a node
  /// depending on its predecessor.
  GraphRunReport run(std::vector<Pipeline> pipelines);

  /// Run a stage graph to completion (blocking). Every node launches once
  /// all its dependencies completed (post_exec included), plus the fixed
  /// stage-transition overhead; same-instant ready nodes leave the launch
  /// queue in ReadyOrder; independent nodes execute concurrently on the
  /// backend.
  GraphRunReport run_graph(StageGraph graph);

  /// \deprecated Statistics of the last run — prefer the GraphRunReport
  /// value returned by run()/run_graph(); these delegate to the last report.
  std::size_t tasks_completed() const { return last_.results.size(); }
  std::size_t tasks_failed() const { return last_.failed(); }
  std::size_t tasks_retried() const { return last_.retries; }
  double makespan() const { return last_.makespan; }

 private:
  struct NodeState {
    std::size_t waiting = 0;      ///< dependencies not yet completed
    std::size_t outstanding = 0;  ///< tasks still running
    bool done = false;
    double ready = 0.0;           ///< backend time dependencies completed
    double begin = 0.0;           ///< backend time the node started
    double end = 0.0;             ///< backend time the node completed
    double priority = 0.0;        ///< priority the node launched with
    std::size_t task_count = 0;   ///< submitted task count (span arg)
  };
  struct ReadyEntry {
    NodeId id = 0;
    std::uint64_t seq = 0;  ///< arrival order, the tie-break within a level
  };
  struct GraphRun {
    StageGraph graph;
    std::vector<NodeState> states;
    std::vector<std::vector<NodeId>> dependents;
    /// Nodes past their transition overhead, waiting for the next launch
    /// drain (one drain event services all same-instant arrivals, so
    /// priority order is decided over the whole wave, not arrival order).
    std::vector<ReadyEntry> launch_queue;
    bool drain_pending = false;
    std::uint64_t ready_seq = 0;
    explicit GraphRun(StageGraph g) : graph(std::move(g)) {}
  };

  /// Fold nodes added since the last call into the run state; returns the
  /// ids that are immediately ready. Caller holds mutex_.
  std::vector<NodeId> integrate_locked(GraphRun& g);
  void schedule(const std::shared_ptr<GraphRun>& g, NodeId id);
  void enqueue_ready(const std::shared_ptr<GraphRun>& g, NodeId id);
  void drain_ready(const std::shared_ptr<GraphRun>& g);
  /// Build and submit a ready node's tasks. `node_priority` is recorded in
  /// the NodeReport either way; it is stamped onto the tasks (reordering the
  /// backend queues) only when `stamp_tasks` is set — i.e. under
  /// ReadyOrder::kPriority.
  void start_node(const std::shared_ptr<GraphRun>& g, NodeId id,
                  double node_priority, bool stamp_tasks);
  void submit_task(const std::shared_ptr<GraphRun>& g, NodeId id,
                   const TaskDescription& task, int attempt);
  void on_task_done(const std::shared_ptr<GraphRun>& g, NodeId id,
                    const TaskResult& result);
  void complete_node(const std::shared_ptr<GraphRun>& g, NodeId id);
  /// Pop the head stage of `pipe` into a graph node chained after `dep`.
  void chain_head(StageGraph& graph, const std::shared_ptr<Pipeline>& pipe,
                  NodeId dep);

  ExecutionBackend& backend_;
  AppManagerOptions opts_;
  std::mutex mutex_;       ///< results + node states + launch queue
  std::mutex post_mutex_;  ///< serializes post_exec callbacks + graph adds
                           ///< + node-priority reads at launch drain
  std::vector<TaskResult> results_;
  std::size_t retries_ = 0;
  double makespan_ = 0.0;
  GraphRunReport last_;  ///< backs the deprecated accessors
};

}  // namespace impeccable::rct
