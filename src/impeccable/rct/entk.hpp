#pragma once
// EnTK — the Ensemble Toolkit PST (Pipeline, Stage, Task) programming model
// (Sec. 5.2.1).
//
// Tasks without mutual ordering share a stage; stages execute sequentially
// within a pipeline; pipelines run concurrently, each progressing at its own
// pace. A stage's post_exec callback runs when the stage completes and may
// append further stages to its pipeline — the adaptivity hook that drives
// the iterative (S3-CG)-(S2)-(S3-FG) loop and "selects parameters at
// runtime" for cost/accuracy trade-offs.

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "impeccable/rct/backend.hpp"

namespace impeccable::rct {

class Pipeline;

struct Stage {
  std::string name;
  std::vector<TaskDescription> tasks;
  /// Runs after every task of the stage finished; may mutate the pipeline
  /// (append stages) — EnTK's adaptive post-execution hook.
  std::function<void(Pipeline&)> post_exec;
};

class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void add_stage(Stage stage) { stages_.push_back(std::move(stage)); }
  std::size_t remaining_stages() const { return stages_.size(); }

 private:
  friend class AppManager;
  std::string name_;
  std::deque<Stage> stages_;
};

struct AppManagerOptions {
  /// Fixed inter-stage transition overhead in backend seconds. Invariant to
  /// the number of tasks — the Fig. 7 "overheads ... invariant to scale"
  /// property falls out of this being a constant.
  double stage_transition_overhead = 0.5;
  /// Failed tasks are resubmitted up to this many times before the failure
  /// is recorded (the paper's "careful exception handling to make the setup
  /// resilient against sporadic ... errors", Sec. 6.1.1).
  int max_retries = 0;
};

/// Executes a set of pipelines on a backend (the EnTK AppManager).
class AppManager {
 public:
  explicit AppManager(ExecutionBackend& backend,
                      const AppManagerOptions& opts = {});

  /// Run all pipelines to completion (blocking). Returns every task result
  /// in completion order.
  std::vector<TaskResult> run(std::vector<Pipeline> pipelines);

  /// Statistics of the last run.
  std::size_t tasks_completed() const { return results_.size(); }
  std::size_t tasks_failed() const;
  std::size_t tasks_retried() const { return retries_; }
  double makespan() const { return makespan_; }

 private:
  struct PipelineRun {
    Pipeline pipeline;
    std::size_t outstanding = 0;  ///< tasks still running in the head stage
    double stage_begin = 0.0;     ///< backend time the head stage started
    std::size_t stage_tasks = 0;  ///< head-stage task count (span arg)
    explicit PipelineRun(Pipeline p) : pipeline(std::move(p)) {}
  };

  void advance(const std::shared_ptr<PipelineRun>& run);
  void submit_task(const std::shared_ptr<PipelineRun>& run,
                   const TaskDescription& task, int attempt);
  void on_task_done(const std::shared_ptr<PipelineRun>& run,
                    const TaskResult& result);

  ExecutionBackend& backend_;
  AppManagerOptions opts_;
  std::mutex mutex_;
  std::vector<TaskResult> results_;
  std::size_t retries_ = 0;
  double makespan_ = 0.0;
};

}  // namespace impeccable::rct
