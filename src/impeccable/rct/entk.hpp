#pragma once
// EnTK — the Ensemble Toolkit PST (Pipeline, Stage, Task) programming model
// (Sec. 5.2.1), generalized to an explicit stage graph.
//
// Tasks without mutual ordering share a stage; stages execute sequentially
// within a pipeline; pipelines run concurrently, each progressing at its own
// pace. A stage's post_exec callback runs when the stage completes and may
// append further stages to its pipeline — the adaptivity hook that drives
// the iterative (S3-CG)-(S2)-(S3-FG) loop and "selects parameters at
// runtime" for cost/accuracy trade-offs.
//
// The StageGraph drops the strict PST sequence: stages declare explicit
// dependencies on other stages — within one pipeline, across pipelines, or
// across campaign iterations — and AppManager::run_graph() executes every
// stage as soon as its dependencies have completed (and their post_execs
// ran). The classic PST pipeline is the linear-chain special case:
// AppManager::run() translates each Pipeline into a chain of graph nodes,
// preserving retries, the fixed stage-transition overhead, adaptive
// post_exec appends, and the per-stage obs spans.

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "impeccable/rct/backend.hpp"

namespace impeccable::rct {

class Pipeline;
class StageGraph;

struct Stage {
  std::string name;
  std::vector<TaskDescription> tasks;
  /// Runs after every task of the stage finished; may mutate the pipeline
  /// (append stages) — EnTK's adaptive post-execution hook.
  std::function<void(Pipeline&)> post_exec;
};

class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void add_stage(Stage stage) { stages_.push_back(std::move(stage)); }
  std::size_t remaining_stages() const { return stages_.size(); }

 private:
  friend class AppManager;
  std::string name_;
  std::deque<Stage> stages_;
};

/// Index of a stage node inside a StageGraph.
using NodeId = std::size_t;
inline constexpr NodeId kNoNode = ~NodeId{0};

/// One stage of a StageGraph. Tasks may be given up front (`tasks`) or
/// constructed lazily (`build`) once every dependency has completed — the
/// graph equivalent of building the next stage inside a post_exec, needed
/// when a stage's task list depends on upstream results.
struct StageNode {
  std::string name;
  /// Grouping label for the obs stage span ("pipeline" arg); also the span
  /// name when `name` is empty, mirroring PST pipelines.
  std::string pipeline;
  std::vector<TaskDescription> tasks;
  /// Lazy task construction: invoked when the node becomes ready, right
  /// before submission; the returned tasks are appended to `tasks`.
  std::function<std::vector<TaskDescription>()> build;
  /// Runs once all tasks of this node finished; may add() further nodes to
  /// the graph (adaptivity). The engine serializes post_exec callbacks —
  /// they never run concurrently, so shared-state merges need no locking.
  std::function<void(StageGraph&)> post_exec;
};

/// A dependency graph of stages. Edges point from a node to stages it
/// depends on; dependencies must reference already-added nodes (no forward
/// edges), which structurally rules out cycles.
class StageGraph {
 public:
  /// Add a node depending on `deps` (all of which must already be in the
  /// graph). Returns the new node's id. Safe to call from a post_exec
  /// callback during execution (callbacks are serialized by the engine).
  NodeId add(StageNode node, std::vector<NodeId> deps = {});

  std::size_t size() const { return nodes_.size(); }

 private:
  friend class AppManager;
  struct Entry {
    StageNode node;
    std::vector<NodeId> deps;
  };
  // deque: node references stay valid while post_exec appends concurrently
  // with other nodes executing.
  std::deque<Entry> nodes_;
};

struct AppManagerOptions {
  /// Fixed inter-stage transition overhead in backend seconds. Invariant to
  /// the number of tasks — the Fig. 7 "overheads ... invariant to scale"
  /// property falls out of this being a constant. Applied before any stage
  /// with at least one dependency; dependency-free roots start immediately.
  double stage_transition_overhead = 0.5;
  /// Failed tasks are resubmitted up to this many times before the failure
  /// is recorded (the paper's "careful exception handling to make the setup
  /// resilient against sporadic ... errors", Sec. 6.1.1).
  int max_retries = 0;
};

/// Executes PST pipelines or an explicit stage graph on a backend (the EnTK
/// AppManager).
class AppManager {
 public:
  explicit AppManager(ExecutionBackend& backend,
                      const AppManagerOptions& opts = {});

  /// Run all pipelines to completion (blocking). Returns every task result
  /// in completion order. Implemented as the linear-chain special case of
  /// run_graph(): each stage becomes a node depending on its predecessor.
  std::vector<TaskResult> run(std::vector<Pipeline> pipelines);

  /// Run a stage graph to completion (blocking). Every node starts as soon
  /// as all its dependencies completed (post_exec included), plus the fixed
  /// stage-transition overhead; independent nodes execute concurrently on
  /// the backend. Returns every task result in completion order.
  std::vector<TaskResult> run_graph(StageGraph graph);

  /// Statistics of the last run.
  std::size_t tasks_completed() const { return results_.size(); }
  std::size_t tasks_failed() const;
  std::size_t tasks_retried() const { return retries_; }
  double makespan() const { return makespan_; }

 private:
  struct NodeState {
    std::size_t waiting = 0;      ///< dependencies not yet completed
    std::size_t outstanding = 0;  ///< tasks still running
    bool done = false;
    double begin = 0.0;           ///< backend time the node started
    std::size_t task_count = 0;   ///< submitted task count (span arg)
  };
  struct GraphRun {
    StageGraph graph;
    std::vector<NodeState> states;
    std::vector<std::vector<NodeId>> dependents;
    explicit GraphRun(StageGraph g) : graph(std::move(g)) {}
  };

  /// Fold nodes added since the last call into the run state; returns the
  /// ids that are immediately ready. Caller holds mutex_.
  std::vector<NodeId> integrate_locked(GraphRun& g);
  void schedule(const std::shared_ptr<GraphRun>& g, NodeId id);
  void start_node(const std::shared_ptr<GraphRun>& g, NodeId id);
  void submit_task(const std::shared_ptr<GraphRun>& g, NodeId id,
                   const TaskDescription& task, int attempt);
  void on_task_done(const std::shared_ptr<GraphRun>& g, NodeId id,
                    const TaskResult& result);
  void complete_node(const std::shared_ptr<GraphRun>& g, NodeId id);
  /// Pop the head stage of `pipe` into a graph node chained after `dep`.
  void chain_head(StageGraph& graph, const std::shared_ptr<Pipeline>& pipe,
                  NodeId dep);

  ExecutionBackend& backend_;
  AppManagerOptions opts_;
  std::mutex mutex_;       ///< results + node states
  std::mutex post_mutex_;  ///< serializes post_exec callbacks + graph adds
  std::vector<TaskResult> results_;
  std::size_t retries_ = 0;
  double makespan_ = 0.0;
};

}  // namespace impeccable::rct
