#include "impeccable/rct/raptor_backend.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace impeccable::rct {

RaptorBackend::RaptorBackend(ExecutionBackend& inner,
                             const RaptorBackendOptions& opts)
    : inner_(inner), opts_(opts), failure_rng_(opts.overlay.failure_seed) {
  if (opts_.overlay.masters < 1 || opts_.overlay.workers < 1)
    throw std::invalid_argument("RaptorBackend: need at least one master/worker");
  if (opts_.overlay.bulk_size < 1)
    throw std::invalid_argument("RaptorBackend: bulk_size must be >= 1");
  master_busy_until_.assign(static_cast<std::size_t>(opts_.overlay.masters),
                            0.0);
  lane_busy_.assign(static_cast<std::size_t>(opts_.overlay.workers), 0.0);
  recorder_ = inner_.recorder();
}

bool RaptorBackend::routed(const std::string& name) const {
  for (const std::string& p : opts_.route_prefixes)
    if (name.size() >= p.size() && name.compare(0, p.size(), p) == 0)
      return true;
  return false;
}

void RaptorBackend::submit(TaskDescription task, CompletionCallback on_complete) {
  if (!routed(task.name)) {
    inner_.submit(std::move(task), std::move(on_complete));
    return;
  }
  bool need_flush = false;
  {
    std::lock_guard lock(mu_);
    Request req;
    req.task = std::move(task);
    req.done = std::move(on_complete);
    buffer_.push_back(std::move(req));
    need_flush = !flush_scheduled_;
    flush_scheduled_ = true;
  }
  // One zero-delay flush event coalesces every same-instant submission
  // (a whole S1 wave, possibly across targets) into consecutive bulks.
  if (need_flush) inner_.after(0.0, [this] { flush(); });
}

void RaptorBackend::flush() {
  std::vector<std::shared_ptr<Bulk>> formed;
  {
    std::lock_guard lock(mu_);
    flush_scheduled_ = false;
    const std::size_t size = static_cast<std::size_t>(opts_.overlay.bulk_size);
    for (std::size_t at = 0; at < buffer_.size(); at += size) {
      auto bulk = std::make_shared<Bulk>();
      bulk->id = bulk_counter_++;
      const std::size_t end = std::min(buffer_.size(), at + size);
      for (std::size_t i = at; i < end; ++i) {
        bulk->work += buffer_[i].task.duration;
        bulk->priority = std::max(bulk->priority, buffer_[i].task.priority);
        bulk->members.push_back(std::move(buffer_[i]));
      }
      formed.push_back(std::move(bulk));
    }
    buffer_.clear();
  }
  for (auto& bulk : formed) launch(std::move(bulk));
}

void RaptorBackend::launch(std::shared_ptr<Bulk> bulk) {
  {
    std::lock_guard lock(mu_);
    const int window = opts_.overlay.workers * std::max(1, opts_.overlay.prefetch);
    if (in_flight_ >= window) {
      held_.push_back(std::move(bulk));
      return;
    }
    ++in_flight_;
  }
  dispatch(std::move(bulk));
}

void RaptorBackend::dispatch(std::shared_ptr<Bulk> bulk) {
  double delay = 0.0;
  {
    std::lock_guard lock(mu_);
    const double service =
        opts_.overlay.bulk_overhead +
        opts_.overlay.per_request_overhead *
            static_cast<double>(bulk->members.size());
    const std::size_t m = static_cast<std::size_t>(
        bulk->id % static_cast<std::uint64_t>(opts_.overlay.masters));
    const double now_s = inner_.now();
    // The master serializes its dispatches: service starts when it frees up.
    const double done_at = std::max(master_busy_until_[m], now_s) + service;
    master_busy_until_[m] = done_at;
    delay = done_at - now_s;
    bulk->lane = static_cast<int>(bulk->id %
                                  static_cast<std::uint64_t>(opts_.overlay.workers));
    bulk->dispatched = done_at;
    if (first_dispatch_ < 0.0) first_dispatch_ = done_at;
  }
  inner_.after(delay, [this, bulk = std::move(bulk)] { submit_bulk(bulk); });
}

void RaptorBackend::submit_bulk(const std::shared_ptr<Bulk>& bulk) {
  TaskDescription task;
  task.name = "raptor-bulk-" + std::to_string(bulk->id);
  task.cpus = opts_.bulk_cpus;
  task.gpus = opts_.bulk_gpus;
  task.duration = bulk->work;
  task.priority = bulk->priority;
  task.payload = [bulk] {
    // The worker executes the bulk's requests back to back; one member
    // throwing fails that member only, not the bulk.
    for (Request& r : bulk->members) {
      r.ok = true;
      r.error.clear();
      if (!r.task.payload) continue;
      try {
        r.task.payload();
      } catch (const std::exception& e) {
        r.ok = false;
        r.error = e.what();
      }
    }
  };
  inner_.submit(std::move(task), [this, bulk](const TaskResult& result) {
    on_bulk_done(bulk, result);
  });
}

void RaptorBackend::on_bulk_done(std::shared_ptr<Bulk> bulk,
                                 const TaskResult& result) {
  if (result.ok && opts_.overlay.worker_failure_rate > 0.0) {
    bool dies = false;
    {
      std::lock_guard lock(mu_);
      dies = failure_rng_.bernoulli(opts_.overlay.worker_failure_rate);
      if (dies) {
        // The modeled worker died halfway through: charge the lost half and
        // re-execute the whole bulk (results of a dead executor are lost).
        ++workers_failed_;
        ++bulks_requeued_;
        lane_busy_[static_cast<std::size_t>(bulk->lane)] += 0.5 * bulk->work;
      }
    }
    if (dies) {
      if (obs::Recorder* rec = recorder())
        rec->metrics().counter("raptor.requeued").add(1);
      dispatch(std::move(bulk));  // keeps its prefetch-window slot
      return;
    }
  }

  std::shared_ptr<Bulk> next;
  {
    std::lock_guard lock(mu_);
    if (result.ok)
      lane_busy_[static_cast<std::size_t>(bulk->lane)] += bulk->work;
    for (const Request& r : bulk->members)
      if (result.ok && r.ok) ++requests_done_;
    ++bulks_done_;
    last_completion_ = std::max(last_completion_, result.end_time);
    --in_flight_;
    if (!held_.empty()) {
      next = std::move(held_.front());
      held_.pop_front();
      ++in_flight_;
    }
  }

  if (obs::Recorder* rec = recorder()) {
    obs::SpanRecord span;
    span.category = obs::cat::kRaptor;
    span.name = "raptor-bulk";
    span.start = bulk->dispatched;
    span.end = result.end_time;
    span.arg("requests", static_cast<double>(bulk->members.size()));
    span.arg("work", bulk->work);
    span.arg("lane", static_cast<double>(bulk->lane));
    span.arg("priority", bulk->priority);
    rec->emit(std::move(span));
    rec->metrics().counter("raptor.bulks").add(1);
    rec->metrics().counter("raptor.requests").add(bulk->members.size());
  }

  // Fan the aggregate result back out: AppManager sees per-member results
  // and its retry logic resubmits failures, which then re-enter bulking.
  for (Request& r : bulk->members) {
    TaskResult member;
    member.name = r.task.name;
    member.ok = result.ok && r.ok;
    member.error = result.ok ? r.error : result.error;
    member.start_time = result.start_time;
    member.end_time = result.end_time;
    r.done(member);
  }

  if (next) dispatch(std::move(next));
}

void RaptorBackend::after(double delay, std::function<void()> fn) {
  inner_.after(delay, std::move(fn));
}

void RaptorBackend::drain() { inner_.drain(); }

double RaptorBackend::now() { return inner_.now(); }

common::ThreadPool* RaptorBackend::compute_pool() {
  return inner_.compute_pool();
}

void RaptorBackend::set_recorder(obs::Recorder* rec) {
  recorder_ = rec;
  inner_.set_recorder(rec);
}

RaptorStats RaptorBackend::stats() const {
  std::lock_guard lock(mu_);
  RaptorStats s;
  s.tasks = requests_done_;
  s.makespan = first_dispatch_ >= 0.0 ? last_completion_ - first_dispatch_ : 0.0;
  s.worker_busy = lane_busy_;
  s.workers_failed = workers_failed_;
  s.bulks_requeued = bulks_requeued_;
  s.finalize_derived();
  return s;
}

}  // namespace impeccable::rct
