#pragma once
// Substructure matching: subgraph isomorphism of one molecular graph inside
// another (VF2-style backtracking). Queries are ordinary SMILES; atoms match
// on element + aromaticity, bonds on aromaticity + order. This powers
// medicinal-chemistry filters (reactive-group removal, motif counting) of
// the kind production screening libraries apply before docking.

#include <string_view>
#include <vector>

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

/// True if `query` occurs as a (node-induced-edge-compatible) subgraph.
bool has_substructure(const Molecule& mol, const Molecule& query);
bool has_substructure(const Molecule& mol, std::string_view query_smiles);

/// All distinct matches, each a query->molecule atom index map, up to
/// `max_matches` (automorphic duplicates of the query count separately).
std::vector<std::vector<int>> find_substructures(const Molecule& mol,
                                                 const Molecule& query,
                                                 std::size_t max_matches = 64);

/// Number of matches (capped at `cap`).
std::size_t count_substructures(const Molecule& mol, const Molecule& query,
                                std::size_t cap = 64);

}  // namespace impeccable::chem
