#include "impeccable/chem/molecule.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace impeccable::chem {

int Molecule::add_atom(Atom a) {
  finalized_ = false;
  atoms_.push_back(a);
  adjacency_.emplace_back();
  return atom_count() - 1;
}

int Molecule::add_bond(int a, int b, int order, bool aromatic) {
  if (a < 0 || b < 0 || a >= atom_count() || b >= atom_count())
    throw std::out_of_range("Molecule::add_bond: atom index out of range");
  if (a == b) throw std::invalid_argument("Molecule::add_bond: self-loop");
  if (bond_between(a, b) >= 0)
    throw std::invalid_argument("Molecule::add_bond: duplicate bond");
  if (order < 1 || order > 3)
    throw std::invalid_argument("Molecule::add_bond: order must be 1..3");
  finalized_ = false;
  bonds_.push_back(Bond{a, b, order, aromatic});
  const int idx = bond_count() - 1;
  adjacency_[static_cast<std::size_t>(a)].push_back(idx);
  adjacency_[static_cast<std::size_t>(b)].push_back(idx);
  return idx;
}

int Molecule::neighbor(int i, int bond_idx) const {
  const Bond& bd = bond(bond_idx);
  return bd.a == i ? bd.b : bd.a;
}

std::vector<int> Molecule::neighbors(int i) const {
  std::vector<int> out;
  out.reserve(bonds_of(i).size());
  for (int bi : bonds_of(i)) out.push_back(neighbor(i, bi));
  return out;
}

int Molecule::bond_between(int a, int b) const {
  if (a < 0 || a >= atom_count()) return -1;
  for (int bi : bonds_of(a))
    if (neighbor(a, bi) == b) return bi;
  return -1;
}

void Molecule::finalize() {
  compute_rings();
  compute_hydrogens();
  finalized_ = true;
}

void Molecule::compute_rings() {
  // A bond is in a ring iff it is not a bridge. Classic one-pass bridge
  // finding via DFS low-link values (iterative to handle large molecules).
  const int n = atom_count();
  atom_in_ring_.assign(static_cast<std::size_t>(n), false);
  bond_in_ring_.assign(static_cast<std::size_t>(bond_count()), true);

  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  int timer = 0;
  int components = 0;

  struct Frame {
    int atom;
    int parent_bond;
    std::size_t next_edge;
  };

  for (int start = 0; start < n; ++start) {
    if (disc[static_cast<std::size_t>(start)] != -1) continue;
    ++components;
    std::vector<Frame> stack;
    disc[static_cast<std::size_t>(start)] = low[static_cast<std::size_t>(start)] = timer++;
    stack.push_back({start, -1, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& edges = bonds_of(f.atom);
      if (f.next_edge < edges.size()) {
        const int bi = edges[f.next_edge++];
        if (bi == f.parent_bond) continue;
        const int to = neighbor(f.atom, bi);
        auto ut = static_cast<std::size_t>(to);
        auto ua = static_cast<std::size_t>(f.atom);
        if (disc[ut] != -1) {
          low[ua] = std::min(low[ua], disc[ut]);
        } else {
          disc[ut] = low[ut] = timer++;
          stack.push_back({to, bi, 0});
        }
      } else {
        // Post-order: propagate low-link to parent; mark bridges.
        if (f.parent_bond >= 0) {
          const Bond& pb = bond(f.parent_bond);
          const int parent = pb.a == f.atom ? pb.b : pb.a;
          auto up = static_cast<std::size_t>(parent);
          auto ua = static_cast<std::size_t>(f.atom);
          low[up] = std::min(low[up], low[ua]);
          if (low[ua] > disc[up])
            bond_in_ring_[static_cast<std::size_t>(f.parent_bond)] = false;
        }
        stack.pop_back();
      }
    }
  }

  for (int bi = 0; bi < bond_count(); ++bi) {
    if (!bond_in_ring_[static_cast<std::size_t>(bi)]) continue;
    atom_in_ring_[static_cast<std::size_t>(bond(bi).a)] = true;
    atom_in_ring_[static_cast<std::size_t>(bond(bi).b)] = true;
  }

  ring_count_ = bond_count() - n + components;
}

double Molecule::valence_used(int i) const {
  double v = 0.0;
  for (int bi : bonds_of(i)) {
    const Bond& b = bond(bi);
    v += b.aromatic ? 1.5 : static_cast<double>(b.order);
  }
  return v;
}

void Molecule::compute_hydrogens() {
  h_count_.assign(static_cast<std::size_t>(atom_count()), 0);
  for (int i = 0; i < atom_count(); ++i) {
    const Atom& a = atom(i);
    if (a.explicit_h >= 0) {
      h_count_[static_cast<std::size_t>(i)] = a.explicit_h;
      continue;
    }
    // Default valence, adjusted by formal charge in the usual direction
    // (e.g. [NH4+] has valence 4, [O-] has valence 1).
    int target = info(a.element).default_valence;
    if (a.element == Element::N || a.element == Element::P)
      target += a.formal_charge;
    else if (a.element == Element::O || a.element == Element::S)
      target += a.formal_charge;
    else if (a.element == Element::C)
      target -= std::abs(a.formal_charge);
    const int used = static_cast<int>(std::ceil(valence_used(i) - 1e-9));
    h_count_[static_cast<std::size_t>(i)] = std::max(0, target - used);
  }
}

bool Molecule::connected() const {
  if (atom_count() == 0) return true;
  std::vector<bool> seen(static_cast<std::size_t>(atom_count()), false);
  std::vector<int> stack{0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (int bi : bonds_of(cur)) {
      const int to = neighbor(cur, bi);
      if (!seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = true;
        ++visited;
        stack.push_back(to);
      }
    }
  }
  return visited == atom_count();
}

std::string Molecule::formula() const {
  std::map<std::string, int> counts;
  int hydrogens = 0;
  for (int i = 0; i < atom_count(); ++i) {
    counts[std::string(symbol(atom(i).element))]++;
    if (finalized_) hydrogens += hydrogen_count(i);
  }
  if (hydrogens > 0) counts["H"] += hydrogens;

  std::string out;
  auto append = [&](const std::string& sym) {
    auto it = counts.find(sym);
    if (it == counts.end() || it->second == 0) return;
    out += sym;
    if (it->second > 1) out += std::to_string(it->second);
    counts.erase(it);
  };
  // Hill order: carbon, hydrogen, then the rest alphabetically.
  append("C");
  append("H");
  for (const auto& [sym, cnt] : counts) {
    out += sym;
    if (cnt > 1) out += std::to_string(cnt);
  }
  return out;
}

}  // namespace impeccable::chem
