#include "impeccable/chem/store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "impeccable/chem/smiles.hpp"

namespace impeccable::chem {

namespace {

constexpr char kMagic[8] = {'I', 'M', 'P', 'L', 'I', 'G', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kChecksumChunk = std::size_t{4} << 20;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string shard_name(std::size_t index) {
  char name[64];
  std::snprintf(name, sizeof name, "shard-%05zu.imls", index);
  return name;
}

/// Checksum [offset, offset+n) of an open fd through a bounded buffer, so
/// validating a huge shard never maps or faults it resident.
bool checksum_range(int fd, std::size_t offset, std::size_t n,
                    std::uint64_t* out) {
  std::vector<std::uint8_t> buf(std::min(n, kChecksumChunk));
  std::uint64_t h = kFnvOffset64;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t want = std::min(n - done, buf.size());
    const ssize_t got = ::pread(fd, buf.data(), want,
                                static_cast<off_t>(offset + done));
    if (got <= 0) return false;
    h = fnv1a64(buf.data(), static_cast<std::size_t>(got), h);
    done += static_cast<std::size_t>(got);
  }
  *out = h;
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001b3ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Writer

LigandStoreWriter::LigandStoreWriter(std::string directory,
                                     StoreWriterOptions opts)
    : dir_(std::move(directory)), opts_(opts) {
  if (opts_.records_per_shard == 0)
    throw std::invalid_argument("LigandStoreWriter: records_per_shard == 0");
  std::filesystem::create_directories(dir_);
  if (opts_.dedup) dedup_buckets_.resize(256);
}

LigandStoreWriter::~LigandStoreWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor flush is best-effort; call finish() to observe failures.
  }
}

bool LigandStoreWriter::append(std::string_view id, std::string_view smiles) {
  if (finished_)
    throw std::logic_error("LigandStoreWriter: append after finish");
  if (id.size() > 0xffff || smiles.size() > 0xffff)
    throw std::invalid_argument("LigandStoreWriter: field too long");
  if (opts_.dedup) {
    std::uint64_t digest = 0;
    if (opts_.canonicalize) {
      const std::string canon = canonical_smiles(smiles);
      digest = fnv1a64(canon.data(), canon.size());
    } else {
      digest = fnv1a64(smiles.data(), smiles.size());
    }
    auto& bucket = dedup_buckets_[digest >> 56];
    const auto it = std::lower_bound(bucket.begin(), bucket.end(), digest);
    if (it != bucket.end() && *it == digest) {
      ++stats_.duplicates_dropped;
      return false;
    }
    bucket.insert(it, digest);
  }
  offsets_.push_back(payload_.size());
  put_u16(payload_, static_cast<std::uint16_t>(id.size()));
  put_u16(payload_, static_cast<std::uint16_t>(smiles.size()));
  payload_.insert(payload_.end(), id.begin(), id.end());
  payload_.insert(payload_.end(), smiles.begin(), smiles.end());
  ++stats_.records;
  if (offsets_.size() >= opts_.records_per_shard) flush_shard();
  return true;
}

void LigandStoreWriter::finish() {
  if (finished_) return;
  flush_shard();
  finished_ = true;
}

void LigandStoreWriter::flush_shard() {
  if (offsets_.empty()) return;
  const std::size_t payload_bytes = payload_.size();
  // Pad the payload so the index is 8-byte aligned in the file (and in any
  // mapping of it).
  while (payload_.size() % 8 != 0) payload_.push_back(0);
  const std::size_t index_offset = kHeaderBytes + payload_.size();

  std::vector<std::uint8_t> index(offsets_.size() * 8);
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    put_u64(index.data() + i * 8, offsets_[i]);

  const std::size_t file_bytes = index_offset + index.size();
  std::uint64_t checksum = fnv1a64(payload_.data(), payload_.size());
  checksum = fnv1a64(index.data(), index.size(), checksum);

  std::uint8_t header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof kMagic);
  put_u32(header + 8, kVersion);
  put_u32(header + 12, 0);  // flags
  put_u64(header + 16, offsets_.size());
  put_u64(header + 24, payload_bytes);
  put_u64(header + 32, index_offset);
  put_u64(header + 40, file_bytes);
  put_u64(header + 48, checksum);

  const std::string path = dir_ + "/" + shard_name(shard_index_);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("LigandStoreWriter: cannot open " + path);
  const bool ok =
      std::fwrite(header, 1, sizeof header, f) == sizeof header &&
      std::fwrite(payload_.data(), 1, payload_.size(), f) == payload_.size() &&
      std::fwrite(index.data(), 1, index.size(), f) == index.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) throw std::runtime_error("LigandStoreWriter: short write " + path);

  ++shard_index_;
  payload_.clear();
  offsets_.clear();
}

// ---------------------------------------------------------------------------
// Reader

LigandStore LigandStore::open(const std::string& directory) {
  LigandStore st;
  st.dir_ = directory;
  std::error_code ec;
  std::vector<std::string> names;
  for (std::filesystem::directory_iterator it(directory, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("shard-", 0) == 0 && name.ends_with(".imls"))
      names.push_back(name);
  }
  std::sort(names.begin(), names.end());

  for (const auto& name : names) {
    const std::string path = directory + "/" + name;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      ++st.stats_.shards_skipped;
      continue;
    }
    struct stat sb {};
    std::uint8_t header[kHeaderBytes];
    Shard sh;
    bool ok = ::fstat(fd, &sb) == 0 &&
              static_cast<std::size_t>(sb.st_size) >= kHeaderBytes &&
              ::pread(fd, header, kHeaderBytes, 0) ==
                  static_cast<ssize_t>(kHeaderBytes) &&
              std::memcmp(header, kMagic, sizeof kMagic) == 0 &&
              get_u32(header + 8) == kVersion;
    if (ok) {
      sh.count = get_u64(header + 16);
      sh.payload_bytes = get_u64(header + 24);
      sh.index_offset = get_u64(header + 32);
      sh.bytes = get_u64(header + 40);
      // Structural sanity: declared size matches the file, the index sits
      // after the payload, and the record count fills the index exactly.
      ok = sh.bytes == static_cast<std::size_t>(sb.st_size) &&
           sh.index_offset >= kHeaderBytes + sh.payload_bytes &&
           sh.index_offset <= sh.bytes && sh.count > 0 &&
           sh.count == (sh.bytes - sh.index_offset) / 8 &&
           (sh.bytes - sh.index_offset) % 8 == 0;
    }
    if (ok) {
      std::uint64_t sum = 0;
      ok = checksum_range(fd, kHeaderBytes, sh.bytes - kHeaderBytes, &sum) &&
           sum == get_u64(header + 48);
    }
    if (ok) {
      void* base = ::mmap(nullptr, sh.bytes, PROT_READ, MAP_SHARED, fd, 0);
      ok = base != MAP_FAILED;
      if (ok) sh.base = static_cast<const std::uint8_t*>(base);
    }
    if (!ok) {
      ::close(fd);
      ++st.stats_.shards_skipped;
      continue;
    }
    sh.fd = fd;
    sh.start = st.total_;
    st.total_ += sh.count;
    st.shards_.push_back(sh);
    ++st.stats_.shards_ok;
  }
  st.stats_.records = st.total_;
  return st;
}

LigandStore::~LigandStore() {
  for (auto& sh : shards_) {
    if (sh.base)
      ::munmap(const_cast<std::uint8_t*>(sh.base), sh.bytes);
    if (sh.fd >= 0) ::close(sh.fd);
  }
}

LigandStore::LigandStore(LigandStore&& other) noexcept
    : dir_(std::move(other.dir_)),
      shards_(std::move(other.shards_)),
      total_(other.total_),
      stats_(other.stats_) {
  other.shards_.clear();
  other.total_ = 0;
}

LigandStore& LigandStore::operator=(LigandStore&& other) noexcept {
  if (this != &other) {
    this->~LigandStore();
    new (this) LigandStore(std::move(other));
  }
  return *this;
}

const LigandStore::Shard& LigandStore::shard_of(std::size_t i,
                                                std::size_t& rec) const {
  if (i >= total_) throw std::out_of_range("LigandStore: index");
  // First shard whose start is > i, then step back.
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), i,
      [](std::size_t v, const Shard& s) { return v < s.start; });
  --it;
  rec = i - it->start;
  return *it;
}

std::pair<std::string_view, std::string_view> LigandStore::record(
    std::size_t i) const {
  std::size_t rec = 0;
  const Shard& sh = shard_of(i, rec);
  const std::uint64_t off = get_u64(sh.base + sh.index_offset + rec * 8);
  if (off + 4 > sh.payload_bytes)
    throw std::runtime_error("LigandStore: record offset out of payload");
  const std::uint8_t* p = sh.base + kHeaderBytes + off;
  const std::size_t id_len = get_u16(p);
  const std::size_t smi_len = get_u16(p + 2);
  if (off + 4 + id_len + smi_len > sh.payload_bytes)
    throw std::runtime_error("LigandStore: record overruns payload");
  const char* chars = reinterpret_cast<const char*>(p + 4);
  return {std::string_view(chars, id_len),
          std::string_view(chars + id_len, smi_len)};
}

std::string_view LigandStore::id(std::size_t i) const {
  return record(i).first;
}

std::string_view LigandStore::smiles(std::size_t i) const {
  return record(i).second;
}

LigandRef LigandStore::locate(std::size_t i) const {
  std::size_t rec = 0;
  const Shard& sh = shard_of(i, rec);
  LigandRef ref;
  ref.shard = static_cast<std::uint32_t>(&sh - shards_.data());
  ref.offset = get_u64(sh.base + sh.index_offset + rec * 8);
  return ref;
}

std::size_t LigandStore::index_of(const LigandRef& ref) const {
  if (ref.shard >= shards_.size()) return total_;
  const Shard& sh = shards_[ref.shard];
  // The index is ascending by construction; binary search the offset.
  std::size_t lo = 0, hi = sh.count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::uint64_t off = get_u64(sh.base + sh.index_offset + mid * 8);
    if (off < ref.offset)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo >= sh.count ||
      get_u64(sh.base + sh.index_offset + lo * 8) != ref.offset)
    return total_;
  return sh.start + lo;
}

void LigandStore::release(std::size_t begin, std::size_t end) const {
  if (begin >= end || begin >= total_) return;
  end = std::min(end, total_);
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t pagesz = page > 0 ? static_cast<std::size_t>(page) : 4096;
  std::size_t i = begin;
  while (i < end) {
    std::size_t rec = 0;
    const Shard& sh = shard_of(i, rec);
    const std::size_t last = std::min(end, sh.start + sh.count) - 1;
    const std::uint64_t lo_off = get_u64(sh.base + sh.index_offset + rec * 8);
    const std::uint64_t hi_off = get_u64(
        sh.base + sh.index_offset + (last - sh.start) * 8);
    // Read the last record's header for its exact extent, and round the span
    // DOWN to page boundaries on both sides. Never release past the caller's
    // range: the kernel maps page-cache folios whole on fault, so zapping
    // bytes ahead of a sequential reader forces an immediate refault that
    // remaps the folio — including the span just released — and the release
    // nets to nothing. Partial boundary pages are picked up by the next call.
    std::uint64_t hi_end = hi_off + 4;
    if (hi_off + 4 <= sh.payload_bytes) {
      const std::uint8_t* p = sh.base + kHeaderBytes + hi_off;
      hi_end = std::min<std::uint64_t>(
          hi_off + 4 + get_u16(p) + get_u16(p + 2), sh.payload_bytes);
    }
    const std::size_t from = (kHeaderBytes + lo_off) / pagesz * pagesz;
    const std::size_t to = (kHeaderBytes + hi_end) / pagesz * pagesz;
    if (to > from)
      ::madvise(const_cast<std::uint8_t*>(sh.base) + from, to - from,
                MADV_DONTNEED);
    // The offset index is walked once per record by the same reader; drop the
    // consumed index span too (32 MB per full shard adds up across a store).
    const std::size_t ifrom =
        static_cast<std::size_t>(sh.index_offset + rec * 8) / pagesz * pagesz;
    const std::size_t ito =
        std::min<std::size_t>(sh.index_offset + (last - sh.start + 1) * 8,
                              sh.bytes) /
        pagesz * pagesz;
    if (ito > ifrom)
      ::madvise(const_cast<std::uint8_t*>(sh.base) + ifrom, ito - ifrom,
                MADV_DONTNEED);
    i = last + 1;
  }
}

}  // namespace impeccable::chem
