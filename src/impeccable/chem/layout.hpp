#pragma once
// Coordinate generation from the molecular graph.
//
//  * layout_2d      — force-directed 2D depiction coordinates; ML1's image
//                     featurization ("2D image depictions", Sec. 5.1.2)
//                     rasterizes these.
//  * embed_3d       — crude distance-geometry 3D embedding used to build the
//                     docking ligand (conformer enumeration input, Sec. 3.2 S1)
//                     and the MD bead topology.
//
// Both are deterministic given (molecule, seed).

#include <cstdint>
#include <vector>

#include "impeccable/chem/molecule.hpp"
#include "impeccable/common/vec3.hpp"

namespace impeccable::chem {

struct Point2 {
  double x = 0.0, y = 0.0;
};

/// Spring-embedder 2D layout with unit bond lengths; centered at the origin
/// and scaled so the RMS distance from center is 1. `iterations` trades
/// embedding fidelity for speed (the default matches the historical fixed
/// count; low-resolution depictions tolerate far fewer — the out-of-core
/// streaming bench runs 1e8 ligands on a coarse setting).
std::vector<Point2> layout_2d(const Molecule& mol, std::uint64_t seed = 7,
                              int iterations = 250);

/// Distance-geometry 3D embedding: bond-length and 1-3 distance restraints
/// plus soft nonbonded repulsion, minimized from a randomized start.
/// Bond lengths follow covalent-radius sums (~1.2-2.2 Å scale).
std::vector<common::Vec3> embed_3d(const Molecule& mol, std::uint64_t seed = 7);

/// Ideal length for a bond, Å (order-aware covalent radii sum).
double ideal_bond_length(const Molecule& mol, int bond_index);

}  // namespace impeccable::chem
