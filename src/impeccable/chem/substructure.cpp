#include "impeccable/chem/substructure.hpp"

#include <algorithm>

#include "impeccable/chem/smiles.hpp"

namespace impeccable::chem {

namespace {

bool atoms_compatible(const Molecule& mol, int mi, const Molecule& query, int qi) {
  const Atom& a = mol.atom(mi);
  const Atom& q = query.atom(qi);
  if (a.element != q.element) return false;
  if (a.aromatic != q.aromatic) return false;
  // The molecule atom must offer at least the query's connectivity.
  return mol.degree(mi) >= query.degree(qi);
}

bool bonds_compatible(const Bond& mb, const Bond& qb) {
  if (qb.aromatic != mb.aromatic) return false;
  if (!qb.aromatic && qb.order != mb.order) return false;
  return true;
}

struct Matcher {
  const Molecule& mol;
  const Molecule& query;
  std::size_t max_matches;
  std::vector<int> q_to_m;   ///< query atom -> molecule atom (-1 unmapped)
  std::vector<bool> m_used;
  std::vector<std::vector<int>> matches;
  /// Query atoms in a connectivity-respecting order: after the first, every
  /// atom has at least one earlier neighbour (makes pruning effective).
  std::vector<int> order;

  Matcher(const Molecule& m, const Molecule& q, std::size_t cap)
      : mol(m), query(q), max_matches(cap),
        q_to_m(static_cast<std::size_t>(q.atom_count()), -1),
        m_used(static_cast<std::size_t>(m.atom_count()), false) {
    std::vector<bool> placed(static_cast<std::size_t>(q.atom_count()), false);
    // BFS from atom 0 per connected component (queries are connected since
    // parse_smiles rejects dot-fragments).
    std::vector<int> frontier{0};
    placed[0] = true;
    order.push_back(0);
    while (!frontier.empty()) {
      const int cur = frontier.front();
      frontier.erase(frontier.begin());
      for (int nb : q.neighbors(cur)) {
        if (!placed[static_cast<std::size_t>(nb)]) {
          placed[static_cast<std::size_t>(nb)] = true;
          order.push_back(nb);
          frontier.push_back(nb);
        }
      }
    }
  }

  bool extend(std::size_t depth) {
    if (depth == order.size()) {
      matches.push_back(q_to_m);
      return matches.size() >= max_matches;
    }
    const int qi = order[depth];

    // Candidates: neighbours of an already-mapped query neighbour (or any
    // atom for the root).
    std::vector<int> candidates;
    int anchor_q = -1;
    for (int nb : query.neighbors(qi)) {
      if (q_to_m[static_cast<std::size_t>(nb)] != -1) {
        anchor_q = nb;
        break;
      }
    }
    if (anchor_q == -1) {
      candidates.resize(static_cast<std::size_t>(mol.atom_count()));
      for (int i = 0; i < mol.atom_count(); ++i)
        candidates[static_cast<std::size_t>(i)] = i;
    } else {
      candidates = mol.neighbors(q_to_m[static_cast<std::size_t>(anchor_q)]);
    }

    for (int mi : candidates) {
      if (m_used[static_cast<std::size_t>(mi)]) continue;
      if (!atoms_compatible(mol, mi, query, qi)) continue;
      // Every bond from qi to an already-mapped query atom must exist in the
      // molecule with a compatible type.
      bool ok = true;
      for (int qb : query.bonds_of(qi)) {
        const int qnb = query.neighbor(qi, qb);
        const int mapped = q_to_m[static_cast<std::size_t>(qnb)];
        if (mapped == -1) continue;
        const int mb = mol.bond_between(mi, mapped);
        if (mb < 0 || !bonds_compatible(mol.bond(mb), query.bond(qb))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      q_to_m[static_cast<std::size_t>(qi)] = mi;
      m_used[static_cast<std::size_t>(mi)] = true;
      const bool done = extend(depth + 1);
      q_to_m[static_cast<std::size_t>(qi)] = -1;
      m_used[static_cast<std::size_t>(mi)] = false;
      if (done) return true;
    }
    return false;
  }
};

}  // namespace

std::vector<std::vector<int>> find_substructures(const Molecule& mol,
                                                 const Molecule& query,
                                                 std::size_t max_matches) {
  if (query.atom_count() == 0 || query.atom_count() > mol.atom_count())
    return {};
  Matcher matcher(mol, query, max_matches);
  matcher.extend(0);
  return std::move(matcher.matches);
}

bool has_substructure(const Molecule& mol, const Molecule& query) {
  return !find_substructures(mol, query, 1).empty();
}

bool has_substructure(const Molecule& mol, std::string_view query_smiles) {
  return has_substructure(mol, parse_smiles(query_smiles));
}

std::size_t count_substructures(const Molecule& mol, const Molecule& query,
                                std::size_t cap) {
  return find_substructures(mol, query, cap).size();
}

}  // namespace impeccable::chem
