#include "impeccable/chem/smiles.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <numeric>
#include <optional>
#include <vector>

namespace impeccable::chem {
namespace {

struct PendingRing {
  int atom = -1;
  int order = 0;       // 0 = unspecified
  bool aromatic_bond = false;
};

struct ParserState {
  std::string_view s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& msg) const { throw SmilesError(msg, pos); }
  bool done() const { return pos >= s.size(); }
  char peek() const { return done() ? '\0' : s[pos]; }
  char take() { return s[pos++]; }
};

/// Parses one bracket atom body (after '['), consuming up to and incl. ']'.
Atom parse_bracket_atom(ParserState& st) {
  Atom atom;
  // Optional isotope number — accepted and ignored.
  while (std::isdigit(static_cast<unsigned char>(st.peek()))) st.take();

  // Element symbol: one uppercase + optional lowercase, or aromatic lowercase.
  char c = st.peek();
  if (c == '\0') st.fail("unterminated bracket atom");
  if (std::islower(static_cast<unsigned char>(c))) {
    st.take();
    const std::string sym(1, static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    auto e = element_from_symbol(sym);
    if (!e || !can_be_aromatic(*e)) st.fail("bad aromatic element in bracket");
    atom.element = *e;
    atom.aromatic = true;
  } else if (std::isupper(static_cast<unsigned char>(c))) {
    std::string sym(1, st.take());
    if (std::islower(static_cast<unsigned char>(st.peek()))) {
      std::string two = sym + st.peek();
      if (element_from_symbol(two)) {
        sym = two;
        st.take();
      }
    }
    auto e = element_from_symbol(sym);
    if (!e) st.fail("unknown element '" + sym + "'");
    atom.element = *e;
  } else {
    st.fail("expected element symbol in bracket");
  }

  // Chirality markers — accepted and ignored.
  while (st.peek() == '@') st.take();
  if (st.peek() == 'T' || st.peek() == 'A' || st.peek() == 'S') {
    // @TH1/@AL1/@SP1-style tags: skip alnum run.
    while (std::isalnum(static_cast<unsigned char>(st.peek()))) st.take();
  }

  // Explicit hydrogen count.
  atom.explicit_h = 0;
  if (st.peek() == 'H') {
    st.take();
    atom.explicit_h = 1;
    if (std::isdigit(static_cast<unsigned char>(st.peek())))
      atom.explicit_h = st.take() - '0';
  }

  // Formal charge: +, -, ++, --, +2, -2 ...
  if (st.peek() == '+' || st.peek() == '-') {
    const int sign = st.take() == '+' ? 1 : -1;
    int magnitude = 1;
    if (std::isdigit(static_cast<unsigned char>(st.peek()))) {
      magnitude = st.take() - '0';
    } else {
      while (st.peek() == (sign > 0 ? '+' : '-')) {
        st.take();
        ++magnitude;
      }
    }
    atom.formal_charge = sign * magnitude;
  }

  if (st.peek() != ']') st.fail("expected ']'");
  st.take();
  return atom;
}

/// Parses an organic-subset atom (no brackets). Returns nullopt if the next
/// characters do not begin an atom.
std::optional<Atom> parse_plain_atom(ParserState& st) {
  const char c = st.peek();
  Atom atom;
  if (std::isupper(static_cast<unsigned char>(c))) {
    std::string sym(1, c);
    // Two-letter organic subset: Cl, Br.
    if ((c == 'C' || c == 'B') && st.pos + 1 < st.s.size()) {
      const char d = st.s[st.pos + 1];
      if ((c == 'C' && d == 'l') || (c == 'B' && d == 'r')) sym += d;
    }
    auto e = element_from_symbol(sym);
    if (!e) return std::nullopt;
    st.pos += sym.size();
    atom.element = *e;
    return atom;
  }
  if (std::islower(static_cast<unsigned char>(c))) {
    const std::string sym(1, static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    auto e = element_from_symbol(sym);
    if (!e || !can_be_aromatic(*e)) return std::nullopt;
    st.take();
    atom.element = *e;
    atom.aromatic = true;
    return atom;
  }
  return std::nullopt;
}

}  // namespace

Molecule parse_smiles(std::string_view smiles) {
  ParserState st{smiles};
  Molecule mol;

  std::vector<int> branch_stack;
  std::map<int, PendingRing> rings;  // ring-closure number -> first endpoint
  int prev_atom = -1;
  int pending_order = 0;        // 0 = default
  bool pending_aromatic = false;
  bool pending_bond_set = false;

  auto attach = [&](int new_atom) {
    if (prev_atom >= 0) {
      bool arom = pending_bond_set
                      ? pending_aromatic
                      : (mol.atom(prev_atom).aromatic && mol.atom(new_atom).aromatic);
      int order = pending_bond_set && !pending_aromatic && pending_order > 0
                      ? pending_order
                      : 1;
      mol.add_bond(prev_atom, new_atom, order, arom);
    }
    prev_atom = new_atom;
    pending_order = 0;
    pending_aromatic = false;
    pending_bond_set = false;
  };

  auto handle_ring = [&](int number) {
    auto it = rings.find(number);
    if (it == rings.end()) {
      rings[number] = PendingRing{prev_atom, pending_bond_set ? pending_order : 0,
                                  pending_bond_set && pending_aromatic};
    } else {
      const PendingRing open = it->second;
      rings.erase(it);
      if (open.atom == prev_atom) st.fail("ring closure to same atom");
      // Bond type may be given at either end; they must not conflict.
      int order = 1;
      bool arom = mol.atom(open.atom).aromatic && mol.atom(prev_atom).aromatic;
      if (open.order > 0) { order = open.order; arom = false; }
      if (pending_bond_set && pending_order > 0) { order = pending_order; arom = false; }
      if (open.aromatic_bond || (pending_bond_set && pending_aromatic)) {
        order = 1;
        arom = true;
      }
      mol.add_bond(open.atom, prev_atom, order, arom);
    }
    pending_order = 0;
    pending_aromatic = false;
    pending_bond_set = false;
  };

  while (!st.done()) {
    const char c = st.peek();
    if (c == '(') {
      st.take();
      if (prev_atom < 0) st.fail("branch before any atom");
      branch_stack.push_back(prev_atom);
    } else if (c == ')') {
      st.take();
      if (branch_stack.empty()) st.fail("unmatched ')'");
      prev_atom = branch_stack.back();
      branch_stack.pop_back();
    } else if (c == '-') {
      st.take();
      pending_order = 1; pending_aromatic = false; pending_bond_set = true;
    } else if (c == '=') {
      st.take();
      pending_order = 2; pending_aromatic = false; pending_bond_set = true;
    } else if (c == '#') {
      st.take();
      pending_order = 3; pending_aromatic = false; pending_bond_set = true;
    } else if (c == ':') {
      st.take();
      pending_order = 1; pending_aromatic = true; pending_bond_set = true;
    } else if (c == '/' || c == '\\') {
      st.take();  // stereo bond direction: treat as single
      pending_order = 1; pending_aromatic = false; pending_bond_set = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      st.take();
      if (prev_atom < 0) st.fail("ring closure before any atom");
      handle_ring(c - '0');
    } else if (c == '%') {
      st.take();
      if (st.done() || !std::isdigit(static_cast<unsigned char>(st.peek())))
        st.fail("expected two digits after '%'");
      int num = st.take() - '0';
      if (st.done() || !std::isdigit(static_cast<unsigned char>(st.peek())))
        st.fail("expected two digits after '%'");
      num = num * 10 + (st.take() - '0');
      if (prev_atom < 0) st.fail("ring closure before any atom");
      handle_ring(num);
    } else if (c == '[') {
      st.take();
      const int idx = mol.add_atom(parse_bracket_atom(st));
      attach(idx);
    } else if (c == '.') {
      st.fail("disconnected fragments are not supported");
    } else {
      auto atom = parse_plain_atom(st);
      if (!atom) st.fail(std::string("unexpected character '") + c + "'");
      const int idx = mol.add_atom(*atom);
      attach(idx);
    }
  }

  if (!branch_stack.empty()) st.fail("unmatched '('");
  if (!rings.empty()) st.fail("unclosed ring bond");
  if (mol.atom_count() == 0) st.fail("empty SMILES");

  mol.finalize();
  return mol;
}

namespace {

/// Canonical atom ranks via iterative refinement of invariants.
std::vector<int> canonical_ranks(const Molecule& mol) {
  const int n = mol.atom_count();
  // Initial invariant: (element, aromatic, degree, charge, H count).
  std::vector<std::uint64_t> inv(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Atom& a = mol.atom(i);
    inv[static_cast<std::size_t>(i)] =
        (static_cast<std::uint64_t>(a.element) << 32) |
        (static_cast<std::uint64_t>(a.aromatic) << 31) |
        (static_cast<std::uint64_t>(mol.degree(i) & 0xf) << 24) |
        (static_cast<std::uint64_t>((a.formal_charge + 8) & 0xf) << 20) |
        (static_cast<std::uint64_t>(mol.hydrogen_count(i) & 0xf) << 16);
  }

  auto to_ranks = [n](const std::vector<std::uint64_t>& keys) {
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
    });
    std::vector<int> rank(static_cast<std::size_t>(n));
    int r = 0;
    for (int k = 0; k < n; ++k) {
      if (k > 0 && keys[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] !=
                       keys[static_cast<std::size_t>(order[static_cast<std::size_t>(k - 1)])])
        ++r;
      rank[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = r;
    }
    return rank;
  };

  std::vector<int> rank = to_ranks(inv);
  for (int iter = 0; iter < n; ++iter) {
    // Refine: new key = (old rank, sorted multiset of neighbor ranks).
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<int> nb;
      for (int a : mol.neighbors(i)) nb.push_back(rank[static_cast<std::size_t>(a)]);
      std::sort(nb.begin(), nb.end());
      std::uint64_t h = static_cast<std::uint64_t>(rank[static_cast<std::size_t>(i)]) + 1469598103934665603ULL;
      for (int r : nb) {
        h ^= static_cast<std::uint64_t>(r) + 0x9e3779b9;
        h *= 1099511628211ULL;
      }
      keys[static_cast<std::size_t>(i)] = h;
    }
    std::vector<int> next = to_ranks(keys);
    // Preserve old ordering as the primary key to keep refinement monotone.
    std::vector<std::uint64_t> combined(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      combined[static_cast<std::size_t>(i)] =
          (static_cast<std::uint64_t>(rank[static_cast<std::size_t>(i)]) << 32) |
          static_cast<std::uint64_t>(next[static_cast<std::size_t>(i)]);
    next = to_ranks(combined);
    if (next == rank) break;
    rank = std::move(next);
  }
  return rank;
}

struct Writer {
  const Molecule& mol;
  const std::vector<int>& rank;
  std::string out;
  std::vector<bool> visited;
  std::vector<std::vector<std::pair<int, int>>> ring_digits;  // atom -> (digit, order)
  int next_ring_digit = 1;

  explicit Writer(const Molecule& m, const std::vector<int>& r)
      : mol(m), rank(r),
        visited(static_cast<std::size_t>(m.atom_count()), false),
        ring_digits(static_cast<std::size_t>(m.atom_count())) {}

  void write_atom(int i) {
    const Atom& a = mol.atom(i);
    std::string sym(symbol(a.element));
    if (a.aromatic)
      std::transform(sym.begin(), sym.end(), sym.begin(),
                     [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });

    const bool organic_subset =
        a.formal_charge == 0 && a.explicit_h < 0 &&
        a.element != Element::B;
    // Aromatic N with an H must be written [nH] to round-trip correctly.
    const bool needs_h_marker =
        a.aromatic && (a.element == Element::N || a.element == Element::P) &&
        mol.hydrogen_count(i) > 0;

    if (organic_subset && !needs_h_marker) {
      out += sym;
      return;
    }
    out += '[';
    out += sym;
    const int h = mol.hydrogen_count(i);
    if (h > 0) {
      out += 'H';
      if (h > 1) out += std::to_string(h);
    }
    if (a.formal_charge > 0) {
      out += '+';
      if (a.formal_charge > 1) out += std::to_string(a.formal_charge);
    } else if (a.formal_charge < 0) {
      out += '-';
      if (a.formal_charge < -1) out += std::to_string(-a.formal_charge);
    }
    out += ']';
  }

  void write_bond_symbol(const Bond& b, int from, int to) {
    if (b.aromatic) return;  // implicit between aromatic atoms
    switch (b.order) {
      case 2: out += '='; break;
      case 3: out += '#'; break;
      default:
        // A single bond between two aromatic atoms (biphenyl-style link)
        // must be written explicitly or it would read back as aromatic.
        if (mol.atom(from).aromatic && mol.atom(to).aromatic) out += '-';
        break;
    }
  }

  void dfs(int atom, int from_bond) {
    visited[static_cast<std::size_t>(atom)] = true;
    write_atom(atom);
    for (auto [digit, order] : ring_digits[static_cast<std::size_t>(atom)]) {
      if (order == 2) out += '=';
      else if (order == 3) out += '#';
      if (digit >= 10) { out += '%'; out += std::to_string(digit); }
      else out += static_cast<char>('0' + digit);
    }

    // Deterministic child order: canonical rank.
    std::vector<int> edges;
    for (int bi : mol.bonds_of(atom))
      if (bi != from_bond) edges.push_back(bi);
    std::sort(edges.begin(), edges.end(), [&](int x, int y) {
      return rank[static_cast<std::size_t>(mol.neighbor(atom, x))] <
             rank[static_cast<std::size_t>(mol.neighbor(atom, y))];
    });

    // Tree edges to recurse into. Ring-closure digits were assigned by the
    // pre-pass in write_smiles(); back edges (target already visited at
    // exploration time) are skipped here — their digits are emitted with the
    // endpoint atoms above.
    std::vector<int> tree_edges;
    for (int bi : edges)
      if (!visited[static_cast<std::size_t>(mol.neighbor(atom, bi))])
        tree_edges.push_back(bi);

    // A sibling subtree may claim a prospective child first; re-check at
    // exploration time so the traversal matches the pre-pass exactly.
    for (std::size_t k = 0; k < tree_edges.size(); ++k) {
      const int bi = tree_edges[k];
      const int to = mol.neighbor(atom, bi);
      if (visited[static_cast<std::size_t>(to)]) continue;
      const bool branch = k + 1 < tree_edges.size();
      if (branch) out += '(';
      write_bond_symbol(mol.bond(bi), atom, to);
      dfs(to, bi);
      if (branch) out += ')';
    }
  }
};

}  // namespace

std::string write_smiles(const Molecule& mol) {
  if (!mol.finalized())
    throw std::invalid_argument("write_smiles: molecule not finalized");
  if (mol.atom_count() == 0) return "";
  if (!mol.connected())
    throw std::invalid_argument("write_smiles: disconnected molecule");

  const std::vector<int> rank = canonical_ranks(mol);

  // Pre-pass: find the spanning tree from the canonical root and assign ring
  // closure digits to the back edges, recording them at both endpoints.
  int root = 0;
  for (int i = 1; i < mol.atom_count(); ++i)
    if (rank[static_cast<std::size_t>(i)] < rank[static_cast<std::size_t>(root)]) root = i;

  Writer w(mol, rank);

  // Deterministic DFS mirroring Writer::dfs to discover back edges.
  {
    std::vector<bool> seen(static_cast<std::size_t>(mol.atom_count()), false);
    std::vector<bool> bond_used(static_cast<std::size_t>(mol.bond_count()), false);
    // Explicit stack of (atom, sorted edges, next index) replicating the
    // recursive traversal in Writer::dfs.
    std::vector<std::tuple<int, std::vector<int>, std::size_t>> stack;
    auto sorted_edges = [&](int atom, int from_bond) {
      std::vector<int> es;
      for (int bi : mol.bonds_of(atom))
        if (bi != from_bond) es.push_back(bi);
      std::sort(es.begin(), es.end(), [&](int x, int y) {
        return rank[static_cast<std::size_t>(mol.neighbor(atom, x))] <
               rank[static_cast<std::size_t>(mol.neighbor(atom, y))];
      });
      return es;
    };
    seen[static_cast<std::size_t>(root)] = true;
    stack.emplace_back(root, sorted_edges(root, -1), 0);
    while (!stack.empty()) {
      auto& [atom, edges, next] = stack.back();
      if (next >= edges.size()) {
        stack.pop_back();
        continue;
      }
      const int bi = edges[next++];
      if (bond_used[static_cast<std::size_t>(bi)]) continue;
      const int to = mol.neighbor(atom, bi);
      if (seen[static_cast<std::size_t>(to)]) {
        // Back edge -> ring closure digit at both endpoints.
        bond_used[static_cast<std::size_t>(bi)] = true;
        const int digit = w.next_ring_digit++;
        const Bond& b = mol.bond(bi);
        const int order_symbol = b.aromatic ? 0 : (b.order >= 2 ? b.order : 0);
        // Emit the bond-order symbol only at the opening end to avoid
        // duplicated '=' on both digits.
        w.ring_digits[static_cast<std::size_t>(atom)].emplace_back(digit, order_symbol);
        w.ring_digits[static_cast<std::size_t>(to)].emplace_back(digit, 0);
      } else {
        bond_used[static_cast<std::size_t>(bi)] = true;
        seen[static_cast<std::size_t>(to)] = true;
        stack.emplace_back(to, sorted_edges(to, bi), 0);
      }
    }
  }

  w.dfs(root, -1);
  return w.out;
}

std::string canonical_smiles(std::string_view smiles) {
  return write_smiles(parse_smiles(smiles));
}

}  // namespace impeccable::chem
