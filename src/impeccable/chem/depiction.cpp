#include "impeccable/chem/depiction.hpp"

#include <algorithm>
#include <cmath>

#include "impeccable/chem/layout.hpp"

namespace impeccable::chem {
namespace {

int atom_channel(const Atom& a) {
  switch (a.element) {
    case Element::C:
    case Element::B:
      return 1;
    case Element::N:
    case Element::O:
      return 2;
    default:
      return 3;  // halogens, S, P
  }
}

void splat(Image& img, int channel, double px, double py, double sigma,
           double weight) {
  const int r = static_cast<int>(std::ceil(3 * sigma));
  const int cx = static_cast<int>(std::lround(px));
  const int cy = static_cast<int>(std::lround(py));
  for (int y = std::max(0, cy - r); y <= std::min(img.height - 1, cy + r); ++y) {
    for (int x = std::max(0, cx - r); x <= std::min(img.width - 1, cx + r); ++x) {
      const double dx = x - px;
      const double dy = y - py;
      const double v = weight * std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma));
      float& p = img.at(channel, y, x);
      p = std::min(1.0f, p + static_cast<float>(v));
    }
  }
}

void draw_segment(Image& img, int channel, double x0, double y0, double x1,
                  double y1, double weight) {
  const double len = std::hypot(x1 - x0, y1 - y0);
  const int steps = std::max(2, static_cast<int>(len * 2));
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    splat(img, channel, x0 + t * (x1 - x0), y0 + t * (y1 - y0), 0.55, weight);
  }
}

}  // namespace

Image depict(const Molecule& mol, const DepictionOptions& opts) {
  Image img;
  img.channels = opts.channels;
  img.height = opts.height;
  img.width = opts.width;
  img.data.assign(
      static_cast<std::size_t>(opts.channels) * opts.height * opts.width, 0.0f);

  const auto layout = layout_2d(mol, opts.layout_seed, opts.layout_iterations);

  // Map unit-RMS layout into pixel coordinates with a margin; the layout is
  // normalized so a fixed zoom keeps typical drug-likes inside the frame.
  const double margin = 3.0;
  const double sx = (opts.width - 2 * margin) / 5.0;
  const double sy = (opts.height - 2 * margin) / 5.0;
  auto to_px = [&](const Point2& p) {
    return std::pair<double, double>{
        opts.width / 2.0 + std::clamp(p.x, -2.5, 2.5) * sx,
        opts.height / 2.0 + std::clamp(p.y, -2.5, 2.5) * sy};
  };

  for (int bi = 0; bi < mol.bond_count(); ++bi) {
    const Bond& b = mol.bond(bi);
    const auto [x0, y0] = to_px(layout[static_cast<std::size_t>(b.a)]);
    const auto [x1, y1] = to_px(layout[static_cast<std::size_t>(b.b)]);
    const double w = b.aromatic ? 0.35 : 0.25 * b.order;
    draw_segment(img, 0, x0, y0, x1, y1, w);
  }

  for (int i = 0; i < mol.atom_count(); ++i) {
    const Atom& a = mol.atom(i);
    const auto [px, py] = to_px(layout[static_cast<std::size_t>(i)]);
    const int ch = std::min(atom_channel(a), opts.channels - 1);
    double w = 0.8;
    if (a.aromatic) w = 1.0;
    if (a.formal_charge != 0) w = 1.0;
    splat(img, ch, px, py, opts.atom_sigma, w);
  }
  return img;
}

}  // namespace impeccable::chem
