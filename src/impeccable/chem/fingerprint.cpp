#include "impeccable/chem/fingerprint.hpp"

#include <algorithm>
#include <bit>

namespace impeccable::chem {
namespace {

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t atom_invariant(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  std::uint64_t h = 1469598103934665603ULL;
  h = hash_mix(h, static_cast<std::uint64_t>(a.element));
  h = hash_mix(h, static_cast<std::uint64_t>(a.aromatic));
  h = hash_mix(h, static_cast<std::uint64_t>(mol.degree(i)));
  h = hash_mix(h, static_cast<std::uint64_t>(mol.hydrogen_count(i)));
  h = hash_mix(h, static_cast<std::uint64_t>(a.formal_charge + 16));
  h = hash_mix(h, static_cast<std::uint64_t>(mol.atom_in_ring(i)));
  return h;
}

std::uint64_t bond_invariant(const Bond& b) {
  return b.aromatic ? 4u : static_cast<std::uint64_t>(b.order);
}

}  // namespace

BitSet::BitSet(int bits) : bits_(bits), words_(static_cast<std::size_t>((bits + 63) / 64), 0) {}

int BitSet::popcount() const {
  int n = 0;
  for (auto w : words_) n += std::popcount(w);
  return n;
}

int BitSet::intersection_count(const BitSet& a, const BitSet& b) {
  int n = 0;
  const std::size_t k = std::min(a.words_.size(), b.words_.size());
  for (std::size_t i = 0; i < k; ++i) n += std::popcount(a.words_[i] & b.words_[i]);
  return n;
}

int BitSet::union_count(const BitSet& a, const BitSet& b) {
  int n = 0;
  const std::size_t k = std::max(a.words_.size(), b.words_.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
    const std::uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
    n += std::popcount(wa | wb);
  }
  return n;
}

double tanimoto(const BitSet& a, const BitSet& b) {
  const int u = BitSet::union_count(a, b);
  if (u == 0) return 1.0;
  return static_cast<double>(BitSet::intersection_count(a, b)) / u;
}

BitSet morgan_fingerprint(const Molecule& mol, int radius, int bits) {
  BitSet fp(bits);
  const int n = mol.atom_count();
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = atom_invariant(mol, i);

  for (int r = 0; r <= radius; ++r) {
    for (int i = 0; i < n; ++i)
      fp.set(static_cast<int>(ids[static_cast<std::size_t>(i)] % static_cast<std::uint64_t>(bits)));
    if (r == radius) break;
    // Next-iteration identifiers: hash of own id + sorted (bond, neighbor id).
    std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> env;
      for (int bi : mol.bonds_of(i)) {
        const int nb = mol.neighbor(i, bi);
        env.emplace_back(bond_invariant(mol.bond(bi)), ids[static_cast<std::size_t>(nb)]);
      }
      std::sort(env.begin(), env.end());
      std::uint64_t h = hash_mix(0xcbf29ce484222325ULL, ids[static_cast<std::size_t>(i)]);
      h = hash_mix(h, static_cast<std::uint64_t>(r + 1));
      for (const auto& [bo, nid] : env) {
        h = hash_mix(h, bo);
        h = hash_mix(h, nid);
      }
      next[static_cast<std::size_t>(i)] = h;
    }
    ids = std::move(next);
  }
  return fp;
}

namespace {

void path_dfs(const Molecule& mol, int atom, int max_length, BitSet& fp,
              std::vector<int>& atom_path, std::vector<std::uint64_t>& hash_path,
              std::vector<bool>& on_path) {
  const std::uint64_t here =
      hash_mix(hash_path.empty() ? 0x100001b3ULL : hash_path.back(),
               atom_invariant(mol, atom));
  hash_path.push_back(here);
  atom_path.push_back(atom);
  on_path[static_cast<std::size_t>(atom)] = true;

  fp.set(static_cast<int>(here % static_cast<std::uint64_t>(fp.size())));

  if (static_cast<int>(atom_path.size()) <= max_length) {
    for (int bi : mol.bonds_of(atom)) {
      const int nb = mol.neighbor(atom, bi);
      if (on_path[static_cast<std::size_t>(nb)]) continue;
      hash_path.back() = hash_mix(here, bond_invariant(mol.bond(bi)));
      path_dfs(mol, nb, max_length, fp, atom_path, hash_path, on_path);
      hash_path.back() = here;
    }
  }

  on_path[static_cast<std::size_t>(atom)] = false;
  atom_path.pop_back();
  hash_path.pop_back();
}

}  // namespace

BitSet path_fingerprint(const Molecule& mol, int max_length, int bits) {
  BitSet fp(bits);
  std::vector<int> atom_path;
  std::vector<std::uint64_t> hash_path;
  std::vector<bool> on_path(static_cast<std::size_t>(mol.atom_count()), false);
  for (int i = 0; i < mol.atom_count(); ++i)
    path_dfs(mol, i, max_length, fp, atom_path, hash_path, on_path);
  return fp;
}

}  // namespace impeccable::chem
