#pragma once
// Binary molecular fingerprints and Tanimoto similarity.
//
// Used by the diversity selection in S3-CG staging ("picking out the
// structurally most diverse compounds", Sec. 7.1.2) and by the library
// overlap analysis (OZD vs ORD, Sec. 7.1).

#include <cstdint>
#include <vector>

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

/// Fixed-size bit vector with population-count helpers.
class BitSet {
 public:
  explicit BitSet(int bits = 1024);

  int size() const { return bits_; }
  void set(int i) { words_[static_cast<std::size_t>(i) >> 6] |= 1ULL << (i & 63); }
  bool test(int i) const {
    return (words_[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1ULL;
  }
  int popcount() const;
  /// Packed 64-bit words (bit i lives in words()[i/64] at position i%64).
  /// Exposed for content hashing (serve:: cache keys) and bulk set ops.
  const std::vector<std::uint64_t>& words() const { return words_; }
  /// |a & b|
  static int intersection_count(const BitSet& a, const BitSet& b);
  /// |a | b|
  static int union_count(const BitSet& a, const BitSet& b);

 private:
  int bits_;
  std::vector<std::uint64_t> words_;
};

/// Tanimoto similarity |a&b| / |a|b|; 1.0 for two empty fingerprints.
double tanimoto(const BitSet& a, const BitSet& b);

/// Morgan (ECFP-style) circular fingerprint: iteratively hashed atom
/// environments up to `radius` bond hops, folded into `bits` bits.
BitSet morgan_fingerprint(const Molecule& mol, int radius = 2, int bits = 1024);

/// Daylight-style linear path fingerprint: all simple paths up to
/// `max_length` bonds, hashed and folded.
BitSet path_fingerprint(const Molecule& mol, int max_length = 5, int bits = 1024);

}  // namespace impeccable::chem
