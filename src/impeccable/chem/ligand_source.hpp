#pragma once
// LigandSource — polymorphic, index-addressed access to a screening
// library. The campaign engine used to materialize the whole
// CompoundLibrary plus every parsed Molecule and depiction Image in RAM,
// which caps real-code-path runs at ~1e6 ligands; the paper's nCov
// repository is 4.2B (Sec. 7.1). A LigandSource hides where ligands live:
//
//   InMemorySource  today's behavior — everything parsed and depicted up
//                   front, bitwise-compatible with the historical path.
//   MmapSource      backed by an on-disk LigandStore; SMILES are read from
//                   the mapping and parsed/protonated/depicted lazily, so
//                   resident memory is bounded by the consumer's window,
//                   not the library.
//
// Both sources run the identical featurization pipeline
// (parse_smiles -> protonate_for_ph -> depict with the same options), so a
// campaign's science_fingerprint() is invariant to the backend choice —
// pinned by tests/library_store_test.cpp.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/library.hpp"
#include "impeccable/chem/molecule.hpp"
#include "impeccable/chem/store.hpp"

namespace impeccable::chem {

/// Featurization knobs shared by every ligand of a source. Owned by the
/// source so lazy and eager backends cannot drift apart.
struct SourceOptions {
  /// Protonation pH for docking prep; <= 0 skips preparation.
  double protonate_ph = 0.0;
  DepictionOptions depiction;
};

/// Read-only ligand access by library ordinal. All methods are const and
/// safe to call concurrently.
class LigandSource {
 public:
  virtual ~LigandSource() = default;

  virtual std::size_t size() const = 0;
  virtual std::string id(std::size_t i) const = 0;
  virtual std::string smiles(std::size_t i) const = 0;
  /// Parsed (and, per options, protonated) molecule.
  virtual Molecule molecule(std::size_t i) const = 0;
  /// Depiction of molecule(i) with the source's DepictionOptions.
  virtual Image image(std::size_t i) const = 0;

  /// Render depictions for ligands [begin, end) into `out` (resized).
  virtual void images(std::size_t begin, std::size_t end,
                      std::vector<Image>& out) const;

  /// Hint that [begin, end) will not be re-read soon; streaming consumers
  /// call this after each window so lazy backends can drop cached pages.
  virtual void release(std::size_t begin, std::size_t end) const;

  const SourceOptions& options() const { return opts_; }

 protected:
  explicit LigandSource(SourceOptions opts) : opts_(opts) {}
  /// The one featurization pipeline both backends share.
  Molecule prepare(std::string_view smiles) const;

  SourceOptions opts_;
};

/// Fully materialized source: parses and depicts every entry at
/// construction (the historical CampaignState::init behavior).
class InMemorySource final : public LigandSource {
 public:
  explicit InMemorySource(CompoundLibrary library, SourceOptions opts = {});

  std::size_t size() const override { return library_.size(); }
  std::string id(std::size_t i) const override;
  std::string smiles(std::size_t i) const override;
  Molecule molecule(std::size_t i) const override;
  Image image(std::size_t i) const override;

  const CompoundLibrary& library() const { return library_; }

 private:
  CompoundLibrary library_;
  std::vector<Molecule> mols_;
  std::vector<Image> images_;
};

/// Out-of-core source over a memory-mapped LigandStore: SMILES served as
/// views into the mapping, molecules and depictions computed per call.
class MmapSource final : public LigandSource {
 public:
  explicit MmapSource(LigandStore store, SourceOptions opts = {});

  std::size_t size() const override { return store_.size(); }
  std::string id(std::size_t i) const override;
  std::string smiles(std::size_t i) const override;
  Molecule molecule(std::size_t i) const override;
  Image image(std::size_t i) const override;
  void release(std::size_t begin, std::size_t end) const override;

  /// On-disk address of ligand i (shard ordinal + payload offset).
  LigandRef locate(std::size_t i) const { return store_.locate(i); }
  const LigandStore& store() const { return store_; }

 private:
  LigandStore store_;
};

/// Generate library compounds straight into an on-disk store, one at a time
/// (never materializing the library), with ids matching generate_library's
/// "<name>-NNNNNN". Returns the writer's final stats. Dedup is off: the
/// on-disk ordinal must equal the generator index so MmapSource over the
/// spill is entry-for-entry identical to InMemorySource over
/// generate_library(name, count, seed).
StoreStats spill_generated_library(const std::string& name, std::size_t count,
                                   std::uint64_t seed,
                                   const std::string& directory,
                                   const GeneratorOptions& opts = {},
                                   std::size_t records_per_shard = 100000);

}  // namespace impeccable::chem
