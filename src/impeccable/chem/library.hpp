#pragma once
// Synthetic compound library generation.
//
// Substitutes for the paper's ZINC/MCULE/Enamine/DrugBank subsets (Sec. 7.1):
// a seeded fragment-assembly generator that emits valid, connected, drug-like
// molecules as canonical SMILES. Libraries of any size are reproducible from
// (seed, index) alone — compound i of a library is always the same molecule —
// which lets the scale benches "screen" millions of ligands without storing
// them.

#include <cstdint>
#include <string>
#include <vector>

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

struct CompoundEntry {
  std::string id;      ///< e.g. "OZD-000042"
  std::string smiles;  ///< canonical SMILES
};

struct CompoundLibrary {
  std::string name;
  std::vector<CompoundEntry> entries;

  std::size_t size() const { return entries.size(); }
};

struct GeneratorOptions {
  int min_heavy_atoms = 10;
  int max_heavy_atoms = 40;
  int max_lipinski_violations = 1;
  int max_attempts_per_compound = 64;
};

/// Deterministically generate compound `index` of the library identified by
/// `seed` (same (seed, index) -> same molecule).
Molecule generate_compound(std::uint64_t seed, std::uint64_t index,
                           const GeneratorOptions& opts = {});

/// Generate a whole library with ids "<name>-NNNNNN".
CompoundLibrary generate_library(const std::string& name, std::size_t count,
                                 std::uint64_t seed,
                                 const GeneratorOptions& opts = {});

/// Generate two libraries sharing approximately `overlap_fraction` of their
/// compounds (the paper's OZD/ORD pair overlaps by ~1.5M of 6.5M, Sec. 7.1).
/// The shared compounds come from a third seed so neither library is a
/// prefix of the other.
std::pair<CompoundLibrary, CompoundLibrary> generate_overlapping_libraries(
    const std::string& name_a, const std::string& name_b, std::size_t count,
    double overlap_fraction, std::uint64_t seed,
    const GeneratorOptions& opts = {});

}  // namespace impeccable::chem
