#include "impeccable/chem/protonation.hpp"

namespace impeccable::chem {

namespace {

/// Is atom i the hydroxyl oxygen of a carboxylic acid? (O with H, single-
/// bonded to a carbon that also carries a double-bonded O.)
bool is_carboxyl_hydroxyl(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  if (a.element != Element::O || a.aromatic || a.formal_charge != 0) return false;
  if (mol.hydrogen_count(i) < 1 || mol.degree(i) != 1) return false;
  const int carbon = mol.neighbors(i).front();
  if (mol.atom(carbon).element != Element::C) return false;
  for (int bi : mol.bonds_of(carbon)) {
    const int nb = mol.neighbor(carbon, bi);
    if (nb == i) continue;
    if (mol.atom(nb).element == Element::O && mol.bond(bi).order == 2)
      return true;
  }
  return false;
}

/// Is atom i a basic aliphatic amine nitrogen? (non-aromatic N with >= 1 H,
/// not adjacent to a carbonyl carbon — amides are not basic — and not bonded
/// to an aromatic atom — anilines are weak bases.)
bool is_basic_amine(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  if (a.element != Element::N || a.aromatic || a.formal_charge != 0) return false;
  if (mol.hydrogen_count(i) < 1) return false;
  for (int bi : mol.bonds_of(i)) {
    if (mol.bond(bi).order != 1) return false;  // nitriles, imines
    const int nb = mol.neighbor(i, bi);
    if (mol.atom(nb).aromatic) return false;  // aniline-like
    if (mol.atom(nb).element == Element::C) {
      for (int bj : mol.bonds_of(nb)) {
        const int nn = mol.neighbor(nb, bj);
        if (nn != i && mol.atom(nn).element == Element::O &&
            mol.bond(bj).order == 2)
          return false;  // amide
      }
    }
  }
  return true;
}

}  // namespace

std::pair<int, int> ionizable_sites(const Molecule& mol) {
  int acids = 0, bases = 0;
  for (int i = 0; i < mol.atom_count(); ++i) {
    if (is_carboxyl_hydroxyl(mol, i)) ++acids;
    if (is_basic_amine(mol, i)) ++bases;
  }
  return {acids, bases};
}

Molecule protonate_for_ph(const Molecule& mol, double ph,
                          const ProtonationRules& rules) {
  Molecule out;
  for (int i = 0; i < mol.atom_count(); ++i) {
    Atom a = mol.atom(i);
    if (ph > rules.carboxyl_pka && is_carboxyl_hydroxyl(mol, i)) {
      a.formal_charge = -1;
      a.explicit_h = 0;
    } else if (ph < rules.amine_pka && is_basic_amine(mol, i)) {
      a.formal_charge = 1;
      a.explicit_h = mol.hydrogen_count(i) + 1;
    }
    out.add_atom(a);
  }
  for (int b = 0; b < mol.bond_count(); ++b) {
    const Bond& bond = mol.bond(b);
    out.add_bond(bond.a, bond.b, bond.order, bond.aromatic);
  }
  out.finalize();
  return out;
}

}  // namespace impeccable::chem
