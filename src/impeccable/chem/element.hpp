#pragma once
// Chemical elements supported by the SMILES subset used throughout the
// pipeline, with the per-element data the substrates need: masses for MW,
// van der Waals radii and well depths for docking/MD nonbonded terms, default
// valences for implicit-hydrogen assignment, and coarse hydrophobicity /
// H-bond capabilities for the scoring function and descriptors.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace impeccable::chem {

enum class Element : std::uint8_t {
  H, B, C, N, O, F, P, S, Cl, Br, I,
  Count,
};

inline constexpr int kElementCount = static_cast<int>(Element::Count);

struct ElementInfo {
  std::string_view symbol;
  double mass;           ///< atomic mass, g/mol
  double vdw_radius;     ///< Å
  double well_depth;     ///< LJ epsilon, kcal/mol (AutoDock-like magnitudes)
  int default_valence;   ///< standard valence for implicit-H filling
  bool hbond_donor_capable;    ///< can carry a donatable H (N, O, S)
  bool hbond_acceptor_capable; ///< lone-pair acceptor (N, O, F)
  double hydrophobicity; ///< coarse scale in [-1, 1]; C positive, polar negative
  double electronegativity;  ///< Pauling
};

inline constexpr std::array<ElementInfo, kElementCount> kElements{{
    {"H", 1.008, 1.20, 0.020, 1, false, false, 0.0, 2.20},
    {"B", 10.81, 1.92, 0.034, 3, false, false, 0.2, 2.04},
    {"C", 12.011, 1.70, 0.150, 4, false, false, 0.7, 2.55},
    {"N", 14.007, 1.55, 0.160, 3, true, true, -0.6, 3.04},
    {"O", 15.999, 1.52, 0.200, 2, true, true, -0.8, 3.44},
    {"F", 18.998, 1.47, 0.080, 1, false, true, 0.1, 3.98},
    {"P", 30.974, 1.80, 0.200, 3, false, false, -0.2, 2.19},
    {"S", 32.06, 1.80, 0.200, 2, true, false, 0.3, 2.58},
    {"Cl", 35.45, 1.75, 0.276, 1, false, false, 0.5, 3.16},
    {"Br", 79.904, 1.85, 0.389, 1, false, false, 0.6, 2.96},
    {"I", 126.904, 1.98, 0.550, 1, false, false, 0.7, 2.66},
}};

inline constexpr const ElementInfo& info(Element e) {
  return kElements[static_cast<std::size_t>(e)];
}

inline constexpr std::string_view symbol(Element e) { return info(e).symbol; }

/// Parse an element symbol ("C", "Cl", ...). Case-sensitive, standard casing.
std::optional<Element> element_from_symbol(std::string_view s);

/// True if the element participates in aromatic SMILES (b, c, n, o, p, s).
inline constexpr bool can_be_aromatic(Element e) {
  switch (e) {
    case Element::B:
    case Element::C:
    case Element::N:
    case Element::O:
    case Element::P:
    case Element::S:
      return true;
    default:
      return false;
  }
}

inline std::optional<Element> element_from_symbol(std::string_view s) {
  for (int i = 0; i < kElementCount; ++i) {
    if (kElements[static_cast<std::size_t>(i)].symbol == s)
      return static_cast<Element>(i);
  }
  return std::nullopt;
}

}  // namespace impeccable::chem
