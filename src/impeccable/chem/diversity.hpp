#pragma once
// Diversity selection over fingerprints.
//
// Sec. 7.1.2: "we chose 10,000 compounds for each target by picking out the
// structurally most diverse compounds" — implemented here as the classic
// MaxMin (sphere-exclusion-free) picker, plus Butina clustering used by the
// analysis benches.

#include <cstdint>
#include <vector>

#include "impeccable/chem/fingerprint.hpp"

namespace impeccable::chem {

/// MaxMin diversity pick: greedily selects `count` items maximizing the
/// minimum Tanimoto *distance* (1 - similarity) to the already-picked set.
/// The first pick is seeded for reproducibility. O(count * n) similarity
/// evaluations with the standard "best distance so far" cache.
std::vector<std::size_t> maxmin_pick(const std::vector<BitSet>& fps,
                                     std::size_t count, std::uint64_t seed);

/// Butina (Taylor) clustering: leader clustering at Tanimoto similarity
/// cutoff; returns cluster labels (centroid-first assignment).
std::vector<int> butina_cluster(const std::vector<BitSet>& fps, double cutoff);

}  // namespace impeccable::chem
