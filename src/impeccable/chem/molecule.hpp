#pragma once
// Molecular graph: the single in-memory representation every stage consumes.
// ML1 rasterizes it into an image, S1 builds a torsional-tree ligand from its
// 3D embedding, S2/S3 derive coarse-grained beads from its heavy atoms.

#include <cstdint>
#include <string>
#include <vector>

#include "impeccable/chem/element.hpp"

namespace impeccable::chem {

struct Atom {
  Element element = Element::C;
  int formal_charge = 0;
  bool aromatic = false;
  /// Hydrogen count fixed by a bracket atom expression; -1 = derive from
  /// default valence (the usual organic-subset rule).
  int explicit_h = -1;
};

struct Bond {
  int a = -1;
  int b = -1;
  /// Integer bond order 1..3; aromatic bonds carry order 1 plus the flag.
  int order = 1;
  bool aromatic = false;
};

/// Undirected molecular graph with typed atoms and bonds.
/// Mutation happens during construction (parser / generator); afterwards the
/// graph is treated as immutable and derived data (ring flags, implicit H)
/// is computed once via finalize().
class Molecule {
 public:
  int add_atom(Atom a);
  /// Adds a bond between existing atoms; rejects self-loops and duplicates.
  int add_bond(int a, int b, int order = 1, bool aromatic = false);

  /// Computes ring membership and implicit hydrogen counts. Must be called
  /// after construction and before any query below that depends on them.
  void finalize();
  bool finalized() const { return finalized_; }

  int atom_count() const { return static_cast<int>(atoms_.size()); }
  int bond_count() const { return static_cast<int>(bonds_.size()); }
  const Atom& atom(int i) const { return atoms_[static_cast<std::size_t>(i)]; }
  const Bond& bond(int i) const { return bonds_[static_cast<std::size_t>(i)]; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Indices of bonds incident to atom i.
  const std::vector<int>& bonds_of(int i) const {
    return adjacency_[static_cast<std::size_t>(i)];
  }
  /// Heavy-atom degree of atom i.
  int degree(int i) const { return static_cast<int>(bonds_of(i).size()); }
  /// The atom at the other end of bond `bond_idx` from atom i.
  int neighbor(int i, int bond_idx) const;
  /// Neighbor atom indices of atom i.
  std::vector<int> neighbors(int i) const;
  /// Bond between atoms a and b, or -1.
  int bond_between(int a, int b) const;

  // --- derived data (valid after finalize()) ---
  bool atom_in_ring(int i) const { return atom_in_ring_[static_cast<std::size_t>(i)]; }
  bool bond_in_ring(int i) const { return bond_in_ring_[static_cast<std::size_t>(i)]; }
  /// Implicit+explicit hydrogens attached to heavy atom i.
  int hydrogen_count(int i) const { return h_count_[static_cast<std::size_t>(i)]; }
  /// Number of independent rings (cyclomatic number).
  int ring_count() const { return ring_count_; }
  /// True if the whole graph is a single connected component.
  bool connected() const;

  /// Sum of bond orders at atom i, counting aromatic bonds as 1.5.
  double valence_used(int i) const;

  /// Molecular formula like "C9H8O4" (Hill order: C, H, then alphabetical).
  std::string formula() const;

 private:
  void compute_rings();
  void compute_hydrogens();

  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<bool> atom_in_ring_;
  std::vector<bool> bond_in_ring_;
  std::vector<int> h_count_;
  int ring_count_ = 0;
  bool finalized_ = false;
};

}  // namespace impeccable::chem
