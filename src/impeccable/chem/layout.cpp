#include "impeccable/chem/layout.hpp"

#include <algorithm>
#include <cmath>

#include "impeccable/common/rng.hpp"

namespace impeccable::chem {

double ideal_bond_length(const Molecule& mol, int bond_index) {
  const Bond& b = mol.bond(bond_index);
  // Covalent-ish radii derived by scaling vdW radii; shortened for multiple
  // and aromatic bonds.
  const double ra = info(mol.atom(b.a).element).vdw_radius * 0.45;
  const double rb = info(mol.atom(b.b).element).vdw_radius * 0.45;
  double len = ra + rb;
  if (b.aromatic) len *= 0.92;
  else if (b.order == 2) len *= 0.88;
  else if (b.order == 3) len *= 0.80;
  return len;
}

std::vector<Point2> layout_2d(const Molecule& mol, std::uint64_t seed,
                              int iterations) {
  const int n = mol.atom_count();
  std::vector<Point2> pos(static_cast<std::size_t>(n));
  common::Rng rng(seed);
  for (auto& p : pos) {
    p.x = rng.uniform(-1.0, 1.0);
    p.y = rng.uniform(-1.0, 1.0);
  }
  if (n == 1) return {{0.0, 0.0}};

  // Fruchterman–Reingold-style iterations with unit ideal bond length.
  const int iters = std::max(1, iterations);
  std::vector<Point2> force(static_cast<std::size_t>(n));
  for (int it = 0; it < iters; ++it) {
    const double step = 0.12 * (1.0 - static_cast<double>(it) / iters) + 0.01;
    force.assign(static_cast<std::size_t>(n), Point2{});
    // Repulsion between all pairs.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double dx = pos[static_cast<std::size_t>(i)].x - pos[static_cast<std::size_t>(j)].x;
        double dy = pos[static_cast<std::size_t>(i)].y - pos[static_cast<std::size_t>(j)].y;
        double d2 = dx * dx + dy * dy + 1e-6;
        const double f = 0.35 / d2;
        const double d = std::sqrt(d2);
        dx /= d; dy /= d;
        force[static_cast<std::size_t>(i)].x += f * dx;
        force[static_cast<std::size_t>(i)].y += f * dy;
        force[static_cast<std::size_t>(j)].x -= f * dx;
        force[static_cast<std::size_t>(j)].y -= f * dy;
      }
    }
    // Springs along bonds (ideal length 1).
    for (int bi = 0; bi < mol.bond_count(); ++bi) {
      const Bond& b = mol.bond(bi);
      double dx = pos[static_cast<std::size_t>(b.b)].x - pos[static_cast<std::size_t>(b.a)].x;
      double dy = pos[static_cast<std::size_t>(b.b)].y - pos[static_cast<std::size_t>(b.a)].y;
      const double d = std::sqrt(dx * dx + dy * dy) + 1e-9;
      const double f = 1.2 * (d - 1.0);
      dx /= d; dy /= d;
      force[static_cast<std::size_t>(b.a)].x += f * dx;
      force[static_cast<std::size_t>(b.a)].y += f * dy;
      force[static_cast<std::size_t>(b.b)].x -= f * dx;
      force[static_cast<std::size_t>(b.b)].y -= f * dy;
    }
    for (int i = 0; i < n; ++i) {
      // Clamp displacement to keep the embedding stable.
      double fx = force[static_cast<std::size_t>(i)].x;
      double fy = force[static_cast<std::size_t>(i)].y;
      const double fn = std::sqrt(fx * fx + fy * fy);
      if (fn > 1.0) { fx /= fn; fy /= fn; }
      pos[static_cast<std::size_t>(i)].x += step * fx;
      pos[static_cast<std::size_t>(i)].y += step * fy;
    }
  }

  // Center and scale to unit RMS radius.
  double cx = 0, cy = 0;
  for (const auto& p : pos) { cx += p.x; cy += p.y; }
  cx /= n; cy /= n;
  double rms = 0;
  for (auto& p : pos) {
    p.x -= cx; p.y -= cy;
    rms += p.x * p.x + p.y * p.y;
  }
  rms = std::sqrt(rms / n);
  if (rms > 1e-9)
    for (auto& p : pos) { p.x /= rms; p.y /= rms; }
  return pos;
}

std::vector<common::Vec3> embed_3d(const Molecule& mol, std::uint64_t seed) {
  using common::Vec3;
  const int n = mol.atom_count();
  std::vector<Vec3> pos(static_cast<std::size_t>(n));
  common::Rng rng(seed);

  // Start from the 2D layout scaled to bond-length units, plus z noise to
  // break planarity.
  const auto flat = layout_2d(mol, seed ^ 0xabcdef);
  double mean_bond = 1.5;
  if (mol.bond_count() > 0) {
    mean_bond = 0.0;
    for (int bi = 0; bi < mol.bond_count(); ++bi) mean_bond += ideal_bond_length(mol, bi);
    mean_bond /= mol.bond_count();
  }
  for (int i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(i)] = {flat[static_cast<std::size_t>(i)].x * 2.0 * mean_bond,
                                        flat[static_cast<std::size_t>(i)].y * 2.0 * mean_bond,
                                        rng.uniform(-0.3, 0.3)};
  }
  if (n == 1) return {Vec3{}};

  // 1-3 distance targets from ideal angles (~111 deg for sp3-ish chains).
  struct Pair13 { int a, b; double target; };
  std::vector<Pair13> angles;
  for (int j = 0; j < n; ++j) {
    const auto nbrs = mol.neighbors(j);
    for (std::size_t x = 0; x < nbrs.size(); ++x) {
      for (std::size_t y = x + 1; y < nbrs.size(); ++y) {
        const int a = nbrs[x], c = nbrs[y];
        const double la = ideal_bond_length(mol, mol.bond_between(a, j));
        const double lc = ideal_bond_length(mol, mol.bond_between(c, j));
        const double theta = mol.atom(j).aromatic ? 2.0944 /*120 deg*/ : 1.9373 /*111 deg*/;
        const double target = std::sqrt(la * la + lc * lc - 2 * la * lc * std::cos(theta));
        angles.push_back({a, c, target});
      }
    }
  }

  // Gradient descent on the restraint energy.
  const int iters = 400;
  for (int it = 0; it < iters; ++it) {
    const double step = 0.05 * (1.0 - 0.8 * it / iters);
    std::vector<Vec3> grad(static_cast<std::size_t>(n));

    auto spring = [&](int a, int b, double target, double k) {
      Vec3 d = pos[static_cast<std::size_t>(b)] - pos[static_cast<std::size_t>(a)];
      const double dist = d.norm() + 1e-9;
      const Vec3 u = d / dist;
      const Vec3 g = u * (k * (dist - target));
      grad[static_cast<std::size_t>(a)] -= g;
      grad[static_cast<std::size_t>(b)] += g;
    };

    for (int bi = 0; bi < mol.bond_count(); ++bi)
      spring(mol.bond(bi).a, mol.bond(bi).b, ideal_bond_length(mol, bi), 4.0);
    for (const auto& a13 : angles) spring(a13.a, a13.b, a13.target, 1.5);

    // Soft repulsion between topologically distant pairs.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (mol.bond_between(i, j) >= 0) continue;
        const Vec3 d = pos[static_cast<std::size_t>(j)] - pos[static_cast<std::size_t>(i)];
        const double dist = d.norm() + 1e-9;
        const double rmin = 2.4;
        if (dist < rmin) {
          // Harmonic wall: same convention as spring() with target rmin.
          const Vec3 g = d / dist * (0.8 * (dist - rmin));
          grad[static_cast<std::size_t>(i)] -= g;
          grad[static_cast<std::size_t>(j)] += g;
        }
      }
    }

    for (int i = 0; i < n; ++i)
      pos[static_cast<std::size_t>(i)] -= grad[static_cast<std::size_t>(i)] * step;
  }

  // Center at the origin.
  Vec3 c;
  for (const auto& p : pos) c += p;
  c /= static_cast<double>(n);
  for (auto& p : pos) p -= c;
  return pos;
}

}  // namespace impeccable::chem
