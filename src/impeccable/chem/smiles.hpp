#pragma once
// SMILES reader/writer.
//
// The pipeline's interchange format: compound libraries are SMILES lists
// (Section 3, "a database of molecules to dock in SMILES format"). We support
// the organic subset plus bracket atoms — enough to round-trip everything the
// library generator emits and typical drug-like strings:
//
//   atoms      B C N O P S F Cl Br I, aromatic b c n o p s, bracket atoms
//              with charge and H-count ([NH3+], [O-], [nH])
//   bonds      - = # : (aromatic), default single/aromatic
//   branches   ( ... )
//   rings      digits 1-9, %NN two-digit closures, with optional bond symbol
//   dots       disconnected fragments are rejected (docking needs one ligand)
//
// Stereochemistry (/ \ @) and isotopes are accepted and ignored, matching the
// coarse geometric level of the substituted engines.

#include <stdexcept>
#include <string>
#include <string_view>

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

class SmilesError : public std::runtime_error {
 public:
  SmilesError(const std::string& msg, std::size_t pos)
      : std::runtime_error(msg + " (at position " + std::to_string(pos) + ")"),
        position(pos) {}
  std::size_t position;
};

/// Parse a SMILES string into a finalized Molecule. Throws SmilesError.
Molecule parse_smiles(std::string_view smiles);

/// Write a canonical SMILES for the molecule. Canonical atom ranks come from
/// iterative invariant refinement (Morgan-style), so isomorphic graphs yield
/// identical strings: write(parse(s1)) == write(parse(s2)) whenever s1 and s2
/// denote the same molecule.
std::string write_smiles(const Molecule& mol);

/// Convenience: parse-then-write canonicalization.
std::string canonical_smiles(std::string_view smiles);

}  // namespace impeccable::chem
