#pragma once
// Ligand preparation: pH-dependent protonation states.
//
// Docking inputs are prepared at physiological pH — carboxylic acids and
// similar acids deprotonate, aliphatic amines protonate. This is the
// "ready-to-dock" preparation step the paper's libraries come with ("ZINC
// providing over 230 million purchasable compounds in ready-to-dock, 3D
// formats", Sec. 7.1); our generator emits neutral molecules that this pass
// converts. Simple pKa rules, the standard fast-prep approximation:
//
//   carboxylic acid  C(=O)OH   pKa ~4.2  -> C(=O)[O-]   at pH > pKa
//   aliphatic amine  N(H2/H1)  pKa ~10.6 -> [NH3+]/...  at pH < pKa
//   (aromatic N, amides, anilines are left untouched)

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

struct ProtonationRules {
  double carboxyl_pka = 4.2;
  double amine_pka = 10.6;
};

/// Return a copy of `mol` protonated for the given pH.
Molecule protonate_for_ph(const Molecule& mol, double ph = 7.4,
                          const ProtonationRules& rules = {});

/// Count of (acidic, basic) sites the rules would transform at pH 7.4.
std::pair<int, int> ionizable_sites(const Molecule& mol);

}  // namespace impeccable::chem
