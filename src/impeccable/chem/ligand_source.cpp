#include "impeccable/chem/ligand_source.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "impeccable/chem/protonation.hpp"
#include "impeccable/chem/smiles.hpp"

namespace impeccable::chem {

Molecule LigandSource::prepare(std::string_view smiles) const {
  Molecule mol = parse_smiles(smiles);
  if (opts_.protonate_ph > 0.0)
    mol = protonate_for_ph(mol, opts_.protonate_ph);
  return mol;
}

void LigandSource::images(std::size_t begin, std::size_t end,
                          std::vector<Image>& out) const {
  if (begin > end || end > size())
    throw std::out_of_range("LigandSource::images: bad window");
  out.resize(end - begin);
  for (std::size_t i = begin; i < end; ++i) out[i - begin] = image(i);
}

void LigandSource::release(std::size_t, std::size_t) const {}

// ---------------------------------------------------------------------------
// InMemorySource

InMemorySource::InMemorySource(CompoundLibrary library, SourceOptions opts)
    : LigandSource(opts), library_(std::move(library)) {
  mols_.reserve(library_.size());
  images_.reserve(library_.size());
  for (const auto& entry : library_.entries) {
    mols_.push_back(prepare(entry.smiles));
    images_.push_back(depict(mols_.back(), opts_.depiction));
  }
}

std::string InMemorySource::id(std::size_t i) const {
  return library_.entries.at(i).id;
}

std::string InMemorySource::smiles(std::size_t i) const {
  return library_.entries.at(i).smiles;
}

Molecule InMemorySource::molecule(std::size_t i) const { return mols_.at(i); }

Image InMemorySource::image(std::size_t i) const { return images_.at(i); }

// ---------------------------------------------------------------------------
// MmapSource

MmapSource::MmapSource(LigandStore store, SourceOptions opts)
    : LigandSource(opts), store_(std::move(store)) {}

std::string MmapSource::id(std::size_t i) const {
  return std::string(store_.id(i));
}

std::string MmapSource::smiles(std::size_t i) const {
  return std::string(store_.smiles(i));
}

Molecule MmapSource::molecule(std::size_t i) const {
  return prepare(store_.smiles(i));
}

Image MmapSource::image(std::size_t i) const {
  return depict(molecule(i), opts_.depiction);
}

void MmapSource::release(std::size_t begin, std::size_t end) const {
  store_.release(begin, end);
}

// ---------------------------------------------------------------------------

StoreStats spill_generated_library(const std::string& name, std::size_t count,
                                   std::uint64_t seed,
                                   const std::string& directory,
                                   const GeneratorOptions& opts,
                                   std::size_t records_per_shard) {
  StoreWriterOptions wopts;
  wopts.records_per_shard = records_per_shard;
  wopts.dedup = false;
  LigandStoreWriter writer(directory, wopts);
  for (std::size_t i = 0; i < count; ++i) {
    const Molecule mol = generate_compound(seed, i, opts);
    char id[80];
    std::snprintf(id, sizeof id, "%s-%06zu", name.c_str(), i);
    writer.append(id, write_smiles(mol));
  }
  writer.finish();
  return writer.stats();
}

}  // namespace impeccable::chem
