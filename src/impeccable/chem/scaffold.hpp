#pragma once
// Murcko scaffold extraction — ring systems plus the linkers that connect
// them, with all side chains stripped. The standard chemotype notion behind
// "structurally most diverse compounds" (Sec. 7.1.2): campaigns report hit
// diversity as the number of distinct scaffolds, not raw compounds.

#include <map>
#include <string>

#include "impeccable/chem/library.hpp"
#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

/// The Bemis–Murcko scaffold of a molecule: iteratively prune terminal
/// atoms that are not part of a ring or of a ring-ring linker. Returns an
/// empty (0-atom) molecule for acyclic inputs.
Molecule murcko_scaffold(const Molecule& mol);

/// Canonical SMILES of the scaffold; "" for acyclic molecules.
std::string scaffold_smiles(const Molecule& mol);

/// Histogram of scaffolds over a library: scaffold SMILES -> count.
/// Acyclic compounds are grouped under "".
std::map<std::string, int> scaffold_census(const CompoundLibrary& library);

}  // namespace impeccable::chem
