#pragma once
// LigandStore — compact on-disk SMILES library: the out-of-core answer to
// the paper's 4.2B-ligand nCov repository (Sec. 7.1), which arrives as
// thousands of sharded ligand files. A store is a directory of append-only
// shards, each a single file:
//
//   [64-byte header][payload: records][padding to 8][index: u64 offsets]
//
//   header   magic "IMPLIG01", version, flags, record count, payload bytes,
//            index offset, total file bytes, FNV-1a-64 checksum over
//            payload+index. All integers little-endian.
//   record   u16 id_len, u16 smiles_len, id bytes, smiles bytes.
//   index    one u64 per record: offset of the record from payload start,
//            ascending — so (shard, offset) addresses a ligand and a binary
//            search recovers its ordinal.
//
// The read path memory-maps each shard and serves ids/SMILES as
// string_views into the mapping — no per-ligand heap state — while
// validation (header sanity, size and checksum) runs over bounded pread
// buffers so opening a 10 GB store never faults it resident. Corrupt shards
// (truncated file, torn header, checksum mismatch) are skipped and counted,
// matching ml/shards resilience semantics: a billion-ligand sweep survives
// a bad file, it does not die on it.
//
// The writer is append-only with optional sharded near-duplicate
// deduplication on canonical-SMILES digests: 256 digest buckets keyed on
// the top byte of the 64-bit digest, so membership stays cheap as the
// store grows. Dedup is opt-in — generated campaign libraries must spill
// 1:1 so the on-disk ordinal equals the generator index.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace impeccable::chem {

/// 64-bit FNV-1a over a byte range; `seed` chains multi-buffer hashes.
inline constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = kFnvOffset64);

/// A ligand's on-disk address: shard ordinal + record offset within the
/// shard's payload. Stable across re-opens of the same directory.
struct LigandRef {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;
};

/// Open/ingest counters. `shards_skipped` counts corrupt files survived.
struct StoreStats {
  std::size_t shards_ok = 0;
  std::size_t shards_skipped = 0;
  std::size_t records = 0;
  std::size_t duplicates_dropped = 0;
};

/// Append-only store writer. Buffers one shard in memory and flushes it
/// (header + payload + index + checksum) every `records_per_shard` appends;
/// destruction or finish() seals the tail shard.
struct StoreWriterOptions {
  std::size_t records_per_shard = 100000;
  /// Drop near-duplicates: records whose canonical-SMILES digest was
  /// already ingested. Off by default — campaign spills must be 1:1.
  bool dedup = false;
  /// With dedup on, parse + re-canonicalize each SMILES before digesting
  /// (catches the same molecule written two ways). Off digests the raw
  /// string, for inputs already canonical.
  bool canonicalize = true;
};

class LigandStoreWriter {
 public:
  explicit LigandStoreWriter(std::string directory,
                             StoreWriterOptions opts = {});
  ~LigandStoreWriter();
  LigandStoreWriter(const LigandStoreWriter&) = delete;
  LigandStoreWriter& operator=(const LigandStoreWriter&) = delete;

  /// Append one record; returns false iff dedup dropped it.
  bool append(std::string_view id, std::string_view smiles);

  /// Flush and seal the open shard. Idempotent; append() may not follow.
  void finish();

  const StoreStats& stats() const { return stats_; }

 private:
  void flush_shard();

  std::string dir_;
  StoreWriterOptions opts_;
  StoreStats stats_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::uint64_t> offsets_;
  std::size_t shard_index_ = 0;
  bool finished_ = false;
  /// Sharded dedup sets: bucket by digest top byte, sorted within.
  std::vector<std::vector<std::uint64_t>> dedup_buckets_;
};

/// Memory-mapped read view over a store directory. All accessors are const
/// and thread-safe; string_views point into the mappings and live as long
/// as the store.
class LigandStore {
 public:
  /// Opens every `shard-*.imls` in name order; corrupt shards are skipped
  /// and counted in stats(). An empty/missing directory yields size()==0.
  static LigandStore open(const std::string& directory);

  LigandStore() = default;
  ~LigandStore();
  LigandStore(LigandStore&&) noexcept;
  LigandStore& operator=(LigandStore&&) noexcept;
  LigandStore(const LigandStore&) = delete;
  LigandStore& operator=(const LigandStore&) = delete;

  std::size_t size() const { return total_; }
  std::string_view id(std::size_t i) const;
  std::string_view smiles(std::size_t i) const;

  /// On-disk address of ligand i / ordinal of an address. `index_of`
  /// returns size() for an address that matches no record.
  LigandRef locate(std::size_t i) const;
  std::size_t index_of(const LigandRef& ref) const;

  /// Advise the kernel that the payload pages backing [begin, end) will not
  /// be re-read soon (MADV_DONTNEED on the spanned page range): streaming
  /// windows call this to bound resident set at window size.
  void release(std::size_t begin, std::size_t end) const;

  const StoreStats& stats() const { return stats_; }
  const std::string& directory() const { return dir_; }

 private:
  struct Shard {
    int fd = -1;
    const std::uint8_t* base = nullptr;  ///< whole-file mapping
    std::size_t bytes = 0;
    std::size_t count = 0;
    std::size_t payload_bytes = 0;
    std::size_t index_offset = 0;
    std::size_t start = 0;  ///< global ordinal of record 0
  };

  const Shard& shard_of(std::size_t i, std::size_t& rec) const;
  std::pair<std::string_view, std::string_view> record(std::size_t i) const;

  std::string dir_;
  std::vector<Shard> shards_;
  std::size_t total_ = 0;
  StoreStats stats_;
};

}  // namespace impeccable::chem
