#pragma once
// 2D molecule depiction rasterizer — the ML1 featurization.
//
// Sec. 5.1.2: "A simple featurization method has been widely ignored — 2D
// image depictions... able to utilize off-the-shelf convolutional neural
// networks." We render the 2D layout into a small multi-channel image the
// CNN surrogate consumes:
//   ch 0  bond skeleton (anti-aliased segments)
//   ch 1  carbon / aromatic density
//   ch 2  H-bond donors & acceptors (N, O)
//   ch 3  halogens, S, P and charges
//
// Images are returned in CHW order, values in [0, 1].

#include <cstdint>
#include <vector>

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

struct DepictionOptions {
  int width = 32;
  int height = 32;
  int channels = 4;
  double atom_sigma = 0.9;   ///< Gaussian splat radius in pixels
  std::uint64_t layout_seed = 7;
  /// Force-directed layout iterations (see layout_2d). The default keeps
  /// depictions bitwise identical to the historical fixed count; streaming
  /// benchmarks lower it for throughput at coarse resolutions.
  int layout_iterations = 250;
};

struct Image {
  int channels = 0;
  int height = 0;
  int width = 0;
  std::vector<float> data;  ///< CHW

  float& at(int c, int y, int x) {
    return data[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  float at(int c, int y, int x) const {
    return data[static_cast<std::size_t>((c * height + y) * width + x)];
  }
};

/// Rasterize the molecule's 2D depiction.
Image depict(const Molecule& mol, const DepictionOptions& opts = {});

}  // namespace impeccable::chem
