#pragma once
// Molecular descriptors: the cheap whole-molecule features used by the
// library generator (drug-likeness filters), the ML1 surrogate (auxiliary
// input features), and the synthetic affinity model.

#include "impeccable/chem/molecule.hpp"

namespace impeccable::chem {

struct Descriptors {
  double molecular_weight = 0.0;  ///< includes implicit hydrogens
  int heavy_atoms = 0;
  int hbond_donors = 0;     ///< N/O/S carrying at least one H
  int hbond_acceptors = 0;  ///< N/O/F lone-pair acceptors
  int rotatable_bonds = 0;  ///< acyclic single bonds between non-terminal heavy atoms
  int ring_count = 0;
  int aromatic_atoms = 0;
  double aromatic_fraction = 0.0;  ///< aromatic / heavy atoms
  double logp = 0.0;        ///< Crippen-style additive estimate (coarse)
  double tpsa = 0.0;        ///< topological polar surface area estimate, Å²
  int formal_charge = 0;    ///< net charge
};

/// Compute all descriptors in one pass. Molecule must be finalized.
Descriptors compute_descriptors(const Molecule& mol);

/// Number of Lipinski rule-of-five violations (MW>500, logP>5, HBD>5, HBA>10).
int lipinski_violations(const Descriptors& d);

/// True if the bond is rotatable: acyclic single non-aromatic bond whose both
/// ends have degree >= 2 (the AutoDock torsion criterion, minus amides which
/// we keep rotatable at this level of modelling).
bool is_rotatable(const Molecule& mol, int bond_index);

}  // namespace impeccable::chem
