#include "impeccable/chem/library.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/rng.hpp"

namespace impeccable::chem {
namespace {

using common::Rng;

/// Remaining bonding capacity of an atom given what is already attached.
int free_valence(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  int target = info(a.element).default_valence;
  if (a.element == Element::N && a.formal_charge > 0) target += 1;
  const int used = static_cast<int>(std::ceil(mol.valence_used(i) - 1e-9));
  return std::max(0, target - used);
}

/// Atoms with at least `need` free valence.
std::vector<int> attachment_points(const Molecule& mol, int need = 1) {
  std::vector<int> out;
  for (int i = 0; i < mol.atom_count(); ++i)
    if (free_valence(mol, i) >= need) out.push_back(i);
  return out;
}

/// Append an aromatic 6-ring; returns its atom indices. Hetero pattern picks
/// benzene / pyridine / pyrimidine-like rings.
std::vector<int> add_aromatic6(Molecule& mol, Rng& rng) {
  std::vector<int> ring;
  const int n_count = static_cast<int>(rng.index(3));  // 0..2 ring nitrogens
  std::vector<int> npos;
  while (static_cast<int>(npos.size()) < n_count) {
    const int p = static_cast<int>(rng.index(6));
    if (std::find(npos.begin(), npos.end(), p) == npos.end()) npos.push_back(p);
  }
  for (int k = 0; k < 6; ++k) {
    Atom a;
    a.aromatic = true;
    a.element = std::find(npos.begin(), npos.end(), k) != npos.end()
                    ? Element::N
                    : Element::C;
    ring.push_back(mol.add_atom(a));
  }
  for (int k = 0; k < 6; ++k)
    mol.add_bond(ring[static_cast<std::size_t>(k)],
                 ring[static_cast<std::size_t>((k + 1) % 6)], 1, true);
  return ring;
}

/// Append an aromatic 5-ring (pyrrole / furan / thiophene / imidazole-like).
std::vector<int> add_aromatic5(Molecule& mol, Rng& rng) {
  std::vector<int> ring;
  // One mandatory heteroatom that contributes the lone pair.
  Element het;
  int het_h = 0;
  switch (rng.index(3)) {
    case 0: het = Element::N; het_h = 1; break;  // pyrrole-like [nH]
    case 1: het = Element::O; break;             // furan
    default: het = Element::S; break;            // thiophene
  }
  {
    Atom a;
    a.aromatic = true;
    a.element = het;
    if (het == Element::N) a.explicit_h = het_h;
    ring.push_back(mol.add_atom(a));
  }
  const bool extra_n = rng.bernoulli(0.3);  // imidazole/oxazole-like
  for (int k = 1; k < 5; ++k) {
    Atom a;
    a.aromatic = true;
    a.element = (extra_n && k == 2) ? Element::N : Element::C;
    ring.push_back(mol.add_atom(a));
  }
  for (int k = 0; k < 5; ++k)
    mol.add_bond(ring[static_cast<std::size_t>(k)],
                 ring[static_cast<std::size_t>((k + 1) % 5)], 1, true);
  return ring;
}

/// Append a saturated ring (cyclohexane / piperidine / morpholine-like /
/// cyclopentane).
std::vector<int> add_aliphatic_ring(Molecule& mol, Rng& rng) {
  const int size = rng.bernoulli(0.35) ? 5 : 6;
  std::vector<int> ring;
  const bool with_n = rng.bernoulli(0.4);
  const bool with_o = !with_n && rng.bernoulli(0.3);
  for (int k = 0; k < size; ++k) {
    Atom a;
    a.element = Element::C;
    if (k == 0 && with_n) a.element = Element::N;
    if (k == 0 && with_o) a.element = Element::O;
    if (size == 6 && k == 3 && with_n && rng.bernoulli(0.4))
      a.element = Element::O;  // morpholine-like
    ring.push_back(mol.add_atom(a));
  }
  for (int k = 0; k < size; ++k)
    mol.add_bond(ring[static_cast<std::size_t>(k)],
                 ring[static_cast<std::size_t>((k + 1) % size)], 1, false);
  return ring;
}

std::vector<int> add_ring(Molecule& mol, Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.45) return add_aromatic6(mol, rng);
  if (r < 0.70) return add_aromatic5(mol, rng);
  return add_aliphatic_ring(mol, rng);
}

/// Attach a small functional group to `site` (which must have free valence).
void add_functional_group(Molecule& mol, Rng& rng, int site) {
  switch (rng.index(12)) {
    case 0: {  // hydroxyl
      const int o = mol.add_atom({Element::O});
      mol.add_bond(site, o);
      break;
    }
    case 1: {  // amine
      const int n = mol.add_atom({Element::N});
      mol.add_bond(site, n);
      break;
    }
    case 2: {  // methyl / ethyl chain
      int prev = site;
      const int len = 1 + static_cast<int>(rng.index(3));
      for (int k = 0; k < len; ++k) {
        const int c = mol.add_atom({Element::C});
        mol.add_bond(prev, c);
        prev = c;
      }
      break;
    }
    case 3: {  // halogen
      Element hal;
      switch (rng.index(3)) {
        case 0: hal = Element::F; break;
        case 1: hal = Element::Cl; break;
        default: hal = Element::Br; break;
      }
      mol.add_bond(site, mol.add_atom({hal}));
      break;
    }
    case 4: {  // methoxy
      const int o = mol.add_atom({Element::O});
      mol.add_bond(site, o);
      mol.add_bond(o, mol.add_atom({Element::C}));
      break;
    }
    case 5: {  // nitrile (needs a fresh sp carbon)
      const int c = mol.add_atom({Element::C});
      mol.add_bond(site, c);
      mol.add_bond(c, mol.add_atom({Element::N}), 3);
      break;
    }
    case 6: {  // carboxylic acid
      const int c = mol.add_atom({Element::C});
      mol.add_bond(site, c);
      mol.add_bond(c, mol.add_atom({Element::O}), 2);
      mol.add_bond(c, mol.add_atom({Element::O}));
      break;
    }
    case 7: {  // amide
      const int c = mol.add_atom({Element::C});
      mol.add_bond(site, c);
      mol.add_bond(c, mol.add_atom({Element::O}), 2);
      mol.add_bond(c, mol.add_atom({Element::N}));
      break;
    }
    case 8: {  // ketone branch
      const int c = mol.add_atom({Element::C});
      mol.add_bond(site, c);
      mol.add_bond(c, mol.add_atom({Element::O}), 2);
      mol.add_bond(c, mol.add_atom({Element::C}));
      break;
    }
    case 9: {  // trifluoromethyl
      const int c = mol.add_atom({Element::C});
      mol.add_bond(site, c);
      for (int k = 0; k < 3; ++k) mol.add_bond(c, mol.add_atom({Element::F}));
      break;
    }
    case 10: {  // sulfonamide-like S(=O)(=O)N  (hexavalent S via explicit_h=0)
      Atom s;
      s.element = Element::S;
      s.explicit_h = 0;
      const int si = mol.add_atom(s);
      mol.add_bond(site, si);
      mol.add_bond(si, mol.add_atom({Element::O}), 2);
      mol.add_bond(si, mol.add_atom({Element::O}), 2);
      mol.add_bond(si, mol.add_atom({Element::N}));
      break;
    }
    default: {  // charged amine [NH3+]-ish tail
      Atom n;
      n.element = Element::N;
      n.formal_charge = 1;
      const int c = mol.add_atom({Element::C});
      mol.add_bond(site, c);
      mol.add_bond(c, mol.add_atom(n));
      break;
    }
  }
}

/// Connect ring `b_atoms` to existing atom `site` with a single bond or a
/// short linker chain.
void link(Molecule& mol, Rng& rng, int site, int ring_atom) {
  const int linker = static_cast<int>(rng.index(3));  // 0..2 CH2 units
  int prev = site;
  for (int k = 0; k < linker; ++k) {
    const int c = mol.add_atom({Element::C});
    mol.add_bond(prev, c);
    prev = c;
  }
  mol.add_bond(prev, ring_atom);
}

Molecule assemble(Rng& rng, const GeneratorOptions& opts) {
  Molecule mol;
  auto scaffold = add_ring(mol, rng);
  (void)scaffold;

  const int extra_rings = static_cast<int>(rng.index(3));  // 0..2 extra rings
  for (int r = 0; r < extra_rings; ++r) {
    mol.finalize();  // refresh valence info for attachment query
    auto sites = attachment_points(mol);
    if (sites.empty()) break;
    const int site = sites[rng.index(sites.size())];
    auto ring = add_ring(mol, rng);
    // Ring atoms were appended after `site`, so pick an attachable one.
    std::vector<int> ring_sites;
    mol.finalize();
    for (int a : ring)
      if (free_valence(mol, a) >= 1 && a != site) ring_sites.push_back(a);
    if (ring_sites.empty()) break;
    link(mol, rng, site, ring_sites[rng.index(ring_sites.size())]);
  }

  const int groups = 1 + static_cast<int>(rng.index(4));  // 1..4 substituents
  for (int g = 0; g < groups; ++g) {
    mol.finalize();
    auto sites = attachment_points(mol);
    if (sites.empty()) break;
    if (mol.atom_count() >= opts.max_heavy_atoms) break;
    add_functional_group(mol, rng, sites[rng.index(sites.size())]);
  }

  mol.finalize();
  return mol;
}

}  // namespace

Molecule generate_compound(std::uint64_t seed, std::uint64_t index,
                           const GeneratorOptions& opts) {
  // Mix seed and index so per-compound streams are independent.
  std::uint64_t mix = seed;
  (void)common::splitmix64(mix);
  mix ^= index * 0x9e3779b97f4a7c15ULL;
  Rng rng(common::splitmix64(mix));

  for (int attempt = 0; attempt < opts.max_attempts_per_compound; ++attempt) {
    Molecule mol = assemble(rng, opts);
    if (mol.atom_count() < opts.min_heavy_atoms) continue;
    if (mol.atom_count() > opts.max_heavy_atoms) continue;
    if (!mol.connected()) continue;
    const Descriptors d = compute_descriptors(mol);
    if (lipinski_violations(d) > opts.max_lipinski_violations) continue;
    return mol;
  }
  throw std::runtime_error("generate_compound: failed to produce a valid molecule");
}

CompoundLibrary generate_library(const std::string& name, std::size_t count,
                                 std::uint64_t seed,
                                 const GeneratorOptions& opts) {
  CompoundLibrary lib;
  lib.name = name;
  lib.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Molecule mol = generate_compound(seed, i, opts);
    char id[64];
    std::snprintf(id, sizeof id, "%s-%06zu", name.c_str(), i);
    lib.entries.push_back({id, write_smiles(mol)});
  }
  return lib;
}

std::pair<CompoundLibrary, CompoundLibrary> generate_overlapping_libraries(
    const std::string& name_a, const std::string& name_b, std::size_t count,
    double overlap_fraction, std::uint64_t seed, const GeneratorOptions& opts) {
  overlap_fraction = std::clamp(overlap_fraction, 0.0, 1.0);
  const std::size_t shared = static_cast<std::size_t>(
      std::llround(overlap_fraction * static_cast<double>(count)));
  const std::size_t unique = count - shared;

  const std::uint64_t shared_seed = seed ^ 0x5eed5a7edULL;
  CompoundLibrary pool = generate_library("SHR", shared, shared_seed, opts);

  auto build = [&](const std::string& name, std::uint64_t s, std::uint64_t salt) {
    CompoundLibrary lib = generate_library(name, unique, s ^ salt, opts);
    lib.name = name;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      char id[64];
      std::snprintf(id, sizeof id, "%s-%06zu", name.c_str(), unique + i);
      lib.entries.push_back({id, pool.entries[i].smiles});
    }
    return lib;
  };
  return {build(name_a, seed, 0x1111), build(name_b, seed, 0x2222)};
}

}  // namespace impeccable::chem
