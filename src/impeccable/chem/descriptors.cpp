#include "impeccable/chem/descriptors.hpp"

#include <cmath>

namespace impeccable::chem {
namespace {

/// Crippen-like additive logP contribution per atom, refined by environment.
/// Magnitudes follow the published Wildman–Crippen table coarsely; we only
/// need relative hydrophobicity orderings to be sensible.
double logp_contribution(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  const int h = mol.hydrogen_count(i);
  switch (a.element) {
    case Element::C: {
      if (a.aromatic) return 0.29;
      // Aliphatic carbon: more hydrogens -> more hydrophobic.
      return 0.14 + 0.08 * h;
    }
    case Element::N:
      return a.aromatic ? -0.49 : (h > 0 ? -0.60 : -0.30);
    case Element::O:
      return h > 0 ? -0.40 : -0.12;
    case Element::S:
      return 0.25;
    case Element::P:
      return 0.10;
    case Element::F:
      return 0.22;
    case Element::Cl:
      return 0.65;
    case Element::Br:
      return 0.86;
    case Element::I:
      return 1.10;
    case Element::B:
      return 0.05;
    default:
      return 0.0;
  }
}

/// Ertl-style TPSA fragment contributions (coarse subset).
double tpsa_contribution(const Molecule& mol, int i) {
  const Atom& a = mol.atom(i);
  const int h = mol.hydrogen_count(i);
  switch (a.element) {
    case Element::N:
      if (a.aromatic) return h > 0 ? 15.79 : 12.89;
      if (h >= 2) return 26.02;
      if (h == 1) return 12.03;
      return 3.24;
    case Element::O:
      if (a.aromatic) return 13.14;
      if (h >= 1) return 20.23;
      // Ether vs carbonyl: double-bonded O is more polar.
      for (int bi : mol.bonds_of(i))
        if (mol.bond(bi).order == 2) return 17.07;
      return 9.23;
    case Element::S:
      return h > 0 ? 38.80 : 25.30;
    case Element::P:
      return 13.59;
    default:
      return 0.0;
  }
}

}  // namespace

bool is_rotatable(const Molecule& mol, int bond_index) {
  const Bond& b = mol.bond(bond_index);
  if (b.order != 1 || b.aromatic) return false;
  if (mol.bond_in_ring(bond_index)) return false;
  return mol.degree(b.a) >= 2 && mol.degree(b.b) >= 2;
}

Descriptors compute_descriptors(const Molecule& mol) {
  Descriptors d;
  d.heavy_atoms = mol.atom_count();
  d.ring_count = mol.ring_count();

  for (int i = 0; i < mol.atom_count(); ++i) {
    const Atom& a = mol.atom(i);
    const ElementInfo& ei = info(a.element);
    const int h = mol.hydrogen_count(i);
    d.molecular_weight += ei.mass + h * kElements[0].mass;
    d.formal_charge += a.formal_charge;
    if (a.aromatic) ++d.aromatic_atoms;
    if (ei.hbond_donor_capable && h > 0) ++d.hbond_donors;
    if (ei.hbond_acceptor_capable) ++d.hbond_acceptors;
    d.logp += logp_contribution(mol, i);
    d.tpsa += tpsa_contribution(mol, i);
  }
  for (int bi = 0; bi < mol.bond_count(); ++bi)
    if (is_rotatable(mol, bi)) ++d.rotatable_bonds;

  d.aromatic_fraction =
      d.heavy_atoms > 0
          ? static_cast<double>(d.aromatic_atoms) / d.heavy_atoms
          : 0.0;
  return d;
}

int lipinski_violations(const Descriptors& d) {
  int v = 0;
  if (d.molecular_weight > 500.0) ++v;
  if (d.logp > 5.0) ++v;
  if (d.hbond_donors > 5) ++v;
  if (d.hbond_acceptors > 10) ++v;
  return v;
}

}  // namespace impeccable::chem
