#include "impeccable/chem/diversity.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "impeccable/common/rng.hpp"

namespace impeccable::chem {

std::vector<std::size_t> maxmin_pick(const std::vector<BitSet>& fps,
                                     std::size_t count, std::uint64_t seed) {
  const std::size_t n = fps.size();
  count = std::min(count, n);
  std::vector<std::size_t> picked;
  if (count == 0) return picked;
  picked.reserve(count);

  common::Rng rng(seed);
  const std::size_t first = rng.index(n);
  picked.push_back(first);

  // best_dist[i] = min distance from i to any picked item so far.
  std::vector<double> best_dist(n);
  for (std::size_t i = 0; i < n; ++i)
    best_dist[i] = 1.0 - tanimoto(fps[i], fps[first]);

  while (picked.size() < count) {
    std::size_t arg = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (best_dist[i] > best) {
        best = best_dist[i];
        arg = i;
      }
    }
    if (best <= 0.0) {
      // Everything remaining is a duplicate of a picked item; fill in index
      // order to honour the requested count.
      for (std::size_t i = 0; i < n && picked.size() < count; ++i)
        if (std::find(picked.begin(), picked.end(), i) == picked.end())
          picked.push_back(i);
      break;
    }
    picked.push_back(arg);
    best_dist[arg] = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double d = 1.0 - tanimoto(fps[i], fps[arg]);
      best_dist[i] = std::min(best_dist[i], d);
    }
  }
  return picked;
}

std::vector<int> butina_cluster(const std::vector<BitSet>& fps, double cutoff) {
  const std::size_t n = fps.size();
  // Neighbour counts determine centroid processing order (densest first).
  std::vector<std::vector<std::size_t>> neighbors(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (tanimoto(fps[i], fps[j]) >= cutoff) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return neighbors[a].size() > neighbors[b].size();
  });

  std::vector<int> label(n, -1);
  int next_label = 0;
  for (std::size_t idx : order) {
    if (label[idx] != -1) continue;
    label[idx] = next_label;
    for (std::size_t nb : neighbors[idx])
      if (label[nb] == -1) label[nb] = next_label;
    ++next_label;
  }
  return label;
}

}  // namespace impeccable::chem
