#include "impeccable/chem/scaffold.hpp"

#include <vector>

#include "impeccable/chem/smiles.hpp"

namespace impeccable::chem {

Molecule murcko_scaffold(const Molecule& mol) {
  const int n = mol.atom_count();
  std::vector<bool> kept(static_cast<std::size_t>(n), true);

  // Iteratively prune non-ring atoms that have at most one kept neighbour.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      if (!kept[static_cast<std::size_t>(i)]) continue;
      if (mol.atom_in_ring(i)) continue;
      int kept_neighbours = 0;
      for (int nb : mol.neighbors(i))
        if (kept[static_cast<std::size_t>(nb)]) ++kept_neighbours;
      if (kept_neighbours <= 1) {
        kept[static_cast<std::size_t>(i)] = false;
        changed = true;
      }
    }
  }

  Molecule scaffold;
  std::vector<int> where(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (!kept[static_cast<std::size_t>(i)]) continue;
    Atom a = mol.atom(i);
    // Hydrogen counts are re-derived on the pruned graph, except aromatic
    // N/P whose [nH] marker is structural.
    if (!(a.aromatic &&
          (a.element == Element::N || a.element == Element::P)))
      a.explicit_h = -1;
    where[static_cast<std::size_t>(i)] = scaffold.add_atom(a);
  }
  for (int b = 0; b < mol.bond_count(); ++b) {
    const Bond& bond = mol.bond(b);
    if (kept[static_cast<std::size_t>(bond.a)] &&
        kept[static_cast<std::size_t>(bond.b)])
      scaffold.add_bond(where[static_cast<std::size_t>(bond.a)],
                        where[static_cast<std::size_t>(bond.b)], bond.order,
                        bond.aromatic);
  }
  scaffold.finalize();
  return scaffold;
}

std::string scaffold_smiles(const Molecule& mol) {
  const Molecule scaffold = murcko_scaffold(mol);
  if (scaffold.atom_count() == 0) return "";
  return write_smiles(scaffold);
}

std::map<std::string, int> scaffold_census(const CompoundLibrary& library) {
  std::map<std::string, int> census;
  for (const auto& entry : library.entries)
    ++census[scaffold_smiles(parse_smiles(entry.smiles))];
  return census;
}

}  // namespace impeccable::chem
