#pragma once
// Exact t-SNE (van der Maaten & Hinton 2008) for small point sets — used to
// visualize the 3D-AAE latent space (Fig. 5C). O(n²) per iteration; intended
// for n up to a few thousand.

#include <cstdint>
#include <vector>

namespace impeccable::ml {

struct TsneOptions {
  int output_dim = 2;
  double perplexity = 20.0;
  int iterations = 300;
  double learning_rate = 10.0;
  double max_step = 5.0;  ///< per-point displacement clamp per iteration
  double early_exaggeration = 4.0;
  int exaggeration_iters = 50;
  std::uint64_t seed = 0x75e0;
};

/// Embed row-major high-dimensional points into `output_dim` dimensions.
std::vector<std::vector<double>> tsne(const std::vector<std::vector<double>>& points,
                                      const TsneOptions& opts = {});

}  // namespace impeccable::ml
