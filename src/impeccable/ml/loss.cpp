#include "impeccable/ml/loss.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace impeccable::ml {

LossValue mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  LossValue out;
  out.grad = Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    acc += d * d;
    out.grad[i] = 2.0f * d * inv;
  }
  out.value = static_cast<float>(acc * inv);
  return out;
}

LossValue bce_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "bce_loss");
  LossValue out;
  out.grad = Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  const float eps = 1e-7f;
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float p = std::min(1.0f - eps, std::max(eps, pred[i]));
    const float t = target[i];
    acc += -(t * std::log(p) + (1 - t) * std::log(1 - p));
    out.grad[i] = (p - t) / (p * (1 - p)) * inv;
  }
  out.value = static_cast<float>(acc * inv);
  return out;
}

LossValue chamfer_loss(const Tensor& pred, const Tensor& target) {
  if (pred.rank() != 3 || pred.dim(2) != 3)
    throw std::invalid_argument("chamfer_loss: pred must be (N, P, 3)");
  if (target.rank() != 3 || target.dim(2) != 3 || target.dim(0) != pred.dim(0))
    throw std::invalid_argument("chamfer_loss: target must be (N, Q, 3)");

  const int n = pred.dim(0), p = pred.dim(1), q = target.dim(1);
  LossValue out;
  out.grad = Tensor(pred.shape());
  double total = 0.0;

  auto point = [](const Tensor& t, int b, int i) {
    const std::size_t base = (static_cast<std::size_t>(b) * t.dim(1) + i) * 3;
    return common::Vec3{t[base], t[base + 1], t[base + 2]};
  };
  auto add_grad = [&](int b, int i, const common::Vec3& g) {
    const std::size_t base = (static_cast<std::size_t>(b) * p + i) * 3;
    out.grad[base] += static_cast<float>(g.x);
    out.grad[base + 1] += static_cast<float>(g.y);
    out.grad[base + 2] += static_cast<float>(g.z);
  };

  for (int b = 0; b < n; ++b) {
    // pred -> target term.
    for (int i = 0; i < p; ++i) {
      const common::Vec3 a = point(pred, b, i);
      double best = std::numeric_limits<double>::max();
      common::Vec3 bestb;
      for (int j = 0; j < q; ++j) {
        const common::Vec3 c = point(target, b, j);
        const double d = common::distance2(a, c);
        if (d < best) {
          best = d;
          bestb = c;
        }
      }
      total += best / (n * p);
      add_grad(b, i, (a - bestb) * (2.0 / (n * p)));
    }
    // target -> pred term.
    for (int j = 0; j < q; ++j) {
      const common::Vec3 c = point(target, b, j);
      double best = std::numeric_limits<double>::max();
      int besti = 0;
      for (int i = 0; i < p; ++i) {
        const double d = common::distance2(point(pred, b, i), c);
        if (d < best) {
          best = d;
          besti = i;
        }
      }
      total += best / (n * q);
      add_grad(b, besti, (point(pred, b, besti) - c) * (2.0 / (n * q)));
    }
  }
  out.value = static_cast<float>(total);
  return out;
}

}  // namespace impeccable::ml
