#include "impeccable/ml/lof.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace impeccable::ml {

std::vector<double> local_outlier_factor(
    const std::vector<std::vector<double>>& points, int k) {
  const std::size_t n = points.size();
  if (n < 2) return std::vector<double>(n, 1.0);
  k = std::clamp<int>(k, 1, static_cast<int>(n) - 1);

  auto dist = [&](std::size_t a, std::size_t b) {
    double acc = 0.0;
    for (std::size_t d = 0; d < points[a].size(); ++d) {
      const double v = points[a][d] - points[b][d];
      acc += v * v;
    }
    return std::sqrt(acc);
  };

  // k-nearest neighbours and k-distance per point.
  std::vector<std::vector<std::size_t>> knn(n);
  std::vector<double> kdist(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> idx;
    idx.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) idx.push_back(j);
    std::nth_element(idx.begin(), idx.begin() + (k - 1), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       return dist(i, a) < dist(i, b);
                     });
    idx.resize(static_cast<std::size_t>(k));
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return dist(i, a) < dist(i, b); });
    kdist[i] = dist(i, idx.back());
    knn[i] = std::move(idx);
  }

  // Local reachability density.
  std::vector<double> lrd(n);
  for (std::size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (std::size_t j : knn[i])
      reach_sum += std::max(kdist[j], dist(i, j));
    lrd[i] = reach_sum > 0.0 ? static_cast<double>(k) / reach_sum : 1e12;
  }

  // LOF = mean neighbour lrd / own lrd.
  std::vector<double> lof(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j : knn[i]) acc += lrd[j];
    lof[i] = lrd[i] > 0.0 ? acc / (static_cast<double>(k) * lrd[i]) : 1.0;
  }
  return lof;
}

std::vector<std::size_t> top_outliers(const std::vector<double>& lof_scores,
                                      std::size_t count) {
  std::vector<std::size_t> idx(lof_scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  count = std::min(count, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + count, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return lof_scores[a] > lof_scores[b];
                    });
  idx.resize(count);
  return idx;
}

}  // namespace impeccable::ml
