#include "impeccable/ml/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "impeccable/obs/recorder.hpp"

namespace impeccable::ml {

namespace {

std::atomic<common::ThreadPool*> g_compute_pool{nullptr};

/// C rows [i0, i1) += alpha * A·B over K panels; A is (M×K, lda) row-major,
/// B is (K×N, ldb) row-major. Every C element accumulates k = 0..K-1 in
/// ascending order whatever the row partition — the determinism contract.
void gemm_rows_nn(std::size_t i0, std::size_t i1, int N, int K, float alpha,
                  const float* A, int lda, const float* B, int ldb, float beta,
                  float* C, int ldc, const GemmTiling& t) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* c = C + i * static_cast<std::size_t>(ldc);
    if (beta == 0.0f)
      std::fill(c, c + N, 0.0f);
    else if (beta != 1.0f)
      for (int j = 0; j < N; ++j) c[j] *= beta;
  }
  const int mr = std::max(1, t.mr);
  for (int k0 = 0; k0 < K; k0 += t.kc) {
    const int k1 = std::min(K, k0 + t.kc);
    std::size_t i = i0;
    // Register-blocked: mr rows of A share each streamed row of B.
    for (; i + 4 <= i1 && mr >= 4; i += 4) {
      const float* a0 = A + (i + 0) * static_cast<std::size_t>(lda);
      const float* a1 = A + (i + 1) * static_cast<std::size_t>(lda);
      const float* a2 = A + (i + 2) * static_cast<std::size_t>(lda);
      const float* a3 = A + (i + 3) * static_cast<std::size_t>(lda);
      float* c0 = C + (i + 0) * static_cast<std::size_t>(ldc);
      float* c1 = C + (i + 1) * static_cast<std::size_t>(ldc);
      float* c2 = C + (i + 2) * static_cast<std::size_t>(ldc);
      float* c3 = C + (i + 3) * static_cast<std::size_t>(ldc);
      for (int k = k0; k < k1; ++k) {
        const float x0 = alpha * a0[k];
        const float x1 = alpha * a1[k];
        const float x2 = alpha * a2[k];
        const float x3 = alpha * a3[k];
        const float* b = B + static_cast<std::size_t>(k) * ldb;
        for (int j = 0; j < N; ++j) {
          const float bv = b[j];
          c0[j] += x0 * bv;
          c1[j] += x1 * bv;
          c2[j] += x2 * bv;
          c3[j] += x3 * bv;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* a = A + i * static_cast<std::size_t>(lda);
      float* c = C + i * static_cast<std::size_t>(ldc);
      for (int k = k0; k < k1; ++k) {
        const float x = alpha * a[k];
        const float* b = B + static_cast<std::size_t>(k) * ldb;
        for (int j = 0; j < N; ++j) c[j] += x * b[j];
      }
    }
  }
}

/// Pack op(X) (an M×K logical matrix stored transposed as K×M with leading
/// dimension ld) into a contiguous M×K row-major buffer.
void pack_transposed(const float* X, int ld, int rows, int cols,
                     std::vector<float>& out) {
  // X is cols×rows stored; out(r, c) = X(c, r).
  out.resize(static_cast<std::size_t>(rows) * cols);
  for (int c = 0; c < cols; ++c) {
    const float* src = X + static_cast<std::size_t>(c) * ld;
    float* dst = out.data() + c;
    for (int r = 0; r < rows; ++r) dst[static_cast<std::size_t>(r) * cols] = src[r];
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, int M, int N, int K, float alpha, const float* A,
          int lda, const float* B, int ldb, float beta, float* C, int ldc,
          common::ThreadPool* pool, const GemmTiling& tiling) {
  if (M < 0 || N < 0 || K < 0)
    throw std::invalid_argument("gemm: negative dimension");
  if (M == 0 || N == 0) return;

  if (obs::Recorder* rec = obs::global()) {
    rec->metrics().counter("ml.gemm.calls").add(1);
    rec->metrics().counter("ml.gemm.flops")
        .add(2ull * static_cast<std::uint64_t>(M) *
             static_cast<std::uint64_t>(N) * static_cast<std::uint64_t>(K));
  }

  // Normalize to the NN case by packing transposed operands once.
  std::vector<float> a_pack, b_pack;
  if (ta == Trans::Yes) {
    // Stored K×M (lda); pack to M×K.
    pack_transposed(A, lda, M, K, a_pack);
    A = a_pack.data();
    lda = K;
  }
  if (tb == Trans::Yes) {
    // Stored N×K (ldb); pack to K×N.
    pack_transposed(B, ldb, K, N, b_pack);
    B = b_pack.data();
    ldb = N;
  }
  if (K == 0) {
    // Pure beta scaling.
    gemm_rows_nn(0, static_cast<std::size_t>(M), N, 0, alpha, A, lda, B, ldb,
                 beta, C, ldc, tiling);
    return;
  }

  const std::size_t mc = static_cast<std::size_t>(std::max(1, tiling.mc));
  const std::size_t blocks = (static_cast<std::size_t>(M) + mc - 1) / mc;
  auto run_block = [&](std::size_t blk) {
    const std::size_t i0 = blk * mc;
    const std::size_t i1 = std::min<std::size_t>(M, i0 + mc);
    gemm_rows_nn(i0, i1, N, K, alpha, A, lda, B, ldb, beta, C, ldc, tiling);
  };
  if (pool && pool->size() > 1 && blocks > 1) {
    pool->parallel_for(0, blocks, run_block, 1);
  } else {
    for (std::size_t blk = 0; blk < blocks; ++blk) run_block(blk);
  }
}

void gemm_naive(Trans ta, Trans tb, int M, int N, int K, float alpha,
                const float* A, int lda, const float* B, int ldb, float beta,
                float* C, int ldc) {
  auto a_at = [&](int i, int k) {
    return ta == Trans::No ? A[static_cast<std::size_t>(i) * lda + k]
                           : A[static_cast<std::size_t>(k) * lda + i];
  };
  auto b_at = [&](int k, int j) {
    return tb == Trans::No ? B[static_cast<std::size_t>(k) * ldb + j]
                           : B[static_cast<std::size_t>(j) * ldb + k];
  };
  for (int i = 0; i < M; ++i) {
    for (int j = 0; j < N; ++j) {
      float acc = beta == 0.0f ? 0.0f : beta * C[static_cast<std::size_t>(i) * ldc + j];
      for (int k = 0; k < K; ++k) acc += alpha * a_at(i, k) * b_at(k, j);
      C[static_cast<std::size_t>(i) * ldc + j] = acc;
    }
  }
}

common::ThreadPool* set_compute_pool(common::ThreadPool* pool) {
  return g_compute_pool.exchange(pool);
}

common::ThreadPool* compute_pool() { return g_compute_pool.load(); }

}  // namespace impeccable::ml
