#include "impeccable/ml/optim.hpp"

#include <algorithm>
#include <cmath>

namespace impeccable::ml {

Sgd::Sgd(std::vector<Param> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  for (auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void Sgd::apply() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& v = velocity_[k];
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    for (std::size_t i = 0; i < w.size(); ++i) {
      v[i] = momentum_ * v[i] - lr_ * g[i];
      w[i] += v[i];
    }
  }
}

Adam::Adam(std::vector<Param> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::apply() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    for (std::size_t i = 0; i < w.size(); ++i) {
      m_[k][i] = beta1_ * m_[k][i] + (1 - beta1_) * g[i];
      v_[k][i] = beta2_ * v_[k][i] + (1 - beta2_) * g[i] * g[i];
      const float mh = m_[k][i] / bc1;
      const float vh = v_[k][i] / bc2;
      w[i] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

RmsProp::RmsProp(std::vector<Param> params, float lr, float rho, float eps)
    : Optimizer(std::move(params)), lr_(lr), rho_(rho), eps_(eps) {
  for (auto& p : params_) sq_.emplace_back(p.value->shape());
}

void RmsProp::apply() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    for (std::size_t i = 0; i < w.size(); ++i) {
      sq_[k][i] = rho_ * sq_[k][i] + (1 - rho_) * g[i] * g[i];
      w[i] -= lr_ * g[i] / (std::sqrt(sq_[k][i]) + eps_);
    }
  }
}

Adadelta::Adadelta(std::vector<Param> params, float rho, float eps)
    : Optimizer(std::move(params)), rho_(rho), eps_(eps) {
  for (auto& p : params_) {
    eg2_.emplace_back(p.value->shape());
    ex2_.emplace_back(p.value->shape());
  }
}

void Adadelta::apply() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    for (std::size_t i = 0; i < w.size(); ++i) {
      eg2_[k][i] = rho_ * eg2_[k][i] + (1 - rho_) * g[i] * g[i];
      const float dx = -std::sqrt(ex2_[k][i] + eps_) /
                       std::sqrt(eg2_[k][i] + eps_) * g[i];
      ex2_[k][i] = rho_ * ex2_[k][i] + (1 - rho_) * dx * dx;
      w[i] += dx;
    }
  }
}

void clip_weights(const std::vector<Param>& params, float c) {
  for (const auto& p : params)
    for (std::size_t i = 0; i < p.value->size(); ++i)
      (*p.value)[i] = std::clamp((*p.value)[i], -c, c);
}

}  // namespace impeccable::ml
