#pragma once
// Losses: MSE / BCE for the surrogate, Chamfer distance for the 3D-AAE
// point-cloud reconstruction (Sec. 5.1.4).

#include <vector>

#include "impeccable/common/vec3.hpp"
#include "impeccable/ml/tensor.hpp"

namespace impeccable::ml {

struct LossValue {
  float value = 0.0f;
  Tensor grad;  ///< dL/d(prediction), same shape as the prediction
};

/// Mean squared error over all elements.
LossValue mse_loss(const Tensor& pred, const Tensor& target);

/// Binary cross entropy; predictions must be in (0, 1).
LossValue bce_loss(const Tensor& pred, const Tensor& target);

/// Symmetric Chamfer distance between batched point sets, both (N, P, 3):
///   mean_i min_j |a_i - b_j|^2 + mean_j min_i |a_i - b_j|^2
/// Gradient is with respect to `pred`.
LossValue chamfer_loss(const Tensor& pred, const Tensor& target);

}  // namespace impeccable::ml
