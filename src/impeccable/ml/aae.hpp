#pragma once
// 3D adversarial autoencoder over Cα point clouds — the S2 model
// (Sec. 5.1.4 / 7.1.3): PointNet encoder, Chamfer reconstruction loss, and a
// Wasserstein critic that matches the latent distribution to a Gaussian
// prior (σ = 0.2, as in the paper).
//
// Substitution note (DESIGN.md): the paper's WGAN uses a gradient penalty;
// with manual backprop a double gradient is impractical, so we use the
// original WGAN weight clipping, which enforces the same 1-Lipschitz
// constraint and preserves the latent-matching behaviour.

#include <cstdint>
#include <vector>

#include "impeccable/common/vec3.hpp"
#include "impeccable/ml/layers.hpp"
#include "impeccable/ml/optim.hpp"

namespace impeccable::ml {

/// PointNet-lite: shared per-point MLP -> max pool over points -> latent.
class PointNetEncoder : public Layer {
 public:
  PointNetEncoder(int points, int latent_dim, int hidden, common::Rng& rng);

  /// x: (N, P, 3) -> (N, latent).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param> params() override;

  int points() const { return points_; }
  int latent_dim() const { return latent_; }

 private:
  int points_, latent_, hidden_;
  Dense point_mlp1_, point_mlp2_;
  ReLU relu1_, relu2_;
  Dense head_;
  std::vector<int> argmax_;  ///< pooling provenance, (N * hidden)
  int batch_ = 0;
};

struct AaeOptions {
  int latent_dim = 16;
  int hidden = 64;
  int epochs = 15;
  int batch_size = 16;
  float learning_rate = 1e-3f;  ///< RMSprop, as in the paper
  float recon_scale = 0.5f;     ///< paper: "reconstruction loss scaled by 0.5"
  float adv_scale = 0.05f;
  int critic_steps = 2;
  float weight_clip = 0.05f;
  float prior_std = 0.2f;       ///< paper: Gaussian prior with σ = 0.2
  float validation_fraction = 0.2f;
  std::uint64_t seed = 0xaae3dULL;
};

struct AaeEpochStats {
  float reconstruction = 0.0f;   ///< mean Chamfer on training batches
  float validation = 0.0f;       ///< Chamfer on the validation split
  float critic = 0.0f;           ///< mean Wasserstein critic loss
};

struct AaeTrainReport {
  std::vector<AaeEpochStats> epochs;
};

class Aae3d {
 public:
  /// `points` is the fixed cloud size (e.g. protein residue count).
  Aae3d(int points, const AaeOptions& opts = {});

  /// Train on centered point clouds (all of size `points`).
  AaeTrainReport train(const std::vector<std::vector<common::Vec3>>& clouds);

  /// Latent embedding of one cloud.
  std::vector<double> embed(const std::vector<common::Vec3>& cloud);
  std::vector<std::vector<double>> embed_batch(
      const std::vector<std::vector<common::Vec3>>& clouds);

  /// Chamfer reconstruction error of one cloud (novelty/outlier signal).
  double reconstruction_error(const std::vector<common::Vec3>& cloud);

  const AaeOptions& options() const { return opts_; }
  int points() const { return points_; }

  /// Flops for one training sample forward+backward (Table 3 S2 model).
  std::uint64_t flops_per_sample() const;

  /// Persist / restore all three networks (encoder, decoder, critic) as
  /// `<prefix>.enc` / `.dec` / `.critic`. Architectures must match on load.
  void save_weights(const std::string& prefix);
  void load_weights(const std::string& prefix);

 private:
  Tensor to_tensor(const std::vector<std::vector<common::Vec3>>& clouds,
                   std::size_t begin, std::size_t count) const;

  int points_;
  AaeOptions opts_;
  common::Rng rng_;
  PointNetEncoder encoder_;
  Sequential decoder_;
  Sequential critic_;
  std::unique_ptr<Optimizer> enc_opt_, dec_opt_, critic_opt_;
};

}  // namespace impeccable::ml
