#pragma once
// ML1 — the deep-learning docking-score emulator (Sec. 5.1.2 / 6.1.1).
//
// A small residual CNN over 2D molecule depictions regresses the docking
// score, mapped into [0, 1] with "higher score = lower binding energy =
// higher docking probability" exactly as the paper defines its targets.
// The paper's network is a ResNet-50 on large images; ours is a scaled-down
// residual CNN with the same role, trainable in seconds on CPU.

#include <cstdint>
#include <memory>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/ml/layers.hpp"
#include "impeccable/ml/optim.hpp"

namespace impeccable::ml {

struct SurrogateOptions {
  int channels = 4, height = 32, width = 32;
  int base_filters = 8;
  int epochs = 6;
  int batch_size = 16;
  /// Inference chunk size for predict_batch (outputs are invariant to it;
  /// larger chunks amortize per-forward overhead at more scratch memory).
  int predict_chunk = 64;
  float learning_rate = 1e-3f;
  float validation_fraction = 0.2f;
  std::uint64_t seed = 0x5002d09a7eULL;
};

struct EpochStats {
  float train_loss = 0.0f;
  float validation_loss = 0.0f;
};

struct TrainReport {
  std::vector<EpochStats> epochs;
};

/// Map a docking score (binding energy, lower = better) into the [0, 1]
/// training target given the score range of the training set.
float score_to_label(double dock_score, double best, double worst);

class SurrogateModel {
 public:
  explicit SurrogateModel(const SurrogateOptions& opts = {});

  /// Train on depiction images + [0, 1] labels. Data is shuffled and split
  /// into train/validation deterministically from the seed.
  TrainReport train(const std::vector<chem::Image>& images,
                    const std::vector<float>& labels);

  /// Predicted label in [0, 1] (higher = more likely strong binder).
  ///
  /// Thread safety: predict/predict_batch are const and run the network's
  /// cache-free infer() path with per-call scratch, so any number of threads
  /// may score through one model concurrently (the serving path depends on
  /// this). Outputs are bitwise identical to the training-time forward.
  /// train() mutates the weights and must not overlap with predictions.
  float predict(const chem::Image& image) const;
  std::vector<float> predict_batch(const std::vector<chem::Image>& images) const;

  const SurrogateOptions& options() const { return opts_; }

  /// Analytic flop count for one forward pass on one image (Table 3's ML1
  /// work-unit model).
  std::uint64_t flops_per_image() const;

  /// Persist / restore the network weights (Sec. 6.1.1: deployment loads
  /// "the weights from the pre-trained model file"). The loading model must
  /// have been constructed with the same architecture options; mismatches
  /// throw std::runtime_error.
  void save_weights(const std::string& path);
  void load_weights(const std::string& path);

 private:
  /// Pack `count` images starting at `begin` into `x`, reusing its buffer
  /// when the shape already matches (one scratch Tensor serves all chunks).
  void to_tensor(const std::vector<chem::Image>& images, std::size_t begin,
                 std::size_t count, Tensor& x) const;

  SurrogateOptions opts_;
  Sequential net_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace impeccable::ml
