#pragma once
// Sharded inference dataset + prefetching pipeline — the ML1 deployment
// I/O path of Sec. 6.1.1:
//
//   "the ULT911 dataset ... supplied as a collection of 12,648 files with
//    10,000 ligands each ... we used gzip to compress each file ... We use
//    MPI to distribute the individual files evenly across a large number of
//    GPUs ... each rank utilizes multiple data loader processes where each
//    is employing 2 prefetching threads: the first one loads compressed
//    files ... and decompresses them on the fly while the second iterates
//    through the uncompressed data ... and feeds them to the neural network
//    ... careful exception handling to make the setup resilient against
//    sporadic IO errors."
//
// We reproduce the full path: depiction images are quantized to uint8 and
// run-length compressed into shard files on disk; ranks (threads) take an
// even partition of the shards; per rank, a loader thread reads+decompresses
// into a bounded queue while the consumer feeds the surrogate; corrupt
// shards are skipped and counted instead of killing the run; results gather
// on "rank 0" ordered by ligand id.

#include <cstdint>
#include <string>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/ml/surrogate.hpp"

namespace impeccable::ml {

/// One record of a shard: a ligand id + its depiction image.
struct ShardRecord {
  std::string id;
  chem::Image image;
};

/// Byte-level run-length coding used for the quantized image planes.
/// (The paper uses gzip; RLE keeps us dependency-free while exercising the
/// same compress-on-write / decompress-on-read path. Typical depictions are
/// sparse and compress ~8-14x, matching the paper's reported 14.2x.)
std::vector<std::uint8_t> rle_compress(const std::vector<std::uint8_t>& raw);
std::vector<std::uint8_t> rle_decompress(const std::vector<std::uint8_t>& in);

/// Serialize records into a compressed shard blob / parse one back.
/// Throws std::runtime_error on malformed input.
std::vector<std::uint8_t> encode_shard(const std::vector<ShardRecord>& records);
std::vector<ShardRecord> decode_shard(const std::vector<std::uint8_t>& blob);

/// Write shards of `per_shard` records under `directory` (created if
/// needed); returns the file paths ("shard-NNNN.bin").
std::vector<std::string> write_shards(const std::vector<ShardRecord>& records,
                                      std::size_t per_shard,
                                      const std::string& directory);

struct InferenceOptions {
  int ranks = 2;            ///< simulated MPI ranks (threads)
  int queue_capacity = 4;   ///< decompressed shards buffered per rank
};

struct InferenceOutput {
  /// (ligand id, predicted score), gathered and sorted by id on rank 0.
  std::vector<std::pair<std::string, float>> scores;
  std::size_t shards_processed = 0;
  std::size_t shards_failed = 0;  ///< skipped due to IO/parse errors
};

/// Run the distributed inference pipeline over shard files: shards are
/// partitioned round-robin across ranks; each rank runs a loader thread
/// (read + decompress into a bounded queue) and a consumer feeding its own
/// surrogate replica (models share options/seed, so replicas are identical —
/// as when every rank loads the same checkpoint).
InferenceOutput run_sharded_inference(const std::vector<std::string>& shard_paths,
                                      const SurrogateOptions& model_options,
                                      const InferenceOptions& opts = {});

}  // namespace impeccable::ml
