#include "impeccable/ml/tensor.hpp"

#include <algorithm>
#include <numeric>

namespace impeccable::ml {

namespace {
std::size_t total(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: nonpositive dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(total(shape_), 0.0f) {}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, common::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.gauss(0.0, stddev));
  return t;
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (total(shape) != size())
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

Tensor& Tensor::operator+=(const Tensor& o) {
  check_same_shape(*this, o, "Tensor::operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

std::string Tensor::shape_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + ")";
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* where) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string(where) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
}

}  // namespace impeccable::ml
