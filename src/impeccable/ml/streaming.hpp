#pragma once
// Streaming featurization and external-memory selection for ML1.
//
// The paper's ML1 stage scores 1e8–1e9 ligands per iteration (Sec. 6.1.1);
// at that scale neither the depictions nor the score vector fit in RAM.
// This header is the out-of-core toolkit the stage (and the scale replay
// bench) is built from:
//
//   score_ligands    drives a LigandSource window-by-window through
//                    depict -> SurrogateModel::predict_batch. Resident
//                    memory is one window of images; each window is
//                    release()d back to the source afterwards.
//                    predict_batch is chunk-invariant, so windowing never
//                    changes a score.
//   ScoreSpill       the per-iteration score array, RAM-backed for
//                    in-memory runs and file-backed (pread/pwrite, bounded
//                    buffers) for out-of-core runs. Random access serves
//                    the auto-budget validation pairs; sequential scans
//                    serve selection.
//   StreamingTopK    bounded-heap exact top-k with the determinism
//                    contract spelled out in candidate_better: higher score
//                    wins, ties break to the lower library index. The
//                    result is identical to fully sorting the score vector
//                    — independent of scan order, window size, or how
//                    partial heaps are merged.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "impeccable/chem/ligand_source.hpp"
#include "impeccable/ml/surrogate.hpp"

namespace impeccable::ml {

/// One retained candidate of a streaming selection.
struct TopCandidate {
  float score = 0.0f;
  std::uint64_t index = 0;  ///< library ordinal
};

/// Strict selection order: higher score first, ties to the lower library
/// index. This total order is what makes streaming selection deterministic.
inline bool candidate_better(const TopCandidate& a, const TopCandidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

/// Bounded-size exact top-k accumulator: O(k) memory, O(log k) per offer.
class StreamingTopK {
 public:
  explicit StreamingTopK(std::size_t k) : k_(k) {}

  void offer(float score, std::uint64_t index);
  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }

  /// Drain the heap, best candidate first.
  std::vector<TopCandidate> take_sorted();

  /// Exact global top-k from independently accumulated partial results
  /// (each part already best-first or not — order does not matter).
  static std::vector<TopCandidate> merge_sorted(
      std::vector<std::vector<TopCandidate>> parts, std::size_t k);

 private:
  std::size_t k_;
  /// Min-heap on candidate_better: heap_[0] is the worst kept candidate.
  std::vector<TopCandidate> heap_;
};

/// External-memory score array. Writers cover disjoint ranges; reads are
/// random access or chunked scans. The file-backed flavor owns its spill
/// file and unlinks it on destruction.
class ScoreSpill {
 public:
  static ScoreSpill in_memory(std::size_t n);
  static ScoreSpill file_backed(std::size_t n, const std::string& path);

  ScoreSpill() = default;
  ~ScoreSpill();
  ScoreSpill(ScoreSpill&&) noexcept;
  ScoreSpill& operator=(ScoreSpill&&) noexcept;
  ScoreSpill(const ScoreSpill&) = delete;
  ScoreSpill& operator=(const ScoreSpill&) = delete;

  std::size_t size() const { return n_; }
  bool file_backed_storage() const { return fd_ >= 0; }

  void write(std::size_t begin, const float* v, std::size_t n);
  void read(std::size_t begin, float* out, std::size_t n) const;
  float at(std::size_t i) const;

 private:
  std::size_t n_ = 0;
  std::vector<float> ram_;
  int fd_ = -1;
  std::string path_;
};

/// Stream ligands [begin, end) of `source` through depiction and
/// `model.predict_batch` in windows of `window` ligands. Scores land in
/// `spill` at their library ordinal (if non-null) and feed `topk` (if
/// non-null). Returns the number of ligands scored.
std::size_t score_ligands(const chem::LigandSource& source,
                          const SurrogateModel& model, std::size_t begin,
                          std::size_t end, std::size_t window,
                          ScoreSpill* spill, StreamingTopK* topk = nullptr);

/// Exact top-k over a spill via a chunked scan (bounded buffer) through a
/// StreamingTopK — the external-memory replacement for sorting the whole
/// score vector.
std::vector<TopCandidate> select_top_k(const ScoreSpill& spill, std::size_t k,
                                       std::size_t chunk = std::size_t{1}
                                                           << 20);

}  // namespace impeccable::ml
