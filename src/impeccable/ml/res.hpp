#pragma once
// Regression Enrichment Surface (Clyde et al.; paper Sec. 5.1.2 & Fig. 4).
//
// RES(x, y): screen the top x-fraction of the library by *predicted* score
// and measure what fraction of the *true* top y-fraction it captures.
// The Fig. 4 reading "δ = u·10⁻³ captures ~50% of the top 10⁻⁴" is
// res.coverage(1e-3, 1e-4) ≈ 0.5.

#include <span>
#include <string>
#include <vector>

namespace impeccable::ml {

class EnrichmentSurface {
 public:
  /// `predicted` and `truth` are scores where HIGHER = better (use negated
  /// binding energies or [0,1] labels). Sizes must match and be non-empty.
  EnrichmentSurface(std::span<const double> predicted,
                    std::span<const double> truth);

  /// Fraction of the true top `top_fraction` found within the predicted top
  /// `screen_fraction`. Both in (0, 1]; at least one item is always taken.
  double coverage(double screen_fraction, double top_fraction) const;

  /// Evaluate a log-spaced grid (the Fig. 4 surface): rows = top fractions,
  /// cols = screen fractions.
  struct Grid {
    std::vector<double> screen_fractions;
    std::vector<double> top_fractions;
    std::vector<std::vector<double>> coverage;  ///< [top][screen]
  };
  Grid grid(int points_per_decade = 2, double min_fraction = 1e-4) const;

  std::size_t size() const { return order_pred_.size(); }

  /// The paper's budgeting question inverted (Sec. 7.1.1: "The RES plot also
  /// provides a quantitative estimate of the number of compounds we have to
  /// sample"): the smallest screening fraction whose predicted-top slice
  /// covers at least `min_coverage` of the true top `top_fraction`.
  /// Returns 1.0 if even full screening is needed.
  double budget_for(double top_fraction, double min_coverage) const;

 private:
  std::vector<std::size_t> order_pred_;  ///< indices by predicted, best first
  std::vector<std::size_t> rank_true_;   ///< true rank of each index (0 = best)
};

/// Render a grid as an aligned text table (printed by bench/fig4_res).
std::string to_text(const EnrichmentSurface::Grid& grid);

}  // namespace impeccable::ml
