#include "impeccable/ml/shards.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace impeccable::ml {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& at) {
  if (at + 4 > in.size()) throw std::runtime_error("shard: truncated u32");
  const std::uint32_t v = in[at] | (in[at + 1] << 8) | (in[at + 2] << 16) |
                          (static_cast<std::uint32_t>(in[at + 3]) << 24);
  at += 4;
  return v;
}

constexpr std::uint32_t kMagic = 0x53504d49;  // "IMPS"

}  // namespace

std::vector<std::uint8_t> rle_compress(const std::vector<std::uint8_t>& raw) {
  // (value, count) pairs with count in [1, 255].
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() / 4 + 16);
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::uint8_t v = raw[i];
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == v && run < 255) ++run;
    out.push_back(v);
    out.push_back(static_cast<std::uint8_t>(run));
    i += run;
  }
  return out;
}

std::vector<std::uint8_t> rle_decompress(const std::vector<std::uint8_t>& in) {
  if (in.size() % 2 != 0) throw std::runtime_error("rle: odd input size");
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const std::uint8_t v = in[i];
    const std::uint8_t run = in[i + 1];
    if (run == 0) throw std::runtime_error("rle: zero run length");
    out.insert(out.end(), run, v);
  }
  return out;
}

std::vector<std::uint8_t> encode_shard(const std::vector<ShardRecord>& records) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, kMagic);
  put_u32(payload, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    if (r.id.size() > 0xffff) throw std::invalid_argument("shard: id too long");
    put_u32(payload, static_cast<std::uint32_t>(r.id.size()));
    payload.insert(payload.end(), r.id.begin(), r.id.end());
    put_u32(payload, static_cast<std::uint32_t>(r.image.channels));
    put_u32(payload, static_cast<std::uint32_t>(r.image.height));
    put_u32(payload, static_cast<std::uint32_t>(r.image.width));
    for (float v : r.image.data) {
      const float c = std::clamp(v, 0.0f, 1.0f);
      payload.push_back(static_cast<std::uint8_t>(c * 255.0f + 0.5f));
    }
  }
  return rle_compress(payload);
}

std::vector<ShardRecord> decode_shard(const std::vector<std::uint8_t>& blob) {
  const auto payload = rle_decompress(blob);
  std::size_t at = 0;
  if (get_u32(payload, at) != kMagic)
    throw std::runtime_error("shard: bad magic");
  const std::uint32_t count = get_u32(payload, at);
  std::vector<ShardRecord> out;
  out.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    ShardRecord r;
    const std::uint32_t id_len = get_u32(payload, at);
    if (at + id_len > payload.size())
      throw std::runtime_error("shard: truncated id");
    r.id.assign(payload.begin() + static_cast<long>(at),
                payload.begin() + static_cast<long>(at + id_len));
    at += id_len;
    r.image.channels = static_cast<int>(get_u32(payload, at));
    r.image.height = static_cast<int>(get_u32(payload, at));
    r.image.width = static_cast<int>(get_u32(payload, at));
    if (r.image.channels <= 0 || r.image.height <= 0 || r.image.width <= 0 ||
        r.image.channels > 64 || r.image.height > 4096 || r.image.width > 4096)
      throw std::runtime_error("shard: implausible image shape");
    const std::size_t n = static_cast<std::size_t>(r.image.channels) *
                          r.image.height * r.image.width;
    if (at + n > payload.size())
      throw std::runtime_error("shard: truncated image");
    r.image.data.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      r.image.data[i] = static_cast<float>(payload[at + i]) / 255.0f;
    at += n;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<std::string> write_shards(const std::vector<ShardRecord>& records,
                                      std::size_t per_shard,
                                      const std::string& directory) {
  if (per_shard == 0) throw std::invalid_argument("write_shards: per_shard == 0");
  std::filesystem::create_directories(directory);
  std::vector<std::string> paths;
  std::size_t shard_index = 0;
  for (std::size_t at = 0; at < records.size(); at += per_shard) {
    const std::size_t n = std::min(per_shard, records.size() - at);
    const std::vector<ShardRecord> slice(records.begin() + static_cast<long>(at),
                                         records.begin() + static_cast<long>(at + n));
    const auto blob = encode_shard(slice);
    char name[64];
    std::snprintf(name, sizeof name, "shard-%04zu.bin", shard_index++);
    const std::string path = directory + "/" + name;
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("write_shards: cannot open " + path);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    paths.push_back(path);
  }
  return paths;
}

namespace {

/// Bounded single-producer single-consumer queue of decoded shards.
class ShardQueue {
 public:
  explicit ShardQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(std::vector<ShardRecord> shard) {
    std::unique_lock lock(m_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_; });
    q_.push_back(std::move(shard));
    not_empty_.notify_one();
  }
  void close() {
    std::lock_guard lock(m_);
    closed_ = true;
    not_empty_.notify_all();
  }
  bool pop(std::vector<ShardRecord>& out) {
    std::unique_lock lock(m_);
    not_empty_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

 private:
  std::size_t capacity_;
  std::mutex m_;
  std::condition_variable not_full_, not_empty_;
  std::deque<std::vector<ShardRecord>> q_;
  bool closed_ = false;
};

}  // namespace

InferenceOutput run_sharded_inference(const std::vector<std::string>& shard_paths,
                                      const SurrogateOptions& model_options,
                                      const InferenceOptions& opts) {
  const int ranks = std::max(1, opts.ranks);
  InferenceOutput out;
  std::mutex gather_mutex;

  std::vector<std::thread> rank_threads;
  rank_threads.reserve(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    rank_threads.emplace_back([&, rank] {
      // Round-robin shard partition for this rank ("distribute the
      // individual files evenly").
      std::vector<std::string> mine;
      for (std::size_t s = static_cast<std::size_t>(rank); s < shard_paths.size();
           s += static_cast<std::size_t>(ranks))
        mine.push_back(shard_paths[s]);

      ShardQueue queue(static_cast<std::size_t>(opts.queue_capacity));
      std::size_t ok = 0, failed = 0;

      // Prefetching loader thread: read + decompress, skip corrupt shards.
      std::thread loader([&] {
        for (const auto& path : mine) {
          try {
            std::ifstream f(path, std::ios::binary);
            if (!f) throw std::runtime_error("cannot open " + path);
            std::vector<std::uint8_t> blob(
                (std::istreambuf_iterator<char>(f)),
                std::istreambuf_iterator<char>());
            queue.push(decode_shard(blob));
            ++ok;
          } catch (const std::exception&) {
            ++failed;  // resilient to sporadic IO errors
          }
        }
        queue.close();
      });

      // Consumer: feed the network as shards arrive.
      SurrogateModel model(model_options);
      std::vector<std::pair<std::string, float>> local;
      std::vector<ShardRecord> shard;
      while (queue.pop(shard)) {
        std::vector<chem::Image> images;
        images.reserve(shard.size());
        for (auto& r : shard) images.push_back(std::move(r.image));
        const auto preds = model.predict_batch(images);
        for (std::size_t i = 0; i < shard.size(); ++i)
          local.emplace_back(std::move(shard[i].id), preds[i]);
      }
      loader.join();

      // Gather on "rank 0".
      std::lock_guard lock(gather_mutex);
      out.shards_processed += ok;
      out.shards_failed += failed;
      out.scores.insert(out.scores.end(),
                        std::make_move_iterator(local.begin()),
                        std::make_move_iterator(local.end()));
    });
  }
  for (auto& t : rank_threads) t.join();

  std::sort(out.scores.begin(), out.scores.end());
  return out;
}

}  // namespace impeccable::ml
