#pragma once
// Neural-network layers with explicit forward/backward passes.
//
// Each layer caches what it needs from the forward pass; backward() takes
// dL/d(output) and returns dL/d(input) while accumulating parameter
// gradients. Optimizers consume the (value, grad) parameter pairs.

#include <memory>
#include <string>
#include <vector>

#include "impeccable/ml/tensor.hpp"

namespace impeccable::ml {

struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  /// Inference-only forward pass: bitwise-identical outputs to forward()
  /// (both run the same compute code), but const — nothing is cached for a
  /// later backward(), so concurrent infer() calls on a shared layer are
  /// data-race-free. The serving path (serve::InferenceServer) and any
  /// multi-threaded predict depend on this. Default throws for layers that
  /// have no inference semantics.
  virtual Tensor infer(const Tensor& x) const;
  virtual std::vector<Param> params() { return {}; }
  void zero_grad();
};

/// Fully connected: (N, in) -> (N, out).
class Dense : public Layer {
 public:
  Dense(int in, int out, common::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param> params() override;

  Tensor weight;  ///< (out, in)
  Tensor bias;    ///< (out)
  Tensor weight_grad, bias_grad;

 private:
  Tensor apply(const Tensor& x) const;  ///< shared forward/infer compute
  Tensor input_;
};

/// Elementwise ReLU.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  Tensor mask_;
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  Tensor output_;
};

/// 3x3 same-padding convolution, stride 1: (N, Cin, H, W) -> (N, Cout, H, W).
class Conv3x3 : public Layer {
 public:
  Conv3x3(int in_channels, int out_channels, common::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param> params() override;

  Tensor weight;  ///< (Cout, Cin, 3, 3)
  Tensor bias;    ///< (Cout)
  Tensor weight_grad, bias_grad;

 private:
  Tensor apply(const Tensor& x) const;  ///< shared forward/infer compute
  Tensor input_;
};

/// 2x2 max pooling, stride 2: (N, C, H, W) -> (N, C, H/2, W/2).
class MaxPool2 : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  /// Shared forward/infer compute; `argmax` may be null (inference).
  Tensor apply(const Tensor& x, std::vector<int>* argmax) const;
  std::vector<int> argmax_;
  std::vector<int> in_shape_;
};

/// (N, C, H, W) -> (N, C*H*W).
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;

 private:
  std::vector<int> in_shape_;
};

/// Residual block: y = ReLU(x + Conv(ReLU(Conv(x)))). Channel-preserving —
/// the skip is the identity (the ResNet basic block of the ML1 surrogate).
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int channels, common::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param> params() override;

 private:
  Conv3x3 conv1_, conv2_;
  ReLU relu1_, relu_out_;
};

/// Serialize every parameter tensor of a layer to a binary file
/// (shape-checked on load; mismatched architectures throw).
void save_parameters(Layer& layer, const std::string& path);
void load_parameters(Layer& layer, const std::string& path);

/// Layer pipeline.
class Sequential : public Layer {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor infer(const Tensor& x) const override;
  std::vector<Param> params() override;
  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace impeccable::ml
