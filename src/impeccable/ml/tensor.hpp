#pragma once
// Minimal dense float tensor for the from-scratch NN library.
//
// Substitution note (DESIGN.md): stands in for PyTorch/TensorRT. Layers do
// explicit forward/backward passes (no autograd); everything runs on CPU in
// FP32. Shapes follow PyTorch conventions: images are (N, C, H, W), dense
// activations are (N, D), point clouds are (N, P, 3).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "impeccable/common/checks.hpp"
#include "impeccable/common/rng.hpp"

namespace impeccable::ml {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape)
      : Tensor(std::vector<int>(shape)) {}

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// Kaiming/He-style normal init scaled by fan-in.
  static Tensor randn(std::vector<int> shape, common::Rng& rng, float stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) {
    IMP_DCHECK(i < data_.size(), "flat index %zu, size %zu", i, data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    IMP_DCHECK(i < data_.size(), "flat index %zu, size %zu", i, data_.size());
    return data_[i];
  }

  /// 2D access (rank-2 tensors). Bounds- and rank-checked in
  /// IMPECCABLE_CHECKS builds (IMP_DCHECK; free otherwise).
  float& at(int i, int j) {
    check2(i, j);
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  float at(int i, int j) const {
    check2(i, j);
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  /// 4D access (rank-4 tensors, NCHW); checked like the 2D form.
  float& at(int n, int c, int h, int w) {
    check4(n, c, h, w);
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] + w];
  }
  float at(int n, int c, int h, int w) const {
    check4(n, c, h, w);
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] + w];
  }

  /// Reinterpret with a new shape of identical total size.
  Tensor reshaped(std::vector<int> shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  Tensor& operator+=(const Tensor& o);
  Tensor& operator*=(float s);

  std::string shape_string() const;

 private:
  void check2(int i, int j) const {
    IMP_DCHECK(rank() == 2, "2D at() on rank-%d tensor %s", rank(),
               shape_string().c_str());
    IMP_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
               "index (%d, %d) out of bounds for %s", i, j,
               shape_string().c_str());
  }
  void check4(int n, int c, int h, int w) const {
    IMP_DCHECK(rank() == 4, "4D at() on rank-%d tensor %s", rank(),
               shape_string().c_str());
    IMP_DCHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
                   h < shape_[2] && w >= 0 && w < shape_[3],
               "index (%d, %d, %d, %d) out of bounds for %s", n, c, h, w,
               shape_string().c_str());
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Throws unless the two shapes match exactly.
void check_same_shape(const Tensor& a, const Tensor& b, const char* where);

}  // namespace impeccable::ml
