#pragma once
// Minimal dense float tensor for the from-scratch NN library.
//
// Substitution note (DESIGN.md): stands in for PyTorch/TensorRT. Layers do
// explicit forward/backward passes (no autograd); everything runs on CPU in
// FP32. Shapes follow PyTorch conventions: images are (N, C, H, W), dense
// activations are (N, D), point clouds are (N, P, 3).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "impeccable/common/rng.hpp"

namespace impeccable::ml {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape)
      : Tensor(std::vector<int>(shape)) {}

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// Kaiming/He-style normal init scaled by fan-in.
  static Tensor randn(std::vector<int> shape, common::Rng& rng, float stddev);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2D access (rank-2 tensors).
  float& at(int i, int j) {
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  float at(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  /// 4D access (rank-4 tensors, NCHW).
  float& at(int n, int c, int h, int w) {
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] + w];
  }
  float at(int n, int c, int h, int w) const {
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] + w];
  }

  /// Reinterpret with a new shape of identical total size.
  Tensor reshaped(std::vector<int> shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  Tensor& operator+=(const Tensor& o);
  Tensor& operator*=(float s);

  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Throws unless the two shapes match exactly.
void check_same_shape(const Tensor& a, const Tensor& b, const char* where);

}  // namespace impeccable::ml
