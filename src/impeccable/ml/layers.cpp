#include "impeccable/ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>

#include "impeccable/ml/gemm.hpp"

namespace impeccable::ml {

void Layer::zero_grad() {
  for (auto p : params()) p.grad->zero();
}

Tensor Layer::infer(const Tensor&) const {
  throw std::logic_error("Layer::infer: layer has no inference-only path");
}

// ---------------------------------------------------------------- Dense

Dense::Dense(int in, int out, common::Rng& rng)
    : weight(Tensor::randn({out, in}, rng,
                           std::sqrt(2.0f / static_cast<float>(in)))),
      bias({out}),
      weight_grad({out, in}),
      bias_grad({out}) {}

Tensor Dense::apply(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != weight.dim(1))
    throw std::invalid_argument("Dense::forward: bad input shape " + x.shape_string());
  const int n = x.dim(0), in = weight.dim(1), out = weight.dim(0);
  Tensor y({n, out});
  // y = bias (broadcast over rows) + x · W^T, accumulated ascending-k — the
  // same bias-first order as the original per-element loop.
  for (int i = 0; i < n; ++i)
    std::copy(bias.data(), bias.data() + out,
              y.data() + static_cast<std::size_t>(i) * out);
  gemm(Trans::No, Trans::Yes, n, out, in, 1.0f, x.data(), in, weight.data(), in,
       1.0f, y.data(), out, compute_pool());
  return y;
}

Tensor Dense::forward(const Tensor& x) {
  Tensor y = apply(x);
  input_ = x;
  return y;
}

Tensor Dense::infer(const Tensor& x) const { return apply(x); }

Tensor Dense::backward(const Tensor& grad_out) {
  const int n = input_.dim(0), in = weight.dim(1), out = weight.dim(0);
  // dL/dx = g · W (accumulates over `out` ascending, as the old o-loop did).
  Tensor grad_in({n, in});
  gemm(Trans::No, Trans::No, n, in, out, 1.0f, grad_out.data(), out,
       weight.data(), in, 0.0f, grad_in.data(), in, compute_pool());
  // dL/dW += g^T · x (accumulates over rows ascending, as the old i-loop did).
  gemm(Trans::Yes, Trans::No, out, in, n, 1.0f, grad_out.data(), out,
       input_.data(), in, 1.0f, weight_grad.data(), in, compute_pool());
  for (int i = 0; i < n; ++i) {
    const float* gr = grad_out.data() + static_cast<std::size_t>(i) * out;
    for (int o = 0; o < out; ++o) bias_grad[static_cast<std::size_t>(o)] += gr[o];
  }
  return grad_in;
}

std::vector<Param> Dense::params() {
  return {{&weight, &weight_grad}, {&bias, &bias_grad}};
}

// ---------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool on = x[i] > 0.0f;
    mask_[i] = on ? 1.0f : 0.0f;
    y[i] = on ? x[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::infer(const Tensor& x) const {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  check_same_shape(grad_out, mask_, "ReLU::backward");
  Tensor g(grad_out.shape());
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = grad_out[i] * mask_[i];
  return g;
}

// ---------------------------------------------------------------- Sigmoid

Tensor Sigmoid::forward(const Tensor& x) {
  output_ = Tensor(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i)
    output_[i] = 1.0f / (1.0f + std::exp(-x[i]));
  return output_;
}

Tensor Sigmoid::infer(const Tensor& x) const {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor g(grad_out.shape());
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = grad_out[i] * output_[i] * (1.0f - output_[i]);
  return g;
}

// ---------------------------------------------------------------- Conv3x3

namespace {

/// Unfold one image (cin, h, w) into a (cin*9) × (h*w) column matrix for the
/// 3x3 same-padding convolution. Row k = ci*9 + (di+1)*3 + (dj+1) holds the
/// input shifted by (di, dj), zero-padded — the k index matches the
/// (Cout, Cin, 3, 3) weight layout flattened per output channel.
void im2col3x3(const float* x, int cin, int h, int w, float* col) {
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  for (int ci = 0; ci < cin; ++ci) {
    const float* plane = x + static_cast<std::size_t>(ci) * hw;
    for (int di = -1; di <= 1; ++di) {
      for (int dj = -1; dj <= 1; ++dj) {
        float* row = col + static_cast<std::size_t>(ci * 9 + (di + 1) * 3 +
                                                    (dj + 1)) * hw;
        const int j0 = std::max(0, -dj), j1 = std::min(w, w - dj);
        for (int i = 0; i < h; ++i) {
          float* dst = row + static_cast<std::size_t>(i) * w;
          const int ii = i + di;
          if (ii < 0 || ii >= h || j0 >= j1) {
            std::fill(dst, dst + w, 0.0f);
            continue;
          }
          std::fill(dst, dst + j0, 0.0f);
          const float* src = plane + static_cast<std::size_t>(ii) * w;
          std::copy(src + j0 + dj, src + j1 + dj, dst + j0);
          std::fill(dst + j1, dst + w, 0.0f);
        }
      }
    }
  }
}

/// Fold a (cin*9) × (h*w) gradient column matrix back into one image's
/// (cin, h, w) input gradient, summing overlapping taps and dropping the
/// padding positions.
void col2im3x3(const float* col, int cin, int h, int w, float* gx) {
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  for (int ci = 0; ci < cin; ++ci) {
    float* plane = gx + static_cast<std::size_t>(ci) * hw;
    for (int di = -1; di <= 1; ++di) {
      for (int dj = -1; dj <= 1; ++dj) {
        const float* row = col + static_cast<std::size_t>(ci * 9 + (di + 1) * 3 +
                                                          (dj + 1)) * hw;
        const int j0 = std::max(0, -dj), j1 = std::min(w, w - dj);
        for (int i = 0; i < h; ++i) {
          const int ii = i + di;
          if (ii < 0 || ii >= h || j0 >= j1) continue;
          float* dst = plane + static_cast<std::size_t>(ii) * w + dj;
          const float* src = row + static_cast<std::size_t>(i) * w;
          for (int j = j0; j < j1; ++j) dst[j] += src[j];
        }
      }
    }
  }
}

}  // namespace

Conv3x3::Conv3x3(int in_channels, int out_channels, common::Rng& rng)
    : weight(Tensor::randn({out_channels, in_channels, 3, 3}, rng,
                           std::sqrt(2.0f / (9.0f * in_channels)))),
      bias({out_channels}),
      weight_grad({out_channels, in_channels, 3, 3}),
      bias_grad({out_channels}) {}

Tensor Conv3x3::apply(const Tensor& x) const {
  if (x.rank() != 4 || x.dim(1) != weight.dim(1))
    throw std::invalid_argument("Conv3x3::forward: bad input " + x.shape_string());
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cout = weight.dim(0);
  const int kdim = cin * 9;
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  Tensor y({n, cout, h, w});
  // Per image: Y_b (cout × hw) = bias + W (cout × cin*9) · im2col(x_b).
  // Images write disjoint output slabs, so fanning out over the pool keeps
  // results identical to the serial pass.
  auto run_image = [&](std::size_t b) {
    std::vector<float> col(static_cast<std::size_t>(kdim) * hw);
    im2col3x3(x.data() + b * cin * hw, cin, h, w, col.data());
    float* yb = y.data() + b * cout * hw;
    for (int co = 0; co < cout; ++co)
      std::fill(yb + static_cast<std::size_t>(co) * hw,
                yb + static_cast<std::size_t>(co + 1) * hw,
                bias[static_cast<std::size_t>(co)]);
    gemm(Trans::No, Trans::No, cout, static_cast<int>(hw), kdim, 1.0f,
         weight.data(), kdim, col.data(), static_cast<int>(hw), 1.0f, yb,
         static_cast<int>(hw));
  };
  common::ThreadPool* pool = compute_pool();
  if (pool && pool->size() > 1 && n > 1) {
    pool->parallel_for(0, static_cast<std::size_t>(n), run_image, 1);
  } else {
    for (std::size_t b = 0; b < static_cast<std::size_t>(n); ++b) run_image(b);
  }
  return y;
}

Tensor Conv3x3::forward(const Tensor& x) {
  Tensor y = apply(x);
  input_ = x;
  return y;
}

Tensor Conv3x3::infer(const Tensor& x) const { return apply(x); }

Tensor Conv3x3::backward(const Tensor& grad_out) {
  const int n = input_.dim(0), cin = input_.dim(1), h = input_.dim(2),
            w = input_.dim(3);
  const int cout = weight.dim(0);
  const int kdim = cin * 9;
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  Tensor grad_in({n, cin, h, w});
  // Pass 1 — input gradients, independent per image (disjoint slabs, safe to
  // fan out): dcol_b = W^T · g_b, then fold back with col2im.
  auto run_image = [&](std::size_t b) {
    std::vector<float> dcol(static_cast<std::size_t>(kdim) * hw);
    gemm(Trans::Yes, Trans::No, kdim, static_cast<int>(hw), cout, 1.0f,
         weight.data(), kdim, grad_out.data() + b * cout * hw,
         static_cast<int>(hw), 0.0f, dcol.data(), static_cast<int>(hw));
    col2im3x3(dcol.data(), cin, h, w, grad_in.data() + b * cin * hw);
  };
  common::ThreadPool* pool = compute_pool();
  if (pool && pool->size() > 1 && n > 1) {
    pool->parallel_for(0, static_cast<std::size_t>(n), run_image, 1);
  } else {
    for (std::size_t b = 0; b < static_cast<std::size_t>(n); ++b) run_image(b);
  }
  // Pass 2 — parameter gradients, accumulated serially in ascending image
  // order so results never depend on the pool size:
  // dW += g_b · im2col(x_b)^T, db += row sums of g_b.
  std::vector<float> col(static_cast<std::size_t>(kdim) * hw);
  for (std::size_t b = 0; b < static_cast<std::size_t>(n); ++b) {
    im2col3x3(input_.data() + b * cin * hw, cin, h, w, col.data());
    const float* gb = grad_out.data() + b * cout * hw;
    gemm(Trans::No, Trans::Yes, cout, kdim, static_cast<int>(hw), 1.0f, gb,
         static_cast<int>(hw), col.data(), static_cast<int>(hw), 1.0f,
         weight_grad.data(), kdim);
    for (int co = 0; co < cout; ++co) {
      const float* row = gb + static_cast<std::size_t>(co) * hw;
      float& bg = bias_grad[static_cast<std::size_t>(co)];
      for (std::size_t p = 0; p < hw; ++p) bg += row[p];
    }
  }
  return grad_in;
}

std::vector<Param> Conv3x3::params() {
  return {{&weight, &weight_grad}, {&bias, &bias_grad}};
}

// ---------------------------------------------------------------- MaxPool2

Tensor MaxPool2::apply(const Tensor& x, std::vector<int>* argmax) const {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h / 2, ow = w / 2;
  Tensor y({n, c, oh, ow});
  if (argmax) argmax->assign(y.size(), 0);
  std::size_t out_idx = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int i = 0; i < oh; ++i) {
        for (int j = 0; j < ow; ++j, ++out_idx) {
          float best = -1e30f;
          int best_flat = 0;
          for (int di = 0; di < 2; ++di) {
            for (int dj = 0; dj < 2; ++dj) {
              const int ii = 2 * i + di, jj = 2 * j + dj;
              const float v = x.at(b, ch, ii, jj);
              if (v > best) {
                best = v;
                best_flat = ((b * c + ch) * h + ii) * w + jj;
              }
            }
          }
          y[out_idx] = best;
          if (argmax) (*argmax)[out_idx] = best_flat;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2::forward(const Tensor& x) {
  in_shape_ = x.shape();
  return apply(x, &argmax_);
}

Tensor MaxPool2::infer(const Tensor& x) const { return apply(x, nullptr); }

Tensor MaxPool2::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    grad_in[static_cast<std::size_t>(argmax_[i])] += grad_out[i];
  return grad_in;
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  int rest = 1;
  for (int d = 1; d < x.rank(); ++d) rest *= x.dim(d);
  return x.reshaped({x.dim(0), rest});
}

Tensor Flatten::infer(const Tensor& x) const {
  int rest = 1;
  for (int d = 1; d < x.rank(); ++d) rest *= x.dim(d);
  return x.reshaped({x.dim(0), rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// ---------------------------------------------------------------- Residual

ResidualBlock::ResidualBlock(int channels, common::Rng& rng)
    : conv1_(channels, channels, rng), conv2_(channels, channels, rng) {}

Tensor ResidualBlock::forward(const Tensor& x) {
  Tensor h = conv2_.forward(relu1_.forward(conv1_.forward(x)));
  h += x;
  return relu_out_.forward(h);
}

Tensor ResidualBlock::infer(const Tensor& x) const {
  Tensor h = conv2_.infer(relu1_.infer(conv1_.infer(x)));
  h += x;
  return relu_out_.infer(h);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  const Tensor g = relu_out_.backward(grad_out);
  Tensor gx = conv1_.backward(relu1_.backward(conv2_.backward(g)));
  gx += g;  // the identity skip
  return gx;
}

std::vector<Param> ResidualBlock::params() {
  auto p = conv1_.params();
  for (auto q : conv2_.params()) p.push_back(q);
  return p;
}

// ------------------------------------------------------------- serialization

namespace {
constexpr std::uint32_t kWeightsMagic = 0x57504d49;  // "IMPW"
}

void save_parameters(Layer& layer, const std::string& path) {
  const auto params = layer.params();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_parameters: cannot open " + path);
  auto put_u32 = [&](std::uint32_t v) {
    f.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u32(kWeightsMagic);
  put_u32(static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    put_u32(static_cast<std::uint32_t>(p.value->rank()));
    for (int d = 0; d < p.value->rank(); ++d)
      put_u32(static_cast<std::uint32_t>(p.value->dim(d)));
    f.write(reinterpret_cast<const char*>(p.value->data()),
            static_cast<std::streamsize>(p.value->size() * sizeof(float)));
  }
}

void load_parameters(Layer& layer, const std::string& path) {
  const auto params = layer.params();
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_parameters: cannot open " + path);
  auto get_u32 = [&]() {
    std::uint32_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!f) throw std::runtime_error("load_parameters: truncated file");
    return v;
  };
  if (get_u32() != kWeightsMagic)
    throw std::runtime_error("load_parameters: bad magic in " + path);
  if (get_u32() != params.size())
    throw std::runtime_error("load_parameters: parameter count mismatch");
  for (const auto& p : params) {
    if (static_cast<int>(get_u32()) != p.value->rank())
      throw std::runtime_error("load_parameters: rank mismatch");
    for (int d = 0; d < p.value->rank(); ++d)
      if (static_cast<int>(get_u32()) != p.value->dim(d))
        throw std::runtime_error("load_parameters: shape mismatch");
    f.read(reinterpret_cast<char*>(p.value->data()),
           static_cast<std::streamsize>(p.value->size() * sizeof(float)));
    if (!f) throw std::runtime_error("load_parameters: truncated weights");
  }
}

// ---------------------------------------------------------------- Sequential

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur);
  return cur;
}

Tensor Sequential::infer(const Tensor& x) const {
  Tensor cur = x;
  for (const auto& l : layers_) cur = l->infer(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> out;
  for (auto& l : layers_)
    for (auto p : l->params()) out.push_back(p);
  return out;
}

}  // namespace impeccable::ml
