#include "impeccable/ml/aae.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "impeccable/ml/loss.hpp"

namespace impeccable::ml {

// ------------------------------------------------------------- encoder

PointNetEncoder::PointNetEncoder(int points, int latent_dim, int hidden,
                                 common::Rng& rng)
    : points_(points), latent_(latent_dim), hidden_(hidden),
      point_mlp1_(3, hidden / 2, rng),
      point_mlp2_(hidden / 2, hidden, rng),
      head_(hidden, latent_dim, rng) {}

Tensor PointNetEncoder::forward(const Tensor& x) {
  if (x.rank() != 3 || x.dim(1) != points_ || x.dim(2) != 3)
    throw std::invalid_argument("PointNetEncoder: expected (N, P, 3), got " +
                                x.shape_string());
  batch_ = x.dim(0);
  const int np = batch_ * points_;

  // Shared MLP over flattened points.
  Tensor flat = x.reshaped({np, 3});
  Tensor h = relu2_.forward(point_mlp2_.forward(
      relu1_.forward(point_mlp1_.forward(flat))));  // (N*P, hidden)

  // Max pool over the point dimension, remembering the winners.
  Tensor pooled({batch_, hidden_});
  argmax_.assign(static_cast<std::size_t>(batch_) * hidden_, 0);
  for (int b = 0; b < batch_; ++b) {
    for (int f = 0; f < hidden_; ++f) {
      float best = -1e30f;
      int best_row = b * points_;
      for (int p = 0; p < points_; ++p) {
        const float v = h.at(b * points_ + p, f);
        if (v > best) {
          best = v;
          best_row = b * points_ + p;
        }
      }
      pooled.at(b, f) = best;
      argmax_[static_cast<std::size_t>(b) * hidden_ + f] = best_row;
    }
  }
  return head_.forward(pooled);
}

Tensor PointNetEncoder::backward(const Tensor& grad_out) {
  const Tensor g_pooled = head_.backward(grad_out);  // (N, hidden)
  Tensor g_points({batch_ * points_, hidden_});
  for (int b = 0; b < batch_; ++b)
    for (int f = 0; f < hidden_; ++f)
      g_points.at(argmax_[static_cast<std::size_t>(b) * hidden_ + f], f) +=
          g_pooled.at(b, f);
  const Tensor g_flat = point_mlp1_.backward(
      relu1_.backward(point_mlp2_.backward(relu2_.backward(g_points))));
  return g_flat.reshaped({batch_, points_, 3});
}

std::vector<Param> PointNetEncoder::params() {
  std::vector<Param> out;
  for (auto p : point_mlp1_.params()) out.push_back(p);
  for (auto p : point_mlp2_.params()) out.push_back(p);
  for (auto p : head_.params()) out.push_back(p);
  return out;
}

// ------------------------------------------------------------- Aae3d

Aae3d::Aae3d(int points, const AaeOptions& opts)
    : points_(points), opts_(opts), rng_(opts.seed),
      encoder_(points, opts.latent_dim, opts.hidden, rng_) {
  decoder_.add(std::make_unique<Dense>(opts.latent_dim, opts.hidden, rng_));
  decoder_.add(std::make_unique<ReLU>());
  decoder_.add(std::make_unique<Dense>(opts.hidden, points * 3, rng_));

  critic_.add(std::make_unique<Dense>(opts.latent_dim, 32, rng_));
  critic_.add(std::make_unique<ReLU>());
  critic_.add(std::make_unique<Dense>(32, 1, rng_));

  enc_opt_ = std::make_unique<RmsProp>(encoder_.params(), opts.learning_rate);
  dec_opt_ = std::make_unique<RmsProp>(decoder_.params(), opts.learning_rate);
  critic_opt_ = std::make_unique<RmsProp>(critic_.params(), opts.learning_rate);
}

Tensor Aae3d::to_tensor(const std::vector<std::vector<common::Vec3>>& clouds,
                        std::size_t begin, std::size_t count) const {
  Tensor x({static_cast<int>(count), points_, 3});
  for (std::size_t b = 0; b < count; ++b) {
    const auto& cloud = clouds[begin + b];
    if (static_cast<int>(cloud.size()) != points_)
      throw std::invalid_argument("Aae3d: cloud size mismatch");
    for (int p = 0; p < points_; ++p) {
      const std::size_t base = (b * points_ + p) * 3;
      x[base] = static_cast<float>(cloud[static_cast<std::size_t>(p)].x);
      x[base + 1] = static_cast<float>(cloud[static_cast<std::size_t>(p)].y);
      x[base + 2] = static_cast<float>(cloud[static_cast<std::size_t>(p)].z);
    }
  }
  return x;
}

AaeTrainReport Aae3d::train(const std::vector<std::vector<common::Vec3>>& clouds) {
  if (clouds.empty()) throw std::invalid_argument("Aae3d::train: empty dataset");

  std::vector<std::size_t> order(clouds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);
  const std::size_t val_count = std::min(
      clouds.size() - 1,
      static_cast<std::size_t>(opts_.validation_fraction * clouds.size()));
  const std::size_t train_count = clouds.size() - val_count;

  std::vector<std::vector<common::Vec3>> tr, va;
  for (std::size_t k = 0; k < train_count; ++k) tr.push_back(clouds[order[k]]);
  for (std::size_t k = train_count; k < clouds.size(); ++k)
    va.push_back(clouds[order[k]]);

  AaeTrainReport report;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    AaeEpochStats stats;
    std::size_t batches = 0;
    for (std::size_t at = 0; at < tr.size(); at += opts_.batch_size) {
      const std::size_t bs = std::min<std::size_t>(opts_.batch_size, tr.size() - at);
      const int b = static_cast<int>(bs);
      const Tensor x = to_tensor(tr, at, bs);

      // ---- critic updates (WGAN with weight clipping) ----
      Tensor z = encoder_.forward(x);  // (B, latent)
      for (int cstep = 0; cstep < opts_.critic_steps; ++cstep) {
        Tensor prior({b, opts_.latent_dim});
        for (std::size_t i = 0; i < prior.size(); ++i)
          prior[i] = static_cast<float>(rng_.gauss(0.0, opts_.prior_std));

        // loss_c = mean(D(fake)) - mean(D(prior)); minimize.
        const Tensor d_fake = critic_.forward(z);
        Tensor g_fake({b, 1});
        g_fake.fill(1.0f / b);
        critic_.backward(g_fake);

        const Tensor d_prior = critic_.forward(prior);
        Tensor g_prior({b, 1});
        g_prior.fill(-1.0f / b);
        critic_.backward(g_prior);

        float lc = 0.0f;
        for (int i = 0; i < b; ++i) lc += (d_fake[static_cast<std::size_t>(i)] -
                                           d_prior[static_cast<std::size_t>(i)]) / b;
        stats.critic += lc;

        critic_opt_->step();
        clip_weights(critic_.params(), opts_.weight_clip);
      }

      // ---- reconstruction + adversarial generator update ----
      z = encoder_.forward(x);
      const Tensor flat = decoder_.forward(z);
      const Tensor y = flat.reshaped({b, points_, 3});
      const LossValue recon = chamfer_loss(y, x);
      stats.reconstruction += recon.value;

      Tensor g_y = recon.grad;
      g_y *= opts_.recon_scale;
      Tensor g_z = decoder_.backward(g_y.reshaped({b, points_ * 3}));
      dec_opt_->step();

      // Generator adversarial term: maximize D(z) => gradient -adv/B via
      // the critic input; critic parameter grads from this pass are
      // discarded (zeroed) — only the encoder learns here.
      critic_.forward(z);
      Tensor g_out({b, 1});
      g_out.fill(-opts_.adv_scale / b);
      Tensor g_z_adv = critic_.backward(g_out);
      critic_.zero_grad();

      g_z += g_z_adv;
      encoder_.backward(g_z);
      enc_opt_->step();
      ++batches;
    }
    if (batches) {
      stats.reconstruction /= static_cast<float>(batches);
      stats.critic /= static_cast<float>(batches * opts_.critic_steps);
    }

    if (!va.empty()) {
      const Tensor xv = to_tensor(va, 0, va.size());
      const Tensor zv = encoder_.forward(xv);
      const Tensor yv =
          decoder_.forward(zv).reshaped({static_cast<int>(va.size()), points_, 3});
      stats.validation = chamfer_loss(yv, xv).value;
      // Clear caches' effect on gradients is irrelevant: no backward here.
    }
    report.epochs.push_back(stats);
  }
  return report;
}

std::vector<double> Aae3d::embed(const std::vector<common::Vec3>& cloud) {
  return embed_batch({cloud}).front();
}

std::vector<std::vector<double>> Aae3d::embed_batch(
    const std::vector<std::vector<common::Vec3>>& clouds) {
  std::vector<std::vector<double>> out;
  out.reserve(clouds.size());
  const std::size_t chunk = 64;
  for (std::size_t at = 0; at < clouds.size(); at += chunk) {
    const std::size_t bs = std::min(chunk, clouds.size() - at);
    const Tensor z = encoder_.forward(to_tensor(clouds, at, bs));
    for (std::size_t i = 0; i < bs; ++i) {
      std::vector<double> row(static_cast<std::size_t>(opts_.latent_dim));
      for (int d = 0; d < opts_.latent_dim; ++d)
        row[static_cast<std::size_t>(d)] = z.at(static_cast<int>(i), d);
      out.push_back(std::move(row));
    }
  }
  return out;
}

double Aae3d::reconstruction_error(const std::vector<common::Vec3>& cloud) {
  const Tensor x = to_tensor({cloud}, 0, 1);
  const Tensor z = encoder_.forward(x);
  const Tensor y = decoder_.forward(z).reshaped({1, points_, 3});
  return chamfer_loss(y, x).value;
}

void Aae3d::save_weights(const std::string& prefix) {
  save_parameters(encoder_, prefix + ".enc");
  save_parameters(decoder_, prefix + ".dec");
  save_parameters(critic_, prefix + ".critic");
}

void Aae3d::load_weights(const std::string& prefix) {
  load_parameters(encoder_, prefix + ".enc");
  load_parameters(decoder_, prefix + ".dec");
  load_parameters(critic_, prefix + ".critic");
}

std::uint64_t Aae3d::flops_per_sample() const {
  const std::uint64_t p = points_, h = opts_.hidden, l = opts_.latent_dim;
  // Encoder: per-point MLP (3->h/2->h) + head (h->l); decoder mirrors it;
  // factor 3 for forward+backward.
  const std::uint64_t enc = p * (2 * 3 * (h / 2) + 2 * (h / 2) * h) + 2 * h * l;
  const std::uint64_t dec = 2 * l * h + 2 * h * (p * 3);
  const std::uint64_t critic = 2 * l * 32 + 2 * 32;
  return 3 * (enc + dec + critic);
}

}  // namespace impeccable::ml
