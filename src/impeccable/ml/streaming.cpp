#include "impeccable/ml/streaming.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace impeccable::ml {

namespace {

/// heap comparator: std::push_heap keeps the *worst* candidate at front
/// when "greater" means "worse".
bool heap_less(const TopCandidate& a, const TopCandidate& b) {
  return candidate_better(a, b);
}

}  // namespace

void StreamingTopK::offer(float score, std::uint64_t index) {
  if (k_ == 0) return;
  const TopCandidate c{score, index};
  if (heap_.size() < k_) {
    heap_.push_back(c);
    std::push_heap(heap_.begin(), heap_.end(), heap_less);
    return;
  }
  if (!candidate_better(c, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), heap_less);
  heap_.back() = c;
  std::push_heap(heap_.begin(), heap_.end(), heap_less);
}

std::vector<TopCandidate> StreamingTopK::take_sorted() {
  std::vector<TopCandidate> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), candidate_better);
  return out;
}

std::vector<TopCandidate> StreamingTopK::merge_sorted(
    std::vector<std::vector<TopCandidate>> parts, std::size_t k) {
  StreamingTopK merged(k);
  for (const auto& part : parts)
    for (const auto& c : part) merged.offer(c.score, c.index);
  return merged.take_sorted();
}

// ---------------------------------------------------------------------------
// ScoreSpill

ScoreSpill ScoreSpill::in_memory(std::size_t n) {
  ScoreSpill s;
  s.n_ = n;
  s.ram_.assign(n, 0.0f);
  return s;
}

ScoreSpill ScoreSpill::file_backed(std::size_t n, const std::string& path) {
  ScoreSpill s;
  s.n_ = n;
  s.path_ = path;
  s.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (s.fd_ < 0)
    throw std::runtime_error("ScoreSpill: cannot open " + path);
  if (::ftruncate(s.fd_, static_cast<off_t>(n * sizeof(float))) != 0) {
    ::close(s.fd_);
    s.fd_ = -1;
    throw std::runtime_error("ScoreSpill: cannot size " + path);
  }
  return s;
}

ScoreSpill::~ScoreSpill() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

ScoreSpill::ScoreSpill(ScoreSpill&& other) noexcept
    : n_(other.n_),
      ram_(std::move(other.ram_)),
      fd_(other.fd_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.n_ = 0;
}

ScoreSpill& ScoreSpill::operator=(ScoreSpill&& other) noexcept {
  if (this != &other) {
    this->~ScoreSpill();
    new (this) ScoreSpill(std::move(other));
  }
  return *this;
}

void ScoreSpill::write(std::size_t begin, const float* v, std::size_t n) {
  if (begin + n > n_) throw std::out_of_range("ScoreSpill::write");
  if (fd_ < 0) {
    std::copy(v, v + n, ram_.begin() + static_cast<std::ptrdiff_t>(begin));
    return;
  }
  const auto* p = reinterpret_cast<const char*>(v);
  std::size_t done = 0;
  const std::size_t bytes = n * sizeof(float);
  while (done < bytes) {
    const ssize_t got =
        ::pwrite(fd_, p + done, bytes - done,
                 static_cast<off_t>(begin * sizeof(float) + done));
    if (got <= 0) throw std::runtime_error("ScoreSpill: short write");
    done += static_cast<std::size_t>(got);
  }
}

void ScoreSpill::read(std::size_t begin, float* out, std::size_t n) const {
  if (begin + n > n_) throw std::out_of_range("ScoreSpill::read");
  if (fd_ < 0) {
    std::copy(ram_.begin() + static_cast<std::ptrdiff_t>(begin),
              ram_.begin() + static_cast<std::ptrdiff_t>(begin + n), out);
    return;
  }
  auto* p = reinterpret_cast<char*>(out);
  std::size_t done = 0;
  const std::size_t bytes = n * sizeof(float);
  while (done < bytes) {
    const ssize_t got = ::pread(fd_, p + done, bytes - done,
                                static_cast<off_t>(begin * sizeof(float) + done));
    if (got <= 0) throw std::runtime_error("ScoreSpill: short read");
    done += static_cast<std::size_t>(got);
  }
}

float ScoreSpill::at(std::size_t i) const {
  float v = 0.0f;
  read(i, &v, 1);
  return v;
}

// ---------------------------------------------------------------------------

std::size_t score_ligands(const chem::LigandSource& source,
                          const SurrogateModel& model, std::size_t begin,
                          std::size_t end, std::size_t window,
                          ScoreSpill* spill, StreamingTopK* topk) {
  if (window == 0) throw std::invalid_argument("score_ligands: window == 0");
  end = std::min(end, source.size());
  std::vector<chem::Image> images;
  std::size_t scored = 0;
  for (std::size_t b = begin; b < end; b += window) {
    const std::size_t e = std::min(end, b + window);
    source.images(b, e, images);
    const std::vector<float> pred = model.predict_batch(images);
    if (spill) spill->write(b, pred.data(), pred.size());
    if (topk)
      for (std::size_t i = 0; i < pred.size(); ++i)
        topk->offer(pred[i], b + i);
    source.release(b, e);
    scored += e - b;
  }
  return scored;
}

std::vector<TopCandidate> select_top_k(const ScoreSpill& spill, std::size_t k,
                                       std::size_t chunk) {
  StreamingTopK topk(k);
  std::vector<float> buf(std::min(chunk, spill.size()));
  for (std::size_t b = 0; b < spill.size(); b += buf.size()) {
    const std::size_t n = std::min(buf.size(), spill.size() - b);
    spill.read(b, buf.data(), n);
    for (std::size_t i = 0; i < n; ++i) topk.offer(buf[i], b + i);
  }
  return topk.take_sorted();
}

}  // namespace impeccable::ml
