#pragma once
// Local Outlier Factor (Breunig et al. 2000) — the outlier detector S2 runs
// on the 3D-AAE latent manifold to pick "interesting" LPC conformations for
// S3-FG (Sec. 5.1.4).

#include <vector>

namespace impeccable::ml {

/// LOF scores for row-major points (n rows, `dim` columns). Values near 1
/// are inliers; substantially greater than 1 are outliers. k is the
/// neighbourhood size (clamped to n-1).
std::vector<double> local_outlier_factor(const std::vector<std::vector<double>>& points,
                                         int k = 10);

/// Indices of the `count` highest-LOF points, sorted by score descending.
std::vector<std::size_t> top_outliers(const std::vector<double>& lof_scores,
                                      std::size_t count);

}  // namespace impeccable::ml
