#include "impeccable/ml/surrogate.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "impeccable/ml/loss.hpp"
#include "impeccable/obs/recorder.hpp"

namespace impeccable::ml {

float score_to_label(double dock_score, double best, double worst) {
  if (worst <= best) return 0.5f;
  const double t = (worst - dock_score) / (worst - best);
  return static_cast<float>(std::clamp(t, 0.0, 1.0));
}

SurrogateModel::SurrogateModel(const SurrogateOptions& opts) : opts_(opts) {
  common::Rng rng(opts.seed);
  const int f = opts.base_filters;
  net_.add(std::make_unique<Conv3x3>(opts.channels, f, rng));
  net_.add(std::make_unique<ReLU>());
  net_.add(std::make_unique<MaxPool2>());  // H/2
  net_.add(std::make_unique<Conv3x3>(f, 2 * f, rng));
  net_.add(std::make_unique<ReLU>());
  net_.add(std::make_unique<MaxPool2>());  // H/4
  net_.add(std::make_unique<ResidualBlock>(2 * f, rng));
  net_.add(std::make_unique<MaxPool2>());  // H/8
  net_.add(std::make_unique<Flatten>());
  const int flat = 2 * f * (opts.height / 8) * (opts.width / 8);
  net_.add(std::make_unique<Dense>(flat, 32, rng));
  net_.add(std::make_unique<ReLU>());
  net_.add(std::make_unique<Dense>(32, 1, rng));
  net_.add(std::make_unique<Sigmoid>());
  optimizer_ = std::make_unique<Adam>(net_.params(), opts.learning_rate);
}

void SurrogateModel::to_tensor(const std::vector<chem::Image>& images,
                               std::size_t begin, std::size_t count,
                               Tensor& x) const {
  if (x.rank() != 4 || x.dim(0) != static_cast<int>(count) ||
      x.dim(1) != opts_.channels || x.dim(2) != opts_.height ||
      x.dim(3) != opts_.width)
    x = Tensor({static_cast<int>(count), opts_.channels, opts_.height,
                opts_.width});
  for (std::size_t b = 0; b < count; ++b) {
    const chem::Image& im = images[begin + b];
    if (im.channels != opts_.channels || im.height != opts_.height ||
        im.width != opts_.width)
      throw std::invalid_argument("SurrogateModel: image shape mismatch");
    std::copy(im.data.begin(), im.data.end(),
              x.data() + b * im.data.size());
  }
}

TrainReport SurrogateModel::train(const std::vector<chem::Image>& images,
                                  const std::vector<float>& labels) {
  if (images.size() != labels.size() || images.empty())
    throw std::invalid_argument("SurrogateModel::train: bad dataset");

  obs::Span span(obs::cat::kMl, "surrogate-train");
  span.arg("images", static_cast<double>(images.size()));
  span.arg("epochs", static_cast<double>(opts_.epochs));

  common::Rng rng(opts_.seed ^ 0x7121a);
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  const std::size_t val_count = std::min(
      images.size() - 1,
      static_cast<std::size_t>(opts_.validation_fraction * images.size()));
  const std::size_t train_count = images.size() - val_count;

  // Materialize shuffled views once.
  std::vector<chem::Image> tr_im, va_im;
  std::vector<float> tr_y, va_y;
  for (std::size_t k = 0; k < train_count; ++k) {
    tr_im.push_back(images[order[k]]);
    tr_y.push_back(labels[order[k]]);
  }
  for (std::size_t k = train_count; k < images.size(); ++k) {
    va_im.push_back(images[order[k]]);
    va_y.push_back(labels[order[k]]);
  }

  TrainReport report;
  Tensor x;  // batch scratch, reused across batches and epochs
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    EpochStats stats;
    std::size_t batches = 0;
    for (std::size_t at = 0; at < tr_im.size(); at += opts_.batch_size) {
      const std::size_t bs =
          std::min<std::size_t>(opts_.batch_size, tr_im.size() - at);
      to_tensor(tr_im, at, bs, x);
      Tensor target({static_cast<int>(bs), 1});
      for (std::size_t i = 0; i < bs; ++i) target[i] = tr_y[at + i];

      const Tensor pred = net_.forward(x);
      const LossValue loss = mse_loss(pred, target);
      net_.backward(loss.grad);
      optimizer_->step();
      stats.train_loss += loss.value;
      ++batches;
    }
    if (batches) stats.train_loss /= static_cast<float>(batches);

    if (!va_im.empty()) {
      to_tensor(va_im, 0, va_im.size(), x);
      Tensor target({static_cast<int>(va_im.size()), 1});
      for (std::size_t i = 0; i < va_im.size(); ++i) target[i] = va_y[i];
      stats.validation_loss = mse_loss(net_.forward(x), target).value;
    }
    report.epochs.push_back(stats);
  }
  return report;
}

float SurrogateModel::predict(const chem::Image& image) const {
  std::vector<chem::Image> one{image};
  return predict_batch(one)[0];
}

std::vector<float> SurrogateModel::predict_batch(
    const std::vector<chem::Image>& images) const {
  obs::Span span(obs::cat::kMl, "surrogate-predict");
  span.arg("images", static_cast<double>(images.size()));
  std::vector<float> out;
  out.reserve(images.size());
  const std::size_t chunk =
      static_cast<std::size_t>(std::max(1, opts_.predict_chunk));
  // Per-call scratch + the layers' cache-free infer() path: no shared
  // mutable state, so concurrent predict_batch calls are data-race-free.
  Tensor x;  // one scratch across all full-sized chunks of THIS call
  for (std::size_t at = 0; at < images.size(); at += chunk) {
    const std::size_t bs = std::min(chunk, images.size() - at);
    to_tensor(images, at, bs, x);
    const Tensor pred = net_.infer(x);
    for (std::size_t i = 0; i < bs; ++i) out.push_back(pred[i]);
  }
  return out;
}

void SurrogateModel::save_weights(const std::string& path) {
  save_parameters(net_, path);
}

void SurrogateModel::load_weights(const std::string& path) {
  load_parameters(net_, path);
}

std::uint64_t SurrogateModel::flops_per_image() const {
  const int f = opts_.base_filters;
  const std::uint64_t h = opts_.height, w = opts_.width, c = opts_.channels;
  std::uint64_t flops = 0;
  // conv1: 2*9*Cin*Cout per pixel.
  flops += 2ull * 9 * c * f * h * w;
  flops += 2ull * 9 * f * (2 * f) * (h / 2) * (w / 2);
  // residual block: two convs at H/4.
  flops += 2ull * 2 * 9 * (2 * f) * (2 * f) * (h / 4) * (w / 4);
  // dense layers.
  const std::uint64_t flat = 2ull * f * (h / 8) * (w / 8);
  flops += 2ull * flat * 32 + 2ull * 32;
  return flops;
}

}  // namespace impeccable::ml
