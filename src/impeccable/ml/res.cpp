#include "impeccable/ml/res.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace impeccable::ml {

EnrichmentSurface::EnrichmentSurface(std::span<const double> predicted,
                                     std::span<const double> truth) {
  if (predicted.size() != truth.size() || predicted.empty())
    throw std::invalid_argument("EnrichmentSurface: bad inputs");
  const std::size_t n = predicted.size();

  order_pred_.resize(n);
  std::iota(order_pred_.begin(), order_pred_.end(), std::size_t{0});
  std::stable_sort(order_pred_.begin(), order_pred_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return predicted[a] > predicted[b];
                   });

  std::vector<std::size_t> order_true(n);
  std::iota(order_true.begin(), order_true.end(), std::size_t{0});
  std::stable_sort(order_true.begin(), order_true.end(),
                   [&](std::size_t a, std::size_t b) { return truth[a] > truth[b]; });
  rank_true_.resize(n);
  for (std::size_t r = 0; r < n; ++r) rank_true_[order_true[r]] = r;
}

double EnrichmentSurface::coverage(double screen_fraction,
                                   double top_fraction) const {
  const std::size_t n = order_pred_.size();
  const std::size_t screened = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(screen_fraction * n)));
  const std::size_t top = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(top_fraction * n)));

  std::size_t hits = 0;
  for (std::size_t k = 0; k < std::min(screened, n); ++k)
    if (rank_true_[order_pred_[k]] < top) ++hits;
  return static_cast<double>(hits) / static_cast<double>(top);
}

double EnrichmentSurface::budget_for(double top_fraction,
                                     double min_coverage) const {
  const std::size_t n = order_pred_.size();
  const std::size_t top = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(top_fraction * n)));
  const std::size_t needed = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(min_coverage * top)));
  // Walk the predicted ranking until `needed` true-top items are covered.
  std::size_t hits = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (rank_true_[order_pred_[k]] < top) ++hits;
    if (hits >= needed)
      return static_cast<double>(k + 1) / static_cast<double>(n);
  }
  return 1.0;
}

EnrichmentSurface::Grid EnrichmentSurface::grid(int points_per_decade,
                                                double min_fraction) const {
  Grid g;
  for (double f = min_fraction; f <= 1.0 + 1e-12;) {
    g.screen_fractions.push_back(std::min(f, 1.0));
    // points_per_decade log-spaced steps.
    f *= std::pow(10.0, 1.0 / points_per_decade);
  }
  g.top_fractions = g.screen_fractions;
  g.coverage.resize(g.top_fractions.size());
  for (std::size_t t = 0; t < g.top_fractions.size(); ++t) {
    g.coverage[t].resize(g.screen_fractions.size());
    for (std::size_t s = 0; s < g.screen_fractions.size(); ++s)
      g.coverage[t][s] = coverage(g.screen_fractions[s], g.top_fractions[t]);
  }
  return g;
}

std::string to_text(const EnrichmentSurface::Grid& grid) {
  std::string out = "  top\\screen";
  char buf[64];
  for (double s : grid.screen_fractions) {
    std::snprintf(buf, sizeof buf, " %8.0e", s);
    out += buf;
  }
  out += '\n';
  for (std::size_t t = 0; t < grid.top_fractions.size(); ++t) {
    std::snprintf(buf, sizeof buf, "  %8.0e  ", grid.top_fractions[t]);
    out += buf;
    for (double c : grid.coverage[t]) {
      std::snprintf(buf, sizeof buf, " %8.3f", c);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace impeccable::ml
