#include "impeccable/ml/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "impeccable/common/rng.hpp"

namespace impeccable::ml {

std::vector<std::vector<double>> tsne(const std::vector<std::vector<double>>& points,
                                      const TsneOptions& opts) {
  const std::size_t n = points.size();
  if (n == 0) return {};
  const std::size_t out_d = static_cast<std::size_t>(opts.output_dim);
  if (n == 1) return {std::vector<double>(out_d, 0.0)};

  // Pairwise squared distances.
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < points[i].size(); ++k) {
        const double v = points[i][k] - points[j][k];
        acc += v * v;
      }
      d2[i * n + j] = d2[j * n + i] = acc;
    }
  }

  // Row-wise binary search for the precision giving the target perplexity.
  const double target_entropy = std::log(std::max(2.0, opts.perplexity));
  std::vector<double> p(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double beta_lo = 1e-12, beta_hi = 1e12, beta = 1.0;
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0, weighted = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = std::exp(-beta * d2[i * n + j]);
        sum += w;
        weighted += w * d2[i * n + j];
      }
      if (sum <= 0.0) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
        continue;
      }
      const double entropy = std::log(sum) + beta * weighted / sum;
      if (std::abs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) beta_lo = beta;
      else beta_hi = beta;
      beta = beta_hi >= 1e12 ? beta_lo * 2.0 : 0.5 * (beta_lo + beta_hi);
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) sum += std::exp(-beta * d2[i * n + j]);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i && sum > 0.0) p[i * n + j] = std::exp(-beta * d2[i * n + j]) / sum;
  }
  // Symmetrize.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = (p[i * n + j] + p[j * n + i]) / (2.0 * n);
      p[i * n + j] = p[j * n + i] = std::max(v, 1e-12);
    }

  common::Rng rng(opts.seed);
  std::vector<std::vector<double>> y(n, std::vector<double>(out_d));
  for (auto& row : y)
    for (auto& v : row) v = rng.gauss(0.0, 1e-2);

  std::vector<std::vector<double>> vel(n, std::vector<double>(out_d, 0.0));
  std::vector<double> q(n * n);

  for (int it = 0; it < opts.iterations; ++it) {
    const double exaggeration =
        it < opts.exaggeration_iters ? opts.early_exaggeration : 1.0;

    // Student-t affinities in the embedding.
    double qsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < out_d; ++k) {
          const double v = y[i][k] - y[j][k];
          acc += v * v;
        }
        const double w = 1.0 / (1.0 + acc);
        q[i * n + j] = q[j * n + i] = w;
        qsum += 2.0 * w;
      }
    }

    const double momentum = it < 100 ? 0.5 : 0.8;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> grad(out_d, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = q[i * n + j];
        const double coeff =
            4.0 * (exaggeration * p[i * n + j] - w / qsum) * w;
        for (std::size_t k = 0; k < out_d; ++k)
          grad[k] += coeff * (y[i][k] - y[j][k]);
      }
      for (std::size_t k = 0; k < out_d; ++k)
        vel[i][k] = momentum * vel[i][k] - opts.learning_rate * grad[k];
      // Clamp the step to keep the optimization stable at high lr.
      double step2 = 0.0;
      for (std::size_t k = 0; k < out_d; ++k) step2 += vel[i][k] * vel[i][k];
      const double step = std::sqrt(step2);
      const double scale = step > opts.max_step ? opts.max_step / step : 1.0;
      for (std::size_t k = 0; k < out_d; ++k) y[i][k] += scale * vel[i][k];
    }

    // Re-center the embedding (removes the free translation mode).
    std::vector<double> mean(out_d, 0.0);
    for (const auto& row : y)
      for (std::size_t k = 0; k < out_d; ++k) mean[k] += row[k];
    for (auto& m : mean) m /= static_cast<double>(n);
    for (auto& row : y)
      for (std::size_t k = 0; k < out_d; ++k) row[k] -= mean[k];
  }
  return y;
}

}  // namespace impeccable::ml
