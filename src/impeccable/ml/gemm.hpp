#pragma once
// Shared blocked/tiled SGEMM kernel — the one matrix multiply under every
// dense and (via im2col) convolutional layer of the ML1 surrogate and the
// 3D-AAE.
//
// Layout is row-major throughout. The kernel computes
//     C (M×N) = alpha * op(A) * op(B) + beta * C
// with op ∈ {identity, transpose}. Transposed operands are packed into a
// contiguous scratch panel once per call, then a single register-blocked
// "ikj" kernel streams over cache-sized K panels (GemmTiling). Row panels of
// C can be fanned out over a ThreadPool.
//
// Determinism contract: for every C element the K-dimension accumulates in
// ascending order with fixed tile boundaries, independent of thread count —
// results are bit-identical with a serial run. The accumulation order also
// matches the naive bias-first ascending-k loops the layers used before this
// kernel existed, so trained weights are preserved across the rewrite.

#include "impeccable/common/thread_pool.hpp"

namespace impeccable::ml {

enum class Trans { No, Yes };

struct GemmTiling {
  int kc = 256;  ///< K panel height (keeps a B panel resident in L1/L2)
  int mc = 32;   ///< C rows per parallel task
  int mr = 4;    ///< register-blocked rows of the micro-kernel
};

/// Blocked SGEMM. `lda`/`ldb`/`ldc` are leading dimensions (row strides) of
/// the STORED matrices (A is M×K when ta==No, K×M when ta==Yes; likewise B).
/// `pool` enables row-panel parallelism; pass nullptr for serial.
void gemm(Trans ta, Trans tb, int M, int N, int K, float alpha, const float* A,
          int lda, const float* B, int ldb, float beta, float* C, int ldc,
          common::ThreadPool* pool = nullptr, const GemmTiling& tiling = {});

/// Naive triple-loop reference (tests and benches only).
void gemm_naive(Trans ta, Trans tb, int M, int N, int K, float alpha,
                const float* A, int lda, const float* B, int ldb, float beta,
                float* C, int ldc);

/// Process-wide compute pool used by the NN layers for intra-layer
/// parallelism. Defaults to nullptr (serial). Not owned; the caller keeps
/// the pool alive while it is installed. Returns the previous pool.
common::ThreadPool* set_compute_pool(common::ThreadPool* pool);
common::ThreadPool* compute_pool();

}  // namespace impeccable::ml
