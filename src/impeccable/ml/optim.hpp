#pragma once
// Optimizers: SGD+momentum, Adam, RMSprop (the paper's 3D-AAE optimizer,
// Sec. 7.1.3) and ADADELTA (shared conceptually with the docking local
// search, Sec. 5.1.1).

#include <memory>
#include <vector>

#include "impeccable/ml/layers.hpp"

namespace impeccable::ml {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  /// Apply one update from the accumulated gradients, then clear them.
  void step() {
    apply();
    for (auto& p : params_) p.grad->zero();
  }

 protected:
  virtual void apply() = 0;
  std::vector<Param> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param> params, float lr, float momentum = 0.9f);

 protected:
  void apply() override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

 protected:
  void apply() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Param> params, float lr, float rho = 0.9f,
          float eps = 1e-8f);

 protected:
  void apply() override;

 private:
  float lr_, rho_, eps_;
  std::vector<Tensor> sq_;
};

class Adadelta : public Optimizer {
 public:
  Adadelta(std::vector<Param> params, float rho = 0.95f, float eps = 1e-6f);

 protected:
  void apply() override;

 private:
  float rho_, eps_;
  std::vector<Tensor> eg2_, ex2_;
};

/// WGAN weight clipping: clamp every parameter into [-c, c].
void clip_weights(const std::vector<Param>& params, float c);

}  // namespace impeccable::ml
