#include "impeccable/obs/trace_export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "impeccable/obs/csv.hpp"
#include "impeccable/obs/json.hpp"

namespace impeccable::obs {

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("obs: cannot open " + path);
  return f;
}

}  // namespace

void write_chrome_trace(const Trace& trace, std::ostream& os, int pid) {
  json::Writer w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const auto& s : trace.spans) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("cat", s.category);
    w.kv("ph", "X");
    w.kv("ts", s.start * 1e6);  // microseconds
    w.kv("dur", s.duration() * 1e6);
    w.kv("pid", pid);
    w.kv("tid", static_cast<std::int64_t>(s.thread));
    w.key("args").begin_object();
    w.kv("span_id", s.id);
    if (s.parent != 0) w.kv("parent_id", s.parent);
    for (const auto& a : s.args) {
      if (a.is_num)
        w.kv(a.key, a.num);
      else
        w.kv(a.key, a.str);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_chrome_trace(const Trace& trace, const std::string& path, int pid) {
  auto f = open_or_throw(path);
  write_chrome_trace(trace, f, pid);
}

void write_trace_csv(const Trace& trace, std::ostream& os) {
  CsvWriter csv(os);
  csv.cell("name").cell("category").cell("start").cell("end").cell("duration");
  csv.cell("thread").cell("id").cell("parent").cell("args");
  csv.end_row();
  for (const auto& s : trace.spans) {
    csv.cell(s.name).cell(s.category);
    csv.cell(s.start).cell(s.end).cell(s.duration());
    csv.cell(static_cast<std::uint64_t>(s.thread)).cell(s.id).cell(s.parent);
    std::ostringstream args;
    for (std::size_t i = 0; i < s.args.size(); ++i) {
      if (i) args << ';';
      args << s.args[i].key << '=';
      if (s.args[i].is_num)
        args << s.args[i].num;
      else
        args << s.args[i].str;
    }
    csv.cell(args.str());
    csv.end_row();
  }
}

void write_trace_csv(const Trace& trace, const std::string& path) {
  auto f = open_or_throw(path);
  write_trace_csv(trace, f);
}

}  // namespace impeccable::obs
