#pragma once
// Metrics registry — named Counter / Gauge / Histogram handles.
//
// Handles are created (or found) by name through the registry, then held by
// reference: registration takes a lock, but add/set/observe on a held handle
// is a relaxed atomic op with no allocation — safe on the hot path.
// Registry storage is node-based (std::map), so handle references stay valid
// for the registry's lifetime. snapshot via to_json() emits one JSON
// document with keys in sorted (deterministic) order.

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace impeccable::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-spaced histogram layout: `buckets` equal ratios spanning
/// [lower, upper); values below go to the underflow bin, values at or above
/// `upper` to the overflow bin. Zero and negative observations are valid
/// inputs (the log map is never applied to them — they land in underflow and
/// still contribute to count/sum/min/max); NaN observations are dropped
/// entirely so one bad sample cannot poison the aggregates. A spec with
/// non-positive or non-finite bounds falls back to the default layout.
struct HistogramSpec {
  double lower = 1e-6;
  double upper = 1e3;
  int buckets = 54;  ///< 6 per decade over 9 decades by default
};

class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec = {});

  void observe(double v);

  /// Bucket for `v`: -1 = underflow, buckets = overflow, else [0, buckets).
  int bucket_index(double v) const;
  /// Lower edge of bucket i (i in [0, buckets]; i == buckets gives `upper`).
  double bucket_bound(int i) const;

  struct Snapshot {
    std::vector<std::uint64_t> counts;  ///< per bucket
    std::uint64_t underflow = 0, overflow = 0, count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;  ///< min/max valid iff count > 0
  };
  Snapshot snapshot() const;

  /// Estimated q-quantile (q in [0, 1], clamped) from the log-spaced
  /// buckets: the bucket holding rank q·count is located by cumulative
  /// count and the value linearly interpolated within its edges, clipped
  /// to the observed [min, max] (underflow/overflow ranks interpolate
  /// against min/max directly). Resolution is therefore one bucket width —
  /// ~18% relative at the default 6-buckets-per-decade layout. Returns NaN
  /// on an empty histogram. quantile(0.5)/quantile(0.99) are the p50/p99
  /// every latency report in bench/ uses.
  double quantile(double q) const;

  const HistogramSpec& spec() const { return spec_; }

 private:
  HistogramSpec spec_;
  double log_lower_ = 0.0, inv_log_step_ = 0.0;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> underflow_{0}, overflow_{0}, count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_, max_;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. References stay valid while the registry lives.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `spec` applies only on first creation of `name`.
  Histogram& histogram(std::string_view name, const HistogramSpec& spec = {});

  /// One JSON document: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Deterministic for identical recorded values (sorted keys, exact ints,
  /// shortest-round-trip doubles).
  void to_json(std::ostream& os) const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace impeccable::obs
