#pragma once
// obs::Recorder — campaign-wide span tracing behind one API.
//
// The RADICAL-analytics role, generalized: every layer of the stack (campaign
// stages, per-ligand docking, surrogate train/predict, ESMACS replicas, pool
// workers, rct task execution) records Span intervals into per-thread
// buffers that merge on flush. A Trace is a plain value; exporters
// (trace_export.hpp) turn it into Chrome trace_event JSON — loadable in
// chrome://tracing or Perfetto — or CSV.
//
// Clock domains: the recorder's clock is pluggable and is, by convention,
// ExecutionBackend::now() — so a SimBackend-driven trace is in virtual
// seconds and a LocalBackend-driven trace in wall seconds, with one schema.
//
// Cost model: with no recorder installed (obs::global() == nullptr) an
// instrumented scope is a single branch — no clock read, no allocation.
// With a recorder, a span is two clock reads plus one buffer push on the
// owning thread; counters are relaxed atomic adds on held handles.
//
// Threading: a Span must begin and end on the same thread (per-thread parent
// stacks). Cross-thread causality is expressed by passing an explicit parent
// span id (Span::id() of the enclosing span) to work fanned out on a pool.
// Recorder::emit() accepts fully-formed records for event-loop code (the
// discrete-event backend) that cannot use RAII scopes.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "impeccable/obs/metrics.hpp"

namespace impeccable::obs {

using SpanId = std::uint64_t;

/// Span categories wired through the stack. Chrome's "cat" field; the
/// acceptance trace of one campaign iteration contains all of them.
namespace cat {
inline constexpr const char* kStage = "stage";  ///< campaign stage (EnTK)
inline constexpr const char* kTask = "task";    ///< rct task execution
inline constexpr const char* kDock = "dock";    ///< per-ligand docking
inline constexpr const char* kMl = "ml";        ///< surrogate train/predict
inline constexpr const char* kFe = "fe";        ///< free-energy replicas
inline constexpr const char* kPool = "pool";    ///< thread-pool jobs
inline constexpr const char* kServe = "serve";  ///< inference-server batches
inline constexpr const char* kRaptor = "raptor";  ///< RAPTOR bulk dispatch
}  // namespace cat

struct SpanArg {
  std::string key;
  double num = 0.0;
  std::string str;
  bool is_num = true;
};

struct SpanRecord {
  std::string name;
  const char* category = "";  ///< static-lifetime string (cat::k*)
  double start = 0.0, end = 0.0;
  std::uint32_t thread = 0;  ///< dense per-recorder lane, assigned on emit
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root
  std::vector<SpanArg> args;

  double duration() const { return end - start; }
  void arg(std::string key, double v);
  void arg(std::string key, std::string v);
};

/// Flushed spans, sorted by (start, id).
struct Trace {
  std::vector<SpanRecord> spans;
  std::uint32_t thread_lanes = 0;  ///< number of distinct thread lanes
};

class Recorder {
 public:
  using Clock = std::function<double()>;

  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Install the span clock (by convention ExecutionBackend::now()). An
  /// empty function restores the default wall clock (steady seconds since
  /// construction). Not synchronized against concurrent recording — install
  /// during setup, before spans are live, and reset before the clock's
  /// captures die.
  void set_clock(Clock clock);
  double now() const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Push a fully-formed record into the calling thread's buffer. The
  /// thread lane is assigned here; a zero id is replaced with a fresh one.
  void emit(SpanRecord rec);

  /// Merge all per-thread buffers and clear them.
  Trace take();
  /// Merge without clearing (open spans are still absent: a span is only
  /// buffered when it ends).
  Trace snapshot() const;

  /// Innermost open span on the calling thread (0 = none). This is what an
  /// implicit-parent Span will attach to.
  SpanId current_span() const;

 private:
  friend class Span;

  struct ThreadState {
    std::thread::id owner;
    std::uint32_t lane = 0;
    std::vector<SpanId> stack;  ///< owner thread only
    mutable std::mutex mu;      ///< guards `done`
    std::vector<SpanRecord> done;
  };

  ThreadState& thread_state();
  SpanId next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::atomic<SpanId> next_id_{1};
  std::uint64_t generation_;  ///< invalidates thread-local caches
  Clock clock_;
  std::chrono::steady_clock::time_point epoch_;
  MetricsRegistry metrics_;
};

/// Process-global recorder: nullptr (recording disabled) unless installed.
Recorder* global();
/// Install `rec` (may be nullptr); returns the previous recorder.
Recorder* set_global(Recorder* rec);

/// RAII install/uninstall of the global recorder.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* rec) : prev_(set_global(rec)) {}
  ~ScopedRecorder() { set_global(prev_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

/// RAII span handle. Inactive (zero-cost beyond one branch) when the
/// recorder is null. `parent` defaults to the innermost open span on this
/// thread; pass an explicit id (or 0 for root) to parent across threads.
class Span {
 public:
  static constexpr SpanId kCurrent = ~SpanId{0};

  Span() = default;
  // The null-recorder fast path stays inline: no out-of-line call, no clock
  // read — just the SSO construction of `name` and one branch.
  Span(const char* category, std::string name, Recorder* rec = global(),
       SpanId parent = kCurrent) {
    if (rec) begin(category, std::move(name), rec, parent);
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return recorder_ != nullptr; }
  SpanId id() const { return rec_.id; }
  /// Recorder-clock time the span opened (0 when inactive).
  double start_time() const { return rec_.start; }

  void arg(std::string key, double v);
  void arg(std::string key, std::string v);

  /// End early (idempotent; the destructor calls it). Must run on the
  /// thread that constructed the span.
  void end();

 private:
  void begin(const char* category, std::string name, Recorder* rec,
             SpanId parent);

  Recorder* recorder_ = nullptr;
  Recorder::ThreadState* ts_ = nullptr;
  SpanRecord rec_;
};

}  // namespace impeccable::obs
