#include "impeccable/obs/csv.hpp"

#include <charconv>
#include <cmath>

namespace impeccable::obs {

void CsvWriter::separate() {
  if (!first_) os_.put(',');
  first_ = false;
}

CsvWriter& CsvWriter::cell(std::string_view v) {
  separate();
  const bool needs_quotes =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    os_ << v;
    return *this;
  }
  os_.put('"');
  for (char c : v) {
    if (c == '"') os_.put('"');
    os_.put(c);
  }
  os_.put('"');
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "nan";
    return *this;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os_.write(buf, res.ptr - buf);
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

CsvWriter& CsvWriter::cell(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

void CsvWriter::end_row() {
  os_.put('\n');
  first_ = true;
}

}  // namespace impeccable::obs
