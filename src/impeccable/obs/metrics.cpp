#include "impeccable/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "impeccable/obs/json.hpp"

namespace impeccable::obs {

namespace {

/// Relaxed CAS accumulate for atomic<double> (fetch_add on floating atomics
/// is C++20 but not universally lock-free; the CAS loop is portable).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace {

HistogramSpec sanitize(HistogramSpec spec) {
  // Non-finite bounds would degenerate the log map (log(inf) collapses
  // inv_log_step_ to 0, and bucket_bound() then emits inf/NaN edges into
  // JSON snapshots), so they are rejected along with non-positive lower.
  if (!(spec.lower > 0.0) || !(spec.upper > spec.lower) ||
      !std::isfinite(spec.lower) || !std::isfinite(spec.upper) ||
      spec.buckets < 1)
    return HistogramSpec{};  // fall back to the default layout
  return spec;
}

}  // namespace

Histogram::Histogram(const HistogramSpec& spec)
    : spec_(sanitize(spec)),
      counts_(static_cast<std::size_t>(spec_.buckets)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  log_lower_ = std::log(spec_.lower);
  inv_log_step_ = static_cast<double>(spec_.buckets) /
                  (std::log(spec_.upper) - log_lower_);
}

int Histogram::bucket_index(double v) const {
  if (!(v >= spec_.lower)) return -1;  // also catches NaN
  if (v >= spec_.upper) return spec_.buckets;
  // The log map drifts by an ulp around bucket edges (an exact decade edge
  // can land at 0.99999999…); the epsilon — ~1e-9 relative in value space —
  // settles edge values into the bucket they nominally open.
  const double x = (std::log(v) - log_lower_) * inv_log_step_;
  const int b = static_cast<int>(std::floor(x + 1e-9));
  return std::clamp(b, 0, spec_.buckets - 1);
}

double Histogram::bucket_bound(int i) const {
  return std::exp(log_lower_ + static_cast<double>(i) / inv_log_step_);
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;  // would poison sum (and JSON snapshots)
  const int b = bucket_index(v);
  if (b < 0)
    underflow_.fetch_add(1, std::memory_order_relaxed);
  else if (b >= spec_.buckets)
    overflow_.fetch_add(1, std::memory_order_relaxed);
  else
    counts_[static_cast<std::size_t>(b)].fetch_add(1,
                                                   std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_)
    s.counts.push_back(c.load(std::memory_order_relaxed));
  s.underflow = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::quantile(double q) const {
  const Snapshot s = snapshot();
  if (s.count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count]; walk the cumulative distribution underflow ->
  // buckets -> overflow and interpolate inside the bucket that crosses it.
  const double rank = q * static_cast<double>(s.count);
  double cum = 0.0;
  auto interp = [&](double lo, double hi, double n) {
    if (n <= 0.0) return lo;
    const double frac = std::clamp((rank - cum) / n, 0.0, 1.0);
    return lo + frac * (hi - lo);
  };
  auto clip = [&](double v) { return std::clamp(v, s.min, s.max); };
  if (rank <= cum + static_cast<double>(s.underflow))
    return clip(interp(s.min, std::min(spec_.lower, s.max),
                       static_cast<double>(s.underflow)));
  cum += static_cast<double>(s.underflow);
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    const double n = static_cast<double>(s.counts[i]);
    if (rank <= cum + n && n > 0.0)
      return clip(interp(bucket_bound(static_cast<int>(i)),
                         bucket_bound(static_cast<int>(i) + 1), n));
    cum += n;
  }
  return clip(interp(std::max(spec_.upper, s.min), s.max,
                     static_cast<double>(s.overflow)));
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    std::shared_lock lk(mu_);
    if (auto it = counters_.find(name); it != counters_.end())
      return it->second;
  }
  std::unique_lock lk(mu_);
  return counters_[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    std::shared_lock lk(mu_);
    if (auto it = gauges_.find(name); it != gauges_.end()) return it->second;
  }
  std::unique_lock lk(mu_);
  return gauges_[std::string(name)];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramSpec& spec) {
  {
    std::shared_lock lk(mu_);
    if (auto it = histograms_.find(name); it != histograms_.end())
      return it->second;
  }
  std::unique_lock lk(mu_);
  return histograms_.try_emplace(std::string(name), spec).first->second;
}

void MetricsRegistry::to_json(std::ostream& os) const {
  std::shared_lock lk(mu_);
  json::Writer w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const auto s = h.snapshot();
    w.key(name).begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    if (s.count > 0) {
      w.kv("min", s.min);
      w.kv("max", s.max);
    }
    w.kv("underflow", s.underflow);
    w.kv("overflow", s.overflow);
    // Sparse bucket dump: [lower_edge, count] pairs for occupied buckets.
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (s.counts[i] == 0) continue;
      w.begin_array();
      w.value(h.bucket_bound(static_cast<int>(i)));
      w.value(s.counts[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace impeccable::obs
