#pragma once
// Minimal streaming JSON writer — the one serialization surface behind every
// stats dump in the repo: the Chrome-trace exporter, the metrics-registry
// snapshot, RaptorStats/SessionProfile/IterationMetrics::to_json.
//
// The writer is a thin state machine over an std::ostream: begin/end
// object/array, key, value. Commas and quoting are handled here so callers
// never concatenate JSON by hand. Doubles print shortest-round-trip
// (std::to_chars), which makes snapshots byte-deterministic for identical
// inputs.

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace impeccable::obs::json {

/// Escape and quote `s` as a JSON string literal (including the quotes).
void write_string(std::ostream& os, std::string_view s);

/// Shortest-round-trip double. NaN/inf are not valid JSON and print as null.
void write_double(std::ostream& os, double v);

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or begin_*.
  Writer& key(std::string_view k);

  Writer& value(double v);
  Writer& value(bool v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& null();

  /// key + value in one call.
  template <typename T>
  Writer& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  void separate();  ///< comma/ newline management before a new element

  std::ostream& os_;
  struct Level {
    bool array = false;
    bool first = true;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace impeccable::obs::json
