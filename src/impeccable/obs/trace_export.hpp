#pragma once
// Trace exporters: Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev) and flat CSV for external plotting.

#include <ostream>
#include <string>

#include "impeccable/obs/recorder.hpp"

namespace impeccable::obs {

/// Chrome trace_event "JSON object format": complete ("ph":"X") events with
/// microsecond timestamps, one tid per recorder thread lane, span args under
/// "args" (plus the span/parent ids, so parenting survives the export).
void write_chrome_trace(const Trace& trace, std::ostream& os, int pid = 1);
void write_chrome_trace(const Trace& trace, const std::string& path,
                        int pid = 1);

/// One row per span: name,category,start,end,duration,thread,id,parent,args
/// (args serialized as k=v pairs separated by ';').
void write_trace_csv(const Trace& trace, std::ostream& os);
void write_trace_csv(const Trace& trace, const std::string& path);

}  // namespace impeccable::obs
