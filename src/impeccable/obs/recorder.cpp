#include "impeccable/obs/recorder.hpp"

#include <algorithm>
#include <cassert>

namespace impeccable::obs {

namespace {

std::atomic<Recorder*> g_global{nullptr};
std::atomic<std::uint64_t> g_generation{1};

/// Per-thread pointer into the most recently used recorder, invalidated by
/// recorder generation (addresses may be reused; generations are not).
struct TlsCache {
  const Recorder* rec = nullptr;
  std::uint64_t gen = 0;
  void* state = nullptr;
};
thread_local TlsCache tls_cache;

}  // namespace

void SpanRecord::arg(std::string key, double v) {
  SpanArg a;
  a.key = std::move(key);
  a.num = v;
  args.push_back(std::move(a));
}

void SpanRecord::arg(std::string key, std::string v) {
  SpanArg a;
  a.key = std::move(key);
  a.str = std::move(v);
  a.is_num = false;
  args.push_back(std::move(a));
}

Recorder::Recorder()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Recorder::~Recorder() = default;

void Recorder::set_clock(Clock clock) { clock_ = std::move(clock); }

double Recorder::now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Recorder::ThreadState& Recorder::thread_state() {
  if (tls_cache.rec == this && tls_cache.gen == generation_)
    return *static_cast<ThreadState*>(tls_cache.state);
  const auto me = std::this_thread::get_id();
  std::lock_guard lk(registry_mu_);
  ThreadState* ts = nullptr;
  for (const auto& t : threads_)
    if (t->owner == me) {
      ts = t.get();
      break;
    }
  if (!ts) {
    auto fresh = std::make_unique<ThreadState>();
    fresh->owner = me;
    fresh->lane = static_cast<std::uint32_t>(threads_.size());
    ts = fresh.get();
    threads_.push_back(std::move(fresh));
  }
  tls_cache = {this, generation_, ts};
  return *ts;
}

void Recorder::emit(SpanRecord rec) {
  ThreadState& ts = thread_state();
  rec.thread = ts.lane;
  if (rec.id == 0) rec.id = next_id();
  std::lock_guard lk(ts.mu);
  ts.done.push_back(std::move(rec));
}

namespace {

void sort_spans(std::vector<SpanRecord>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
}

}  // namespace

Trace Recorder::take() {
  Trace out;
  std::lock_guard lk(registry_mu_);
  out.thread_lanes = static_cast<std::uint32_t>(threads_.size());
  for (const auto& t : threads_) {
    std::lock_guard tlk(t->mu);
    out.spans.insert(out.spans.end(),
                     std::make_move_iterator(t->done.begin()),
                     std::make_move_iterator(t->done.end()));
    t->done.clear();
  }
  sort_spans(out.spans);
  return out;
}

Trace Recorder::snapshot() const {
  Trace out;
  std::lock_guard lk(registry_mu_);
  out.thread_lanes = static_cast<std::uint32_t>(threads_.size());
  for (const auto& t : threads_) {
    std::lock_guard tlk(t->mu);
    out.spans.insert(out.spans.end(), t->done.begin(), t->done.end());
  }
  sort_spans(out.spans);
  return out;
}

SpanId Recorder::current_span() const {
  // Read-only peek at this thread's stack; no registration on miss.
  if (tls_cache.rec == this && tls_cache.gen == generation_) {
    const auto* ts = static_cast<const ThreadState*>(tls_cache.state);
    return ts->stack.empty() ? 0 : ts->stack.back();
  }
  return 0;
}

Recorder* global() { return g_global.load(std::memory_order_acquire); }

Recorder* set_global(Recorder* rec) {
  return g_global.exchange(rec, std::memory_order_acq_rel);
}

void Span::begin(const char* category, std::string name, Recorder* rec,
                 SpanId parent) {
  recorder_ = rec;
  ts_ = &rec->thread_state();
  rec_.category = category;
  rec_.name = std::move(name);
  rec_.id = rec->next_id();
  rec_.parent =
      parent == kCurrent ? (ts_->stack.empty() ? 0 : ts_->stack.back())
                         : parent;
  rec_.thread = ts_->lane;
  rec_.start = rec->now();
  ts_->stack.push_back(rec_.id);
}

void Span::arg(std::string key, double v) {
  if (recorder_) rec_.arg(std::move(key), v);
}

void Span::arg(std::string key, std::string v) {
  if (recorder_) rec_.arg(std::move(key), std::move(v));
}

void Span::end() {
  if (!recorder_) return;
  rec_.end = recorder_->now();
  assert(!ts_->stack.empty() && ts_->stack.back() == rec_.id &&
         "Span must end on its own thread, innermost first");
  ts_->stack.pop_back();
  {
    std::lock_guard lk(ts_->mu);
    ts_->done.push_back(std::move(rec_));
  }
  recorder_ = nullptr;
  ts_ = nullptr;
}

}  // namespace impeccable::obs
