#include "impeccable/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace impeccable::obs::json {

void write_string(std::ostream& os, std::string_view s) {
  os.put('"');
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os.put(c);
        }
    }
  }
  os.put('"');
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

void Writer::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) os_.put(',');
  stack_.back().first = false;
}

Writer& Writer::begin_object() {
  separate();
  os_.put('{');
  stack_.push_back({false, true});
  return *this;
}

Writer& Writer::end_object() {
  os_.put('}');
  stack_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  separate();
  os_.put('[');
  stack_.push_back({true, true});
  return *this;
}

Writer& Writer::end_array() {
  os_.put(']');
  stack_.pop_back();
  return *this;
}

Writer& Writer::key(std::string_view k) {
  separate();
  write_string(os_, k);
  os_.put(':');
  after_key_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  separate();
  write_double(os_, v);
  return *this;
}

Writer& Writer::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  separate();
  write_string(os_, v);
  return *this;
}

Writer& Writer::null() {
  separate();
  os_ << "null";
  return *this;
}

}  // namespace impeccable::obs::json
