#pragma once
// Shared CSV writer — RFC-4180 quoting in one place. Used by the trace CSV
// exporter and by rct::SessionProfile::write_csv (which used to hand-roll
// its rows).

#include <cstdint>
#include <ostream>
#include <string_view>

namespace impeccable::obs {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Quoted iff the cell contains a comma, quote, or newline.
  CsvWriter& cell(std::string_view v);
  CsvWriter& cell(const char* v) { return cell(std::string_view(v)); }
  CsvWriter& cell(double v);
  CsvWriter& cell(std::int64_t v);
  CsvWriter& cell(std::uint64_t v);
  CsvWriter& cell(int v) { return cell(static_cast<std::int64_t>(v)); }

  void end_row();

 private:
  void separate();
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace impeccable::obs
