#include "impeccable/core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/protonation.hpp"
#include "impeccable/core/checkpoint.hpp"
#include "impeccable/chem/diversity.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/md/simulation.hpp"
#include "impeccable/ml/gemm.hpp"
#include "impeccable/ml/lof.hpp"
#include "impeccable/ml/res.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/obs/recorder.hpp"
#include "impeccable/rct/backend.hpp"

namespace impeccable::core {

using common::Rng;

Target Target::make(const std::string& name, std::uint64_t seed,
                    int protein_residues, int grid_nodes,
                    int crystal_structures) {
  Target t;
  t.name = name;
  t.seed = seed;
  t.receptor = dock::Receptor::synthesize(name, seed);
  dock::GridOptions gopts;
  gopts.nodes = grid_nodes;
  t.grid = dock::compute_grid(t.receptor, gopts);
  t.grids.push_back(t.grid);
  // Additional crystal structures: mild variations of the same pocket
  // (different seeds, same target identity).
  for (int k = 1; k < crystal_structures; ++k) {
    const auto variant = dock::Receptor::synthesize(
        name + "-xtal" + std::to_string(k), seed + 7919 * static_cast<std::uint64_t>(k));
    t.grids.push_back(dock::compute_grid(variant, gopts));
  }
  md::ProteinOptions popts;
  popts.residues = protein_residues;
  t.protein = md::build_protein(seed, popts);
  return t;
}

namespace {

/// Mutable state of one campaign iteration, shared by the stage payloads.
/// Tasks write only to their own index; stage barriers order the phases.
struct IterationState {
  // S1 inputs/outputs.
  std::vector<std::size_t> dock_indices;  ///< into the library
  std::vector<chem::Molecule> molecules;  ///< parsed, parallel to dock_indices
  std::vector<dock::DockResult> dock_results;

  // S3-CG.
  std::vector<std::size_t> cg_pick;  ///< indices into dock_indices
  std::vector<md::System> cg_systems;
  std::vector<int> cg_rotatable;
  std::vector<fe::EsmacsResult> cg_results;

  // S2 -> S3-FG.
  struct FgJob {
    std::size_t cg_index = 0;  ///< which CG compound this conformation is of
    md::System system;
    int rotatable = 0;
  };
  std::vector<FgJob> fg_jobs;
  std::vector<fe::EsmacsResult> fg_results;

  // Stage timestamps (backend seconds) for throughput metrics.
  double s1_begin = 0.0, s1_end = 0.0;
};

/// Deterministic per-item seed derivation.
std::uint64_t item_seed(std::uint64_t base, std::uint64_t salt, std::uint64_t i) {
  std::uint64_t s = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  common::splitmix64(s);
  return s ^ (i * 0xbf58476d1ce4e5b9ULL);
}

}  // namespace

Campaign::Campaign(Target target, const CampaignConfig& config)
    : target_(std::move(target)), config_(config) {}

CampaignReport Campaign::run() {
  CampaignReport report;

  const chem::CompoundLibrary library = chem::generate_library(
      config_.library_name, config_.library_size, config_.library_seed);

  // Parse and depict the whole library once (ML1 inference input).
  std::vector<chem::Molecule> lib_mols;
  std::vector<chem::Image> lib_images;
  lib_mols.reserve(library.size());
  lib_images.reserve(library.size());
  for (const auto& entry : library.entries) {
    chem::Molecule mol = chem::parse_smiles(entry.smiles);
    if (config_.prepare_ligands_at_ph > 0.0)
      mol = chem::protonate_for_ph(mol, config_.prepare_ligands_at_ph);
    lib_mols.push_back(std::move(mol));
    lib_images.push_back(chem::depict(lib_mols.back()));
    CompoundRecord rec;
    rec.id = entry.id;
    rec.smiles = entry.smiles;
    report.compounds.emplace(entry.id, std::move(rec));
  }

  // Accumulated ML1 training data: depictions + dock scores (feedback loop).
  std::vector<chem::Image> train_images;
  std::vector<double> train_scores;

  // Resume: restore prior records and rebuild the training set from them.
  if (!config_.resume_checkpoint.empty()) {
    const auto prev = read_checkpoint(config_.resume_checkpoint);
    for (std::size_t i = 0; i < library.size(); ++i) {
      const auto it = prev.find(library.entries[i].id);
      if (it == prev.end()) continue;
      auto& rec = report.compounds.at(library.entries[i].id);
      rec = it->second;
      if (rec.docked) {
        train_images.push_back(lib_images[i]);
        train_scores.push_back(rec.dock_score);
      }
    }
  }

  rct::LocalBackend local(config_.threads);
  rct::ProfiledBackend backend(local, config_.recorder);
  // Every instrumented layer below (dock, ml, fe, pool) records through the
  // global recorder; restored on scope exit.
  obs::ScopedRecorder scoped(&backend.trace_recorder());
  rct::AppManager manager(backend);
  // The ML1 surrogate picks the pool up through the process-wide compute
  // pool (restored on exit so nothing dangles past `local`'s lifetime).
  struct PoolGuard {
    common::ThreadPool* prev;
    explicit PoolGuard(common::ThreadPool* p) : prev(ml::set_compute_pool(p)) {}
    ~PoolGuard() { ml::set_compute_pool(prev); }
  } pool_guard(local.compute_pool());
  Rng campaign_rng(config_.seed);

  for (int iter = 0; iter < config_.iterations; ++iter) {
    const auto t_iter0 = std::chrono::steady_clock::now();
    obs::Span iter_span(obs::cat::kStage, "iteration-" + std::to_string(iter));
    auto state = std::make_shared<IterationState>();
    IterationMetrics metrics;
    metrics.iteration = iter;

    // ------------------------------------------------------------ ML1
    // Select the docking candidates. Iteration 0 bootstraps with a random
    // diverse sample; later iterations train the surrogate on accumulated
    // docking data and screen the entire library.
    std::vector<double> surrogate_scores(library.size(), 0.5);
    ml::SurrogateModel surrogate(config_.surrogate);

    rct::Pipeline pipeline("iteration-" + std::to_string(iter));
    rct::Stage ml1;
    ml1.name = "ML1";
    {
      rct::TaskDescription t;
      t.name = "ml1-train-infer";
      t.payload = [&, state, iter] {
        if (iter > 0 && train_images.size() >= 8) {
          const double best = *std::min_element(train_scores.begin(), train_scores.end());
          const double worst = *std::max_element(train_scores.begin(), train_scores.end());
          std::vector<float> labels;
          labels.reserve(train_scores.size());
          for (double s : train_scores)
            labels.push_back(ml::score_to_label(s, best, worst));
          surrogate.train(train_images, labels);
          const auto pred = surrogate.predict_batch(lib_images);
          for (std::size_t i = 0; i < pred.size(); ++i)
            surrogate_scores[i] = pred[i];
          report.flops->add("ML1", surrogate.flops_per_image() *
                                      (lib_images.size() +
                                       3 * train_images.size() * config_.surrogate.epochs));
        }
      };
      ml1.tasks.push_back(std::move(t));
    }

    // post_exec of ML1: pick the dock set and build the S1 stage.
    ml1.post_exec = [&, state, iter](rct::Pipeline& pipe) {
      std::vector<std::size_t> chosen;
      if (iter == 0 || train_images.size() < 8) {
        // Bootstrap: random sample.
        std::vector<std::size_t> all(library.size());
        std::iota(all.begin(), all.end(), std::size_t{0});
        campaign_rng.shuffle(all);
        all.resize(std::min(config_.bootstrap_docks, all.size()));
        chosen = std::move(all);
      } else {
        metrics.library_screened = library.size();
        // Rank by surrogate; take the top fraction plus exploration picks.
        std::vector<std::size_t> order(library.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
          return surrogate_scores[a] > surrogate_scores[b];
        });
        std::size_t budget = std::max<std::size_t>(
            4, static_cast<std::size_t>(config_.dock_top_fraction *
                                        static_cast<double>(library.size())));
        if (config_.auto_dock_budget) {
          // Validation set: compounds with both a surrogate prediction and a
          // docking ground truth.
          std::vector<double> pred, truth;
          for (std::size_t i = 0; i < library.size(); ++i) {
            const auto& rec = report.compounds.at(library.entries[i].id);
            if (!rec.docked) continue;
            pred.push_back(surrogate_scores[i]);
            truth.push_back(-rec.dock_score);
          }
          if (pred.size() >= 20) {
            const ml::EnrichmentSurface res(pred, truth);
            const double frac = res.budget_for(config_.auto_budget_top,
                                               config_.auto_budget_coverage);
            budget = std::clamp<std::size_t>(
                static_cast<std::size_t>(frac * static_cast<double>(library.size())),
                4, library.size() / 2);
          }
        }
        const std::size_t explore = static_cast<std::size_t>(
            config_.explore_fraction * static_cast<double>(budget));
        const std::size_t top = budget - explore;
        for (std::size_t k = 0; k < top && k < order.size(); ++k)
          chosen.push_back(order[k]);
        // Exploration: uniform over the remainder (Sec. 7.1.1: sample lower
        // ranks so high-affinity compounds are not missed).
        for (std::size_t e = 0; e < explore && top + e < order.size(); ++e) {
          const std::size_t lo = top;
          const std::size_t span = order.size() - lo;
          chosen.push_back(order[lo + campaign_rng.index(span)]);
        }
        std::sort(chosen.begin(), chosen.end());
        chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
      }

      // Never redo work restored from a checkpoint.
      chosen.erase(std::remove_if(chosen.begin(), chosen.end(),
                                  [&](std::size_t idx) {
                                    return report.compounds
                                        .at(library.entries[idx].id)
                                        .docked;
                                  }),
                   chosen.end());

      state->dock_indices = std::move(chosen);
      state->molecules.reserve(state->dock_indices.size());
      for (std::size_t idx : state->dock_indices)
        state->molecules.push_back(lib_mols[idx]);
      state->dock_results.resize(state->dock_indices.size());
      state->s1_begin = backend.now();

      rct::Stage s1;
      s1.name = "S1";
      for (std::size_t i = 0; i < state->dock_indices.size(); ++i) {
        rct::TaskDescription t;
        t.name = "dock-" + library.entries[state->dock_indices[i]].id;
        t.gpus = 1;
        t.payload = [&, state, i] {
          dock::DockOptions dopts = config_.dock;
          dopts.seed = item_seed(config_.seed, 0xd0c, state->dock_indices[i]);
          dopts.pool = backend.compute_pool();
          const auto& id = library.entries[state->dock_indices[i]].id;
          // S1 protocol: enumerate conformers, dock against every crystal
          // structure of the target, keep the best pose overall.
          if (target_.grids.size() > 1) {
            state->dock_results[i] = dock::dock_multi_structure(
                target_.grids, state->molecules[i], id, dopts);
          } else if (config_.conformers_per_ligand > 1) {
            state->dock_results[i] = dock::dock_conformer_ensemble(
                *target_.grid, state->molecules[i], id,
                config_.conformers_per_ligand, dopts);
          } else {
            state->dock_results[i] =
                dock::dock(*target_.grid, state->molecules[i], id, dopts);
          }
        };
        s1.tasks.push_back(std::move(t));
      }

      // post_exec of S1: record scores, feed the training set, select the
      // diverse CG set, and build the S3-CG stage.
      s1.post_exec = [&, state](rct::Pipeline& p2) {
        state->s1_end = backend.now();
        for (std::size_t i = 0; i < state->dock_indices.size(); ++i) {
          const auto& dres = state->dock_results[i];
          auto& rec = report.compounds.at(dres.ligand_id);
          rec.dock_score = dres.best_score;
          rec.docked = true;
          rec.surrogate_score = surrogate_scores[state->dock_indices[i]];
          train_images.push_back(lib_images[state->dock_indices[i]]);
          train_scores.push_back(dres.best_score);
          report.flops->add(
              "S1", dres.evaluations *
                        dock::flops_per_evaluation(
                            state->molecules[i].atom_count(),
                            static_cast<int>(state->molecules[i].atom_count()) * 4));
        }

        // Diversity pick over the docked set (Sec. 7.1.2).
        std::vector<chem::BitSet> fps;
        fps.reserve(state->molecules.size());
        for (const auto& mol : state->molecules)
          fps.push_back(chem::morgan_fingerprint(mol));
        state->cg_pick = chem::maxmin_pick(
            fps, std::min(config_.cg_compounds, fps.size()),
            item_seed(config_.seed, 0xd17, 0));

        state->cg_systems.reserve(state->cg_pick.size());
        state->cg_rotatable.reserve(state->cg_pick.size());
        for (std::size_t k : state->cg_pick) {
          state->cg_systems.push_back(md::build_lpc(
              target_.protein, state->molecules[k], state->dock_results[k].best_coords));
          state->cg_rotatable.push_back(
              chem::compute_descriptors(state->molecules[k]).rotatable_bonds);
        }
        state->cg_results.resize(state->cg_pick.size());

        rct::Stage cg;
        cg.name = "S3-CG";
        for (std::size_t j = 0; j < state->cg_pick.size(); ++j) {
          rct::TaskDescription t;
          t.name = "cg-" + state->dock_results[state->cg_pick[j]].ligand_id;
          t.gpus = 1;
          t.payload = [&, state, j] {
            fe::EsmacsConfig cfg = config_.esmacs_cg;
            cfg.keep_trajectories = true;  // S2 consumes the ensembles
            state->cg_results[j] =
                fe::run_esmacs(state->cg_systems[j], state->cg_rotatable[j], cfg,
                               item_seed(config_.seed, 0xc6, j),
                               backend.compute_pool());
          };
          cg.tasks.push_back(std::move(t));
        }

        // post_exec of S3-CG: record energies and build the S2 stage.
        cg.post_exec = [&, state](rct::Pipeline& p3) {
          for (std::size_t j = 0; j < state->cg_pick.size(); ++j) {
            const auto& id = state->dock_results[state->cg_pick[j]].ligand_id;
            auto& rec = report.compounds.at(id);
            rec.cg_energy = state->cg_results[j].binding_free_energy;
            rec.cg_error = state->cg_results[j].std_error;
            rec.cg_done = true;
            report.flops->add(
                "S3-CG", state->cg_results[j].md_steps *
                             md::flops_per_md_step(
                                 state->cg_systems[j].topology.bead_count(),
                                 static_cast<std::uint64_t>(
                                     state->cg_systems[j].topology.bead_count()) * 24));
          }

          rct::Stage s2;
          s2.name = "S2";
          rct::TaskDescription t;
          t.name = "aae-train-lof";
          t.gpus = 6;  // the paper trains with 6 GPUs per model
          t.payload = [&, state] {
            // Rank CG compounds by energy; keep the top binders.
            std::vector<std::size_t> order(state->cg_pick.size());
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
              return state->cg_results[a].binding_free_energy <
                     state->cg_results[b].binding_free_energy;
            });
            order.resize(std::min(config_.top_binders, order.size()));

            // Collect Cα point clouds from every frame of every replica of
            // the selected compounds.
            struct CloudRef {
              std::size_t cg_index;
              std::size_t replica;
              std::size_t frame;
            };
            std::vector<std::vector<common::Vec3>> clouds;
            std::vector<CloudRef> refs;
            for (std::size_t j : order) {
              const auto& trajs = state->cg_results[j].trajectories;
              for (std::size_t r = 0; r < trajs.size(); ++r) {
                for (std::size_t f = 0; f < trajs[r].frames.size(); ++f) {
                  clouds.push_back(md::protein_point_cloud(
                      trajs[r].frames[f], state->cg_systems[j]));
                  refs.push_back({j, r, f});
                }
              }
            }
            if (clouds.empty()) return;

            ml::Aae3d aae(static_cast<int>(clouds.front().size()), config_.aae);
            aae.train(clouds);
            const auto latent = aae.embed_batch(clouds);
            const auto lof = ml::local_outlier_factor(
                latent, std::min<int>(10, static_cast<int>(latent.size()) - 1));
            report.flops->add("S2", aae.flops_per_sample() * clouds.size() *
                                       static_cast<std::uint64_t>(config_.aae.epochs));

            // Per binder: the most outlying conformations seed S3-FG.
            for (std::size_t j : order) {
              std::vector<std::pair<double, std::size_t>> mine;
              for (std::size_t c = 0; c < refs.size(); ++c)
                if (refs[c].cg_index == j) mine.emplace_back(lof[c], c);
              std::sort(mine.rbegin(), mine.rend());
              const std::size_t take =
                  std::min(config_.outliers_per_binder, mine.size());
              for (std::size_t o = 0; o < take; ++o) {
                const CloudRef& ref = refs[mine[o].second];
                IterationState::FgJob job;
                job.cg_index = j;
                job.system = state->cg_systems[j];
                job.system.positions = state->cg_results[j]
                                           .trajectories[ref.replica]
                                           .frames[ref.frame]
                                           .positions;
                job.rotatable = state->cg_rotatable[j];
                state->fg_jobs.push_back(std::move(job));
              }
            }
            state->fg_results.resize(state->fg_jobs.size());
          };
          s2.tasks.push_back(std::move(t));

          // post_exec of S2: build the S3-FG stage.
          s2.post_exec = [&, state](rct::Pipeline& p4) {
            rct::Stage fg;
            fg.name = "S3-FG";
            for (std::size_t f = 0; f < state->fg_jobs.size(); ++f) {
              rct::TaskDescription t2;
              t2.name = "fg-" + std::to_string(f);
              t2.gpus = 1;
              t2.payload = [&, state, f] {
                state->fg_results[f] = fe::run_esmacs(
                    state->fg_jobs[f].system, state->fg_jobs[f].rotatable,
                    config_.esmacs_fg, item_seed(config_.seed, 0xf6, f),
                    backend.compute_pool());
              };
              fg.tasks.push_back(std::move(t2));
            }
            fg.post_exec = [&, state](rct::Pipeline&) {
              for (std::size_t f = 0; f < state->fg_jobs.size(); ++f) {
                const std::size_t j = state->fg_jobs[f].cg_index;
                const auto& id = state->dock_results[state->cg_pick[j]].ligand_id;
                auto& rec = report.compounds.at(id);
                rec.fg_energies.push_back(state->fg_results[f].binding_free_energy);
                report.flops->add(
                    "S3-FG", state->fg_results[f].md_steps *
                                 md::flops_per_md_step(
                                     state->fg_jobs[f].system.topology.bead_count(),
                                     static_cast<std::uint64_t>(
                                         state->fg_jobs[f].system.topology.bead_count()) * 24));
              }
            };
            p4.add_stage(std::move(fg));
          };
          p3.add_stage(std::move(s2));
        };
        p2.add_stage(std::move(cg));
      };
      pipe.add_stage(std::move(s1));
    };

    pipeline.add_stage(std::move(ml1));
    manager.run({std::move(pipeline)});

    // ------------------------------------------------------------ metrics
    metrics.docked = state->dock_indices.size();
    metrics.cg_runs = state->cg_pick.size();
    metrics.fg_runs = state->fg_jobs.size();
    if (metrics.library_screened == 0) metrics.library_screened = metrics.docked;
    metrics.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_iter0)
            .count();
    const double s1_wall = std::max(1e-9, state->s1_end - state->s1_begin);
    metrics.dock_throughput = static_cast<double>(metrics.docked) / s1_wall;
    metrics.effective_ligands_per_second =
        static_cast<double>(metrics.library_screened) /
        std::max(1e-9, metrics.wall_seconds);

    {
      std::vector<double> pred, truth;
      for (std::size_t i = 0; i < state->dock_indices.size(); ++i) {
        pred.push_back(surrogate_scores[state->dock_indices[i]]);
        truth.push_back(-state->dock_results[i].best_score);  // higher = better
      }
      metrics.surrogate_spearman =
          pred.size() >= 3 ? common::spearman(pred, truth) : 0.0;
    }
    {
      double best_cg = 0.0, best_fg = 0.0;
      for (const auto& r : state->cg_results)
        best_cg = std::min(best_cg, r.binding_free_energy);
      for (const auto& r : state->fg_results)
        best_fg = std::min(best_fg, r.binding_free_energy);
      metrics.best_cg_energy = best_cg;
      metrics.best_fg_energy = best_fg;
    }
    if (iter_span.active()) {
      iter_span.arg("docked", static_cast<double>(metrics.docked));
      iter_span.arg("cg_runs", static_cast<double>(metrics.cg_runs));
      iter_span.arg("fg_runs", static_cast<double>(metrics.fg_runs));
    }
    report.iterations.push_back(metrics);
  }
  local.pool().publish_metrics(backend.trace_recorder().metrics());
  report.profile = backend.profile();
  return report;
}

void IterationMetrics::to_json(std::ostream& os) const {
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("iteration", iteration);
  w.kv("library_screened", static_cast<std::uint64_t>(library_screened));
  w.kv("docked", static_cast<std::uint64_t>(docked));
  w.kv("cg_runs", static_cast<std::uint64_t>(cg_runs));
  w.kv("fg_runs", static_cast<std::uint64_t>(fg_runs));
  w.kv("wall_seconds", wall_seconds);
  w.kv("dock_throughput", dock_throughput);
  w.kv("effective_ligands_per_second", effective_ligands_per_second);
  w.kv("surrogate_spearman", surrogate_spearman);
  w.kv("best_cg_energy", best_cg_energy);
  w.kv("best_fg_energy", best_fg_energy);
  w.end_object();
}

std::vector<const CompoundRecord*> CampaignReport::cg_ranking() const {
  std::vector<const CompoundRecord*> out;
  for (const auto& [id, rec] : compounds)
    if (rec.cg_done) out.push_back(&rec);
  std::sort(out.begin(), out.end(), [](const CompoundRecord* a, const CompoundRecord* b) {
    return a->cg_energy < b->cg_energy;
  });
  return out;
}

}  // namespace impeccable::core
