#include "impeccable/core/campaign.hpp"

#include <algorithm>
#include <sstream>

#include "impeccable/core/multi_campaign.hpp"
#include "impeccable/obs/json.hpp"
#include "impeccable/rct/backend.hpp"

namespace impeccable::core {

Target Target::make(const std::string& name, std::uint64_t seed,
                    int protein_residues, int grid_nodes,
                    int crystal_structures) {
  Target t;
  t.name = name;
  t.seed = seed;
  t.receptor = dock::Receptor::synthesize(name, seed);
  dock::GridOptions gopts;
  gopts.nodes = grid_nodes;
  t.grid = dock::compute_grid(t.receptor, gopts);
  t.grids.push_back(t.grid);
  // Additional crystal structures: mild variations of the same pocket
  // (different seeds, same target identity).
  for (int k = 1; k < crystal_structures; ++k) {
    const auto variant = dock::Receptor::synthesize(
        name + "-xtal" + std::to_string(k), seed + 7919 * static_cast<std::uint64_t>(k));
    t.grids.push_back(dock::compute_grid(variant, gopts));
  }
  md::ProteinOptions popts;
  popts.residues = protein_residues;
  t.protein = md::build_protein(seed, popts);
  return t;
}

Campaign::Campaign(Target target, const CampaignConfig& config)
    : target_(std::move(target)), config_(config) {}

Campaign::Campaign(Target target, ScienceConfig science, ExecConfig exec)
    : target_(std::move(target)),
      config_(std::move(science), std::move(exec)) {}

CampaignReport Campaign::run() {
  rct::LocalBackend local(config_.threads);
  return run(local);
}

CampaignReport Campaign::run(rct::ExecutionBackend& raw) {
  // The single-target campaign is the one-entry special case of the
  // multi-target engine. FIFO ready order and no node priorities keep the
  // historical scheduling exactly; the science would be identical either
  // way (priorities are scheduling-only).
  MultiCampaignOptions opts;
  opts.ready_order = rct::AppManagerOptions::ReadyOrder::kFifo;
  opts.critical_path_priority = false;
  MultiCampaign multi(config_.exec(), opts);
  multi.add_target(target_, config_.science());
  MultiCampaignReport rep = multi.run(raw);
  return std::move(rep.reports.front());
}

void IterationMetrics::to_json(std::ostream& os) const {
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("iteration", iteration);
  w.kv("library_screened", static_cast<std::uint64_t>(library_screened));
  w.kv("docked", static_cast<std::uint64_t>(docked));
  w.kv("cg_runs", static_cast<std::uint64_t>(cg_runs));
  w.kv("fg_runs", static_cast<std::uint64_t>(fg_runs));
  w.kv("wall_seconds", wall_seconds);
  w.kv("dock_throughput", dock_throughput);
  w.kv("effective_ligands_per_second", effective_ligands_per_second);
  w.kv("surrogate_spearman", surrogate_spearman);
  w.kv("best_cg_energy", best_cg_energy);
  w.kv("best_fg_energy", best_fg_energy);
  w.end_object();
}

std::vector<const CompoundRecord*> CampaignReport::cg_ranking() const {
  std::vector<const CompoundRecord*> out;
  for (const auto& [id, rec] : compounds)
    if (rec.cg_done) out.push_back(&rec);
  std::sort(out.begin(), out.end(), [](const CompoundRecord* a, const CompoundRecord* b) {
    return a->cg_energy < b->cg_energy;
  });
  return out;
}

std::string CampaignReport::science_fingerprint() const {
  std::ostringstream os;
  obs::json::Writer w(os);
  w.begin_object();
  w.key("compounds");
  w.begin_array();
  // std::map iteration: deterministic id order.
  for (const auto& [id, rec] : compounds) {
    w.begin_object();
    w.kv("id", rec.id);
    w.kv("surrogate", rec.surrogate_score);
    w.kv("docked", rec.docked);
    w.kv("dock_score", rec.dock_score);
    w.kv("cg_done", rec.cg_done);
    w.kv("cg_energy", rec.cg_energy);
    w.kv("cg_error", rec.cg_error);
    w.key("fg");
    w.begin_array();
    for (double e : rec.fg_energies) w.value(e);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("iterations");
  w.begin_array();
  for (const auto& m : iterations) {
    // Science-bearing fields only: everything wall-clock-derived
    // (wall_seconds, throughputs) varies across backends and is excluded.
    w.begin_object();
    w.kv("iteration", m.iteration);
    w.kv("library_screened", static_cast<std::uint64_t>(m.library_screened));
    w.kv("docked", static_cast<std::uint64_t>(m.docked));
    w.kv("cg_runs", static_cast<std::uint64_t>(m.cg_runs));
    w.kv("fg_runs", static_cast<std::uint64_t>(m.fg_runs));
    w.kv("surrogate_spearman", m.surrogate_spearman);
    w.kv("best_cg_energy", m.best_cg_energy);
    w.kv("best_fg_energy", m.best_fg_energy);
    w.end_object();
  }
  w.end_array();
  w.key("flops");
  w.begin_object();
  for (const auto& [component, count] : flops->snapshot())
    w.kv(component, count);
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace impeccable::core
