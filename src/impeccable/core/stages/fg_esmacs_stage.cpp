#include "impeccable/core/stages/fg_esmacs_stage.hpp"

#include <algorithm>
#include <string>

#include "impeccable/common/stats.hpp"
#include "impeccable/core/checkpoint.hpp"
#include "impeccable/md/simulation.hpp"

namespace impeccable::core::stages {

std::vector<rct::TaskDescription> FgEsmacsStage::build(CampaignState& cs) {
  if (cs.scale) {
    std::vector<rct::TaskDescription> tasks;
    tasks.reserve(cs.scale->fg_conformations);
    for (std::size_t f = 0; f < cs.scale->fg_conformations; ++f) {
      rct::TaskDescription t;
      t.name = "fg-esmacs";
      t.whole_nodes = cs.scale->fg_whole_nodes;
      t.duration = cs.scale->fg_seconds;
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  std::vector<rct::TaskDescription> tasks;
  tasks.reserve(s_->fg_jobs.size());
  CampaignState* st = &cs;
  auto scratch = s_;
  for (std::size_t f = 0; f < s_->fg_jobs.size(); ++f) {
    rct::TaskDescription t;
    t.name = "fg-" + std::to_string(f);
    t.gpus = 1;
    t.duration = cs.config->sim_durations.fg;
    t.payload = [st, scratch, f] {
      scratch->fg_results[f] = fe::run_esmacs(
          scratch->fg_jobs[f].system, scratch->fg_jobs[f].rotatable,
          st->config->esmacs_fg,
          item_seed(st->config->seed, iter_salt(0xf6, scratch->iteration), f),
          st->backend->compute_pool());
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

void FgEsmacsStage::merge(CampaignState& cs) {
  if (cs.scale) return;
  for (std::size_t f = 0; f < s_->fg_jobs.size(); ++f) {
    const std::size_t j = s_->fg_jobs[f].cg_index;
    const auto& id = s_->dock_results[s_->cg_pick[j]].ligand_id;
    auto& rec = cs.report->compounds.at(id);
    rec.fg_energies.push_back(s_->fg_results[f].binding_free_energy);
    cs.report->flops->add(
        "S3-FG",
        s_->fg_results[f].md_steps *
            md::flops_per_md_step(
                s_->fg_jobs[f].system.topology.bead_count(),
                static_cast<std::uint64_t>(
                    s_->fg_jobs[f].system.topology.bead_count()) *
                    24));
  }

  // ---------------------------------------------------------------- metrics
  IterationMetrics& metrics = cs.metrics(iter_);
  metrics.docked = s_->dock_indices.size();
  metrics.cg_runs = s_->cg_pick.size();
  metrics.fg_runs = s_->fg_jobs.size();
  // library_screened is stamped unconditionally by Ml1Stage::merge — the
  // enrichment denominator is always the full library, warm-up included.
  const double now = cs.backend->now();
  metrics.wall_seconds = now - s_->iter_begin;
  const double s1_wall = std::max(1e-9, s_->s1_end - s_->s1_begin);
  metrics.dock_throughput = static_cast<double>(metrics.docked) / s1_wall;
  metrics.effective_ligands_per_second =
      static_cast<double>(metrics.library_screened) /
      std::max(1e-9, metrics.wall_seconds);

  {
    std::vector<double> pred, truth;
    for (std::size_t i = 0; i < s_->dock_indices.size(); ++i) {
      pred.push_back(s_->dock_pred[i]);
      truth.push_back(-s_->dock_results[i].best_score);  // higher = better
    }
    metrics.surrogate_spearman =
        pred.size() >= 3 ? common::spearman(pred, truth) : 0.0;
  }
  {
    double best_cg = 0.0, best_fg = 0.0;
    for (const auto& r : s_->cg_results)
      best_cg = std::min(best_cg, r.binding_free_energy);
    for (const auto& r : s_->fg_results)
      best_fg = std::min(best_fg, r.binding_free_energy);
    metrics.best_cg_energy = best_cg;
    metrics.best_fg_energy = best_fg;
  }

  // Iteration span: event-loop style emit — the iteration does not nest
  // inside one thread's scope once stages run graph-scheduled.
  if (obs::Recorder* rec = cs.backend->recorder()) {
    obs::SpanRecord span;
    span.category = obs::cat::kStage;
    span.name = "iteration-" + std::to_string(iter_);
    span.start = s_->iter_begin;
    span.end = now;
    span.arg("docked", static_cast<double>(metrics.docked));
    span.arg("cg_runs", static_cast<double>(metrics.cg_runs));
    span.arg("fg_runs", static_cast<double>(metrics.fg_runs));
    rec->emit(std::move(span));
  }

  // Periodic checkpoint: one consistent snapshot per finished iteration
  // (merges are serialized, so no partial merge can be observed here).
  if (!cs.config->checkpoint_path.empty())
    write_checkpoint(*cs.report, cs.config->checkpoint_path);

  // Release the bulky per-iteration intermediates (trajectories, systems);
  // the records and metrics above are the iteration's durable output.
  s_->cg_systems.clear();
  s_->cg_systems.shrink_to_fit();
  s_->fg_jobs.clear();
  s_->fg_jobs.shrink_to_fit();
}

}  // namespace impeccable::core::stages
