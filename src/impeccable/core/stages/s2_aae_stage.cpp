#include "impeccable/core/stages/s2_aae_stage.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "impeccable/md/analysis.hpp"
#include "impeccable/ml/lof.hpp"

namespace impeccable::core::stages {

std::vector<rct::TaskDescription> S2AaeStage::build(CampaignState& cs) {
  if (cs.scale) {
    std::vector<rct::TaskDescription> tasks;
    tasks.reserve(static_cast<std::size_t>(cs.scale->s2_tasks));
    for (int k = 0; k < cs.scale->s2_tasks; ++k) {
      rct::TaskDescription t;
      t.name = "aae-train";
      t.whole_nodes = cs.scale->s2_whole_nodes;
      t.duration = cs.scale->s2_seconds;
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  rct::TaskDescription t;
  t.name = "aae-train-lof";
  t.gpus = 6;  // the paper trains with 6 GPUs per model
  t.duration = cs.config->sim_durations.s2;
  CampaignState* st = &cs;
  auto scratch = s_;
  t.payload = [st, scratch] {
    // Rank CG compounds by energy; keep the top binders.
    std::vector<std::size_t> order(scratch->cg_pick.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scratch->cg_results[a].binding_free_energy <
             scratch->cg_results[b].binding_free_energy;
    });
    order.resize(std::min(st->config->top_binders, order.size()));

    // Collect Cα point clouds from every frame of every replica of the
    // selected compounds.
    struct CloudRef {
      std::size_t cg_index;
      std::size_t replica;
      std::size_t frame;
    };
    std::vector<std::vector<common::Vec3>> clouds;
    std::vector<CloudRef> refs;
    for (std::size_t j : order) {
      const auto& trajs = scratch->cg_results[j].trajectories;
      for (std::size_t r = 0; r < trajs.size(); ++r) {
        for (std::size_t f = 0; f < trajs[r].frames.size(); ++f) {
          clouds.push_back(md::protein_point_cloud(trajs[r].frames[f],
                                                   scratch->cg_systems[j]));
          refs.push_back({j, r, f});
        }
      }
    }
    if (clouds.empty()) return;

    ml::Aae3d aae(static_cast<int>(clouds.front().size()), st->config->aae);
    aae.train(clouds);
    const auto latent = aae.embed_batch(clouds);
    const auto lof = ml::local_outlier_factor(
        latent, std::min<int>(10, static_cast<int>(latent.size()) - 1));
    st->report->flops->add(
        "S2", aae.flops_per_sample() * clouds.size() *
                  static_cast<std::uint64_t>(st->config->aae.epochs));

    // Per binder: the most outlying conformations seed S3-FG.
    for (std::size_t j : order) {
      std::vector<std::pair<double, std::size_t>> mine;
      for (std::size_t c = 0; c < refs.size(); ++c)
        if (refs[c].cg_index == j) mine.emplace_back(lof[c], c);
      std::sort(mine.rbegin(), mine.rend());
      const std::size_t take =
          std::min(st->config->outliers_per_binder, mine.size());
      for (std::size_t o = 0; o < take; ++o) {
        const CloudRef& ref = refs[mine[o].second];
        IterationScratch::FgJob job;
        job.cg_index = j;
        job.system = scratch->cg_systems[j];
        job.system.positions = scratch->cg_results[j]
                                   .trajectories[ref.replica]
                                   .frames[ref.frame]
                                   .positions;
        job.rotatable = scratch->cg_rotatable[j];
        scratch->fg_jobs.push_back(std::move(job));
      }
    }
    scratch->fg_results.resize(scratch->fg_jobs.size());
  };
  return {std::move(t)};
}

void S2AaeStage::merge(CampaignState&) {
  // The single S2 task writes only iteration scratch (fg_jobs/fg_results);
  // nothing to fold into shared state.
}

}  // namespace impeccable::core::stages
