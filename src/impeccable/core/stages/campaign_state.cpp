#include "impeccable/core/stages/campaign_state.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "impeccable/core/checkpoint.hpp"

namespace impeccable::core::stages {

namespace {

/// Default on-disk location for a generated library's store: keyed on
/// (name, size, seed) so repeated runs of the same campaign reuse the spill
/// instead of regenerating 1e8 compounds.
std::string default_store_dir(const CampaignConfig& cfg) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "impeccable-store-%s-%zu-%llu",
                cfg.library_name.c_str(), cfg.library_size,
                static_cast<unsigned long long>(cfg.library_seed));
  return (std::filesystem::temp_directory_path() / buf).string();
}

}  // namespace

void CampaignState::init() {
  const CampaignConfig& cfg = *config;

  chem::SourceOptions sopts;
  sopts.protonate_ph = cfg.prepare_ligands_at_ph;

  if (cfg.library_backend == ExecConfig::LibraryBackend::kMmapStore) {
    store_dir = cfg.library_store_dir.empty() ? default_store_dir(cfg)
                                              : cfg.library_store_dir;
    chem::LigandStore store = chem::LigandStore::open(store_dir);
    if (store.size() != cfg.library_size ||
        store.stats().shards_skipped != 0) {
      // Missing, stale, or damaged: regenerate the spill from scratch.
      store = chem::LigandStore();
      std::filesystem::remove_all(store_dir);
      chem::spill_generated_library(cfg.library_name, cfg.library_size,
                                    cfg.library_seed, store_dir);
      store = chem::LigandStore::open(store_dir);
    }
    source = std::make_shared<chem::MmapSource>(std::move(store), sopts);
  } else {
    source = std::make_shared<chem::InMemorySource>(
        chem::generate_library(cfg.library_name, cfg.library_size,
                               cfg.library_seed),
        sopts);
  }

  // Resume: restore prior records and rebuild the training set from them.
  // Checkpoints hold only touched compounds, so resolve their ids to
  // library ordinals in one linear scan (stopping once all are found) —
  // the id_index built here is reused by every later lookup.
  if (!cfg.resume_checkpoint.empty()) {
    const auto prev = read_checkpoint(cfg.resume_checkpoint);
    std::size_t found = 0;
    for (std::size_t i = 0; i < source->size() && found < prev.size(); ++i) {
      const auto it = prev.find(source->id(i));
      if (it == prev.end()) continue;
      ++found;
      id_index.emplace(it->first, i);
      auto& rec = report->compounds[it->first];
      rec = it->second;
      if (rec.docked) {
        docked_indices.insert(i);
        train_images.push_back(source->image(i));
        train_scores.push_back(rec.dock_score);
      }
    }
  }
}

CompoundRecord& CampaignState::record_for(std::size_t index) {
  std::string cid = source->id(index);
  auto it = report->compounds.find(cid);
  if (it == report->compounds.end()) {
    CompoundRecord rec;
    rec.id = cid;
    rec.smiles = source->smiles(index);
    it = report->compounds.emplace(std::move(cid), std::move(rec)).first;
    id_index.emplace(it->second.id, index);
  }
  return it->second;
}

}  // namespace impeccable::core::stages
