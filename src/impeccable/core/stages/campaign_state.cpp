#include "impeccable/core/stages/campaign_state.hpp"

#include "impeccable/chem/protonation.hpp"
#include "impeccable/chem/smiles.hpp"
#include "impeccable/core/checkpoint.hpp"

namespace impeccable::core::stages {

void CampaignState::init() {
  const CampaignConfig& cfg = *config;
  library = chem::generate_library(cfg.library_name, cfg.library_size,
                                   cfg.library_seed);

  // Parse and depict the whole library once (ML1 inference input).
  lib_mols.reserve(library.size());
  lib_images.reserve(library.size());
  for (const auto& entry : library.entries) {
    chem::Molecule mol = chem::parse_smiles(entry.smiles);
    if (cfg.prepare_ligands_at_ph > 0.0)
      mol = chem::protonate_for_ph(mol, cfg.prepare_ligands_at_ph);
    lib_mols.push_back(std::move(mol));
    lib_images.push_back(chem::depict(lib_mols.back()));
    CompoundRecord rec;
    rec.id = entry.id;
    rec.smiles = entry.smiles;
    report->compounds.emplace(entry.id, std::move(rec));
  }

  // Resume: restore prior records and rebuild the training set from them.
  if (!cfg.resume_checkpoint.empty()) {
    const auto prev = read_checkpoint(cfg.resume_checkpoint);
    for (std::size_t i = 0; i < library.size(); ++i) {
      const auto it = prev.find(library.entries[i].id);
      if (it == prev.end()) continue;
      auto& rec = report->compounds.at(library.entries[i].id);
      rec = it->second;
      if (rec.docked) {
        train_images.push_back(lib_images[i]);
        train_scores.push_back(rec.dock_score);
      }
    }
  }
}

}  // namespace impeccable::core::stages
