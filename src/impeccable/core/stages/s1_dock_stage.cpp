#include "impeccable/core/stages/s1_dock_stage.hpp"

#include <algorithm>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/diversity.hpp"
#include "impeccable/md/simulation.hpp"

namespace impeccable::core::stages {

std::vector<rct::TaskDescription> S1DockStage::build(CampaignState& cs) {
  s_->s1_begin = cs.backend->now();

  if (cs.scale) {
    // Virtual workload: ligands packed into chunked GPU docking tasks.
    std::vector<rct::TaskDescription> tasks;
    const ScaleModel& m = *cs.scale;
    for (std::size_t done = 0; done < m.s1_docks; done += m.s1_chunk) {
      const std::size_t n = std::min(m.s1_chunk, m.s1_docks - done);
      rct::TaskDescription t;
      t.name = "dock-chunk";
      t.gpus = 1;
      t.duration = static_cast<double>(n) * m.s1_gpu_seconds_per_ligand;
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  std::vector<rct::TaskDescription> tasks;
  tasks.reserve(s_->dock_indices.size());
  CampaignState* st = &cs;
  auto scratch = s_;
  for (std::size_t i = 0; i < s_->dock_indices.size(); ++i) {
    rct::TaskDescription t;
    t.name = "dock-" + cs.source->id(s_->dock_indices[i]);
    t.gpus = 1;
    t.duration = cs.config->sim_durations.dock;
    t.payload = [st, scratch, i] {
      const Target& target = *st->target;
      dock::DockOptions dopts = st->config->dock;
      const std::size_t idx = scratch->dock_indices[i];
      // Seeded by the global library index, not the iteration: a compound
      // docks identically no matter which iteration selects it.
      dopts.seed = item_seed(st->config->seed, 0xd0c, idx);
      dopts.pool = st->backend->compute_pool();
      const std::string id = st->source->id(idx);
      // Parse (and protonate) here, on a worker, into this task's own
      // scratch slot — under an out-of-core source there is no materialized
      // molecule to copy.
      scratch->molecules[i] = st->source->molecule(idx);
      // S1 protocol: enumerate conformers, dock against every crystal
      // structure of the target, keep the best pose overall.
      if (target.grids.size() > 1) {
        scratch->dock_results[i] = dock::dock_multi_structure(
            target.grids, scratch->molecules[i], id, dopts);
      } else if (st->config->conformers_per_ligand > 1) {
        scratch->dock_results[i] = dock::dock_conformer_ensemble(
            *target.grid, scratch->molecules[i], id,
            st->config->conformers_per_ligand, dopts);
      } else {
        scratch->dock_results[i] =
            dock::dock(*target.grid, scratch->molecules[i], id, dopts);
      }
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

void S1DockStage::merge(CampaignState& cs) {
  if (cs.scale) return;
  s_->s1_end = cs.backend->now();
  for (std::size_t i = 0; i < s_->dock_indices.size(); ++i) {
    const std::size_t idx = s_->dock_indices[i];
    const auto& dres = s_->dock_results[i];
    auto& rec = cs.record_for(idx);
    rec.dock_score = dres.best_score;
    rec.docked = true;
    rec.surrogate_score = s_->dock_pred[i];
    cs.docked_indices.insert(idx);
    cs.train_images.push_back(cs.source->image(idx));
    cs.train_scores.push_back(dres.best_score);
    cs.report->flops->add(
        "S1", dres.evaluations *
                  dock::flops_per_evaluation(
                      s_->molecules[i].atom_count(),
                      static_cast<int>(s_->molecules[i].atom_count()) * 4));
  }

  // Diversity pick over the docked set (Sec. 7.1.2).
  std::vector<chem::BitSet> fps;
  fps.reserve(s_->molecules.size());
  for (const auto& mol : s_->molecules)
    fps.push_back(chem::morgan_fingerprint(mol));
  s_->cg_pick = chem::maxmin_pick(
      fps, std::min(cs.config->cg_compounds, fps.size()),
      item_seed(cs.config->seed, iter_salt(0xd17, iter_), 0));

  s_->cg_systems.reserve(s_->cg_pick.size());
  s_->cg_rotatable.reserve(s_->cg_pick.size());
  for (std::size_t k : s_->cg_pick) {
    s_->cg_systems.push_back(md::build_lpc(cs.target->protein, s_->molecules[k],
                                           s_->dock_results[k].best_coords));
    s_->cg_rotatable.push_back(
        chem::compute_descriptors(s_->molecules[k]).rotatable_bonds);
  }
  s_->cg_results.resize(s_->cg_pick.size());
}

}  // namespace impeccable::core::stages
