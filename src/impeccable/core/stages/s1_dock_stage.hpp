#pragma once
// S1 — ensemble docking of the ML1-selected compounds, then the feedback
// merge: record scores, grow the ML1 training set, and diversity-pick the
// S3-CG candidates.

#include <memory>

#include "impeccable/core/stages/stage.hpp"

namespace impeccable::core::stages {

class S1DockStage : public Stage {
 public:
  S1DockStage(int iteration, std::shared_ptr<IterationScratch> scratch)
      : iter_(iteration), s_(std::move(scratch)) {}

  const char* name() const override { return "S1"; }
  std::vector<rct::TaskDescription> build(CampaignState& cs) override;
  void merge(CampaignState& cs) override;

 private:
  int iter_;
  std::shared_ptr<IterationScratch> s_;
};

}  // namespace impeccable::core::stages
