#include "impeccable/core/stages/ml1_stage.hpp"

#include <algorithm>
#include <numeric>

#include "impeccable/common/rng.hpp"
#include "impeccable/ml/res.hpp"

namespace impeccable::core::stages {

std::vector<rct::TaskDescription> Ml1Stage::build(CampaignState& cs) {
  s_->iter_begin = cs.backend->now();

  if (cs.scale) {
    // Virtual workload: inference sharded over the partition's GPUs.
    std::vector<rct::TaskDescription> tasks;
    const double per_shard =
        cs.scale->ml1_ligands / static_cast<double>(cs.scale->ml1_shards);
    for (int k = 0; k < cs.scale->ml1_shards; ++k) {
      rct::TaskDescription t;
      t.name = "ml1";
      t.gpus = 1;
      t.duration = per_shard * cs.scale->ml1_gpu_seconds_per_ligand;
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  s_->surrogate_scores.assign(cs.library.size(), 0.5);
  surrogate_ = std::make_unique<ml::SurrogateModel>(cs.config->surrogate);

  rct::TaskDescription t;
  t.name = "ml1-train-infer";
  t.duration = cs.config->sim_durations.ml1;
  CampaignState* st = &cs;
  t.payload = [this, st] {
    // Iteration 0 has no training data yet; the merge step bootstraps with
    // a random diverse sample instead.
    if (iter_ == 0 || st->train_images.size() < 8) return;
    const auto& scores = st->train_scores;
    const double best = *std::min_element(scores.begin(), scores.end());
    const double worst = *std::max_element(scores.begin(), scores.end());
    std::vector<float> labels;
    labels.reserve(scores.size());
    for (double s : scores) labels.push_back(ml::score_to_label(s, best, worst));
    surrogate_->train(st->train_images, labels);
    const auto pred = surrogate_->predict_batch(st->lib_images);
    for (std::size_t i = 0; i < pred.size(); ++i)
      s_->surrogate_scores[i] = pred[i];
    st->report->flops->add(
        "ML1", surrogate_->flops_per_image() *
                   (st->lib_images.size() +
                    3 * st->train_images.size() *
                        static_cast<std::size_t>(st->config->surrogate.epochs)));
  };
  return {std::move(t)};
}

void Ml1Stage::merge(CampaignState& cs) {
  if (cs.scale) return;
  const CampaignConfig& cfg = *cs.config;
  // Per-(iteration, stage) stream: selection randomness is independent of
  // how many draws earlier iterations consumed, so sequential and pipelined
  // mode select identical compounds.
  common::Rng rng(item_seed(cfg.seed, iter_salt(0x311, iter_), 0));

  std::vector<std::size_t> chosen;
  if (iter_ == 0 || cs.train_images.size() < 8) {
    // Bootstrap: random sample.
    std::vector<std::size_t> all(cs.library.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    rng.shuffle(all);
    all.resize(std::min(cfg.bootstrap_docks, all.size()));
    chosen = std::move(all);
  } else {
    cs.metrics(iter_).library_screened = cs.library.size();
    // Rank by surrogate; take the top fraction plus exploration picks.
    const auto& scores = s_->surrogate_scores;
    std::vector<std::size_t> order(cs.library.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores[a] > scores[b];
    });
    std::size_t budget = std::max<std::size_t>(
        4, static_cast<std::size_t>(cfg.dock_top_fraction *
                                    static_cast<double>(cs.library.size())));
    if (cfg.auto_dock_budget) {
      // Validation set: compounds with both a surrogate prediction and a
      // docking ground truth.
      std::vector<double> pred, truth;
      for (std::size_t i = 0; i < cs.library.size(); ++i) {
        const auto& rec = cs.report->compounds.at(cs.library.entries[i].id);
        if (!rec.docked) continue;
        pred.push_back(scores[i]);
        truth.push_back(-rec.dock_score);
      }
      if (pred.size() >= 20) {
        const ml::EnrichmentSurface res(pred, truth);
        const double frac =
            res.budget_for(cfg.auto_budget_top, cfg.auto_budget_coverage);
        budget = std::clamp<std::size_t>(
            static_cast<std::size_t>(frac *
                                     static_cast<double>(cs.library.size())),
            4, cs.library.size() / 2);
      }
    }
    const std::size_t explore = static_cast<std::size_t>(
        cfg.explore_fraction * static_cast<double>(budget));
    const std::size_t top = budget - explore;
    for (std::size_t k = 0; k < top && k < order.size(); ++k)
      chosen.push_back(order[k]);
    // Exploration: uniform over the remainder (Sec. 7.1.1: sample lower
    // ranks so high-affinity compounds are not missed).
    for (std::size_t e = 0; e < explore && top + e < order.size(); ++e) {
      const std::size_t lo = top;
      const std::size_t span = order.size() - lo;
      chosen.push_back(order[lo + rng.index(span)]);
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  }

  // Never redo work restored from a checkpoint (or docked by an earlier
  // iteration).
  chosen.erase(std::remove_if(chosen.begin(), chosen.end(),
                              [&](std::size_t idx) {
                                return cs.report->compounds
                                    .at(cs.library.entries[idx].id)
                                    .docked;
                              }),
               chosen.end());

  s_->dock_indices = std::move(chosen);
  s_->molecules.reserve(s_->dock_indices.size());
  for (std::size_t idx : s_->dock_indices)
    s_->molecules.push_back(cs.lib_mols[idx]);
  s_->dock_results.resize(s_->dock_indices.size());
}

}  // namespace impeccable::core::stages
